package grape

// Context-cancellation tests for the Ctx session methods, on both the
// in-process and the TCP transport and on both execution planes. The
// deterministic "query that never finishes" is a PageRank with Tolerance 0
// (delta < 0 never holds) and an enormous round budget: cancellation is the
// only way out, so a prompt context.Canceled return proves the superstep- and
// round-boundary checks work. Each test then runs a plain query to show the
// session survived the abort.

import (
	"context"
	"errors"
	"testing"
	"time"

	"grape/internal/pie"
)

// neverConverges is a PageRank query that can only end by cancellation. With
// Tolerance 0 every PEval/IncEval runs its full defensive local-sweep budget,
// so the graphs below are kept tiny to keep each superstep short — the
// cancellation check fires at superstep boundaries.
var neverConverges = pie.PageRankQuery{Damping: 0.85, Tolerance: 0, MaxRounds: 1 << 30}

// assertCancels runs the never-converging query under a context canceled
// after delay and asserts a prompt context.Canceled return.
func assertCancels(t *testing.T, s *Session, delay time.Duration) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(delay, cancel)
	start := time.Now()
	_, err := s.RunCtx(ctx, pie.PageRank{}, neverConverges)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
	// Generous bound: one superstep of the never-converging query plus
	// race-detector slowdown, while still catching a run that ignored the
	// context until some other limit ended it.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}

func TestCtxPreCanceledLocal(t *testing.T) {
	g := distributedGraph(false, 100, 150, 2)
	s, err := NewSession(g, Options{Workers: 4})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.SSSPCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("SSSPCtx with a canceled context returned %v", err)
	}
	if _, err := s.ApplyUpdatesCtx(ctx, []Update{EdgeInsert(1, 50, 0.5)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyUpdatesCtx with a canceled context returned %v", err)
	}
	// The canceled calls left nothing behind: the session still works.
	if _, _, err := s.SSSP(0); err != nil {
		t.Fatalf("SSSP after canceled calls: %v", err)
	}
	if s.Epoch() != 0 {
		t.Fatalf("canceled ApplyUpdatesCtx installed an epoch")
	}
}

func TestCtxCancelMidRunLocal(t *testing.T) {
	g := distributedGraph(false, 60, 100, 5)
	for _, mode := range []Mode{BSP, Async} {
		t.Run(mode.String(), func(t *testing.T) {
			s, err := NewSession(g, Options{Workers: 4, Mode: mode})
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			defer s.Close()
			assertCancels(t, s, 50*time.Millisecond)
			if _, _, err := s.SSSP(0); err != nil {
				t.Fatalf("SSSP after a canceled run: %v", err)
			}
		})
	}
}

func TestCtxCancelMidRunDistributed(t *testing.T) {
	g := distributedGraph(false, 60, 100, 8)
	for _, mode := range []Mode{BSP, Async} {
		t.Run(mode.String(), func(t *testing.T) {
			s, waitWorkers := startCluster(t, g, 4, 2, mode)
			defer waitWorkers()
			defer s.Close()
			assertCancels(t, s, 100*time.Millisecond)
			// The abort released the query's remote state and epoch pin: the
			// session keeps answering and absorbing updates.
			if _, _, err := s.SSSP(0); err != nil {
				t.Fatalf("SSSP after a canceled distributed run: %v", err)
			}
			if _, err := s.ApplyUpdates([]Update{EdgeInsert(2, 77, 0.25)}); err != nil {
				t.Fatalf("ApplyUpdates after a canceled run: %v", err)
			}
		})
	}
}

// TestCtxDeadline: a context deadline behaves like cancellation, returning
// context.DeadlineExceeded.
func TestCtxDeadline(t *testing.T) {
	g := distributedGraph(false, 60, 100, 4)
	s, err := NewSession(g, Options{Workers: 4})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := s.RunCtx(ctx, pie.PageRank{}, neverConverges); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline run returned %v, want context.DeadlineExceeded", err)
	}
}
