// Command graphgen generates the synthetic dataset surrogates used by the
// benchmarks and writes them in the text graph format, so they can be fed to
// cmd/grape or inspected directly.
//
// Usage:
//
//	graphgen -dataset traffic -scale small -out traffic.txt
//	graphgen -dataset livejournal -scale medium -out lj.txt
//	graphgen -synthetic 10000x40000 -out uniform.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"grape/internal/graph"
	"grape/internal/graphgen"
	"grape/internal/workload"
)

func main() {
	var (
		dataset   = flag.String("dataset", "", "named dataset: traffic, livejournal, dbpedia, movielens")
		scale     = flag.String("scale", "small", "scale: tiny, small, medium")
		synthetic = flag.String("synthetic", "", "synthetic graph as VERTICESxEDGES (e.g. 10000x40000)")
		out       = flag.String("out", "", "output file (default stdout)")
		seed      = flag.Int64("seed", 42, "seed for -synthetic")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *synthetic, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(dataset, scaleName, synthetic, out string, seed int64) error {
	var g *graph.Graph
	switch {
	case dataset != "":
		scale, err := workload.ParseScale(scaleName)
		if err != nil {
			return err
		}
		g, err = workload.Load(dataset, scale)
		if err != nil {
			return err
		}
	case synthetic != "":
		var v, e int
		if _, err := fmt.Sscanf(synthetic, "%dx%d", &v, &e); err != nil {
			return fmt.Errorf("bad -synthetic %q: %v", synthetic, err)
		}
		g = graphgen.Uniform(v, e, graphgen.Config{Seed: seed})
	default:
		return fmt.Errorf("one of -dataset or -synthetic is required")
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	n, err := g.WriteTo(w)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %v (%d bytes)\n", g, n)
	return nil
}
