// grape-lint runs the internal/analysis suite over the module: a
// dependency-free static-analysis pass enforcing the engine's correctness
// conventions (pooled-buffer discipline, deterministic folds, bounded
// decodes, context threading, metric naming). See internal/analysis/doc.go
// for the analyzer catalogue and the war stories behind it.
//
// Usage:
//
//	grape-lint [flags] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Diagnostics print one per line as
//
//	file:line:col: analyzer: message
//
// and a non-empty run exits 1, so the command gates CI directly. With
// -github each diagnostic is also emitted as a GitHub Actions workflow
// command so the findings annotate the pull request diff.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"grape/internal/analysis"
)

func main() {
	var (
		only   = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list   = flag.Bool("list", false, "list analyzers and exit")
		github = flag.Bool("github", false, "also emit GitHub Actions ::error annotations")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: grape-lint [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "grape-lint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, module, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(root, module, flag.Args())
	if err != nil {
		fatal(err)
	}
	var selected []*analysis.Package
	for _, p := range pkgs {
		if p.Selected {
			selected = append(selected, p)
		}
	}

	diags := analysis.Lint(selected, analyzers)
	for _, d := range diags {
		// Print module-relative paths: stable across checkouts and what
		// GitHub's annotation matcher expects.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		fmt.Println(d)
		if *github {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=grape-lint %s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "grape-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "grape-lint:", err)
	os.Exit(2)
}
