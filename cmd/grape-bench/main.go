// Command grape-bench regenerates the tables and figures of the paper's
// evaluation on the synthetic dataset surrogates, printing one text table per
// experiment.
//
// Usage:
//
//	grape-bench -exp table1                    # Table 1
//	grape-bench -exp fig6-sssp                 # Fig 6(a-c) + Fig 8(a-c)
//	grape-bench -exp fig6-cc|fig6-sim|fig6-subiso|fig6-cf
//	grape-bench -exp fig7a                     # IncEval ablation
//	grape-bench -exp fig7b                     # optimization compatibility
//	grape-bench -exp fig9                      # scalability on synthetic graphs
//	grape-bench -exp ablations                 # grouping + partitioner ablations
//	grape-bench -exp session                   # partition-once session vs per-query
//	grape-bench -exp incremental               # IncEval view maintenance vs full recompute
//	grape-bench -exp async                     # BSP vs adaptive async execution plane
//	grape-bench -exp net                       # in-process vs local-TCP transport overhead
//	grape-bench -exp netinc                    # distributed view maintenance vs recompute over TCP
//	grape-bench -exp obs                       # observability instrumentation overhead
//	grape-bench -exp par                       # intra-fragment sweep-pool scaling curve
//	grape-bench -exp recover                   # checkpoint overhead + worker-kill recovery latency
//	grape-bench -exp all                       # everything
//
// Flags -size (tiny|small|medium) and -workers control the scale; -n gives
// the list of worker counts swept by the fig6/fig7 and async experiments;
// -parallelism caps the pool widths swept by the par experiment (default
// GOMAXPROCS). The incremental, async, net, netinc, obs and par experiments
// additionally write machine-readable results to BENCH_incremental.json,
// BENCH_async.json, BENCH_net.json, BENCH_netinc.json, BENCH_obs.json,
// BENCH_par.json and BENCH_recover.json (configurable with -out, -async-out,
// -net-out, -netinc-out, -obs-out, -par-out and -recover-out); -quick shrinks
// the async, net, netinc, obs, par and recover experiments to smoke tests for
// CI. -trace runs
// one SSSP query over a local-TCP cluster and writes its execution trace as
// Chrome trace-event JSON to the named file (open in https://ui.perfetto.dev
// or chrome://tracing). -cpuprofile and -memprofile write pprof profiles
// covering the selected experiments, for chasing hot paths in the engine
// rather than in the harness.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"grape/internal/bench"
	"grape/internal/workload"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run")
		size       = flag.String("size", "small", "dataset scale: tiny, small, medium")
		workers    = flag.Int("workers", 8, "worker count for table1/fig9")
		nList      = flag.String("n", "2,4,8", "comma-separated worker counts for fig6/fig7")
		out        = flag.String("out", "BENCH_incremental.json", "output file for the incremental experiment's JSON results")
		asyncOut   = flag.String("async-out", "BENCH_async.json", "output file for the async experiment's JSON results")
		netOut     = flag.String("net-out", "BENCH_net.json", "output file for the net experiment's JSON results")
		netIncOut  = flag.String("netinc-out", "BENCH_netinc.json", "output file for the netinc experiment's JSON results")
		obsOut     = flag.String("obs-out", "BENCH_obs.json", "output file for the obs experiment's JSON results")
		parOut     = flag.String("par-out", "BENCH_par.json", "output file for the par experiment's JSON results")
		recoverOut = flag.String("recover-out", "BENCH_recover.json", "output file for the recover experiment's JSON results")
		par        = flag.Int("parallelism", runtime.GOMAXPROCS(0), "maximum sweep pool width swept by the par experiment (0 or 1 = sequential only)")
		traceOut   = flag.String("trace", "", "run one SSSP query over a local-TCP cluster and write its Chrome trace-event JSON here")
		quick      = flag.Bool("quick", false, "shrink the async, net, netinc and obs experiments to CI smoke runs")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "grape-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "grape-bench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	err := run(*exp, *size, *workers, *par, *nList, *out, *asyncOut, *netOut, *netIncOut, *obsOut, *parOut, *recoverOut, *traceOut, *quick)
	if *memProfile != "" {
		f, merr := os.Create(*memProfile)
		if merr == nil {
			runtime.GC() // settle allocations so the heap profile shows live data
			merr = pprof.WriteHeapProfile(f)
			f.Close()
		}
		if merr != nil && err == nil {
			err = merr
		}
	}
	if err != nil {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		fmt.Fprintln(os.Stderr, "grape-bench:", err)
		os.Exit(1)
	}
}

func run(exp, size string, workers, parallelism int, nList, incOut, asyncOut, netOut, netIncOut, obsOut, parOut, recoverOut, traceOut string, quick bool) error {
	scale, err := workload.ParseScale(size)
	if err != nil {
		return err
	}
	ns, err := parseInts(nList)
	if err != nil {
		return err
	}

	if err := bench.VerifyAnswers(scale); err != nil {
		return fmt.Errorf("sanity check failed: %w", err)
	}

	if traceOut != "" {
		n, procs, traceScale := workers, 3, scale
		if quick {
			n, procs, traceScale = 4, 2, workload.ScaleTiny
		}
		raw, err := bench.SampleTrace(n, procs, traceScale)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if err := os.WriteFile(traceOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (Chrome trace-event JSON; open in https://ui.perfetto.dev)\n", traceOut)
	}

	runTable1 := func() error {
		rows, err := bench.Table1(workers, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatRows(fmt.Sprintf("Table 1: SSSP on road network, n=%d", workers), rows))
		return nil
	}
	runFig6 := func(query string, datasets []string) error {
		for _, ds := range datasets {
			rows, err := bench.Fig6(query, ds, ns, scale)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatRows(fmt.Sprintf("Fig 6/8: %s on %s", query, ds), rows))
		}
		return nil
	}
	runFig6CF := func() error {
		for _, frac := range []float64{0.9, 0.5} {
			rows, err := bench.Fig6CF(ns, frac, scale)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatRows(fmt.Sprintf("Fig 6(k-l)/8(k-l): CF with %d%% training set", int(frac*100)), rows))
		}
		return nil
	}
	runFig7a := func() error {
		rows, err := bench.Fig7a(ns, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatRows("Fig 7(a): GRAPE vs GRAPE_NI (Sim)", rows))
		return nil
	}
	runFig7b := func() error {
		rows, err := bench.Fig7b(ns, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatSpeedups(rows))
		return nil
	}
	runFig9 := func() error {
		for _, q := range []string{bench.QuerySim, bench.QuerySubIso, bench.QueryCC, bench.QuerySSSP} {
			rows, err := bench.Fig9(q, workers, scale)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatRows(fmt.Sprintf("Fig 9: scalability of %s on synthetic graphs, n=%d", q, workers), rows))
		}
		return nil
	}
	runSession := func() error {
		c, err := bench.SessionAmortization(workers, 20, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatSessionComparison(c))
		return nil
	}
	runIncremental := func() error {
		rows, err := bench.IncrementalMaintenance(workers, scale, []int{1, 2, 5, 10, 25}, 30)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatIncrementalRows(rows))
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(incOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", incOut)
		return nil
	}
	runAsync := func() error {
		ns := ns
		scale := scale
		if quick {
			ns = []int{2, 3}
			scale = workload.ScaleTiny
		}
		rows, err := bench.AsyncComparison(ns, scale, quick)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAsyncRows(rows))
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(asyncOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", asyncOut)
		return nil
	}
	runNet := func() error {
		n, procs, scale := workers, 3, scale
		if quick {
			n, procs, scale = 4, 2, workload.ScaleTiny
		}
		rows, err := bench.NetOverhead(n, procs, scale, quick)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatNetRows(rows))
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(netOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", netOut)
		return nil
	}
	runNetInc := func() error {
		n, procs, scale := workers, 3, scale
		if quick {
			n, procs, scale = 4, 2, workload.ScaleTiny
		}
		rows, err := bench.NetIncMaintenance(n, procs, scale, quick)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatNetIncRows(rows))
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(netIncOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", netIncOut)
		return nil
	}
	runObs := func() error {
		n, procs, scale := workers, 3, scale
		if quick {
			n, procs, scale = 4, 2, workload.ScaleTiny
		}
		rows, err := bench.ObsOverhead(n, procs, scale, quick)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatObsRows(rows))
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(obsOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", obsOut)
		return nil
	}
	runPar := func() error {
		n, procs, scale := workers, 3, scale
		if quick {
			n, procs, scale = 4, 2, workload.ScaleTiny
		}
		rep, err := bench.ParallelScaling(n, procs, parallelism, scale, quick)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatParReport(rep))
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(parOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", parOut)
		return nil
	}
	runRecover := func() error {
		n, procs, scale := workers, 3, scale
		if quick {
			n, procs, scale = 4, 2, workload.ScaleTiny
		}
		rows, err := bench.RecoverExperiment(n, procs, scale, quick)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatRecoverRows(rows))
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(recoverOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", recoverOut)
		return nil
	}
	runAblations := func() error {
		rows, err := bench.AblationMessageGrouping(workers, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatRows("Ablation: dynamic message grouping", rows))
		rows, err = bench.AblationPartitioner(workers, scale)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatRows("Ablation: partition strategy", rows))
		return nil
	}

	switch exp {
	case "table1":
		return runTable1()
	case "fig6-sssp":
		return runFig6(bench.QuerySSSP, []string{workload.Traffic, workload.LiveJournal, workload.DBpedia})
	case "fig6-cc":
		return runFig6(bench.QueryCC, []string{workload.Traffic, workload.LiveJournal, workload.DBpedia})
	case "fig6-sim":
		return runFig6(bench.QuerySim, []string{workload.LiveJournal, workload.DBpedia})
	case "fig6-subiso":
		return runFig6(bench.QuerySubIso, []string{workload.LiveJournal, workload.DBpedia})
	case "fig6-cf", "fig8-cf":
		return runFig6CF()
	case "fig7a":
		return runFig7a()
	case "fig7b":
		return runFig7b()
	case "fig8":
		// Figure 8 plots the communication columns of the Figure 6 runs.
		if err := runFig6(bench.QuerySSSP, []string{workload.Traffic}); err != nil {
			return err
		}
		return runFig6(bench.QuerySim, []string{workload.LiveJournal})
	case "fig9":
		return runFig9()
	case "ablations":
		return runAblations()
	case "session":
		return runSession()
	case "incremental":
		return runIncremental()
	case "async":
		return runAsync()
	case "net":
		return runNet()
	case "netinc":
		return runNetInc()
	case "obs":
		return runObs()
	case "par":
		return runPar()
	case "recover":
		return runRecover()
	case "all":
		steps := []func() error{
			runTable1,
			func() error {
				return runFig6(bench.QuerySSSP, []string{workload.Traffic, workload.LiveJournal, workload.DBpedia})
			},
			func() error {
				return runFig6(bench.QueryCC, []string{workload.Traffic, workload.LiveJournal, workload.DBpedia})
			},
			func() error { return runFig6(bench.QuerySim, []string{workload.LiveJournal, workload.DBpedia}) },
			func() error { return runFig6(bench.QuerySubIso, []string{workload.LiveJournal, workload.DBpedia}) },
			runFig6CF,
			runFig7a,
			runFig7b,
			runFig9,
			runAblations,
			runSession,
			runIncremental,
			runAsync,
			runNet,
			runNetInc,
			runObs,
			runPar,
			runRecover,
		}
		for _, step := range steps {
			if err := step(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts given")
	}
	return out, nil
}
