// Command grape-worker hosts graph fragments for a distributed grape
// coordinator. It dials the coordinator (retrying with exponential backoff,
// so workers may be launched before the coordinator is up), receives its
// fragment assignment and fragment data over the wire, serves PEval/IncEval
// calls for both execution planes, and exits cleanly when the coordinator
// shuts the cluster down.
//
// Workers are dynamic: when the coordinator absorbs a graph-update batch,
// each worker installs the shipped fragment deltas as a new residency epoch
// (queries in flight keep evaluating against the epoch they started on),
// and materialized views keep their per-fragment state resident here —
// maintenance rounds run EvalDelta and the IncEval fixpoint worker-side.
// The worker also answers the coordinator's heartbeat pings; a worker that
// dies is detected and reported as a query error naming its fragments.
//
// A three-process localhost cluster:
//
//	grape-worker -coordinator 127.0.0.1:9091 &
//	grape-worker -coordinator 127.0.0.1:9091 &
//	grape-worker -coordinator 127.0.0.1:9091 &
//	grape -graph road.txt -query sssp -source 17 -workers 6 \
//	      -listen 127.0.0.1:9091 -worker-procs 3
//
// Logging is structured (log/slog) and quiet by default: only warnings and
// errors reach stderr unless -v raises the level to info, which narrates the
// handshake, epoch installs and shutdown with query/epoch/rank attributes.
// -debug-listen serves the worker's own /metrics, /healthz and /debug/pprof
// endpoint for profiling a single process in isolation; the coordinator's
// endpoint already aggregates every worker's counters.
//
// The worker carries no graph state of its own: everything it needs —
// cluster size, its ranks, the fragments, the fragmentation graph — arrives
// through the handshake, so the same binary serves any graph and any query
// the coordinator runs.
//
// With -join the worker enters an already running elastic cluster (one whose
// coordinator enabled recovery) instead of taking part in the initial
// bring-up: it is admitted with no fragments and receives some through the
// session's live rebalancing. The same flag brings a replacement into a
// cluster that lost a worker.
//
// The -parallelism flag (default GOMAXPROCS, 0 or 1 = sequential) sets the
// sweep pool width this process gives each hosted fragment: parallel-capable
// queries chunk their dense vertex sweeps over up to that many goroutines
// per PEval/IncEval, with answers byte-identical to the sequential path. It
// is a process-local setting — each worker sizes its pool to its own
// machine; nothing about it crosses the wire.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"time"

	"grape"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "127.0.0.1:9091", "coordinator address to dial")
		dialTimeout = flag.Duration("dial-timeout", 30*time.Second, "total budget for dialing the coordinator with backoff")
		par         = flag.Int("parallelism", runtime.GOMAXPROCS(0), "per-fragment sweep pool width for parallel-capable queries (0 or 1 = sequential)")
		verbose     = flag.Bool("v", false, "log progress at info level (default: warnings and errors only)")
		debugListen = flag.String("debug-listen", "", "serve /metrics, /healthz and /debug/pprof for this worker process on this address")
		join        = flag.Bool("join", false, "join an already running elastic cluster mid-session instead of taking part in the initial bring-up")
	)
	flag.Parse()

	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	err := grape.ServeWorker(*coordinator, grape.WorkerOptions{
		DialTimeout: *dialTimeout,
		Log:         logger,
		DebugListen: *debugListen,
		Parallelism: *par,
		Join:        *join,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "grape-worker:", err)
		os.Exit(1)
	}
}
