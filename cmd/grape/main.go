// Command grape runs graph queries on a graph file with the GRAPE engine.
//
// Single-query mode partitions, answers one query and exits:
//
//	grape -graph road.txt -query sssp -source 17 -workers 8 -strategy multilevel
//	grape -graph social.txt -query cc -workers 4
//	grape -graph social.txt -query pagerank -workers 4
//
// Serve mode (-serve) loads and partitions the graph once, then answers a
// stream of queries read from stdin — one query per line — over the resident
// session, so every query after the first pays only its own evaluation time:
//
//	grape -graph road.txt -workers 8 -serve <<'EOF'
//	sssp 17
//	sssp 42
//	cc
//	pagerank
//	EOF
//
// Supported serve commands: "sssp <source>", "cc", "pagerank", "help" and
// "quit". On EOF (or "quit") a summary reports the amortized per-query
// latency and throughput of the session.
//
// The graph file uses the text edge-list format of internal/graph (plain
// "src dst weight" lines also work). For sssp the -source flag picks the
// source vertex; results are summarized on stdout (use -top to control how
// many per-vertex values are printed).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"grape"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to the graph file (required)")
		query     = flag.String("query", "sssp", "query class: sssp, cc, pagerank")
		source    = flag.Int64("source", 0, "source vertex for sssp")
		workers   = flag.Int("workers", 4, "number of workers (fragments)")
		strategy  = flag.String("strategy", "multilevel", "partition strategy: hash, range, ldg, multilevel, vertexcut")
		top       = flag.Int("top", 10, "number of per-vertex results to print")
		serve     = flag.Bool("serve", false, "partition once, then answer a stream of queries from stdin")
	)
	flag.Parse()
	if err := run(*graphPath, *query, grape.VertexID(*source), *workers, *strategy, *top, *serve); err != nil {
		fmt.Fprintln(os.Stderr, "grape:", err)
		os.Exit(1)
	}
}

func run(graphPath, query string, source grape.VertexID, workers int, strategy string, top int, serve bool) error {
	if graphPath == "" {
		return fmt.Errorf("missing -graph")
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := grape.ReadGraph(f)
	if err != nil {
		return err
	}
	strat, ok := grape.PartitionStrategy(strategy)
	if !ok {
		return fmt.Errorf("unknown partition strategy %q", strategy)
	}
	opts := grape.Options{Workers: workers, Strategy: strat}
	fmt.Printf("loaded %v\n", g)

	setup := time.Now()
	s, err := grape.NewSession(g, opts)
	if err != nil {
		return err
	}
	defer s.Close()
	setupDur := time.Since(setup)
	fmt.Printf("partitioned once into %d fragments (%s strategy) in %v\n",
		s.NumFragments(), strategy, setupDur.Round(time.Microsecond))

	if serve {
		return serveQueries(s, os.Stdin, top, setupDur)
	}
	switch query {
	case "sssp":
		return answerSSSP(s, source, top)
	case "cc":
		return answerCC(s)
	case "pagerank":
		return answerPageRank(s, top)
	default:
		return fmt.Errorf("unknown query %q (want sssp, cc or pagerank)", query)
	}
}

// serveQueries answers a stream of queries over the resident session: the
// partition-once multi-query mode of Section 3.1.
func serveQueries(s *grape.Session, in io.Reader, top int, setupDur time.Duration) error {
	const usage = "commands: sssp <source> | cc | pagerank | help | quit"
	fmt.Println(usage)
	var queryTime time.Duration
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		start := time.Now()
		var err error
		switch fields[0] {
		case "quit", "exit":
			printSummary(s.Queries(), setupDur, queryTime)
			return nil
		case "help":
			fmt.Println(usage)
			continue
		case "sssp":
			if len(fields) != 2 {
				fmt.Println("usage: sssp <source>")
				continue
			}
			src, perr := strconv.ParseInt(fields[1], 10, 64)
			if perr != nil {
				fmt.Printf("bad source %q\n", fields[1])
				continue
			}
			err = answerSSSP(s, grape.VertexID(src), top)
		case "cc":
			err = answerCC(s)
		case "pagerank":
			err = answerPageRank(s, top)
		default:
			fmt.Printf("unknown query %q; %s\n", fields[0], usage)
			continue
		}
		queryTime += time.Since(start)
		if err != nil {
			fmt.Printf("query failed: %v\n", err)
		}
	}
	printSummary(s.Queries(), setupDur, queryTime)
	return scanner.Err()
}

func printSummary(queries int64, setupDur, queryTime time.Duration) {
	fmt.Printf("session summary: %d queries served\n", queries)
	if queries == 0 {
		return
	}
	amortized := queryTime / time.Duration(queries)
	fmt.Printf("  setup (load+partition, paid once): %v\n", setupDur.Round(time.Microsecond))
	fmt.Printf("  query time total %v, amortized %v/query (%.1f queries/sec)\n",
		queryTime.Round(time.Microsecond), amortized.Round(time.Microsecond),
		float64(queries)/queryTime.Seconds())
}

func answerSSSP(s *grape.Session, source grape.VertexID, top int) error {
	dist, stats, err := s.SSSP(source)
	if err != nil {
		return err
	}
	fmt.Println(stats)
	printFloats("dist", dist, top)
	return nil
}

func answerCC(s *grape.Session) error {
	cc, stats, err := s.CC()
	if err != nil {
		return err
	}
	fmt.Println(stats)
	sizes := map[grape.VertexID]int{}
	for _, cid := range cc {
		sizes[cid]++
	}
	fmt.Printf("connected components: %d\n", len(sizes))
	return nil
}

func answerPageRank(s *grape.Session, top int) error {
	ranks, stats, err := s.PageRank()
	if err != nil {
		return err
	}
	fmt.Println(stats)
	printFloats("rank", ranks, top)
	return nil
}

func printFloats(name string, m map[grape.VertexID]float64, top int) {
	type kv struct {
		v grape.VertexID
		x float64
	}
	all := make([]kv, 0, len(m))
	for v, x := range m {
		all = append(all, kv{v, x})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].x != all[j].x {
			return all[i].x > all[j].x
		}
		return all[i].v < all[j].v
	})
	if top > len(all) {
		top = len(all)
	}
	for _, e := range all[:top] {
		fmt.Printf("  %s(%d) = %g\n", name, e.v, e.x)
	}
}
