// Command grape runs a graph query on a graph file with the GRAPE engine.
//
// Usage:
//
//	grape -graph road.txt -query sssp -source 17 -workers 8 -strategy multilevel
//	grape -graph social.txt -query cc -workers 4
//	grape -graph social.txt -query pagerank -workers 4
//
// The graph file uses the text edge-list format of internal/graph (plain
// "src dst weight" lines also work). For sssp the -source flag picks the
// source vertex; results are summarized on stdout (use -top to control how
// many per-vertex values are printed).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"grape"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to the graph file (required)")
		query     = flag.String("query", "sssp", "query class: sssp, cc, pagerank")
		source    = flag.Int64("source", 0, "source vertex for sssp")
		workers   = flag.Int("workers", 4, "number of workers (fragments)")
		strategy  = flag.String("strategy", "multilevel", "partition strategy: hash, range, ldg, multilevel, vertexcut")
		top       = flag.Int("top", 10, "number of per-vertex results to print")
	)
	flag.Parse()
	if err := run(*graphPath, *query, grape.VertexID(*source), *workers, *strategy, *top); err != nil {
		fmt.Fprintln(os.Stderr, "grape:", err)
		os.Exit(1)
	}
}

func run(graphPath, query string, source grape.VertexID, workers int, strategy string, top int) error {
	if graphPath == "" {
		return fmt.Errorf("missing -graph")
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := grape.ReadGraph(f)
	if err != nil {
		return err
	}
	strat, ok := grape.PartitionStrategy(strategy)
	if !ok {
		return fmt.Errorf("unknown partition strategy %q", strategy)
	}
	opts := grape.Options{Workers: workers, Strategy: strat}
	fmt.Printf("loaded %v\n", g)

	switch query {
	case "sssp":
		dist, stats, err := grape.RunSSSP(g, source, opts)
		if err != nil {
			return err
		}
		fmt.Println(stats)
		printFloats("dist", dist, top)
	case "cc":
		cc, stats, err := grape.RunCC(g, opts)
		if err != nil {
			return err
		}
		fmt.Println(stats)
		sizes := map[grape.VertexID]int{}
		for _, cid := range cc {
			sizes[cid]++
		}
		fmt.Printf("connected components: %d\n", len(sizes))
	case "pagerank":
		ranks, stats, err := grape.RunPageRank(g, opts)
		if err != nil {
			return err
		}
		fmt.Println(stats)
		printFloats("rank", ranks, top)
	default:
		return fmt.Errorf("unknown query %q (want sssp, cc or pagerank)", query)
	}
	return nil
}

func printFloats(name string, m map[grape.VertexID]float64, top int) {
	type kv struct {
		v grape.VertexID
		x float64
	}
	all := make([]kv, 0, len(m))
	for v, x := range m {
		all = append(all, kv{v, x})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].x != all[j].x {
			return all[i].x > all[j].x
		}
		return all[i].v < all[j].v
	})
	if top > len(all) {
		top = len(all)
	}
	for _, e := range all[:top] {
		fmt.Printf("  %s(%d) = %g\n", name, e.v, e.x)
	}
}
