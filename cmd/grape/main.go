// Command grape runs graph queries on a graph file with the GRAPE engine.
//
// Single-query mode partitions, answers one query and exits:
//
//	grape -graph road.txt -query sssp -source 17 -workers 8 -strategy multilevel
//	grape -graph social.txt -query cc -workers 4
//	grape -graph social.txt -query pagerank -workers 4
//
// The -mode flag picks the execution plane: bsp (default) or async. The
// asynchronous plane is supported by sssp, cc and pagerank; it removes the
// superstep barriers, so stragglers do not pace the whole query.
//
// The -parallelism flag sets the width of each worker's sweep pool:
// parallel-capable queries (sssp, cc, pagerank) chunk their dense vertex
// sweeps over up to that many goroutines inside every PEval/IncEval, with
// answers byte-identical to the sequential path. It defaults to GOMAXPROCS;
// 0 or 1 selects the sequential legacy path. In distributed mode the worker
// processes take their own -parallelism flag.
//
// Serve mode (-serve) loads and partitions the graph once, then answers a
// stream of queries read from stdin — one query per line — over the resident
// session, so every query after the first pays only its own evaluation time:
//
//	grape -graph road.txt -workers 8 -serve <<'EOF'
//	sssp 17
//	sssp 42
//	cc
//	pagerank
//	EOF
//
// Serve mode also accepts graph updates interleaved with queries, and can
// materialize queries into live views that are maintained incrementally
// after each update (query → update → maintained answer):
//
//	grape -graph road.txt -workers 8 -serve <<'EOF'
//	mat sssp 17
//	insert 17 42 1.5
//	view 1
//	delete 17 42
//	view 1
//	EOF
//
// Supported serve commands: "sssp <source>", "cc", "pagerank",
// "mat sssp <source>", "mat cc", "view <id>", "views",
// "insert <u> <v> [w]", "delete <u> <v>", "reweight <u> <v> <w>",
// "addv <id> [label]", "rmv <id>", "mode <bsp|async>", "trace <file>",
// "help" and "quit".
// The -mode flag sets the initial plane; "mode" switches it between
// queries (views are always maintained on the BSP plane). "trace <file>"
// writes the most recent query's execution trace as Chrome trace-event JSON
// — open it in Perfetto (https://ui.perfetto.dev) or chrome://tracing to see
// the per-worker PEval/IncEval spans and barriers on a timeline. On EOF (or
// "quit") a summary reports the amortized per-query latency and throughput
// of the session, plus how many update batches were absorbed.
//
// Distributed mode (-listen) turns the process into the coordinator of a
// multi-process cluster: it partitions the graph, waits for -worker-procs
// grape-worker processes to dial in, ships each its fragments over TCP and
// then answers queries (sssp, cc, pagerank; both -mode planes) with the
// evaluation running in the worker processes:
//
//	grape-worker -coordinator 127.0.0.1:9091 &   # × 3
//	grape -graph road.txt -query sssp -source 17 -workers 6 \
//	      -listen 127.0.0.1:9091 -worker-procs 3
//
// Distributed mode combines with -serve, including the dynamic commands:
// insert/delete/reweight/addv/rmv ship fragment deltas to the workers as new
// epochs, and mat/view maintain their answers on the workers' retained state
// — the same commands, either transport.
//
// The -debug-listen flag serves an observability endpoint for the lifetime
// of the process: /metrics exposes the engine's Prometheus counters (in
// distributed mode aggregated across every worker process), /healthz answers
// liveness probes, and /debug/pprof hosts the standard Go profiler.
//
// The graph file uses the text edge-list format of internal/graph (plain
// "src dst weight" lines also work). For sssp the -source flag picks the
// source vertex; results are summarized on stdout (use -top to control how
// many per-vertex values are printed).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"grape"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to the graph file (required)")
		query     = flag.String("query", "sssp", "query class: sssp, cc, pagerank")
		source    = flag.Int64("source", 0, "source vertex for sssp")
		workers   = flag.Int("workers", 4, "number of workers (fragments)")
		strategy  = flag.String("strategy", "multilevel", "partition strategy: hash, range, ldg, multilevel, vertexcut")
		mode      = flag.String("mode", "bsp", "execution plane: bsp or async (async supports sssp, cc, pagerank)")
		top       = flag.Int("top", 10, "number of per-vertex results to print")
		par       = flag.Int("parallelism", runtime.GOMAXPROCS(0), "per-worker sweep pool width for parallel-capable queries (0 or 1 = sequential)")
		serve     = flag.Bool("serve", false, "partition once, then answer a stream of queries from stdin")
		listen    = flag.String("listen", "", "run distributed: listen on this address and ship fragments to grape-worker processes")
		procs     = flag.Int("worker-procs", 3, "number of grape-worker processes to wait for (with -listen)")
		debug     = flag.String("debug-listen", "", "serve /metrics, /healthz and /debug/pprof on this address")
		recovery  = flag.Bool("recovery", false, "with -listen: survive worker deaths (checkpoint + restart queries) and accept grape-worker -join processes mid-session")
	)
	flag.Parse()
	if err := run(*graphPath, *query, grape.VertexID(*source), *workers, *par, *strategy, *mode, *top, *serve, *listen, *procs, *debug, *recovery); err != nil {
		fmt.Fprintln(os.Stderr, "grape:", err)
		os.Exit(1)
	}
}

func run(graphPath, query string, source grape.VertexID, workers, parallelism int, strategy, mode string, top int, serve bool, listen string, procs int, debug string, recovery bool) error {
	if graphPath == "" {
		return fmt.Errorf("missing -graph")
	}
	execMode, err := grape.ParseMode(mode)
	if err != nil {
		return err
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := grape.ReadGraph(f)
	if err != nil {
		return err
	}
	strat, ok := grape.PartitionStrategy(strategy)
	if !ok {
		return fmt.Errorf("unknown partition strategy %q", strategy)
	}
	opts := grape.Options{Workers: workers, Parallelism: parallelism, Strategy: strat, Mode: execMode, DebugListen: debug}
	if listen != "" {
		opts.Distributed = &grape.Distributed{
			Listen:      listen,
			WorkerProcs: procs,
			OnListen: func(addr string) {
				fmt.Fprintf(os.Stderr, "listening on %s, waiting for %d grape-worker processes\n", addr, procs)
			},
		}
		if recovery {
			opts.Recovery = &grape.Recovery{}
		}
	}
	fmt.Printf("loaded %v\n", g)

	setup := time.Now()
	s, err := grape.NewSession(g, opts)
	if err != nil {
		return err
	}
	defer s.Close()
	setupDur := time.Since(setup)
	plane := "in-process"
	if listen != "" {
		plane = fmt.Sprintf("%d worker processes", procs)
	}
	fmt.Printf("partitioned once into %d fragments (%s strategy, %v plane, %s) in %v\n",
		s.NumFragments(), strategy, execMode, plane, setupDur.Round(time.Microsecond))
	if debug != "" {
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s (/metrics, /healthz, /debug/pprof)\n", s.DebugAddr())
	}

	if serve {
		return serveQueries(s, os.Stdin, top, setupDur)
	}
	var err2 error
	switch query {
	case "sssp":
		_, err2 = answerSSSP(s, source, top)
	case "cc":
		_, err2 = answerCC(s, top)
	case "pagerank":
		_, err2 = answerPageRank(s, top)
	default:
		return fmt.Errorf("unknown query %q (want sssp, cc or pagerank)", query)
	}
	return err2
}

// servedView is one materialized view created in serve mode.
type servedView struct {
	id   int
	kind string // "sssp" or "cc"
	sssp *grape.SSSPView
	cc   *grape.CCView
}

func (v *servedView) print(top int) {
	switch v.kind {
	case "sssp":
		dist, err := v.sssp.Distances()
		if err != nil {
			fmt.Printf("view %d: maintenance error: %v\n", v.id, err)
			return
		}
		st := v.sssp.Stats()
		fmt.Printf("view %d: sssp from %d (epoch %d, %d inc / %d recomputed)\n",
			v.id, v.sssp.Source(), st.Epoch, st.Incremental, st.Recomputed)
		printFloats("dist", dist, top)
	case "cc":
		comps, err := v.cc.Components()
		if err != nil {
			fmt.Printf("view %d: maintenance error: %v\n", v.id, err)
			return
		}
		st := v.cc.Stats()
		sizes := map[grape.VertexID]int{}
		for _, cid := range comps {
			sizes[cid]++
		}
		fmt.Printf("view %d: cc (epoch %d, %d inc / %d recomputed): %d components\n",
			v.id, st.Epoch, st.Incremental, st.Recomputed, len(sizes))
	}
}

// serveQueries answers a stream of queries, updates and view commands over
// the resident session: the partition-once multi-query mode of Section 3.1
// extended with the dynamic-graph mode of Section 3.4.
func serveQueries(s *grape.Session, in io.Reader, top int, setupDur time.Duration) error {
	const usage = "commands: sssp <source> | cc | pagerank | mat sssp <source> | mat cc | view <id> | views |" +
		" insert <u> <v> [w] | delete <u> <v> | reweight <u> <v> <w> | addv <id> [label] | rmv <id> |" +
		" mode <bsp|async> | trace <file> | help | quit"
	fmt.Println(usage)
	var queryTime time.Duration
	var lastStats *grape.Stats
	views := map[int]*servedView{}
	nextView := 0
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)

	parseID := func(s string) (grape.VertexID, bool) {
		id, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			fmt.Printf("bad vertex id %q\n", s)
			return 0, false
		}
		return grape.VertexID(id), true
	}
	applyBatch := func(batch []grape.Update) {
		stats, err := s.ApplyUpdates(batch)
		if err != nil {
			fmt.Printf("update failed: %v\n", err)
			return
		}
		fmt.Printf("epoch %d: %d/%d ops applied, %d fragments touched, %d views maintained (%d inc, %d recomputed) in %v\n",
			stats.Epoch, stats.Applied, stats.Ops, stats.AffectedFragments,
			stats.ViewsMaintained, stats.Incremental, stats.Recomputed,
			(stats.PartitionElapsed + stats.ShipElapsed + stats.MaintainElapsed).Round(time.Microsecond))
	}

	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		start := time.Now()
		var err error
		switch fields[0] {
		case "quit", "exit":
			printSummary(s, setupDur, queryTime)
			return nil
		case "help":
			fmt.Println(usage)
			continue
		case "mode":
			if len(fields) != 2 {
				fmt.Printf("current mode: %v; usage: mode <bsp|async>\n", s.ExecMode())
				continue
			}
			m, perr := grape.ParseMode(fields[1])
			if perr != nil {
				fmt.Println(perr)
				continue
			}
			s = s.WithMode(m)
			fmt.Printf("execution plane: %v\n", m)
			continue
		case "trace":
			if len(fields) != 2 {
				fmt.Println("usage: trace <file>")
				continue
			}
			if lastStats == nil {
				fmt.Println("no query answered yet — nothing to trace")
				continue
			}
			raw, terr := lastStats.Trace().ChromeJSON()
			if terr != nil {
				fmt.Printf("trace export failed: %v\n", terr)
				continue
			}
			if terr := os.WriteFile(fields[1], raw, 0o644); terr != nil {
				fmt.Printf("trace export failed: %v\n", terr)
				continue
			}
			fmt.Printf("wrote %d trace events to %s (open in https://ui.perfetto.dev)\n",
				len(lastStats.Trace().Spans()), fields[1])
			continue
		case "sssp":
			if len(fields) != 2 {
				fmt.Println("usage: sssp <source>")
				continue
			}
			src, ok := parseID(fields[1])
			if !ok {
				continue
			}
			var st *grape.Stats
			if st, err = answerSSSP(s, src, top); err == nil {
				lastStats = st
			}
		case "cc":
			var st *grape.Stats
			if st, err = answerCC(s, top); err == nil {
				lastStats = st
			}
		case "pagerank":
			var st *grape.Stats
			if st, err = answerPageRank(s, top); err == nil {
				lastStats = st
			}
		case "mat":
			if len(fields) < 2 {
				fmt.Println("usage: mat sssp <source> | mat cc")
				continue
			}
			switch fields[1] {
			case "sssp":
				if len(fields) != 3 {
					fmt.Println("usage: mat sssp <source>")
					continue
				}
				src, ok := parseID(fields[2])
				if !ok {
					continue
				}
				var view *grape.SSSPView
				if view, err = s.MaterializeSSSP(src); err == nil {
					nextView++
					views[nextView] = &servedView{id: nextView, kind: "sssp", sssp: view}
					fmt.Printf("view %d materialized: sssp from %d\n", nextView, src)
				}
			case "cc":
				var view *grape.CCView
				if view, err = s.MaterializeCC(); err == nil {
					nextView++
					views[nextView] = &servedView{id: nextView, kind: "cc", cc: view}
					fmt.Printf("view %d materialized: cc\n", nextView)
				}
			default:
				fmt.Printf("unknown view kind %q (want sssp or cc)\n", fields[1])
				continue
			}
		case "view":
			if len(fields) != 2 {
				fmt.Println("usage: view <id>")
				continue
			}
			id, perr := strconv.Atoi(fields[1])
			v := views[id]
			if perr != nil || v == nil {
				fmt.Printf("no such view %q\n", fields[1])
				continue
			}
			v.print(top)
			continue
		case "views":
			if len(views) == 0 {
				fmt.Println("no views materialized")
			}
			for id := 1; id <= nextView; id++ {
				if v := views[id]; v != nil {
					v.print(top)
				}
			}
			continue
		case "insert":
			if len(fields) != 3 && len(fields) != 4 {
				fmt.Println("usage: insert <u> <v> [w]")
				continue
			}
			u, ok1 := parseID(fields[1])
			v, ok2 := parseID(fields[2])
			if !ok1 || !ok2 {
				continue
			}
			w := 1.0
			if len(fields) == 4 {
				if w, err = strconv.ParseFloat(fields[3], 64); err != nil {
					fmt.Printf("bad weight %q\n", fields[3])
					continue
				}
			}
			applyBatch([]grape.Update{grape.EdgeInsert(u, v, w)})
			continue
		case "delete":
			if len(fields) != 3 {
				fmt.Println("usage: delete <u> <v>")
				continue
			}
			u, ok1 := parseID(fields[1])
			v, ok2 := parseID(fields[2])
			if !ok1 || !ok2 {
				continue
			}
			applyBatch([]grape.Update{grape.EdgeDelete(u, v)})
			continue
		case "reweight":
			if len(fields) != 4 {
				fmt.Println("usage: reweight <u> <v> <w>")
				continue
			}
			u, ok1 := parseID(fields[1])
			v, ok2 := parseID(fields[2])
			if !ok1 || !ok2 {
				continue
			}
			w, perr := strconv.ParseFloat(fields[3], 64)
			if perr != nil {
				fmt.Printf("bad weight %q\n", fields[3])
				continue
			}
			applyBatch([]grape.Update{grape.EdgeReweight(u, v, w)})
			continue
		case "addv":
			if len(fields) != 2 && len(fields) != 3 {
				fmt.Println("usage: addv <id> [label]")
				continue
			}
			id, ok := parseID(fields[1])
			if !ok {
				continue
			}
			label := ""
			if len(fields) == 3 {
				label = fields[2]
			}
			applyBatch([]grape.Update{grape.VertexAdd(id, label)})
			continue
		case "rmv":
			if len(fields) != 2 {
				fmt.Println("usage: rmv <id>")
				continue
			}
			id, ok := parseID(fields[1])
			if !ok {
				continue
			}
			applyBatch([]grape.Update{grape.VertexRemove(id)})
			continue
		default:
			fmt.Printf("unknown command %q; %s\n", fields[0], usage)
			continue
		}
		queryTime += time.Since(start)
		if err != nil {
			fmt.Printf("query failed: %v\n", err)
		}
	}
	printSummary(s, setupDur, queryTime)
	return scanner.Err()
}

func printSummary(s *grape.Session, setupDur, queryTime time.Duration) {
	queries := s.Queries()
	fmt.Printf("session summary: %d queries served, %d update batches absorbed (epoch %d)\n",
		queries, s.Updates(), s.Epoch())
	if queries == 0 {
		return
	}
	amortized := queryTime / time.Duration(queries)
	fmt.Printf("  setup (load+partition, paid once): %v\n", setupDur.Round(time.Microsecond))
	fmt.Printf("  query time total %v, amortized %v/query (%.1f queries/sec)\n",
		queryTime.Round(time.Microsecond), amortized.Round(time.Microsecond),
		float64(queries)/queryTime.Seconds())
}

func answerSSSP(s *grape.Session, source grape.VertexID, top int) (*grape.Stats, error) {
	dist, stats, err := s.SSSP(source)
	if err != nil {
		return nil, err
	}
	fmt.Println(stats)
	printFloats("dist", dist, top)
	return stats, nil
}

func answerCC(s *grape.Session, top int) (*grape.Stats, error) {
	cc, stats, err := s.CC()
	if err != nil {
		return nil, err
	}
	fmt.Println(stats)
	sizes := map[grape.VertexID]int{}
	for _, cid := range cc {
		sizes[cid]++
	}
	fmt.Printf("connected components: %d\n", len(sizes))
	// Per-vertex membership (bounded by -top, like the float answers): the
	// distributed e2e check diffs these lines, so the comparison covers the
	// actual labelling, not just the component count.
	ids := make([]grape.VertexID, 0, len(cc))
	for v := range cc {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if top > len(ids) {
		top = len(ids)
	}
	for _, v := range ids[:top] {
		fmt.Printf("  cc(%d) = %d\n", v, cc[v])
	}
	return stats, nil
}

func answerPageRank(s *grape.Session, top int) (*grape.Stats, error) {
	ranks, stats, err := s.PageRank()
	if err != nil {
		return nil, err
	}
	fmt.Println(stats)
	printFloats("rank", ranks, top)
	return stats, nil
}

func printFloats(name string, m map[grape.VertexID]float64, top int) {
	type kv struct {
		v grape.VertexID
		x float64
	}
	all := make([]kv, 0, len(m))
	for v, x := range m {
		all = append(all, kv{v, x})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].x != all[j].x {
			return all[i].x > all[j].x
		}
		return all[i].v < all[j].v
	})
	if top > len(all) {
		top = len(all)
	}
	for _, e := range all[:top] {
		fmt.Printf("  %s(%d) = %g\n", name, e.v, e.x)
	}
}
