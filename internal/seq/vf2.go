package seq

import (
	"sort"

	"grape/internal/graph"
)

// Match is one subgraph-isomorphism match: an injective mapping from pattern
// vertex IDs to data-graph vertex IDs that preserves labels and edges.
type Match map[graph.VertexID]graph.VertexID

// SubgraphIsomorphism enumerates matches of pattern q in data graph g with a
// VF2-style backtracking search (Section 5.1, algorithm of Cordella et al.).
// maxMatches caps the number of matches returned (<= 0 means unlimited),
// which keeps the NP-complete enumeration bounded in benchmarks. Matches are
// returned in a deterministic order.
func SubgraphIsomorphism(q, g *graph.Graph, maxMatches int) []Match {
	nq := q.NumVertices()
	if nq == 0 || g.NumVertices() == 0 {
		return nil
	}

	// Candidate sets per pattern vertex: label-compatible data vertices with
	// sufficient degree.
	cands := make([][]int, nq)
	for uq := 0; uq < nq; uq++ {
		for v := 0; v < g.NumVertices(); v++ {
			if g.Label(v) != q.Label(uq) {
				continue
			}
			if g.OutDegree(v) < q.OutDegree(uq) || g.InDegree(v) < q.InDegree(uq) {
				continue
			}
			cands[uq] = append(cands[uq], v)
		}
		if len(cands[uq]) == 0 {
			return nil
		}
	}

	// Matching order: most constrained pattern vertex first (smallest
	// candidate set, ties by higher degree) with connectivity preference so
	// each new vertex is adjacent to an already matched one when possible.
	order := matchingOrder(q, cands)

	mapping := make([]int, nq) // pattern index -> data index, -1 unmatched
	for i := range mapping {
		mapping[i] = -1
	}
	used := make(map[int]bool, nq)
	var out []Match

	var backtrack func(depth int) bool
	backtrack = func(depth int) bool {
		if depth == nq {
			m := make(Match, nq)
			for uq, v := range mapping {
				m[q.VertexAt(uq)] = g.VertexAt(v)
			}
			out = append(out, m)
			return maxMatches > 0 && len(out) >= maxMatches
		}
		uq := order[depth]
		for _, v := range cands[uq] {
			if used[v] {
				continue
			}
			if !consistent(q, g, mapping, uq, v) {
				continue
			}
			mapping[uq] = v
			used[v] = true
			stop := backtrack(depth + 1)
			used[v] = false
			mapping[uq] = -1
			if stop {
				return true
			}
		}
		return false
	}
	backtrack(0)
	return out
}

// consistent checks that mapping pattern vertex uq to data vertex v preserves
// every pattern edge between uq and the already-mapped pattern vertices, in
// both directions.
func consistent(q, g *graph.Graph, mapping []int, uq, v int) bool {
	for _, qe := range q.OutEdges(uq) {
		if w := mapping[qe.To]; w >= 0 && !hasEdgeIdx(g, v, w) {
			return false
		}
	}
	for _, qe := range q.InEdges(uq) {
		if w := mapping[qe.To]; w >= 0 && !hasEdgeIdx(g, w, v) {
			return false
		}
	}
	return true
}

func hasEdgeIdx(g *graph.Graph, from, to int) bool {
	for _, he := range g.OutEdges(from) {
		if int(he.To) == to {
			return true
		}
	}
	return false
}

// matchingOrder picks a search order over pattern vertices: start with the
// most selective vertex, then repeatedly pick the most selective vertex
// adjacent to the already ordered ones (falling back to any remaining vertex
// when the pattern is disconnected).
func matchingOrder(q *graph.Graph, cands [][]int) []int {
	nq := q.NumVertices()
	selectivity := func(uq int) int { return len(cands[uq])*1000 - (q.OutDegree(uq) + q.InDegree(uq)) }

	remaining := make(map[int]bool, nq)
	for i := 0; i < nq; i++ {
		remaining[i] = true
	}
	var order []int
	inOrder := make([]bool, nq)

	pickBest := func(candidates []int) int {
		sort.Ints(candidates)
		best := candidates[0]
		for _, c := range candidates[1:] {
			if selectivity(c) < selectivity(best) {
				best = c
			}
		}
		return best
	}

	all := make([]int, 0, nq)
	for i := 0; i < nq; i++ {
		all = append(all, i)
	}
	first := pickBest(all)
	order = append(order, first)
	inOrder[first] = true
	delete(remaining, first)

	for len(remaining) > 0 {
		// Vertices adjacent to the current order.
		var frontier []int
		for uq := range remaining {
			adj := false
			for _, qe := range q.OutEdges(uq) {
				if inOrder[qe.To] {
					adj = true
					break
				}
			}
			if !adj {
				for _, qe := range q.InEdges(uq) {
					if inOrder[qe.To] {
						adj = true
						break
					}
				}
			}
			if adj {
				//lint:ignore detmap pickBest sorts its candidates, so collection order cannot leak into the match order
				frontier = append(frontier, uq)
			}
		}
		if len(frontier) == 0 {
			for uq := range remaining {
				//lint:ignore detmap pickBest sorts its candidates, so collection order cannot leak into the match order
				frontier = append(frontier, uq)
			}
		}
		next := pickBest(frontier)
		order = append(order, next)
		inOrder[next] = true
		delete(remaining, next)
	}
	return order
}

// PatternDiameter returns the diameter d_Q of the pattern: the maximum over
// all vertex pairs of the shortest hop distance, treating the pattern as
// undirected (Section 5.1 uses it to bound the neighbourhood that subgraph
// isomorphism needs around a border node).
func PatternDiameter(q *graph.Graph) int {
	u := q.Undirect()
	d := 0
	for i := 0; i < u.NumVertices(); i++ {
		u.BFS(i, func(_, depth int) bool {
			if depth > d {
				d = depth
			}
			return true
		})
	}
	return d
}
