package seq

import (
	"grape/internal/graph"
)

// SimResult is a graph-simulation relation: for each pattern (query) vertex,
// the set of data-graph vertices that simulate it. If the graph does not
// match the pattern the relation is empty for at least one query vertex and
// Matches reports false.
type SimResult map[graph.VertexID]map[graph.VertexID]bool

// Matches reports whether every pattern vertex has at least one match, i.e.
// whether the data graph matches the pattern via simulation.
func (r SimResult) Matches() bool {
	for _, set := range r {
		if len(set) == 0 {
			return false
		}
	}
	return len(r) > 0
}

// Count returns the total number of (query vertex, data vertex) pairs in the
// relation.
func (r SimResult) Count() int {
	total := 0
	for _, set := range r {
		total += len(set)
	}
	return total
}

// Simulation computes the unique maximum graph-simulation relation of pattern
// q in data graph g with the fixpoint algorithm of Henzinger, Henzinger &
// Kopke (Section 5.1): start from all label-compatible pairs and repeatedly
// remove pairs (u, v) for which some query edge (u, u') has no witness child
// v' of v in sim(u'), until no more pairs can be removed.
func Simulation(q, g *graph.Graph) SimResult {
	return simulate(q, g, nil)
}

// SimIndex is a neighbourhood index for candidate filtering: for every data
// vertex it records the set of labels reachable in one hop. It is the
// optimization of Exp-3 (Fig 7b): computed offline, it prunes candidates
// before the refinement loop, typically cutting the simulation time roughly
// in half on labeled graphs.
type SimIndex struct {
	outLabels []map[string]bool
}

// HasOutLabel reports whether the vertex at dense index v has at least one
// out-neighbour carrying the given label.
func (idx *SimIndex) HasOutLabel(v int, label string) bool {
	if v < 0 || v >= len(idx.outLabels) {
		return false
	}
	return idx.outLabels[v][label]
}

// BuildSimIndex builds the neighbourhood index for g.
func BuildSimIndex(g *graph.Graph) *SimIndex {
	idx := &SimIndex{outLabels: make([]map[string]bool, g.NumVertices())}
	for i := 0; i < g.NumVertices(); i++ {
		set := make(map[string]bool)
		for _, he := range g.OutEdges(i) {
			set[g.Label(int(he.To))] = true
		}
		idx.outLabels[i] = set
	}
	return idx
}

// SimulationWithIndex computes the same maximum simulation relation as
// Simulation but uses the neighbourhood index to filter initial candidates.
func SimulationWithIndex(q, g *graph.Graph, idx *SimIndex) SimResult {
	return simulate(q, g, idx)
}

func simulate(q, g *graph.Graph, idx *SimIndex) SimResult {
	nq := q.NumVertices()
	ng := g.NumVertices()
	sim := make([]map[int]bool, nq)

	// Initial candidates: label-compatible vertices, optionally pruned by the
	// neighbourhood index (every required child label must be reachable).
	for uq := 0; uq < nq; uq++ {
		cands := make(map[int]bool)
		for v := 0; v < ng; v++ {
			if g.Label(v) != q.Label(uq) {
				continue
			}
			if idx != nil && !indexAdmits(q, uq, g, v, idx) {
				continue
			}
			cands[v] = true
		}
		sim[uq] = cands
	}

	// Refinement to the greatest fixpoint.
	changed := true
	for changed {
		changed = false
		for uq := 0; uq < nq; uq++ {
			for v := range sim[uq] {
				if !hasAllWitnesses(q, uq, g, v, sim) {
					delete(sim[uq], v)
					changed = true
				}
			}
		}
	}

	out := make(SimResult, nq)
	for uq := 0; uq < nq; uq++ {
		set := make(map[graph.VertexID]bool, len(sim[uq]))
		for v := range sim[uq] {
			set[g.VertexAt(v)] = true
		}
		out[q.VertexAt(uq)] = set
	}
	return out
}

// hasAllWitnesses reports whether data vertex v can still simulate query
// vertex uq: for every query edge (uq, uq') some out-neighbour of v must be
// in sim(uq').
func hasAllWitnesses(q *graph.Graph, uq int, g *graph.Graph, v int, sim []map[int]bool) bool {
	for _, qe := range q.OutEdges(uq) {
		target := int(qe.To)
		found := false
		for _, he := range g.OutEdges(v) {
			if sim[target][int(he.To)] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// indexAdmits reports whether the neighbourhood index allows v as a candidate
// for uq: every child label required by the pattern must appear among the
// labels of v's out-neighbours.
func indexAdmits(q *graph.Graph, uq int, g *graph.Graph, v int, idx *SimIndex) bool {
	for _, qe := range q.OutEdges(uq) {
		if !idx.outLabels[v][q.Label(int(qe.To))] {
			return false
		}
	}
	return true
}
