// Package seq is the library of sequential graph algorithms that GRAPE
// parallelizes (Section 5): Dijkstra's single-source shortest paths, DFS
// connected components, graph simulation (plain and index-optimized),
// VF2-style subgraph isomorphism, and stochastic gradient descent for
// collaborative filtering. Each is an ordinary textbook sequential algorithm;
// the PIE programs in internal/pie plug them into the engine essentially
// unchanged, which is the point of the paper.
package seq

import (
	"container/heap"
	"math"
	"sort"

	"grape/internal/graph"
)

// Infinity is the distance assigned to unreachable vertices.
var Infinity = math.Inf(1)

// Dijkstra computes single-source shortest path distances from source over
// the graph's out-edges, treating edge weights as non-negative lengths
// (Figure 3 of the paper, lines 1-14). It returns a map from external vertex
// ID to distance; unreachable vertices map to +Inf. An unknown source yields
// all-infinite distances.
func Dijkstra(g *graph.Graph, source graph.VertexID) map[graph.VertexID]float64 {
	dist := make(map[graph.VertexID]float64, g.NumVertices())
	for i := 0; i < g.NumVertices(); i++ {
		dist[g.VertexAt(i)] = Infinity
	}
	s := g.IndexOf(source)
	if s < 0 {
		return dist
	}
	d := make([]float64, g.NumVertices())
	for i := range d {
		d[i] = Infinity
	}
	d[s] = 0
	pq := &distHeap{}
	heap.Push(pq, distItem{vertex: s, dist: 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.dist > d[it.vertex] {
			continue // stale entry
		}
		for _, he := range g.OutEdges(it.vertex) {
			alt := it.dist + he.Weight
			if alt < d[he.To] {
				d[he.To] = alt
				heap.Push(pq, distItem{vertex: int(he.To), dist: alt})
			}
		}
	}
	for i, dv := range d {
		dist[g.VertexAt(i)] = dv
	}
	return dist
}

// DijkstraFrom runs Dijkstra-style relaxation starting from a set of seed
// vertices with given initial distances, refining the provided distance map
// in place. It is the work-horse shared by the sequential algorithm (single
// seed at distance 0) and the bounded incremental algorithm of
// Ramalingam-Reps used by IncEval (seeds are the border vertices whose
// distance decreased). It returns the external IDs of vertices whose
// distance changed.
func DijkstraFrom(g *graph.Graph, dist map[graph.VertexID]float64, seeds map[graph.VertexID]float64) []graph.VertexID {
	d := make([]float64, g.NumVertices())
	for i := range d {
		if v, ok := dist[g.VertexAt(i)]; ok {
			d[i] = v
		} else {
			d[i] = Infinity
		}
	}
	pq := &distHeap{}
	changed := make(map[int]bool)
	for v, sd := range seeds {
		i := g.IndexOf(v)
		if i < 0 {
			continue
		}
		if sd < d[i] {
			d[i] = sd
			changed[i] = true
		}
		heap.Push(pq, distItem{vertex: i, dist: d[i]})
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.dist > d[it.vertex] {
			continue
		}
		for _, he := range g.OutEdges(it.vertex) {
			alt := it.dist + he.Weight
			if alt < d[he.To] {
				d[he.To] = alt
				changed[int(he.To)] = true
				heap.Push(pq, distItem{vertex: int(he.To), dist: alt})
			}
		}
	}
	// Emit the changed set in dense-index order: the caller ships these
	// vertices, and the wire bytes must not depend on map iteration order.
	idxs := make([]int, 0, len(changed))
	for i := range changed {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]graph.VertexID, 0, len(idxs))
	for _, i := range idxs {
		id := g.VertexAt(i)
		dist[id] = d[i]
		out = append(out, id)
	}
	return out
}

// Seed is a (dense vertex index, tentative distance) pair seeding a dense
// relaxation.
type Seed struct {
	Index int
	Dist  float64
}

// DijkstraFromDense is DijkstraFrom over a dense distance slice indexed by
// the graph's vertex index: it refines d in place from the given seeds with
// no map lookups in the inner loop and no copy of the distance vector. Every
// seed is enqueued (at its improved or existing distance), so the function
// serves both fresh solves and the bounded incremental decrease pass of
// Ramalingam–Reps — relaxation from a seed whose distance did not improve is
// a no-op at the cost of one heap operation. Seeds with out-of-range indices
// are ignored. len(d) must be g.NumVertices().
func DijkstraFromDense(g *graph.Graph, d []float64, seeds []Seed) {
	pq := &distHeap{}
	for _, s := range seeds {
		if s.Index < 0 || s.Index >= len(d) {
			continue
		}
		if s.Dist < d[s.Index] {
			d[s.Index] = s.Dist
		}
		if d[s.Index] < Infinity {
			heap.Push(pq, distItem{vertex: s.Index, dist: d[s.Index]})
		}
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.dist > d[it.vertex] {
			continue // stale entry
		}
		for _, he := range g.OutEdges(it.vertex) {
			alt := it.dist + he.Weight
			if alt < d[he.To] {
				d[he.To] = alt
				heap.Push(pq, distItem{vertex: int(he.To), dist: alt})
			}
		}
	}
}

// BellmanFord computes single-source shortest paths by iterative relaxation.
// It is asymptotically slower than Dijkstra and exists as an independent
// reference implementation for property-based tests.
func BellmanFord(g *graph.Graph, source graph.VertexID) map[graph.VertexID]float64 {
	n := g.NumVertices()
	d := make([]float64, n)
	for i := range d {
		d[i] = Infinity
	}
	if s := g.IndexOf(source); s >= 0 {
		d[s] = 0
	}
	for iter := 0; iter < n; iter++ {
		updated := false
		for u := 0; u < n; u++ {
			if math.IsInf(d[u], 1) {
				continue
			}
			for _, he := range g.OutEdges(u) {
				if alt := d[u] + he.Weight; alt < d[he.To] {
					d[he.To] = alt
					updated = true
				}
			}
		}
		if !updated {
			break
		}
	}
	dist := make(map[graph.VertexID]float64, n)
	for i, dv := range d {
		dist[g.VertexAt(i)] = dv
	}
	return dist
}

type distItem struct {
	vertex int
	dist   float64
}

type distHeap []distItem

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
