package seq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"grape/internal/graph"
	"grape/internal/par"
)

// randomGraph builds a random directed graph with n vertices and ~3n edges.
func randomGraph(rng *rand.Rand, n int, directed bool) *graph.Graph {
	b := graph.NewBuilder(directed)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VertexID(i), "")
	}
	for i := 0; i < 3*n; i++ {
		s, d := rng.Intn(n), rng.Intn(n)
		if s != d {
			b.AddEdge(graph.VertexID(s), graph.VertexID(d), float64(1+rng.Intn(10)), "")
		}
	}
	return b.Build()
}

// TestRelaxDenseMatchesDijkstra checks that the parallel frontier relaxation
// reaches distances bit-identical to DijkstraFromDense on random graphs,
// random seed sets, and a spread of pool widths.
func TestRelaxDenseMatchesDijkstra(t *testing.T) {
	f := func(seed int64, nRaw uint8, widthRaw uint8) bool {
		n := int(nRaw%60) + 2
		width := int(widthRaw%7) + 2
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, n, true)
		want := make([]float64, n)
		got := make([]float64, n)
		for i := range want {
			want[i] = Infinity
			got[i] = Infinity
		}
		seeds := []Seed{{Index: rng.Intn(n), Dist: 0}}
		for k := 0; k < rng.Intn(4); k++ {
			seeds = append(seeds, Seed{Index: rng.Intn(n), Dist: float64(rng.Intn(8))})
		}
		// Out-of-range seeds must be ignored by both.
		seeds = append(seeds, Seed{Index: -1, Dist: 0}, Seed{Index: n, Dist: 0})
		DijkstraFromDense(g, want, seeds)
		RelaxDense(g, got, seeds, par.New(width))
		for i := range want {
			if want[i] != got[i] && !(math.IsInf(want[i], 1) && math.IsInf(got[i], 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRelaxDenseNilPoolFallsBack checks the nil pool selects the sequential
// reference path.
func TestRelaxDenseNilPoolFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 30, true)
	want := make([]float64, 30)
	got := make([]float64, 30)
	for i := range want {
		want[i], got[i] = Infinity, Infinity
	}
	seeds := []Seed{{Index: 0, Dist: 0}}
	DijkstraFromDense(g, want, seeds)
	RelaxDense(g, got, seeds, nil)
	for i := range want {
		if want[i] != got[i] && !(math.IsInf(want[i], 1) && math.IsInf(got[i], 1)) {
			t.Fatalf("dist[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestCCDenseParMatchesDFS checks the concurrent union-find labelling equals
// the sequential DFS labelling exactly, over random undirected and directed
// graphs and a spread of pool widths.
func TestCCDenseParMatchesDFS(t *testing.T) {
	f := func(seed int64, nRaw uint8, widthRaw uint8, directed bool) bool {
		n := int(nRaw%80) + 1
		width := int(widthRaw%7) + 2
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, n, directed)
		want := ConnectedComponentsDense(g)
		got := ConnectedComponentsDensePar(g, par.New(width))
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCCDenseParChunkBoundaries pins the labelling at fragment sizes that
// straddle the pool's chunking: empty, single-vertex, and chunk-size ± 1.
func TestCCDenseParChunkBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, par.ChunkSize - 1, par.ChunkSize, par.ChunkSize + 1} {
		rng := rand.New(rand.NewSource(int64(n)))
		b := graph.NewBuilder(false)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.VertexID(i), "")
		}
		for i := 0; i+1 < n; i += 2 {
			b.AddEdge(graph.VertexID(i), graph.VertexID(rng.Intn(n)), 1, "")
		}
		g := b.Build()
		want := ConnectedComponentsDense(g)
		got := ConnectedComponentsDensePar(g, par.New(4))
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("n=%d: label[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

// TestRelaxDenseChunkBoundaries pins distances at frontier sizes that
// straddle chunking, on a long path graph that forces many rounds.
func TestRelaxDenseChunkBoundaries(t *testing.T) {
	for _, n := range []int{1, 2, par.ChunkSize, par.ChunkSize + 1, 2*par.ChunkSize + 3} {
		b := graph.NewBuilder(true)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.VertexID(i), "")
		}
		for i := 0; i+1 < n; i++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 1, "")
			// Shortcuts create frontier fan-out inside rounds.
			if i+7 < n {
				b.AddEdge(graph.VertexID(i), graph.VertexID(i+7), 5, "")
			}
		}
		g := b.Build()
		want := make([]float64, n)
		got := make([]float64, n)
		for i := range want {
			want[i], got[i] = Infinity, Infinity
		}
		seeds := []Seed{{Index: 0, Dist: 0}}
		DijkstraFromDense(g, want, seeds)
		RelaxDense(g, got, seeds, par.New(3))
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("n=%d: dist[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}
