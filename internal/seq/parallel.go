package seq

import (
	"sync/atomic"

	"grape/internal/graph"
	"grape/internal/par"
)

// This file holds the data-parallel twins of the sequential kernels. Each
// takes a *par.Pool and degrades to the sequential reference implementation
// when the pool is nil or has width 1, and each is constructed so its result
// is byte-identical to the sequential kernel's: SSSP relaxation converges to
// the unique least fixpoint of the min-plus system (identical to Dijkstra
// because non-negative weights make floating-point path sums monotone), and
// the CC union-find assigns the same min-external-ID component labels the DFS
// produces.

// RelaxDense refines the dense distance slice d from the given seeds, like
// DijkstraFromDense, chunking the relaxation work over the pool. It runs
// round-based frontier relaxation: each round sweeps the frontier in
// parallel, with workers reading d and collecting candidate improvements
// into thread-local buffers, then a sequential merge applies the minima and
// builds the next frontier. Workers never write d during a sweep, so the
// kernel is race-free, and the fixpoint it reaches is exactly the one
// Dijkstra computes.
func RelaxDense(g *graph.Graph, d []float64, seeds []Seed, p *par.Pool) {
	if p.Width() <= 1 {
		DijkstraFromDense(g, d, seeds)
		return
	}
	n := len(d)
	inF := make([]bool, n)
	var frontier []int
	for _, s := range seeds {
		if s.Index < 0 || s.Index >= n {
			continue
		}
		if s.Dist < d[s.Index] {
			d[s.Index] = s.Dist
		}
		if d[s.Index] < Infinity && !inF[s.Index] {
			inF[s.Index] = true
			frontier = append(frontier, s.Index)
		}
	}
	bufs := make([][]distItem, p.Width())
	var next []int
	for len(frontier) > 0 {
		// Parallel phase: workers read d (no writes) and buffer candidate
		// relaxations alt < d[to] thread-locally.
		p.Sweep(len(frontier), func(worker, lo, hi int) {
			buf := bufs[worker]
			for k := lo; k < hi; k++ {
				v := frontier[k]
				dv := d[v]
				for _, he := range g.OutEdges(v) {
					if alt := dv + he.Weight; alt < d[he.To] {
						buf = append(buf, distItem{vertex: int(he.To), dist: alt})
					}
				}
			}
			bufs[worker] = buf
		})
		// The frontier's membership flags are stale once the sweep is done;
		// clear them so the merge below can dedup the next frontier.
		for _, v := range frontier {
			inF[v] = false
		}
		next = next[:0]
		for w := range bufs {
			for _, it := range bufs[w] {
				if it.dist < d[it.vertex] {
					d[it.vertex] = it.dist
					if !inF[it.vertex] {
						inF[it.vertex] = true
						next = append(next, it.vertex)
					}
				}
			}
			bufs[w] = bufs[w][:0]
		}
		frontier, next = next, frontier
	}
}

// ConnectedComponentsDensePar is ConnectedComponentsDense with the edge scan
// chunked over the pool: a lock-free union-find (CAS-linked, always linking
// the larger root index under the smaller) merges endpoints of every
// out-edge — in-edges are redundant, as every undirected adjacency is some
// vertex's out-edge — and a sequential labelling pass then assigns each
// component the smallest external vertex ID it contains, matching the DFS
// labelling exactly.
func ConnectedComponentsDensePar(g *graph.Graph, p *par.Pool) []graph.VertexID {
	if p.Width() <= 1 {
		return ConnectedComponentsDense(g)
	}
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for {
			pa := atomic.LoadInt32(&parent[x])
			if pa == x {
				return x
			}
			gp := atomic.LoadInt32(&parent[pa])
			if gp == pa {
				return pa
			}
			// Path halving: best-effort shortcut, correctness does not depend
			// on the CAS winning.
			atomic.CompareAndSwapInt32(&parent[x], pa, gp)
			x = gp
		}
	}
	union := func(a, b int32) {
		for {
			ra, rb := find(a), find(b)
			if ra == rb {
				return
			}
			if ra < rb {
				ra, rb = rb, ra
			}
			if atomic.CompareAndSwapInt32(&parent[ra], ra, rb) {
				return
			}
		}
	}
	p.Sweep(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			for _, he := range g.OutEdges(v) {
				union(int32(v), he.To)
			}
		}
	})
	// Sequential epilogue (the sweep's WaitGroup join orders all the CAS
	// writes before these plain reads): flatten, then label each component
	// with its smallest external vertex ID.
	minID := make([]graph.VertexID, n)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		r := find(int32(i))
		if vid := g.VertexAt(i); !seen[r] || vid < minID[r] {
			minID[r] = vid
			seen[r] = true
		}
	}
	out := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		out[i] = minID[find(int32(i))]
	}
	return out
}
