package seq

import (
	"grape/internal/graph"
)

// ConnectedComponents computes the connected components of g viewed as an
// undirected graph, by depth-first search (Section 5.2; "CC is in O(|G|)
// time"). It returns a map from external vertex ID to a component identifier,
// where the identifier is the smallest external vertex ID in the component —
// the same convention the GRAPE CC program uses for its cids, so sequential
// and parallel results are directly comparable.
func ConnectedComponents(g *graph.Graph) map[graph.VertexID]graph.VertexID {
	n := g.NumVertices()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	// Undirected reachability over a (possibly directed) graph follows both
	// out- and in-edges.
	var stack []int
	next := 0
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := next
		next++
		stack = append(stack[:0], start)
		comp[start] = id
		members := []int{start}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			visit := func(to int32) {
				if comp[to] < 0 {
					comp[to] = id
					stack = append(stack, int(to))
					members = append(members, int(to))
				}
			}
			for _, he := range g.OutEdges(v) {
				visit(he.To)
			}
			for _, he := range g.InEdges(v) {
				visit(he.To)
			}
		}
		_ = members
	}
	// Normalize component identifiers to the minimum external vertex ID of
	// the component.
	minID := make(map[int]graph.VertexID)
	for i := 0; i < n; i++ {
		id := comp[i]
		v := g.VertexAt(i)
		if cur, ok := minID[id]; !ok || v < cur {
			minID[id] = v
		}
	}
	out := make(map[graph.VertexID]graph.VertexID, n)
	for i := 0; i < n; i++ {
		out[g.VertexAt(i)] = minID[comp[i]]
	}
	return out
}

// ConnectedComponentsDense is ConnectedComponents returning the labelling as
// a flat slice indexed by the graph's dense vertex index — the form the
// engine's CC program keeps its partial result in. Identifiers follow the
// same convention: the smallest external vertex ID in the component.
func ConnectedComponentsDense(g *graph.Graph) []graph.VertexID {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int
	minID := make([]graph.VertexID, 0, 16) // per component, smallest external ID seen
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := int32(len(minID))
		minID = append(minID, g.VertexAt(start))
		stack = append(stack[:0], start)
		comp[start] = id
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if vid := g.VertexAt(v); vid < minID[id] {
				minID[id] = vid
			}
			visit := func(to int32) {
				if comp[to] < 0 {
					comp[to] = id
					stack = append(stack, int(to))
				}
			}
			for _, he := range g.OutEdges(v) {
				visit(he.To)
			}
			for _, he := range g.InEdges(v) {
				visit(he.To)
			}
		}
	}
	out := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		out[i] = minID[comp[i]]
	}
	return out
}

// ComponentSizes groups a component labelling into component sizes, keyed by
// component identifier.
func ComponentSizes(cc map[graph.VertexID]graph.VertexID) map[graph.VertexID]int {
	sizes := make(map[graph.VertexID]int)
	for _, cid := range cc {
		sizes[cid]++
	}
	return sizes
}

// NumComponents returns the number of distinct components in a labelling.
func NumComponents(cc map[graph.VertexID]graph.VertexID) int {
	return len(ComponentSizes(cc))
}
