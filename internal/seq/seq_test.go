package seq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"grape/internal/graph"
	"grape/internal/graphgen"
)

func weightedDiamond() *graph.Graph {
	b := graph.NewBuilder(true)
	b.AddVertex(1, "a")
	b.AddVertex(2, "b")
	b.AddVertex(3, "b")
	b.AddVertex(4, "c")
	b.AddVertex(5, "d") // unreachable
	b.AddEdge(1, 2, 1, "")
	b.AddEdge(1, 3, 4, "")
	b.AddEdge(2, 3, 2, "")
	b.AddEdge(2, 4, 7, "")
	b.AddEdge(3, 4, 1, "")
	return b.Build()
}

func TestDijkstraSmall(t *testing.T) {
	g := weightedDiamond()
	d := Dijkstra(g, 1)
	want := map[graph.VertexID]float64{1: 0, 2: 1, 3: 3, 4: 4, 5: Infinity}
	for v, w := range want {
		if d[v] != w {
			t.Fatalf("dist(%d) = %v, want %v", v, d[v], w)
		}
	}
}

func TestDijkstraUnknownSource(t *testing.T) {
	g := weightedDiamond()
	d := Dijkstra(g, 999)
	for v, dv := range d {
		if !math.IsInf(dv, 1) {
			t.Fatalf("dist(%d) = %v, want +Inf for unknown source", v, dv)
		}
	}
}

func TestDijkstraAgreesWithBellmanFord(t *testing.T) {
	g := graphgen.SocialNetwork(300, 5, graphgen.Config{Seed: 3, Labels: 4})
	src := g.VertexAt(g.NumVertices() - 1)
	d1 := Dijkstra(g, src)
	d2 := BellmanFord(g, src)
	for v := range d1 {
		if math.Abs(d1[v]-d2[v]) > 1e-9 && !(math.IsInf(d1[v], 1) && math.IsInf(d2[v], 1)) {
			t.Fatalf("dist(%d): dijkstra %v vs bellman-ford %v", v, d1[v], d2[v])
		}
	}
}

func TestDijkstraFromIncremental(t *testing.T) {
	g := weightedDiamond()
	dist := map[graph.VertexID]float64{1: 0, 2: 1, 3: 3, 4: 4, 5: Infinity}
	// A better distance arrives for vertex 3 (e.g. a shortcut discovered in
	// another fragment): 3 improves to 1, which improves 4 to 2.
	changed := DijkstraFrom(g, dist, map[graph.VertexID]float64{3: 1})
	if dist[3] != 1 || dist[4] != 2 {
		t.Fatalf("incremental relaxation wrong: %v", dist)
	}
	if len(changed) != 2 {
		t.Fatalf("changed = %v, want exactly the affected vertices {3,4}", changed)
	}
	// A worse seed changes nothing.
	changed = DijkstraFrom(g, dist, map[graph.VertexID]float64{2: 100, 42: 1})
	if len(changed) != 0 {
		t.Fatalf("worse seed should change nothing, got %v", changed)
	}
}

// Property: on random graphs, incremental relaxation applied to a partial
// result equals recomputing from scratch (boundedness sanity of IncEval), and
// distances satisfy the triangle inequality over edges.
func TestQuickDijkstraProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 5
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(true)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.VertexID(i), "")
		}
		for i := 0; i < 3*n; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s != d {
				b.AddEdge(graph.VertexID(s), graph.VertexID(d), float64(1+rng.Intn(10)), "")
			}
		}
		g := b.Build()
		src := graph.VertexID(rng.Intn(n))
		dist := Dijkstra(g, src)
		// Triangle inequality on every edge.
		for _, e := range g.Edges() {
			if dist[e.Src]+e.Weight < dist[e.Dst]-1e-9 {
				return false
			}
		}
		// Incremental from an artificially degraded state converges back.
		degraded := make(map[graph.VertexID]float64, len(dist))
		for v, d := range dist {
			if v != src && rng.Intn(2) == 0 && !math.IsInf(d, 1) {
				degraded[v] = d + float64(rng.Intn(5)+1)
			} else {
				degraded[v] = d
			}
		}
		seeds := map[graph.VertexID]float64{src: 0}
		for v, d := range dist {
			if !math.IsInf(d, 1) {
				seeds[v] = degraded[v]
			}
		}
		// Re-relax from all finite vertices of the degraded state; this must
		// not produce anything better than the true distances.
		work := make(map[graph.VertexID]float64, len(degraded))
		for v, d := range degraded {
			work[v] = d
		}
		DijkstraFrom(g, work, map[graph.VertexID]float64{src: 0})
		for v := range dist {
			if work[v]+1e-9 < dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := graph.NewBuilder(false)
	// Component {1,2,3}, component {10,11}, isolated {20}.
	b.AddEdge(1, 2, 1, "")
	b.AddEdge(2, 3, 1, "")
	b.AddEdge(10, 11, 1, "")
	b.AddVertex(20, "")
	g := b.Build()
	cc := ConnectedComponents(g)
	if cc[1] != 1 || cc[2] != 1 || cc[3] != 1 {
		t.Fatalf("component of {1,2,3} = %v %v %v, want 1", cc[1], cc[2], cc[3])
	}
	if cc[10] != 10 || cc[11] != 10 {
		t.Fatalf("component of {10,11} wrong: %v %v", cc[10], cc[11])
	}
	if cc[20] != 20 {
		t.Fatalf("isolated vertex component = %v, want 20", cc[20])
	}
	if NumComponents(cc) != 3 {
		t.Fatalf("NumComponents = %d, want 3", NumComponents(cc))
	}
	sizes := ComponentSizes(cc)
	if sizes[1] != 3 || sizes[10] != 2 || sizes[20] != 1 {
		t.Fatalf("ComponentSizes = %v", sizes)
	}
}

func TestConnectedComponentsDirectedTreatedAsUndirected(t *testing.T) {
	b := graph.NewBuilder(true)
	b.AddEdge(5, 1, 1, "") // direction must not matter for CC
	b.AddEdge(2, 5, 1, "")
	g := b.Build()
	cc := ConnectedComponents(g)
	if cc[1] != 1 || cc[2] != 1 || cc[5] != 1 {
		t.Fatalf("directed edges must not split components: %v", cc)
	}
}

// Property: CC labelling is an equivalence relation consistent with edges:
// both endpoints of every edge share a label, and the label is the minimum
// vertex ID of the component.
func TestQuickConnectedComponents(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(false)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.VertexID(i), "")
		}
		for i := 0; i < n; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s != d {
				b.AddEdge(graph.VertexID(s), graph.VertexID(d), 1, "")
			}
		}
		g := b.Build()
		cc := ConnectedComponents(g)
		for _, e := range g.Edges() {
			if cc[e.Src] != cc[e.Dst] {
				return false
			}
		}
		for v, cid := range cc {
			if cid > v {
				return false // label must be the minimum member
			}
			if _, ok := cc[cid]; !ok || cc[cid] != cid {
				return false // the representative labels itself
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// simTestData builds a small labeled data graph and pattern with a known
// simulation relation.
func simTestData() (q, g *graph.Graph) {
	// Pattern: A -> B -> C.
	qb := graph.NewBuilder(true)
	qb.AddVertex(0, "A")
	qb.AddVertex(1, "B")
	qb.AddVertex(2, "C")
	qb.AddEdge(0, 1, 1, "")
	qb.AddEdge(1, 2, 1, "")

	// Data: a1 -> b1 -> c1 (full chain), a2 -> b2 (b2 has no C child),
	// c2 isolated C.
	gb := graph.NewBuilder(true)
	gb.AddVertex(10, "A")
	gb.AddVertex(11, "B")
	gb.AddVertex(12, "C")
	gb.AddVertex(20, "A")
	gb.AddVertex(21, "B")
	gb.AddVertex(22, "C")
	gb.AddEdge(10, 11, 1, "")
	gb.AddEdge(11, 12, 1, "")
	gb.AddEdge(20, 21, 1, "")
	return qb.Build(), gb.Build()
}

func TestSimulationSmall(t *testing.T) {
	q, g := simTestData()
	res := Simulation(q, g)
	if !res.Matches() {
		t.Fatalf("expected a match")
	}
	if !res[0][10] || res[0][20] {
		t.Fatalf("sim(A) = %v, want {10}", res[0])
	}
	if !res[1][11] || res[1][21] {
		t.Fatalf("sim(B) = %v, want {11}", res[1])
	}
	if !res[2][12] || !res[2][22] {
		t.Fatalf("sim(C) = %v, want {12, 22}", res[2])
	}
	if res.Count() != 4 {
		t.Fatalf("Count = %d, want 4", res.Count())
	}
}

func TestSimulationNoMatch(t *testing.T) {
	qb := graph.NewBuilder(true)
	qb.AddVertex(0, "Z")
	q := qb.Build()
	_, g := simTestData()
	res := Simulation(q, g)
	if res.Matches() {
		t.Fatalf("pattern with unknown label must not match")
	}
}

func TestSimulationWithIndexEquivalent(t *testing.T) {
	g := graphgen.SocialNetwork(400, 4, graphgen.Config{Seed: 5, Labels: 8})
	idx := BuildSimIndex(g)
	for s := int64(0); s < 5; s++ {
		q := graphgen.Pattern(g, 5, 8, s)
		plain := Simulation(q, g)
		indexed := SimulationWithIndex(q, g, idx)
		if plain.Count() != indexed.Count() {
			t.Fatalf("seed %d: plain %d pairs vs indexed %d pairs", s, plain.Count(), indexed.Count())
		}
		for u, set := range plain {
			for v := range set {
				if !indexed[u][v] {
					t.Fatalf("seed %d: indexed result missing (%v,%v)", s, u, v)
				}
			}
		}
	}
}

// Property: the simulation relation is a valid simulation — every pair
// (u, v) satisfies label equality and the child condition.
func TestQuickSimulationIsValid(t *testing.T) {
	f := func(seed int64) bool {
		g := graphgen.KnowledgeBase(120, 3, 4, graphgen.Config{Seed: seed, Labels: 5})
		q := graphgen.Pattern(g, 4, 6, seed+1)
		res := Simulation(q, g)
		for uq := 0; uq < q.NumVertices(); uq++ {
			u := q.VertexAt(uq)
			for v := range res[u] {
				vi := g.IndexOf(v)
				if g.Label(vi) != q.Label(uq) {
					return false
				}
				for _, qe := range q.OutEdges(uq) {
					uChild := q.VertexAt(int(qe.To))
					ok := false
					for _, he := range g.OutEdges(vi) {
						if res[uChild][g.VertexAt(int(he.To))] {
							ok = true
							break
						}
					}
					if !ok {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraphIsomorphismTriangle(t *testing.T) {
	// Pattern: labeled triangle A->B->C->A.
	qb := graph.NewBuilder(true)
	qb.AddVertex(0, "A")
	qb.AddVertex(1, "B")
	qb.AddVertex(2, "C")
	qb.AddEdge(0, 1, 1, "")
	qb.AddEdge(1, 2, 1, "")
	qb.AddEdge(2, 0, 1, "")

	gb := graph.NewBuilder(true)
	gb.AddVertex(10, "A")
	gb.AddVertex(11, "B")
	gb.AddVertex(12, "C")
	gb.AddVertex(13, "B") // extra B not in a triangle
	gb.AddEdge(10, 11, 1, "")
	gb.AddEdge(11, 12, 1, "")
	gb.AddEdge(12, 10, 1, "")
	gb.AddEdge(10, 13, 1, "")

	matches := SubgraphIsomorphism(qb.Build(), gb.Build(), 0)
	if len(matches) != 1 {
		t.Fatalf("found %d matches, want 1: %v", len(matches), matches)
	}
	m := matches[0]
	if m[0] != 10 || m[1] != 11 || m[2] != 12 {
		t.Fatalf("match = %v", m)
	}
}

func TestSubgraphIsomorphismInjective(t *testing.T) {
	// Pattern with two B vertices requires two distinct data vertices.
	qb := graph.NewBuilder(true)
	qb.AddVertex(0, "A")
	qb.AddVertex(1, "B")
	qb.AddVertex(2, "B")
	qb.AddEdge(0, 1, 1, "")
	qb.AddEdge(0, 2, 1, "")

	gb := graph.NewBuilder(true)
	gb.AddVertex(10, "A")
	gb.AddVertex(11, "B")
	gb.AddEdge(10, 11, 1, "")
	if got := SubgraphIsomorphism(qb.Build(), gb.Build(), 0); len(got) != 0 {
		t.Fatalf("injectivity violated: %v", got)
	}

	gb2 := graph.NewBuilder(true)
	gb2.AddVertex(10, "A")
	gb2.AddVertex(11, "B")
	gb2.AddVertex(12, "B")
	gb2.AddEdge(10, 11, 1, "")
	gb2.AddEdge(10, 12, 1, "")
	got := SubgraphIsomorphism(qb.Build(), gb2.Build(), 0)
	if len(got) != 2 { // the two B's can swap
		t.Fatalf("found %d matches, want 2", len(got))
	}
}

func TestSubgraphIsomorphismMaxMatches(t *testing.T) {
	g := graphgen.SocialNetwork(200, 4, graphgen.Config{Seed: 9, Labels: 3})
	q := graphgen.Pattern(g, 3, 3, 7)
	all := SubgraphIsomorphism(q, g, 0)
	if len(all) == 0 {
		t.Skip("pattern has no matches in this generated graph")
	}
	limited := SubgraphIsomorphism(q, g, 1)
	if len(limited) != 1 {
		t.Fatalf("maxMatches=1 returned %d matches", len(limited))
	}
}

func TestSubgraphIsomorphismEmptyInputs(t *testing.T) {
	g := graphgen.SocialNetwork(50, 3, graphgen.Config{Seed: 2, Labels: 3})
	empty := graph.NewBuilder(true).Build()
	if got := SubgraphIsomorphism(empty, g, 0); got != nil {
		t.Fatalf("empty pattern should produce no matches")
	}
	if got := SubgraphIsomorphism(g, empty, 0); got != nil {
		t.Fatalf("empty data graph should produce no matches")
	}
}

// Property: every reported match is a genuine subgraph-isomorphism match:
// injective, label-preserving and edge-preserving.
func TestQuickSubIsoMatchesAreValid(t *testing.T) {
	f := func(seed int64) bool {
		g := graphgen.KnowledgeBase(80, 3, 3, graphgen.Config{Seed: seed, Labels: 4})
		q := graphgen.Pattern(g, 4, 5, seed+3)
		matches := SubgraphIsomorphism(q, g, 20)
		for _, m := range matches {
			seen := map[graph.VertexID]bool{}
			for uq, v := range m {
				if seen[v] {
					return false
				}
				seen[v] = true
				if q.LabelOf(uq) != g.LabelOf(v) {
					return false
				}
			}
			for _, e := range q.Edges() {
				if !g.HasEdge(m[e.Src], m[e.Dst]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternDiameter(t *testing.T) {
	qb := graph.NewBuilder(true)
	qb.AddEdge(0, 1, 1, "")
	qb.AddEdge(1, 2, 1, "")
	qb.AddEdge(2, 3, 1, "")
	if d := PatternDiameter(qb.Build()); d != 3 {
		t.Fatalf("PatternDiameter = %d, want 3", d)
	}
}

func TestSGDTrainingReducesRMSE(t *testing.T) {
	g := graphgen.Bipartite(200, 40, 8, graphgen.Config{Seed: 13})
	ratings := RatingsFromGraph(g)
	if len(ratings) == 0 {
		t.Fatalf("no ratings generated")
	}
	cfg := DefaultSGDConfig()

	// RMSE with raw initial factors.
	init := make(Factors)
	for _, r := range ratings {
		if _, ok := init[r.User]; !ok {
			init[r.User] = InitFactor(r.User, cfg.Factors)
		}
		if _, ok := init[r.Product]; !ok {
			init[r.Product] = InitFactor(r.Product, cfg.Factors)
		}
	}
	before := RMSE(init, ratings)
	trained := Train(ratings, cfg, init.Clone())
	after := RMSE(trained, ratings)
	if after >= before {
		t.Fatalf("training did not reduce RMSE: before %v after %v", before, after)
	}
	if after > 1.5 {
		t.Fatalf("RMSE after training = %v, want a reasonable fit", after)
	}
}

func TestSGDStepMovesTowardRating(t *testing.T) {
	cfg := DefaultSGDConfig()
	u := InitFactor(1, cfg.Factors)
	p := InitFactor(2, cfg.Factors)
	rating := 4.0
	before := math.Abs(rating - Dot(u, p))
	for i := 0; i < 50; i++ {
		SGDStep(u, p, rating, cfg)
	}
	after := math.Abs(rating - Dot(u, p))
	if after >= before {
		t.Fatalf("SGD steps did not reduce error: %v -> %v", before, after)
	}
}

func TestSplitTraining(t *testing.T) {
	ratings := make([]Rating, 100)
	for i := range ratings {
		ratings[i] = Rating{User: graph.VertexID(i), Product: 1000, Value: 3}
	}
	train, test := SplitTraining(ratings, 0.9)
	if len(train) != 90 || len(test) != 10 {
		t.Fatalf("90%% split = %d/%d", len(train), len(test))
	}
	train, test = SplitTraining(ratings, 0.5)
	if len(train) != 50 || len(test) != 50 {
		t.Fatalf("50%% split = %d/%d", len(train), len(test))
	}
	train, test = SplitTraining(ratings, 1.0)
	if len(train) != 100 || len(test) != 0 {
		t.Fatalf("100%% split = %d/%d", len(train), len(test))
	}
	train, test = SplitTraining(ratings, 0)
	if len(train) != 0 || len(test) != 100 {
		t.Fatalf("0%% split = %d/%d", len(train), len(test))
	}
}

func TestRMSEEdgeCases(t *testing.T) {
	if RMSE(nil, nil) != 0 {
		t.Fatalf("RMSE of empty inputs should be 0")
	}
	// Unknown vertices predict zero.
	r := []Rating{{User: 1, Product: 2, Value: 3}}
	if got := RMSE(Factors{}, r); got != 3 {
		t.Fatalf("RMSE with missing factors = %v, want 3", got)
	}
}

func TestInitFactorDeterministic(t *testing.T) {
	a := InitFactor(42, 8)
	b := InitFactor(42, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("InitFactor not deterministic")
		}
		if a[i] <= 0 || a[i] >= 1 {
			t.Fatalf("InitFactor out of expected range: %v", a[i])
		}
	}
	c := InitFactor(43, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different vertices should get different factors")
	}
}
