package seq

import (
	"math"

	"grape/internal/graph"
)

// Rating is one observed user→product rating (a training edge of the CF
// problem, Section 5.3).
type Rating struct {
	User    graph.VertexID
	Product graph.VertexID
	Value   float64
}

// SGDConfig configures the stochastic-gradient-descent trainer.
type SGDConfig struct {
	// Factors is the dimensionality of the latent factor vectors.
	Factors int
	// LearningRate is the SGD step size (λ in equations (1)-(2) of the
	// paper, applied to the prediction error).
	LearningRate float64
	// Regularization is the L2 penalty applied to the factor vectors.
	Regularization float64
	// Epochs is the number of passes over the training set per call to
	// Train.
	Epochs int
}

// DefaultSGDConfig returns the configuration used by the CF experiments.
func DefaultSGDConfig() SGDConfig {
	return SGDConfig{Factors: 8, LearningRate: 0.05, Regularization: 0.05, Epochs: 10}
}

// Factors holds the latent factor vectors of users and products.
type Factors map[graph.VertexID][]float64

// Clone returns a deep copy of the factor table.
func (f Factors) Clone() Factors {
	out := make(Factors, len(f))
	for v, vec := range f {
		out[v] = append([]float64(nil), vec...)
	}
	return out
}

// InitFactor returns a deterministic pseudo-random initial factor vector for
// a vertex. Determinism (a hash of the vertex ID) keeps parallel and
// sequential training comparable and benchmark runs reproducible.
func InitFactor(v graph.VertexID, dims int) []float64 {
	vec := make([]float64, dims)
	x := uint64(v)*2654435761 + 1
	for i := range vec {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vec[i] = 0.1 + 0.8*float64(x%1000)/1000.0/float64(dims)
	}
	return vec
}

// Dot returns the inner product of two equally sized vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SGDStep performs one stochastic gradient step for a single observed rating,
// updating the user and product factor vectors in place (equations (1)-(2)).
// It returns the prediction error before the update.
func SGDStep(userF, productF []float64, rating float64, cfg SGDConfig) float64 {
	err := rating - Dot(userF, productF)
	lr, reg := cfg.LearningRate, cfg.Regularization
	for i := range userF {
		u, p := userF[i], productF[i]
		userF[i] = u + lr*(err*p-reg*u)
		productF[i] = p + lr*(err*u-reg*p)
	}
	return err
}

// Train runs mini-batch SGD (in insertion order, cfg.Epochs passes) over the
// training ratings, initializing missing factor vectors deterministically. It
// returns the trained factors.
func Train(ratings []Rating, cfg SGDConfig, initial Factors) Factors {
	f := initial
	if f == nil {
		f = make(Factors)
	}
	ensure := func(v graph.VertexID) []float64 {
		if vec, ok := f[v]; ok {
			return vec
		}
		vec := InitFactor(v, cfg.Factors)
		f[v] = vec
		return vec
	}
	for e := 0; e < cfg.Epochs; e++ {
		for _, r := range ratings {
			SGDStep(ensure(r.User), ensure(r.Product), r.Value, cfg)
		}
	}
	return f
}

// RMSE returns the root-mean-square prediction error of the factors over the
// given ratings. Ratings whose user or product has no factor vector predict
// zero.
func RMSE(f Factors, ratings []Rating) float64 {
	if len(ratings) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range ratings {
		pred := 0.0
		if uf, ok := f[r.User]; ok {
			if pf, ok := f[r.Product]; ok {
				pred = Dot(uf, pf)
			}
		}
		d := r.Value - pred
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(ratings)))
}

// RatingsFromGraph extracts the training ratings from a bipartite rating
// graph: every edge from a "user"-labeled vertex to a "product"-labeled
// vertex with a non-zero weight is an observed rating.
func RatingsFromGraph(g *graph.Graph) []Rating {
	var out []Rating
	for _, e := range g.Edges() {
		if g.LabelOf(e.Src) == "user" && g.LabelOf(e.Dst) == "product" && e.Weight != 0 {
			out = append(out, Rating{User: e.Src, Product: e.Dst, Value: e.Weight})
		}
	}
	return out
}

// SplitTraining splits ratings into a training set containing roughly
// fraction of the observations and a held-out test set, deterministically by
// position (every k-th rating is held out). It models the paper's
// |ET| = 90%|E| and 50%|E| training sets.
func SplitTraining(ratings []Rating, fraction float64) (train, test []Rating) {
	if fraction >= 1 {
		return ratings, nil
	}
	if fraction <= 0 {
		return nil, ratings
	}
	// Integer arithmetic avoids floating-point drift for common fractions
	// such as 0.9 and 0.5: rating i is held out whenever the cumulative
	// held-out quota increases at position i.
	heldPermille := int64(math.Round((1 - fraction) * 1000))
	for i, r := range ratings {
		before := int64(i) * heldPermille / 1000
		after := int64(i+1) * heldPermille / 1000
		if after > before {
			test = append(test, r)
		} else {
			train = append(train, r)
		}
	}
	return train, test
}
