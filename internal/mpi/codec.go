package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Update is the unit of communication for designated messages: the new value
// of one update parameter (Section 3.2). Vertex identifies the status
// variable's node, Key an algorithm-specific sub-key (for example the query
// node of a simulation variable x_(u,v), or a timestamp for CF), Value a
// numeric payload and Data an optional opaque payload for structured values
// (factor vectors, serialized subgraph pieces).
type Update struct {
	Vertex int64
	Key    int64
	Value  float64
	Data   []byte
}

// KeyValue is the unit of communication for key-value messages, used to
// simulate MapReduce on GRAPE (Section 3.5, Theorem 2).
type KeyValue struct {
	Key   string
	Value []byte
}

// EncodeUpdates serializes a batch of updates with a compact fixed-layout
// binary encoding. The encoded size is what the communication-cost
// experiments (Figure 8) measure.
func EncodeUpdates(ups []Update) []byte {
	size := 4
	for _, u := range ups {
		size += 8 + 8 + 8 + 4 + len(u.Data)
	}
	buf := make([]byte, size)
	off := 0
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(ups)))
	off += 4
	for _, u := range ups {
		binary.LittleEndian.PutUint64(buf[off:], uint64(u.Vertex))
		off += 8
		binary.LittleEndian.PutUint64(buf[off:], uint64(u.Key))
		off += 8
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(u.Value))
		off += 8
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(u.Data)))
		off += 4
		copy(buf[off:], u.Data)
		off += len(u.Data)
	}
	return buf
}

// DecodeUpdates parses a batch produced by EncodeUpdates.
func DecodeUpdates(buf []byte) ([]Update, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("mpi: short update batch (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	off := 4
	ups := make([]Update, 0, n)
	for i := 0; i < n; i++ {
		if off+28 > len(buf) {
			return nil, fmt.Errorf("mpi: truncated update %d of %d", i, n)
		}
		var u Update
		u.Vertex = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		u.Key = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		u.Value = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		dataLen := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+dataLen > len(buf) {
			return nil, fmt.Errorf("mpi: truncated update payload %d of %d", i, n)
		}
		if dataLen > 0 {
			u.Data = append([]byte(nil), buf[off:off+dataLen]...)
		}
		off += dataLen
		ups = append(ups, u)
	}
	return ups, nil
}

// EncodeKeyValues serializes a batch of key-value pairs.
func EncodeKeyValues(kvs []KeyValue) []byte {
	size := 4
	for _, kv := range kvs {
		size += 4 + len(kv.Key) + 4 + len(kv.Value)
	}
	buf := make([]byte, size)
	off := 0
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(kvs)))
	off += 4
	for _, kv := range kvs {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(kv.Key)))
		off += 4
		copy(buf[off:], kv.Key)
		off += len(kv.Key)
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(kv.Value)))
		off += 4
		copy(buf[off:], kv.Value)
		off += len(kv.Value)
	}
	return buf
}

// DecodeKeyValues parses a batch produced by EncodeKeyValues.
func DecodeKeyValues(buf []byte) ([]KeyValue, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("mpi: short key-value batch (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	off := 4
	kvs := make([]KeyValue, 0, n)
	for i := 0; i < n; i++ {
		if off+4 > len(buf) {
			return nil, fmt.Errorf("mpi: truncated key %d of %d", i, n)
		}
		kl := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+kl+4 > len(buf) {
			return nil, fmt.Errorf("mpi: truncated key %d of %d", i, n)
		}
		key := string(buf[off : off+kl])
		off += kl
		vl := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+vl > len(buf) {
			return nil, fmt.Errorf("mpi: truncated value %d of %d", i, n)
		}
		val := append([]byte(nil), buf[off:off+vl]...)
		off += vl
		kvs = append(kvs, KeyValue{Key: key, Value: val})
	}
	return kvs, nil
}

// Float64sToBytes encodes a float64 vector as bytes, used for CF factor
// vectors.
func Float64sToBytes(v []float64) []byte {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf
}

// BytesToFloat64s decodes a vector encoded by Float64sToBytes.
func BytesToFloat64s(buf []byte) []float64 {
	n := len(buf) / 8
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}
