package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"grape/internal/graph"
)

// Update is the unit of communication for designated messages: the new value
// of one update parameter (Section 3.2). Vertex identifies the status
// variable's node, Key an algorithm-specific sub-key (for example the query
// node of a simulation variable x_(u,v), or a timestamp for CF), Value a
// numeric payload and Data an optional opaque payload for structured values
// (factor vectors, serialized subgraph pieces).
type Update struct {
	Vertex int64
	Key    int64
	Value  float64
	Data   []byte
}

// KeyValue is the unit of communication for key-value messages, used to
// simulate MapReduce on GRAPE (Section 3.5, Theorem 2).
type KeyValue struct {
	Key   string
	Value []byte
}

// Update-batch wire formats. The original fixed-layout format starts with
// the batch length as a uint32; the compact varint format starts with a
// 4-byte sentinel no fixed-layout batch can produce (a batch of 2^32-1
// updates is impossible to materialize), followed by a format byte. Decode
// accepts both, so mixed-version peers and recorded payloads keep working.
const (
	// varintSentinel marks a headered batch. It reads as an impossible batch
	// length under the legacy fixed layout.
	varintSentinel = uint32(0xFFFFFFFF)
	// formatVarint identifies the varint/delta update encoding.
	formatVarint = byte(0x01)
	// varintHeaderLen is the sentinel plus the format byte.
	varintHeaderLen = 5
)

// EncodeUpdates serializes a batch of updates with the varint/delta
// encoding: Vertex and Key are zigzag-varint deltas against the previous
// update, which collapses to one or two bytes per field on the
// sorted-by-vertex batches the engine routes (Context.takeDirty emits
// batches in ascending vertex order). The encoded size is what the
// communication-cost experiments (Figure 8) measure.
func EncodeUpdates(ups []Update) []byte {
	size := varintHeaderLen + binary.MaxVarintLen64
	for _, u := range ups {
		size += 2*binary.MaxVarintLen64 + 8 + binary.MaxVarintLen64 + len(u.Data)
	}
	buf := make([]byte, varintHeaderLen, size)
	binary.LittleEndian.PutUint32(buf, varintSentinel)
	buf[4] = formatVarint
	buf = binary.AppendUvarint(buf, uint64(len(ups)))
	var vb [8]byte
	prevV, prevK := int64(0), int64(0)
	for _, u := range ups {
		buf = binary.AppendVarint(buf, u.Vertex-prevV)
		buf = binary.AppendVarint(buf, u.Key-prevK)
		prevV, prevK = u.Vertex, u.Key
		binary.LittleEndian.PutUint64(vb[:], math.Float64bits(u.Value))
		buf = append(buf, vb[:]...)
		buf = binary.AppendUvarint(buf, uint64(len(u.Data)))
		buf = append(buf, u.Data...)
	}
	return buf
}

// encodeUpdatesFixed serializes a batch with the legacy fixed-layout
// encoding. It is kept so the backward-compatibility path of DecodeUpdates
// stays tested (and as the ablation point for the codec optimization).
func encodeUpdatesFixed(ups []Update) []byte {
	size := 4
	for _, u := range ups {
		size += 8 + 8 + 8 + 4 + len(u.Data)
	}
	buf := make([]byte, size)
	off := 0
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(ups)))
	off += 4
	for _, u := range ups {
		binary.LittleEndian.PutUint64(buf[off:], uint64(u.Vertex))
		off += 8
		binary.LittleEndian.PutUint64(buf[off:], uint64(u.Key))
		off += 8
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(u.Value))
		off += 8
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(u.Data)))
		off += 4
		copy(buf[off:], u.Data)
		off += len(u.Data)
	}
	return buf
}

// DecodeUpdates parses a batch produced by EncodeUpdates, current or legacy:
// headered batches dispatch on their format byte, everything else decodes as
// the fixed layout.
func DecodeUpdates(buf []byte) ([]Update, error) {
	if len(buf) >= varintHeaderLen && binary.LittleEndian.Uint32(buf) == varintSentinel {
		if f := buf[4]; f != formatVarint {
			return nil, fmt.Errorf("mpi: unknown update batch format 0x%02x", f)
		}
		return decodeUpdatesVarint(buf[varintHeaderLen:])
	}
	return decodeUpdatesFixed(buf)
}

func decodeUpdatesVarint(buf []byte) ([]Update, error) {
	n, off := binary.Uvarint(buf)
	if off <= 0 {
		return nil, fmt.Errorf("mpi: bad update batch length")
	}
	// Every update takes at least 11 bytes (two 1-byte deltas, the value, a
	// 1-byte data length), which bounds n for truncated buffers before any
	// allocation happens.
	if n > uint64(len(buf)-off)/11+1 {
		return nil, fmt.Errorf("mpi: update batch length %d exceeds payload", n)
	}
	ups := make([]Update, 0, n)
	prevV, prevK := int64(0), int64(0)
	for i := uint64(0); i < n; i++ {
		dv, w := binary.Varint(buf[off:])
		if w <= 0 {
			return nil, fmt.Errorf("mpi: truncated update %d of %d", i, n)
		}
		off += w
		dk, w := binary.Varint(buf[off:])
		if w <= 0 {
			return nil, fmt.Errorf("mpi: truncated update %d of %d", i, n)
		}
		off += w
		if off+8 > len(buf) {
			return nil, fmt.Errorf("mpi: truncated update %d of %d", i, n)
		}
		var u Update
		u.Vertex = prevV + dv
		u.Key = prevK + dk
		prevV, prevK = u.Vertex, u.Key
		u.Value = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		dl, w := binary.Uvarint(buf[off:])
		if w <= 0 {
			return nil, fmt.Errorf("mpi: truncated update payload %d of %d", i, n)
		}
		off += w
		if dl > uint64(len(buf)-off) {
			return nil, fmt.Errorf("mpi: truncated update payload %d of %d", i, n)
		}
		if dl > 0 {
			u.Data = append([]byte(nil), buf[off:off+int(dl)]...)
		}
		off += int(dl)
		ups = append(ups, u)
	}
	return ups, nil
}

func decodeUpdatesFixed(buf []byte) ([]Update, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("mpi: short update batch (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	off := 4
	if n > (len(buf)-off)/28+1 {
		return nil, fmt.Errorf("mpi: update batch length %d exceeds payload", n)
	}
	ups := make([]Update, 0, n)
	for i := 0; i < n; i++ {
		if off+28 > len(buf) {
			return nil, fmt.Errorf("mpi: truncated update %d of %d", i, n)
		}
		var u Update
		u.Vertex = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		u.Key = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		u.Value = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		dataLen := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if dataLen < 0 || dataLen > len(buf)-off {
			return nil, fmt.Errorf("mpi: truncated update payload %d of %d", i, n)
		}
		if dataLen > 0 {
			u.Data = append([]byte(nil), buf[off:off+dataLen]...)
		}
		off += dataLen
		ups = append(ups, u)
	}
	return ups, nil
}

// EncodeKeyValues serializes a batch of key-value pairs.
func EncodeKeyValues(kvs []KeyValue) []byte {
	size := 4
	for _, kv := range kvs {
		size += 4 + len(kv.Key) + 4 + len(kv.Value)
	}
	buf := make([]byte, size)
	off := 0
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(kvs)))
	off += 4
	for _, kv := range kvs {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(kv.Key)))
		off += 4
		copy(buf[off:], kv.Key)
		off += len(kv.Key)
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(kv.Value)))
		off += 4
		copy(buf[off:], kv.Value)
		off += len(kv.Value)
	}
	return buf
}

// DecodeKeyValues parses a batch produced by EncodeKeyValues.
func DecodeKeyValues(buf []byte) ([]KeyValue, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("mpi: short key-value batch (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	off := 4
	// Every pair costs at least its two length prefixes, which bounds any
	// honest count — reject the header before allocating for it.
	if n > (len(buf)-off)/8 {
		return nil, fmt.Errorf("mpi: key-value batch claims %d pairs in %d bytes", n, len(buf))
	}
	kvs := make([]KeyValue, 0, n)
	for i := 0; i < n; i++ {
		if off+4 > len(buf) {
			return nil, fmt.Errorf("mpi: truncated key %d of %d", i, n)
		}
		kl := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+kl+4 > len(buf) {
			return nil, fmt.Errorf("mpi: truncated key %d of %d", i, n)
		}
		key := string(buf[off : off+kl])
		off += kl
		vl := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+vl > len(buf) {
			return nil, fmt.Errorf("mpi: truncated value %d of %d", i, n)
		}
		val := append([]byte(nil), buf[off:off+vl]...)
		off += vl
		kvs = append(kvs, KeyValue{Key: key, Value: val})
	}
	return kvs, nil
}

// Graph-update op batches. A distributed session's ApplyUpdates routes ops
// to the fragments that own them and ships each fragment's slice of the
// batch to the worker process hosting it, where EvalDelta replays them
// during view maintenance. The encoding follows the same varint/delta
// discipline as the designated-message batches above: one format byte, then
// per op the kind, zigzag-varint Src/Dst deltas against the previous op,
// and — only for the kinds that carry them — the weight bits and the label.
const graphUpdateFormat = byte(0x01)

// EncodeGraphUpdates serializes a batch of graph update ops for the wire.
func EncodeGraphUpdates(ops []graph.Update) []byte {
	size := 1 + binary.MaxVarintLen64
	for _, op := range ops {
		size += 1 + 2*binary.MaxVarintLen64 + 8 + binary.MaxVarintLen64 + len(op.Label)
	}
	buf := make([]byte, 1, size)
	buf[0] = graphUpdateFormat
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	var wb [8]byte
	prevS, prevD := int64(0), int64(0)
	for _, op := range ops {
		buf = append(buf, byte(op.Kind))
		buf = binary.AppendVarint(buf, int64(op.Src)-prevS)
		buf = binary.AppendVarint(buf, int64(op.Dst)-prevD)
		prevS, prevD = int64(op.Src), int64(op.Dst)
		if op.Kind == graph.UpdateAddEdge || op.Kind == graph.UpdateReweightEdge {
			binary.LittleEndian.PutUint64(wb[:], math.Float64bits(op.Weight))
			buf = append(buf, wb[:]...)
		}
		if op.Kind == graph.UpdateAddVertex || op.Kind == graph.UpdateAddEdge {
			buf = binary.AppendUvarint(buf, uint64(len(op.Label)))
			buf = append(buf, op.Label...)
		}
	}
	return buf
}

// DecodeGraphUpdates parses a batch produced by EncodeGraphUpdates.
func DecodeGraphUpdates(buf []byte) ([]graph.Update, error) {
	if len(buf) < 1 {
		return nil, fmt.Errorf("mpi: empty graph-update batch")
	}
	if buf[0] != graphUpdateFormat {
		return nil, fmt.Errorf("mpi: unknown graph-update batch format 0x%02x", buf[0])
	}
	buf = buf[1:]
	n, off := binary.Uvarint(buf)
	if off <= 0 {
		return nil, fmt.Errorf("mpi: bad graph-update batch length")
	}
	// Every op takes at least 3 bytes (kind plus two 1-byte deltas), which
	// bounds n for truncated buffers before any allocation happens.
	if n > uint64(len(buf)-off)/3+1 {
		return nil, fmt.Errorf("mpi: graph-update batch length %d exceeds payload", n)
	}
	ops := make([]graph.Update, 0, n)
	prevS, prevD := int64(0), int64(0)
	for i := uint64(0); i < n; i++ {
		if off >= len(buf) {
			return nil, fmt.Errorf("mpi: truncated graph update %d of %d", i, n)
		}
		var op graph.Update
		op.Kind = graph.UpdateKind(buf[off])
		off++
		if op.Kind > graph.UpdateReweightEdge {
			return nil, fmt.Errorf("mpi: unknown graph-update kind 0x%02x", byte(op.Kind))
		}
		ds, w := binary.Varint(buf[off:])
		if w <= 0 {
			return nil, fmt.Errorf("mpi: truncated graph update %d of %d", i, n)
		}
		off += w
		dd, w := binary.Varint(buf[off:])
		if w <= 0 {
			return nil, fmt.Errorf("mpi: truncated graph update %d of %d", i, n)
		}
		off += w
		op.Src = graph.VertexID(prevS + ds)
		op.Dst = graph.VertexID(prevD + dd)
		prevS, prevD = int64(op.Src), int64(op.Dst)
		if op.Kind == graph.UpdateAddEdge || op.Kind == graph.UpdateReweightEdge {
			if off+8 > len(buf) {
				return nil, fmt.Errorf("mpi: truncated graph update %d of %d", i, n)
			}
			op.Weight = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		if op.Kind == graph.UpdateAddVertex || op.Kind == graph.UpdateAddEdge {
			ll, w := binary.Uvarint(buf[off:])
			if w <= 0 || ll > uint64(len(buf)-off-w) {
				return nil, fmt.Errorf("mpi: truncated graph-update label %d of %d", i, n)
			}
			off += w
			op.Label = string(buf[off : off+int(ll)])
			off += int(ll)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// Float64sToBytes encodes a float64 vector as bytes, used for CF factor
// vectors.
func Float64sToBytes(v []float64) []byte {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf
}

// BytesToFloat64s decodes a vector encoded by Float64sToBytes.
func BytesToFloat64s(buf []byte) []float64 {
	n := len(buf) / 8
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}
