package mpi

import (
	"math/rand"
	"reflect"
	"testing"

	"grape/internal/graph"
)

func TestGraphUpdateCodecRoundTrip(t *testing.T) {
	cases := map[string][]graph.Update{
		"empty": {},
		"mixed": {
			graph.AddVertexUpdate(7, "user"),
			graph.AddVertexUpdate(9, ""),
			graph.AddEdgeUpdate(7, 9, 2.5, "follows"),
			graph.AddEdgeUpdate(9, 1_000_000, 0.125, ""),
			graph.ReweightEdgeUpdate(7, 9, 1e-9),
			graph.RemoveEdgeUpdate(9, 7),
			graph.RemoveVertexUpdate(1_000_000),
		},
		"sorted-run": {
			graph.AddEdgeUpdate(100, 101, 1, ""),
			graph.AddEdgeUpdate(101, 102, 1, ""),
			graph.AddEdgeUpdate(102, 103, 1, ""),
		},
	}
	for name, ops := range cases {
		t.Run(name, func(t *testing.T) {
			got, err := DecodeGraphUpdates(EncodeGraphUpdates(ops))
			if err != nil {
				t.Fatalf("DecodeGraphUpdates: %v", err)
			}
			want := ops
			if len(want) == 0 {
				want = nil
				if len(got) != 0 {
					t.Fatalf("decoded %d ops from an empty batch", len(got))
				}
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, want)
			}
		})
	}
}

func TestGraphUpdateCodecRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	labels := []string{"", "a", "city", "long-label-with-text"}
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(40)
		ops := make([]graph.Update, 0, n)
		for i := 0; i < n; i++ {
			src := graph.VertexID(r.Intn(1 << 20))
			dst := graph.VertexID(r.Intn(1 << 20))
			switch r.Intn(5) {
			case 0:
				ops = append(ops, graph.AddVertexUpdate(src, labels[r.Intn(len(labels))]))
			case 1:
				ops = append(ops, graph.RemoveVertexUpdate(src))
			case 2:
				ops = append(ops, graph.AddEdgeUpdate(src, dst, r.Float64()*100, labels[r.Intn(len(labels))]))
			case 3:
				ops = append(ops, graph.RemoveEdgeUpdate(src, dst))
			case 4:
				ops = append(ops, graph.ReweightEdgeUpdate(src, dst, r.Float64()*100))
			}
		}
		got, err := DecodeGraphUpdates(EncodeGraphUpdates(ops))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(ops) == 0 {
			if len(got) != 0 {
				t.Fatalf("trial %d: decoded %d ops from empty batch", trial, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, ops) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

// TestGraphUpdateCodecCorruption: truncations and bit flips must fail with an
// error, never panic or return phantom ops.
func TestGraphUpdateCodecCorruption(t *testing.T) {
	ops := []graph.Update{
		graph.AddVertexUpdate(3, "v"),
		graph.AddEdgeUpdate(3, 4, 1.5, "e"),
		graph.ReweightEdgeUpdate(3, 4, 2.5),
	}
	enc := EncodeGraphUpdates(ops)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeGraphUpdates(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 0x7F
	if _, err := DecodeGraphUpdates(bad); err == nil {
		t.Fatalf("unknown format byte accepted")
	}
	bad = append([]byte(nil), enc...)
	bad[2] = 0x6E // kind byte of the first op
	if _, err := DecodeGraphUpdates(bad); err == nil {
		t.Fatalf("unknown op kind accepted")
	}
}
