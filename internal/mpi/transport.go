package mpi

import "grape/internal/metrics"

// Transport is the cluster substrate a session runs over: the membership and
// synchronization primitives the engine's runner planes use, independent of
// whether the fragments they coordinate live in this process or in remote
// worker processes.
//
// Two implementations exist. The in-process Cluster below keeps every
// fragment in the coordinator's address space and is the default. The TCP
// transport in the mpi/net subpackage runs fragments in separate worker
// processes connected over length-prefixed TCP streams; its coordinator-side
// Cluster embeds an in-process Cluster, so mailboxes, barriers and compute
// slots behave identically — only where PEval/IncEval execute differs (the
// engine forwards those calls through net.Peer handles).
//
// Mailboxes stay coordinator-side on every transport: a query-scoped Comm
// buffers and meters the designated messages, and for remote fragments the
// engine moves inbox/outbox contents across the wire around each evaluation
// call. This keeps the two execution planes (BSP's boundary delivery, the
// async plane's immediate visibility with sent/received accounting) correct
// without the transport having to re-implement either discipline.
type Transport interface {
	// NumWorkers returns the number of workers (fragments) in the cluster.
	NumWorkers() int
	// NewComm creates a query-scoped BSP communicator. Stats may be nil.
	NewComm(stats *metrics.Stats) *Comm
	// NewAsyncComm creates a query-scoped communicator with asynchronous
	// delivery semantics (immediate visibility, wake signals, counters).
	NewAsyncComm(stats *metrics.Stats) *Comm
	// LimitParallelism installs a cluster-wide cap on concurrent local
	// computation; k <= 0 removes it.
	LimitParallelism(k int)
	// AcquireSlot claims a compute slot (a no-op release when no limit is
	// installed).
	AcquireSlot() (release func())
	// BarrierFor runs fn(rank) for every rank the liveness predicate admits,
	// bounded by parallelism, and waits for all of them.
	BarrierFor(alive func(rank int) bool, parallelism int, fn func(rank int) error) (int, error)
	// Close releases transport resources. For networked transports it
	// performs the graceful shutdown of the worker processes; for the
	// in-process cluster it is a no-op. Close is idempotent.
	Close() error
}

// Close implements Transport for the in-process cluster: there is nothing to
// release, mailboxes are garbage-collected with their communicators.
func (c *Cluster) Close() error { return nil }

// Compile-time check that the in-process cluster satisfies Transport.
var _ Transport = (*Cluster)(nil)
