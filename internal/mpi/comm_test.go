package mpi

import (
	"sync"
	"testing"

	"grape/internal/metrics"
)

func TestCommIsolation(t *testing.T) {
	c := mustCluster(t, 2, nil)
	a := c.NewComm(nil)
	b := c.NewComm(nil)
	if a.Query() == b.Query() {
		t.Fatalf("communicators share query id %d", a.Query())
	}

	a.Send(0, 1, "upd", []byte("from-a"))
	b.Send(0, 1, "upd", []byte("from-b"))
	b.Send(1, 0, "upd", []byte("back"))

	if got := a.PendingFor(1); got != 1 {
		t.Fatalf("comm a PendingFor(1) = %d, want 1", got)
	}
	if got := b.TotalPending(); got != 2 {
		t.Fatalf("comm b TotalPending = %d, want 2", got)
	}
	envs := a.Deliver(1)
	if len(envs) != 1 || string(envs[0].Payload) != "from-a" {
		t.Fatalf("comm a delivered %+v, want only its own envelope", envs)
	}
	if envs[0].Query != a.Query() {
		t.Fatalf("envelope query id = %d, want %d", envs[0].Query, a.Query())
	}
	// Draining a must not touch b's mailboxes.
	if got := b.TotalPending(); got != 2 {
		t.Fatalf("comm b TotalPending after draining a = %d, want 2", got)
	}
}

func TestCommPerQueryMetering(t *testing.T) {
	c := mustCluster(t, 2, nil)
	sa, sb := &metrics.Stats{}, &metrics.Stats{}
	a := c.NewComm(sa)
	b := c.NewComm(sb)
	a.Send(0, 1, "upd", []byte("abc"))
	a.Send(0, 0, "upd", []byte("local")) // self-send: not metered
	b.Send(1, 0, "upd", []byte("defgh"))
	if sa.MessagesSent != 1 || sa.BytesSent != 3 {
		t.Fatalf("comm a stats = %d msgs %d bytes, want 1/3", sa.MessagesSent, sa.BytesSent)
	}
	if sb.MessagesSent != 1 || sb.BytesSent != 5 {
		t.Fatalf("comm b stats = %d msgs %d bytes, want 1/5", sb.MessagesSent, sb.BytesSent)
	}
}

func TestClusterDefaultCommCompat(t *testing.T) {
	// The Cluster-level Send/Deliver must not observe per-query traffic.
	stats := &metrics.Stats{}
	c := mustCluster(t, 2, stats)
	q := c.NewComm(nil)
	q.Send(0, 1, "upd", []byte("query-scoped"))
	if got := c.PendingFor(1); got != 0 {
		t.Fatalf("default comm sees query traffic: PendingFor(1) = %d", got)
	}
	c.Send(0, 1, "upd", []byte("default"))
	if got := c.PendingFor(1); got != 1 {
		t.Fatalf("default comm PendingFor(1) = %d, want 1", got)
	}
	if stats.MessagesSent != 1 {
		t.Fatalf("default comm metered %d msgs, want 1", stats.MessagesSent)
	}
}

func TestLimitParallelism(t *testing.T) {
	c := mustCluster(t, 8, nil)
	c.LimitParallelism(2)
	var mu sync.Mutex
	running, peak := 0, 0
	_, err := c.Barrier(0, func(rank int) error {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		mu.Unlock()
		mu.Lock()
		running--
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 2 {
		t.Fatalf("peak concurrency %d exceeds cluster-wide limit 2", peak)
	}
	// Removing the limit restores unbounded behavior (no hang, all ranks run).
	c.LimitParallelism(0)
	ran := 0
	c.Barrier(0, func(rank int) error { //nolint:errcheck
		mu.Lock()
		ran++
		mu.Unlock()
		return nil
	})
	if ran != 8 {
		t.Fatalf("ran %d ranks after removing limit, want 8", ran)
	}
}

func TestBarrierForCustomLiveness(t *testing.T) {
	c := mustCluster(t, 4, nil)
	var mu sync.Mutex
	ran := map[int]bool{}
	rank, err := c.BarrierFor(func(r int) bool { return r != 3 }, 0, func(r int) error {
		mu.Lock()
		ran[r] = true
		mu.Unlock()
		return nil
	})
	if err != nil || rank != -1 {
		t.Fatalf("BarrierFor error = %v (rank %d)", err, rank)
	}
	if len(ran) != 3 || ran[3] {
		t.Fatalf("BarrierFor ran %v, want all ranks except 3", ran)
	}
}
