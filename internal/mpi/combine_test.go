package mpi

import (
	"testing"

	"grape/internal/metrics"
)

func minCombine(existing, incoming Update) Update {
	if incoming.Value < existing.Value {
		return incoming
	}
	return existing
}

func TestCombiningFoldsPerDestination(t *testing.T) {
	c := mustCluster(t, 3, nil)
	stats := &metrics.Stats{}
	m := c.NewComm(stats)
	m.EnableCombining("upd", minCombine)

	// Two senders ship the same vertex to rank 2; the smaller value must win
	// and exactly one envelope must arrive.
	m.Send(0, 2, "upd", EncodeUpdates([]Update{{Vertex: 7, Key: 0, Value: 5}}))
	m.Send(1, 2, "upd", EncodeUpdates([]Update{{Vertex: 7, Key: 0, Value: 3}, {Vertex: 9, Key: 0, Value: 1}}))
	if got := m.PendingFor(2); got != 1 {
		t.Fatalf("PendingFor(2) = %d, want 1 (combine buffer counts as one envelope)", got)
	}
	if got := m.TotalPending(); got != 1 {
		t.Fatalf("TotalPending = %d, want 1", got)
	}

	envs := m.Deliver(2)
	if len(envs) != 1 {
		t.Fatalf("Deliver(2) returned %d envelopes, want 1 combined", len(envs))
	}
	ups, err := DecodeUpdates(envs[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2 {
		t.Fatalf("combined envelope carries %d updates, want 2", len(ups))
	}
	// Flush order is deterministic: sorted by (vertex, key).
	if ups[0].Vertex != 7 || ups[0].Value != 3 || ups[1].Vertex != 9 || ups[1].Value != 1 {
		t.Fatalf("combined updates = %+v, want min-folded [7:3 9:1]", ups)
	}

	// Metering: two messages enqueued, one combined envelope shipped.
	if stats.MessagesEnqueued != 2 || stats.MessagesSent != 1 {
		t.Fatalf("stats = %d enqueued / %d sent, want 2/1", stats.MessagesEnqueued, stats.MessagesSent)
	}
	if stats.BytesSent != int64(len(envs[0].Payload)) {
		t.Fatalf("BytesSent = %d, want flushed payload size %d", stats.BytesSent, len(envs[0].Payload))
	}

	// The buffer is drained: a second Deliver ships nothing.
	if rest := m.Deliver(2); len(rest) != 0 {
		t.Fatalf("second Deliver returned %d envelopes, want 0", len(rest))
	}
	if got := m.TotalPending(); got != 0 {
		t.Fatalf("TotalPending after flush = %d, want 0", got)
	}
}

func TestCombiningSkipsSelfAndCoordinator(t *testing.T) {
	c := mustCluster(t, 2, nil)
	m := c.NewComm(nil)
	m.EnableCombining("upd", minCombine)

	// Self-sends and coordinator traffic bypass the combiner entirely.
	m.Send(0, 0, "upd", EncodeUpdates([]Update{{Vertex: 1, Value: 1}}))
	m.Send(0, 0, "upd", EncodeUpdates([]Update{{Vertex: 1, Value: 2}}))
	m.Send(0, Coordinator, "upd", EncodeUpdates([]Update{{Vertex: 1, Value: 3}}))
	if got := len(m.Deliver(0)); got != 2 {
		t.Fatalf("self-sends delivered %d envelopes, want 2 uncombined", got)
	}
	if got := len(m.Deliver(Coordinator)); got != 1 {
		t.Fatalf("coordinator received %d envelopes, want 1 uncombined", got)
	}

	// Other tags are not combined either.
	m.Send(0, 1, "raw", []byte("opaque"))
	m.Send(0, 1, "raw", []byte("opaque2"))
	if got := len(m.Deliver(1)); got != 2 {
		t.Fatalf("non-combine tag delivered %d envelopes, want 2", got)
	}

	// An undecodable payload on the combine tag falls back to plain shipping.
	m.Send(0, 1, "upd", []byte{0xde, 0xad})
	envs := m.Deliver(1)
	if len(envs) != 1 || string(envs[0].Payload) != "\xde\xad" {
		t.Fatalf("undecodable payload not shipped verbatim: %+v", envs)
	}
}

func TestCombiningAsyncAccounting(t *testing.T) {
	c := mustCluster(t, 2, nil)
	m := c.NewAsyncComm(nil)
	m.EnableCombining("upd", minCombine)

	m.Send(0, 1, "upd", EncodeUpdates([]Update{{Vertex: 4, Value: 9}}))
	m.Send(0, 1, "upd", EncodeUpdates([]Update{{Vertex: 4, Value: 2}}))
	if m.Sent() != 2 {
		t.Fatalf("Sent = %d, want 2 (each folded envelope counts)", m.Sent())
	}
	if m.Received() != 0 {
		t.Fatalf("Received = %d before delivery, want 0", m.Received())
	}
	select {
	case <-m.Wake(1):
	default:
		t.Fatal("combined send did not signal the destination's wake channel")
	}

	envs := m.Deliver(1)
	if len(envs) != 1 {
		t.Fatalf("Deliver(1) returned %d envelopes, want 1 combined", len(envs))
	}
	if m.Sent() != m.Received() {
		t.Fatalf("flush did not balance the books: sent %d received %d", m.Sent(), m.Received())
	}
}
