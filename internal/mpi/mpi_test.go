package mpi

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"grape/internal/metrics"
)

func TestSendDeliver(t *testing.T) {
	stats := &metrics.Stats{}
	c := mustCluster(t, 3, stats)
	if c.NumWorkers() != 3 {
		t.Fatalf("NumWorkers = %d", c.NumWorkers())
	}
	c.Send(0, 1, "upd", []byte("abc"))
	c.Send(2, 1, "upd", []byte("defg"))
	c.Send(1, 1, "local", []byte("xyz")) // local, not metered
	c.Send(0, Coordinator, "ctl", []byte("q"))

	if got := c.PendingFor(1); got != 3 {
		t.Fatalf("PendingFor(1) = %d, want 3", got)
	}
	envs := c.Deliver(1)
	if len(envs) != 3 {
		t.Fatalf("Deliver(1) = %d envelopes, want 3", len(envs))
	}
	if got := c.PendingFor(1); got != 0 {
		t.Fatalf("PendingFor(1) after Deliver = %d, want 0", got)
	}
	coord := c.Deliver(Coordinator)
	if len(coord) != 1 || coord[0].Tag != "ctl" {
		t.Fatalf("coordinator mailbox = %+v", coord)
	}
	// Metering: 3 remote messages, 3+4+1 = 8 bytes.
	if stats.MessagesSent != 3 || stats.BytesSent != 8 {
		t.Fatalf("stats = %d msgs %d bytes, want 3 msgs 8 bytes", stats.MessagesSent, stats.BytesSent)
	}
}

func TestNilStatsAndInvalidRank(t *testing.T) {
	c := mustCluster(t, 2, nil)
	c.Send(0, 1, "x", nil) // must not panic with nil stats
	defer func() {
		if recover() == nil {
			t.Fatalf("Send to invalid rank should panic")
		}
	}()
	c.Send(0, 5, "x", nil)
}

// mustCluster fails the test instead of returning NewCluster's error.
func mustCluster(t *testing.T, n int, stats *metrics.Stats) *Cluster {
	t.Helper()
	c, err := NewCluster(n, stats)
	if err != nil {
		t.Fatalf("NewCluster(%d): %v", n, err)
	}
	return c
}

func TestNewClusterRejectsInvalidCounts(t *testing.T) {
	for _, n := range []int{0, -1, -7} {
		if c, err := NewCluster(n, nil); err == nil || c != nil {
			t.Fatalf("NewCluster(%d) = %v, %v; want nil cluster and error", n, c, err)
		}
	}
}

func TestCrashRecoverAlive(t *testing.T) {
	c := mustCluster(t, 2, nil)
	if !c.Alive(0) || !c.Alive(1) {
		t.Fatalf("workers should start alive")
	}
	c.Crash(1)
	if c.Alive(1) {
		t.Fatalf("crashed worker reported alive")
	}
	c.Recover(1)
	if !c.Alive(1) {
		t.Fatalf("recovered worker reported dead")
	}
	if c.Alive(-1) || c.Alive(99) {
		t.Fatalf("out-of-range ranks should not be alive")
	}
	c.Crash(99) // must not panic
}

func TestBarrierRunsAllLiveWorkers(t *testing.T) {
	c := mustCluster(t, 4, nil)
	c.Crash(2)
	var mu sync.Mutex
	ran := map[int]bool{}
	rank, err := c.Barrier(2, func(r int) error {
		mu.Lock()
		ran[r] = true
		mu.Unlock()
		return nil
	})
	if err != nil || rank != -1 {
		t.Fatalf("Barrier error = %v (rank %d)", err, rank)
	}
	if len(ran) != 3 || ran[2] {
		t.Fatalf("Barrier ran %v, want all live workers except 2", ran)
	}
}

func TestBarrierReportsError(t *testing.T) {
	c := mustCluster(t, 3, nil)
	boom := errors.New("boom")
	rank, err := c.Barrier(0, func(r int) error {
		if r == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || rank != 1 {
		t.Fatalf("Barrier = rank %d err %v, want rank 1 boom", rank, err)
	}
}

func TestUpdateCodecRoundTrip(t *testing.T) {
	ups := []Update{
		{Vertex: 1, Key: 0, Value: 3.5},
		{Vertex: -9, Key: 7, Value: math.Inf(1), Data: []byte("payload")},
		{Vertex: 42, Key: -1, Value: 0, Data: []byte{}},
	}
	buf := EncodeUpdates(ups)
	back, err := DecodeUpdates(buf)
	if err != nil {
		t.Fatalf("DecodeUpdates: %v", err)
	}
	if len(back) != len(ups) {
		t.Fatalf("decoded %d updates, want %d", len(back), len(ups))
	}
	for i := range ups {
		if back[i].Vertex != ups[i].Vertex || back[i].Key != ups[i].Key {
			t.Fatalf("update %d metadata mismatch: %+v vs %+v", i, back[i], ups[i])
		}
		if !(math.IsInf(back[i].Value, 1) && math.IsInf(ups[i].Value, 1)) && back[i].Value != ups[i].Value {
			t.Fatalf("update %d value mismatch", i)
		}
		if string(back[i].Data) != string(ups[i].Data) {
			t.Fatalf("update %d data mismatch", i)
		}
	}
}

func TestUpdateCodecErrors(t *testing.T) {
	if _, err := DecodeUpdates(nil); err == nil {
		t.Fatalf("decoding nil should fail")
	}
	buf := EncodeUpdates([]Update{{Vertex: 1, Value: 2}})
	if _, err := DecodeUpdates(buf[:len(buf)-5]); err == nil {
		t.Fatalf("decoding truncated batch should fail")
	}
	withData := EncodeUpdates([]Update{{Vertex: 1, Data: []byte("hello world")}})
	if _, err := DecodeUpdates(withData[:len(withData)-3]); err == nil {
		t.Fatalf("decoding truncated payload should fail")
	}
}

func TestKeyValueCodecRoundTrip(t *testing.T) {
	kvs := []KeyValue{
		{Key: "alpha", Value: []byte("1")},
		{Key: "", Value: nil},
		{Key: "βeta", Value: []byte("long value with spaces")},
	}
	back, err := DecodeKeyValues(EncodeKeyValues(kvs))
	if err != nil {
		t.Fatalf("DecodeKeyValues: %v", err)
	}
	if len(back) != len(kvs) {
		t.Fatalf("decoded %d kvs, want %d", len(back), len(kvs))
	}
	for i := range kvs {
		if back[i].Key != kvs[i].Key || string(back[i].Value) != string(kvs[i].Value) {
			t.Fatalf("kv %d mismatch: %+v vs %+v", i, back[i], kvs[i])
		}
	}
}

func TestKeyValueCodecErrors(t *testing.T) {
	if _, err := DecodeKeyValues([]byte{1}); err == nil {
		t.Fatalf("decoding short buffer should fail")
	}
	buf := EncodeKeyValues([]KeyValue{{Key: "key", Value: []byte("value")}})
	for _, cut := range []int{5, 9, 12} {
		if cut < len(buf) {
			if _, err := DecodeKeyValues(buf[:cut]); err == nil {
				t.Fatalf("decoding buffer cut at %d should fail", cut)
			}
		}
	}
}

func TestFloat64sCodec(t *testing.T) {
	v := []float64{1.5, -2.25, 0, math.Pi}
	back := BytesToFloat64s(Float64sToBytes(v))
	if !reflect.DeepEqual(v, back) {
		t.Fatalf("float64 codec mismatch: %v vs %v", back, v)
	}
	if len(BytesToFloat64s(nil)) != 0 {
		t.Fatalf("empty vector should decode to empty slice")
	}
}

// Property: update codec round-trips arbitrary batches.
func TestQuickUpdateCodec(t *testing.T) {
	f := func(vs []int64, ks []int64, vals []float64, data []byte) bool {
		n := len(vs)
		if len(ks) < n {
			n = len(ks)
		}
		if len(vals) < n {
			n = len(vals)
		}
		ups := make([]Update, n)
		for i := 0; i < n; i++ {
			ups[i] = Update{Vertex: vs[i], Key: ks[i], Value: vals[i]}
			if i%3 == 0 && len(data) > 0 {
				ups[i].Data = data
			}
		}
		back, err := DecodeUpdates(EncodeUpdates(ups))
		if err != nil || len(back) != n {
			return false
		}
		for i := range ups {
			if back[i].Vertex != ups[i].Vertex || back[i].Key != ups[i].Key {
				return false
			}
			v1, v2 := ups[i].Value, back[i].Value
			if v1 != v2 && !(math.IsNaN(v1) && math.IsNaN(v2)) {
				return false
			}
			if string(back[i].Data) != string(ups[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
