package mpi

import (
	"sync"
	"testing"

	"grape/internal/metrics"
)

func TestAsyncCommImmediateVisibility(t *testing.T) {
	c := mustCluster(t, 2, nil)
	m := c.NewAsyncComm(nil)
	if !m.Async() {
		t.Fatalf("NewAsyncComm should report Async()")
	}
	m.Send(0, 1, "upd", []byte("x"))
	// No superstep boundary, no Deliver barrier: the envelope is already
	// drainable and the destination was woken.
	select {
	case <-m.Wake(1):
	default:
		t.Fatalf("Send should signal the destination's wake channel")
	}
	envs := m.Deliver(1)
	if len(envs) != 1 || envs[0].Tag != "upd" {
		t.Fatalf("Deliver(1) = %+v, want the sent envelope", envs)
	}
	if s, r := m.Sent(), m.Received(); s != 1 || r != 1 {
		t.Fatalf("counters = sent %d received %d, want 1/1", s, r)
	}
}

func TestAsyncCommWakeCoalesces(t *testing.T) {
	c := mustCluster(t, 2, nil)
	m := c.NewAsyncComm(nil)
	for i := 0; i < 5; i++ {
		m.Send(0, 1, "upd", nil)
	}
	// Multiple sends coalesce into one pending wake-up; the drain picks up
	// the whole backlog at once.
	<-m.Wake(1)
	select {
	case <-m.Wake(1):
		t.Fatalf("wake channel should coalesce signals")
	default:
	}
	if got := len(m.Deliver(1)); got != 5 {
		t.Fatalf("Deliver(1) = %d envelopes, want 5", got)
	}
	if s, r := m.Sent(), m.Received(); s != 5 || r != 5 {
		t.Fatalf("counters = sent %d received %d, want 5/5", s, r)
	}
}

func TestAsyncCommCountsExcludeCoordinator(t *testing.T) {
	c := mustCluster(t, 2, nil)
	m := c.NewAsyncComm(nil)
	m.Send(0, Coordinator, "ctl", nil)
	if s := m.Sent(); s != 0 {
		t.Fatalf("coordinator-bound envelopes must not count as worker traffic (sent=%d)", s)
	}
	if m.Wake(Coordinator) != nil {
		t.Fatalf("coordinator has no wake channel")
	}
	m.Deliver(Coordinator)
	if r := m.Received(); r != 0 {
		t.Fatalf("coordinator drains must not count (received=%d)", r)
	}
}

func TestBSPCommHasNoWake(t *testing.T) {
	c := mustCluster(t, 2, nil)
	m := c.NewComm(nil)
	if m.Async() || m.Wake(0) != nil {
		t.Fatalf("BSP communicators must not expose async machinery")
	}
}

// Received never exceeds Sent even under concurrent senders and drainers, so
// sent == received is a sound quiescence signal.
func TestAsyncCommCounterInvariant(t *testing.T) {
	c := mustCluster(t, 4, nil)
	m := c.NewAsyncComm(&metrics.Stats{})
	const perSender = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				m.Send(w, 3, "upd", []byte{byte(i)})
			}
		}(w)
	}
	var drained int
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for {
			drained += len(m.Deliver(3))
			if s, r := m.Sent(), m.Received(); r > s {
				t.Errorf("received %d > sent %d", r, s)
				return
			}
			select {
			case <-stop:
				drained += len(m.Deliver(3))
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	drainWG.Wait()
	if drained != 3*perSender {
		t.Fatalf("drained %d envelopes, want %d", drained, 3*perSender)
	}
	if s, r := m.Sent(), m.Received(); s != r || s != 3*perSender {
		t.Fatalf("final counters sent %d received %d, want both %d", s, r, 3*perSender)
	}
}
