// Package mpi provides the message-passing substrate that stands in for the
// MPI controller of the paper's implementation (Section 6, "Message
// passing"). Workers and the coordinator exchange serialized envelopes
// through in-process mailboxes; the transport meters every inter-worker
// message (count and serialized bytes), which is exactly the communication
// cost the paper reports in Figure 8.
//
// The transport supports two delivery disciplines. A communicator created
// with NewComm is synchronous in the BSP sense: messages sent during
// superstep r are buffered and only become visible to their destinations
// when the engine calls Deliver at the superstep boundary. A communicator
// created with NewAsyncComm gives adaptive asynchronous semantics instead:
// every worker has a per-destination inbox with immediate visibility — an
// envelope can be drained by its destination the moment Send returns — plus
// a wake signal and sent/received counters, which is what the engine's
// idle-consensus termination detection (all workers idle and sent ==
// received) is built on.
//
// Mailboxes are scoped to a query: a Cluster owns only the membership state
// (worker count, liveness, compute slots), while envelopes travel through
// per-query communicators (Comm). Concurrent queries over the same resident
// cluster therefore cannot interleave envelopes, and communication is metered
// per query ("the graph is partitioned once for all queries Q posed on G",
// Section 3.1 — one cluster, many query-scoped message streams).
//
// Communicators with combining enabled overlap communication work with
// computation: once a destination's buffered payloads cross a threshold, the
// decode+Aggregate-fold+re-encode of that batch runs on a background
// goroutine while the sender keeps evaluating, and the superstep flush waits
// only for the in-flight fold rather than doing the whole batch under the
// barrier (metered by grape_flush_overlap_seconds). The fold is a prefix of
// the arrival-order left fold, so combined results are exactly what the
// all-at-flush fold would have produced. The TCP transport (internal/mpi/net)
// adds write-side pipelining of its own: sealed frames queue to a
// per-connection write loop that gathers everything pending into one
// vectored write.
package mpi

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"grape/internal/metrics"
	"grape/internal/obs"
)

// obsFlushOverlap measures the background combine folds that overlap the
// compute phase: time spent decoding, folding and re-encoding a destination's
// buffered batches on a flusher goroutine while the workers keep evaluating,
// instead of on the Deliver critical path at the superstep boundary.
var obsFlushOverlap = obs.Histogram("grape_flush_overlap_seconds",
	"Background combine-fold time overlapped with computation.", nil)

// Coordinator is the pseudo-rank of the coordinator P0. Workers use ranks
// 0..n-1.
const Coordinator = -1

// Envelope is a routed message: an opaque serialized payload plus routing
// metadata. Payload serialization is owned by the caller (the engines use the
// codec in codec.go), which keeps the transport independent of message
// schemas. Query identifies the communicator the envelope traveled through.
type Envelope struct {
	From    int
	To      int
	Query   uint64
	Tag     string
	Payload []byte
}

// Cluster is an in-process cluster of n workers plus a coordinator. It holds
// the state that outlives any single query — membership, liveness, and the
// shared compute slots that map m virtual workers onto n physical ones —
// while mailboxes live in per-query communicators created with NewComm.
//
// The Send/Deliver/PendingFor methods on Cluster operate on a default
// communicator, preserving the single-query API for callers that never run
// queries concurrently.
type Cluster struct {
	n int

	mu      sync.Mutex
	crashed []bool
	slots   chan struct{} // optional cluster-wide compute slots

	nextQuery atomic.Uint64
	def       *Comm
}

// NewCluster creates a cluster with n workers. Stats may be nil, in which
// case communication on the default communicator is not metered. It returns
// an error for non-positive worker counts.
func NewCluster(n int, stats *metrics.Stats) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: invalid worker count %d", n)
	}
	c := &Cluster{n: n, crashed: make([]bool, n)}
	c.def = c.NewComm(stats)
	return c, nil
}

// NumWorkers returns the number of workers in the cluster.
func (c *Cluster) NumWorkers() int { return c.n }

// LimitParallelism installs a cluster-wide cap on how many workers may run
// local computation simultaneously, across all concurrent queries — the n
// physical workers that the m virtual workers are mapped onto (Section 3.1).
// k <= 0 removes the cap.
func (c *Cluster) LimitParallelism(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k <= 0 {
		c.slots = nil
		return
	}
	c.slots = make(chan struct{}, k)
}

// Comm is a query-scoped communicator: a private set of mailboxes over the
// cluster's workers, identified by a unique query id. One query's messages
// never mix with another's, and each communicator meters its own traffic
// into its own Stats.
//
// A BSP communicator (NewComm) buffers envelopes until the engine drains
// them at the superstep boundary. An async communicator (NewAsyncComm)
// additionally signals the destination's wake channel on every Send and
// counts worker-bound envelopes in and out, so destinations can drain their
// inboxes continuously and a coordinator can detect quiescence.
type Comm struct {
	cluster *Cluster
	query   uint64
	stats   *metrics.Stats

	mu      sync.Mutex
	pending [][]Envelope // indexed by destination rank; n is the coordinator slot

	async    bool
	wake     []chan struct{} // per worker rank, buffered(1); nil for BSP comms
	sent     atomic.Int64    // worker-bound envelopes queued
	received atomic.Int64    // worker-bound envelopes drained

	// Per-destination message combining (EnableCombining): envelopes carrying
	// combineTag are decoded and folded per (vertex, key) under combine, so
	// Deliver flushes one envelope per destination instead of one per Send.
	combineTag string
	combine    func(existing, incoming Update) Update
	comb       []combineBuf // indexed by destination worker rank
	foldDone   *sync.Cond   // signals a background fold finishing; guards comb[i].folding
}

// combineBuf accumulates the payloads bound for one destination since its
// last flush. Folding is lazy: payloads are buffered as sent and only
// decoded, folded and re-encoded when a flush finds more than one — in the
// common BSP case of one batch per destination per superstep the payload
// ships verbatim and combining costs nothing.
type combineBuf struct {
	raw   []rawSend
	sends int // envelopes buffered, credited to Received on flush
	// folding marks an in-flight background fold of a prefix of this buffer:
	// the folded result re-enters at the front when it completes, and flushes
	// wait for it, so arrival-order semantics are preserved.
	folding bool
}

// combineFoldThreshold is the buffered-batch count that triggers an eager
// background fold: once a destination has this many payloads waiting, a
// one-shot goroutine folds them into a single combined batch while the
// compute phase keeps running, so the Deliver at the superstep boundary finds
// (most of) the folding already done.
const combineFoldThreshold = 8

// rawSend is one buffered Send awaiting combination.
type rawSend struct {
	from    int
	payload []byte
}

// VarID identifies one update parameter on the wire: the (vertex, sub-key)
// pair combining folds on.
type VarID struct {
	Vertex int64
	Key    int64
}

// NewComm creates a BSP communicator with a fresh query id over the
// cluster's workers. Stats may be nil, in which case the communicator is not
// metered.
func (c *Cluster) NewComm(stats *metrics.Stats) *Comm {
	return &Comm{
		cluster: c,
		query:   c.nextQuery.Add(1),
		stats:   stats,
		pending: make([][]Envelope, c.n+1),
	}
}

// NewAsyncComm creates a communicator with asynchronous delivery semantics:
// envelopes are visible to Deliver the moment Send returns, each Send pokes
// the destination's Wake channel, and worker-bound traffic is counted so the
// engine can detect termination by idle consensus (all workers idle and
// Sent() == Received()).
func (c *Cluster) NewAsyncComm(stats *metrics.Stats) *Comm {
	m := c.NewComm(stats)
	m.async = true
	m.wake = make([]chan struct{}, c.n)
	for i := range m.wake {
		m.wake[i] = make(chan struct{}, 1)
	}
	return m
}

// EnableCombining turns on per-destination message combining for envelopes
// carrying the given tag. Send buffers such payloads per destination; when a
// flush finds several, it decodes them and folds each update per (vertex,
// key) under agg — the same fold the receiver's aggregation applies on
// delivery, so for an associative policy (min, max) the fixpoint is
// unchanged, and for a newest-wins policy it is unchanged as long as no two
// senders write the same (vertex, key), which is how the engine's programs
// partition their keys. Deliver flushes each destination's batch as a single
// envelope whose updates are sorted by (vertex, key), keeping BSP runs
// deterministic; a lone buffered payload ships verbatim, unfolded, so the
// one-batch-per-superstep BSP case pays no codec work at all.
//
// Call it once, before the first Send; envelopes with other tags (and
// coordinator-bound traffic) are never combined. Stats meter the buffered
// messages as enqueued and the flushed envelopes as sent.
func (m *Comm) EnableCombining(tag string, agg func(existing, incoming Update) Update) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.combineTag = tag
	m.combine = agg
	m.comb = make([]combineBuf, m.cluster.n)
	m.foldDone = sync.NewCond(&m.mu)
}

// Query returns the communicator's query id.
func (m *Comm) Query() uint64 { return m.query }

// Async reports whether the communicator delivers asynchronously.
func (m *Comm) Async() bool { return m.async }

// Send queues an envelope from rank from to rank to (use Coordinator for P0).
// Messages between distinct workers, and between workers and the
// coordinator, are metered; a worker sending to itself is local computation
// and is not counted, matching how the paper accounts communication. On an
// async communicator the envelope is immediately visible to the destination,
// whose wake channel is signaled.
func (m *Comm) Send(from, to int, tag string, payload []byte) {
	if m.combine != nil && tag == m.combineTag && to != Coordinator && from != to {
		m.sendCombined(from, to, payload)
		return
	}
	slot := m.cluster.slot(to)
	counted := m.async && to != Coordinator
	m.mu.Lock()
	if counted {
		// Count while holding the inbox lock, before the envelope becomes
		// drainable, so Received can never exceed Sent.
		m.sent.Add(1)
	}
	m.pending[slot] = append(m.pending[slot],
		Envelope{From: from, To: to, Query: m.query, Tag: tag, Payload: payload})
	m.mu.Unlock()
	if counted {
		select {
		case m.wake[to] <- struct{}{}:
		default: // a wake-up is already pending
		}
	}
	if m.stats != nil && from != to {
		m.stats.AddMessage(len(payload))
	}
}

// sendCombined buffers one update envelope in the destination's combine
// buffer; the fold happens at flush time, and only when a second payload
// joined the buffer.
func (m *Comm) sendCombined(from, to int, payload []byte) {
	m.mu.Lock()
	if m.async {
		// Each buffered envelope counts as one sent; Deliver credits the same
		// number back when the batch flushes, so Sent == Received still means
		// nothing is in flight.
		m.sent.Add(1)
	}
	cb := &m.comb[to]
	cb.raw = append(cb.raw, rawSend{from: from, payload: payload})
	cb.sends++
	if len(cb.raw) >= combineFoldThreshold && !cb.folding {
		// Eager overlap: take the buffered prefix and fold it off the lock on
		// a one-shot goroutine, so the flush at the superstep boundary only
		// merges whatever arrived after. sends is left untouched — it is
		// credited to Received when the batch actually flushes.
		taken := cb.raw
		cb.raw = nil
		cb.folding = true
		go m.foldInBackground(to, taken)
	}
	m.mu.Unlock()
	if m.async {
		select {
		case m.wake[to] <- struct{}{}:
		default: // a wake-up is already pending
		}
	}
	if m.stats != nil {
		m.stats.AddEnqueued()
	}
}

// foldInBackground folds an already-taken prefix of a destination's combine
// buffer into a single sorted batch, off the communicator lock, and splices
// the result back in at the front of the buffer so a later flush still folds
// in arrival order (the per-key fold is a left fold, so pre-folding a prefix
// of the arrivals is associativity-neutral). Payloads that do not decode as
// update batches are spliced back unfolded. Runs on a one-shot goroutine;
// flushes wait on foldDone while a fold is in flight.
func (m *Comm) foldInBackground(rank int, raw []rawSend) {
	start := time.Now()
	folded := foldRaw(raw, m.combine)
	m.mu.Lock()
	cb := &m.comb[rank]
	cb.raw = append(folded, cb.raw...)
	cb.folding = false
	m.foldDone.Broadcast()
	m.mu.Unlock()
	obsFlushOverlap.Observe(time.Since(start).Seconds())
}

// foldRaw folds buffered payloads into a single canonical-order batch,
// returning the input unchanged when any payload is not an update batch. The
// result carries the last input's sender, matching what a flush-time fold of
// the same payloads would ship.
func foldRaw(raw []rawSend, agg func(existing, incoming Update) Update) []rawSend {
	if len(raw) < 2 {
		return raw
	}
	batches := make([][]Update, 0, len(raw))
	presorted := true
	for _, r := range raw {
		batch, err := DecodeUpdates(r.payload)
		if err != nil {
			return raw
		}
		presorted = presorted && updatesSorted(batch)
		batches = append(batches, batch)
	}
	var ups []Update
	if presorted {
		ups = mergeFold(batches, agg)
	} else {
		ups = hashFold(batches, agg)
	}
	return []rawSend{{from: raw[len(raw)-1].from, payload: EncodeUpdates(ups)}}
}

// flushCombinedLocked drains the destination's combine buffer. One buffered
// payload ships verbatim; several are decoded, folded per (vertex, key) in
// arrival order, sorted by (vertex, key) and re-encoded into a single
// envelope. Should any payload not decode as an update batch, the whole
// buffer ships uncombined in arrival order instead. It must be called with
// m.mu held; the returned envelopes are nil when the buffer was empty.
func (m *Comm) flushCombinedLocked(rank int) []Envelope {
	cb := &m.comb[rank]
	for cb.folding {
		// A background fold holds a prefix of this buffer; wait for it to
		// splice the result back so the flush sees every buffered send.
		m.foldDone.Wait()
	}
	if len(cb.raw) == 0 {
		return nil
	}
	if m.async {
		m.received.Add(int64(cb.sends))
	}
	raw := cb.raw
	cb.raw, cb.sends = nil, 0

	env := func(r rawSend) Envelope {
		return Envelope{From: r.from, To: rank, Query: m.query, Tag: m.combineTag, Payload: r.payload}
	}
	if len(raw) == 1 {
		return []Envelope{env(raw[0])}
	}
	batches := make([][]Update, 0, len(raw))
	presorted := true
	for _, r := range raw {
		batch, err := DecodeUpdates(r.payload)
		if err != nil {
			// Not an update batch: give up on folding this flush.
			out := make([]Envelope, len(raw))
			for i, rr := range raw {
				out[i] = env(rr)
			}
			return out
		}
		presorted = presorted && updatesSorted(batch)
		batches = append(batches, batch)
	}
	var ups []Update
	if presorted {
		// The engine routes batches already sorted by (vertex, key), so the
		// common case is a cheap k-way merge with no index map and no resort.
		ups = mergeFold(batches, m.combine)
	} else {
		ups = hashFold(batches, m.combine)
	}
	return []Envelope{{From: raw[len(raw)-1].from, To: rank, Query: m.query,
		Tag: m.combineTag, Payload: EncodeUpdates(ups)}}
}

// updateOrder is the canonical (vertex, key) order of a combined batch.
func updateOrder(a, b Update) int {
	if c := cmp.Compare(a.Vertex, b.Vertex); c != 0 {
		return c
	}
	return cmp.Compare(a.Key, b.Key)
}

// updatesSorted reports whether a batch is already in canonical order.
func updatesSorted(batch []Update) bool {
	for i := 1; i < len(batch); i++ {
		if updateOrder(batch[i-1], batch[i]) > 0 {
			return false
		}
	}
	return true
}

// mergeFold merges canonically sorted batches into one sorted batch, folding
// equal (vertex, key) entries with agg in batch arrival order.
func mergeFold(batches [][]Update, agg func(existing, incoming Update) Update) []Update {
	heads := make([]int, len(batches))
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	out := make([]Update, 0, total)
	for {
		best := -1
		for i, b := range batches {
			if heads[i] == len(b) {
				continue
			}
			// Strict less keeps ties on the earliest batch, which preserves
			// arrival-order folding.
			if best < 0 || updateOrder(b[heads[i]], batches[best][heads[best]]) < 0 {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		u := batches[best][heads[best]]
		heads[best]++
		if n := len(out); n > 0 && out[n-1].Vertex == u.Vertex && out[n-1].Key == u.Key {
			out[n-1] = agg(out[n-1], u)
		} else {
			out = append(out, u)
		}
	}
}

// hashFold folds arbitrary-order batches through a (vertex, key) index and
// sorts the result canonically; the fallback when a sender shipped an
// unsorted batch.
func hashFold(batches [][]Update, agg func(existing, incoming Update) Update) []Update {
	var ups []Update
	idx := make(map[VarID]int)
	for _, batch := range batches {
		for _, u := range batch {
			k := VarID{Vertex: u.Vertex, Key: u.Key}
			if i, ok := idx[k]; ok {
				ups[i] = agg(ups[i], u)
			} else {
				idx[k] = len(ups)
				ups = append(ups, u)
			}
		}
	}
	slices.SortFunc(ups, updateOrder)
	return ups
}

// Deliver returns and clears all envelopes queued for the given rank. A BSP
// engine calls it at superstep boundaries; an async worker calls it whenever
// it is ready for more work (drained envelopes count toward Received).
func (m *Comm) Deliver(rank int) []Envelope {
	slot := m.cluster.slot(rank)
	var flushed []Envelope
	start := time.Now()
	m.mu.Lock()
	out := m.pending[slot]
	m.pending[slot] = nil
	if m.async && rank != Coordinator && len(out) > 0 {
		m.received.Add(int64(len(out)))
	}
	if m.combine != nil && rank != Coordinator {
		if flushed = m.flushCombinedLocked(rank); flushed != nil {
			out = append(out, flushed...)
		}
	}
	m.mu.Unlock()
	if m.stats != nil {
		for _, env := range flushed {
			m.stats.AddCombined(len(env.Payload))
		}
		if len(flushed) > 0 {
			m.stats.Trace().Add("combine flush", rank, start, time.Since(start))
		}
	}
	return out
}

// Wake returns the wake channel for the given worker rank: a buffered(1)
// channel signaled whenever an envelope is queued for the rank on an async
// communicator. It returns nil on BSP communicators.
func (m *Comm) Wake(rank int) <-chan struct{} {
	if m.wake == nil || rank == Coordinator {
		return nil
	}
	return m.wake[m.cluster.slot(rank)]
}

// Sent returns how many worker-bound envelopes have been queued on an async
// communicator.
func (m *Comm) Sent() int64 { return m.sent.Load() }

// Received returns how many worker-bound envelopes have been drained from an
// async communicator. Received never exceeds Sent, and Sent == Received
// means no envelope is in flight.
func (m *Comm) Received() int64 { return m.received.Load() }

// PendingFor reports how many envelopes are queued for the given rank without
// consuming them. A non-empty combine buffer counts as one pending envelope —
// the next Deliver normally folds it into exactly one.
func (m *Comm) PendingFor(rank int) int {
	slot := m.cluster.slot(rank)
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.pending[slot])
	if m.combine != nil && rank != Coordinator &&
		(len(m.comb[slot].raw) > 0 || m.comb[slot].folding) {
		n++
	}
	return n
}

// TotalPending reports how many envelopes are queued for all workers (the
// coordinator mailbox excluded). The coordinator uses it for termination
// detection: zero pending envelopes is the simultaneous fixpoint.
func (m *Comm) TotalPending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for rank := 0; rank < m.cluster.n; rank++ {
		total += len(m.pending[rank])
		if m.combine != nil && (len(m.comb[rank].raw) > 0 || m.comb[rank].folding) {
			total++
		}
	}
	return total
}

// Send queues an envelope on the cluster's default communicator.
func (c *Cluster) Send(from, to int, tag string, payload []byte) {
	c.def.Send(from, to, tag, payload)
}

// Deliver drains the default communicator's mailbox for the given rank.
func (c *Cluster) Deliver(rank int) []Envelope { return c.def.Deliver(rank) }

// PendingFor reports the default communicator's queue length for a rank.
func (c *Cluster) PendingFor(rank int) int { return c.def.PendingFor(rank) }

func (c *Cluster) slot(rank int) int {
	if rank == Coordinator {
		return c.n
	}
	if rank < 0 || rank >= c.n {
		panic(fmt.Sprintf("mpi: invalid rank %d", rank))
	}
	return rank
}

// AcquireSlot claims one of the cluster-wide compute slots installed by
// LimitParallelism and returns the function releasing it. Long-running
// asynchronous workers call it around each local-computation burst so the m
// virtual workers still map onto n physical ones even without barriers. When
// no limit is installed it returns a no-op release.
func (c *Cluster) AcquireSlot() (release func()) {
	c.mu.Lock()
	slots := c.slots
	c.mu.Unlock()
	if slots == nil {
		return func() {}
	}
	slots <- struct{}{}
	return func() { <-slots }
}

// Crash marks a worker as failed. Subsequent Alive checks return false until
// Recover is called. It models the failures detected by the arbitrator's
// heart-beat mechanism (Section 6, "Fault tolerance").
func (c *Cluster) Crash(rank int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rank >= 0 && rank < c.n {
		c.crashed[rank] = true
	}
}

// Recover marks a failed worker as healthy again (its tasks having been
// transferred or restarted by the arbitrator).
func (c *Cluster) Recover(rank int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rank >= 0 && rank < c.n {
		c.crashed[rank] = false
	}
}

// Alive reports whether the worker responds to heart-beats.
func (c *Cluster) Alive(rank int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return rank >= 0 && rank < c.n && !c.crashed[rank]
}

// Barrier runs fn(rank) for every live worker concurrently (bounded by
// parallelism, <=0 meaning unbounded) and waits for all of them — one BSP
// superstep's local-computation phase. It returns the first error reported
// by any worker together with that worker's rank (-1 when no error).
func (c *Cluster) Barrier(parallelism int, fn func(rank int) error) (int, error) {
	return c.BarrierFor(c.Alive, parallelism, fn)
}

// BarrierFor is Barrier with a caller-supplied liveness predicate, which lets
// a per-query coordinator exclude workers it considers failed without
// touching the cluster-wide crash state (and thus without affecting other
// queries running concurrently). When the cluster has a parallelism limit
// installed, worker slots are drawn from that shared pool in addition to the
// per-call bound.
func (c *Cluster) BarrierFor(alive func(rank int) bool, parallelism int, fn func(rank int) error) (int, error) {
	var local chan struct{}
	if parallelism > 0 && parallelism < c.n {
		local = make(chan struct{}, parallelism)
	}
	c.mu.Lock()
	shared := c.slots
	c.mu.Unlock()

	var wg sync.WaitGroup
	var mu sync.Mutex
	failedRank, firstErr := -1, error(nil)
	for rank := 0; rank < c.n; rank++ {
		if !alive(rank) {
			continue
		}
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if local != nil {
				local <- struct{}{}
				defer func() { <-local }()
			}
			if shared != nil {
				shared <- struct{}{}
				defer func() { <-shared }()
			}
			if err := fn(rank); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					failedRank = rank
				}
				mu.Unlock()
			}
		}(rank)
	}
	wg.Wait()
	return failedRank, firstErr
}
