// Package mpi provides the message-passing substrate that stands in for the
// MPI controller of the paper's implementation (Section 6, "Message
// passing"). Workers and the coordinator exchange serialized envelopes
// through in-process mailboxes; the transport meters every inter-worker
// message (count and serialized bytes), which is exactly the communication
// cost the paper reports in Figure 8.
//
// The transport is synchronous in the BSP sense: messages sent during
// superstep r are buffered and only become visible to their destinations
// when the engine calls Deliver at the superstep boundary.
package mpi

import (
	"fmt"
	"sync"

	"grape/internal/metrics"
)

// Coordinator is the pseudo-rank of the coordinator P0. Workers use ranks
// 0..n-1.
const Coordinator = -1

// Envelope is a routed message: an opaque serialized payload plus routing
// metadata. Payload serialization is owned by the caller (the engines use the
// codec in codec.go), which keeps the transport independent of message
// schemas.
type Envelope struct {
	From    int
	To      int
	Tag     string
	Payload []byte
}

// Cluster is an in-process cluster of n workers plus a coordinator, connected
// by buffered mailboxes.
type Cluster struct {
	n     int
	stats *metrics.Stats

	mu      sync.Mutex
	pending [][]Envelope // indexed by destination rank; n is the coordinator slot
	crashed []bool
}

// NewCluster creates a cluster with n workers. Stats may be nil, in which
// case communication is not metered.
func NewCluster(n int, stats *metrics.Stats) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: invalid worker count %d", n))
	}
	return &Cluster{
		n:       n,
		stats:   stats,
		pending: make([][]Envelope, n+1),
		crashed: make([]bool, n),
	}
}

// NumWorkers returns the number of workers in the cluster.
func (c *Cluster) NumWorkers() int { return c.n }

// Send queues an envelope from rank from to rank to (use Coordinator for P0).
// Messages between distinct workers, and between workers and the
// coordinator, are metered; a worker sending to itself is local computation
// and is not counted, matching how the paper accounts communication.
func (c *Cluster) Send(from, to int, tag string, payload []byte) {
	slot := c.slot(to)
	c.mu.Lock()
	c.pending[slot] = append(c.pending[slot], Envelope{From: from, To: to, Tag: tag, Payload: payload})
	c.mu.Unlock()
	if c.stats != nil && from != to {
		c.stats.AddMessage(len(payload))
	}
}

func (c *Cluster) slot(rank int) int {
	if rank == Coordinator {
		return c.n
	}
	if rank < 0 || rank >= c.n {
		panic(fmt.Sprintf("mpi: invalid rank %d", rank))
	}
	return rank
}

// Deliver returns and clears all envelopes queued for the given rank. The
// engine calls it at superstep boundaries, which gives BSP semantics.
func (c *Cluster) Deliver(rank int) []Envelope {
	slot := c.slot(rank)
	c.mu.Lock()
	out := c.pending[slot]
	c.pending[slot] = nil
	c.mu.Unlock()
	return out
}

// PendingFor reports how many envelopes are queued for the given rank without
// consuming them. The coordinator uses it for termination detection.
func (c *Cluster) PendingFor(rank int) int {
	slot := c.slot(rank)
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending[slot])
}

// Crash marks a worker as failed. Subsequent Alive checks return false until
// Recover is called. It models the failures detected by the arbitrator's
// heart-beat mechanism (Section 6, "Fault tolerance").
func (c *Cluster) Crash(rank int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rank >= 0 && rank < c.n {
		c.crashed[rank] = true
	}
}

// Recover marks a failed worker as healthy again (its tasks having been
// transferred or restarted by the arbitrator).
func (c *Cluster) Recover(rank int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rank >= 0 && rank < c.n {
		c.crashed[rank] = false
	}
}

// Alive reports whether the worker responds to heart-beats.
func (c *Cluster) Alive(rank int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return rank >= 0 && rank < c.n && !c.crashed[rank]
}

// Barrier runs fn(rank) for every live worker concurrently (bounded by
// parallelism, <=0 meaning unbounded) and waits for all of them — one BSP
// superstep's local-computation phase. It returns the first error reported
// by any worker together with that worker's rank (-1 when no error).
func (c *Cluster) Barrier(parallelism int, fn func(rank int) error) (int, error) {
	if parallelism <= 0 || parallelism > c.n {
		parallelism = c.n
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	failedRank, firstErr := -1, error(nil)
	for rank := 0; rank < c.n; rank++ {
		if !c.Alive(rank) {
			continue
		}
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := fn(rank); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					failedRank = rank
				}
				mu.Unlock()
			}
		}(rank)
	}
	wg.Wait()
	return failedRank, firstErr
}
