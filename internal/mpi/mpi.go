// Package mpi provides the message-passing substrate that stands in for the
// MPI controller of the paper's implementation (Section 6, "Message
// passing"). Workers and the coordinator exchange serialized envelopes
// through in-process mailboxes; the transport meters every inter-worker
// message (count and serialized bytes), which is exactly the communication
// cost the paper reports in Figure 8.
//
// The transport supports two delivery disciplines. A communicator created
// with NewComm is synchronous in the BSP sense: messages sent during
// superstep r are buffered and only become visible to their destinations
// when the engine calls Deliver at the superstep boundary. A communicator
// created with NewAsyncComm gives adaptive asynchronous semantics instead:
// every worker has a per-destination inbox with immediate visibility — an
// envelope can be drained by its destination the moment Send returns — plus
// a wake signal and sent/received counters, which is what the engine's
// idle-consensus termination detection (all workers idle and sent ==
// received) is built on.
//
// Mailboxes are scoped to a query: a Cluster owns only the membership state
// (worker count, liveness, compute slots), while envelopes travel through
// per-query communicators (Comm). Concurrent queries over the same resident
// cluster therefore cannot interleave envelopes, and communication is metered
// per query ("the graph is partitioned once for all queries Q posed on G",
// Section 3.1 — one cluster, many query-scoped message streams).
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"grape/internal/metrics"
)

// Coordinator is the pseudo-rank of the coordinator P0. Workers use ranks
// 0..n-1.
const Coordinator = -1

// Envelope is a routed message: an opaque serialized payload plus routing
// metadata. Payload serialization is owned by the caller (the engines use the
// codec in codec.go), which keeps the transport independent of message
// schemas. Query identifies the communicator the envelope traveled through.
type Envelope struct {
	From    int
	To      int
	Query   uint64
	Tag     string
	Payload []byte
}

// Cluster is an in-process cluster of n workers plus a coordinator. It holds
// the state that outlives any single query — membership, liveness, and the
// shared compute slots that map m virtual workers onto n physical ones —
// while mailboxes live in per-query communicators created with NewComm.
//
// The Send/Deliver/PendingFor methods on Cluster operate on a default
// communicator, preserving the single-query API for callers that never run
// queries concurrently.
type Cluster struct {
	n int

	mu      sync.Mutex
	crashed []bool
	slots   chan struct{} // optional cluster-wide compute slots

	nextQuery atomic.Uint64
	def       *Comm
}

// NewCluster creates a cluster with n workers. Stats may be nil, in which
// case communication on the default communicator is not metered. It returns
// an error for non-positive worker counts.
func NewCluster(n int, stats *metrics.Stats) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: invalid worker count %d", n)
	}
	c := &Cluster{n: n, crashed: make([]bool, n)}
	c.def = c.NewComm(stats)
	return c, nil
}

// NumWorkers returns the number of workers in the cluster.
func (c *Cluster) NumWorkers() int { return c.n }

// LimitParallelism installs a cluster-wide cap on how many workers may run
// local computation simultaneously, across all concurrent queries — the n
// physical workers that the m virtual workers are mapped onto (Section 3.1).
// k <= 0 removes the cap.
func (c *Cluster) LimitParallelism(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k <= 0 {
		c.slots = nil
		return
	}
	c.slots = make(chan struct{}, k)
}

// Comm is a query-scoped communicator: a private set of mailboxes over the
// cluster's workers, identified by a unique query id. One query's messages
// never mix with another's, and each communicator meters its own traffic
// into its own Stats.
//
// A BSP communicator (NewComm) buffers envelopes until the engine drains
// them at the superstep boundary. An async communicator (NewAsyncComm)
// additionally signals the destination's wake channel on every Send and
// counts worker-bound envelopes in and out, so destinations can drain their
// inboxes continuously and a coordinator can detect quiescence.
type Comm struct {
	cluster *Cluster
	query   uint64
	stats   *metrics.Stats

	mu      sync.Mutex
	pending [][]Envelope // indexed by destination rank; n is the coordinator slot

	async    bool
	wake     []chan struct{} // per worker rank, buffered(1); nil for BSP comms
	sent     atomic.Int64    // worker-bound envelopes queued
	received atomic.Int64    // worker-bound envelopes drained
}

// NewComm creates a BSP communicator with a fresh query id over the
// cluster's workers. Stats may be nil, in which case the communicator is not
// metered.
func (c *Cluster) NewComm(stats *metrics.Stats) *Comm {
	return &Comm{
		cluster: c,
		query:   c.nextQuery.Add(1),
		stats:   stats,
		pending: make([][]Envelope, c.n+1),
	}
}

// NewAsyncComm creates a communicator with asynchronous delivery semantics:
// envelopes are visible to Deliver the moment Send returns, each Send pokes
// the destination's Wake channel, and worker-bound traffic is counted so the
// engine can detect termination by idle consensus (all workers idle and
// Sent() == Received()).
func (c *Cluster) NewAsyncComm(stats *metrics.Stats) *Comm {
	m := c.NewComm(stats)
	m.async = true
	m.wake = make([]chan struct{}, c.n)
	for i := range m.wake {
		m.wake[i] = make(chan struct{}, 1)
	}
	return m
}

// Query returns the communicator's query id.
func (m *Comm) Query() uint64 { return m.query }

// Async reports whether the communicator delivers asynchronously.
func (m *Comm) Async() bool { return m.async }

// Send queues an envelope from rank from to rank to (use Coordinator for P0).
// Messages between distinct workers, and between workers and the
// coordinator, are metered; a worker sending to itself is local computation
// and is not counted, matching how the paper accounts communication. On an
// async communicator the envelope is immediately visible to the destination,
// whose wake channel is signaled.
func (m *Comm) Send(from, to int, tag string, payload []byte) {
	slot := m.cluster.slot(to)
	counted := m.async && to != Coordinator
	m.mu.Lock()
	if counted {
		// Count while holding the inbox lock, before the envelope becomes
		// drainable, so Received can never exceed Sent.
		m.sent.Add(1)
	}
	m.pending[slot] = append(m.pending[slot],
		Envelope{From: from, To: to, Query: m.query, Tag: tag, Payload: payload})
	m.mu.Unlock()
	if counted {
		select {
		case m.wake[to] <- struct{}{}:
		default: // a wake-up is already pending
		}
	}
	if m.stats != nil && from != to {
		m.stats.AddMessage(len(payload))
	}
}

// Deliver returns and clears all envelopes queued for the given rank. A BSP
// engine calls it at superstep boundaries; an async worker calls it whenever
// it is ready for more work (drained envelopes count toward Received).
func (m *Comm) Deliver(rank int) []Envelope {
	slot := m.cluster.slot(rank)
	m.mu.Lock()
	out := m.pending[slot]
	m.pending[slot] = nil
	if m.async && rank != Coordinator && len(out) > 0 {
		m.received.Add(int64(len(out)))
	}
	m.mu.Unlock()
	return out
}

// Wake returns the wake channel for the given worker rank: a buffered(1)
// channel signaled whenever an envelope is queued for the rank on an async
// communicator. It returns nil on BSP communicators.
func (m *Comm) Wake(rank int) <-chan struct{} {
	if m.wake == nil || rank == Coordinator {
		return nil
	}
	return m.wake[m.cluster.slot(rank)]
}

// Sent returns how many worker-bound envelopes have been queued on an async
// communicator.
func (m *Comm) Sent() int64 { return m.sent.Load() }

// Received returns how many worker-bound envelopes have been drained from an
// async communicator. Received never exceeds Sent, and Sent == Received
// means no envelope is in flight.
func (m *Comm) Received() int64 { return m.received.Load() }

// PendingFor reports how many envelopes are queued for the given rank without
// consuming them.
func (m *Comm) PendingFor(rank int) int {
	slot := m.cluster.slot(rank)
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending[slot])
}

// TotalPending reports how many envelopes are queued for all workers (the
// coordinator mailbox excluded). The coordinator uses it for termination
// detection: zero pending envelopes is the simultaneous fixpoint.
func (m *Comm) TotalPending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for rank := 0; rank < m.cluster.n; rank++ {
		total += len(m.pending[rank])
	}
	return total
}

// Send queues an envelope on the cluster's default communicator.
func (c *Cluster) Send(from, to int, tag string, payload []byte) {
	c.def.Send(from, to, tag, payload)
}

// Deliver drains the default communicator's mailbox for the given rank.
func (c *Cluster) Deliver(rank int) []Envelope { return c.def.Deliver(rank) }

// PendingFor reports the default communicator's queue length for a rank.
func (c *Cluster) PendingFor(rank int) int { return c.def.PendingFor(rank) }

func (c *Cluster) slot(rank int) int {
	if rank == Coordinator {
		return c.n
	}
	if rank < 0 || rank >= c.n {
		panic(fmt.Sprintf("mpi: invalid rank %d", rank))
	}
	return rank
}

// AcquireSlot claims one of the cluster-wide compute slots installed by
// LimitParallelism and returns the function releasing it. Long-running
// asynchronous workers call it around each local-computation burst so the m
// virtual workers still map onto n physical ones even without barriers. When
// no limit is installed it returns a no-op release.
func (c *Cluster) AcquireSlot() (release func()) {
	c.mu.Lock()
	slots := c.slots
	c.mu.Unlock()
	if slots == nil {
		return func() {}
	}
	slots <- struct{}{}
	return func() { <-slots }
}

// Crash marks a worker as failed. Subsequent Alive checks return false until
// Recover is called. It models the failures detected by the arbitrator's
// heart-beat mechanism (Section 6, "Fault tolerance").
func (c *Cluster) Crash(rank int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rank >= 0 && rank < c.n {
		c.crashed[rank] = true
	}
}

// Recover marks a failed worker as healthy again (its tasks having been
// transferred or restarted by the arbitrator).
func (c *Cluster) Recover(rank int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rank >= 0 && rank < c.n {
		c.crashed[rank] = false
	}
}

// Alive reports whether the worker responds to heart-beats.
func (c *Cluster) Alive(rank int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return rank >= 0 && rank < c.n && !c.crashed[rank]
}

// Barrier runs fn(rank) for every live worker concurrently (bounded by
// parallelism, <=0 meaning unbounded) and waits for all of them — one BSP
// superstep's local-computation phase. It returns the first error reported
// by any worker together with that worker's rank (-1 when no error).
func (c *Cluster) Barrier(parallelism int, fn func(rank int) error) (int, error) {
	return c.BarrierFor(c.Alive, parallelism, fn)
}

// BarrierFor is Barrier with a caller-supplied liveness predicate, which lets
// a per-query coordinator exclude workers it considers failed without
// touching the cluster-wide crash state (and thus without affecting other
// queries running concurrently). When the cluster has a parallelism limit
// installed, worker slots are drawn from that shared pool in addition to the
// per-call bound.
func (c *Cluster) BarrierFor(alive func(rank int) bool, parallelism int, fn func(rank int) error) (int, error) {
	var local chan struct{}
	if parallelism > 0 && parallelism < c.n {
		local = make(chan struct{}, parallelism)
	}
	c.mu.Lock()
	shared := c.slots
	c.mu.Unlock()

	var wg sync.WaitGroup
	var mu sync.Mutex
	failedRank, firstErr := -1, error(nil)
	for rank := 0; rank < c.n; rank++ {
		if !alive(rank) {
			continue
		}
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if local != nil {
				local <- struct{}{}
				defer func() { <-local }()
			}
			if shared != nil {
				shared <- struct{}{}
				defer func() { <-shared }()
			}
			if err := fn(rank); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					failedRank = rank
				}
				mu.Unlock()
			}
		}(rank)
	}
	wg.Wait()
	return failedRank, firstErr
}
