package net

import (
	"bytes"
	"encoding/binary"
	stdnet "net"
	"reflect"
	"testing"
	"time"

	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/partition"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {0x01}, bytes.Repeat([]byte{0xAB}, 1<<16)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatalf("writeFrame(%d bytes): %v", len(p), err)
		}
	}
	for _, want := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame round trip: got %d bytes, want %d", len(got), len(want))
		}
	}
}

func TestCompressedFrameRoundTrip(t *testing.T) {
	// Compressible payload well above the threshold: must ship deflated and
	// read back identically through the transparent inflate path.
	var buf bytes.Buffer
	payload := bytes.Repeat([]byte("grape fragment bytes "), 2048)
	f := newFrame()
	f.buf = append(f.buf, payload...)
	if err := f.sendCompressed(&buf); err != nil {
		t.Fatalf("sendCompressed: %v", err)
	}
	if buf.Len() >= len(payload) {
		t.Fatalf("compressible frame did not shrink: %d on the wire for %d raw", buf.Len(), len(payload))
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("compressed round trip corrupted the payload")
	}

	// Small frames bypass compression entirely.
	buf.Reset()
	small := []byte("tiny")
	f = newFrame()
	f.buf = append(f.buf, small...)
	if err := f.sendCompressed(&buf); err != nil {
		t.Fatalf("sendCompressed(small): %v", err)
	}
	if buf.Len() != 4+len(small) {
		t.Fatalf("small frame was not shipped raw: %d bytes on the wire", buf.Len())
	}
	if got, err := readFrame(&buf); err != nil || !bytes.Equal(got, small) {
		t.Fatalf("small frame round trip: %v %q", err, got)
	}

	// Incompressible bodies above the threshold fall back to raw framing.
	buf.Reset()
	noisy := make([]byte, compressThreshold+512)
	rnd := uint32(2463534242)
	for i := range noisy {
		rnd ^= rnd << 13
		rnd ^= rnd >> 17
		rnd ^= rnd << 5
		noisy[i] = byte(rnd)
	}
	f = newFrame()
	f.buf = append(f.buf, noisy...)
	if err := f.sendCompressed(&buf); err != nil {
		t.Fatalf("sendCompressed(noisy): %v", err)
	}
	if buf.Len() != 4+len(noisy) {
		t.Fatalf("incompressible frame was not shipped raw: %d bytes for %d raw", buf.Len(), len(noisy))
	}
	if got, err := readFrame(&buf); err != nil || !bytes.Equal(got, noisy) {
		t.Fatalf("incompressible frame round trip failed: %v", err)
	}
}

func TestInflateFrameRejectsCorruptStreams(t *testing.T) {
	// A compressed header claiming more raw bytes than maxFrame.
	hdr := binary.AppendUvarint(nil, uint64(maxFrame)+1)
	if _, err := inflateFrame(hdr); err == nil {
		t.Fatalf("oversized raw length accepted")
	}
	// A header followed by garbage instead of a deflate stream.
	body := binary.AppendUvarint(nil, 128)
	body = append(body, 0xde, 0xad, 0xbe, 0xef)
	if _, err := inflateFrame(body); err == nil {
		t.Fatalf("garbage deflate stream accepted")
	}
	// An empty body has no header at all.
	if _, err := inflateFrame(nil); err == nil {
		t.Fatalf("empty compressed body accepted")
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF} // 4GiB length prefix
	if _, err := readFrame(bytes.NewReader(raw)); err == nil {
		t.Fatalf("oversized frame length accepted")
	}
}

func TestEnvelopeCodecRoundTrip(t *testing.T) {
	cases := [][]mpi.Envelope{
		nil,
		{},
		{{From: 0, To: 3, Tag: "updates", Payload: []byte{1, 2, 3}}},
		{
			{From: mpi.Coordinator, To: 0, Tag: "raw", Payload: nil},
			{From: 7, To: 2, Tag: "kv", Payload: bytes.Repeat([]byte{0x00, 0xFF}, 500)},
			{From: 1, To: 1, Tag: "", Payload: []byte{}},
		},
	}
	for i, envs := range cases {
		buf := appendEnvelopes(nil, envs)
		r := &reader{buf: buf}
		got := r.envelopes()
		if r.err != nil {
			t.Fatalf("case %d: decode: %v", i, r.err)
		}
		if len(got) != len(envs) {
			t.Fatalf("case %d: got %d envelopes, want %d", i, len(got), len(envs))
		}
		for j := range envs {
			if got[j].From != envs[j].From || got[j].To != envs[j].To || got[j].Tag != envs[j].Tag ||
				!bytes.Equal(got[j].Payload, envs[j].Payload) {
				t.Fatalf("case %d envelope %d: got %+v, want %+v", i, j, got[j], envs[j])
			}
		}
	}
}

func TestEnvelopeDecodeTruncated(t *testing.T) {
	buf := appendEnvelopes(nil, []mpi.Envelope{{From: 1, To: 2, Tag: "updates", Payload: []byte{1, 2, 3, 4}}})
	for cut := 1; cut < len(buf); cut++ {
		r := &reader{buf: buf[:cut]}
		if got := r.envelopes(); got != nil && r.err == nil {
			t.Fatalf("truncation at %d decoded silently", cut)
		}
	}
}

func TestAssignedRanksRoundRobin(t *testing.T) {
	for _, tc := range []struct{ m, procs int }{{6, 3}, {7, 3}, {4, 4}, {5, 1}, {3, 2}} {
		seen := make(map[int]int)
		for proc := 0; proc < tc.procs; proc++ {
			for _, r := range assignedRanks(tc.m, proc, tc.procs) {
				seen[r]++
				if r%tc.procs != proc {
					t.Fatalf("m=%d procs=%d: rank %d assigned to proc %d", tc.m, tc.procs, r, proc)
				}
			}
		}
		if len(seen) != tc.m {
			t.Fatalf("m=%d procs=%d: %d ranks assigned, want %d", tc.m, tc.procs, len(seen), tc.m)
		}
		for r, n := range seen {
			if n != 1 {
				t.Fatalf("m=%d procs=%d: rank %d assigned %d times", tc.m, tc.procs, r, n)
			}
		}
	}
}

// testPartition builds a small two-fragment partition for handshake tests.
func testPartition(t *testing.T) *partition.Partitioned {
	t.Helper()
	b := graph.NewBuilder(false)
	for v := 0; v < 10; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%10), 1, "")
	}
	return partition.Partition(b.Build(), 2, partition.Hash{})
}

func TestHandshakeRejectsVersionMismatch(t *testing.T) {
	coord, worker := stdnet.Pipe()
	defer coord.Close()
	defer worker.Close()

	errCh := make(chan error, 1)
	p := testPartition(t)
	go func() {
		errCh <- handshakeWorker(coord, time.Now().Add(5*time.Second), 0, 1, p, partition.EncodeFragGraph(p.GP))
	}()

	hello := []byte{ftHello}
	hello = append(hello, 99) // bogus protocol version (uvarint 99 is one byte)
	if err := writeFrame(worker, hello); err != nil {
		t.Fatalf("send hello: %v", err)
	}
	payload, err := readFrame(worker)
	if err != nil {
		t.Fatalf("read error frame: %v", err)
	}
	r := &reader{buf: payload}
	if ft := r.u8(); ft != ftError {
		t.Fatalf("got frame 0x%02x, want error frame", ft)
	}
	if msg := r.str(); msg == "" {
		t.Fatalf("error frame carries no message")
	}
	if err := <-errCh; err == nil {
		t.Fatalf("coordinator accepted a mismatched protocol version")
	}
}

func TestHandshakeRejectsNonHello(t *testing.T) {
	coord, worker := stdnet.Pipe()
	defer coord.Close()
	defer worker.Close()

	errCh := make(chan error, 1)
	p := testPartition(t)
	go func() {
		errCh <- handshakeWorker(coord, time.Now().Add(5*time.Second), 0, 1, p, partition.EncodeFragGraph(p.GP))
	}()
	if err := writeFrame(worker, []byte{ftCall, 0x01}); err != nil {
		t.Fatalf("send frame: %v", err)
	}
	if err := <-errCh; err == nil {
		t.Fatalf("coordinator accepted a non-hello first frame")
	}
}

func TestServeValidatesArguments(t *testing.T) {
	p := testPartition(t)
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if _, err := l.Serve(p, 0, time.Second); err == nil {
		t.Fatalf("Serve accepted 0 worker processes")
	}
	l, err = Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if _, err := l.Serve(p, 3, time.Second); err == nil {
		t.Fatalf("Serve accepted more processes than fragments")
	}
}

func TestServeTimesOutWithoutWorkers(t *testing.T) {
	p := testPartition(t)
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	start := time.Now()
	if _, err := l.Serve(p, 1, 300*time.Millisecond); err == nil {
		t.Fatalf("Serve succeeded without any worker")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("Serve did not respect the handshake timeout")
	}
}

func TestProcConnPoisonsPendingCallsOnFailure(t *testing.T) {
	a, b := stdnet.Pipe()
	pc := newProcConn(a, 0, []int{0})
	go pc.readLoop()

	done := make(chan error, 1)
	go func() {
		_, err := pc.call(func(f *frame, id uint64) { f.buf = append(f.buf, ftCall) })
		done <- err
	}()
	// Swallow the request, then drop the connection mid-call.
	if _, err := readFrame(b); err != nil {
		t.Fatalf("read request: %v", err)
	}
	b.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("call survived a dropped connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("call hung after the connection dropped")
	}
	// Subsequent calls fail fast instead of hanging.
	if _, err := pc.call(func(f *frame, id uint64) { f.buf = append(f.buf, ftCall) }); err == nil {
		t.Fatalf("poisoned connection accepted a new call")
	}
}

func TestReaderRest(t *testing.T) {
	r := &reader{buf: []byte{1, 2, 3}}
	if got := r.u8(); got != 1 {
		t.Fatalf("u8 = %d", got)
	}
	if got := r.rest(); !reflect.DeepEqual(got, []byte{2, 3}) {
		t.Fatalf("rest = %v", got)
	}
	if got := r.rest(); len(got) != 0 {
		t.Fatalf("second rest = %v", got)
	}
	r.fail("x")
	if r.err == nil {
		t.Fatalf("fail did not record an error")
	}
}
