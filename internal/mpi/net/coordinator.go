package net

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/obs"
	"grape/internal/partition"
)

// DefaultHandshakeTimeout bounds how long Serve waits for the expected
// worker processes to connect and install their fragments.
const DefaultHandshakeTimeout = 60 * time.Second

// DefaultHeartbeatInterval is how often the coordinator pings each worker
// process when the listener does not configure its own interval. A worker
// that misses heartbeatMissedIntervals consecutive intervals is declared
// dead and every call routed to it fails — this is what turns a silently
// vanished worker (SIGKILL, network partition, half-open connection) into a
// prompt query error instead of a coordinator blocked forever on the reply
// demultiplexer.
const DefaultHeartbeatInterval = 10 * time.Second

// heartbeatMissedIntervals is how many unanswered heartbeat intervals
// declare a worker dead. Pings are answered by the worker's read loop
// directly, so even a worker busy with a long evaluation replies promptly.
const heartbeatMissedIntervals = 4

// Listener is a bound coordinator endpoint. Splitting Listen from Serve
// lets callers learn the chosen address (port 0 binds an ephemeral port)
// before the workers start dialing.
type Listener struct {
	ln net.Listener

	// Heartbeat overrides the liveness-probe interval for the cluster Serve
	// brings up: 0 selects DefaultHeartbeatInterval, negative disables
	// heartbeats entirely (calls to a dead worker then fail only when the OS
	// reports the broken connection).
	Heartbeat time.Duration

	// Elastic keeps the listener open after bring-up: fresh worker processes
	// may dial in mid-session (a version-5 hello with the join flag) and are
	// admitted with a new process id and zero fragments, ready to adopt
	// ranks. The listener then closes with the cluster. When false — the
	// default — the listener is consumed by Serve exactly as before.
	Elastic bool
}

// Listen binds the coordinator endpoint.
func Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("net: listen %s: %w", addr, err)
	}
	return &Listener{ln: ln}, nil
}

// Addr returns the bound address, usable as a grape-worker -coordinator
// value.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting workers. Serve closes the listener itself; Close is
// for abandoning a listener without serving.
func (l *Listener) Close() error { return l.ln.Close() }

// Serve runs the coordinator's side of the cluster bring-up: it waits for
// procs worker processes to connect, handshakes each (protocol version,
// cluster size, assigned ranks), ships the fragmentation graph and the
// assigned fragments of p, and waits for every worker to acknowledge
// readiness. Fragment ranks are dealt round-robin: process i hosts every
// rank r with r % procs == i. The listener is consumed: it stops accepting
// once the cluster is up.
//
// Every error path tears the partial cluster down: already-accepted
// connections are closed (failing fast the handshakes still in flight on
// sibling connections), so workers that did connect observe a prompt error
// instead of waiting out their own timeouts, and no socket leaks.
//
// The returned Cluster implements mpi.Transport (mailboxes, barriers and
// compute slots are coordinator-side, exactly as in the in-process cluster)
// and exposes a Peer per fragment for forwarding evaluation calls.
func (l *Listener) Serve(p *partition.Partitioned, procs int, timeout time.Duration) (*Cluster, error) {
	// Close every accepted connection — and the listener itself — on any
	// failure below, wherever it surfaces: a leaked half-handshaken socket
	// would leave its worker process blocked on a read until its own timeout.
	// On success the listener closes here too unless Elastic hands it to the
	// cluster's accept loop.
	var raw []net.Conn
	served := false
	defer func() {
		if !served {
			for _, c := range raw {
				c.Close()
			}
			l.ln.Close()
		}
	}()
	m := len(p.Fragments)
	if m == 0 {
		return nil, fmt.Errorf("net: partition has no fragments")
	}
	if procs < 1 || procs > m {
		return nil, fmt.Errorf("net: %d worker processes for %d fragments (want 1..%d)", procs, m, m)
	}
	if timeout <= 0 {
		timeout = DefaultHandshakeTimeout
	}
	deadline := time.Now().Add(timeout)
	if tl, ok := l.ln.(*net.TCPListener); ok {
		if err := tl.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("net: %w", err)
		}
	}

	local, err := mpi.NewCluster(m, nil)
	if err != nil {
		return nil, fmt.Errorf("net: %w", err)
	}
	gpBytes := partition.EncodeFragGraph(p.GP)

	// Accept every process first, then handshake them concurrently: fragment
	// shipping and worker-side installation overlap, so bring-up latency is
	// the slowest worker's setup rather than the sum of all of them.
	for proc := 0; proc < procs; proc++ {
		c, err := l.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("net: waiting for worker %d of %d: %w", proc+1, procs, err)
		}
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetKeepAlive(true)
			_ = tc.SetKeepAlivePeriod(30 * time.Second)
		}
		raw = append(raw, c)
	}

	// The first handshake failure aborts the bring-up: it closes every
	// accepted connection so sibling handshakes fail immediately instead of
	// waiting out the deadline on a cluster that can no longer form.
	var hsMu sync.Mutex
	hsProc, hsErr := -1, error(nil)
	abort := func(proc int, err error) {
		hsMu.Lock()
		defer hsMu.Unlock()
		if hsErr != nil {
			return // secondary failure caused by the abort itself
		}
		hsProc, hsErr = proc, err
		for _, c := range raw {
			c.Close()
		}
	}
	var wg sync.WaitGroup
	for proc, c := range raw {
		wg.Add(1)
		go func(proc int, c net.Conn) {
			defer wg.Done()
			if err := handshakeWorker(c, deadline, proc, procs, p, gpBytes); err != nil {
				abort(proc, err)
			}
		}(proc, c)
	}
	wg.Wait()
	if hsErr != nil {
		return nil, fmt.Errorf("net: handshake with worker %d: %w", hsProc+1, hsErr)
	}

	heartbeat := l.Heartbeat
	if heartbeat == 0 {
		heartbeat = DefaultHeartbeatInterval
	}
	conns := make([]*procConn, 0, procs)
	// Handshakes done: lift the deadlines, start the reply demultiplexers
	// and the liveness probes.
	for proc, c := range raw {
		pc := newProcConn(c, proc, assignedRanks(m, proc, procs))
		pc.c.SetDeadline(time.Time{})
		go pc.readLoop()
		if heartbeat > 0 {
			go pc.heartbeatLoop(heartbeat)
		}
		conns = append(conns, pc)
	}
	served = true

	cl := &Cluster{Cluster: local, conns: conns, peers: make([]*Peer, m),
		heartbeat: heartbeat, gpBytes: gpBytes, nextProc: procs}
	for rank := 0; rank < m; rank++ {
		cl.peers[rank] = &Peer{pc: conns[rank%procs], rank: rank}
	}
	if l.Elastic {
		if tl, ok := l.ln.(*net.TCPListener); ok {
			_ = tl.SetDeadline(time.Time{})
		}
		cl.ln = l.ln
		go cl.acceptLoop()
	} else {
		l.ln.Close()
	}
	return cl, nil
}

// Serve is the one-call form of Listen + Listener.Serve for callers that
// know their address up front.
func Serve(addr string, p *partition.Partitioned, procs int, timeout time.Duration) (*Cluster, error) {
	l, err := Listen(addr)
	if err != nil {
		return nil, err
	}
	return l.Serve(p, procs, timeout)
}

// handshakeWorker performs the coordinator's half of the handshake on a
// fresh connection: verify the hello, send the welcome (cluster size,
// assigned ranks, protocol version), ship GP and the fragments, await ready.
func handshakeWorker(c net.Conn, deadline time.Time, proc, procs int, p *partition.Partitioned, gpBytes []byte) error {
	if err := c.SetDeadline(deadline); err != nil {
		return err
	}
	hello, err := readFrame(c)
	if err != nil {
		return fmt.Errorf("reading hello: %w", err)
	}
	if _, err := parseHello(c, hello); err != nil {
		return err
	}

	ranks := assignedRanks(len(p.Fragments), proc, procs)
	welcome := []byte{ftWelcome}
	welcome = binary.AppendUvarint(welcome, ProtocolVersion)
	welcome = binary.AppendUvarint(welcome, uint64(len(p.Fragments)))
	welcome = binary.AppendUvarint(welcome, uint64(proc))
	welcome = binary.AppendUvarint(welcome, uint64(len(ranks)))
	for _, r := range ranks {
		welcome = binary.AppendUvarint(welcome, uint64(r))
	}
	if err := writeFrame(c, welcome); err != nil {
		return fmt.Errorf("sending welcome: %w", err)
	}
	// Fragment ships are the fat frames of the protocol; they go out deflated
	// when that actually shrinks them (version 3).
	gf := newFrame()
	gf.buf = append(gf.buf, ftFragGfx)
	gf.buf = append(gf.buf, gpBytes...)
	if err := gf.sendCompressed(c); err != nil {
		return fmt.Errorf("shipping fragmentation graph: %w", err)
	}
	for _, r := range ranks {
		ff := newFrame()
		ff.buf = append(ff.buf, ftFragment)
		ff.buf = binary.AppendUvarint(ff.buf, uint64(r))
		ff.buf = append(ff.buf, partition.EncodeFragment(p.Fragments[r])...)
		if err := ff.sendCompressed(c); err != nil {
			return fmt.Errorf("shipping fragment %d: %w", r, err)
		}
	}
	ready, err := readFrame(c)
	if err != nil {
		return fmt.Errorf("awaiting ready: %w", err)
	}
	rr := &reader{buf: ready}
	switch ft := rr.u8(); ft {
	case ftReady:
		return nil
	case ftError:
		return fmt.Errorf("worker aborted: %s", rr.str())
	default:
		return fmt.Errorf("expected ready frame, got 0x%02x", ft)
	}
}

// parseHello validates a hello frame and returns its flags byte (version 5's
// join bit; a missing flags byte reads as zero). A version mismatch is
// reported to the dialer with an error frame before failing.
func parseHello(c net.Conn, hello []byte) (byte, error) {
	hr := &reader{buf: hello}
	if ft := hr.u8(); ft != ftHello {
		return 0, fmt.Errorf("expected hello frame, got 0x%02x", ft)
	}
	v := hr.uvarint()
	if hr.err != nil {
		return 0, fmt.Errorf("malformed hello: %w", hr.err)
	}
	if v != ProtocolVersion {
		msg := fmt.Sprintf("protocol version mismatch: worker speaks %d, coordinator speaks %d", v, ProtocolVersion)
		_ = writeFrame(c, appendString([]byte{ftError}, msg))
		return 0, fmt.Errorf("%s", msg)
	}
	var flags byte
	if hr.off < len(hr.buf) {
		flags = hr.u8()
	}
	return flags, nil
}

// assignedRanks returns the fragment ranks process proc hosts under the
// round-robin deal.
func assignedRanks(m, proc, procs int) []int {
	var out []int
	for r := proc; r < m; r += procs {
		out = append(out, r)
	}
	return out
}

// Cluster is the coordinator side of a multi-process worker cluster. It
// embeds an in-process mpi.Cluster — mailboxes, barriers and compute slots
// are identical to the local transport — and adds the per-process
// connections plus a Peer handle per fragment rank for remote evaluation
// calls. It satisfies mpi.Transport, and core.RemoteUpdateTransport through
// ApplyUpdate.
//
// Membership is no longer fixed at bring-up: Reassign moves fragment ranks
// between processes (recovery after a death, rebalancing after a join), and
// an elastic listener's accept loop appends freshly joined processes to
// conns. mu guards both, plus the current fragmentation-graph encoding that
// joiners are handshaked with.
type Cluster struct {
	*mpi.Cluster
	mu    sync.RWMutex
	conns []*procConn
	peers []*Peer

	ln        net.Listener // non-nil when elastic: joiners dial in here
	heartbeat time.Duration
	gpBytes   []byte // current epoch's encoded fragmentation graph
	nextProc  int    // next process id to hand a joiner
	joinFn    func()
	closed    bool

	closeOnce sync.Once
	closeErr  error
}

var _ mpi.Transport = (*Cluster)(nil)

// Peer returns the evaluation handle for fragment rank.
func (c *Cluster) Peer(rank int) *Peer { return c.peers[rank] }

// Peers returns the evaluation handles for all fragment ranks, in rank
// order.
func (c *Cluster) Peers() []*Peer { return append([]*Peer(nil), c.peers...) }

// Procs returns the number of worker processes in the cluster, including any
// that joined mid-session and any that died.
func (c *Cluster) Procs() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.conns)
}

// liveConns snapshots the connections still worth talking to: not retired
// (retired conns are dead processes whose ranks were already reassigned).
func (c *Cluster) liveConns() []*procConn {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*procConn, 0, len(c.conns))
	for _, pc := range c.conns {
		if !pc.isRetired() {
			out = append(out, pc)
		}
	}
	return out
}

// SetJoinHandler registers fn to be invoked — on the transport's goroutine —
// each time a fresh worker process completes a mid-session join handshake.
// The engine uses it to rebalance fragment ranks onto the newcomer.
func (c *Cluster) SetJoinHandler(fn func()) {
	c.mu.Lock()
	c.joinFn = fn
	c.mu.Unlock()
}

// LostFragments returns the fragment ranks whose hosting worker process is
// dead and has not been replaced yet. A graceful shutdown reports none.
func (c *Cluster) LostFragments() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []int
	for _, pc := range c.conns {
		if pc.isDead() && !pc.isRetired() && !pc.isClosing() {
			out = append(out, pc.ranksSnapshot()...)
		}
	}
	return out
}

// RebalanceFragments plans an even re-deal after membership grew: it returns
// the fragment ranks that should move off the most-loaded live processes so
// that no live process hosts more than one rank above any other. Reassign
// ships each to the least-loaded process, so executing the plan converges to
// the balance the plan assumed.
func (c *Cluster) RebalanceFragments() []int {
	live := c.liveConns()
	load := make(map[*procConn]int, len(live))
	alive := live[:0]
	for _, pc := range live {
		if !pc.isDead() {
			alive = append(alive, pc)
			load[pc] = len(pc.ranksSnapshot())
		}
	}
	if len(alive) < 2 {
		return nil
	}
	var out []int
	for {
		var max, min *procConn
		for _, pc := range alive {
			if max == nil || load[pc] > load[max] {
				max = pc
			}
			if min == nil || load[pc] < load[min] {
				min = pc
			}
		}
		if load[max]-load[min] <= 1 {
			return out
		}
		// Take ranks off the tail of the most-loaded process's deal; repeated
		// takes against the same snapshot walk backwards through it.
		out = append(out, max.ranksSnapshot()[load[max]-1])
		load[max]--
		load[min]++
	}
}

// Reassign moves each fragment onto the least-loaded live worker process:
// the fragment (at the given epoch, with the new fragmentation graph) is
// shipped via an adopt call, the rank's peer is rebound so subsequent
// evaluation calls route to the new host, and the old host — when still
// alive, i.e. this is a rebalance rather than a recovery — receives a
// release call dropping its copy. A dead process whose last rank moves away
// is retired: update fan-outs and stats scrapes skip it from then on.
//
// Together with LostFragments this implements the engine's
// RemoteRecoveryTransport contract.
func (c *Cluster) Reassign(epoch int64, gp *partition.FragGraph, frags []*partition.Fragment) error {
	if len(frags) == 0 {
		return nil
	}
	gpBytes := partition.EncodeFragGraph(gp)

	c.mu.Lock()
	c.gpBytes = gpBytes
	// Plan targets under the lock: count current loads once, then assign
	// each fragment to the least-loaded live process that is not its
	// current (live) host.
	load := make(map[*procConn]int)
	var alive []*procConn
	for _, pc := range c.conns {
		if !pc.isDead() && !pc.isRetired() {
			alive = append(alive, pc)
			load[pc] = len(pc.ranksSnapshot())
		}
	}
	plan := make(map[*procConn][]*partition.Fragment)
	oldHosts := make(map[int]*procConn, len(frags))
	for _, f := range frags {
		if f == nil || f.ID < 0 || f.ID >= len(c.peers) {
			c.mu.Unlock()
			return fmt.Errorf("net: reassignment names an unknown fragment")
		}
		old := c.peers[f.ID].conn()
		oldHosts[f.ID] = old
		var target *procConn
		for _, pc := range alive {
			if pc == old {
				continue
			}
			if target == nil || load[pc] < load[target] {
				target = pc
			}
		}
		if target == nil {
			c.mu.Unlock()
			return fmt.Errorf("net: no live worker process to adopt fragment %d", f.ID)
		}
		load[target]++
		plan[target] = append(plan[target], f)
	}
	c.mu.Unlock()

	// Ship adoptions concurrently, one batched call per target process.
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var errs []error
	for pc, batch := range plan {
		wg.Add(1)
		go func(pc *procConn, batch []*partition.Fragment) {
			defer wg.Done()
			_, err := pc.callCompressed(func(fr *frame, id uint64) {
				fr.buf = append(fr.buf, ftCall)
				fr.buf = binary.AppendUvarint(fr.buf, id)
				fr.buf = append(fr.buf, callAdopt)
				fr.buf = binary.AppendUvarint(fr.buf, uint64(epoch))
				fr.buf = appendBytes(fr.buf, gpBytes)
				fr.buf = binary.AppendUvarint(fr.buf, uint64(len(batch)))
				for _, f := range batch {
					fr.buf = binary.AppendUvarint(fr.buf, uint64(f.ID))
					fr.buf = appendBytes(fr.buf, partition.EncodeFragment(f))
				}
			})
			if err != nil {
				errMu.Lock()
				//lint:ignore detmap error order is scheduler-dependent regardless of map order; the errors are joined for reporting only
				errs = append(errs, fmt.Errorf("net: adopting fragments on %s: %w", pc.describe(), err))
				errMu.Unlock()
				return
			}
			// Rebind each rank's peer and move the bookkeeping; release the
			// fragment on its old host when that host is still alive.
			for _, f := range batch {
				old := oldHosts[f.ID]
				c.mu.Lock()
				c.peers[f.ID].rebind(pc)
				c.mu.Unlock()
				if old != nil {
					old.removeRank(f.ID)
				}
				pc.addRank(f.ID)
				obsFragmentsMoved.Inc()
				if old != nil && !old.isDead() {
					_ = old.callParsed(func(fr *frame, id uint64) {
						fr.buf = append(fr.buf, ftCall)
						fr.buf = binary.AppendUvarint(fr.buf, id)
						fr.buf = append(fr.buf, callRelease)
						fr.buf = binary.AppendUvarint(fr.buf, uint64(f.ID))
					}, func([]byte) error { return nil })
				}
			}
		}(pc, batch)
	}
	wg.Wait()

	// Retire dead processes that no longer host anything: they are fully
	// replaced, so nothing should wait on them or fan out to them again.
	c.mu.RLock()
	for _, pc := range c.conns {
		if pc.isDead() && len(pc.ranksSnapshot()) == 0 {
			pc.retire()
		}
	}
	c.mu.RUnlock()
	return errors.Join(errs...)
}

// acceptLoop admits mid-session joiners on an elastic listener until the
// listener closes with the cluster.
func (c *Cluster) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.admitJoiner(conn)
	}
}

// admitJoiner handshakes one mid-session dialer: hello (version 5 with the
// join flag), a welcome carrying a fresh process id and zero fragment ranks,
// the current fragmentation graph, ready. On success the process becomes a
// full cluster member with no residency — the join handler's rebalance is
// what ships fragments onto it.
func (c *Cluster) admitJoiner(conn net.Conn) {
	fail := func(error) { conn.Close() }
	deadline := time.Now().Add(DefaultHandshakeTimeout)
	if err := conn.SetDeadline(deadline); err != nil {
		fail(err)
		return
	}
	hello, err := readFrame(conn)
	if err != nil {
		fail(err)
		return
	}
	flags, err := parseHello(conn, hello)
	if err != nil {
		fail(err)
		return
	}
	if flags&helloJoin == 0 {
		_ = writeFrame(conn, appendString([]byte{ftError}, "cluster already running: dial with the join flag to enter mid-session"))
		fail(nil)
		return
	}

	c.mu.Lock()
	proc := c.nextProc
	c.nextProc++
	gpBytes := c.gpBytes
	m := len(c.peers)
	c.mu.Unlock()

	welcome := []byte{ftWelcome}
	welcome = binary.AppendUvarint(welcome, ProtocolVersion)
	welcome = binary.AppendUvarint(welcome, uint64(m))
	welcome = binary.AppendUvarint(welcome, uint64(proc))
	welcome = binary.AppendUvarint(welcome, 0) // no ranks yet
	if err := writeFrame(conn, welcome); err != nil {
		fail(err)
		return
	}
	gf := newFrame()
	gf.buf = append(gf.buf, ftFragGfx)
	gf.buf = append(gf.buf, gpBytes...)
	if err := gf.sendCompressed(conn); err != nil {
		fail(err)
		return
	}
	ready, err := readFrame(conn)
	if err != nil {
		fail(err)
		return
	}
	rr := &reader{buf: ready}
	if ft := rr.u8(); ft != ftReady {
		fail(nil)
		return
	}
	conn.SetDeadline(time.Time{})
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetKeepAlive(true)
		_ = tc.SetKeepAlivePeriod(30 * time.Second)
	}

	pc := newProcConn(conn, proc, nil)
	go pc.readLoop()
	if c.heartbeat > 0 {
		go pc.heartbeatLoop(c.heartbeat)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		pc.shutdown()
		return
	}
	c.conns = append(c.conns, pc)
	fn := c.joinFn
	c.mu.Unlock()
	obsWorkerJoins.Inc()
	if fn != nil {
		fn()
	}
}

// ApplyUpdate installs a new residency epoch on every worker process: each
// receives the new fragmentation graph plus the rebuilt fragments among the
// ranks it hosts (fragments untouched by the batch are not re-shipped — the
// worker carries them over). floor is the oldest epoch any in-flight query
// still reads; workers retire residencies older than it. The call fans out
// to all processes concurrently and fails if any process fails, in which
// case the caller must not install the epoch.
//
// It implements the engine's RemoteUpdateTransport contract.
func (c *Cluster) ApplyUpdate(epoch, floor int64, gp *partition.FragGraph, changed []*partition.Fragment) error {
	gpBytes := partition.EncodeFragGraph(gp)
	conns := c.liveConns()
	c.mu.Lock()
	c.gpBytes = gpBytes // joiners handshake against the current epoch's GP
	c.mu.Unlock()
	perConn := make(map[*procConn][]*partition.Fragment, len(conns))
	c.mu.RLock()
	for _, f := range changed {
		if f == nil || f.ID < 0 || f.ID >= len(c.peers) {
			c.mu.RUnlock()
			return fmt.Errorf("net: update batch names an unknown fragment")
		}
		pc := c.peers[f.ID].conn()
		perConn[pc] = append(perConn[pc], f)
	}
	c.mu.RUnlock()

	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for i, pc := range conns {
		wg.Add(1)
		go func(i int, pc *procConn) {
			defer wg.Done()
			frags := perConn[pc]
			_, err := pc.callCompressed(func(fr *frame, id uint64) {
				fr.buf = append(fr.buf, ftCall)
				fr.buf = binary.AppendUvarint(fr.buf, id)
				fr.buf = append(fr.buf, callUpdate)
				fr.buf = binary.AppendUvarint(fr.buf, uint64(epoch))
				fr.buf = binary.AppendUvarint(fr.buf, uint64(floor))
				fr.buf = appendBytes(fr.buf, gpBytes)
				fr.buf = binary.AppendUvarint(fr.buf, uint64(len(frags)))
				for _, f := range frags {
					fr.buf = binary.AppendUvarint(fr.buf, uint64(f.ID))
					fr.buf = appendBytes(fr.buf, partition.EncodeFragment(f))
				}
			})
			errs[i] = err
		}(i, pc)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// WorkerSamples polls every live worker process for a snapshot of its
// observability counters (the stats call, answered by each worker's frame
// loop directly) and returns the union, each sample re-labeled with the
// process id so the coordinator's /metrics exposition can tell the workers
// apart. Dead or unreachable processes are skipped: a scrape must not fail
// because a worker did.
func (c *Cluster) WorkerSamples() []obs.Sample {
	type result struct {
		proc    int
		samples []obs.Sample
	}
	conns := c.liveConns()
	results := make([]result, len(conns))
	var wg sync.WaitGroup
	for i, pc := range conns {
		wg.Add(1)
		go func(i int, pc *procConn) {
			defer wg.Done()
			var samples []obs.Sample
			err := pc.callParsed(func(f *frame, id uint64) {
				f.buf = append(f.buf, ftCall)
				f.buf = binary.AppendUvarint(f.buf, id)
				f.buf = append(f.buf, callStats)
			}, func(body []byte) (err error) {
				samples, err = obs.DecodeSamples(body)
				return err
			})
			if err != nil {
				return
			}
			results[i] = result{proc: pc.proc, samples: samples}
		}(i, pc)
	}
	wg.Wait()
	var out []obs.Sample
	for _, res := range results {
		for _, s := range res.samples {
			s.Labels = append(s.Labels, obs.Label{Name: "proc", Value: strconv.Itoa(res.proc)})
			out = append(out, s)
		}
	}
	obs.SortSamples(out)
	return out
}

// Close shuts the cluster down gracefully: every worker process receives a
// shutdown frame (on which it exits cleanly) before its connection is
// closed. Close is idempotent.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		conns := append([]*procConn(nil), c.conns...)
		ln := c.ln
		c.mu.Unlock()
		if ln != nil {
			ln.Close()
		}
		for _, pc := range conns {
			pc.shutdown()
		}
	})
	return c.closeErr
}

// procConn multiplexes concurrent evaluation calls for the fragments one
// worker process hosts over a single TCP connection: requests carry an id,
// replies are demultiplexed by it, so a BSP barrier (or several async
// fragment loops) can keep every hosted fragment busy without per-fragment
// connections.
//
// A connection failure — detected by the read loop, a failed write, or the
// heartbeat prober — poisons the procConn: every pending call is released
// with an error naming the dead process and the fragment ranks it hosted,
// and every future call fails immediately. Nothing ever blocks on a reply
// that can no longer arrive.
type procConn struct {
	c    net.Conn
	proc int
	dead chan struct{} // closed when the connection is poisoned
	wmu  sync.Mutex    // serializes wire writes (the write loop's batches, shutdown)

	// sendq carries wire-ready (sealed, possibly deflated) frames to the
	// write loop, which coalesces everything queued into a single
	// writev-style net.Buffers write. Calls for the several fragments a
	// process hosts thus share wire writes instead of paying one syscall —
	// and one TCP_NODELAY packet — each, and callers never block on the
	// network: encode and enqueue return immediately while the flusher
	// overlaps the actual write with whatever the caller does next.
	sendq chan *frame

	mu      sync.Mutex
	ranks   []int // fragment ranks currently hosted; mutates under reassignment
	nextReq uint64
	pending map[uint64]chan callReply
	err     error
	closing bool // graceful shutdown in progress; don't count the poisoning as a failure
	retired bool // dead and fully replaced; skip in fan-outs and scrapes
}

// callReply carries one demultiplexed reply. body aliases the pooled frame
// f read by the loop; whoever consumes the reply must call release once
// nothing references body anymore — parsing helpers copy what escapes, so
// reply frames recycle through the pool exactly like the worker-side loop's
// request frames (the two directions used to be asymmetric: replies were
// read into fresh allocations).
type callReply struct {
	f    *frame // pooled backing buffer; nil on error replies
	body []byte
	err  error
}

func (r *callReply) release() {
	if r.f != nil {
		r.f.release()
		r.f = nil
		r.body = nil
	}
}

func newProcConn(c net.Conn, proc int, ranks []int) *procConn {
	pc := &procConn{c: c, proc: proc, ranks: ranks, dead: make(chan struct{}),
		sendq:   make(chan *frame, 64),
		pending: make(map[uint64]chan callReply)}
	// The write loop belongs to the connection, not the coordinator's serve
	// loop: calls enqueue frames, so every procConn needs a drain from birth.
	go pc.writeLoop()
	return pc
}

// isDead reports whether the connection has been poisoned.
func (pc *procConn) isDead() bool {
	select {
	case <-pc.dead:
		return true
	default:
		return false
	}
}

func (pc *procConn) isRetired() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.retired
}

func (pc *procConn) retire() {
	pc.mu.Lock()
	pc.retired = true
	pc.mu.Unlock()
}

func (pc *procConn) isClosing() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.closing
}

func (pc *procConn) ranksSnapshot() []int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return append([]int(nil), pc.ranks...)
}

func (pc *procConn) addRank(rank int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for _, r := range pc.ranks {
		if r == rank {
			return
		}
	}
	pc.ranks = append(pc.ranks, rank)
}

func (pc *procConn) removeRank(rank int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for i, r := range pc.ranks {
		if r == rank {
			pc.ranks = append(pc.ranks[:i], pc.ranks[i+1:]...)
			return
		}
	}
}

// lost wraps a connection-level failure in a WorkerLostError naming this
// process and the fragment ranks it hosted, preserving msg as the visible
// error text.
func (pc *procConn) lost(msg string, cause error) error {
	return &WorkerLostError{Proc: pc.proc, Fragments: pc.ranksSnapshot(), Cause: cause, msg: msg}
}

// enqueue hands a wire-ready frame to the write loop. On a poisoned
// connection the frame is recycled instead; the caller learns of the failure
// through its pending-reply channel.
func (pc *procConn) enqueue(f *frame) {
	select {
	case pc.sendq <- f:
	case <-pc.dead:
		f.release()
	}
}

// writeLoop drains the send queue, coalescing every frame queued at the
// moment it wakes into one net.Buffers write — a single writev on TCP — so
// concurrent calls to the same worker process (a BSP barrier driving all its
// hosted fragments at once) share packets and syscalls. A write failure
// poisons the connection.
func (pc *procConn) writeLoop() {
	var frames []*frame
	var bufs net.Buffers
	for {
		select {
		case <-pc.dead:
			for {
				select {
				case f := <-pc.sendq:
					f.release()
				default:
					return
				}
			}
		case f := <-pc.sendq:
			frames = append(frames[:0], f)
		gather:
			for {
				select {
				case more := <-pc.sendq:
					frames = append(frames, more)
				default:
					break gather
				}
			}
			total := 0
			bufs = bufs[:0]
			for _, fr := range frames {
				bufs = append(bufs, fr.buf)
				total += len(fr.buf)
			}
			pc.wmu.Lock()
			_, err := bufs.WriteTo(pc.c)
			pc.wmu.Unlock()
			if err == nil {
				obsFramesSent.Add(float64(len(frames)))
				obsNetBytesSent.Add(float64(total))
			}
			for _, fr := range frames {
				fr.release()
			}
			if err != nil {
				pc.fail(pc.lost(fmt.Sprintf("net: send to %s: %v", pc.describe(), err), err))
				return
			}
		}
	}
}

// call sends one request frame — build appends the request body straight
// into a pooled frame buffer, keyed by the allocated request id — blocks
// until the reply arrives or the connection fails, and returns the reply
// body copied into caller-owned memory. Calls whose reply is parsed
// immediately should use callParsed instead, which keeps the body pooled.
func (pc *procConn) call(build func(f *frame, reqID uint64)) ([]byte, error) {
	rep, err := pc.callOpt(false, build)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), rep.body...)
	obsReplyCopied.Add(float64(len(rep.body)))
	rep.release()
	return out, nil
}

// callParsed is call for replies consumed on the spot: parse runs against
// the reply body while it still aliases the pooled read buffer, which is
// recycled as soon as parse returns. Nothing parse produces may retain the
// body slice.
func (pc *procConn) callParsed(build func(f *frame, reqID uint64), parse func(body []byte) error) error {
	rep, err := pc.callOpt(false, build)
	if err != nil {
		return err
	}
	obsReplyPooled.Add(float64(len(rep.body)))
	err = parse(rep.body)
	rep.release()
	return err
}

// callCompressed is call for bulk payloads (update-batch fragment ships):
// the frame goes out deflated when that shrinks it.
func (pc *procConn) callCompressed(build func(f *frame, reqID uint64)) ([]byte, error) {
	rep, err := pc.callOpt(true, build)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), rep.body...)
	obsReplyCopied.Add(float64(len(rep.body)))
	rep.release()
	return out, nil
}

func (pc *procConn) callOpt(compress bool, build func(f *frame, reqID uint64)) (callReply, error) {
	pc.mu.Lock()
	if pc.err != nil {
		err := pc.err
		pc.mu.Unlock()
		return callReply{}, err
	}
	pc.nextReq++
	id := pc.nextReq
	ch := make(chan callReply, 1)
	pc.pending[id] = ch
	pc.mu.Unlock()

	f := newFrame()
	build(f, id)
	var wf *frame
	var err error
	if compress {
		wf, err = f.sealCompressed()
	} else {
		if err = f.seal(); err == nil {
			wf = f
		}
	}
	if err != nil {
		pc.fail(pc.lost(fmt.Sprintf("net: send request to %s: %v", pc.describe(), err), err))
	} else {
		pc.enqueue(wf)
	}
	rep := <-ch
	return rep, rep.err
}

// describe names the worker process and the fragment ranks it hosts, for
// error messages that must identify the dead party.
func (pc *procConn) describe() string {
	return fmt.Sprintf("worker process %d (fragments %v)", pc.proc, pc.ranksSnapshot())
}

// readLoop demultiplexes reply frames to their waiting calls until the
// connection fails or is closed. Frames are read into pooled buffers — the
// same discipline as the worker-side frame loop — and handed to the waiting
// call, which releases the buffer once the reply body is parsed or copied.
func (pc *procConn) readLoop() {
	for {
		f, err := readFrameP(pc.c)
		if err != nil {
			pc.fail(pc.lost(fmt.Sprintf("net: %s connection lost: %v", pc.describe(), err), err))
			return
		}
		r := &reader{buf: f.payload()}
		if ft := r.u8(); ft != ftReply {
			f.release()
			pc.fail(pc.lost(fmt.Sprintf("net: unexpected frame 0x%02x from %s", ft, pc.describe()), nil))
			return
		}
		id := r.uvarint()
		ok := r.u8()
		var rep callReply
		if ok == 1 {
			rep.f, rep.body = f, r.rest()
		} else {
			rep.err = fmt.Errorf("net: remote: %s", r.str())
		}
		if r.err != nil {
			f.release()
			pc.fail(pc.lost(fmt.Sprintf("net: malformed reply from %s: %v", pc.describe(), r.err), r.err))
			return
		}
		if rep.f == nil {
			f.release() // error reply: the message string was copied above
		}
		pc.mu.Lock()
		ch, found := pc.pending[id]
		delete(pc.pending, id)
		pc.mu.Unlock()
		if found {
			ch <- rep
		} else {
			rep.release()
		}
	}
}

// heartbeatLoop probes the worker process with ping calls. A ping is
// answered by the worker's frame loop directly (never queued behind an
// evaluation), so an unanswered ping means the process is gone even when
// the TCP connection looks healthy — the half-open case a plain read never
// detects. Missing heartbeatMissedIntervals consecutive intervals poisons
// the connection.
func (pc *procConn) heartbeatLoop(interval time.Duration) {
	timeout := heartbeatMissedIntervals * interval
	ping := time.NewTicker(interval)
	defer ping.Stop()
	for {
		select {
		case <-pc.dead:
			return
		case <-ping.C:
		}
		res := make(chan error, 1)
		go func() {
			start := time.Now()
			err := pc.callParsed(func(f *frame, id uint64) {
				f.buf = append(f.buf, ftCall)
				f.buf = binary.AppendUvarint(f.buf, id)
				f.buf = append(f.buf, callPing)
			}, func([]byte) error { return nil })
			if err == nil {
				obsHeartbeatRTT.With(strconv.Itoa(pc.proc)).Observe(time.Since(start).Seconds())
			}
			res <- err
		}()
		expire := time.NewTimer(timeout)
		select {
		case err := <-res:
			expire.Stop()
			if err != nil {
				return // connection already poisoned; fail delivered the news
			}
		case <-pc.dead:
			expire.Stop()
			return
		case <-expire.C:
			pc.fail(pc.lost(fmt.Sprintf("net: %s unresponsive: no heartbeat reply within %v", pc.describe(), timeout), nil))
			return
		}
	}
}

// fail poisons the connection: every pending and future call returns err.
func (pc *procConn) fail(err error) {
	pc.mu.Lock()
	first := pc.err == nil
	if first {
		pc.err = err
	}
	pending := pc.pending
	pc.pending = make(map[uint64]chan callReply)
	closing := pc.closing
	pc.mu.Unlock()
	if first {
		close(pc.dead)
		if !closing {
			obsConnErrors.With(strconv.Itoa(pc.proc)).Inc()
		}
	}
	pc.c.Close()
	for _, ch := range pending {
		ch <- callReply{err: err}
	}
}

// shutdown sends the graceful-shutdown frame and closes the connection. The
// frame is written directly under wmu — the same lock the write loop's
// batches take — so it can never land mid-batch; queued call frames that
// have not hit the wire yet are dropped by the poisoning below, which is
// also what answers their pending calls.
func (pc *procConn) shutdown() {
	pc.mu.Lock()
	pc.closing = true
	pc.mu.Unlock()
	pc.wmu.Lock()
	_ = writeFrame(pc.c, []byte{ftShutdown})
	pc.wmu.Unlock()
	pc.fail(fmt.Errorf("net: cluster closed"))
}

// Peer is the coordinator's evaluation handle for one fragment hosted by a
// worker process. It implements the engine's RemotePeer contract,
// RemoteViewPeer through Materialize/EvalDelta, and RemoteCheckpointPeer
// through Checkpoint/Restore.
//
// The binding to a process connection is mutable: when the fragment's rank
// is reassigned (its host died, or the cluster rebalanced onto a joiner),
// rebind repoints the peer and every subsequent call routes to the new
// host. The engine holds peers by pointer, so in-flight retries see the new
// binding without re-plumbing.
type Peer struct {
	mu   sync.RWMutex
	pc   *procConn
	rank int
}

// Rank returns the fragment rank this peer evaluates.
func (p *Peer) Rank() int { return p.rank }

// conn returns the current process connection hosting this fragment.
func (p *Peer) conn() *procConn {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.pc
}

// rebind repoints the peer at a new hosting process.
func (p *Peer) rebind(pc *procConn) {
	p.mu.Lock()
	p.pc = pc
	p.mu.Unlock()
}

// callHeader appends the common [ftCall][reqID][kind][rank][query] prefix of
// per-fragment calls to the frame under construction.
func (p *Peer) callHeader(f *frame, reqID uint64, kind byte, query uint64) {
	f.buf = append(f.buf, ftCall)
	f.buf = binary.AppendUvarint(f.buf, reqID)
	f.buf = append(f.buf, kind)
	f.buf = binary.AppendUvarint(f.buf, uint64(p.rank))
	f.buf = binary.AppendUvarint(f.buf, query)
}

// PEval forwards a partial-evaluation call — naming the residency epoch the
// query reads — and returns the envelopes the remote fragment routed.
func (p *Peer) PEval(query uint64, epoch int64, prog string, queryBytes []byte, superstep int,
	disableIncEval, disableGrouping bool) ([]mpi.Envelope, error) {
	var envs []mpi.Envelope
	err := p.conn().callParsed(func(f *frame, id uint64) {
		p.callHeader(f, id, callPEval, query)
		f.buf = binary.AppendUvarint(f.buf, uint64(superstep))
		f.buf = binary.AppendUvarint(f.buf, uint64(epoch))
		var flags byte
		if disableIncEval {
			flags |= 1
		}
		if disableGrouping {
			flags |= 2
		}
		f.buf = append(f.buf, flags)
		f.buf = appendString(f.buf, prog)
		f.buf = appendBytes(f.buf, queryBytes)
	}, func(body []byte) (err error) {
		envs, err = decodeEnvelopeReply(body)
		return err
	})
	if err != nil {
		return nil, err
	}
	return envs, nil
}

// IncEval forwards delivered envelopes to the remote fragment and returns
// the envelopes its incremental evaluation routed.
func (p *Peer) IncEval(query uint64, superstep int, envs []mpi.Envelope) ([]mpi.Envelope, error) {
	var out []mpi.Envelope
	err := p.conn().callParsed(func(f *frame, id uint64) {
		p.callHeader(f, id, callIncEval, query)
		f.buf = binary.AppendUvarint(f.buf, uint64(superstep))
		f.buf = appendEnvelopes(f.buf, envs)
	}, func(body []byte) (err error) {
		out, err = decodeEnvelopeReply(body)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fetch retrieves the fragment's encoded partial result.
func (p *Peer) Fetch(query uint64) ([]byte, error) {
	return p.conn().call(func(f *frame, id uint64) {
		p.callHeader(f, id, callFetch, query)
	})
}

// Checkpoint retrieves the query's encoded in-flight state on this fragment.
// The engine calls it at a superstep barrier on every rank at once, making
// the union a consistent cut it can later restore from.
func (p *Peer) Checkpoint(query uint64) ([]byte, error) {
	return p.conn().call(func(f *frame, id uint64) {
		p.callHeader(f, id, callCheckpoint, query)
	})
}

// Restore reinstalls a checkpointed query state on this fragment under a
// fresh query id bound to the given residency epoch, so a restarted run can
// resume from the cut's superstep instead of re-evaluating from scratch.
func (p *Peer) Restore(query uint64, epoch int64, prog string, queryBytes, state []byte) error {
	return p.conn().callParsed(func(f *frame, id uint64) {
		p.callHeader(f, id, callRestore, query)
		f.buf = binary.AppendUvarint(f.buf, uint64(epoch))
		f.buf = appendString(f.buf, prog)
		f.buf = appendBytes(f.buf, queryBytes)
		f.buf = appendBytes(f.buf, state)
	}, func([]byte) error { return nil })
}

// End releases the fragment's per-query state (query runs and views alike).
func (p *Peer) End(query uint64) error {
	return p.conn().callParsed(func(f *frame, id uint64) {
		p.callHeader(f, id, callEnd, query)
	}, func([]byte) error { return nil })
}

// Materialize promotes the query's converged state on this fragment into
// view state: the worker retains it across epochs for maintenance rounds,
// until End releases it.
func (p *Peer) Materialize(query uint64) error {
	return p.conn().callParsed(func(f *frame, id uint64) {
		p.callHeader(f, id, callMaterialize, query)
	}, func([]byte) error { return nil })
}

// EvalDelta runs one maintenance seeding on the remote view state: the
// batch's ops for this fragment plus the newly mirrored border vertices. It
// returns whether the program absorbed the change and the envelopes the
// seeding routed.
func (p *Peer) EvalDelta(query uint64, superstep int, ops []graph.Update,
	newInBorder []graph.VertexID) (bool, []mpi.Envelope, error) {
	var absorbed bool
	var envs []mpi.Envelope
	err := p.conn().callParsed(func(f *frame, id uint64) {
		p.callHeader(f, id, callEvalDelta, query)
		f.buf = binary.AppendUvarint(f.buf, uint64(superstep))
		f.buf = appendBytes(f.buf, mpi.EncodeGraphUpdates(ops))
		f.buf = appendVertexIDs(f.buf, newInBorder)
	}, func(body []byte) error {
		r := &reader{buf: body}
		absorbed = r.u8() == 1
		envs = r.envelopes()
		return r.err
	})
	if err != nil {
		return false, nil, err
	}
	return absorbed, envs, nil
}

func decodeEnvelopeReply(body []byte) ([]mpi.Envelope, error) {
	r := &reader{buf: body}
	envs := r.envelopes()
	if r.err != nil {
		return nil, r.err
	}
	return envs, nil
}
