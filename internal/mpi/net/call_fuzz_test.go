package net

import (
	"encoding/binary"
	"testing"

	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/partition"
)

// fuzzHandler is a Handler whose methods accept anything and allocate
// nothing interesting: FuzzCallBody targets the protocol parsing in
// handleCall and parseFragmentShip, not the engine behind it.
type fuzzHandler struct{}

func (fuzzHandler) Setup([]*partition.Fragment, *partition.FragGraph) error { return nil }
func (fuzzHandler) PEval(int, uint64, int64, string, []byte, int, bool, bool) ([]mpi.Envelope, error) {
	return nil, nil
}
func (fuzzHandler) IncEval(int, uint64, int, []mpi.Envelope) ([]mpi.Envelope, error) {
	return nil, nil
}
func (fuzzHandler) Fetch(int, uint64) ([]byte, error) { return []byte{1}, nil }
func (fuzzHandler) End(int, uint64) error             { return nil }
func (fuzzHandler) ApplyUpdate(int64, int64, *partition.FragGraph, []*partition.Fragment) error {
	return nil
}
func (fuzzHandler) Materialize(int, uint64) error { return nil }
func (fuzzHandler) EvalDelta(int, uint64, int, []graph.Update, []graph.VertexID) (bool, []mpi.Envelope, error) {
	return false, nil, nil
}
func (fuzzHandler) Checkpoint(int, uint64) ([]byte, error) { return []byte{2}, nil }
func (fuzzHandler) Restore(int, uint64, int64, string, []byte, []byte) error {
	return nil
}
func (fuzzHandler) Adopt(int64, *partition.FragGraph, []*partition.Fragment) error { return nil }
func (fuzzHandler) ReleaseFragment(int) error                                      { return nil }

// fuzzShipBody encodes a well-formed [gpBytes][count][rank fragBytes]... tail
// shared by the update and adopt calls.
func fuzzShipBody(tb testing.TB) []byte {
	tb.Helper()
	b := graph.NewBuilder(true)
	for v := 0; v < 8; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+3)%8), 1, "")
	}
	p := partition.Partition(b.Build(), 2, partition.Hash{})
	var body []byte
	body = appendBytes(body, partition.EncodeFragGraph(p.GP))
	body = binary.AppendUvarint(body, uint64(len(p.Fragments)))
	for _, f := range p.Fragments {
		body = binary.AppendUvarint(body, uint64(f.ID))
		body = appendBytes(body, partition.EncodeFragment(f))
	}
	return body
}

// FuzzCallBody drives handleCall with arbitrary call bodies across the
// protocol-v5 kinds fault tolerance added — checkpoint, restore, adopt,
// release — plus the fragment-shipping update path they share parsing with.
// Malformed bodies must come back as error replies (or reader errors), never
// as panics or runaway allocations; handleCall runs with a nil metrics sink
// exactly as the transport does before registration completes.
func FuzzCallBody(f *testing.F) {
	ship := fuzzShipBody(f)

	// Well-formed bodies for each kind under test.
	var restore []byte
	restore = binary.AppendUvarint(restore, 3)                 // rank
	restore = binary.AppendUvarint(restore, 7)                 // query
	restore = binary.AppendUvarint(restore, 2)                 // epoch
	restore = appendBytes(restore, []byte("sssp"))             // prog
	restore = appendBytes(restore, []byte{9, 0, 0, 0})         // query bytes
	restore = appendBytes(restore, []byte("checkpoint-state")) // state
	f.Add(byte(callRestore), restore)

	var checkpoint []byte
	checkpoint = binary.AppendUvarint(checkpoint, 1) // rank
	checkpoint = binary.AppendUvarint(checkpoint, 4) // query
	f.Add(byte(callCheckpoint), checkpoint)

	var adopt []byte
	adopt = binary.AppendUvarint(adopt, 5) // epoch
	adopt = append(adopt, ship...)
	f.Add(byte(callAdopt), adopt)

	var update []byte
	update = binary.AppendUvarint(update, 6) // epoch
	update = binary.AppendUvarint(update, 2) // floor
	update = append(update, ship...)
	f.Add(byte(callUpdate), update)

	var release []byte
	release = binary.AppendUvarint(release, 1) // rank
	f.Add(byte(callRelease), release)

	// Hostile bodies: truncations, absurd counts, garbage fragments.
	f.Add(byte(callRestore), restore[:3])
	f.Add(byte(callAdopt), binary.AppendUvarint(nil, 1<<40))
	var bomb []byte
	bomb = binary.AppendUvarint(bomb, 1)     // epoch
	bomb = appendBytes(bomb, []byte{0x7F})   // bad GP
	bomb = binary.AppendUvarint(bomb, 1<<33) // fragment count bomb
	f.Add(byte(callAdopt), bomb)
	f.Add(byte(0xEE), []byte{1, 2, 3}) // unknown kind

	opts := WorkerOptions{}
	f.Fuzz(func(t *testing.T, kind byte, body []byte) {
		r := &reader{buf: body}
		rep := handleCall(fuzzHandler{}, kind, r, nil, opts)
		if rep.err == nil && r.err != nil {
			t.Fatalf("kind 0x%02x: reader error %v swallowed by a success reply", kind, r.err)
		}
	})
}
