package net

import "grape/internal/obs"

// Wire-level observability counters. They live in the process-wide default
// registry: on the coordinator they meter the coordinator side of every
// connection and are served from the session's debug endpoint; a worker
// process meters its own side the same way (its per-connection call counters,
// which travel back over callStats, live in a separate registry — see
// worker.go).
var (
	obsFramesSent = obs.Counter("grape_net_frames_sent_total",
		"Wire frames written, including handshake and control frames.")
	obsNetBytesSent = obs.Counter("grape_net_bytes_sent_total",
		"Bytes written to the wire, headers included.")
	obsFramesRead = obs.Counter("grape_net_frames_read_total",
		"Wire frames read.")
	obsNetBytesRead = obs.Counter("grape_net_bytes_read_total",
		"Bytes read from the wire, headers included.")
	obsCompressedFrames = obs.Counter("grape_net_compressed_frames_total",
		"Frames that shipped deflate-compressed.")
	obsCompressionSaved = obs.Counter("grape_net_compressed_bytes_saved_total",
		"Bytes saved by frame compression (raw size minus wire size).")
	obsReplyPooled = obs.Counter("grape_net_reply_bytes_pooled_total",
		"Reply-body bytes parsed in place from pooled read buffers.")
	obsReplyCopied = obs.Counter("grape_net_reply_bytes_copied_total",
		"Reply-body bytes copied out of pooled buffers for escaping callers.")
	obsHeartbeatRTT = obs.HistogramVec("grape_net_heartbeat_rtt_seconds",
		"Heartbeat ping round-trip time, by worker process.", nil, "proc")
	obsConnErrors = obs.CounterVec("grape_net_conn_errors_total",
		"Connections poisoned by a failure, by worker process.", "proc")
	obsDialRetries = obs.Counter("grape_net_dial_retries_total",
		"Worker dial attempts that failed and were retried with backoff.")
	obsWorkerJoins = obs.Counter("grape_net_worker_joins_total",
		"Worker processes admitted into a running cluster mid-session.")
	obsFragmentsMoved = obs.Counter("grape_net_fragments_moved_total",
		"Fragment ranks shipped to a different worker process (death recovery or elastic rebalance).")
)
