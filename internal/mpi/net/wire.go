package net

import (
	"encoding/binary"
	"fmt"
	"io"

	"grape/internal/graph"
	"grape/internal/mpi"
)

// ProtocolVersion is the wire protocol generation. The worker sends it in
// its hello and the coordinator echoes it in the welcome; a mismatch on
// either side aborts the handshake with a versioned error instead of
// undefined framing behavior. Bump it whenever a frame layout, the fragment
// codec or the call semantics change incompatibly.
//
// Version 2 added the dynamic-graph calls (update/materialize/eval-delta),
// the epoch field on PEval, and the ping/heartbeat call.
const ProtocolVersion = 2

// maxFrame bounds a single frame (a shipped fragment is the largest payload
// in practice). Oversized lengths indicate a corrupt or hostile stream.
const maxFrame = 1 << 30

// Frame types.
const (
	ftHello    = byte(0x01) // worker -> coordinator: protocol version
	ftWelcome  = byte(0x02) // coordinator -> worker: version, m, proc id, assigned ranks
	ftFragGfx  = byte(0x03) // coordinator -> worker: encoded fragmentation graph
	ftFragment = byte(0x04) // coordinator -> worker: rank + encoded fragment
	ftReady    = byte(0x05) // worker -> coordinator: fragments installed
	ftCall     = byte(0x06) // coordinator -> worker: evaluation request
	ftReply    = byte(0x07) // worker -> coordinator: evaluation response
	ftShutdown = byte(0x08) // coordinator -> worker: graceful shutdown
	ftError    = byte(0x09) // either direction during handshake: abort with message
)

// Call kinds carried by ftCall frames. Every call is [ftCall][reqID][kind]
// followed by a kind-specific body; replies share one frame shape
// ([ftReply][reqID][ok][body]) demultiplexed by request id.
//
//	callPEval       [rank][query][superstep][epoch][flags][prog][queryBytes]
//	callIncEval     [rank][query][superstep][envelopes]
//	callFetch       [rank][query]
//	callEnd         [rank][query]
//	callPing        (empty) — heartbeat; the worker replies immediately
//	callUpdate      [epoch][floor][gpBytes][n]{[rank][fragBytes]}...
//	callMaterialize [rank][query]
//	callEvalDelta   [rank][query][superstep][opsBytes][newInBorder ids]
const (
	callPEval       = byte(0x01)
	callIncEval     = byte(0x02)
	callFetch       = byte(0x03)
	callEnd         = byte(0x04)
	callPing        = byte(0x05)
	callUpdate      = byte(0x06)
	callMaterialize = byte(0x07)
	callEvalDelta   = byte(0x08)
)

// writeFrame sends one length-prefixed frame. Callers serialize access to w.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("net: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("net: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// appendString appends a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendBytes appends a length-prefixed byte slice.
func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// appendEnvelopes appends an envelope batch: count, then per envelope the
// zigzag-varint From/To ranks, the tag and the payload (whose bytes are the
// already varint/delta-encoded update batches of the mpi codec — the
// transport does not re-encode them).
func appendEnvelopes(buf []byte, envs []mpi.Envelope) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(envs)))
	for _, e := range envs {
		buf = binary.AppendVarint(buf, int64(e.From))
		buf = binary.AppendVarint(buf, int64(e.To))
		buf = appendString(buf, e.Tag)
		buf = appendBytes(buf, e.Payload)
	}
	return buf
}

// appendVertexIDs appends a vertex-ID list: count, then zigzag-varint deltas
// against the previous ID (the lists the engine ships — NewInBorder sets —
// are ascending, so deltas stay small).
func appendVertexIDs(buf []byte, ids []graph.VertexID) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prev := int64(0)
	for _, v := range ids {
		buf = binary.AppendVarint(buf, int64(v)-prev)
		prev = int64(v)
	}
	return buf
}

// reader is a sticky-error cursor over a frame payload.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("net: truncated or malformed %s at offset %d", what, r.off)
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail("byte")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// count reads a length prefix bounded by the remaining bytes.
func (r *reader) count() int {
	v := r.uvarint()
	if r.err == nil && v > uint64(len(r.buf)-r.off)+1 {
		r.fail("length")
		return 0
	}
	return int(v)
}

func (r *reader) bytes() []byte {
	n := r.count()
	if r.err != nil || r.off+n > len(r.buf) {
		r.fail("bytes")
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

func (r *reader) str() string { return string(r.bytes()) }

// rest returns the unread remainder of the frame.
func (r *reader) rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.buf[r.off:]
	r.off = len(r.buf)
	return b
}

func (r *reader) vertexIDs() []graph.VertexID {
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]graph.VertexID, 0, n)
	prev := int64(0)
	for i := 0; i < n && r.err == nil; i++ {
		prev += r.varint()
		out = append(out, graph.VertexID(prev))
	}
	if r.err != nil {
		return nil
	}
	return out
}

func (r *reader) envelopes() []mpi.Envelope {
	n := r.count()
	if r.err != nil {
		return nil
	}
	envs := make([]mpi.Envelope, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		var e mpi.Envelope
		e.From = int(r.varint())
		e.To = int(r.varint())
		e.Tag = r.str()
		e.Payload = append([]byte(nil), r.bytes()...)
		envs = append(envs, e)
	}
	if r.err != nil {
		return nil
	}
	return envs
}
