package net

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"grape/internal/graph"
	"grape/internal/mpi"
)

// ProtocolVersion is the wire protocol generation. The worker sends it in
// its hello and the coordinator echoes it in the welcome; a mismatch on
// either side aborts the handshake with a versioned error instead of
// undefined framing behavior. Bump it whenever a frame layout, the fragment
// codec or the call semantics change incompatibly.
//
// Version 2 added the dynamic-graph calls (update/materialize/eval-delta),
// the epoch field on PEval, and the ping/heartbeat call.
//
// Version 3 added deflate frame compression: bit 31 of the length header
// marks a compressed frame whose body is uvarint(rawLen) followed by a
// deflate stream. Only bulk fragment-ship frames (handshake fragments and
// update-batch calls) are compressed; per-round evaluation traffic ships raw
// because on a low-latency link deflate CPU costs more than the bytes save.
//
// Version 4 added the stats call: the coordinator polls each worker process
// for a snapshot of its observability counters, which it re-labels and
// merges into its own /metrics exposition.
//
// Version 5 added fault tolerance and elasticity: the hello frame grew a
// flags byte (bit 0 marks a mid-session join), and four call kinds were
// added — checkpoint/restore snapshot and reinstall in-flight query state at
// superstep boundaries, adopt/release move fragment residency between worker
// processes when a dead worker's ranks are reassigned to survivors or a
// freshly joined worker is rebalanced onto.
const ProtocolVersion = 5

// helloJoin is the hello flags bit a worker sets when it dials into an
// already-running cluster: the coordinator admits it with a fresh process id
// and zero fragments instead of counting it toward the bring-up quorum.
const helloJoin = byte(0x01)

// maxFrame bounds a single frame (a shipped fragment is the largest payload
// in practice). Oversized lengths indicate a corrupt or hostile stream. It
// deliberately leaves bit 31 of the length header free for frameCompressed.
const maxFrame = 1 << 30

// frameCompressed flags a deflate-compressed frame in the length header's
// top bit; the masked-off remainder is the on-wire body length.
const frameCompressed = uint32(1) << 31

// compressThreshold is the body size below which sendCompressed ships raw:
// small frames gain nothing and pay deflate latency on the handshake path.
const compressThreshold = 4 << 10

// Frame types.
const (
	ftHello    = byte(0x01) // worker -> coordinator: protocol version
	ftWelcome  = byte(0x02) // coordinator -> worker: version, m, proc id, assigned ranks
	ftFragGfx  = byte(0x03) // coordinator -> worker: encoded fragmentation graph
	ftFragment = byte(0x04) // coordinator -> worker: rank + encoded fragment
	ftReady    = byte(0x05) // worker -> coordinator: fragments installed
	ftCall     = byte(0x06) // coordinator -> worker: evaluation request
	ftReply    = byte(0x07) // worker -> coordinator: evaluation response
	ftShutdown = byte(0x08) // coordinator -> worker: graceful shutdown
	ftError    = byte(0x09) // either direction during handshake: abort with message
)

// Call kinds carried by ftCall frames. Every call is [ftCall][reqID][kind]
// followed by a kind-specific body; replies share one frame shape
// ([ftReply][reqID][ok][body]) demultiplexed by request id.
//
//	callPEval       [rank][query][superstep][epoch][flags][prog][queryBytes]
//	callIncEval     [rank][query][superstep][envelopes]
//	callFetch       [rank][query]
//	callEnd         [rank][query]
//	callPing        (empty) — heartbeat; the worker replies immediately
//	callUpdate      [epoch][floor][gpBytes][n]{[rank][fragBytes]}...
//	callMaterialize [rank][query]
//	callEvalDelta   [rank][query][superstep][opsBytes][newInBorder ids]
//	callStats       (empty) — the worker replies with obs.EncodeSamples of
//	                its counter registry; answered by the frame loop directly
//	                like ping, so a scrape never queues behind an evaluation
//	callCheckpoint  [rank][query] — the worker replies with the query's
//	                encoded partial state (the coordinator's consistent-cut
//	                snapshot, taken at a superstep barrier)
//	callRestore     [rank][query][epoch][prog][queryBytes][stateBytes] —
//	                reinstall a checkpointed query state under a fresh query
//	                id so the run can resume from the cut's superstep
//	callAdopt       [epoch][gpBytes][n]{[rank][fragBytes]}... — install
//	                fragments this process did not previously host (recovery
//	                reassignment or elastic rebalance)
//	callRelease     [rank] — drop a fragment this process hosts at the
//	                current epoch (its rank moved to another process)
const (
	callPEval       = byte(0x01)
	callIncEval     = byte(0x02)
	callFetch       = byte(0x03)
	callEnd         = byte(0x04)
	callPing        = byte(0x05)
	callUpdate      = byte(0x06)
	callMaterialize = byte(0x07)
	callEvalDelta   = byte(0x08)
	callStats       = byte(0x09)
	callCheckpoint  = byte(0x0a)
	callRestore     = byte(0x0b)
	callAdopt       = byte(0x0c)
	callRelease     = byte(0x0d)
)

// frame is a pooled frame buffer. buf holds a 4-byte length-header
// placeholder followed by the payload; builders append payload bytes
// directly (frame implements io.Writer), and send fills the header and
// issues a single conn.Write — on a TCP_NODELAY connection the old
// header-then-payload Write pair cost one packet per write.
type frame struct{ buf []byte }

var framePool = sync.Pool{New: func() any { return new(frame) }}

// framePoolMaxCap caps the capacity a recycled buffer may retain. A shipped
// fragment can run to hundreds of megabytes; holding that in the pool for
// the lifetime of the process would be a leak in slow motion.
const framePoolMaxCap = 1 << 20

// newFrame returns a pooled frame seeded with the header placeholder.
func newFrame() *frame {
	//lint:ignore poolescape constructor transfers ownership; callers release() after send
	f := framePool.Get().(*frame)
	f.buf = append(f.buf[:0], 0, 0, 0, 0)
	return f
}

// payload returns the frame body (everything after the header placeholder).
func (f *frame) payload() []byte { return f.buf[4:] }

// Write appends to the frame body, making frame usable as a flate.Writer
// destination. It never fails.
func (f *frame) Write(p []byte) (int, error) {
	f.buf = append(f.buf, p...)
	return len(p), nil
}

// seal fills the length header, making the frame wire-ready: its whole buf
// can go out as-is, alone or coalesced with sibling frames in one writev. The
// frame is released (and must not be used) on error.
func (f *frame) seal() error {
	n := len(f.buf) - 4
	if n > maxFrame {
		f.release()
		return fmt.Errorf("net: frame of %d bytes exceeds limit", n)
	}
	binary.LittleEndian.PutUint32(f.buf[:4], uint32(n))
	return nil
}

// send fills the length header, writes the whole frame in one Write, and
// recycles the buffer. The frame must not be used afterwards. Callers
// serialize access to w.
func (f *frame) send(w io.Writer) error {
	if err := f.seal(); err != nil {
		return err
	}
	_, err := w.Write(f.buf)
	if err == nil {
		obsFramesSent.Inc()
		obsNetBytesSent.Add(float64(len(f.buf)))
	}
	f.release()
	return err
}

// sealCompressed is seal with deflate compression for bodies at or above
// compressThreshold: it returns the wire-ready frame — f itself for small or
// incompressible bodies, otherwise a fresh pooled frame holding the deflated
// body with the compressed header bit (f is then released). Incompressible
// bodies (deflate did not shrink them) ship raw, so the flag bit always
// signals a strictly smaller frame. On error the input is released and nil
// returned.
func (f *frame) sealCompressed() (*frame, error) {
	body := f.payload()
	if len(body) < compressThreshold {
		if err := f.seal(); err != nil {
			return nil, err
		}
		return f, nil
	}
	//lint:ignore poolescape cf is returned on success and release()d on every failure path
	cf := framePool.Get().(*frame)
	cf.buf = append(cf.buf[:0], 0, 0, 0, 0)
	cf.buf = binary.AppendUvarint(cf.buf, uint64(len(body)))
	fw := newFlateWriter(cf)
	_, _ = fw.Write(body) // frame.Write cannot fail
	if err := fw.Close(); err != nil {
		flatePool.Put(fw)
		cf.release()
		if err := f.seal(); err != nil {
			return nil, err
		}
		return f, nil
	}
	flatePool.Put(fw)
	n := len(cf.buf) - 4
	if n >= len(body) || n > maxFrame {
		cf.release()
		if err := f.seal(); err != nil {
			return nil, err
		}
		return f, nil
	}
	obsCompressedFrames.Inc()
	obsCompressionSaved.Add(float64(len(body) - n))
	f.release()
	binary.LittleEndian.PutUint32(cf.buf[:4], uint32(n)|frameCompressed)
	return cf, nil
}

// sendCompressed is send via sealCompressed: one Write of the wire-ready
// (possibly deflated) frame. Callers serialize access to w.
func (f *frame) sendCompressed(w io.Writer) error {
	wf, err := f.sealCompressed()
	if err != nil {
		return err
	}
	_, err = w.Write(wf.buf)
	if err == nil {
		obsFramesSent.Inc()
		obsNetBytesSent.Add(float64(len(wf.buf)))
	}
	wf.release()
	return err
}

// release returns the frame's buffer to the pool, dropping oversized ones.
func (f *frame) release() {
	if cap(f.buf) > framePoolMaxCap {
		f.buf = nil
	}
	framePool.Put(f)
}

var flatePool sync.Pool

// newFlateWriter returns a pooled BestSpeed deflate writer reset onto w.
func newFlateWriter(w io.Writer) *flate.Writer {
	//lint:ignore poolescape constructor transfers ownership; callers flatePool.Put after Close
	if v := flatePool.Get(); v != nil {
		fw := v.(*flate.Writer)
		fw.Reset(w)
		return fw
	}
	fw, _ := flate.NewWriter(w, flate.BestSpeed) // BestSpeed is a valid level
	return fw
}

// writeFrame sends one length-prefixed frame from a caller-owned payload.
// The hot paths build into pooled frames and call send directly; this
// remains for tiny control frames and tests. Callers serialize access to w.
func writeFrame(w io.Writer, payload []byte) error {
	f := newFrame()
	f.buf = append(f.buf, payload...)
	return f.send(w)
}

// readFrameP reads one frame into a pooled buffer, transparently inflating
// compressed frames. The returned frame's payload aliases pooled memory:
// the caller must release() it once every parsed value that outlives the
// call has been copied out (the reader helpers for strings, envelopes and
// fragments all copy).
func readFrameP(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	word := binary.LittleEndian.Uint32(hdr[:])
	n := word &^ frameCompressed
	if n > maxFrame {
		return nil, fmt.Errorf("net: frame of %d bytes exceeds limit", n)
	}
	//lint:ignore poolescape the returned frame aliases pooled memory; callers must release() (documented above)
	f := framePool.Get().(*frame)
	f.buf = growFrame(f.buf, 4+int(n))
	if _, err := io.ReadFull(r, f.buf[4:]); err != nil {
		f.release()
		return nil, err
	}
	obsFramesRead.Inc()
	obsNetBytesRead.Add(float64(4 + n))
	if word&frameCompressed == 0 {
		return f, nil
	}
	df, err := inflateFrame(f.payload())
	f.release()
	return df, err
}

// inflateFrame decompresses a compressed frame body (uvarint raw length,
// then a deflate stream) into a fresh pooled frame.
func inflateFrame(body []byte) (*frame, error) {
	rawLen, k := binary.Uvarint(body)
	if k <= 0 || rawLen > maxFrame {
		return nil, fmt.Errorf("net: corrupt compressed frame header")
	}
	// Deflate cannot expand past ~1032:1, so a claimed raw length beyond that
	// multiple of the compressed bytes actually present is hostile or corrupt;
	// reject it before the allocation, not after. Without this, a ~1 KiB frame
	// could demand the full 1 GiB maxFrame allocation.
	const maxDeflateRatio = 1032
	if rawLen > uint64(len(body)-k)*maxDeflateRatio {
		return nil, fmt.Errorf("net: compressed frame claims %d raw bytes from %d compressed", rawLen, len(body)-k)
	}
	//lint:ignore poolescape constructor transfers ownership; the caller releases the inflated frame
	df := framePool.Get().(*frame)
	df.buf = growFrame(df.buf, 4+int(rawLen))
	fr := flate.NewReader(bytes.NewReader(body[k:]))
	_, err := io.ReadFull(fr, df.buf[4:])
	fr.Close()
	if err != nil {
		df.release()
		return nil, fmt.Errorf("net: corrupt compressed frame: %w", err)
	}
	return df, nil
}

// growFrame resizes buf to n bytes, reallocating only when capacity is
// short.
func growFrame(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// readFrame reads one length-prefixed frame into caller-owned memory,
// transparently inflating compressed frames. The handshake paths use it
// (their payloads escape into decoded fragments anyway); both steady-state
// frame loops use readFrameP and recycle.
func readFrame(r io.Reader) ([]byte, error) {
	f, err := readFrameP(r)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), f.payload()...)
	f.release()
	return out, nil
}

// appendString appends a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendBytes appends a length-prefixed byte slice.
func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// appendEnvelopes appends an envelope batch: count, then per envelope the
// zigzag-varint From/To ranks, the tag and the payload (whose bytes are the
// already varint/delta-encoded update batches of the mpi codec — the
// transport does not re-encode them).
func appendEnvelopes(buf []byte, envs []mpi.Envelope) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(envs)))
	for _, e := range envs {
		buf = binary.AppendVarint(buf, int64(e.From))
		buf = binary.AppendVarint(buf, int64(e.To))
		buf = appendString(buf, e.Tag)
		buf = appendBytes(buf, e.Payload)
	}
	return buf
}

// appendVertexIDs appends a vertex-ID list: count, then zigzag-varint deltas
// against the previous ID (the lists the engine ships — NewInBorder sets —
// are ascending, so deltas stay small).
func appendVertexIDs(buf []byte, ids []graph.VertexID) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prev := int64(0)
	for _, v := range ids {
		buf = binary.AppendVarint(buf, int64(v)-prev)
		prev = int64(v)
	}
	return buf
}

// reader is a sticky-error cursor over a frame payload.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("net: truncated or malformed %s at offset %d", what, r.off)
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail("byte")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// count reads a length prefix bounded by the remaining bytes.
func (r *reader) count() int {
	v := r.uvarint()
	if r.err == nil && v > uint64(len(r.buf)-r.off)+1 {
		r.fail("length")
		return 0
	}
	return int(v)
}

func (r *reader) bytes() []byte {
	n := r.count()
	if r.err != nil || r.off+n > len(r.buf) {
		r.fail("bytes")
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

func (r *reader) str() string { return string(r.bytes()) }

// rest returns the unread remainder of the frame.
func (r *reader) rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.buf[r.off:]
	r.off = len(r.buf)
	return b
}

func (r *reader) vertexIDs() []graph.VertexID {
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]graph.VertexID, 0, n)
	prev := int64(0)
	for i := 0; i < n && r.err == nil; i++ {
		prev += r.varint()
		out = append(out, graph.VertexID(prev))
	}
	if r.err != nil {
		return nil
	}
	return out
}

func (r *reader) envelopes() []mpi.Envelope {
	n := r.count()
	if r.err != nil {
		return nil
	}
	envs := make([]mpi.Envelope, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		var e mpi.Envelope
		e.From = int(r.varint())
		e.To = int(r.varint())
		e.Tag = r.str()
		e.Payload = append([]byte(nil), r.bytes()...)
		envs = append(envs, e)
	}
	if r.err != nil {
		return nil
	}
	return envs
}
