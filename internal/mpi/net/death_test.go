package net

// Worker-death regression tests: a worker process that dies mid-query must
// surface as a prompt query error naming the dead process and its fragment
// ranks — never as a coordinator blocked forever on the reply
// demultiplexer. Two death modes are covered: a brutal one (the TCP
// connection drops, as on a crash or kill on the same host) and a silent one
// (the process stops responding while the connection stays open, as on a
// SIGSTOP, a hard hang, or a half-open connection after a network
// partition), which only the heartbeat prober can detect.

import (
	"encoding/binary"
	"errors"
	stdnet "net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grape/internal/partition"
)

// fakeWorker speaks just enough of the worker protocol to join a cluster and
// then misbehave on command: it completes the handshake, answers heartbeat
// pings while "alive", and silently drops every evaluation call (a worker
// that accepted a query and then hung). Kill stops the ping replies too,
// simulating a process that vanished without closing its socket; Crash drops
// the connection outright.
type fakeWorker struct {
	t    *testing.T
	conn stdnet.Conn
	dead atomic.Bool
	wmu  sync.Mutex
	done chan struct{}
}

func dialFakeWorker(t *testing.T, addr string) *fakeWorker {
	t.Helper()
	fw, _ := dialFake(t, addr, false)
	return fw
}

// dialFakeJoiner dials an elastic cluster with the join flag set and asserts
// the mid-session handshake shape: a welcome carrying a fresh process id and
// zero fragment ranks, followed by the current fragmentation graph.
func dialFakeJoiner(t *testing.T, addr string) (*fakeWorker, int) {
	t.Helper()
	fw, proc := dialFake(t, addr, true)
	return fw, proc
}

func dialFake(t *testing.T, addr string, join bool) (*fakeWorker, int) {
	t.Helper()
	conn, err := stdnet.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("fake worker dial: %v", err)
	}
	fw := &fakeWorker{t: t, conn: conn, done: make(chan struct{})}

	hello := []byte{ftHello}
	hello = binary.AppendUvarint(hello, ProtocolVersion)
	if join {
		hello = append(hello, helloJoin)
	}
	if err := writeFrame(conn, hello); err != nil {
		t.Fatalf("fake worker hello: %v", err)
	}
	welcome, err := readFrame(conn)
	if err != nil {
		t.Fatalf("fake worker welcome: %v", err)
	}
	r := &reader{buf: welcome}
	if ft := r.u8(); ft != ftWelcome {
		t.Fatalf("fake worker expected welcome, got 0x%02x", ft)
	}
	r.uvarint() // version
	r.uvarint() // m
	proc := int(r.uvarint())
	nRanks := int(r.uvarint())
	if join && nRanks != 0 {
		t.Errorf("joiner was welcomed with %d fragment ranks, want 0", nRanks)
	}
	if _, err := readFrame(conn); err != nil { // fragmentation graph
		t.Fatalf("fake worker gp: %v", err)
	}
	for i := 0; i < nRanks; i++ {
		if _, err := readFrame(conn); err != nil {
			t.Fatalf("fake worker fragment %d: %v", i, err)
		}
	}
	if err := writeFrame(conn, []byte{ftReady}); err != nil {
		t.Fatalf("fake worker ready: %v", err)
	}

	go fw.loop()
	return fw, proc
}

func (fw *fakeWorker) loop() {
	defer close(fw.done)
	for {
		payload, err := readFrame(fw.conn)
		if err != nil {
			return
		}
		r := &reader{buf: payload}
		switch ft := r.u8(); ft {
		case ftShutdown:
			return
		case ftCall:
			reqID := r.uvarint()
			kind := r.u8()
			// While alive, answer the cheap bookkeeping calls (pings, Ends,
			// fragment adoptions and releases); swallow every evaluation
			// call — the worker accepted the query and then hung.
			ack := kind == callPing || kind == callEnd ||
				kind == callAdopt || kind == callRelease
			if ack && !fw.dead.Load() {
				out := []byte{ftReply}
				out = binary.AppendUvarint(out, reqID)
				out = append(out, 1)
				fw.wmu.Lock()
				_ = writeFrame(fw.conn, out)
				fw.wmu.Unlock()
			}
		}
	}
}

// kill makes the fake worker stop answering pings while keeping its socket
// open — the silent-death mode.
func (fw *fakeWorker) kill() { fw.dead.Store(true) }

// crash drops the connection outright.
func (fw *fakeWorker) crash() { fw.conn.Close() }

// serveFake brings up a 1-process cluster backed by a fakeWorker. Serve runs
// in a goroutine so the fake's handshake (and its test assertions) stay on
// the test goroutine.
func serveFake(t *testing.T, heartbeat time.Duration) (*Cluster, *fakeWorker) {
	t.Helper()
	p := testPartition(t)
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	l.Heartbeat = heartbeat
	type serveRes struct {
		cl  *Cluster
		err error
	}
	ch := make(chan serveRes, 1)
	go func() {
		cl, err := l.Serve(p, 1, 10*time.Second)
		ch <- serveRes{cl, err}
	}()
	fw := dialFakeWorker(t, l.Addr())
	res := <-ch
	if res.err != nil {
		t.Fatalf("Serve: %v", res.err)
	}
	return res.cl, fw
}

// awaitCallError asserts that a blocked call returns an error (within
// timeout) whose message names the dead worker process, and that the error is
// a typed *WorkerLostError matchable via errors.As carrying the process id
// and the lost fragment ranks.
func awaitCallError(t *testing.T, done <-chan error, timeout time.Duration, context string) {
	t.Helper()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("%s: call to a dead worker succeeded", context)
		}
		if !strings.Contains(err.Error(), "worker process 0") {
			t.Fatalf("%s: error does not name the dead worker process: %v", context, err)
		}
		if !strings.Contains(err.Error(), "fragments [0 1]") {
			t.Fatalf("%s: error does not name the lost fragment ranks: %v", context, err)
		}
		var lost *WorkerLostError
		if !errors.As(err, &lost) {
			t.Fatalf("%s: error is not an *WorkerLostError: %v", context, err)
		}
		if lost.Proc != 0 {
			t.Fatalf("%s: WorkerLostError.Proc = %d, want 0", context, lost.Proc)
		}
		if !reflect.DeepEqual(lost.Fragments, []int{0, 1}) {
			t.Fatalf("%s: WorkerLostError.Fragments = %v, want [0 1]", context, lost.Fragments)
		}
	case <-time.After(timeout):
		t.Fatalf("%s: coordinator still blocked on the reply demultiplexer", context)
	}
}

// TestWorkerSilentDeathFailsQuery: a worker that stops responding without
// closing its connection (half-open link, SIGSTOP, hard hang) must fail the
// in-flight query via the heartbeat prober — before this existed, the
// coordinator blocked forever.
func TestWorkerSilentDeathFailsQuery(t *testing.T) {
	cl, fw := serveFake(t, 25*time.Millisecond)
	defer cl.Close()

	done := make(chan error, 1)
	go func() {
		_, err := cl.Peer(0).PEval(1, 0, "SSSP", nil, 1, false, false)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the call land and pings flow
	fw.kill()
	awaitCallError(t, done, 10*time.Second, "silent death")

	// The poisoned connection fails later calls immediately.
	start := time.Now()
	if err := cl.Peer(1).End(1); err == nil {
		t.Fatalf("End on a dead worker succeeded")
	}
	if time.Since(start) > time.Second {
		t.Fatalf("post-death call did not fail fast")
	}
}

// TestWorkerCrashFailsQuery: a worker whose connection drops mid-query fails
// the pending call promptly with an error naming the process, and the
// connection stays poisoned.
func TestWorkerCrashFailsQuery(t *testing.T) {
	cl, fw := serveFake(t, -1) // heartbeats off: the close itself must do it
	defer cl.Close()

	done := make(chan error, 1)
	go func() {
		_, err := cl.Peer(1).IncEval(3, 2, nil)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	fw.crash()
	awaitCallError(t, done, 10*time.Second, "crash")

	if _, err := cl.Peer(0).Fetch(3); err == nil {
		t.Fatalf("Fetch on a crashed worker succeeded")
	}
}

// TestHeartbeatKeepsHealthyClusterAlive: the prober must not poison a
// cluster whose workers answer pings, even across many intervals.
func TestHeartbeatKeepsHealthyClusterAlive(t *testing.T) {
	cl, fw := serveFake(t, 20*time.Millisecond)
	defer cl.Close()
	time.Sleep(300 * time.Millisecond) // ~15 heartbeat intervals
	if err := cl.Peer(0).End(99); err != nil {
		t.Fatalf("healthy cluster poisoned by its own heartbeat: %v", err)
	}
	select {
	case <-fw.done:
		t.Fatalf("fake worker loop exited on a healthy cluster")
	default:
	}
}

// TestElasticJoinReassignsOntoJoiner covers the elastic-membership protocol
// end to end at the wire level: a fresh process dials a running cluster with
// the join flag and is admitted with zero ranks, a flagless dialer is refused
// with an explicit error, and after the founding worker crashes both of its
// fragment ranks are reported lost and Reassign ships them onto the joiner —
// after which evaluation calls route there.
func TestElasticJoinReassignsOntoJoiner(t *testing.T) {
	p := testPartition(t)
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	l.Elastic = true
	type serveRes struct {
		cl  *Cluster
		err error
	}
	ch := make(chan serveRes, 1)
	go func() {
		cl, err := l.Serve(p, 1, 10*time.Second)
		ch <- serveRes{cl, err}
	}()
	fw := dialFakeWorker(t, l.Addr())
	res := <-ch
	if res.err != nil {
		t.Fatalf("Serve: %v", res.err)
	}
	cl := res.cl
	defer cl.Close()

	joined := make(chan struct{})
	cl.SetJoinHandler(func() { close(joined) })

	// A mid-session dialer without the join flag must be refused with an
	// explicit error frame, not a hang or a silent close.
	refused, err := stdnet.DialTimeout("tcp", l.Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("flagless dial: %v", err)
	}
	hello := []byte{ftHello}
	hello = binary.AppendUvarint(hello, ProtocolVersion)
	if err := writeFrame(refused, hello); err != nil {
		t.Fatalf("flagless hello: %v", err)
	}
	reply, err := readFrame(refused)
	if err != nil {
		t.Fatalf("flagless dialer got no reply: %v", err)
	}
	if len(reply) == 0 || reply[0] != ftError || !strings.Contains(string(reply[1:]), "join flag") {
		t.Fatalf("flagless dialer not refused with an error frame: 0x%02x %q", reply[0], reply[1:])
	}
	refused.Close()

	joiner, proc := dialFakeJoiner(t, l.Addr())
	defer joiner.crash()
	if proc != 1 {
		t.Fatalf("joiner was assigned process id %d, want 1", proc)
	}
	select {
	case <-joined:
	case <-time.After(5 * time.Second):
		t.Fatalf("join handler never fired")
	}
	if got := cl.Procs(); got != 2 {
		t.Fatalf("Procs() = %d after a join, want 2", got)
	}

	// The founding worker crashes: both of its fragment ranks lose their
	// host, and a reassignment ships them onto the joiner.
	fw.crash()
	deadline := time.Now().Add(5 * time.Second)
	for len(cl.LostFragments()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("lost fragments never reported after the crash: %v", cl.LostFragments())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if lost := cl.LostFragments(); !reflect.DeepEqual(lost, []int{0, 1}) {
		t.Fatalf("LostFragments() = %v, want [0 1]", lost)
	}
	if err := cl.Reassign(2, p.GP, []*partition.Fragment{p.Fragments[0], p.Fragments[1]}); err != nil {
		t.Fatalf("Reassign onto the joiner: %v", err)
	}
	if got := cl.LostFragments(); len(got) != 0 {
		t.Fatalf("LostFragments() = %v after reassignment, want none", got)
	}
	// Calls for both ranks now route to the joiner.
	for rank := 0; rank < 2; rank++ {
		if err := cl.Peer(rank).End(7); err != nil {
			t.Fatalf("call to reassigned fragment %d: %v", rank, err)
		}
	}
}

// TestServeFewerWorkersThanProcs: when not enough workers connect before the
// handshake timeout, Serve must fail AND close the connections of the
// workers that did connect — a leaked half-handshaken socket would leave
// its worker blocked on a read until the worker's own timeout. The
// connected worker here must observe the teardown promptly.
func TestServeFewerWorkersThanProcs(t *testing.T) {
	p := testPartition(t)
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	connErr := make(chan error, 1)
	go func() {
		conn, err := stdnet.DialTimeout("tcp", l.Addr(), 5*time.Second)
		if err != nil {
			connErr <- err
			return
		}
		hello := []byte{ftHello}
		hello = binary.AppendUvarint(hello, ProtocolVersion)
		if err := writeFrame(conn, hello); err != nil {
			connErr <- err
			return
		}
		// Wait for the welcome that never comes: Serve times out waiting for
		// the second worker. The read must fail because Serve closed the
		// connection, not because this side timed out.
		_, err = readFrame(conn)
		connErr <- err
	}()

	start := time.Now()
	_, err = l.Serve(p, 2, 400*time.Millisecond)
	if err == nil {
		t.Fatalf("Serve succeeded with 1 of 2 workers")
	}
	if !strings.Contains(err.Error(), "waiting for worker 2 of 2") {
		t.Fatalf("Serve error does not say which worker it was waiting for: %v", err)
	}
	select {
	case werr := <-connErr:
		if werr == nil {
			t.Fatalf("connected worker read a frame from an aborted bring-up")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Serve leaked the already-accepted connection: worker still blocked %v after the timeout", time.Since(start))
	}
}

// TestServeHandshakeFailureClosesPeers: one malformed client must abort the
// whole bring-up promptly, including the sibling connection whose handshake
// was healthy — no socket may stay open for a cluster that cannot form.
func TestServeHandshakeFailureClosesPeers(t *testing.T) {
	p := testPartition(t)
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}

	// A healthy-looking client that completes nothing: it sends its hello
	// and then waits. Its conn must be closed when the sibling fails.
	healthyErr := make(chan error, 1)
	go func() {
		conn, err := stdnet.DialTimeout("tcp", l.Addr(), 5*time.Second)
		if err != nil {
			healthyErr <- err
			return
		}
		hello := []byte{ftHello}
		hello = binary.AppendUvarint(hello, ProtocolVersion)
		if err := writeFrame(conn, hello); err != nil {
			healthyErr <- err
			return
		}
		for {
			if _, err := readFrame(conn); err != nil {
				healthyErr <- err
				return
			}
		}
	}()
	// A malformed client: its first frame is not a hello.
	go func() {
		conn, err := stdnet.DialTimeout("tcp", l.Addr(), 5*time.Second)
		if err != nil {
			return
		}
		_ = writeFrame(conn, []byte{ftReply, 0x00})
	}()

	if _, err := l.Serve(p, 2, 5*time.Second); err == nil {
		t.Fatalf("Serve accepted a cluster with a malformed worker")
	}
	select {
	case <-healthyErr:
		// The healthy client's conn was closed: no leak.
	case <-time.After(5 * time.Second):
		t.Fatalf("sibling connection leaked after a handshake failure")
	}
}
