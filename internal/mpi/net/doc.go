// Package net is the multi-process transport of the GRAPE reproduction: it
// runs a session's fragments in separate worker processes connected to the
// coordinator over length-prefixed TCP streams, standing in for the MPI
// deployment of the paper's implementation (Section 6) the way internal/mpi
// stands in for its in-process controller.
//
// # Topology
//
// The cluster is a star: each worker process dials the coordinator once
// (with exponential-backoff retry, so process launch order does not matter)
// and every frame — handshake, fragment shipment, evaluation calls, routed
// envelopes, shutdown — travels over that one connection, multiplexed by
// request id. The coordinator partitions the graph, deals fragment ranks to
// processes round-robin, ships each fragment plus the fragmentation graph
// GP (internal/partition's wire codec), and keeps the query-scoped
// mailboxes, barriers and compute slots local: the returned Cluster embeds
// an in-process mpi.Cluster and therefore satisfies mpi.Transport, so both
// execution planes of the engine (BSP and adaptive asynchronous) run over
// it unchanged. Worker-to-worker designated messages relay through the
// coordinator with their original sender rank, which keeps the metering and
// the termination conditions (no pending messages; idle consensus with
// sent == received) exactly as in-process runs have them.
//
// # Protocol
//
// Every frame is a little-endian uint32 header word followed by a payload
// whose first byte is the frame type. The header's low 31 bits are the body
// length; bit 31 is the compression flag. When the flag is set the body is a
// uvarint giving the uncompressed length followed by a DEFLATE stream
// (compress/flate, stdlib only), and the reader inflates transparently —
// compression is a transport detail no layer above the framer can observe.
// Writers compress only bodies past a threshold (fragment shipments and fat
// update deltas, in practice), since deflating small call frames costs more
// CPU than the loopback bytes it saves. The handshake is hello (protocol version) →
// welcome (version, cluster size m, process id, assigned ranks) → GP frame →
// one fragment frame per assigned rank → ready. Version mismatches abort
// with an explicit error frame on whichever side detects them. After the
// handshake the coordinator sends call frames — each tagged with a request
// id and a call kind — and the worker answers with reply frames
// demultiplexed by the id. The query-evaluation kinds (PEval / IncEval /
// Fetch / End) carry the fragment rank, query id and superstep and reply
// with the routed envelopes (or the encoded partial result for Fetch);
// envelope payloads reuse the varint/delta update codec of internal/mpi
// unchanged. A shutdown frame ends the worker process gracefully.
//
// # Buffer reuse and combining
//
// Outgoing frames are built in pooled buffers and written with a single Write
// (header and body in one buffer), so steady-state calls allocate nothing on
// the send path. Both read loops use pooled buffers too: the worker's call
// bodies are fully consumed before the next read, and the coordinator's
// reply demultiplexer hands each pooled frame to the awaiting call, which
// parses the body in place (copying only what escapes, like Fetch results)
// and recycles it — the grape_net_reply_bytes_pooled_total /
// _copied_total counters meter the split. Routed update envelopes may arrive
// combined: when message combining is enabled (see mpi.EnableCombining) the
// coordinator folds the per-destination batches of several senders into one
// envelope under the program's own aggregation before the frame is written,
// so a worker must not assume one incoming envelope per peer per superstep.
// The combined envelope carries the rank of one of the folded senders; the
// engine's delivery path never reads From for update envelopes, only the
// metering does.
//
// # Dynamic graphs
//
// Three call kinds make distributed sessions dynamic. An update call ships
// one ApplyUpdates batch's delta to a worker process: the new fragmentation
// graph plus the rebuilt fragments among the process's ranks (encoded with
// the internal/partition fragment codec — untouched fragments are not
// re-shipped), tagged with the new epoch number and the oldest epoch any
// in-flight query still reads. Workers install the delta as a new residency
// epoch; PEval names the epoch its query evaluates against, which is what
// keeps snapshot consistency across processes. A materialize call pins a
// converged query's per-fragment state as view state, and an eval-delta
// call seeds one view-maintenance round on it (the batch's ops — the
// graph-update codec of internal/mpi — plus the newly mirrored border
// vertices), replying with the absorbed flag and the routed envelopes; the
// maintenance fixpoint then iterates through ordinary IncEval calls.
//
// # Fault tolerance and elastic membership (protocol version 5)
//
// Version 5 adds an optional flags byte to the hello frame and four call
// kinds that let a cluster survive worker deaths and grow mid-session.
//
// A checkpoint call (rank, query id) asks the worker to encode the named
// query's per-fragment evaluation state with the program's wire codec; the
// coordinator captures one such snapshot per fragment at superstep
// boundaries to form a consistent cut. Its inverse, a restore call (rank,
// query id, epoch, program name, encoded query, encoded state), re-creates
// the query's state on whichever process hosts the rank now, so a restarted
// run resumes from the cut instead of from PEval.
//
// An adopt call re-homes fragments: it carries the residency epoch, the
// fragmentation graph and a batch of (rank, encoded fragment) pairs, shipped
// compressed from the coordinator's resident replica. The receiving process
// installs them and serves all later calls for those ranks; the rank's peer
// is rebound coordinator-side so routing follows. A release call (rank)
// tells a still-live former host to drop its copy after a rebalance. Both
// recovery (a dead process's ranks move to survivors) and elasticity (ranks
// move onto a joiner) are exactly these two calls.
//
// A worker that dials an already running elastic cluster sets the join flag
// in its hello; the handshake then carries a fresh process id and zero
// ranks, and only the GP frame follows before ready — fragments arrive later
// through adopt calls when the engine rebalances. A mid-session dialer
// without the flag is refused with an explicit error frame. Dead processes
// whose last rank was adopted elsewhere are retired: update fan-outs, stats
// scrapes and heartbeats skip them from then on.
//
// # Liveness
//
// A lost connection poisons all in-flight calls with a typed
// *WorkerLostError — matchable via errors.As, carrying the dead process id
// and its fragment ranks, and still naming both in its message — instead of
// hanging them. For
// deaths the OS never reports (half-open connections after a partition, a
// hung process), the coordinator heartbeats every worker with ping calls —
// answered by the worker's frame loop directly, never queued behind an
// evaluation — and poisons the connection after a configurable number of
// silent intervals (Listener.Heartbeat).
//
// # Observability
//
// The package meters itself into internal/obs: frame and byte counters plus
// compression savings on the wire paths, heartbeat round-trip histograms and
// connection-error counters per worker process on the coordinator side. Each
// worker process additionally keeps per-connection call counters in the
// registry passed via WorkerOptions.Metrics; the coordinator polls them with
// a stats call (answered by the worker's frame loop directly, like ping) and
// Cluster.WorkerSamples re-labels each sample with the process id, which is
// how a coordinator /metrics scrape shows whole-cluster truth.
//
// ProtocolVersion gates compatibility end to end: bump it whenever frame
// layouts, the fragment codec or call semantics change, and mixed-version
// clusters fail fast at handshake time instead of corrupting queries.
package net
