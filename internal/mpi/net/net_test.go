package net_test

import (
	"math/rand"
	stdnet "net"
	"reflect"
	"sync"
	"testing"
	"time"

	"grape/internal/core"
	"grape/internal/graph"
	grapenet "grape/internal/mpi/net"
	"grape/internal/partition"
	"grape/internal/pie"
)

func randomGraph(t *testing.T, n, extra int, seed int64) *graph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(false)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%n), 1+r.Float64()*3, "")
	}
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0.5+r.Float64()*5, "")
		}
	}
	return b.Build()
}

// startWorkers launches procs worker loops (full dial/handshake/serve path
// over real TCP) against addr and returns a wait function asserting clean
// exits.
func startWorkers(t *testing.T, addr string, procs int) func() {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			host := core.NewWorkerHost(pie.ByName)
			errs[i] = grapenet.RunWorker(addr, host, grapenet.WorkerOptions{DialTimeout: 10 * time.Second})
		}(i)
	}
	return func() {
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}
	}
}

// TestEngineOverTCP runs SSSP and CC through core sessions whose fragments
// live behind the TCP transport, on both planes, and compares against local
// evaluation.
func TestEngineOverTCP(t *testing.T) {
	const m, procs = 5, 3
	g := randomGraph(t, 150, 250, 11)
	p := partition.Partition(g, m, partition.Hash{})

	localS, err := core.NewSessionPartitioned(p, core.Options{})
	if err != nil {
		t.Fatalf("local session: %v", err)
	}
	defer localS.Close()
	wantSSSP, err := localS.Run(graph.VertexID(3), pie.SSSP{})
	if err != nil {
		t.Fatalf("local SSSP: %v", err)
	}
	wantCC, err := localS.Run(nil, pie.CC{})
	if err != nil {
		t.Fatalf("local CC: %v", err)
	}

	ln, err := grapenet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	waitWorkers := startWorkers(t, ln.Addr(), procs)
	cl, err := ln.Serve(p, procs, 10*time.Second)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if cl.Procs() != procs || cl.NumWorkers() != m {
		t.Fatalf("cluster reports %d procs / %d workers, want %d / %d", cl.Procs(), cl.NumWorkers(), procs, m)
	}
	peers := make([]core.RemotePeer, m)
	for i := range peers {
		peers[i] = cl.Peer(i)
	}
	s, err := core.NewSessionRemote(p, core.Options{}, cl, peers)
	if err != nil {
		t.Fatalf("NewSessionRemote: %v", err)
	}
	defer waitWorkers()
	defer s.Close()
	if !s.Distributed() {
		t.Fatalf("remote session does not report Distributed")
	}

	for _, mode := range []core.ExecMode{core.ModeBSP, core.ModeAsync} {
		res, err := s.RunMode(graph.VertexID(3), pie.SSSP{}, mode)
		if err != nil {
			t.Fatalf("%v SSSP over TCP: %v", mode, err)
		}
		if !reflect.DeepEqual(res.Output, wantSSSP.Output) {
			t.Fatalf("%v SSSP over TCP differs from local answer", mode)
		}
		if res.Stats.MessagesSent == 0 {
			t.Fatalf("%v SSSP over TCP exchanged no messages", mode)
		}
		res, err = s.RunMode(nil, pie.CC{}, mode)
		if err != nil {
			t.Fatalf("%v CC over TCP: %v", mode, err)
		}
		if !reflect.DeepEqual(res.Output, wantCC.Output) {
			t.Fatalf("%v CC over TCP differs from local answer", mode)
		}
	}

	// Concurrent queries over the same TCP cluster (distinct query ids
	// multiplexed over the same connections).
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Run(graph.VertexID(i), pie.SSSP{})
			if err != nil {
				errCh <- err
				return
			}
			if len(res.Output.(map[graph.VertexID]float64)) != g.NumVertices() {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent query over TCP: %v", err)
	}
}

// TestWorkerDialBackoff starts the worker before anything listens on the
// coordinator port: the dial retry loop must carry it into the handshake
// once the coordinator appears.
func TestWorkerDialBackoff(t *testing.T) {
	// Reserve a port, then release it so the worker's first dials fail.
	probe, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	addr := probe.Addr().String()
	probe.Close()

	waitWorkers := startWorkers(t, addr, 1)
	time.Sleep(300 * time.Millisecond) // let a few dial attempts fail

	g := randomGraph(t, 40, 40, 2)
	p := partition.Partition(g, 2, partition.Hash{})
	ln, err := grapenet.Listen(addr)
	if err != nil {
		t.Fatalf("Listen(%s): %v", addr, err)
	}
	cl, err := ln.Serve(p, 1, 10*time.Second)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	peers := []core.RemotePeer{cl.Peer(0), cl.Peer(1)}
	s, err := core.NewSessionRemote(p, core.Options{}, cl, peers)
	if err != nil {
		t.Fatalf("NewSessionRemote: %v", err)
	}
	res, err := s.Run(graph.VertexID(0), pie.SSSP{})
	if err != nil {
		t.Fatalf("SSSP after backoff: %v", err)
	}
	if len(res.Output.(map[graph.VertexID]float64)) != g.NumVertices() {
		t.Fatalf("incomplete SSSP answer after backoff")
	}
	s.Close()
	waitWorkers()
}

// TestGracefulShutdown: closing the session sends the shutdown frame and
// every worker loop returns nil (asserted by startWorkers' waiter); double
// Close stays idempotent.
func TestGracefulShutdown(t *testing.T) {
	g := randomGraph(t, 30, 20, 9)
	p := partition.Partition(g, 2, partition.Hash{})
	ln, err := grapenet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	waitWorkers := startWorkers(t, ln.Addr(), 2)
	cl, err := ln.Serve(p, 2, 10*time.Second)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	s, err := core.NewSessionRemote(p, core.Options{}, cl, []core.RemotePeer{cl.Peer(0), cl.Peer(1)})
	if err != nil {
		t.Fatalf("NewSessionRemote: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	waitWorkers()
}

// TestLocalOnlyProgramRejected: a program without wire codecs fails fast at
// the coordinator, before any call crosses the wire.
func TestLocalOnlyProgramRejected(t *testing.T) {
	g := randomGraph(t, 30, 20, 4)
	p := partition.Partition(g, 2, partition.Hash{})
	ln, err := grapenet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	waitWorkers := startWorkers(t, ln.Addr(), 2)
	cl, err := ln.Serve(p, 2, 10*time.Second)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	s, err := core.NewSessionRemote(p, core.Options{}, cl, []core.RemotePeer{cl.Peer(0), cl.Peer(1)})
	if err != nil {
		t.Fatalf("NewSessionRemote: %v", err)
	}
	defer waitWorkers()
	defer s.Close()

	pb := graph.NewBuilder(true)
	pb.AddEdge(1, 2, 1, "")
	if _, err := s.Run(pb.Build(), pie.Sim{}); err == nil {
		t.Fatalf("Sim accepted on a distributed session")
	}
}
