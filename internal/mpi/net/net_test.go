package net_test

import (
	"math/rand"
	stdnet "net"
	"reflect"
	"sync"
	"testing"
	"time"

	"grape/internal/core"
	"grape/internal/graph"
	grapenet "grape/internal/mpi/net"
	"grape/internal/partition"
	"grape/internal/pie"
)

func randomGraph(t *testing.T, n, extra int, seed int64) *graph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(false)
	for v := 0; v < n; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%n), 1+r.Float64()*3, "")
	}
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0.5+r.Float64()*5, "")
		}
	}
	return b.Build()
}

// startWorkers launches procs worker loops (full dial/handshake/serve path
// over real TCP) against addr and returns a wait function asserting clean
// exits.
func startWorkers(t *testing.T, addr string, procs int) func() {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			host := core.NewWorkerHost(pie.ByName)
			errs[i] = grapenet.RunWorker(addr, host, grapenet.WorkerOptions{DialTimeout: 10 * time.Second})
		}(i)
	}
	return func() {
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}
	}
}

// TestEngineOverTCP runs SSSP and CC through core sessions whose fragments
// live behind the TCP transport, on both planes, and compares against local
// evaluation.
func TestEngineOverTCP(t *testing.T) {
	const m, procs = 5, 3
	g := randomGraph(t, 150, 250, 11)
	p := partition.Partition(g, m, partition.Hash{})

	localS, err := core.NewSessionPartitioned(p, core.Options{})
	if err != nil {
		t.Fatalf("local session: %v", err)
	}
	defer localS.Close()
	wantSSSP, err := localS.Run(graph.VertexID(3), pie.SSSP{})
	if err != nil {
		t.Fatalf("local SSSP: %v", err)
	}
	wantCC, err := localS.Run(nil, pie.CC{})
	if err != nil {
		t.Fatalf("local CC: %v", err)
	}

	ln, err := grapenet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	waitWorkers := startWorkers(t, ln.Addr(), procs)
	cl, err := ln.Serve(p, procs, 10*time.Second)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if cl.Procs() != procs || cl.NumWorkers() != m {
		t.Fatalf("cluster reports %d procs / %d workers, want %d / %d", cl.Procs(), cl.NumWorkers(), procs, m)
	}
	peers := make([]core.RemotePeer, m)
	for i := range peers {
		peers[i] = cl.Peer(i)
	}
	s, err := core.NewSessionRemote(p, core.Options{}, cl, peers)
	if err != nil {
		t.Fatalf("NewSessionRemote: %v", err)
	}
	defer waitWorkers()
	defer s.Close()
	if !s.Distributed() {
		t.Fatalf("remote session does not report Distributed")
	}

	for _, mode := range []core.ExecMode{core.ModeBSP, core.ModeAsync} {
		res, err := s.RunMode(graph.VertexID(3), pie.SSSP{}, mode)
		if err != nil {
			t.Fatalf("%v SSSP over TCP: %v", mode, err)
		}
		if !reflect.DeepEqual(res.Output, wantSSSP.Output) {
			t.Fatalf("%v SSSP over TCP differs from local answer", mode)
		}
		if res.Stats.MessagesSent == 0 {
			t.Fatalf("%v SSSP over TCP exchanged no messages", mode)
		}
		res, err = s.RunMode(nil, pie.CC{}, mode)
		if err != nil {
			t.Fatalf("%v CC over TCP: %v", mode, err)
		}
		if !reflect.DeepEqual(res.Output, wantCC.Output) {
			t.Fatalf("%v CC over TCP differs from local answer", mode)
		}
	}

	// Concurrent queries over the same TCP cluster (distinct query ids
	// multiplexed over the same connections).
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Run(graph.VertexID(i), pie.SSSP{})
			if err != nil {
				errCh <- err
				return
			}
			if len(res.Output.(map[graph.VertexID]float64)) != g.NumVertices() {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent query over TCP: %v", err)
	}
}

// TestDynamicOverTCP drives the update plane end to end at the transport
// layer: a remote session absorbs update batches (fragment deltas shipped as
// epochs) while materialized SSSP and CC views are maintained on the worker
// side, and every answer is compared against an in-process session absorbing
// the same stream.
func TestDynamicOverTCP(t *testing.T) {
	const m, procs = 4, 2
	g := randomGraph(t, 80, 120, 31)
	p := partition.Partition(g, m, partition.Hash{})

	localS, err := core.NewSessionPartitioned(p, core.Options{})
	if err != nil {
		t.Fatalf("local session: %v", err)
	}
	defer localS.Close()

	ln, err := grapenet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	waitWorkers := startWorkers(t, ln.Addr(), procs)
	cl, err := ln.Serve(p, procs, 10*time.Second)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	peers := make([]core.RemotePeer, m)
	for i := range peers {
		peers[i] = cl.Peer(i)
	}
	s, err := core.NewSessionRemote(p, core.Options{}, cl, peers)
	if err != nil {
		t.Fatalf("NewSessionRemote: %v", err)
	}
	defer waitWorkers()
	defer s.Close()

	wantView, err := localS.Materialize(graph.VertexID(0), pie.SSSP{})
	if err != nil {
		t.Fatalf("local Materialize: %v", err)
	}
	gotView, err := s.Materialize(graph.VertexID(0), pie.SSSP{})
	if err != nil {
		t.Fatalf("remote Materialize: %v", err)
	}

	batches := [][]graph.Update{
		{graph.AddEdgeUpdate(0, 55, 0.25, ""), graph.AddEdgeUpdate(55, 70, 0.25, "")}, // incremental
		{graph.AddVertexUpdate(200, "new"), graph.AddEdgeUpdate(200, 3, 1, "")},       // new vertex
		{graph.RemoveEdgeUpdate(0, 55)},                                               // forces recompute
		{graph.ReweightEdgeUpdate(55, 70, 0.125)},                                     // decrease: incremental
	}
	for i, batch := range batches {
		if _, err := localS.ApplyUpdates(batch); err != nil {
			t.Fatalf("local batch %d: %v", i, err)
		}
		st, err := s.ApplyUpdates(batch)
		if err != nil {
			t.Fatalf("remote batch %d: %v", i, err)
		}
		if st.Epoch != int64(i+1) {
			t.Fatalf("remote batch %d installed epoch %d", i, st.Epoch)
		}
		want, err := wantView.Result()
		if err != nil {
			t.Fatalf("local view after batch %d: %v", i, err)
		}
		got, err := gotView.Result()
		if err != nil {
			t.Fatalf("remote view after batch %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("remote view differs from local after batch %d", i)
		}
	}
	vs := gotView.Stats()
	if vs.Incremental == 0 || vs.Recomputed == 0 {
		t.Fatalf("remote maintenance did not exercise both paths: %+v", vs)
	}

	// Fresh queries over the updated epoch, both planes, match local ones.
	for _, mode := range []core.ExecMode{core.ModeBSP, core.ModeAsync} {
		want, err := localS.RunMode(graph.VertexID(0), pie.SSSP{}, mode)
		if err != nil {
			t.Fatalf("local post-update SSSP: %v", err)
		}
		got, err := s.RunMode(graph.VertexID(0), pie.SSSP{}, mode)
		if err != nil {
			t.Fatalf("remote post-update SSSP (%v): %v", mode, err)
		}
		if !reflect.DeepEqual(got.Output, want.Output) {
			t.Fatalf("post-update SSSP (%v) differs from local", mode)
		}
	}
	if err := gotView.Close(); err != nil {
		t.Fatalf("closing remote view: %v", err)
	}
}

// TestWorkerDialBackoff starts the worker before anything listens on the
// coordinator port: the dial retry loop must carry it into the handshake
// once the coordinator appears.
func TestWorkerDialBackoff(t *testing.T) {
	// Reserve a port, then release it so the worker's first dials fail.
	probe, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	addr := probe.Addr().String()
	probe.Close()

	waitWorkers := startWorkers(t, addr, 1)
	time.Sleep(300 * time.Millisecond) // let a few dial attempts fail

	g := randomGraph(t, 40, 40, 2)
	p := partition.Partition(g, 2, partition.Hash{})
	ln, err := grapenet.Listen(addr)
	if err != nil {
		t.Fatalf("Listen(%s): %v", addr, err)
	}
	cl, err := ln.Serve(p, 1, 10*time.Second)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	peers := []core.RemotePeer{cl.Peer(0), cl.Peer(1)}
	s, err := core.NewSessionRemote(p, core.Options{}, cl, peers)
	if err != nil {
		t.Fatalf("NewSessionRemote: %v", err)
	}
	res, err := s.Run(graph.VertexID(0), pie.SSSP{})
	if err != nil {
		t.Fatalf("SSSP after backoff: %v", err)
	}
	if len(res.Output.(map[graph.VertexID]float64)) != g.NumVertices() {
		t.Fatalf("incomplete SSSP answer after backoff")
	}
	s.Close()
	waitWorkers()
}

// TestGracefulShutdown: closing the session sends the shutdown frame and
// every worker loop returns nil (asserted by startWorkers' waiter); double
// Close stays idempotent.
func TestGracefulShutdown(t *testing.T) {
	g := randomGraph(t, 30, 20, 9)
	p := partition.Partition(g, 2, partition.Hash{})
	ln, err := grapenet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	waitWorkers := startWorkers(t, ln.Addr(), 2)
	cl, err := ln.Serve(p, 2, 10*time.Second)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	s, err := core.NewSessionRemote(p, core.Options{}, cl, []core.RemotePeer{cl.Peer(0), cl.Peer(1)})
	if err != nil {
		t.Fatalf("NewSessionRemote: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	waitWorkers()
}

// TestLocalOnlyProgramRejected: a program without wire codecs fails fast at
// the coordinator, before any call crosses the wire.
func TestLocalOnlyProgramRejected(t *testing.T) {
	g := randomGraph(t, 30, 20, 4)
	p := partition.Partition(g, 2, partition.Hash{})
	ln, err := grapenet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	waitWorkers := startWorkers(t, ln.Addr(), 2)
	cl, err := ln.Serve(p, 2, 10*time.Second)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	s, err := core.NewSessionRemote(p, core.Options{}, cl, []core.RemotePeer{cl.Peer(0), cl.Peer(1)})
	if err != nil {
		t.Fatalf("NewSessionRemote: %v", err)
	}
	defer waitWorkers()
	defer s.Close()

	pb := graph.NewBuilder(true)
	pb.AddEdge(1, 2, 1, "")
	if _, err := s.Run(pb.Build(), pie.Sim{}); err == nil {
		t.Fatalf("Sim accepted on a distributed session")
	}
}
