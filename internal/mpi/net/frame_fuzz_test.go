package net

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzFrameCap bounds the frame sizes the fuzzer exercises. Claims above
// maxFrame must be rejected outright and stay in scope; claims inside the
// (legitimate) megabyte-to-gigabyte band are skipped because readFrame
// rightly allocates for them upfront, which only measures the fuzzer's RAM.
const fuzzFrameCap = 1 << 20

// FuzzReadFrame feeds arbitrary byte streams through readFrame: corrupt or
// truncated headers, hostile lengths and garbage deflate bodies must error
// out, never panic, and frames the writer produced must round-trip.
func FuzzReadFrame(f *testing.F) {
	var raw bytes.Buffer
	writeFrame(&raw, []byte("designated message payload"))
	f.Add(raw.Bytes())

	var comp bytes.Buffer
	cf := newFrame()
	cf.buf = append(cf.buf, bytes.Repeat([]byte("fragment "), 1024)...)
	cf.sendCompressed(&comp)
	f.Add(comp.Bytes())

	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // oversized claim, no body
	f.Add([]byte{4, 0, 0, 0, 0x80, 1, 2}) // compressed bit games in the body
	hostile := binary.LittleEndian.AppendUint32(nil, 5|frameCompressed)
	hostile = binary.AppendUvarint(hostile, 64)
	hostile = append(hostile, 0xde, 0xad, 0xbe) // not a deflate stream
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= 4 {
			word := binary.LittleEndian.Uint32(data)
			if n := word &^ frameCompressed; n > fuzzFrameCap && n <= maxFrame {
				t.Skip("legitimate large frame: allocation, not parsing")
			}
			if word&frameCompressed != 0 {
				if rawLen, k := binary.Uvarint(data[4:]); k > 0 && rawLen > fuzzFrameCap && rawLen <= maxFrame {
					t.Skip("legitimate large inflate target: allocation, not parsing")
				}
			}
		}
		payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must re-frame byte-identically through the raw
		// writer (compression is a transparent transport detail).
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			t.Fatalf("re-framing a decoded payload failed: %v", err)
		}
		back, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("re-reading a re-framed payload failed: %v", err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatalf("frame round trip mismatch: %d vs %d bytes", len(back), len(payload))
		}
	})
}
