package net

// WorkerLostError reports that a worker process died or became unreachable:
// its connection broke, a write to it failed, or it stopped answering
// heartbeats. Calls routed to the process fail with an error wrapping one of
// these, so callers can match structurally via errors.As instead of string
// matching, and read which fragments lost their host:
//
//	var lost *net.WorkerLostError
//	if errors.As(err, &lost) {
//	    reassign(lost.Fragments)
//	}
//
// A graceful cluster shutdown is not a lost worker: Close poisons
// connections with a plain error, so recovery logic keyed on this type never
// triggers on teardown.
type WorkerLostError struct {
	// Proc is the dead worker's process id.
	Proc int
	// Fragments are the fragment ranks the process hosted when it was lost.
	Fragments []int
	// Cause is the underlying transport error, if any (nil for heartbeat
	// timeouts, where no I/O error ever surfaced).
	Cause error

	msg string
}

// Error keeps the historical "worker process N (fragments [...])" wording
// inside the message, so logs and scripts that matched the old strings still
// do.
func (e *WorkerLostError) Error() string { return e.msg }

// Unwrap exposes the underlying transport error to errors.Is/As chains.
func (e *WorkerLostError) Unwrap() error { return e.Cause }

// WorkerLost reports the dead process and its fragments. It exists so
// packages that cannot import this one (the engine core, which the transport
// is plugged into) can still detect the condition with errors.As against an
// anonymous interface.
func (e *WorkerLostError) WorkerLost() (proc int, fragments []int) {
	return e.Proc, e.Fragments
}
