package net

import (
	"context"
	"encoding/binary"
	"fmt"
	"log/slog"
	"net"
	"strings"
	"sync"
	"time"

	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/obs"
	"grape/internal/partition"
)

// WorkerOptions configure a worker process's connection to the coordinator.
type WorkerOptions struct {
	// DialTimeout is the total budget for dialing the coordinator with
	// exponential backoff — workers may legitimately start before the
	// coordinator listens. Zero means 30 seconds.
	DialTimeout time.Duration
	// Logf, when non-nil, receives progress lines (dial retries, handshake,
	// shutdown). Workers run unattended in CI; the log is their only voice.
	Logf func(format string, args ...any)
	// Log, when non-nil and Logf is nil, receives the same progress lines as
	// structured records.
	Log *slog.Logger
	// Metrics is the registry this connection's counters register in, polled
	// by the coordinator over the stats call. Nil allocates a private
	// registry, which keeps several in-process workers (tests, benchmarks)
	// from double counting into a shared one.
	Metrics *obs.Registry
	// Join marks this worker as a mid-session joiner: the hello carries the
	// join flag, and the coordinator's elastic accept loop admits it with a
	// fresh process id and no fragments (the cluster rebalances ranks onto it
	// afterwards) instead of counting it toward the bring-up quorum.
	Join bool
}

// loga emits one progress record. When Log carries the line the fields
// travel as structured slog attrs (rank/epoch/proc stay queryable); the Logf
// fallback formats them as key=value pairs.
func (o WorkerOptions) loga(level slog.Level, msg string, attrs ...any) {
	if o.Logf != nil {
		var b strings.Builder
		b.WriteString(msg)
		for i := 0; i+1 < len(attrs); i += 2 {
			fmt.Fprintf(&b, " %v=%v", attrs[i], attrs[i+1])
		}
		o.Logf("%s", b.String())
		return
	}
	if o.Log != nil {
		o.Log.Log(context.Background(), level, msg, attrs...)
	}
}

// workerMetrics are the per-connection counters a worker process reports
// back over the stats call.
type workerMetrics struct {
	calls       *obs.CounterVecHandle
	callSeconds *obs.HistogramHandle
	frames      *obs.CounterHandle
	epochs      *obs.CounterHandle
	dialRetries *obs.CounterHandle
}

func newWorkerMetrics(reg *obs.Registry) *workerMetrics {
	return &workerMetrics{
		calls: reg.CounterVec("grape_worker_calls_total",
			"Coordinator calls served by this worker process, by kind.", "kind"),
		callSeconds: reg.Histogram("grape_worker_call_seconds",
			"Wall-clock duration of served evaluation calls.", nil),
		frames: reg.Counter("grape_worker_frames_total",
			"Frames read from the coordinator connection."),
		epochs: reg.Counter("grape_worker_epochs_installed_total",
			"Residency epochs installed from update-batch calls."),
		dialRetries: reg.Counter("grape_worker_dial_retries_total",
			"Coordinator dial attempts that failed and were retried."),
	}
}

// callKindName names a call kind for the per-kind counter label.
func callKindName(kind byte) string {
	switch kind {
	case callPEval:
		return "peval"
	case callIncEval:
		return "inceval"
	case callFetch:
		return "fetch"
	case callEnd:
		return "end"
	case callPing:
		return "ping"
	case callUpdate:
		return "update"
	case callMaterialize:
		return "materialize"
	case callEvalDelta:
		return "evaldelta"
	case callStats:
		return "stats"
	case callCheckpoint:
		return "checkpoint"
	case callRestore:
		return "restore"
	case callAdopt:
		return "adopt"
	case callRelease:
		return "release"
	default:
		return "unknown"
	}
}

// Handler executes the coordinator's calls over the fragments a worker
// process hosts. core.WorkerHost implements it (structurally — this package
// stays independent of the engine); the methods mirror the Peer and Cluster
// methods on the coordinator side.
type Handler interface {
	// Setup installs the fragments shipped during the handshake and the
	// fragmentation graph they route through.
	Setup(frags []*partition.Fragment, gp *partition.FragGraph) error
	// PEval runs partial evaluation for one query on one hosted fragment,
	// against the residency of the named epoch.
	PEval(rank int, query uint64, epoch int64, prog string, queryBytes []byte, superstep int,
		disableIncEval, disableGrouping bool) ([]mpi.Envelope, error)
	// IncEval runs incremental evaluation over delivered envelopes.
	IncEval(rank int, query uint64, superstep int, envs []mpi.Envelope) ([]mpi.Envelope, error)
	// Fetch returns the fragment's encoded partial result.
	Fetch(rank int, query uint64) ([]byte, error)
	// End releases the fragment's per-query state.
	End(rank int, query uint64) error
	// ApplyUpdate installs a new residency epoch: the rebuilt fragments of an
	// update batch plus the new fragmentation graph; epochs older than floor
	// with no readers are retired.
	ApplyUpdate(epoch, floor int64, gp *partition.FragGraph, frags []*partition.Fragment) error
	// Materialize promotes a converged query's retained state into view
	// state, rebound to each installed epoch until End.
	Materialize(rank int, query uint64) error
	// EvalDelta seeds one view-maintenance round on the fragment's retained
	// view state.
	EvalDelta(rank int, query uint64, superstep int, ops []graph.Update,
		newInBorder []graph.VertexID) (absorbed bool, envs []mpi.Envelope, err error)
	// Checkpoint returns the query's encoded in-flight state on the fragment
	// (the coordinator snapshots every rank at a superstep barrier).
	Checkpoint(rank int, query uint64) ([]byte, error)
	// Restore reinstalls a checkpointed query state under a fresh query id
	// bound to the given residency epoch.
	Restore(rank int, query uint64, epoch int64, prog string, queryBytes, state []byte) error
	// Adopt installs fragments this process did not previously host, at the
	// given epoch (>= the current one; the residency is carried forward).
	Adopt(epoch int64, gp *partition.FragGraph, frags []*partition.Fragment) error
	// ReleaseFragment drops a hosted fragment at the current epoch: its rank
	// moved to another process.
	ReleaseFragment(rank int) error
}

// handshakeIOTimeout bounds each read/write of the worker-side handshake
// once the connection is up.
const handshakeIOTimeout = 30 * time.Second

// RunWorker connects a worker process to the coordinator at addr and serves
// calls until the coordinator shuts the cluster down. It dials with
// exponential backoff (the coordinator may not be listening yet), performs
// the handshake — protocol version exchange, cluster size and rank
// assignment, fragment installation — and then answers calls concurrently,
// one goroutine per in-flight request (heartbeat pings are answered inline,
// so a busy evaluation never delays the liveness probe). It returns nil on
// graceful shutdown and an error if the handshake fails or the connection is
// lost mid-run.
func RunWorker(addr string, h Handler, opts WorkerOptions) error {
	return RunWorkerCtx(context.Background(), addr, h, opts)
}

// RunWorkerCtx is RunWorker with cancellation: a done context aborts the
// dial/backoff loop immediately and closes the connection mid-run, in both
// cases returning the context's error.
func RunWorkerCtx(ctx context.Context, addr string, h Handler, opts WorkerOptions) (err error) {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	defer func() {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		}
	}()
	wm := newWorkerMetrics(reg)
	conn, retries, err := dialBackoff(ctx, addr, opts)
	wm.dialRetries.Add(float64(retries))
	if err != nil {
		return err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetKeepAlive(true)
		_ = tc.SetKeepAlivePeriod(30 * time.Second)
	}

	ranks, frags, gp, err := handshakeCoordinator(conn, opts)
	if err != nil {
		return err
	}
	if err := h.Setup(frags, gp); err != nil {
		msg := fmt.Sprintf("fragment setup failed: %v", err)
		_ = writeFrame(conn, appendString([]byte{ftError}, msg))
		return fmt.Errorf("net: %s", msg)
	}
	if err := writeFrame(conn, []byte{ftReady}); err != nil {
		return fmt.Errorf("net: sending ready: %w", err)
	}
	conn.SetDeadline(time.Time{})
	opts.loga(slog.LevelInfo, "serving fragments", "ranks", ranks)

	var wmu sync.Mutex
	reply := func(reqID uint64, rep callReply) {
		// Build the reply straight into a pooled frame buffer and ship it
		// with a single write.
		f := newFrame()
		f.buf = append(f.buf, ftReply)
		f.buf = binary.AppendUvarint(f.buf, reqID)
		if rep.err != nil {
			f.buf = append(f.buf, 0)
			f.buf = appendString(f.buf, rep.err.Error())
		} else {
			f.buf = append(f.buf, 1)
			f.buf = append(f.buf, rep.body...)
		}
		wmu.Lock()
		werr := f.send(conn)
		wmu.Unlock()
		if werr != nil {
			// The read loop will observe the broken connection and exit;
			// nothing more to do here.
			opts.loga(slog.LevelWarn, "reply write failed", "err", werr)
		}
	}
	for {
		// Frames are read into pooled buffers: handleCall's parsers copy
		// every value that outlives the call (envelope payloads, strings,
		// decoded fragments), so the buffer recycles as soon as the call's
		// handler returns.
		f, err := readFrameP(conn)
		if err != nil {
			return fmt.Errorf("net: coordinator connection lost: %w", err)
		}
		wm.frames.Inc()
		r := &reader{buf: f.payload()}
		switch ft := r.u8(); ft {
		case ftShutdown:
			f.release()
			opts.loga(slog.LevelInfo, "coordinator shut the cluster down")
			return nil
		case ftCall:
			reqID := r.uvarint()
			kind := r.u8()
			if r.err != nil {
				err := r.err
				f.release()
				return fmt.Errorf("net: malformed call: %w", err)
			}
			switch kind {
			case callPing:
				// Liveness probe: answer from the frame loop itself so the
				// coordinator's prober measures process liveness, not
				// evaluation latency.
				f.release()
				wm.calls.With("ping").Inc()
				reply(reqID, callReply{})
				continue
			case callStats:
				// Counter snapshot: also answered inline, so a scrape reads
				// fresh numbers even while evaluations are in flight.
				f.release()
				wm.calls.With("stats").Inc()
				reply(reqID, callReply{body: obs.EncodeSamples(reg.Gather())})
				continue
			}
			go func(f *frame, reqID uint64, kind byte, r *reader) {
				start := time.Now()
				rep := handleCall(h, kind, r, wm, opts)
				wm.calls.With(callKindName(kind)).Inc()
				wm.callSeconds.Observe(time.Since(start).Seconds())
				f.release()
				reply(reqID, rep)
			}(f, reqID, kind, r)
		default:
			f.release()
			return fmt.Errorf("net: unexpected frame 0x%02x from coordinator", ft)
		}
	}
}

// handleCall parses one call's kind-specific body and dispatches it to the
// handler.
func handleCall(h Handler, kind byte, r *reader, wm *workerMetrics, opts WorkerOptions) callReply {
	switch kind {
	case callUpdate:
		epoch := int64(r.uvarint())
		floor := int64(r.uvarint())
		gp, frags, rep := parseFragmentShip(r)
		if rep != nil {
			return *rep
		}
		if err := h.ApplyUpdate(epoch, floor, gp, frags); err != nil {
			return callReply{err: err}
		}
		if wm != nil {
			wm.epochs.Inc()
		}
		opts.loga(slog.LevelInfo, "installed update epoch",
			"epoch", epoch, "floor", floor, "fragments", len(frags))
		return callReply{}
	case callAdopt:
		epoch := int64(r.uvarint())
		gp, frags, rep := parseFragmentShip(r)
		if rep != nil {
			return *rep
		}
		if err := h.Adopt(epoch, gp, frags); err != nil {
			return callReply{err: err}
		}
		opts.loga(slog.LevelInfo, "adopted fragments",
			"epoch", epoch, "fragments", len(frags))
		return callReply{}
	case callRelease:
		rank := int(r.uvarint())
		if r.err != nil {
			return callReply{err: r.err}
		}
		if err := h.ReleaseFragment(rank); err != nil {
			return callReply{err: err}
		}
		opts.loga(slog.LevelInfo, "released fragment", "rank", rank)
		return callReply{}
	}

	rank := int(r.uvarint())
	query := r.uvarint()
	opts.loga(slog.LevelDebug, "serving call",
		"kind", callKindName(kind), "rank", rank, "query", query)
	switch kind {
	case callPEval:
		superstep := int(r.uvarint())
		epoch := int64(r.uvarint())
		flags := r.u8()
		prog := r.str()
		// Copied out of the pooled frame buffer: the handler receives the
		// query bytes across an interface boundary and owes no promise about
		// when it consumes them.
		queryBytes := append([]byte(nil), r.bytes()...)
		if r.err != nil {
			return callReply{err: r.err}
		}
		envs, err := h.PEval(rank, query, epoch, prog, queryBytes, superstep, flags&1 != 0, flags&2 != 0)
		if err != nil {
			return callReply{err: err}
		}
		return callReply{body: appendEnvelopes(nil, envs)}
	case callIncEval:
		superstep := int(r.uvarint())
		envs := r.envelopes()
		if r.err != nil {
			return callReply{err: r.err}
		}
		out, err := h.IncEval(rank, query, superstep, envs)
		if err != nil {
			return callReply{err: err}
		}
		return callReply{body: appendEnvelopes(nil, out)}
	case callFetch:
		if r.err != nil {
			return callReply{err: r.err}
		}
		data, err := h.Fetch(rank, query)
		if err != nil {
			return callReply{err: err}
		}
		return callReply{body: data}
	case callEnd:
		if r.err != nil {
			return callReply{err: r.err}
		}
		if err := h.End(rank, query); err != nil {
			return callReply{err: err}
		}
		return callReply{}
	case callMaterialize:
		if r.err != nil {
			return callReply{err: r.err}
		}
		if err := h.Materialize(rank, query); err != nil {
			return callReply{err: err}
		}
		return callReply{}
	case callEvalDelta:
		superstep := int(r.uvarint())
		opsBytes := r.bytes()
		newInBorder := r.vertexIDs()
		if r.err != nil {
			return callReply{err: r.err}
		}
		ops, err := mpi.DecodeGraphUpdates(opsBytes)
		if err != nil {
			return callReply{err: err}
		}
		absorbed, envs, err := h.EvalDelta(rank, query, superstep, ops, newInBorder)
		if err != nil {
			return callReply{err: err}
		}
		body := []byte{0}
		if absorbed {
			body[0] = 1
		}
		return callReply{body: appendEnvelopes(body, envs)}
	case callCheckpoint:
		if r.err != nil {
			return callReply{err: r.err}
		}
		data, err := h.Checkpoint(rank, query)
		if err != nil {
			return callReply{err: err}
		}
		return callReply{body: data}
	case callRestore:
		epoch := int64(r.uvarint())
		prog := r.str()
		// Copied out of the pooled frame buffer: both byte slices cross the
		// handler interface and outlive this call.
		queryBytes := append([]byte(nil), r.bytes()...)
		state := append([]byte(nil), r.bytes()...)
		if r.err != nil {
			return callReply{err: r.err}
		}
		if err := h.Restore(rank, query, epoch, prog, queryBytes, state); err != nil {
			return callReply{err: err}
		}
		return callReply{}
	default:
		return callReply{err: fmt.Errorf("unknown call kind 0x%02x", kind)}
	}
}

// parseFragmentShip parses the shared tail of update and adopt calls: the
// encoded fragmentation graph followed by a counted list of
// [rank][fragBytes] pairs. A non-nil reply reports the parse failure.
func parseFragmentShip(r *reader) (*partition.FragGraph, []*partition.Fragment, *callReply) {
	gpBytes := r.bytes()
	n := r.count()
	if r.err != nil {
		return nil, nil, &callReply{err: r.err}
	}
	gp, err := partition.DecodeFragGraph(gpBytes)
	if err != nil {
		return nil, nil, &callReply{err: err}
	}
	frags := make([]*partition.Fragment, 0, n)
	for i := 0; i < n; i++ {
		rank := int(r.uvarint())
		fragBytes := r.bytes()
		if r.err != nil {
			return nil, nil, &callReply{err: r.err}
		}
		f, err := partition.DecodeFragment(fragBytes)
		if err != nil {
			return nil, nil, &callReply{err: fmt.Errorf("fragment %d: %w", rank, err)}
		}
		if f.ID != rank {
			return nil, nil, &callReply{err: fmt.Errorf("ship frame for rank %d carries fragment %d", rank, f.ID)}
		}
		frags = append(frags, f)
	}
	return gp, frags, nil
}

// dialBackoff dials the coordinator with exponential backoff until the
// options' dial budget is exhausted. It returns how many attempts failed and
// were retried alongside the connection.
func dialBackoff(ctx context.Context, addr string, opts WorkerOptions) (net.Conn, int, error) {
	budget := opts.DialTimeout
	if budget <= 0 {
		budget = 30 * time.Second
	}
	deadline := time.Now().Add(budget)
	delay := 50 * time.Millisecond
	retries := 0
	var d net.Dialer
	d.Deadline = deadline
	for attempt := 1; ; attempt++ {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, retries, nil
		}
		if ctx.Err() != nil {
			return nil, retries, ctx.Err()
		}
		if time.Now().Add(delay).After(deadline) {
			return nil, retries, fmt.Errorf("net: dialing coordinator %s: %w", addr, err)
		}
		retries++
		obsDialRetries.Inc()
		opts.loga(slog.LevelInfo, "dial failed; retrying",
			"addr", addr, "attempt", attempt, "err", err, "retry_in", delay)
		pause := time.NewTimer(delay)
		select {
		case <-pause.C:
		case <-ctx.Done():
			pause.Stop()
			return nil, retries, ctx.Err()
		}
		if delay *= 2; delay > 2*time.Second {
			delay = 2 * time.Second
		}
	}
}

// handshakeCoordinator performs the worker's half of the handshake and
// returns the assigned ranks, the decoded fragments and the fragmentation
// graph.
func handshakeCoordinator(conn net.Conn, opts WorkerOptions) ([]int, []*partition.Fragment, *partition.FragGraph, error) {
	conn.SetDeadline(time.Now().Add(handshakeIOTimeout))
	hello := []byte{ftHello}
	hello = binary.AppendUvarint(hello, ProtocolVersion)
	var flags byte
	if opts.Join {
		flags |= helloJoin
	}
	hello = append(hello, flags)
	if err := writeFrame(conn, hello); err != nil {
		return nil, nil, nil, fmt.Errorf("net: sending hello: %w", err)
	}

	payload, err := readFrame(conn)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("net: awaiting welcome: %w", err)
	}
	r := &reader{buf: payload}
	switch ft := r.u8(); ft {
	case ftWelcome:
	case ftError:
		return nil, nil, nil, fmt.Errorf("net: coordinator rejected handshake: %s", r.str())
	default:
		return nil, nil, nil, fmt.Errorf("net: expected welcome frame, got 0x%02x", ft)
	}
	if v := r.uvarint(); r.err == nil && v != ProtocolVersion {
		return nil, nil, nil, fmt.Errorf("net: protocol version mismatch: coordinator speaks %d, worker speaks %d", v, ProtocolVersion)
	}
	m := int(r.uvarint())
	proc := int(r.uvarint())
	nRanks := r.count()
	ranks := make([]int, 0, nRanks)
	for i := 0; i < nRanks && r.err == nil; i++ {
		ranks = append(ranks, int(r.uvarint()))
	}
	if r.err != nil {
		return nil, nil, nil, fmt.Errorf("net: malformed welcome: %w", r.err)
	}
	opts.loga(slog.LevelInfo, "welcome",
		"fragments", m, "proc", proc, "ranks", ranks)

	payload, err = readFrame(conn)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("net: receiving fragmentation graph: %w", err)
	}
	r = &reader{buf: payload}
	if ft := r.u8(); ft != ftFragGfx {
		return nil, nil, nil, fmt.Errorf("net: expected fragmentation-graph frame, got 0x%02x", ft)
	}
	gp, err := partition.DecodeFragGraph(r.rest())
	if err != nil {
		return nil, nil, nil, fmt.Errorf("net: %w", err)
	}

	frags := make([]*partition.Fragment, 0, len(ranks))
	for range ranks {
		payload, err = readFrame(conn)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("net: receiving fragment: %w", err)
		}
		r = &reader{buf: payload}
		if ft := r.u8(); ft != ftFragment {
			return nil, nil, nil, fmt.Errorf("net: expected fragment frame, got 0x%02x", ft)
		}
		rank := int(r.uvarint())
		frag, err := partition.DecodeFragment(r.rest())
		if err != nil {
			return nil, nil, nil, fmt.Errorf("net: fragment %d: %w", rank, err)
		}
		if frag.ID != rank {
			return nil, nil, nil, fmt.Errorf("net: fragment frame for rank %d carries fragment %d", rank, frag.ID)
		}
		frags = append(frags, frag)
	}
	return ranks, frags, gp, nil
}
