package mpi

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func updatesEqual(a, b []Update) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Vertex != b[i].Vertex || a[i].Key != b[i].Key {
			return false
		}
		av, bv := a[i].Value, b[i].Value
		if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
			return false
		}
		if !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

// FuzzUpdateCodec feeds arbitrary bytes through DecodeUpdates: decoding must
// never panic, and whatever decodes successfully must round-trip through the
// current encoder. The seed corpus covers both wire formats.
func FuzzUpdateCodec(f *testing.F) {
	seeds := [][]Update{
		nil,
		{{Vertex: 1, Key: 0, Value: 3.5}},
		{{Vertex: -9, Key: 7, Value: math.Inf(1), Data: []byte("payload")}},
		{{Vertex: 5, Key: 1, Value: 0}, {Vertex: 6, Key: 1, Value: -2}, {Vertex: 100, Key: -3, Value: 7, Data: []byte{0, 1, 2}}},
	}
	for _, ups := range seeds {
		f.Add(EncodeUpdates(ups))
		f.Add(encodeUpdatesFixed(ups))
	}
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x02})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		ups, err := DecodeUpdates(data)
		if err != nil {
			return
		}
		back, err := DecodeUpdates(EncodeUpdates(ups))
		if err != nil {
			t.Fatalf("re-decoding a decoded batch failed: %v", err)
		}
		if !updatesEqual(ups, back) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, ups)
		}
	})
}

// TestUpdateCodecRandomRoundTrip drives the varint codec with randomized
// sorted-by-vertex batches (the shape the engine routes) and unsorted ones.
func TestUpdateCodecRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(40)
		ups := make([]Update, n)
		v := int64(-50)
		for i := range ups {
			if iter%2 == 0 {
				v += int64(rng.Intn(1000)) // sorted by vertex
			} else {
				v = rng.Int63n(1<<40) - (1 << 39) // arbitrary order
			}
			ups[i] = Update{
				Vertex: v,
				Key:    int64(rng.Intn(7)) - 3,
				Value:  rng.NormFloat64() * 1e6,
			}
			if rng.Intn(3) == 0 {
				data := make([]byte, rng.Intn(20))
				rng.Read(data)
				ups[i].Data = data
			}
		}
		back, err := DecodeUpdates(EncodeUpdates(ups))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !updatesEqual(ups, back) {
			t.Fatalf("iter %d: round trip mismatch", iter)
		}
	}
}

// TestUpdateCodecLegacyCompat proves DecodeUpdates still accepts the
// fixed-layout batches of the previous format.
func TestUpdateCodecLegacyCompat(t *testing.T) {
	ups := []Update{
		{Vertex: 255, Key: -1, Value: 2.5, Data: []byte("legacy")},
		{Vertex: 2, Key: 9, Value: math.Inf(-1)},
	}
	back, err := DecodeUpdates(encodeUpdatesFixed(ups))
	if err != nil {
		t.Fatalf("decoding legacy batch: %v", err)
	}
	if !updatesEqual(ups, back) {
		t.Fatalf("legacy round trip mismatch: %+v vs %+v", back, ups)
	}
}

// TestUpdateCodecCompression: sorted batches must encode substantially
// smaller than the fixed layout — that is the point of the varint format.
func TestUpdateCodecCompression(t *testing.T) {
	ups := make([]Update, 500)
	for i := range ups {
		ups[i] = Update{Vertex: int64(1000 + i), Key: 0, Value: float64(i)}
	}
	varint, fixed := len(EncodeUpdates(ups)), len(encodeUpdatesFixed(ups))
	if varint*2 >= fixed {
		t.Fatalf("varint encoding %dB not < half of fixed %dB", varint, fixed)
	}
}

func TestUpdateCodecUnknownFormat(t *testing.T) {
	if _, err := DecodeUpdates([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x42, 1, 2, 3}); err == nil {
		t.Fatalf("unknown format byte should fail to decode")
	}
}

// FuzzKeyValueCodec feeds arbitrary bytes through DecodeKeyValues: decoding
// must never panic or over-allocate from a hostile header, and whatever
// decodes successfully must round-trip through the current encoder.
func FuzzKeyValueCodec(f *testing.F) {
	seeds := [][]KeyValue{
		nil,
		{{Key: "k", Value: []byte("v")}},
		{{Key: "", Value: nil}, {Key: "count", Value: []byte{0, 0, 0, 7}}},
	}
	for _, kvs := range seeds {
		f.Add(EncodeKeyValues(kvs))
	}
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})       // pair count with no body
	f.Add([]byte{0x02, 0x00, 0x00, 0x00, 0x01}) // truncated mid-pair
	f.Fuzz(func(t *testing.T, data []byte) {
		kvs, err := DecodeKeyValues(data)
		if err != nil {
			return
		}
		back, err := DecodeKeyValues(EncodeKeyValues(kvs))
		if err != nil {
			t.Fatalf("re-decoding a decoded batch failed: %v", err)
		}
		if len(back) != len(kvs) {
			t.Fatalf("round trip length mismatch: %d vs %d", len(back), len(kvs))
		}
		for i := range kvs {
			if back[i].Key != kvs[i].Key || !bytes.Equal(back[i].Value, kvs[i].Value) {
				t.Fatalf("round trip mismatch at %d: %+v vs %+v", i, back[i], kvs[i])
			}
		}
	})
}
