package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// DefaultMaxSpans bounds a trace recorder: a pathological run (tens of
// thousands of supersteps across many workers) must not grow its trace
// without bound. Spans past the cap are counted as dropped.
const DefaultMaxSpans = 1 << 17

// Span is one timestamped interval of a query run: a PEval or IncEval
// invocation on a worker, a barrier wait, a combine flush, a remote call
// round trip, Assemble. Start is relative to the trace's start instant.
type Span struct {
	// Name identifies the phase, e.g. "PEval", "IncEval s3", "barrier",
	// "rpc:inceval", "assemble".
	Name string
	// Worker is the fragment rank the span ran on; -1 marks
	// coordinator-side spans (Assemble, fetch, combine flushes).
	Worker int
	// Start is the offset from the trace's start.
	Start time.Duration
	// Dur is the span's length.
	Dur time.Duration
}

// Trace records the spans of one query run. All methods are safe for
// concurrent use; a nil *Trace ignores every recording call, so call sites
// need no guards.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	spans   []Span
	max     int
	dropped int
}

// NewTrace returns a recorder whose clock starts now.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), max: DefaultMaxSpans}
}

// Add records one span from its absolute start time and duration.
func (t *Trace) Add(name string, worker int, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= t.max {
		t.dropped++
	} else {
		t.spans = append(t.spans, Span{Name: name, Worker: worker, Start: start.Sub(t.start), Dur: dur})
	}
	t.mu.Unlock()
}

// Span starts a span now and returns the closure that ends and records it.
//
//	defer tr.Span("assemble", -1)()
func (t *Trace) Span(name string, worker int) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Add(name, worker, start, time.Since(start)) }
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped reports how many spans were discarded past the recorder's cap.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one Chrome trace-event object. Complete events (ph "X")
// carry microsecond timestamps and durations; metadata events (ph "M") name
// the per-worker thread rows.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace-event format, loadable
// by Perfetto and chrome://tracing.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ChromeJSON exports the trace in the Chrome trace-event JSON format. Each
// worker rank becomes its own thread row (tid = rank + 1, named "worker N");
// coordinator-side spans render as tid 0 ("coordinator").
func (t *Trace) ChromeJSON() ([]byte, error) {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans)+8)
	seen := map[int]bool{}
	tid := func(worker int) int {
		if worker < 0 {
			return 0
		}
		return worker + 1
	}
	for _, s := range spans {
		if !seen[tid(s.Worker)] {
			seen[tid(s.Worker)] = true
			name := "coordinator"
			if s.Worker >= 0 {
				name = fmt.Sprintf("worker %d", s.Worker)
			}
			events = append(events, chromeEvent{Name: "thread_name", Ph: "M",
				Pid: 0, Tid: tid(s.Worker), Args: map[string]any{"name": name}})
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X",
			Ts:  float64(s.Start.Nanoseconds()) / 1e3,
			Dur: float64(s.Dur.Nanoseconds()) / 1e3,
			Pid: 0, Tid: tid(s.Worker),
		})
	}
	return json.Marshal(chromeTrace{TraceEvents: events})
}
