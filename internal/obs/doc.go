// Package obs is the engine's observability plane: a dependency-free
// metrics registry with Prometheus text exposition, a per-query trace
// recorder exportable as Chrome trace-event JSON, and a debug HTTP server
// tying both to the stdlib pprof handlers.
//
// # Metrics
//
// A Registry holds counters, gauges and histograms, optionally labeled:
//
//	var queries = obs.CounterVec("grape_queries_started_total",
//		"Queries accepted by the coordinator.", "mode")
//	queries.With("bsp").Inc()
//
// The package-level constructors register on Default, the process-wide
// registry every engine seam meters into; NewRegistry gives scoped
// registries (each worker connection keeps its own, so several in-process
// worker loops never double count). Metric names are validated at
// registration: every name must match grape_[a-z0-9_]* (snake_case, no
// trailing underscore) — the naming lint in scripts/lint_metrics.sh enforces
// the same rule over the source tree.
//
// Gather flattens a registry into Samples (histograms expand into
// cumulative _bucket/_sum/_count series) and WritePrometheus renders the
// text exposition format. Samples also travel over the cluster wire: worker
// processes answer the coordinator's stats call with EncodeSamples of their
// registry, and the coordinator's /metrics endpoint merges them in under a
// per-process label — whole-cluster truth from one scrape.
//
// # Tracing
//
// A Trace records timestamped spans (PEval/IncEval per worker, barriers,
// combine flushes, remote round trips, Assemble) for one query run.
// ChromeJSON exports the Chrome trace-event format; open the file in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing to see the run as
// a per-worker waterfall. Each worker rank renders as its own thread row;
// the coordinator's spans are thread 0.
//
// # Debug server
//
// Serve starts an HTTP endpoint with /metrics (the registry plus any
// registered collectors), /healthz, and the stdlib /debug/pprof/* profiling
// handlers. grape.Options.DebugListen wires it into a session.
package obs
