package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("grape_test_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // dropped: counters only go up
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("grape_test_gauge", "help")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
	h := r.Histogram("grape_test_seconds", "help", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5) // above every bucket: only +Inf and _count see it
	if h.Count() != 3 {
		t.Fatalf("histogram count = %d, want 3", h.Count())
	}
	if math.Abs(h.Sum()-5.55) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 5.55", h.Sum())
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE grape_test_total counter",
		"grape_test_total 3.5",
		"# TYPE grape_test_gauge gauge",
		"grape_test_gauge 7",
		"# TYPE grape_test_seconds histogram",
		`grape_test_seconds_bucket{le="0.1"} 1`,
		`grape_test_seconds_bucket{le="1"} 2`,
		`grape_test_seconds_bucket{le="+Inf"} 3`,
		"grape_test_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("grape_test_calls_total", "help", "kind", "mode")
	v.With("peval", "bsp").Add(3)
	v.With("inceval", "bsp").Inc()
	v.With("peval", "bsp").Inc() // same child
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `grape_test_calls_total{kind="peval",mode="bsp"} 4`) {
		t.Errorf("bad labeled exposition:\n%s", out)
	}
	if !strings.Contains(out, `grape_test_calls_total{kind="inceval",mode="bsp"} 1`) {
		t.Errorf("bad labeled exposition:\n%s", out)
	}
}

func TestReRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("grape_test_total", "help")
	b := r.Counter("grape_test_total", "help")
	if a != b {
		t.Fatal("re-registering the same shape must return the same handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different kind must panic")
		}
	}()
	r.Gauge("grape_test_total", "help")
}

func TestNameValidation(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{
		"queries_total",       // no grape_ prefix
		"grape_QueriesTotal",  // not snake_case
		"grape_queries-total", // dash
		"grape_queries_",      // trailing underscore
		"grape__queries",      // double underscore
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q must be rejected", bad)
				}
			}()
			r.Counter(bad, "help")
		}()
	}
	// Digits and underscores are fine.
	r.Counter("grape_v2_queries_total", "help")
}

// TestConcurrentRegistrationAndScrape hammers registration, increments and
// scrapes from many goroutines; run with -race it proves the registry's
// synchronization story.
func TestConcurrentRegistrationAndScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c := r.Counter(fmt.Sprintf("grape_test_%d_total", j%17), "help")
				c.Inc()
				v := r.CounterVec("grape_test_labeled_total", "help", "worker")
				v.With(fmt.Sprintf("%d", i)).Inc()
				h := r.Histogram("grape_test_lat_seconds", "help", nil)
				h.Observe(float64(j) / 1000)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				var b strings.Builder
				r.WritePrometheus(&b)
				_ = r.Gather()
			}
		}()
	}
	wg.Wait()
	total := 0.0
	for _, s := range r.Gather() {
		if s.Name == "grape_test_labeled_total" {
			total += s.Value
		}
	}
	if total != 8*200 {
		t.Fatalf("labeled counter sum = %v, want %d", total, 8*200)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("grape_test_total", "help").Add(41)
	r.CounterVec("grape_test_calls_total", "help", "kind").With("peval").Add(7)
	r.Histogram("grape_test_seconds", "help", []float64{1}).Observe(0.5)
	in := r.Gather()
	out, err := DecodeSamples(EncodeSamples(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d samples, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i].Name != out[i].Name || in[i].Value != out[i].Value ||
			len(in[i].Labels) != len(out[i].Labels) {
			t.Fatalf("sample %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestSnapshotRejectsHostileCounts(t *testing.T) {
	// A tiny buffer claiming a huge sample count must fail fast instead of
	// allocating.
	hostile := EncodeSamples(nil)[:0]
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff, 0x7f) // uvarint ~34e9
	if _, err := DecodeSamples(hostile); err == nil {
		t.Fatal("hostile sample count accepted")
	}
	if _, err := DecodeSamples([]byte{3}); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
