package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Add("x", 0, time.Now(), time.Millisecond)
	tr.Span("y", 1)()
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil trace must record nothing")
	}
}

func TestTraceRecordsAndCaps(t *testing.T) {
	tr := NewTrace()
	tr.max = 3
	base := time.Now()
	for i := 0; i < 5; i++ {
		tr.Add("s", i, base, time.Millisecond)
	}
	if got := len(tr.Spans()); got != 3 {
		t.Fatalf("spans = %d, want 3 (capped)", got)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

// TestChromeJSONWellFormed loads the export back through a schema-shaped
// struct: the trace-event format requires name/ph/ts/pid/tid on every event,
// "X" events carry durations, and every referenced tid has a thread_name
// metadata event.
func TestChromeJSONWellFormed(t *testing.T) {
	tr := NewTrace()
	base := tr.start
	tr.Add("PEval", 0, base, 2*time.Millisecond)
	tr.Add("PEval", 1, base, 3*time.Millisecond)
	tr.Add("IncEval s2", 0, base.Add(3*time.Millisecond), time.Millisecond)
	tr.Add("assemble", -1, base.Add(5*time.Millisecond), time.Millisecond)

	raw, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("export does not match the trace-event schema: %v\n%s", err, raw)
	}

	named := map[int]string{}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev.Ts == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %q missing required field: %+v", ev.Name, ev)
		}
		switch ev.Ph {
		case "M":
			if ev.Name != "thread_name" {
				t.Fatalf("unexpected metadata event %q", ev.Name)
			}
			named[*ev.Tid], _ = ev.Args["name"].(string)
		case "X":
			complete++
			if ev.Dur < 0 {
				t.Fatalf("negative duration on %q", ev.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 4 {
		t.Fatalf("complete events = %d, want 4", complete)
	}
	if named[0] != "coordinator" || named[1] != "worker 0" || named[2] != "worker 1" {
		t.Fatalf("thread rows misnamed: %v", named)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			if _, ok := named[*ev.Tid]; !ok {
				t.Fatalf("event %q on unnamed tid %d", ev.Name, *ev.Tid)
			}
		}
	}
}
