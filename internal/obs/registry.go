package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DefBuckets are the default histogram buckets, in seconds. The engine's
// superstep and call latencies run from microseconds (in-process tiny
// graphs) to seconds (large distributed runs), so the ladder starts far
// below the usual Prometheus defaults.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Registry holds metric families. All methods are safe for concurrent use;
// registering an existing name with an identical shape returns the existing
// family, so package-level metric vars and tests can re-register freely.
type Registry struct {
	mu       sync.RWMutex
	byName   map[string]*family
	families []*family // insertion order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Default is the process-wide registry the package-level constructors
// register on. The engine's coordinator-side seams meter into it; worker
// connections keep scoped registries (see NewRegistry).
var Default = NewRegistry()

// Package-level constructors on Default.

// Counter registers (or finds) an unlabeled counter on Default.
func Counter(name, help string) *CounterHandle { return Default.Counter(name, help) }

// CounterVec registers (or finds) a labeled counter family on Default.
func CounterVec(name, help string, labels ...string) *CounterVecHandle {
	return Default.CounterVec(name, help, labels...)
}

// Gauge registers (or finds) an unlabeled gauge on Default.
func Gauge(name, help string) *GaugeHandle { return Default.Gauge(name, help) }

// GaugeVec registers (or finds) a labeled gauge family on Default.
func GaugeVec(name, help string, labels ...string) *GaugeVecHandle {
	return Default.GaugeVec(name, help, labels...)
}

// Histogram registers (or finds) an unlabeled histogram on Default.
// nil buckets selects DefBuckets.
func Histogram(name, help string, buckets []float64) *HistogramHandle {
	return Default.Histogram(name, help, buckets)
}

// HistogramVec registers (or finds) a labeled histogram family on Default.
func HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVecHandle {
	return Default.HistogramVec(name, help, buckets, labels...)
}

// family is one registered metric name: its shape plus the children keyed
// by label values.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.RWMutex
	children map[string]any // joined label values -> *counter/*gauge/*histogram
	order    []string
}

// validName enforces the repository's metric-name contract: snake_case,
// grape_-prefixed, no double or trailing underscore.
func validName(name string) bool {
	if !strings.HasPrefix(name, "grape_") || strings.HasSuffix(name, "_") || strings.Contains(name, "__") {
		return false
	}
	for _, c := range name {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

func validLabel(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i, c := range name {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// register finds or creates a family. Shape mismatches are programmer
// errors and panic: two call sites registering the same name must agree.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want grape_[a-z0-9_]+, snake_case)", name))
	}
	for _, l := range labels {
		if !validLabel(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...), buckets: buckets,
		children: make(map[string]any)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// child finds or creates the labeled child for the joined values key.
func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = mk()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// counter / gauge share a float64-bits atomic cell.

type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (a *atomicFloat) set(v float64)  { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) value() float64 { return math.Float64frombits(a.bits.Load()) }

// CounterHandle is a monotonically increasing value.
type CounterHandle struct{ v atomicFloat }

// Inc adds 1.
func (c *CounterHandle) Inc() { c.v.add(1) }

// Add adds v; negative deltas are dropped (counters only go up).
func (c *CounterHandle) Add(v float64) {
	if v > 0 {
		c.v.add(v)
	}
}

// Value returns the current count.
func (c *CounterHandle) Value() float64 { return c.v.value() }

// GaugeHandle is a value that can go up and down.
type GaugeHandle struct{ v atomicFloat }

// Set replaces the value.
func (g *GaugeHandle) Set(v float64) { g.v.set(v) }

// Add adds v (may be negative).
func (g *GaugeHandle) Add(v float64) { g.v.add(v) }

// Inc adds 1.
func (g *GaugeHandle) Inc() { g.v.add(1) }

// Dec subtracts 1.
func (g *GaugeHandle) Dec() { g.v.add(-1) }

// Value returns the current value.
func (g *GaugeHandle) Value() float64 { return g.v.value() }

// HistogramHandle accumulates observations into fixed buckets.
type HistogramHandle struct {
	buckets []float64 // upper bounds, ascending
	counts  []atomic.Uint64
	sum     atomicFloat
	total   atomic.Uint64
}

func newHistogram(buckets []float64) *HistogramHandle {
	return &HistogramHandle{buckets: buckets, counts: make([]atomic.Uint64, len(buckets))}
}

// Observe records one observation.
func (h *HistogramHandle) Observe(v float64) {
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.sum.add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *HistogramHandle) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observations.
func (h *HistogramHandle) Sum() float64 { return h.sum.value() }

// Vec handles: labeled families whose With returns the child handle.

// CounterVecHandle is a labeled counter family.
type CounterVecHandle struct{ f *family }

// With returns the child counter for the given label values.
func (v *CounterVecHandle) With(values ...string) *CounterHandle {
	return v.f.child(values, func() any { return new(CounterHandle) }).(*CounterHandle)
}

// GaugeVecHandle is a labeled gauge family.
type GaugeVecHandle struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVecHandle) With(values ...string) *GaugeHandle {
	return v.f.child(values, func() any { return new(GaugeHandle) }).(*GaugeHandle)
}

// HistogramVecHandle is a labeled histogram family.
type HistogramVecHandle struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVecHandle) With(values ...string) *HistogramHandle {
	f := v.f
	return f.child(values, func() any { return newHistogram(f.buckets) }).(*HistogramHandle)
}

// Registry constructors.

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *CounterHandle {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.child(nil, func() any { return new(CounterHandle) }).(*CounterHandle)
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVecHandle {
	return &CounterVecHandle{f: r.register(name, help, KindCounter, labels, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *GaugeHandle {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.child(nil, func() any { return new(GaugeHandle) }).(*GaugeHandle)
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVecHandle {
	return &GaugeVecHandle{f: r.register(name, help, KindGauge, labels, nil)}
}

// Histogram registers (or finds) an unlabeled histogram. nil buckets
// selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *HistogramHandle {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, KindHistogram, nil, buckets)
	return f.child(nil, func() any { return newHistogram(f.buckets) }).(*HistogramHandle)
}

// HistogramVec registers (or finds) a labeled histogram family. nil buckets
// selects DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVecHandle {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVecHandle{f: r.register(name, help, KindHistogram, labels, buckets)}
}

// Label is one name=value pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line: a metric name, its labels and a value.
// Histograms flatten into _bucket (with an le label, cumulative), _sum and
// _count samples, so a []Sample round-trips losslessly through the wire
// snapshot codec and re-labels cleanly (the coordinator adds a proc label
// to every worker sample).
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Gather flattens the registry into samples, in registration order.
func (r *Registry) Gather() []Sample {
	r.mu.RLock()
	families := append([]*family(nil), r.families...)
	r.mu.RUnlock()
	var out []Sample
	for _, f := range families {
		out = f.gather(out)
	}
	return out
}

func (f *family) gather(out []Sample) []Sample {
	f.mu.RLock()
	keys := append([]string(nil), f.order...)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	for i, key := range keys {
		labels := f.labelsFor(key)
		switch c := children[i].(type) {
		case *CounterHandle:
			out = append(out, Sample{Name: f.name, Labels: labels, Value: c.Value()})
		case *GaugeHandle:
			out = append(out, Sample{Name: f.name, Labels: labels, Value: c.Value()})
		case *HistogramHandle:
			cum := uint64(0)
			for bi, ub := range c.buckets {
				cum += c.counts[bi].Load()
				out = append(out, Sample{Name: f.name + "_bucket",
					Labels: append(append([]Label(nil), labels...), Label{"le", formatFloat(ub)}),
					Value:  float64(cum)})
			}
			total := c.Count()
			out = append(out, Sample{Name: f.name + "_bucket",
				Labels: append(append([]Label(nil), labels...), Label{"le", "+Inf"}),
				Value:  float64(total)})
			out = append(out, Sample{Name: f.name + "_sum", Labels: labels, Value: c.Sum()})
			out = append(out, Sample{Name: f.name + "_count", Labels: labels, Value: float64(total)})
		}
	}
	return out
}

func (f *family) labelsFor(key string) []Label {
	if len(f.labels) == 0 {
		return nil
	}
	values := strings.Split(key, "\x00")
	labels := make([]Label, len(f.labels))
	for i, name := range f.labels {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		labels[i] = Label{name, v}
	}
	return labels
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), with HELP and TYPE comments per family.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	families := append([]*family(nil), r.families...)
	r.mu.RUnlock()
	for _, f := range families {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		WriteSamples(w, f.gather(nil))
	}
}

// WriteSamples renders samples as plain exposition lines (no HELP/TYPE
// comments) — the form used for collector-merged samples whose families
// live in another process.
func WriteSamples(w io.Writer, samples []Sample) {
	for _, s := range samples {
		if len(s.Labels) == 0 {
			fmt.Fprintf(w, "%s %s\n", s.Name, formatFloat(s.Value))
			continue
		}
		parts := make([]string, len(s.Labels))
		for i, l := range s.Labels {
			parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
		}
		fmt.Fprintf(w, "%s{%s} %s\n", s.Name, strings.Join(parts, ","), formatFloat(s.Value))
	}
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// SortSamples orders samples by name then labels — handy for deterministic
// test assertions over Gather output.
func SortSamples(samples []Sample) {
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].Name != samples[j].Name {
			return samples[i].Name < samples[j].Name
		}
		return fmt.Sprint(samples[i].Labels) < fmt.Sprint(samples[j].Labels)
	})
}
