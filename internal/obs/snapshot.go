package obs

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The snapshot codec ships a registry's Gather output over the cluster
// wire: worker processes answer the coordinator's stats call with
// EncodeSamples of their per-connection registry, and the coordinator
// decodes, re-labels (adding the worker's proc id) and merges the samples
// into its /metrics exposition. The format is a uvarint sample count, then
// per sample a length-prefixed name, a uvarint label count with
// length-prefixed name/value pairs, and the value's IEEE-754 bits.

// EncodeSamples serializes samples for the wire.
func EncodeSamples(samples []Sample) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(samples)))
	for _, s := range samples {
		buf = appendStr(buf, s.Name)
		buf = binary.AppendUvarint(buf, uint64(len(s.Labels)))
		for _, l := range s.Labels {
			buf = appendStr(buf, l.Name)
			buf = appendStr(buf, l.Value)
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.Value))
	}
	return buf
}

// DecodeSamples parses a snapshot. Counts are validated against the
// remaining bytes, so corrupt or hostile input fails instead of allocating.
func DecodeSamples(buf []byte) ([]Sample, error) {
	off := 0
	n, err := readUvarint(buf, &off)
	if err != nil {
		return nil, err
	}
	// Every sample costs at least a 1-byte name length, a label count and
	// 8 value bytes.
	if n > uint64(len(buf))/10+1 {
		return nil, fmt.Errorf("obs: snapshot claims %d samples in %d bytes", n, len(buf))
	}
	out := make([]Sample, 0, n)
	for i := uint64(0); i < n; i++ {
		var s Sample
		if s.Name, err = readStr(buf, &off); err != nil {
			return nil, err
		}
		nl, err := readUvarint(buf, &off)
		if err != nil {
			return nil, err
		}
		if nl > uint64(len(buf)-off)/2+1 {
			return nil, fmt.Errorf("obs: snapshot sample claims %d labels", nl)
		}
		for j := uint64(0); j < nl; j++ {
			var l Label
			if l.Name, err = readStr(buf, &off); err != nil {
				return nil, err
			}
			if l.Value, err = readStr(buf, &off); err != nil {
				return nil, err
			}
			s.Labels = append(s.Labels, l)
		}
		if off+8 > len(buf) {
			return nil, fmt.Errorf("obs: truncated snapshot value at offset %d", off)
		}
		s.Value = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		out = append(out, s)
	}
	return out, nil
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readUvarint(buf []byte, off *int) (uint64, error) {
	v, n := binary.Uvarint(buf[*off:])
	if n <= 0 {
		return 0, fmt.Errorf("obs: truncated snapshot at offset %d", *off)
	}
	*off += n
	return v, nil
}

func readStr(buf []byte, off *int) (string, error) {
	n, err := readUvarint(buf, off)
	if err != nil {
		return "", err
	}
	if n > uint64(len(buf)-*off) {
		return "", fmt.Errorf("obs: truncated snapshot string at offset %d", *off)
	}
	s := string(buf[*off : *off+int(n)])
	*off += int(n)
	return s, nil
}
