package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugServer is the debug HTTP endpoint of a session: /metrics renders a
// registry (plus any merged collectors) in the Prometheus text format,
// /healthz answers liveness probes, and /debug/pprof/* serves the stdlib
// profiling handlers. One server per session; Close releases the port.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
	reg *Registry

	mu         sync.Mutex
	collectors []func() []Sample

	closeOnce sync.Once
	closeErr  error
}

// Serve binds addr (port 0 picks an ephemeral port — use Addr to learn it)
// and starts serving the debug endpoint for reg in a background goroutine.
func Serve(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	s := &DebugServer{ln: ln, reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// The pprof handlers are mounted explicitly on this mux: importing
	// net/http/pprof for its side effect would pollute the global
	// DefaultServeMux of the embedding process.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43117".
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// AddCollector merges extra samples into every /metrics scrape. The
// distributed session registers one that polls each worker process for its
// counters, so the coordinator's endpoint shows whole-cluster truth.
func (s *DebugServer) AddCollector(fn func() []Sample) {
	s.mu.Lock()
	s.collectors = append(s.collectors, fn)
	s.mu.Unlock()
}

func (s *DebugServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
	s.mu.Lock()
	collectors := append([]func() []Sample(nil), s.collectors...)
	s.mu.Unlock()
	for _, fn := range collectors {
		WriteSamples(w, fn())
	}
}

// Close stops the server and releases the port. Idempotent.
func (s *DebugServer) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.srv.Close() })
	return s.closeErr
}
