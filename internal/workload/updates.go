package workload

import (
	"math/rand"
	"time"

	"grape/internal/graph"
)

// Update streams: timestamped batches of graph changes replayed against a
// session, standing in for the change feeds of the paper's dynamic-graph
// experiments. Generation is deterministic for a given config (it relies on
// graphgen's determinism for the base graph, see TestGraphgenDeterministic),
// and the generator tracks the evolving graph so deletions and reweights
// always reference edges that exist at the time the batch is issued.

// StreamConfig controls an update-stream generation run.
type StreamConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Batches and BatchSize shape the stream: Batches batches of BatchSize
	// ops each. Zero values default to 50 batches of 4 ops.
	Batches   int
	BatchSize int
	// Interval is the synthetic time between consecutive batches (timestamps
	// are At = Seq*Interval). Zero defaults to 100ms.
	Interval time.Duration
	// Mix weights for the op kinds. All zero defaults to an insert-heavy mix
	// (8:1:1:1:1 insert:delete:reweight:vertex-add:vertex-remove).
	InsertWeight, DeleteWeight, ReweightWeight, VertexAddWeight, VertexRemoveWeight int
	// Protect lists vertices the stream must never remove (for example the
	// source of a materialized SSSP view).
	Protect []graph.VertexID
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Batches <= 0 {
		c.Batches = 50
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.InsertWeight+c.DeleteWeight+c.ReweightWeight+c.VertexAddWeight+c.VertexRemoveWeight == 0 {
		c.InsertWeight, c.DeleteWeight, c.ReweightWeight, c.VertexAddWeight, c.VertexRemoveWeight = 8, 1, 1, 1, 1
	}
	return c
}

// MonotoneStreamConfig returns a config whose ops are all in the monotone
// class (edge inserts and vertex adds) that SSSP and CC views absorb purely
// incrementally — the stream used to measure IncEval maintenance against
// full recomputation.
func MonotoneStreamConfig(seed int64, batches, batchSize int) StreamConfig {
	return StreamConfig{
		Seed:            seed,
		Batches:         batches,
		BatchSize:       batchSize,
		InsertWeight:    9,
		VertexAddWeight: 1,
	}
}

// TimedBatch is one batch of an update stream: ops that arrive together at
// synthetic time At.
type TimedBatch struct {
	Seq int
	At  time.Duration
	Ops []graph.Update
}

// UpdateStream generates a timestamped stream of update batches against g.
// The generator applies each op to an internal shadow of the graph, so
// deletions always target live edges and the stream is replayable in order
// against a session opened on g.
func UpdateStream(g *graph.Graph, cfg StreamConfig) []TimedBatch {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	protect := make(map[graph.VertexID]bool, len(cfg.Protect))
	for _, v := range cfg.Protect {
		protect[v] = true
	}

	// Shadow state: live vertices and edges, updated as ops are generated.
	vertices := make([]graph.VertexID, 0, g.NumVertices())
	for i := 0; i < g.NumVertices(); i++ {
		vertices = append(vertices, g.VertexAt(i))
	}
	edges := g.Edges()
	nextID := graph.VertexID(0)
	for _, v := range vertices {
		if v >= nextID {
			nextID = v + 1
		}
	}

	total := cfg.InsertWeight + cfg.DeleteWeight + cfg.ReweightWeight + cfg.VertexAddWeight + cfg.VertexRemoveWeight
	pick := func() int {
		r := rng.Intn(total)
		for i, w := range []int{cfg.InsertWeight, cfg.DeleteWeight, cfg.ReweightWeight, cfg.VertexAddWeight, cfg.VertexRemoveWeight} {
			if r < w {
				return i
			}
			r -= w
		}
		return 0
	}
	weight := func() float64 { return 0.5 + rng.Float64()*9 }

	out := make([]TimedBatch, 0, cfg.Batches)
	for seq := 0; seq < cfg.Batches; seq++ {
		var ops []graph.Update
		for len(ops) < cfg.BatchSize {
			switch pick() {
			case 0: // edge insert
				if len(vertices) == 0 {
					continue
				}
				u := vertices[rng.Intn(len(vertices))]
				var v graph.VertexID
				if rng.Intn(6) == 0 {
					v = nextID
					nextID++
					vertices = append(vertices, v)
				} else {
					v = vertices[rng.Intn(len(vertices))]
				}
				if u == v {
					continue
				}
				ops = append(ops, graph.AddEdgeUpdate(u, v, weight(), ""))
				edges = append(edges, graph.Edge{Src: u, Dst: v})
			case 1: // edge delete
				if len(edges) == 0 {
					continue
				}
				i := rng.Intn(len(edges))
				e := edges[i]
				ops = append(ops, graph.RemoveEdgeUpdate(e.Src, e.Dst))
				edges = removeMatchingEdges(edges, e.Src, e.Dst, g.Directed())
			case 2: // edge reweight
				if len(edges) == 0 {
					continue
				}
				e := edges[rng.Intn(len(edges))]
				ops = append(ops, graph.ReweightEdgeUpdate(e.Src, e.Dst, weight()))
			case 3: // vertex add
				v := nextID
				nextID++
				vertices = append(vertices, v)
				ops = append(ops, graph.AddVertexUpdate(v, ""))
			case 4: // vertex remove
				if len(vertices) <= 2 {
					continue
				}
				i := rng.Intn(len(vertices))
				v := vertices[i]
				if protect[v] {
					continue
				}
				vertices = append(vertices[:i], vertices[i+1:]...)
				live := edges[:0]
				for _, e := range edges {
					if e.Src != v && e.Dst != v {
						live = append(live, e)
					}
				}
				edges = live
				ops = append(ops, graph.RemoveVertexUpdate(v))
			}
		}
		out = append(out, TimedBatch{Seq: seq, At: time.Duration(seq) * cfg.Interval, Ops: ops})
	}
	return out
}

// removeMatchingEdges drops every edge between u and v (both orientations
// for undirected graphs), mirroring RemoveEdgeUpdate semantics.
func removeMatchingEdges(edges []graph.Edge, u, v graph.VertexID, directed bool) []graph.Edge {
	live := edges[:0]
	for _, e := range edges {
		match := e.Src == u && e.Dst == v
		if !directed && e.Src == v && e.Dst == u {
			match = true
		}
		if !match {
			live = append(live, e)
		}
	}
	return live
}
