// Package workload generates the query workloads and dataset surrogates used
// by the evaluation (Section 7): the four real-life datasets are replaced by
// deterministic synthetic graphs with the same structural character (see
// DESIGN.md for the substitution argument), and queries are drawn exactly as
// in the paper — random source vertices for SSSP, random labeled patterns of
// a given size for Sim and SubIso, and training-set fractions for CF.
package workload

import (
	"fmt"
	"math/rand"

	"grape/internal/graph"
	"grape/internal/graphgen"
	"grape/internal/partition"
)

// Scale selects how large the generated dataset surrogates are. Benchmarks
// default to ScaleSmall so `go test -bench` stays laptop-friendly; the CLI
// can request larger graphs.
type Scale int

const (
	// ScaleTiny is for unit tests of the harness itself.
	ScaleTiny Scale = iota
	// ScaleSmall is the default benchmark scale.
	ScaleSmall
	// ScaleMedium stresses the engines harder (cmd/grape-bench -size medium).
	ScaleMedium
)

// ParseScale converts a string flag into a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return ScaleTiny, nil
	case "small", "":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	default:
		return ScaleSmall, fmt.Errorf("workload: unknown scale %q (want tiny, small or medium)", s)
	}
}

// Dataset names, mirroring the paper's datasets.
const (
	Traffic     = "traffic"     // US road network surrogate
	LiveJournal = "livejournal" // social network surrogate
	DBpedia     = "dbpedia"     // knowledge base surrogate
	MovieLens   = "movielens"   // bipartite rating graph surrogate
)

// Datasets lists the dataset names in the order the paper reports them.
var Datasets = []string{Traffic, LiveJournal, DBpedia, MovieLens}

// Load generates the named dataset surrogate at the given scale. Generation
// is deterministic, so repeated calls return identical graphs.
func Load(name string, scale Scale) (*graph.Graph, error) {
	switch name {
	case Traffic:
		rows := map[Scale]int{ScaleTiny: 12, ScaleSmall: 40, ScaleMedium: 90}[scale]
		return graphgen.RoadNetwork(rows, rows, graphgen.Config{Seed: 1001}), nil
	case LiveJournal:
		n := map[Scale]int{ScaleTiny: 300, ScaleSmall: 2000, ScaleMedium: 10000}[scale]
		return graphgen.SocialNetwork(n, 6, graphgen.Config{Seed: 1002, Labels: 100}), nil
	case DBpedia:
		n := map[Scale]int{ScaleTiny: 300, ScaleSmall: 2500, ScaleMedium: 12000}[scale]
		return graphgen.KnowledgeBase(n, 3, 160, graphgen.Config{Seed: 1003, Labels: 200}), nil
	case MovieLens:
		users := map[Scale]int{ScaleTiny: 100, ScaleSmall: 700, ScaleMedium: 3000}[scale]
		return graphgen.Bipartite(users, users/5, 12, graphgen.Config{Seed: 1004}), nil
	default:
		return nil, fmt.Errorf("workload: unknown dataset %q", name)
	}
}

// Synthetic generates the Appendix-B synthetic graph with the given vertex
// and edge counts (Fig 9), scaled down by the divisor implied by the scale.
func Synthetic(vertices, edges int, scale Scale) *graph.Graph {
	div := map[Scale]int{ScaleTiny: 10000, ScaleSmall: 2000, ScaleMedium: 400}[scale]
	if div == 0 {
		div = 2000
	}
	v := vertices / div
	e := edges / div
	if v < 10 {
		v = 10
	}
	if e < v {
		e = v
	}
	return graphgen.Uniform(v, e, graphgen.Config{Seed: int64(1100 + vertices)})
}

// Sources samples count distinct source vertices for SSSP queries,
// deterministically from the given seed ("we sampled 10 source nodes in each
// graph").
func Sources(g *graph.Graph, count int, seed int64) []graph.VertexID {
	if g.NumVertices() == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	if count > g.NumVertices() {
		count = g.NumVertices()
	}
	seen := make(map[int]bool, count)
	out := make([]graph.VertexID, 0, count)
	for len(out) < count {
		i := rng.Intn(g.NumVertices())
		if !seen[i] {
			seen[i] = true
			out = append(out, g.VertexAt(i))
		}
	}
	return out
}

// Patterns generates count connected labeled patterns with the given number
// of nodes and edges, using labels drawn from g ("20 pattern queries ...
// using labels drawn from the graphs").
func Patterns(g *graph.Graph, count, nodes, edges int, seed int64) []*graph.Graph {
	out := make([]*graph.Graph, count)
	for i := range out {
		out[i] = graphgen.Pattern(g, nodes, edges, seed+int64(i))
	}
	return out
}

// Straggler builds the fan-in straggler workload used by the execution-plane
// experiments and tests: a directed chain of length `chain` whose vertices
// alternate over the fast fragments 1..m-1, where every chain vertex also
// feeds a distinct sink vertex owned by fragment 0. Under BSP, fragment 0
// receives one new sink distance per superstep — and the barrier makes every
// superstep pay fragment 0's per-round cost; under asynchronous execution
// the fast fragments race ahead and fragment 0 drains the backlog in a few
// large batches. It returns the pre-built partition and the SSSP source (the
// chain head). m must be at least 3 (two fast fragments): with a single fast
// fragment, its PEval solves the whole chain in one shot and there is no
// per-superstep fan-in to measure.
func Straggler(chain, m int) (*partition.Partitioned, graph.VertexID) {
	if m < 3 {
		panic(fmt.Sprintf("workload: Straggler needs m >= 3 fragments, got %d", m))
	}
	b := graph.NewBuilder(true)
	assign := make(map[graph.VertexID]int)
	for i := 0; i < chain; i++ {
		v := graph.VertexID(i)
		assign[v] = 1 + i%(m-1)
		if i+1 < chain {
			b.AddEdge(v, graph.VertexID(i+1), 1, "")
		}
		sink := graph.VertexID(100000 + i)
		b.AddEdge(v, sink, 1, "")
		assign[sink] = 0
	}
	g := b.Build()
	ids := make([]int, g.NumVertices())
	for i := 0; i < g.NumVertices(); i++ {
		ids[i] = assign[g.VertexAt(i)]
	}
	return partition.Build(g, ids, m, "straggler"), graph.VertexID(0)
}
