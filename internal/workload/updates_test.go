package workload

import (
	"reflect"
	"testing"

	"grape/internal/graph"
)

func TestUpdateStreamDeterministic(t *testing.T) {
	g, err := Load(Traffic, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	cfg := StreamConfig{Seed: 7, Batches: 20, BatchSize: 5}
	a := UpdateStream(g, cfg)
	b := UpdateStream(g, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config produced different streams")
	}
	c := UpdateStream(g, StreamConfig{Seed: 8, Batches: 20, BatchSize: 5})
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical streams")
	}
	if len(a) != 20 {
		t.Fatalf("batches = %d", len(a))
	}
	for i, tb := range a {
		if tb.Seq != i {
			t.Fatalf("batch %d has Seq %d", i, tb.Seq)
		}
		if len(tb.Ops) != 5 {
			t.Fatalf("batch %d has %d ops", i, len(tb.Ops))
		}
		if i > 0 && tb.At <= a[i-1].At {
			t.Fatalf("timestamps not increasing: %v then %v", a[i-1].At, tb.At)
		}
	}
}

func TestUpdateStreamDeletionsTargetLiveEdges(t *testing.T) {
	g, err := Load(Traffic, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	stream := UpdateStream(g, StreamConfig{Seed: 21, Batches: 40, BatchSize: 4, DeleteWeight: 5, InsertWeight: 5})
	cur := g
	for _, tb := range stream {
		for _, op := range tb.Ops {
			if op.Kind == graph.UpdateRemoveEdge && !cur.HasEdge(op.Src, op.Dst) {
				t.Fatalf("batch %d deletes missing edge %v", tb.Seq, op)
			}
			if op.Kind == graph.UpdateRemoveVertex && !cur.HasVertex(op.Src) {
				t.Fatalf("batch %d removes missing vertex %v", tb.Seq, op)
			}
			cur = graph.ApplyUpdates(cur, []graph.Update{op})
		}
	}
}

func TestUpdateStreamProtectAndMonotone(t *testing.T) {
	g, err := Load(Traffic, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	protected := g.VertexAt(3)
	stream := UpdateStream(g, StreamConfig{
		Seed: 3, Batches: 30, BatchSize: 4,
		VertexRemoveWeight: 10, InsertWeight: 1,
		Protect: []graph.VertexID{protected},
	})
	for _, tb := range stream {
		for _, op := range tb.Ops {
			if op.Kind == graph.UpdateRemoveVertex && op.Src == protected {
				t.Fatalf("protected vertex removed in batch %d", tb.Seq)
			}
		}
	}

	mono := UpdateStream(g, MonotoneStreamConfig(11, 25, 6))
	for _, tb := range mono {
		for _, op := range tb.Ops {
			if op.Kind != graph.UpdateAddEdge && op.Kind != graph.UpdateAddVertex {
				t.Fatalf("monotone stream emitted %v", op)
			}
		}
	}
}
