package workload

import (
	"testing"

	"grape/internal/graph"
)

func TestParseScale(t *testing.T) {
	cases := map[string]Scale{"tiny": ScaleTiny, "small": ScaleSmall, "": ScaleSmall, "medium": ScaleMedium}
	for in, want := range cases {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatalf("unknown scale must fail")
	}
}

func TestLoadAllDatasets(t *testing.T) {
	for _, name := range Datasets {
		g, err := Load(name, ScaleTiny)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("Load(%s) produced an empty graph", name)
		}
		// Determinism.
		g2, _ := Load(name, ScaleTiny)
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("Load(%s) is not deterministic", name)
		}
	}
	if _, err := Load("imaginary", ScaleTiny); err == nil {
		t.Fatalf("unknown dataset must fail")
	}
}

func TestDatasetCharacter(t *testing.T) {
	road, _ := Load(Traffic, ScaleTiny)
	social, _ := Load(LiveJournal, ScaleTiny)
	if road.Directed() {
		t.Fatalf("road network must be undirected")
	}
	if !social.Directed() {
		t.Fatalf("social network must be directed")
	}
	// The road network must have a much larger diameter than the social
	// network — the property that drives Table 1.
	if road.EstimateDiameter(0) <= social.Undirect().EstimateDiameter(0) {
		t.Fatalf("road diameter %d should exceed social diameter %d",
			road.EstimateDiameter(0), social.Undirect().EstimateDiameter(0))
	}
	movie, _ := Load(MovieLens, ScaleTiny)
	users, products := 0, 0
	for i := 0; i < movie.NumVertices(); i++ {
		switch movie.Label(i) {
		case "user":
			users++
		case "product":
			products++
		}
	}
	if users == 0 || products == 0 {
		t.Fatalf("movielens surrogate must be bipartite, got %d users %d products", users, products)
	}
}

func TestSyntheticScaling(t *testing.T) {
	small := Synthetic(10_000_000, 40_000_000, ScaleTiny)
	big := Synthetic(50_000_000, 200_000_000, ScaleTiny)
	if big.NumVertices() <= small.NumVertices() {
		t.Fatalf("synthetic sizes must scale: %d vs %d", big.NumVertices(), small.NumVertices())
	}
}

func TestSourcesAndPatterns(t *testing.T) {
	g, _ := Load(DBpedia, ScaleTiny)
	srcs := Sources(g, 10, 3)
	if len(srcs) != 10 {
		t.Fatalf("Sources = %d, want 10", len(srcs))
	}
	seen := map[int64]bool{}
	for _, s := range srcs {
		if seen[int64(s)] {
			t.Fatalf("duplicate source %d", s)
		}
		seen[int64(s)] = true
		if !g.HasVertex(s) {
			t.Fatalf("source %d not in graph", s)
		}
	}
	// Determinism.
	srcs2 := Sources(g, 10, 3)
	for i := range srcs {
		if srcs[i] != srcs2[i] {
			t.Fatalf("Sources not deterministic")
		}
	}
	pats := Patterns(g, 3, 6, 10, 5)
	if len(pats) != 3 {
		t.Fatalf("Patterns = %d, want 3", len(pats))
	}
	for _, p := range pats {
		if p.NumVertices() != 6 {
			t.Fatalf("pattern has %d vertices", p.NumVertices())
		}
	}
	if got := Sources(g, g.NumVertices()+10, 1); len(got) != g.NumVertices() {
		t.Fatalf("Sources should clamp to |V|")
	}
	if empty := Sources(graph.NewBuilder(true).Build(), 3, 1); empty != nil {
		t.Fatalf("Sources on empty graph should be nil")
	}
}
