package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/partition"
)

// ErrSessionClosed is returned by Session.Run, Session.ApplyUpdates and
// Session.Materialize after Close.
var ErrSessionClosed = errors.New("core: session closed")

// Session is the partition-once query-serving form of the engine: the graph
// is partitioned once, the fragments are held resident by a persistent
// worker/coordinator cluster, and any number of queries — issued concurrently
// from different goroutines — are evaluated over the shared fragments. This
// is the operating model of Section 3.1 ("the graph is partitioned once for
// all queries Q posed on G"): partitioning and cluster setup are paid once
// and amortized over the whole query stream.
//
// Sessions are mutable: ApplyUpdates absorbs a batch of graph changes by
// rebuilding only the affected fragments and installing them as a new epoch.
// Fragments are immutable values, so queries in flight keep reading the
// epoch they started on (snapshot consistency); materialized views created
// with Materialize are refreshed after each batch by an incremental
// maintenance round (see view.go).
//
// Per-query isolation: every Run creates a query-scoped communicator
// (mailboxes namespaced by a query id, metered into that query's Stats) and
// fresh per-fragment contexts, so concurrent BSP runs never interleave
// envelopes or share mutable state. The cluster-wide parallelism limit is
// shared, mapping all in-flight virtual workers onto the configured number of
// physical workers.
type Session struct {
	opts    Options
	cluster mpi.Transport
	remotes []RemotePeer // per-rank peers of a distributed session; nil when all fragments are local
	place   func(graph.VertexID) int

	mu       sync.Mutex // guards part, workers, epoch, epochUse, views, closed, updatesBroken
	part     *partition.Partitioned
	workers  []*worker
	epoch    int64
	epochUse map[int64]int // in-flight queries pinned per epoch (snapshot floor)
	views    map[*View]struct{}
	closed   bool
	inFlight sync.WaitGroup
	// topoGen counts fragment reassignments (worker-death recovery and
	// elastic rebalances). The restart loop compares it across a failed run:
	// a change means the failure may be churn — a call raced a fragment
	// mid-move — and the run is worth retrying even without a worker-loss
	// error.
	topoGen atomic.Int64
	// updatesBroken records a failed delta ship to remote workers: the
	// cluster's residency epochs may have diverged, so all further update
	// batches are rejected with this error (queries keep working — they only
	// name epochs every process agreed on).
	updatesBroken error

	// updateMu serializes ApplyUpdates and Materialize so that view state
	// always corresponds to exactly one epoch.
	updateMu sync.Mutex

	queries atomic.Int64
	updates atomic.Int64
}

// NewSession partitions g with the configured strategy and brings up the
// resident worker cluster. The session is ready to serve queries from any
// number of goroutines.
func NewSession(g *graph.Graph, opts Options) (*Session, error) {
	o := opts.withDefaults()
	p := partition.Partition(g, o.Workers, o.Strategy)
	return NewSessionPartitioned(p, opts)
}

// NewSessionPartitioned brings up a session over an already partitioned
// graph. The session serves exactly the fragments of p; opts.Workers is
// ignored in favor of the partition's fragment count.
func NewSessionPartitioned(p *partition.Partitioned, opts Options) (*Session, error) {
	m := len(p.Fragments)
	if m == 0 {
		return nil, errors.New("core: partition has no fragments")
	}
	cluster, err := mpi.NewCluster(m, nil)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return newSession(p, opts, cluster, nil)
}

// NewSessionRemote brings up a distributed session: the fragments of p are
// hosted by remote worker processes reachable through tr (which also
// provides the coordinator-side mailboxes and barriers) and peers[i] is the
// evaluation handle for fragment i. Queries run exactly as on a local
// session — same runner planes, same communicators — with PEval/IncEval
// forwarded through the peers; only programs implementing RemoteProgram are
// accepted. The session owns tr and closes it on Close.
//
// Graph updates and materialized views work over the wire when the transport
// implements RemoteUpdateTransport and the peers implement RemoteViewPeer
// (the TCP transport does both): ApplyUpdates routes the batch at the
// coordinator, ships the rebuilt fragments as a new epoch, and maintenance
// rounds run EvalDelta/IncEval on the workers' retained view state. On
// transports without those capabilities the calls fail with
// ErrDistributedUnsupported.
func NewSessionRemote(p *partition.Partitioned, opts Options, tr mpi.Transport, peers []RemotePeer) (*Session, error) {
	m := len(p.Fragments)
	if m == 0 {
		return nil, errors.New("core: partition has no fragments")
	}
	if tr == nil {
		return nil, errors.New("core: nil transport")
	}
	if len(peers) != m {
		return nil, fmt.Errorf("core: %d remote peers for %d fragments", len(peers), m)
	}
	for i, pe := range peers {
		if pe == nil {
			return nil, fmt.Errorf("core: nil remote peer for fragment %d", i)
		}
	}
	if tr.NumWorkers() != m {
		return nil, fmt.Errorf("core: transport has %d workers for %d fragments", tr.NumWorkers(), m)
	}
	return newSession(p, opts, tr, peers)
}

func newSession(p *partition.Partitioned, opts Options, tr mpi.Transport, peers []RemotePeer) (*Session, error) {
	m := len(p.Fragments)
	o := opts
	o.Workers = m
	o = o.withDefaults()

	tr.LimitParallelism(o.WorkerConcurrency)
	place := o.Placer
	if place == nil {
		place = partition.HashPlacer(m)
	}
	s := &Session{
		opts:     o,
		cluster:  tr,
		remotes:  peers,
		place:    place,
		part:     p,
		workers:  newWorkers(p),
		epochUse: make(map[int64]int),
		views:    make(map[*View]struct{}),
	}
	if o.Recovery != nil && peers != nil {
		if rt, ok := tr.(RemoteRecoveryTransport); ok {
			// Elasticity: when a fresh worker process joins mid-session, move
			// some fragments onto it (see recovery.go).
			rt.SetJoinHandler(func() { s.handleJoin(rt) })
		}
	}
	return s, nil
}

// Distributed reports whether the session's fragments are hosted by remote
// worker processes.
func (s *Session) Distributed() bool { return s.remotes != nil }

func newWorkers(p *partition.Partitioned) []*worker {
	workers := make([]*worker, len(p.Fragments))
	for i, f := range p.Fragments {
		workers[i] = newWorker(i, f, p.GP)
	}
	return workers
}

// begin registers one unit of in-flight work, failing when the session is
// closed, and returns a snapshot of the current epoch's workers plus the
// epoch itself. The epoch stays pinned — remote worker processes keep its
// residency alive — until the matching done call.
func (s *Session) begin() ([]*worker, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, ErrSessionClosed
	}
	s.inFlight.Add(1)
	s.epochUse[s.epoch]++
	return s.workers, s.epoch, nil
}

// done releases a begin: the epoch pin and the in-flight unit.
func (s *Session) done(epoch int64) {
	s.mu.Lock()
	if s.epochUse[epoch]--; s.epochUse[epoch] <= 0 {
		delete(s.epochUse, epoch)
	}
	s.mu.Unlock()
	s.inFlight.Done()
}

// minEpochInUse returns the oldest epoch an in-flight query still reads (the
// retention floor shipped to remote workers with each update batch). Callers
// hold s.mu.
func (s *Session) minEpochInUse() int64 {
	min := s.epoch
	for e := range s.epochUse {
		if e < min {
			min = e
		}
	}
	return min
}

// Run evaluates one query with the given PIE program over the resident
// fragments of the current epoch, on the session's default execution plane
// (Options.Mode). It is safe to call from many goroutines concurrently; each
// call gets its own contexts, communicator and Stats. Queries overlapping an
// ApplyUpdates keep reading the fragments of the epoch they started on.
func (s *Session) Run(q Query, prog Program) (*Result, error) {
	return s.RunMode(q, prog, s.opts.Mode)
}

// RunMode is Run with a per-query execution-plane override: the same session
// can serve BSP and asynchronous queries concurrently over the same resident
// fragments. ModeAsync requires the program to declare AsyncCapable;
// otherwise ErrAsyncUnsupported is returned.
func (s *Session) RunMode(q Query, prog Program, mode ExecMode) (*Result, error) {
	return s.RunModeCtx(context.Background(), q, prog, mode)
}

// RunCtx is Run bound to a context: cancellation or deadline expiry aborts
// the query at its next superstep (BSP) or round (async) boundary, releasing
// its epoch pin and remote state, and the context's error is returned.
func (s *Session) RunCtx(ctx context.Context, q Query, prog Program) (*Result, error) {
	return s.RunModeCtx(ctx, q, prog, s.opts.Mode)
}

// RunModeCtx is RunMode bound to a context. On distributed sessions with
// Options.Recovery set it is also the fault-tolerant entry point: a run that
// fails because a worker process died (or because fragments moved mid-call)
// triggers fragment reassignment and is restarted — from the last consistent
// cut when one was checkpointed, from PEval otherwise — up to
// Recovery.MaxRetries times. Result.Restarts reports how often that happened.
func (s *Session) RunModeCtx(ctx context.Context, q Query, prog Program, mode ExecMode) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rt, rec := s.recoverySetup(prog, mode)
	var restarts int
	var cut *checkpointCut
	counted := false
	for {
		workers, epoch, err := s.begin()
		if err != nil {
			return nil, err
		}
		if !counted {
			s.queries.Add(1)
			counted = true
		}
		gen := s.topoGen.Load()
		co := &coordinator{opts: s.opts, cluster: s.cluster, workers: workers,
			remotes: s.remotes, epoch: epoch, ctx: ctx, ckpt: rec}
		if cut != nil && cut.epoch == epoch {
			// The cut names the residency epoch it was taken against; resume
			// only while the session still serves it, restart afresh otherwise.
			co.resume = cut
		}
		res, runErr := co.runMode(q, prog, mode)
		s.done(epoch)
		if res != nil {
			res.Restarts = restarts
		}
		if runErr == nil {
			return res, nil
		}
		if rt == nil || restarts >= s.opts.Recovery.maxRetries() || ctx.Err() != nil {
			return res, runErr
		}
		lost := workerLost(runErr)
		if !lost && s.topoGen.Load() == gen {
			// Not a churn failure: a program bug or bad query retries the same
			// way it failed, so surface it.
			return res, runErr
		}
		if lost {
			if rerr := s.recoverLost(rt); rerr != nil {
				return res, errors.Join(runErr, rerr)
			}
		}
		restarts++
		if !s.opts.NoMetrics {
			obsQueryRestarts.Inc()
		}
		cut = rec.take()
	}
}

// Partition exposes the session's current resident partition (fragments, GP,
// assignment) for inspection. After updates, the partition's Source and
// Assignment still describe epoch 0; the fragments and GP are current.
func (s *Session) Partition() *partition.Partitioned {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.part
}

// NumFragments returns the number of resident fragments m.
func (s *Session) NumFragments() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.workers)
}

// Queries reports how many queries the session has served (including ones
// currently in flight).
func (s *Session) Queries() int64 { return s.queries.Load() }

// Updates reports how many update batches the session has absorbed.
func (s *Session) Updates() int64 { return s.updates.Load() }

// Epoch returns the session's current epoch: the number of update batches
// installed so far.
func (s *Session) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Close stops accepting new queries, updates and views, waits for in-flight
// ones to finish and shuts the transport down (for a distributed session
// this is the graceful shutdown of the worker processes). Closing an already
// closed session is a no-op.
func (s *Session) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		return nil
	}
	s.inFlight.Wait()
	return s.cluster.Close()
}
