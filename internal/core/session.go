package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/partition"
)

// ErrSessionClosed is returned by Session.Run after Close.
var ErrSessionClosed = errors.New("core: session closed")

// Session is the partition-once query-serving form of the engine: the graph
// is partitioned once, the fragments are held resident by a persistent
// worker/coordinator cluster, and any number of queries — issued concurrently
// from different goroutines — are evaluated over the shared immutable
// fragments. This is the operating model of Section 3.1 ("the graph is
// partitioned once for all queries Q posed on G"): partitioning and cluster
// setup are paid once and amortized over the whole query stream.
//
// Per-query isolation: every Run creates a query-scoped communicator
// (mailboxes namespaced by a query id, metered into that query's Stats) and
// fresh per-fragment contexts, so concurrent BSP runs never interleave
// envelopes or share mutable state. The cluster-wide parallelism limit is
// shared, mapping all in-flight virtual workers onto the configured number of
// physical workers.
type Session struct {
	opts    Options
	part    *partition.Partitioned
	cluster *mpi.Cluster
	workers []*worker

	mu       sync.Mutex
	closed   bool
	inFlight sync.WaitGroup
	queries  atomic.Int64
}

// NewSession partitions g with the configured strategy and brings up the
// resident worker cluster. The session is ready to serve queries from any
// number of goroutines.
func NewSession(g *graph.Graph, opts Options) (*Session, error) {
	o := opts.withDefaults()
	p := partition.Partition(g, o.Workers, o.Strategy)
	return NewSessionPartitioned(p, opts)
}

// NewSessionPartitioned brings up a session over an already partitioned
// graph. The session serves exactly the fragments of p; opts.Workers is
// ignored in favor of the partition's fragment count.
func NewSessionPartitioned(p *partition.Partitioned, opts Options) (*Session, error) {
	m := len(p.Fragments)
	if m == 0 {
		return nil, errors.New("core: partition has no fragments")
	}
	o := opts
	o.Workers = m
	o = o.withDefaults()

	cluster := mpi.NewCluster(m, nil)
	cluster.LimitParallelism(o.Parallelism)
	workers := make([]*worker, m)
	for i, f := range p.Fragments {
		workers[i] = newWorker(i, f, p.GP)
	}
	return &Session{opts: o, part: p, cluster: cluster, workers: workers}, nil
}

// Run evaluates one query with the given PIE program over the resident
// fragments. It is safe to call from many goroutines concurrently; each call
// gets its own contexts, communicator and Stats.
func (s *Session) Run(q Query, prog Program) (*Result, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	s.inFlight.Add(1)
	s.mu.Unlock()
	defer s.inFlight.Done()
	s.queries.Add(1)

	co := &coordinator{opts: s.opts, cluster: s.cluster, workers: s.workers}
	return co.run(q, prog)
}

// Partition exposes the session's resident partition (fragments, GP,
// assignment) for inspection.
func (s *Session) Partition() *partition.Partitioned { return s.part }

// NumFragments returns the number of resident fragments m.
func (s *Session) NumFragments() int { return len(s.workers) }

// Queries reports how many queries the session has served (including ones
// currently in flight).
func (s *Session) Queries() int64 { return s.queries.Load() }

// Close stops accepting new queries and waits for in-flight ones to finish.
// Closing an already closed session is a no-op.
func (s *Session) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		s.inFlight.Wait()
	}
	return nil
}
