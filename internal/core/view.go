package core

import (
	"fmt"
	"sync"

	"grape/internal/metrics"
	"grape/internal/partition"
)

// View is a materialized query result kept fresh across graph updates: the
// answer-maintenance counterpart of a query run. Materialize evaluates the
// program once and retains the per-fragment contexts (each holding the
// program's partial result Q(Fi)); after every ApplyUpdates batch the engine
// refreshes the view, preferring an incremental maintenance round — the
// program's EvalDelta seeds its bounded IncEval over the fragments whose AFF
// set is non-empty, then the usual fixpoint iteration re-converges the
// border values — and falling back to a full PEval re-run when the program
// has no incremental form for the change (or none at all).
//
// On a distributed session the retained contexts live in the worker
// processes: Materialize pins the converged query state there (remoteQuery
// names it), EvalDelta and the IncEval fixpoint run remotely over it, and
// only the refreshed partial results cross the wire back for Assemble. The
// coordinator-side ctxs hold the decoded partials.
//
// Result is safe to call from any goroutine; it returns the answer as of the
// last installed epoch.
type View struct {
	session *Session
	prog    Program
	query   Query

	mu     sync.RWMutex
	ctxs   []*Context
	result any
	err    error
	stats  ViewStats
	closed bool
	// remoteQuery names the per-fragment view state retained on the worker
	// processes of a distributed session (0 on local sessions). A full
	// recompute replaces it with the new run's query id.
	remoteQuery uint64
	// stale is set when a maintenance round failed: the retained contexts
	// may have missed a batch, so the next round must recompute from scratch
	// instead of trusting them for an incremental round.
	stale bool
}

// ViewStats describes how a view has been maintained so far.
type ViewStats struct {
	// Epoch is the session epoch the view's result corresponds to.
	Epoch int64
	// Maintenances counts maintenance rounds, split into incremental ones
	// (EvalDelta + IncEval fixpoint) and full PEval recomputes.
	Maintenances int64
	Incremental  int64
	Recomputed   int64
}

// Materialize evaluates prog once over the session's resident fragments and
// registers the result as a live view: after every ApplyUpdates batch the
// view's answer is refreshed before ApplyUpdates returns. Close the view to
// stop maintaining it.
//
// On a distributed session the converged per-fragment state stays resident
// in the worker processes and is maintained there; this requires the
// transport to ship update deltas and the peers to host view state, which
// the TCP transport does. Transports without those capabilities return
// ErrDistributedUnsupported.
func (s *Session) Materialize(q Query, prog Program) (*View, error) {
	if s.Distributed() {
		if _, ok := s.cluster.(RemoteUpdateTransport); !ok {
			return nil, fmt.Errorf("%w: transport cannot ship update deltas", ErrDistributedUnsupported)
		}
		for i, pe := range s.remotes {
			if _, ok := pe.(RemoteViewPeer); !ok {
				return nil, fmt.Errorf("%w: peer for fragment %d cannot host view state", ErrDistributedUnsupported, i)
			}
		}
	}
	s.updateMu.Lock()
	defer s.updateMu.Unlock()

	workers, epoch, err := s.begin()
	if err != nil {
		return nil, err
	}
	defer s.done(epoch)
	s.queries.Add(1)

	co := &coordinator{opts: s.opts, cluster: s.cluster, workers: workers,
		remotes: s.remotes, epoch: epoch, retain: s.Distributed()}
	res, err := co.run(q, prog)
	if err != nil {
		return nil, err
	}
	v := &View{session: s, prog: prog, query: q, ctxs: res.Contexts, result: res.Output}
	if s.Distributed() {
		v.remoteQuery = res.queryID
		if err := materializeRemote(s.remotes, v.remoteQuery); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	v.stats.Epoch = s.epoch
	s.views[v] = struct{}{}
	s.mu.Unlock()
	return v, nil
}

// materializeRemote promotes a converged query's retained state into view
// state on every peer, releasing it everywhere if any peer fails.
func materializeRemote(remotes []RemotePeer, query uint64) error {
	for i, pe := range remotes {
		if err := pe.(RemoteViewPeer).Materialize(query); err != nil {
			for _, pe2 := range remotes {
				_ = pe2.End(query)
			}
			return fmt.Errorf("core: retaining view state on fragment %d: %w", i, err)
		}
	}
	return nil
}

// Name returns the program name the view materializes.
func (v *View) Name() string { return v.prog.Name() }

// Result returns the view's current answer and the maintenance error of the
// last batch, if any. The answer always corresponds to a complete epoch.
func (v *View) Result() (any, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.result, v.err
}

// Stats returns the view's maintenance counters.
func (v *View) Stats() ViewStats {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.stats
}

// Close unregisters the view from its session; the result remains readable
// but is no longer maintained. On a distributed session the worker-side view
// state is released. Closing twice is a no-op.
func (v *View) Close() error {
	v.mu.Lock()
	already := v.closed
	v.closed = true
	remoteQuery := v.remoteQuery
	v.remoteQuery = 0
	v.mu.Unlock()
	if already {
		return nil
	}
	s := v.session
	s.mu.Lock()
	delete(s.views, v)
	s.mu.Unlock()
	if remoteQuery != 0 {
		for _, pe := range s.remotes {
			_ = pe.End(remoteQuery)
		}
	}
	return nil
}

// markStale invalidates the view's retained incremental state: recovery and
// rebalancing call it after moving fragments, because the worker-side view
// tasks on a moved rank are gone (dead host) or dropped (released host). The
// next maintenance round recomputes from scratch instead of trusting them.
func (v *View) markStale() {
	v.mu.Lock()
	v.stale = true
	v.mu.Unlock()
}

// maintain refreshes the view for a freshly installed epoch. It is called by
// ApplyUpdates with updateMu held, so maintenance rounds are serialized. It
// reports whether the round was incremental.
func (v *View) maintain(part *partition.Partitioned, workers []*worker, res *partition.UpdateResult, epoch int64) (incremental bool, err error) {
	defer func() {
		v.mu.Lock()
		v.stats.Epoch = epoch
		v.stats.Maintenances++
		if incremental {
			v.stats.Incremental++
		} else {
			v.stats.Recomputed++
		}
		v.err = err
		v.stale = err != nil
		v.mu.Unlock()
	}()

	v.mu.RLock()
	stale := v.stale
	remoteQuery := v.remoteQuery
	v.mu.RUnlock()
	remote := v.session.Distributed()

	co := &coordinator{opts: v.session.opts, cluster: v.session.cluster, workers: workers,
		remotes: v.session.remotes, epoch: epoch}
	if dp, ok := v.prog.(DeltaProgram); ok && !stale {
		// Rebind the retained contexts to the new epoch's fragments. The
		// program state in ctx.State carries over: that is the whole point.
		// (On a distributed session the worker-side contexts were rebound
		// when the epoch was installed; these coordinator-side ones hold the
		// partial results Assemble reads.)
		for i, ctx := range v.ctxs {
			ctx.Fragment = part.Fragments[i]
			ctx.GP = part.GP
		}
		out, incErr := co.maintainIncremental(dp, v.ctxs, v.query, res, remoteQuery)
		switch incErr {
		case nil:
			v.mu.Lock()
			v.result = out
			v.mu.Unlock()
			return true, nil
		case errNotAbsorbable:
			// fall through to the full recompute
		default:
			// The incremental round failed midway; the contexts may be
			// inconsistent, so recompute from scratch rather than surfacing
			// a broken answer.
		}
	}

	co.retain = remote
	full, runErr := co.run(v.query, v.prog)
	if runErr != nil {
		return false, fmt.Errorf("core: view %s full recompute: %w", v.prog.Name(), runErr)
	}
	if remote {
		// The fresh run's retained state becomes the view state; the previous
		// generation is released.
		if err := materializeRemote(v.session.remotes, full.queryID); err != nil {
			return false, err
		}
	}
	v.mu.Lock()
	if v.closed {
		// The view was closed while this round ran (Close already released
		// the previous generation): drop the fresh state instead of adopting
		// it, or nothing would ever End it.
		v.mu.Unlock()
		if remote {
			for _, pe := range v.session.remotes {
				_ = pe.End(full.queryID)
			}
		}
		return false, nil
	}
	v.ctxs = full.Contexts
	v.result = full.Output
	if remote {
		v.remoteQuery = full.queryID
	}
	v.mu.Unlock()
	if remote && remoteQuery != 0 {
		for _, pe := range v.session.remotes {
			_ = pe.End(remoteQuery)
		}
	}
	return false, nil
}

// maintainIncremental runs one maintenance round: EvalDelta on every
// fragment with a non-empty AFF set (superstep 1 of the round), then the
// IncEval fixpoint iteration, then Assemble. It returns errNotAbsorbable if
// any fragment's EvalDelta declines the change. Maintenance always runs on
// the BSP plane — a round mutates the view's retained contexts, and the
// deterministic superstep schedule is what keeps a failed round diagnosable.
//
// With remote peers, remoteQuery names the worker-side view state: EvalDelta
// and IncEval run there, and the refreshed partial results are pulled back
// into ctxs before Assemble.
func (c *coordinator) maintainIncremental(dp DeltaProgram, ctxs []*Context, q Query,
	res *partition.UpdateResult, remoteQuery uint64) (any, error) {
	m := len(c.workers)
	stats := &metrics.Stats{Engine: "GRAPE", Query: dp.Name() + "+maintain", Workers: m}
	stats.SetNoMetrics(c.opts.NoMetrics)
	timer := metrics.StartTimer()
	defer func() { stats.Elapsed = timer.Stop(); stats.FlushObs() }()
	comm := c.cluster.NewComm(stats)
	if !c.opts.DisableGrouping {
		comm.EnableCombining(tagUpdates, dp.Aggregate)
	}

	tasks := make([]*task, m)
	for i, w := range c.workers {
		tasks[i] = w.taskWith(ctxs[i], dp, comm, c.opts)
		if c.remotes != nil {
			tasks[i].remote = c.remotes[i]
			tasks[i].queryID = remoteQuery
			tasks[i].epoch = c.epoch
		}
	}

	// Maintenance rounds have no failure injection: injected failures model
	// query-superstep crashes and are scoped to query runs.
	runStep := func(superstep int, body func(w int) error) error {
		_, err := c.cluster.BarrierFor(func(int) bool { return true }, 0, func(w int) error {
			return safeCall(func() error { return body(w) })
		})
		return err
	}

	// Superstep 1: EvalDelta over the affected fragments only.
	superstep := 1
	stats.BeginSuperstep()
	var mu sync.Mutex
	absorbed := true
	err := runStep(superstep, func(w int) error {
		ch := res.Changes[w]
		if ch == nil {
			return nil // AFF is empty here: this fragment only reacts to messages
		}
		t := tasks[w]
		if t.remote != nil {
			ok, envs, derr := t.remote.(RemoteViewPeer).EvalDelta(t.queryID, superstep, ch.Ops, ch.NewInBorder)
			if derr != nil {
				return fmt.Errorf("core: remote EvalDelta on fragment %d: %w", w, derr)
			}
			if !ok {
				mu.Lock()
				absorbed = false
				mu.Unlock()
				return nil
			}
			t.inject(envs)
			return nil
		}
		t.ctx.Superstep = superstep
		ok, derr := dp.EvalDelta(t.ctx, FragmentDelta{Ops: ch.Ops, OldGraph: ch.OldGraph, NewInBorder: ch.NewInBorder})
		if derr != nil {
			return fmt.Errorf("core: EvalDelta on fragment %d: %w", w, derr)
		}
		if !ok {
			mu.Lock()
			absorbed = false
			mu.Unlock()
			return nil
		}
		t.route()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !absorbed {
		return nil, errNotAbsorbable
	}

	resTrack := &Result{Stats: stats, Contexts: ctxs}
	bsp := &bspRunner{opts: c.opts, cluster: c.cluster}
	if err := bsp.iterate(tasks, comm, stats, resTrack, runStep, superstep); err != nil {
		return nil, err
	}
	if c.remotes != nil {
		rp, ok := dp.(RemoteProgram)
		if !ok {
			return nil, fmt.Errorf("core: %s has no wire codecs for view maintenance", dp.Name())
		}
		if err := c.fetchPartials(tasks, rp, remoteQuery); err != nil {
			return nil, err
		}
	}
	out, err := dp.Assemble(q, ctxs)
	if err != nil {
		return nil, fmt.Errorf("core: Assemble after maintenance: %w", err)
	}
	return out, nil
}
