package core

import (
	"sort"

	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/par"
	"grape/internal/partition"
)

// VarKey identifies one update parameter: a status variable attached to a
// vertex, optionally refined by an algorithm-specific sub-key (for example
// the query-node index of a simulation variable x_(u,v)).
type VarKey struct {
	Vertex graph.VertexID
	Key    int64
}

// Context is the per-fragment execution context handed to PEval and IncEval.
// It exposes the fragment, the fragmentation graph and the query, stores the
// program's partial result (State), and tracks the update parameters Ci.x̄
// whose changes the engine turns into designated messages.
type Context struct {
	// Worker is the fragment/worker index i in [0, m).
	Worker int
	// Fragment is Fi: the local subgraph plus border copies.
	Fragment *partition.Fragment
	// GP is the fragmentation graph, available for programs that want to
	// reason about vertex placement (most do not need it).
	GP *partition.FragGraph
	// Query is the query Q being evaluated.
	Query Query
	// Superstep is the current superstep number (1 for PEval).
	Superstep int
	// State holds the program's partial result Q(Fi). It is owned entirely
	// by the program; the engine never inspects it.
	State any

	vars    map[VarKey]mpi.Update
	dirty   map[VarKey]bool
	kvOut   []mpi.KeyValue
	rawOut  []rawMessage
	updates int64 // total SetVar calls that changed a value, for reporting

	pool *par.Pool // sweep pool for ParallelCapable programs; nil = sequential
}

// Pool returns the intra-fragment sweep pool the engine granted this
// evaluation: non-nil only when Options.Parallelism asked for one and the
// program declared ParallelCapable. The nil pool is valid and sequential, so
// kernels can pass it down unconditionally. Context methods (SetVar, Declare,
// EmitKeyValue, ...) are NOT safe for concurrent use — programs must confine
// them to the merge phase after a sweep joins.
func (c *Context) Pool() *par.Pool { return c.pool }

// RawMessageVertex is the Vertex value carried by raw designated messages
// when they are delivered to IncEval: a program that uses SendToWorker
// recognizes these updates by this sentinel and reads their Data payload.
const RawMessageVertex = int64(-1)

type rawMessage struct {
	dst  int
	data []byte
}

func newContext(worker int, frag *partition.Fragment, gp *partition.FragGraph, q Query) *Context {
	return &Context{
		Worker:   worker,
		Fragment: frag,
		GP:       gp,
		Query:    q,
		vars:     make(map[VarKey]mpi.Update),
		dirty:    make(map[VarKey]bool),
	}
}

// Declare registers an update parameter with its initial value without
// marking it dirty. PEval uses it for the message preamble ("an integer
// variable dist(s,v) is declared for each node v, initially ∞"). Declaring an
// already-declared parameter is a no-op, so PEval may safely be re-run over a
// fragment whose variables already carry refined values (the GRAPE_NI mode).
func (c *Context) Declare(v graph.VertexID, key int64, value float64, data []byte) {
	k := VarKey{Vertex: v, Key: key}
	if _, ok := c.vars[k]; ok {
		return
	}
	c.vars[k] = mpi.Update{Vertex: int64(v), Key: key, Value: value, Data: data}
}

// SetVar records a new value for an update parameter. If the value differs
// from the currently stored one the parameter is marked dirty, and the change
// will be shipped to the other fragments holding the variable at the end of
// the superstep. Undeclared parameters are created implicitly.
func (c *Context) SetVar(v graph.VertexID, key int64, value float64, data []byte) {
	k := VarKey{Vertex: v, Key: key}
	nu := mpi.Update{Vertex: int64(v), Key: key, Value: value, Data: data}
	if old, ok := c.vars[k]; ok && old.Value == value && bytesEqual(old.Data, data) {
		return
	}
	c.vars[k] = nu
	c.dirty[k] = true
	c.updates++
}

// MarkDirty re-marks an already declared update parameter dirty, so its
// current value is re-shipped at the end of the superstep even though it did
// not change. View maintenance uses it when a vertex gains a new mirror
// fragment that has never seen the value. It reports whether the parameter
// exists.
func (c *Context) MarkDirty(v graph.VertexID, key int64) bool {
	k := VarKey{Vertex: v, Key: key}
	if _, ok := c.vars[k]; !ok {
		return false
	}
	c.dirty[k] = true
	return true
}

// Var returns the current value of an update parameter and whether it has
// been declared.
func (c *Context) Var(v graph.VertexID, key int64) (mpi.Update, bool) {
	u, ok := c.vars[VarKey{Vertex: v, Key: key}]
	return u, ok
}

// VarValue returns the numeric value of an update parameter, or def if the
// parameter has not been declared.
func (c *Context) VarValue(v graph.VertexID, key int64, def float64) float64 {
	if u, ok := c.Var(v, key); ok {
		return u.Value
	}
	return def
}

// Vars returns all declared update parameters in deterministic order. It is
// mostly useful to Assemble implementations and tests.
func (c *Context) Vars() []mpi.Update {
	keys := make([]VarKey, 0, len(c.vars))
	for k := range c.vars {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Vertex != keys[j].Vertex {
			return keys[i].Vertex < keys[j].Vertex
		}
		return keys[i].Key < keys[j].Key
	})
	out := make([]mpi.Update, len(keys))
	for i, k := range keys {
		out[i] = c.vars[k]
	}
	return out
}

// EmitKeyValue emits a key-value message (MapReduce simulation mode). The
// engine groups emitted pairs by key at the coordinator and delivers them to
// the worker owning the key in the next superstep.
func (c *Context) EmitKeyValue(key string, value []byte) {
	c.kvOut = append(c.kvOut, mpi.KeyValue{Key: key, Value: value})
}

// SendToWorker ships an opaque designated message to another worker
// (Section 3.5: "designated messages from one worker to another"). The
// payload is delivered to the destination's IncEval in the next superstep as
// an update whose Vertex equals RawMessageVertex and whose Data holds the
// payload. Messages to out-of-range workers or to the sender itself are
// dropped.
func (c *Context) SendToWorker(dst int, data []byte) {
	if dst == c.Worker || dst < 0 || dst >= c.GP.NumFragments() {
		return
	}
	c.rawOut = append(c.rawOut, rawMessage{dst: dst, data: data})
}

// LocalUpdates reports how many SetVar calls changed a value over the whole
// run, a cheap proxy for the amount of local work used in tests.
func (c *Context) LocalUpdates() int64 { return c.updates }

// applyIncoming merges incoming updates into the context's variables using
// the program's aggregation policy. It returns the updates that actually
// changed a local value — the Mi handed to IncEval. Incoming changes are not
// marked dirty (the coordinator already knows them); only changes made
// subsequently by IncEval are shipped back.
func (c *Context) applyIncoming(incoming []mpi.Update, agg func(existing, incoming mpi.Update) mpi.Update) []mpi.Update {
	var accepted []mpi.Update
	for _, in := range incoming {
		k := VarKey{Vertex: graph.VertexID(in.Vertex), Key: in.Key}
		old, ok := c.vars[k]
		if !ok {
			c.vars[k] = in
			accepted = append(accepted, in)
			continue
		}
		merged := agg(old, in)
		if merged.Value != old.Value || !bytesEqual(merged.Data, old.Data) || merged.Key != old.Key {
			c.vars[k] = merged
			accepted = append(accepted, merged)
		}
	}
	return accepted
}

// takeDirty returns the dirty update parameters restricted to border vertices
// (the only ones other fragments can observe) and clears the dirty set.
func (c *Context) takeDirty() []mpi.Update {
	if len(c.dirty) == 0 {
		return nil
	}
	keys := make([]VarKey, 0, len(c.dirty))
	for k := range c.dirty {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Vertex != keys[j].Vertex {
			return keys[i].Vertex < keys[j].Vertex
		}
		return keys[i].Key < keys[j].Key
	})
	var out []mpi.Update
	for _, k := range keys {
		if c.GP.IsBorder(k.Vertex) {
			out = append(out, c.vars[k])
		}
	}
	c.dirty = make(map[VarKey]bool)
	return out
}

// takeKV returns and clears the key-value messages emitted this superstep.
func (c *Context) takeKV() []mpi.KeyValue {
	out := c.kvOut
	c.kvOut = nil
	return out
}

// takeRaw returns and clears the raw designated messages emitted this
// superstep.
func (c *Context) takeRaw() []rawMessage {
	out := c.rawOut
	c.rawOut = nil
	return out
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
