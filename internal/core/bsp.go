package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"grape/internal/metrics"
	"grape/internal/mpi"
)

// stepFn executes one superstep's local-computation phase across all
// workers: body(w) runs for every worker behind a barrier. Implementations
// differ in failure handling — query supersteps arbitrate injected worker
// failures, view-maintenance rounds do not.
type stepFn func(superstep int, body func(w int) error) error

// bspRunner is the bulk-synchronous execution plane (Section 3.1): PEval as
// superstep 1, then IncEval supersteps over messages delivered at the
// superstep boundary, until no fragment has pending messages — the
// simultaneous fixpoint of Section 4.1. Runs are deterministic regardless of
// goroutine scheduling, every PIE program is supported, and the arbitrator
// recovers injected worker failures between barriers.
type bspRunner struct {
	opts    Options
	cluster mpi.Transport
	// ctx, when non-nil, cancels the run at the next superstep boundary.
	ctx context.Context
	// ckpt, when non-nil, takes a consistent cut of the run every few
	// supersteps (query runs on distributed sessions with Recovery enabled;
	// see recovery.go). resume, when non-nil, restarts the run from such a
	// cut instead of running PEval.
	ckpt   *ckptRecorder
	resume *checkpointCut
}

func (r *bspRunner) mode() ExecMode { return ModeBSP }

func (r *bspRunner) run(tasks []*task, comm *mpi.Comm, stats *metrics.Stats, res *Result) error {
	runStep := r.stepFunc(len(tasks), stats, res)
	if r.resume != nil {
		return r.restart(tasks, comm, stats, res, runStep)
	}

	// Superstep 1: partial evaluation on every fragment.
	if r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			return err
		}
	}
	superstep := 1
	stats.BeginSuperstep()
	for w := range tasks {
		stats.AddWorkerRound(w)
	}
	if err := runStep(superstep, func(w int) error { return tasks[w].peval(superstep) }); err != nil {
		return err
	}
	return r.iterate(tasks, comm, stats, res, runStep, superstep)
}

// restart resumes a run from a consistent cut instead of evaluating from
// scratch: every rank's checkpointed state is reinstalled in place of PEval
// (the restore binds a fresh worker-side task under this run's query id), the
// cut's undelivered messages are replayed into this run's communicator, and
// the superstep loop continues exactly where the cut was taken. Only reached
// on distributed sessions whose peers checkpoint, so the type assertions
// cannot fail.
func (r *bspRunner) restart(tasks []*task, comm *mpi.Comm, stats *metrics.Stats,
	res *Result, runStep stepFn) error {
	cut := r.resume
	failed, err := r.cluster.BarrierFor(func(int) bool { return true }, 0, func(w int) error {
		t := tasks[w]
		return t.remote.(RemoteCheckpointPeer).Restore(t.queryID, t.epoch, t.progName, t.queryBytes, cut.states[w])
	})
	if err != nil {
		return fmt.Errorf("core: restoring checkpoint on fragment %d: %w", failed, err)
	}
	for _, envs := range cut.inboxes {
		for _, e := range envs {
			comm.Send(e.From, e.To, e.Tag, e.Payload)
		}
	}
	// iterate delivers the replayed mailboxes as superstep cut.superstep and
	// carries on to the fixpoint.
	return r.iterate(tasks, comm, stats, res, runStep, cut.superstep-1)
}

// stepFunc builds the query-superstep executor: injected failures are
// detected like missed heart-beats — the crashed worker's work unit is not
// executed, and after the barrier the arbitrator transfers every lost work
// unit to a standby worker (re-running it against the surviving in-memory
// fragment state). Each worker's barrier-wait tail is metered as idle time,
// which is what the straggler cost of BSP looks like in Stats.
func (r *bspRunner) stepFunc(m int, stats *metrics.Stats, res *Result) stepFn {
	tr := stats.Trace()
	return func(superstep int, body func(w int) error) error {
		phase := "PEval"
		if superstep > 1 {
			phase = fmt.Sprintf("IncEval s%d", superstep)
		}
		compute := make([]time.Duration, m)
		ends := make([]time.Time, m)
		var crashMu sync.Mutex
		var crashed []int
		stepTimer := metrics.StartTimer()
		_, err := r.cluster.BarrierFor(func(int) bool { return true }, 0, func(w int) error {
			if r.opts.FailureInjector != nil && r.opts.FailureInjector(superstep, w) {
				crashMu.Lock()
				crashed = append(crashed, w)
				crashMu.Unlock()
				return nil
			}
			start := time.Now()
			t := metrics.StartTimer()
			defer func() {
				compute[w] = t.Stop()
				ends[w] = time.Now()
				tr.Add(phase, w, start, compute[w])
			}()
			return safeCall(func() error { return body(w) })
		})
		if err != nil {
			return err
		}
		sort.Ints(crashed)
		for _, w := range crashed {
			if res.RecoveredWorkers >= r.opts.MaxRecoveries {
				return fmt.Errorf("core: worker %d failed and recovery budget exhausted", w)
			}
			res.RecoveredWorkers++
			start := time.Now()
			t := metrics.StartTimer()
			rerr := safeCall(func() error { return body(w) })
			compute[w] += t.Stop()
			tr.Add(phase+" (recovered)", w, start, time.Since(start))
			if rerr != nil {
				return rerr
			}
		}
		stepDur := stepTimer.Stop()
		stepEnd := time.Now()
		var barrierWait time.Duration
		for w := 0; w < m; w++ {
			idle := stepDur - compute[w]
			stats.AddWorkerIdle(w, idle)
			if idle > 0 {
				barrierWait += idle
				if !ends[w].IsZero() && stepEnd.After(ends[w]) {
					tr.Add("barrier", w, ends[w], stepEnd.Sub(ends[w]))
				}
			}
		}
		if !r.opts.NoMetrics {
			obsSupersteps.Inc()
			obsSuperstepSeconds.Observe(stepDur.Seconds())
			obsBarrierWaitSeconds.Add(barrierWait.Seconds())
		}
		return nil
	}
}

// iterate drives the iterative supersteps — incremental evaluation until no
// fragment has pending messages. It is shared by query runs (after PEval)
// and by view maintenance rounds (after EvalDelta), which pass their own
// stepFn. superstep is the number of the superstep that just ran.
func (r *bspRunner) iterate(tasks []*task, comm *mpi.Comm, stats *metrics.Stats,
	res *Result, runStep stepFn, superstep int) error {
	m := len(tasks)
	prog := tasks[0].prog
	for {
		if r.ctx != nil {
			if err := r.ctx.Err(); err != nil {
				return err
			}
		}
		if r.opts.CoordinatorFailureAt > 0 && superstep == r.opts.CoordinatorFailureAt {
			// The standby coordinator S'c takes over; the coordinator's only
			// state is termination detection, which is recomputed from the
			// mailboxes, so the run continues seamlessly.
			res.CoordinatorFailovers++
		}
		if comm.TotalPending() == 0 {
			return nil
		}
		superstep++
		if superstep > r.opts.MaxSupersteps {
			return fmt.Errorf("core: %s did not converge within %d supersteps", prog.Name(), r.opts.MaxSupersteps)
		}
		stats.BeginSuperstep()
		// Deliver all mailboxes before the barrier so that messages sent
		// during this superstep only become visible in the next one — the
		// BSP synchronization of Section 3.1, which also makes runs
		// deterministic regardless of goroutine scheduling.
		inboxes := make([][]mpi.Envelope, m)
		for w := 0; w < m; w++ {
			inboxes[w] = comm.Deliver(w)
			if len(inboxes[w]) > 0 {
				stats.AddWorkerRound(w)
			}
		}
		// Consistent cut: with the mailboxes for this superstep materialized
		// here and every fragment's state still "after the previous superstep",
		// snapshotting both captures the whole computation.
		if r.ckpt != nil && r.ckpt.due(superstep) {
			r.ckpt.capture(tasks, superstep, inboxes)
		}
		if err := runStep(superstep, func(w int) error { return tasks[w].incremental(superstep, inboxes[w]) }); err != nil {
			return err
		}
	}
}
