package core

// Dynamic-graph updates: the maintenance half of the engine (the paper's
// Section 3.4 "GRAPE handles dynamic graphs"). A batch of graph.Update ops is
// routed to the owning fragments by internal/partition, the affected
// fragments are rebuilt as a new epoch, and every materialized view is
// refreshed — incrementally, via the program's IncEval seeded by EvalDelta,
// when the program can absorb the change; by a full PEval re-run otherwise.
// Maintenance rounds are a distinct execution mode from query rounds: they
// reuse the per-fragment state of the view's last evaluation instead of
// starting from scratch, so their cost is proportional to the affected area
// AFF rather than to the graph.
//
// On a distributed session the batch is routed exactly the same way — the
// coordinator keeps a resident replica of every fragment, so partition
// maintenance is local — and the rebuilt fragments plus the new
// fragmentation graph are then shipped to the worker processes as the next
// epoch before the coordinator installs it (see RemoteUpdateTransport in
// remote.go). View maintenance runs its EvalDelta seeding and IncEval
// fixpoint on the workers' retained contexts.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/partition"
)

// ErrDistributedUnsupported is returned by graph updates and materialized
// views on distributed sessions whose transport cannot ship update deltas
// (no RemoteUpdateTransport) or whose peers cannot host view state (no
// RemoteViewPeer). The TCP transport in internal/mpi/net supports both.
var ErrDistributedUnsupported = errors.New("core: operation not supported on this distributed transport")

// FragmentDelta describes what one update batch did to one fragment. It is
// handed to DeltaProgram.EvalDelta during view maintenance; ctx.Fragment
// already reflects the post-batch fragment when EvalDelta runs.
type FragmentDelta struct {
	// Ops are the update ops applied to this fragment's local graph, in
	// batch order. Empty when only border metadata changed.
	Ops []graph.Update
	// OldGraph is the fragment graph before the batch.
	OldGraph *graph.Graph
	// NewInBorder lists owned vertices that gained a new mirror fragment in
	// this batch. Their current values must be re-shipped (ctx.MarkDirty)
	// because the new mirrors have never seen them.
	NewInBorder []graph.VertexID
}

// DeltaProgram is the optional extension a PIE program implements to let
// materialized views be maintained incrementally under graph updates. Given
// the per-fragment state left behind by the view's previous evaluation
// (ctx.State) and the batch's changes to this fragment, EvalDelta seeds the
// incremental re-evaluation: it updates local state with the program's
// bounded incremental algorithm (internal/inc) and marks changed or newly
// mirrored border variables so the engine ships them. The engine then
// iterates IncEval supersteps to the simultaneous fixpoint, exactly as in a
// query run.
//
// EvalDelta returns absorbed=false when the change is outside the program's
// incremental class (for example an edge deletion for SSSP, whose distances
// only shrink): the engine falls back to a full PEval re-run of the view.
// Programs that do not implement DeltaProgram always fall back.
type DeltaProgram interface {
	Program
	EvalDelta(ctx *Context, d FragmentDelta) (absorbed bool, err error)
}

// errNotAbsorbable signals internally that a maintenance round bailed out to
// a full recompute.
var errNotAbsorbable = errors.New("core: delta not absorbable incrementally")

// UpdateStats reports what one ApplyUpdates batch did.
type UpdateStats struct {
	// Epoch is the epoch installed by the batch.
	Epoch int64
	// Ops is the number of ops in the batch; Applied counts the ones that
	// had an effect (removals of missing vertices/edges do not).
	Ops, Applied int
	// AffectedFragments is how many fragments were touched.
	AffectedFragments int
	// ViewsMaintained counts maintained views, split into incrementally
	// maintained ones and full recomputes.
	ViewsMaintained int
	Incremental     int
	Recomputed      int
	// PartitionElapsed is the time spent rebuilding fragments and borders;
	// ShipElapsed the time spent shipping the delta to remote worker
	// processes (zero on in-process sessions); MaintainElapsed the time
	// spent refreshing views.
	PartitionElapsed time.Duration
	ShipElapsed      time.Duration
	MaintainElapsed  time.Duration
}

// ApplyUpdates absorbs a batch of graph updates: it routes each op to the
// owning fragment, rebuilds the affected fragments and their border/mirror
// sets, installs the result as the session's next epoch, and refreshes every
// materialized view. Queries in flight keep reading the previous epoch's
// fragments; queries started after ApplyUpdates returns see the new one.
//
// Batches are serialized with respect to each other and to Materialize.
// Updates proceed concurrently with queries. An error from a view's
// maintenance does not abort the batch: the epoch is still installed, the
// remaining views are still refreshed, and the collected errors are
// returned alongside the stats.
//
// On a distributed session the rebuilt fragments are shipped to the worker
// processes before the new epoch is installed. A shipping failure aborts the
// batch — and, because some processes may already have installed the epoch
// this session never will, permanently disables further updates on the
// session (fail-stop): later ApplyUpdates calls return the recorded error,
// while queries keep working against the last fully installed epoch.
//
// With Options.Recovery set, a ship that failed only because worker
// processes died is not fail-stop: every error-free survivor installed the
// epoch, so the dead processes' fragments are reassigned to survivors at the
// new epoch and the batch completes normally.
func (s *Session) ApplyUpdates(batch []graph.Update) (*UpdateStats, error) {
	return s.ApplyUpdatesCtx(context.Background(), batch)
}

// ApplyUpdatesCtx is ApplyUpdates bound to a context. Cancellation is
// honored up to the point the delta ships to the worker processes; past
// that the batch always installs (aborting mid-install would diverge the
// cluster's epochs).
func (s *Session) ApplyUpdatesCtx(ctx context.Context, batch []graph.Update) (*UpdateStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var updater RemoteUpdateTransport
	if s.Distributed() {
		u, ok := s.cluster.(RemoteUpdateTransport)
		if !ok {
			return nil, fmt.Errorf("%w: transport cannot ship update deltas", ErrDistributedUnsupported)
		}
		updater = u
	}
	s.updateMu.Lock()
	defer s.updateMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if broken := s.updatesBroken; broken != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: updates disabled after a failed delta ship: %w", broken)
	}
	s.inFlight.Add(1)
	part := s.part
	nextEpoch := s.epoch + 1
	floor := s.minEpochInUse()
	s.mu.Unlock()
	defer s.inFlight.Done()

	partTimer := metrics.StartTimer()
	newPart, res := part.ApplyUpdates(batch, s.place)
	workers := newWorkers(newPart)
	partElapsed := partTimer.Stop()

	var shipElapsed time.Duration
	if updater != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Ship the delta — the rebuilt fragments plus the new fragmentation
		// graph — before installing the epoch locally. Queries in flight keep
		// naming their pinned epochs, which the workers retain at least until
		// the floor passes them.
		changed := make([]*partition.Fragment, 0, len(res.Changes))
		for _, f := range res.AffectedFragments() {
			changed = append(changed, newPart.Fragments[f])
		}
		shipTimer := metrics.StartTimer()
		err := updater.ApplyUpdate(nextEpoch, floor, newPart.GP, changed)
		shipElapsed = shipTimer.Stop()
		if err != nil && !s.recoverShip(err, nextEpoch, newPart) {
			// A partial ship is unrecoverable: some processes may have
			// installed the epoch this session never will. Fail this batch
			// and every later one with an explicit error instead of letting
			// a retried epoch number diverge across the cluster.
			err = fmt.Errorf("core: shipping update delta for epoch %d: %w", nextEpoch, err)
			s.mu.Lock()
			if s.updatesBroken == nil {
				s.updatesBroken = err
			}
			s.mu.Unlock()
			return nil, err
		}
	}

	s.mu.Lock()
	s.part = newPart
	s.workers = workers
	s.epoch++
	epoch := s.epoch
	views := make([]*View, 0, len(s.views))
	for v := range s.views {
		views = append(views, v)
	}
	s.mu.Unlock()
	s.updates.Add(1)

	stats := &UpdateStats{
		Epoch:             epoch,
		Ops:               len(batch),
		Applied:           res.Applied,
		AffectedFragments: len(res.Changes),
		PartitionElapsed:  partElapsed,
		ShipElapsed:       shipElapsed,
	}

	if !s.opts.NoMetrics {
		obsEpochsInstalled.Inc()
		obsUpdateOpsApplied.Add(float64(res.Applied))
	}

	maintainTimer := metrics.StartTimer()
	var errs []error
	for _, v := range views {
		inc, err := v.maintain(newPart, workers, res, epoch)
		stats.ViewsMaintained++
		kind := "recompute"
		if inc {
			stats.Incremental++
			kind = "incremental"
		} else {
			stats.Recomputed++
		}
		if !s.opts.NoMetrics {
			obsViewMaintenance.With(kind).Inc()
		}
		if err != nil {
			errs = append(errs, err)
		}
	}
	stats.MaintainElapsed = maintainTimer.Stop()
	return stats, errors.Join(errs...)
}

// recoverShip tries to absorb a failed delta ship: when recovery is enabled
// and every leaf of the error says a worker process died, the error-free
// survivors all installed the epoch — so re-homing the dead processes' ranks
// (shipping the post-batch fragments at the new epoch) makes the cluster
// whole and the batch can proceed. Reports whether it did; callers fall back
// to fail-stop otherwise. Called with updateMu held.
func (s *Session) recoverShip(shipErr error, epoch int64, part *partition.Partitioned) bool {
	if s.opts.Recovery == nil || !allWorkerLost(shipErr) {
		return false
	}
	rt, ok := s.cluster.(RemoteRecoveryTransport)
	if !ok {
		return false
	}
	lost := rt.LostFragments()
	if len(lost) == 0 {
		return false
	}
	if err := rt.Reassign(epoch, part.GP, fragmentsByRank(part.Fragments, lost)); err != nil {
		return false
	}
	s.topoGen.Add(1)
	s.mu.Lock()
	views := make([]*View, 0, len(s.views))
	for v := range s.views {
		views = append(views, v)
	}
	s.mu.Unlock()
	// The dead hosts took their retained view state with them: force full
	// recomputes in the maintenance pass that follows.
	for _, v := range views {
		v.markStale()
	}
	if !s.opts.NoMetrics {
		obsWorkerRecoveries.Inc()
	}
	return true
}
