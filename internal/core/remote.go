package core

// Distributed execution: the engine side of the multi-process transport.
//
// A distributed session keeps the coordinator's runner planes (bsp.go,
// async.go) and mailbox communicators unchanged and moves only the
// evaluation calls across the process boundary: for a fragment hosted
// remotely, task.peval/task.incremental forward the call through a
// RemotePeer, and the envelopes the remote PEval/IncEval produced are
// injected back into the query's communicator. The worker process runs a
// WorkerHost, which executes the exact same task code path over its resident
// fragments — one engine, two deployments.
//
// Programs opt into distribution by implementing RemoteProgram: the query
// and the per-fragment partial result must cross the wire, so the program
// supplies their codecs (the engine cannot serialize the opaque ctx.State).

import (
	"fmt"
	"sync"

	"grape/internal/mpi"
	"grape/internal/partition"
)

// RemotePeer is the coordinator's handle to one fragment hosted in another
// process. The TCP transport's net.Peer implements it; tests use in-process
// fakes. Calls for one peer are issued sequentially by the runner planes
// (BSP barriers and the async per-fragment loop both serialize per rank),
// but different peers are called concurrently.
type RemotePeer interface {
	// PEval runs partial evaluation on the remote fragment and returns the
	// designated messages it routed.
	PEval(query uint64, prog string, queryBytes []byte, superstep int,
		disableIncEval, disableGrouping bool) ([]mpi.Envelope, error)
	// IncEval delivers envelopes to the remote fragment, runs incremental
	// evaluation and returns the designated messages it routed.
	IncEval(query uint64, superstep int, envs []mpi.Envelope) ([]mpi.Envelope, error)
	// Fetch returns the fragment's encoded partial result (RemoteProgram's
	// EncodePartial) once the fixpoint is reached.
	Fetch(query uint64) ([]byte, error)
	// End releases the remote per-query state.
	End(query uint64) error
}

// RemoteProgram is the capability a PIE program declares to run on
// distributed sessions: codecs for the query value shipped to workers and
// for the per-fragment partial result shipped back for Assemble. Programs
// without it are rejected by distributed sessions with a clear error.
type RemoteProgram interface {
	Program
	// EncodeQuery serializes the query value for the wire.
	EncodeQuery(q Query) ([]byte, error)
	// DecodeQuery reconstructs the query value on the worker.
	DecodeQuery(data []byte) (Query, error)
	// EncodePartial serializes the fragment's partial result Q(Fi) from the
	// context after the run converged.
	EncodePartial(ctx *Context) ([]byte, error)
	// DecodePartial installs a shipped partial result into a
	// coordinator-side context so Assemble can combine it.
	DecodePartial(ctx *Context, data []byte) error
}

// SupportsRemote reports whether the program can run on distributed
// sessions.
func SupportsRemote(prog Program) bool {
	_, ok := prog.(RemoteProgram)
	return ok
}

// Resolver maps a program name from the wire to a program instance; the
// worker process supplies one (typically pie.ByName) so the engine stays
// independent of the program catalog.
type Resolver func(name string) (Program, bool)

// collector is the sender used on worker hosts: it accumulates the
// envelopes a task routes so the transport can carry them back to the
// coordinator in the call's reply.
type collector struct {
	envs []mpi.Envelope
}

func (c *collector) Send(from, to int, tag string, payload []byte) {
	c.envs = append(c.envs, mpi.Envelope{From: from, To: to, Tag: tag, Payload: payload})
}

func (c *collector) take() []mpi.Envelope {
	out := c.envs
	c.envs = nil
	return out
}

// WorkerHost executes evaluation calls over the fragments resident in a
// worker process. It implements the handler contract of the mpi/net worker
// loop (structurally — core does not import the transport): Setup installs
// the shipped fragments, then PEval/IncEval/Fetch/End serve per-query calls.
// Calls for distinct fragments run concurrently; calls for one fragment are
// issued sequentially by the coordinator.
type WorkerHost struct {
	resolve Resolver

	mu      sync.Mutex
	workers map[int]*worker
	tasks   map[hostKey]*task
}

type hostKey struct {
	query uint64
	rank  int
}

// NewWorkerHost creates a host that resolves wire program names through
// resolve.
func NewWorkerHost(resolve Resolver) *WorkerHost {
	return &WorkerHost{
		resolve: resolve,
		workers: make(map[int]*worker),
		tasks:   make(map[hostKey]*task),
	}
}

// Setup installs the fragments this process hosts and the fragmentation
// graph they route through. It may be called again on a fresh handshake,
// replacing the previous residency.
func (h *WorkerHost) Setup(frags []*partition.Fragment, gp *partition.FragGraph) error {
	if gp == nil {
		return fmt.Errorf("core: worker host: nil fragmentation graph")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.workers = make(map[int]*worker, len(frags))
	h.tasks = make(map[hostKey]*task)
	for _, f := range frags {
		if f == nil {
			return fmt.Errorf("core: worker host: nil fragment")
		}
		h.workers[f.ID] = newWorker(f.ID, f, gp)
	}
	return nil
}

// Ranks returns the fragment ranks this host currently serves, unordered.
func (h *WorkerHost) Ranks() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, 0, len(h.workers))
	for r := range h.workers {
		out = append(out, r)
	}
	return out
}

// PEval creates the per-query task for the fragment and runs partial
// evaluation, returning the envelopes it routed.
func (h *WorkerHost) PEval(rank int, query uint64, progName string, queryBytes []byte,
	superstep int, disableIncEval, disableGrouping bool) ([]mpi.Envelope, error) {
	h.mu.Lock()
	w, ok := h.workers[rank]
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("core: worker host does not serve fragment %d", rank)
	}
	prog, ok := h.resolve(progName)
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("core: worker host: unknown program %q", progName)
	}
	rp, ok := prog.(RemoteProgram)
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("core: program %s does not support distributed execution", progName)
	}
	q, err := rp.DecodeQuery(queryBytes)
	if err != nil {
		h.mu.Unlock()
		return nil, fmt.Errorf("core: worker host: decode %s query: %w", progName, err)
	}
	t := w.newTask(q, prog, &collector{}, Options{
		DisableIncEval:  disableIncEval,
		DisableGrouping: disableGrouping,
	})
	h.tasks[hostKey{query: query, rank: rank}] = t
	h.mu.Unlock()

	if err := safeCall(func() error { return t.peval(superstep) }); err != nil {
		return nil, err
	}
	return t.comm.(*collector).take(), nil
}

// IncEval delivers envelopes to the fragment's task and runs incremental
// evaluation, returning the envelopes it routed.
func (h *WorkerHost) IncEval(rank int, query uint64, superstep int, envs []mpi.Envelope) ([]mpi.Envelope, error) {
	t, err := h.task(rank, query)
	if err != nil {
		return nil, err
	}
	if err := safeCall(func() error { return t.incremental(superstep, envs) }); err != nil {
		return nil, err
	}
	return t.comm.(*collector).take(), nil
}

// Fetch returns the fragment's encoded partial result.
func (h *WorkerHost) Fetch(rank int, query uint64) ([]byte, error) {
	t, err := h.task(rank, query)
	if err != nil {
		return nil, err
	}
	return t.prog.(RemoteProgram).EncodePartial(t.ctx)
}

// End drops the fragment's per-query state. Ending an unknown query is a
// no-op so the coordinator can End unconditionally on error paths.
func (h *WorkerHost) End(rank int, query uint64) error {
	h.mu.Lock()
	delete(h.tasks, hostKey{query: query, rank: rank})
	h.mu.Unlock()
	return nil
}

func (h *WorkerHost) task(rank int, query uint64) (*task, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t, ok := h.tasks[hostKey{query: query, rank: rank}]
	if !ok {
		return nil, fmt.Errorf("core: worker host: no task for query %d on fragment %d (PEval not run?)", query, rank)
	}
	return t, nil
}
