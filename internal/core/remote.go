package core

// Distributed execution: the engine side of the multi-process transport.
//
// A distributed session keeps the coordinator's runner planes (bsp.go,
// async.go) and mailbox communicators unchanged and moves only the
// evaluation calls across the process boundary: for a fragment hosted
// remotely, task.peval/task.incremental forward the call through a
// RemotePeer, and the envelopes the remote PEval/IncEval produced are
// injected back into the query's communicator. The worker process runs a
// WorkerHost, which executes the exact same task code path over its resident
// fragments — one engine, two deployments.
//
// Programs opt into distribution by implementing RemoteProgram: the query
// and the per-fragment partial result must cross the wire, so the program
// supplies their codecs (the engine cannot serialize the opaque ctx.State).
//
// Dynamic graphs are distributed the same way. The coordinator routes each
// update batch with internal/partition (it keeps a resident replica of every
// fragment), ships the rebuilt fragments and the new fragmentation graph to
// the worker processes through a RemoteUpdateTransport, and the workers
// install them as a new epoch — retaining the previous epochs that in-flight
// queries still read (PEval carries the query's epoch, so snapshot
// consistency holds across processes exactly as it does in-process).
// Materialized views retain their per-fragment state on the workers: a
// maintenance round runs EvalDelta remotely on the fragments with a
// non-empty AFF set, iterates the ordinary remote IncEval fixpoint, and
// pulls the refreshed partial results back for Assemble.

import (
	"fmt"
	"sync"

	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/partition"
)

// RemotePeer is the coordinator's handle to one fragment hosted in another
// process. The TCP transport's net.Peer implements it; tests use in-process
// fakes. Calls for one peer are issued sequentially by the runner planes
// (BSP barriers and the async per-fragment loop both serialize per rank),
// but different peers are called concurrently.
type RemotePeer interface {
	// PEval runs partial evaluation on the remote fragment, against the
	// worker's residency for the given epoch, and returns the designated
	// messages it routed.
	PEval(query uint64, epoch int64, prog string, queryBytes []byte, superstep int,
		disableIncEval, disableGrouping bool) ([]mpi.Envelope, error)
	// IncEval delivers envelopes to the remote fragment, runs incremental
	// evaluation and returns the designated messages it routed.
	IncEval(query uint64, superstep int, envs []mpi.Envelope) ([]mpi.Envelope, error)
	// Fetch returns the fragment's encoded partial result (RemoteProgram's
	// EncodePartial) once the fixpoint is reached.
	Fetch(query uint64) ([]byte, error)
	// End releases the remote per-query state.
	End(query uint64) error
}

// RemoteViewPeer is the optional extension a RemotePeer implements to host
// materialized-view state: Materialize pins a converged query's per-fragment
// contexts across epochs, and EvalDelta seeds an incremental maintenance
// round on them. The TCP transport's net.Peer implements it.
type RemoteViewPeer interface {
	RemotePeer
	// Materialize promotes the query's retained per-fragment state into view
	// state: it survives End-less coordinator runs and is rebound to each new
	// epoch the worker installs, until End releases it.
	Materialize(query uint64) error
	// EvalDelta runs the program's EvalDelta over the view's retained context
	// with the batch's changes to this fragment (ops plus newly mirrored
	// border vertices; the worker resolves the pre-batch graph itself). It
	// reports whether the change was absorbed and, if so, the designated
	// messages the seeding routed.
	EvalDelta(query uint64, superstep int, ops []graph.Update, newInBorder []graph.VertexID) (absorbed bool, envs []mpi.Envelope, err error)
}

// RemoteCheckpointPeer is the optional extension a RemotePeer implements to
// support consistent-cut checkpointing: Checkpoint snapshots a query's
// in-flight per-fragment state at a superstep barrier, and Restore
// reinstalls such a snapshot under a fresh query id so a restarted run
// resumes from the cut instead of from scratch. The TCP transport's net.Peer
// implements it.
type RemoteCheckpointPeer interface {
	RemotePeer
	// Checkpoint returns the fragment's encoded in-flight query state
	// (RemoteProgram's EncodePartial, taken mid-run at a barrier).
	Checkpoint(query uint64) ([]byte, error)
	// Restore installs a checkpointed state as a fresh task for query, bound
	// to the given residency epoch, without running PEval.
	Restore(query uint64, epoch int64, prog string, queryBytes, state []byte) error
}

// RemoteRecoveryTransport is the capability a distributed transport declares
// to survive worker churn: it knows which fragment ranks lost their hosting
// process, can ship fragments onto surviving (or freshly joined) processes
// and rebind the rank's peer, and surfaces mid-session joins to the engine.
// The TCP transport's net.Cluster implements it; the session's recovery path
// activates only when Options.Recovery is set and the transport has it.
type RemoteRecoveryTransport interface {
	// LostFragments returns the fragment ranks whose hosting worker process
	// is dead and not yet replaced. Empty after a successful Reassign.
	LostFragments() []int
	// RebalanceFragments returns the ranks that should move off the
	// most-loaded processes to even the deal out after membership grew.
	RebalanceFragments() []int
	// Reassign ships each fragment (at the given epoch, with the matching
	// fragmentation graph) to a live worker process of the transport's
	// choosing and rebinds the rank's peer so subsequent calls route there.
	Reassign(epoch int64, gp *partition.FragGraph, frags []*partition.Fragment) error
	// SetJoinHandler registers fn to run whenever a fresh worker process
	// joins mid-session.
	SetJoinHandler(fn func())
}

// RemoteUpdateTransport is the capability a distributed transport declares to
// ship graph-update deltas: ApplyUpdate installs a new epoch on every worker
// process — the rebuilt fragments for the ranks each process hosts plus the
// new fragmentation graph. Workers retain epochs >= floor (plus any epoch
// with live queries), so snapshot reads keep working while updates land.
// The TCP transport's net.Cluster implements it; transports without it make
// ApplyUpdates/Materialize fail with ErrDistributedUnsupported.
type RemoteUpdateTransport interface {
	ApplyUpdate(epoch, floor int64, gp *partition.FragGraph, changed []*partition.Fragment) error
}

// RemoteProgram is the capability a PIE program declares to run on
// distributed sessions: codecs for the query value shipped to workers and
// for the per-fragment partial result shipped back for Assemble. Programs
// without it are rejected by distributed sessions with a clear error.
type RemoteProgram interface {
	Program
	// EncodeQuery serializes the query value for the wire.
	EncodeQuery(q Query) ([]byte, error)
	// DecodeQuery reconstructs the query value on the worker.
	DecodeQuery(data []byte) (Query, error)
	// EncodePartial serializes the fragment's partial result Q(Fi) from the
	// context after the run converged.
	EncodePartial(ctx *Context) ([]byte, error)
	// DecodePartial installs a shipped partial result into a
	// coordinator-side context so Assemble can combine it.
	DecodePartial(ctx *Context, data []byte) error
}

// SupportsRemote reports whether the program can run on distributed
// sessions.
func SupportsRemote(prog Program) bool {
	_, ok := prog.(RemoteProgram)
	return ok
}

// Resolver maps a program name from the wire to a program instance; the
// worker process supplies one (typically pie.ByName) so the engine stays
// independent of the program catalog.
type Resolver func(name string) (Program, bool)

// collector is the sender used on worker hosts: it accumulates the
// envelopes a task routes so the transport can carry them back to the
// coordinator in the call's reply.
type collector struct {
	envs []mpi.Envelope
}

func (c *collector) Send(from, to int, tag string, payload []byte) {
	c.envs = append(c.envs, mpi.Envelope{From: from, To: to, Tag: tag, Payload: payload})
}

func (c *collector) take() []mpi.Envelope {
	out := c.envs
	c.envs = nil
	return out
}

// WorkerHost executes evaluation calls over the fragments resident in a
// worker process. It implements the handler contract of the mpi/net worker
// loop (structurally — core does not import the transport): Setup installs
// the shipped fragments, then PEval/IncEval/Fetch/End serve per-query calls,
// ApplyUpdate installs new epochs under graph updates, and
// Materialize/EvalDelta host materialized-view state. Calls for distinct
// fragments run concurrently; calls for one fragment are issued sequentially
// by the coordinator.
//
// Residency is epoch-versioned: each ApplyUpdate produces a new worker set
// (sharing the untouched fragments of the previous epoch), queries evaluate
// against the epoch their PEval named, and superseded epochs are retired
// once the coordinator's floor passes them and their last query ends.
type WorkerHost struct {
	resolve Resolver
	// parallelism is the sweep-pool width granted to ParallelCapable
	// programs evaluated on this host. It is a worker-process setting (the
	// evaluation wire calls do not carry it), installed by SetParallelism
	// before the host starts serving.
	parallelism int

	mu      sync.Mutex
	current int64
	epochs  map[int64]map[int]*worker
	live    map[int64]int // queries pinned per epoch (views excluded)
	tasks   map[hostKey]*hostTask
}

type hostKey struct {
	query uint64
	rank  int
}

// hostTask is one fragment's retained execution state for one query. View
// tasks outlive their query run: they are rebound to every new epoch and
// keep the pre-batch fragment around for the next EvalDelta.
type hostTask struct {
	t       *task
	epoch   int64
	view    bool
	oldFrag *partition.Fragment // view tasks: the fragment before the latest epoch
}

// NewWorkerHost creates a host that resolves wire program names through
// resolve.
func NewWorkerHost(resolve Resolver) *WorkerHost {
	return &WorkerHost{
		resolve: resolve,
		epochs:  map[int64]map[int]*worker{0: {}},
		live:    make(map[int64]int),
		tasks:   make(map[hostKey]*hostTask),
	}
}

// SetParallelism sets the intra-fragment sweep-pool width this host grants
// ParallelCapable programs (0 or 1 = sequential). Call it before the host
// starts serving evaluation calls.
func (h *WorkerHost) SetParallelism(n int) {
	h.mu.Lock()
	h.parallelism = n
	h.mu.Unlock()
}

// Setup installs the fragments this process hosts and the fragmentation
// graph they route through, as epoch 0. It may be called again on a fresh
// handshake, replacing the previous residency.
func (h *WorkerHost) Setup(frags []*partition.Fragment, gp *partition.FragGraph) error {
	if gp == nil {
		return fmt.Errorf("core: worker host: nil fragmentation graph")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	workers := make(map[int]*worker, len(frags))
	for _, f := range frags {
		if f == nil {
			return fmt.Errorf("core: worker host: nil fragment")
		}
		workers[f.ID] = newWorker(f.ID, f, gp)
	}
	h.current = 0
	h.epochs = map[int64]map[int]*worker{0: workers}
	h.live = make(map[int64]int)
	h.tasks = make(map[hostKey]*hostTask)
	return nil
}

// Ranks returns the fragment ranks this host currently serves, unordered.
func (h *WorkerHost) Ranks() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, 0, len(h.epochs[h.current]))
	for r := range h.epochs[h.current] {
		out = append(out, r)
	}
	return out
}

// Epoch returns the latest epoch installed on this host.
func (h *WorkerHost) Epoch() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.current
}

// ApplyUpdate installs a new residency epoch: the rebuilt fragments of this
// batch replace their predecessors, untouched fragments carry over, and
// every worker is rebound to the new fragmentation graph. Materialized-view
// tasks are rebound to the new epoch (keeping the pre-batch fragment for the
// next EvalDelta); epochs older than floor with no live queries are retired.
func (h *WorkerHost) ApplyUpdate(epoch, floor int64, gp *partition.FragGraph, frags []*partition.Fragment) error {
	if gp == nil {
		return fmt.Errorf("core: worker host: nil fragmentation graph")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if epoch <= h.current {
		return fmt.Errorf("core: worker host: epoch %d already installed (current %d)", epoch, h.current)
	}
	cur := h.epochs[h.current]
	next := make(map[int]*worker, len(cur))
	for rank, w := range cur {
		next[rank] = newWorker(rank, w.frag, gp)
	}
	for _, f := range frags {
		if f == nil {
			return fmt.Errorf("core: worker host: nil fragment in update")
		}
		if _, ok := cur[f.ID]; !ok {
			return fmt.Errorf("core: worker host does not serve fragment %d", f.ID)
		}
		next[f.ID] = newWorker(f.ID, f, gp)
	}
	h.epochs[epoch] = next
	h.current = epoch
	for e := range h.epochs {
		if e != epoch && e < floor && h.live[e] == 0 {
			delete(h.epochs, e)
		}
	}
	// Rebind every view task to the new epoch; the fragment it evaluated the
	// previous epoch on becomes the EvalDelta base.
	for key, en := range h.tasks {
		if !en.view {
			continue
		}
		w := next[key.rank]
		en.oldFrag = en.t.ctx.Fragment
		en.t.worker = w
		en.t.ctx.Fragment = w.frag
		en.t.ctx.GP = gp
	}
	return nil
}

// Adopt installs fragments this host did not previously serve, at the given
// epoch. Recovery reassigns a dead process's ranks to survivors at the
// session's current epoch, and rebalancing ships ranks onto a freshly joined
// host whose residency may still be the handshake's epoch 0 — so unlike
// ApplyUpdate, epoch may equal the current one (the fragments merge into it)
// or exceed it (the current residency is carried forward into the new
// epoch, exactly as an update install would).
func (h *WorkerHost) Adopt(epoch int64, gp *partition.FragGraph, frags []*partition.Fragment) error {
	if gp == nil {
		return fmt.Errorf("core: worker host: nil fragmentation graph")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if epoch < h.current {
		return fmt.Errorf("core: worker host: cannot adopt into past epoch %d (current %d)", epoch, h.current)
	}
	next := h.epochs[h.current]
	if epoch > h.current {
		cur := next
		next = make(map[int]*worker, len(cur)+len(frags))
		for rank, w := range cur {
			next[rank] = newWorker(rank, w.frag, gp)
		}
		h.epochs[epoch] = next
		h.current = epoch
	}
	for _, f := range frags {
		if f == nil {
			return fmt.Errorf("core: worker host: nil fragment in adoption")
		}
		next[f.ID] = newWorker(f.ID, f, gp)
	}
	return nil
}

// ReleaseFragment drops a hosted fragment from the current epoch: its rank
// was reassigned to another process. Older epochs keep their copy so queries
// pinned to them finish locally; retained tasks for the rank are dropped —
// an in-flight query on it is being restarted by the coordinator anyway, and
// a view's next maintenance round recomputes on the new host.
func (h *WorkerHost) ReleaseFragment(rank int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.epochs[h.current], rank)
	for key, en := range h.tasks {
		if key.rank != rank {
			continue
		}
		delete(h.tasks, key)
		if !en.view {
			h.live[en.epoch]--
			h.pruneLocked(en.epoch)
		}
	}
	return nil
}

// Checkpoint returns the query's encoded in-flight state on this fragment.
// The codec is the program's partial-result codec: for the built-in
// monotone programs the partial encoding round-trips the full evaluation
// state, so a restored task continues exactly where the cut was taken.
func (h *WorkerHost) Checkpoint(rank int, query uint64) ([]byte, error) {
	en, err := h.task(rank, query)
	if err != nil {
		return nil, err
	}
	return en.t.prog.(RemoteProgram).EncodePartial(en.t.ctx)
}

// Restore installs a checkpointed query state as a fresh task — the restart
// path's replacement for PEval: the task is created bound to the named
// epoch's residency and its state decoded from the snapshot, ready for the
// IncEval supersteps that follow the cut.
func (h *WorkerHost) Restore(rank int, query uint64, epoch int64, progName string, queryBytes, state []byte) error {
	h.mu.Lock()
	workers, ok := h.epochs[epoch]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("core: worker host: epoch %d is not resident (current %d)", epoch, h.current)
	}
	w, ok := workers[rank]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("core: worker host does not serve fragment %d", rank)
	}
	prog, ok := h.resolve(progName)
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("core: worker host: unknown program %q", progName)
	}
	rp, ok := prog.(RemoteProgram)
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("core: program %s does not support distributed execution", progName)
	}
	q, err := rp.DecodeQuery(queryBytes)
	if err != nil {
		h.mu.Unlock()
		return fmt.Errorf("core: worker host: decode %s query: %w", progName, err)
	}
	t := w.newTask(q, prog, &collector{}, Options{Parallelism: h.parallelism})
	key := hostKey{query: query, rank: rank}
	if old, ok := h.tasks[key]; ok && !old.view {
		h.live[old.epoch]--
	}
	h.tasks[key] = &hostTask{t: t, epoch: epoch}
	h.live[epoch]++
	h.mu.Unlock()

	if err := rp.DecodePartial(t.ctx, state); err != nil {
		return fmt.Errorf("core: worker host: restore %s state: %w", progName, err)
	}
	return nil
}

// PEval creates the per-query task for the fragment — bound to the named
// epoch's residency — and runs partial evaluation, returning the envelopes
// it routed.
func (h *WorkerHost) PEval(rank int, query uint64, epoch int64, progName string, queryBytes []byte,
	superstep int, disableIncEval, disableGrouping bool) ([]mpi.Envelope, error) {
	h.mu.Lock()
	workers, ok := h.epochs[epoch]
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("core: worker host: epoch %d is not resident (current %d)", epoch, h.current)
	}
	w, ok := workers[rank]
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("core: worker host does not serve fragment %d", rank)
	}
	prog, ok := h.resolve(progName)
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("core: worker host: unknown program %q", progName)
	}
	rp, ok := prog.(RemoteProgram)
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("core: program %s does not support distributed execution", progName)
	}
	q, err := rp.DecodeQuery(queryBytes)
	if err != nil {
		h.mu.Unlock()
		return nil, fmt.Errorf("core: worker host: decode %s query: %w", progName, err)
	}
	t := w.newTask(q, prog, &collector{}, Options{
		DisableIncEval:  disableIncEval,
		DisableGrouping: disableGrouping,
		Parallelism:     h.parallelism,
	})
	key := hostKey{query: query, rank: rank}
	if old, ok := h.tasks[key]; ok && !old.view {
		h.live[old.epoch]-- // a re-run (failure recovery) replaces the task
	}
	h.tasks[key] = &hostTask{t: t, epoch: epoch}
	h.live[epoch]++
	h.mu.Unlock()

	if err := safeCall(func() error { return t.peval(superstep) }); err != nil {
		return nil, err
	}
	return t.comm.(*collector).take(), nil
}

// IncEval delivers envelopes to the fragment's task and runs incremental
// evaluation, returning the envelopes it routed.
func (h *WorkerHost) IncEval(rank int, query uint64, superstep int, envs []mpi.Envelope) ([]mpi.Envelope, error) {
	en, err := h.task(rank, query)
	if err != nil {
		return nil, err
	}
	t := en.t
	if err := safeCall(func() error { return t.incremental(superstep, envs) }); err != nil {
		return nil, err
	}
	return t.comm.(*collector).take(), nil
}

// Fetch returns the fragment's encoded partial result.
func (h *WorkerHost) Fetch(rank int, query uint64) ([]byte, error) {
	en, err := h.task(rank, query)
	if err != nil {
		return nil, err
	}
	return en.t.prog.(RemoteProgram).EncodePartial(en.t.ctx)
}

// Materialize promotes the query's task on this fragment into view state: it
// survives until End, is rebound to every epoch ApplyUpdate installs, and
// serves EvalDelta maintenance rounds. The task stops pinning its birth
// epoch (rebinding replaces pinning).
func (h *WorkerHost) Materialize(rank int, query uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	en, ok := h.tasks[hostKey{query: query, rank: rank}]
	if !ok {
		return fmt.Errorf("core: worker host: no task for query %d on fragment %d (PEval not run?)", query, rank)
	}
	if en.view {
		return nil
	}
	en.view = true
	h.live[en.epoch]--
	h.pruneLocked(en.epoch)
	return nil
}

// EvalDelta runs one maintenance seeding over the view task retained for
// (query, rank): the program's EvalDelta against the current epoch's
// fragment with the pre-batch fragment as base. It reports whether the
// change was absorbed and the envelopes the seeding routed.
func (h *WorkerHost) EvalDelta(rank int, query uint64, superstep int, ops []graph.Update,
	newInBorder []graph.VertexID) (bool, []mpi.Envelope, error) {
	h.mu.Lock()
	en, ok := h.tasks[hostKey{query: query, rank: rank}]
	if !ok || !en.view {
		h.mu.Unlock()
		return false, nil, fmt.Errorf("core: worker host: no view for query %d on fragment %d", query, rank)
	}
	dp, ok := en.t.prog.(DeltaProgram)
	if !ok {
		h.mu.Unlock()
		return false, nil, fmt.Errorf("core: program %s has no EvalDelta", en.t.prog.Name())
	}
	oldG := en.t.ctx.Fragment.Graph
	if en.oldFrag != nil {
		oldG = en.oldFrag.Graph
	}
	h.mu.Unlock()

	t := en.t
	t.ctx.Superstep = superstep
	var absorbed bool
	err := safeCall(func() error {
		ok, derr := dp.EvalDelta(t.ctx, FragmentDelta{Ops: ops, OldGraph: oldG, NewInBorder: newInBorder})
		absorbed = ok
		return derr
	})
	if err != nil {
		return false, nil, err
	}
	if !absorbed {
		return false, nil, nil
	}
	t.route()
	return true, t.comm.(*collector).take(), nil
}

// End drops the fragment's per-query state (query runs and views alike),
// retiring the task's epoch when it was its last reader. Ending an unknown
// query is a no-op so the coordinator can End unconditionally on error
// paths.
func (h *WorkerHost) End(rank int, query uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	key := hostKey{query: query, rank: rank}
	en, ok := h.tasks[key]
	if !ok {
		return nil
	}
	delete(h.tasks, key)
	if !en.view {
		h.live[en.epoch]--
		h.pruneLocked(en.epoch)
	}
	return nil
}

// pruneLocked tidies the per-epoch query counts. Epoch residency itself is
// only retired by ApplyUpdate's floor: the coordinator may have admitted a
// query at an old epoch that has not issued its PEval yet, so a zero local
// count alone does not make an epoch collectable. Callers hold h.mu.
func (h *WorkerHost) pruneLocked(e int64) {
	if h.live[e] <= 0 {
		delete(h.live, e)
	}
}

func (h *WorkerHost) task(rank int, query uint64) (*hostTask, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	en, ok := h.tasks[hostKey{query: query, rank: rank}]
	if !ok {
		return nil, fmt.Errorf("core: worker host: no task for query %d on fragment %d (PEval not run?)", query, rank)
	}
	return en, nil
}
