package core

import (
	"fmt"
	"hash/fnv"
	"sort"

	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/obs"
	"grape/internal/par"
	"grape/internal/partition"
)

// Message tags used on the transport.
const (
	tagUpdates = "updates"
	tagKV      = "kv"
	tagRaw     = "raw"
)

// worker is the long-lived half of a session: it holds one fragment Fi (and
// the fragmentation graph GP) resident across queries. All query-specific
// state — the context, the program, the communicator — lives in a task, so
// any number of queries can execute over the same worker concurrently.
type worker struct {
	rank int
	frag *partition.Fragment
	gp   *partition.FragGraph
}

func newWorker(rank int, frag *partition.Fragment, gp *partition.FragGraph) *worker {
	return &worker{rank: rank, frag: frag, gp: gp}
}

// sender is where a task routes its outgoing designated messages. On the
// coordinator it is the query-scoped *mpi.Comm; on a remote worker host it is
// a collector that accumulates the envelopes so the transport can carry them
// back to the coordinator's mailboxes.
type sender interface {
	Send(from, to int, tag string, payload []byte)
}

// task is one worker's execution state for one query: a fresh context over
// the resident (immutable) fragment, the PIE program, and the query-scoped
// communicator the coordinator created for this run.
//
// When remote is non-nil the fragment is hosted by another process: peval and
// incremental forward the call through the transport instead of computing
// locally, and inject the envelopes the remote evaluation produced into the
// coordinator's communicator — so both runner planes (barrier delivery,
// async visibility and sent/received accounting) behave exactly as they do
// for in-process fragments.
type task struct {
	worker *worker
	ctx    *Context
	comm   sender
	prog   Program
	kvProg KeyValueProgram // non-nil iff prog implements KeyValueProgram
	opts   Options
	m      int

	remote     RemotePeer // non-nil for fragments hosted in another process
	queryID    uint64
	epoch      int64 // session epoch the query reads (names the remote residency)
	progName   string
	queryBytes []byte
	trace      *obs.Trace // span recorder for remote call round trips; nil-safe
}

// newTask creates the per-query execution state for this worker.
func (w *worker) newTask(q Query, prog Program, comm sender, opts Options) *task {
	return w.taskWith(newContext(w.rank, w.frag, w.gp, q), prog, comm, opts)
}

// taskWith wraps an existing context — the persistent state of a
// materialized view — in a fresh task for one maintenance round. The
// context's Fragment and GP must already point at the worker's current
// epoch.
func (w *worker) taskWith(ctx *Context, prog Program, comm sender, opts Options) *task {
	kvProg, _ := prog.(KeyValueProgram)
	if opts.Parallelism > 1 && SupportsParallel(prog) {
		ctx.pool = par.New(opts.Parallelism)
	}
	return &task{
		worker: w,
		ctx:    ctx,
		comm:   comm,
		prog:   prog,
		kvProg: kvProg,
		opts:   opts,
		m:      w.gp.NumFragments(),
	}
}

// inject replays envelopes produced by a remote evaluation into the
// coordinator's communicator (a remote task's sender is always the
// query-scoped *mpi.Comm), preserving their original sender rank so
// metering and routing are indistinguishable from an in-process evaluation.
func (t *task) inject(envs []mpi.Envelope) {
	for _, e := range envs {
		t.comm.Send(e.From, e.To, e.Tag, e.Payload)
	}
}

// peval runs the partial-evaluation superstep: PEval over the fragment, then
// routing of the changed update parameters.
func (t *task) peval(superstep int) error {
	if t.remote != nil {
		endSpan := t.trace.Span("rpc:peval", t.worker.rank)
		envs, err := t.remote.PEval(t.queryID, t.epoch, t.progName, t.queryBytes, superstep,
			t.opts.DisableIncEval, t.opts.DisableGrouping)
		endSpan()
		if err != nil {
			return fmt.Errorf("core: remote PEval on fragment %d: %w", t.worker.rank, err)
		}
		t.inject(envs)
		return nil
	}
	t.ctx.Superstep = superstep
	if err := t.prog.PEval(t.ctx); err != nil {
		return fmt.Errorf("core: PEval on fragment %d: %w", t.worker.rank, err)
	}
	t.route()
	return nil
}

// incremental runs one iterative superstep: decode the envelopes delivered to
// this worker, merge them under the program's aggregation policy, run IncEval
// (or PEval in the GRAPE_NI ablation) on the accepted changes, and route the
// resulting updates.
func (t *task) incremental(superstep int, envs []mpi.Envelope) error {
	if len(envs) == 0 {
		return nil // inactive worker this superstep
	}
	if t.remote != nil {
		endSpan := t.trace.Span("rpc:inceval", t.worker.rank)
		out, err := t.remote.IncEval(t.queryID, superstep, envs)
		endSpan()
		if err != nil {
			return fmt.Errorf("core: remote IncEval on fragment %d: %w", t.worker.rank, err)
		}
		t.inject(out)
		return nil
	}
	t.ctx.Superstep = superstep
	w := t.worker.rank
	var incoming []mpi.Update
	var kvs []mpi.KeyValue
	var raws []mpi.Update
	for _, env := range envs {
		switch env.Tag {
		case tagUpdates:
			ups, err := mpi.DecodeUpdates(env.Payload)
			if err != nil {
				return fmt.Errorf("core: fragment %d: %w", w, err)
			}
			incoming = append(incoming, ups...)
		case tagKV:
			pairs, err := mpi.DecodeKeyValues(env.Payload)
			if err != nil {
				return fmt.Errorf("core: fragment %d: %w", w, err)
			}
			kvs = append(kvs, pairs...)
		case tagRaw:
			raws = append(raws, mpi.Update{Vertex: RawMessageVertex, Key: int64(env.From), Data: env.Payload})
		default:
			return fmt.Errorf("core: fragment %d: unknown message tag %q", w, env.Tag)
		}
	}
	accepted := t.ctx.applyIncoming(incoming, t.prog.Aggregate)
	accepted = append(accepted, raws...)
	if len(accepted) > 0 {
		if t.opts.DisableIncEval {
			if err := t.prog.PEval(t.ctx); err != nil {
				return fmt.Errorf("core: PEval (NI mode) on fragment %d: %w", w, err)
			}
		} else if err := t.prog.IncEval(t.ctx, accepted); err != nil {
			return fmt.Errorf("core: IncEval on fragment %d: %w", w, err)
		}
	}
	if len(kvs) > 0 {
		if t.kvProg == nil {
			return fmt.Errorf("core: program %s received key-value messages but does not implement KeyValueProgram", t.prog.Name())
		}
		if err := t.kvProg.IncEvalKV(t.ctx, kvs); err != nil {
			return fmt.Errorf("core: IncEvalKV on fragment %d: %w", w, err)
		}
	}
	t.route()
	return nil
}

// route ships the task's dirty update parameters to every fragment that holds
// a copy of the variable, deducing destinations from GP exactly as
// Section 3.2(3) describes (each worker keeps a copy of GP and deduces
// destinations in parallel, avoiding a coordinator bottleneck).
func (t *task) route() {
	w := t.worker.rank
	dirty := t.ctx.takeDirty()
	if len(dirty) > 0 {
		perDest := make(map[int][]mpi.Update)
		for _, u := range dirty {
			for _, dst := range t.worker.gp.Destinations(graph.VertexID(u.Vertex), w) {
				perDest[dst] = append(perDest[dst], u)
			}
		}
		dests := make([]int, 0, len(perDest))
		for d := range perDest {
			dests = append(dests, d)
		}
		sort.Ints(dests)
		for _, dst := range dests {
			batch := perDest[dst]
			if t.opts.DisableGrouping {
				for _, u := range batch {
					t.comm.Send(w, dst, tagUpdates, mpi.EncodeUpdates([]mpi.Update{u}))
				}
			} else {
				t.comm.Send(w, dst, tagUpdates, mpi.EncodeUpdates(batch))
			}
		}
	}
	for _, kv := range t.ctx.takeKV() {
		dst := int(hashKey(kv.Key) % uint32(t.m))
		t.comm.Send(w, dst, tagKV, mpi.EncodeKeyValues([]mpi.KeyValue{kv}))
	}
	for _, raw := range t.ctx.takeRaw() {
		t.comm.Send(w, raw.dst, tagRaw, raw.data)
	}
}

func hashKey(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}
