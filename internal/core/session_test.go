package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"grape/internal/graph"
	"grape/internal/partition"
)

// countingStrategy wraps a partition strategy and counts Assign calls, which
// lets the tests prove "partitioned once for all queries" deterministically.
type countingStrategy struct {
	inner partition.Strategy
	mu    sync.Mutex
	calls int
}

func (s *countingStrategy) Name() string { return s.inner.Name() }

func (s *countingStrategy) Assign(g *graph.Graph, m int) []int {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	return s.inner.Assign(g, m)
}

func (s *countingStrategy) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func TestSessionPartitionsOnce(t *testing.T) {
	g := testGraph()
	strat := &countingStrategy{inner: partition.Hash{}}
	s, err := NewSession(g, Options{Workers: 4, Strategy: strat})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const queries = 8
	for i := 0; i < queries; i++ {
		src := g.VertexAt(i)
		if _, err := s.Run(src, &minDistProgram{source: src}); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if got := strat.count(); got != 1 {
		t.Fatalf("session partitioned %d times for %d queries, want 1", got, queries)
	}
	if s.Queries() != queries {
		t.Fatalf("Queries() = %d, want %d", s.Queries(), queries)
	}

	// The one-shot engine, by contrast, partitions per query.
	strat2 := &countingStrategy{inner: partition.Hash{}}
	eng := New(Options{Workers: 4, Strategy: strat2})
	for i := 0; i < queries; i++ {
		src := g.VertexAt(i)
		if _, err := eng.Run(g, src, &minDistProgram{source: src}); err != nil {
			t.Fatal(err)
		}
	}
	if got := strat2.count(); got != queries {
		t.Fatalf("engine partitioned %d times for %d queries, want %d", got, queries, queries)
	}
}

// TestSessionConcurrentQueries fires many queries in parallel against one
// session and checks every answer against a fresh single-query run. Run with
// -race this also proves the per-query isolation of contexts and mailboxes.
func TestSessionConcurrentQueries(t *testing.T) {
	g := testGraph()
	s, err := NewSession(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const queries = 16
	var wg sync.WaitGroup
	errs := make([]error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := g.VertexAt((i * 7) % g.NumVertices())
			res, err := s.Run(src, &minDistProgram{source: src})
			if err != nil {
				errs[i] = err
				return
			}
			got := res.Output.(map[graph.VertexID]float64)
			want := referenceHopDistances(g, src)
			for v, d := range want {
				if got[v] != d {
					errs[i] = fmt.Errorf("query %d: dist(%d) = %v, want %v", i, v, got[v], d)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionQueryMetering runs the same query alone and then concurrently
// with interfering traffic, asserting identical per-query Stats: with
// query-scoped mailboxes the BSP run is deterministic, so a concurrent
// neighbor must change neither the superstep count nor the message volume.
func TestSessionQueryMetering(t *testing.T) {
	g := testGraph()
	s, err := NewSession(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	src := g.VertexAt(0)
	alone, err := s.Run(src, &minDistProgram{source: src})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			other := g.VertexAt((i + 1) * 13 % g.NumVertices())
			s.Run(other, &minDistProgram{source: other}) //nolint:errcheck
		}(i)
	}
	busy, err := s.Run(src, &minDistProgram{source: src})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if busy.Stats.Supersteps != alone.Stats.Supersteps {
		t.Fatalf("supersteps changed under concurrency: %d vs %d",
			busy.Stats.Supersteps, alone.Stats.Supersteps)
	}
	if busy.Stats.MessagesSent != alone.Stats.MessagesSent || busy.Stats.BytesSent != alone.Stats.BytesSent {
		t.Fatalf("communication changed under concurrency: %d msgs/%d B vs %d msgs/%d B",
			busy.Stats.MessagesSent, busy.Stats.BytesSent,
			alone.Stats.MessagesSent, alone.Stats.BytesSent)
	}
}

func TestSessionClose(t *testing.T) {
	g := testGraph()
	s, err := NewSession(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFragments() != 2 {
		t.Fatalf("NumFragments = %d, want 2", s.NumFragments())
	}
	if s.Partition() == nil || len(s.Partition().Fragments) != 2 {
		t.Fatalf("Partition() not exposed")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	src := g.VertexAt(0)
	if _, err := s.Run(src, &minDistProgram{source: src}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Run after Close = %v, want ErrSessionClosed", err)
	}
}

// TestStatsElapsedOnError asserts that failed runs report wall time too (the
// timer used to be stopped only on the success path).
func TestStatsElapsedOnError(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(0)
	res, err := New(Options{Workers: 3}).Run(g, src,
		&faultyProgram{minDistProgram: minDistProgram{source: src}, failInc: true})
	if err == nil {
		t.Fatalf("expected IncEval error")
	}
	if res == nil || res.Stats == nil {
		t.Fatalf("failed run must still return stats")
	}
	if res.Stats.Elapsed <= 0 {
		t.Fatalf("failed run did not record elapsed time")
	}
}
