package core

import "grape/internal/obs"

// Engine-level observability counters, registered in the default registry
// and exposed on the session's debug endpoint (Options.DebugListen). They
// aggregate across queries and sessions of the process; per-query figures
// live in metrics.Stats.
var (
	obsQueriesStarted = obs.CounterVec("grape_queries_started_total",
		"Query runs started, by execution plane.", "mode")
	obsQueriesFinished = obs.CounterVec("grape_queries_finished_total",
		"Query runs finished without error, by execution plane.", "mode")
	obsQueriesErrored = obs.CounterVec("grape_queries_errored_total",
		"Query runs that returned an error, by execution plane.", "mode")
	obsQuerySeconds = obs.HistogramVec("grape_query_seconds",
		"Wall-clock duration of query runs.", nil, "mode")
	obsSupersteps = obs.Counter("grape_supersteps_total",
		"Global BSP supersteps executed.")
	obsSuperstepSeconds = obs.Histogram("grape_superstep_seconds",
		"Wall-clock duration of BSP supersteps (slowest worker to barrier).", nil)
	obsBarrierWaitSeconds = obs.Counter("grape_barrier_wait_seconds_total",
		"Cumulative time workers spent waiting at superstep barriers.")
	obsAsyncIdleSeconds = obs.Counter("grape_async_idle_seconds_total",
		"Cumulative time async workers spent parked waiting for messages.")
	obsEpochsInstalled = obs.Counter("grape_update_epochs_installed_total",
		"Graph update batches installed (session epoch advances).")
	obsUpdateOpsApplied = obs.Counter("grape_update_ops_applied_total",
		"Individual graph update operations applied across fragments.")
	obsViewMaintenance = obs.CounterVec("grape_view_maintenance_total",
		"View maintenance passes, by kind (incremental or recompute).", "kind")
	obsCheckpoints = obs.Counter("grape_checkpoints_total",
		"Consistent cuts taken of in-flight queries (all ranks snapshotted at a barrier).")
	obsCheckpointSeconds = obs.Histogram("grape_checkpoint_seconds",
		"Wall-clock duration of consistent-cut checkpoints.", nil)
	obsQueryRestarts = obs.Counter("grape_query_restarts_total",
		"Query runs restarted after worker loss or a topology change.")
	obsWorkerRecoveries = obs.Counter("grape_worker_recoveries_total",
		"Worker-process deaths recovered by reassigning their fragments to survivors.")
)
