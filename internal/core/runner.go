package core

import (
	"errors"
	"fmt"

	"grape/internal/metrics"
	"grape/internal/mpi"
)

// ExecMode selects the execution plane a query runs on.
type ExecMode int

const (
	// ModeBSP is the bulk-synchronous plane of the paper (Section 3.1):
	// supersteps separated by global barriers, messages delivered at the
	// superstep boundary, termination when no fragment has pending messages.
	// It is the default, supports every PIE program, and is deterministic.
	ModeBSP ExecMode = iota
	// ModeAsync is the adaptive asynchronous plane: workers loop IncEval on
	// whatever messages have already arrived instead of idling at a barrier,
	// messages become visible to their destination the moment they are sent,
	// and the coordinator detects termination by idle consensus (every worker
	// idle and sent == received). Only programs that declare async-safe
	// accumulation (AsyncCapable) may run on it; for them the monotone
	// Aggregate policy makes any delivery order converge to the same fixpoint
	// as BSP (the Assurance Theorem does not depend on the rounds being
	// synchronized, only on the updates being aggregated monotonically).
	ModeAsync
)

// String returns the mode label used in Stats and CLI flags.
func (m ExecMode) String() string {
	if m == ModeAsync {
		return "async"
	}
	return "bsp"
}

// ParseMode converts a CLI flag value ("bsp" or "async") into an ExecMode.
func ParseMode(s string) (ExecMode, error) {
	switch s {
	case "", "bsp":
		return ModeBSP, nil
	case "async":
		return ModeAsync, nil
	default:
		return ModeBSP, fmt.Errorf("core: unknown execution mode %q (want bsp or async)", s)
	}
}

// AsyncCapable is the capability a PIE program declares to opt into the
// asynchronous execution plane. Asynchronous delivery can hand IncEval stale
// or re-ordered update batches, and a value may be re-delivered after the
// receiver already absorbed a better one; a program is async-safe exactly
// when its Aggregate policy is idempotent and monotone with respect to a
// partial order on the update parameters (min for SSSP and CC) — or, like
// PageRank's per-sender incast, keyed so that re-delivery overwrites rather
// than double-counts. Programs without the capability (Sim's "false wins"
// cascades, SubIso's staged designated messages, CF's timestamp rounds) are
// rejected by the async driver with ErrAsyncUnsupported and run BSP-only.
type AsyncCapable interface {
	AsyncSafe() bool
}

// ErrAsyncUnsupported is returned when a query requests ModeAsync for a
// program that has not declared async-safe accumulation.
var ErrAsyncUnsupported = errors.New("core: program does not support asynchronous execution")

// SupportsAsync reports whether the program declared async-safe
// accumulation.
func SupportsAsync(prog Program) bool {
	ac, ok := prog.(AsyncCapable)
	return ok && ac.AsyncSafe()
}

// ParallelCapable is the capability a PIE program declares to opt into
// intra-fragment parallel sweeps: when Options.Parallelism asks for a pool,
// the engine hands the program's evaluation context a par.Pool
// (Context.Pool) over which it may chunk its dense vertex ranges. A program
// is parallel-safe exactly when its sweep kernels partition work so that
// per-worker scratch merges back to the sequential result (order-free folds
// such as min, or per-destination accumulation in a fixed order). Programs
// without the capability always run their sequential kernels, whatever the
// configured pool width.
type ParallelCapable interface {
	ParallelSafe() bool
}

// SupportsParallel reports whether the program declared parallel-safe
// sweeps.
func SupportsParallel(prog Program) bool {
	pc, ok := prog.(ParallelCapable)
	return ok && pc.ParallelSafe()
}

// runner is one execution plane: it drives a set of per-fragment tasks from
// their initial state (PEval everywhere) to the global fixpoint, filling the
// run's Stats (per-worker rounds and idle time) and Result bookkeeping
// (recoveries, failovers) along the way. The coordinator stays mode-agnostic:
// it sets up tasks, contexts and the communicator, picks a runner, and
// assembles the answer the runner converged to.
type runner interface {
	// mode identifies the plane for Stats.
	mode() ExecMode
	// run evaluates to the global fixpoint. tasks[i] belongs to worker i and
	// comm is the query-scoped communicator the tasks route through (an
	// async communicator for the async plane).
	run(tasks []*task, comm *mpi.Comm, stats *metrics.Stats, res *Result) error
}
