package core

// Fault tolerance for distributed sessions: consistent-cut checkpointing,
// query restart, worker-death recovery and elastic rebalancing.
//
// The coordinator keeps a resident replica of every fragment (it routes graph
// updates there), so losing a worker process never loses graph data — only
// residency and in-flight query state. Recovery therefore has two halves:
//
//   - Fragments: the dead process's ranks are re-shipped from the
//     coordinator's replica to surviving (or freshly joined) processes via
//     RemoteRecoveryTransport.Reassign, which also rebinds each rank's peer so
//     later calls route to the new host.
//
//   - Queries: a run that failed with a lost worker is restarted. If the run
//     had taken a consistent cut — every rank's state snapshotted at a
//     superstep barrier plus the undelivered messages of that superstep — the
//     restart resumes from the cut (Restore on every rank, replay the saved
//     inboxes, continue iterating); otherwise it restarts from PEval. Both are
//     sound for the simultaneous-fixpoint semantics: the monotone built-in
//     programs converge to the same answer from any prefix of the computation.
//
// A cut is taken every Interval supersteps between mailbox delivery and the
// compute barrier, when the mailboxes for superstep S are materialized on the
// coordinator and every fragment's state is exactly "after superstep S-1".
// Checkpoint failures are fail-soft: the previous cut is kept.
//
// All of this activates only when Options.Recovery is set and the transport
// declares RemoteRecoveryTransport; the zero value is today's fail-stop
// behavior.

import (
	"errors"
	"fmt"
	"sync"

	"grape/internal/metrics"
	"grape/internal/mpi"
	"grape/internal/partition"
)

// Default recovery tuning used when the corresponding RecoveryOptions fields
// are zero.
const (
	defaultCheckpointInterval = 16
	defaultMaxRetries         = 2
)

// RecoveryOptions enable fault tolerance and elasticity on distributed
// sessions. The zero value of each field selects a default; a nil
// Options.Recovery disables recovery entirely (fail-stop, the historical
// behavior).
type RecoveryOptions struct {
	// Interval is the number of BSP supersteps between consistent cuts of an
	// in-flight query (checkpoints). Zero means a default (16); a negative
	// value disables checkpointing, so restarted queries re-run from PEval.
	// Shorter intervals bound the recomputation a recovery replays at the
	// price of one extra state-snapshot round trip per interval.
	Interval int
	// MaxRetries caps how many times one query run is restarted after worker
	// loss before the error is surfaced. Zero means a default (2).
	MaxRetries int
}

// interval resolves the checkpoint interval; 0 disables checkpointing.
func (r *RecoveryOptions) interval() int {
	if r == nil {
		return 0
	}
	if r.Interval == 0 {
		return defaultCheckpointInterval
	}
	if r.Interval < 0 {
		return 0
	}
	return r.Interval
}

// maxRetries resolves the per-query restart budget.
func (r *RecoveryOptions) maxRetries() int {
	if r == nil {
		return 0
	}
	if r.MaxRetries <= 0 {
		return defaultMaxRetries
	}
	return r.MaxRetries
}

// workerLoster is the structural shape of the transport's worker-loss error
// (net.WorkerLostError); core matches it via errors.As instead of importing
// the transport package.
type workerLoster interface {
	WorkerLost() (proc int, fragments []int)
}

// workerLost reports whether err (anywhere in its tree) says a worker process
// died.
func workerLost(err error) bool {
	var wl workerLoster
	return errors.As(err, &wl)
}

// allWorkerLost reports whether every leaf of err's tree is a worker-loss
// error — the condition under which a failed delta ship is recoverable: the
// dead processes never installed the epoch, and every error-free survivor
// did.
func allWorkerLost(err error) bool {
	if err == nil {
		return false
	}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		for _, e := range joined.Unwrap() {
			if !allWorkerLost(e) {
				return false
			}
		}
		return true
	}
	if _, ok := err.(workerLoster); ok {
		return true
	}
	if u := errors.Unwrap(err); u != nil {
		return allWorkerLost(u)
	}
	return false
}

// checkpointCut is one consistent cut of an in-flight BSP query: every rank's
// encoded state after superstep-1, plus the messages those supersteps routed
// that superstep would deliver. Restoring the states and replaying the
// inboxes reproduces the exact pre-superstep configuration.
type checkpointCut struct {
	epoch     int64
	superstep int              // the superstep the saved inboxes feed
	states    [][]byte         // per-rank encoded partial state (RemoteProgram codec)
	inboxes   [][]mpi.Envelope // per-rank mailboxes for superstep
}

// ckptRecorder takes consistent cuts for one query run and hands the latest
// one to the session's restart loop. It is created per run (the cut is only
// meaningful for that query) and shared between the BSP runner, which
// captures, and the session, which consumes on restart.
type ckptRecorder struct {
	interval  int
	noMetrics bool

	mu  sync.Mutex
	cut *checkpointCut
}

// due reports whether a cut should be taken before the given superstep runs.
func (k *ckptRecorder) due(superstep int) bool {
	return k.interval > 0 && superstep%k.interval == 0
}

// capture snapshots every rank's state (in parallel) and retains it together
// with the superstep's already-materialized inboxes. Failures are fail-soft:
// the previous cut survives, and the run continues unscathed — a checkpoint
// is an optimization of recovery, never a correctness requirement.
func (k *ckptRecorder) capture(tasks []*task, superstep int, inboxes [][]mpi.Envelope) {
	timer := metrics.StartTimer()
	states := make([][]byte, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for w, t := range tasks {
		pe, ok := t.remote.(RemoteCheckpointPeer)
		if !ok {
			return
		}
		wg.Add(1)
		go func(w int, pe RemoteCheckpointPeer, query uint64) {
			defer wg.Done()
			states[w], errs[w] = pe.Checkpoint(query)
		}(w, pe, t.queryID)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return
		}
	}
	k.mu.Lock()
	k.cut = &checkpointCut{epoch: tasks[0].epoch, superstep: superstep, states: states, inboxes: inboxes}
	k.mu.Unlock()
	if !k.noMetrics {
		obsCheckpoints.Inc()
		obsCheckpointSeconds.Observe(timer.Stop().Seconds())
	}
}

// take returns the latest cut, if any.
func (k *ckptRecorder) take() *checkpointCut {
	if k == nil {
		return nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.cut
}

// recoverySetup resolves what the restart loop of one query run may use: the
// transport's recovery capability (nil disables restarts entirely) and a
// checkpoint recorder (nil makes restarts re-run from PEval). Checkpoints
// require the BSP plane — cuts are defined at superstep barriers — plus
// checkpoint-capable peers and IncEval (Restore creates worker-side tasks
// that continue incrementally).
func (s *Session) recoverySetup(prog Program, mode ExecMode) (RemoteRecoveryTransport, *ckptRecorder) {
	if s.opts.Recovery == nil || s.remotes == nil {
		return nil, nil
	}
	rt, ok := s.cluster.(RemoteRecoveryTransport)
	if !ok {
		return nil, nil
	}
	interval := s.opts.Recovery.interval()
	if interval <= 0 || mode != ModeBSP || s.opts.DisableIncEval || !SupportsRemote(prog) {
		return rt, nil
	}
	for _, pe := range s.remotes {
		if _, ok := pe.(RemoteCheckpointPeer); !ok {
			return rt, nil
		}
	}
	return rt, &ckptRecorder{interval: interval, noMetrics: s.opts.NoMetrics}
}

// recoverLost re-homes every fragment rank whose hosting process died: the
// coordinator's resident replica of each lost fragment is shipped to a
// surviving process at the session's current epoch and the rank's peer is
// rebound. Concurrent failed queries race here; the first one in does the
// work and the rest see no lost fragments. Views are marked stale — their
// worker-side state died with the process — so their next maintenance round
// recomputes.
func (s *Session) recoverLost(rt RemoteRecoveryTransport) error {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	lost := rt.LostFragments()
	if len(lost) == 0 {
		return nil
	}
	s.mu.Lock()
	part := s.part
	epoch := s.epoch
	views := make([]*View, 0, len(s.views))
	for v := range s.views {
		views = append(views, v)
	}
	s.mu.Unlock()

	if err := rt.Reassign(epoch, part.GP, fragmentsByRank(part.Fragments, lost)); err != nil {
		return fmt.Errorf("core: reassigning fragments %v after worker loss: %w", lost, err)
	}
	s.topoGen.Add(1)
	for _, v := range views {
		v.markStale()
	}
	if !s.opts.NoMetrics {
		obsWorkerRecoveries.Inc()
	}
	return nil
}

// handleJoin runs whenever a fresh worker process enters the cluster
// mid-session: it asks the transport which ranks should move to even out the
// load and ships them — the same path recovery uses, just with live sources.
// In-flight queries whose ranks moved may fail their next call; the restart
// loop retries them against the new topology (topoGen records that the
// failure was churn, not a bug).
func (s *Session) handleJoin(rt RemoteRecoveryTransport) {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	part := s.part
	epoch := s.epoch
	views := make([]*View, 0, len(s.views))
	for v := range s.views {
		views = append(views, v)
	}
	s.mu.Unlock()

	ranks := rt.RebalanceFragments()
	if len(ranks) == 0 {
		return
	}
	if err := rt.Reassign(epoch, part.GP, fragmentsByRank(part.Fragments, ranks)); err != nil {
		// The joiner keeps an uneven share (or none); the cluster stays
		// correct either way, so a failed rebalance is not fatal.
		return
	}
	s.topoGen.Add(1)
	for _, v := range views {
		v.markStale()
	}
}

// fragmentsByRank picks the named fragments out of the session's resident
// partition for shipping.
func fragmentsByRank(all []*partition.Fragment, ranks []int) []*partition.Fragment {
	out := make([]*partition.Fragment, 0, len(ranks))
	for _, r := range ranks {
		out = append(out, all[r])
	}
	return out
}
