package core

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"grape/internal/graph"
	"grape/internal/partition"
)

// deltaMinDist extends the minDist test program with an EvalDelta that
// absorbs edge/vertex inserts (hop distances can only shrink) and declines
// deletions, mirroring the structure of the real SSSP program.
type deltaMinDist struct {
	minDistProgram
	deltaCalls atomic.Int64
}

func (p *deltaMinDist) EvalDelta(ctx *Context, d FragmentDelta) (bool, error) {
	p.deltaCalls.Add(1)
	var seeds []graph.VertexID
	for _, op := range d.Ops {
		switch op.Kind {
		case graph.UpdateAddVertex:
			ctx.Declare(op.Src, 0, math.Inf(1), nil)
			if op.Src == p.source {
				ctx.SetVar(op.Src, 0, 0, nil)
				seeds = append(seeds, op.Src)
			}
		case graph.UpdateAddEdge:
			ctx.Declare(op.Src, 0, math.Inf(1), nil)
			ctx.Declare(op.Dst, 0, math.Inf(1), nil)
			if du := ctx.VarValue(op.Src, 0, math.Inf(1)); du+1 < ctx.VarValue(op.Dst, 0, math.Inf(1)) {
				ctx.SetVar(op.Dst, 0, du+1, nil)
				seeds = append(seeds, op.Dst)
			}
		case graph.UpdateReweightEdge:
			// hop distances ignore weights
		default:
			return false, nil
		}
	}
	p.relax(ctx, seeds)
	for _, v := range d.NewInBorder {
		ctx.MarkDirty(v, 0)
	}
	return true, nil
}

// pathGraph builds the directed path 0 -> 1 -> ... -> n-1.
func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(true)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VertexID(i), "")
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 1, "")
	}
	return b.Build()
}

func distances(t *testing.T, out any) map[graph.VertexID]float64 {
	t.Helper()
	m, ok := out.(map[graph.VertexID]float64)
	if !ok {
		t.Fatalf("output type %T", out)
	}
	return m
}

func TestApplyUpdatesInstallsNewEpoch(t *testing.T) {
	g := pathGraph(8)
	s, err := NewSession(g, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Epoch() != 0 {
		t.Fatalf("fresh session epoch = %d", s.Epoch())
	}

	stats, err := s.ApplyUpdates([]graph.Update{
		graph.AddVertexUpdate(100, ""),
		graph.AddEdgeUpdate(0, 100, 1, ""),
		graph.RemoveEdgeUpdate(55, 56), // missing: no-op
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != 1 || s.Epoch() != 1 || s.Updates() != 1 {
		t.Fatalf("epoch bookkeeping: stats=%+v session epoch=%d updates=%d", stats, s.Epoch(), s.Updates())
	}
	if stats.Applied != 2 {
		t.Fatalf("Applied = %d, want 2 (no-op removal not counted)", stats.Applied)
	}

	// A query after the batch sees the new vertex.
	prog := &minDistProgram{source: 0}
	res, err := s.Run(nil, prog)
	if err != nil {
		t.Fatal(err)
	}
	dist := distances(t, res.Output)
	if dist[100] != 1 {
		t.Fatalf("dist[100] = %v, want 1", dist[100])
	}

	// Ownership of the new vertex is recorded in the current partition.
	if o := s.Partition().GP.Owner(100); o < 0 || o >= s.NumFragments() {
		t.Fatalf("owner of new vertex = %d", o)
	}
}

func TestViewIncrementalMaintenanceAndFallback(t *testing.T) {
	g := pathGraph(10)
	s, err := NewSession(g, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	prog := &deltaMinDist{minDistProgram: minDistProgram{source: 0}}
	view, err := s.Materialize(nil, prog)
	if err != nil {
		t.Fatal(err)
	}
	out, err := view.Result()
	if err != nil {
		t.Fatal(err)
	}
	if d := distances(t, out); d[9] != 9 {
		t.Fatalf("initial dist[9] = %v", d[9])
	}

	// Insert a shortcut: absorbed incrementally.
	stats, err := s.ApplyUpdates([]graph.Update{graph.AddEdgeUpdate(0, 8, 1, "")})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Incremental != 1 || stats.Recomputed != 0 {
		t.Fatalf("insert not maintained incrementally: %+v", stats)
	}
	out, err = view.Result()
	if err != nil {
		t.Fatal(err)
	}
	if d := distances(t, out); d[8] != 1 || d[9] != 2 {
		t.Fatalf("after shortcut: dist[8]=%v dist[9]=%v", d[8], d[9])
	}
	vs := view.Stats()
	if vs.Epoch != 1 || vs.Incremental != 1 || vs.Recomputed != 0 {
		t.Fatalf("view stats after insert: %+v", vs)
	}

	// Delete the shortcut: the program declines, triggering a full
	// recompute, and distances must grow back.
	stats, err = s.ApplyUpdates([]graph.Update{graph.RemoveEdgeUpdate(0, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recomputed != 1 {
		t.Fatalf("deletion should fall back to recompute: %+v", stats)
	}
	out, err = view.Result()
	if err != nil {
		t.Fatal(err)
	}
	if d := distances(t, out); d[8] != 8 || d[9] != 9 {
		t.Fatalf("after deletion: dist[8]=%v dist[9]=%v", d[8], d[9])
	}
}

func TestViewFullRecomputeForPlainPrograms(t *testing.T) {
	g := pathGraph(6)
	s, err := NewSession(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// minDistProgram does not implement DeltaProgram: every batch recomputes.
	prog := &minDistProgram{source: 0}
	view, err := s.Materialize(nil, prog)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.ApplyUpdates([]graph.Update{graph.AddEdgeUpdate(0, 5, 1, "")})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Incremental != 0 || stats.Recomputed != 1 {
		t.Fatalf("plain program should recompute: %+v", stats)
	}
	out, err := view.Result()
	if err != nil {
		t.Fatal(err)
	}
	if d := distances(t, out); d[5] != 1 {
		t.Fatalf("dist[5] = %v, want 1", d[5])
	}
}

func TestViewCloseStopsMaintenance(t *testing.T) {
	g := pathGraph(6)
	s, err := NewSession(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	view, err := s.Materialize(nil, &minDistProgram{source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := view.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := s.ApplyUpdates([]graph.Update{graph.AddEdgeUpdate(0, 5, 1, "")})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ViewsMaintained != 0 {
		t.Fatalf("closed view still maintained: %+v", stats)
	}
	// The stale result stays readable.
	out, err := view.Result()
	if err != nil {
		t.Fatal(err)
	}
	if d := distances(t, out); d[5] != 5 {
		t.Fatalf("closed view result changed: %v", d[5])
	}
}

// flakyDeltaMinDist fails PEval on demand, simulating a full recompute that
// errors mid-maintenance.
type flakyDeltaMinDist struct {
	deltaMinDist
	failPEval atomic.Bool
}

func (p *flakyDeltaMinDist) PEval(ctx *Context) error {
	if p.failPEval.Load() {
		return errors.New("injected PEval failure")
	}
	return p.deltaMinDist.PEval(ctx)
}

// TestFailedMaintenanceForcesRecompute is a regression test: when a view's
// maintenance round fails, its retained per-fragment state has missed that
// batch, so the next (even monotone) batch must recompute from scratch
// rather than resume incrementally from the stale state.
func TestFailedMaintenanceForcesRecompute(t *testing.T) {
	g := pathGraph(8)
	s, err := NewSession(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	prog := &flakyDeltaMinDist{deltaMinDist: deltaMinDist{minDistProgram: minDistProgram{source: 0}}}
	view, err := s.Materialize(nil, prog)
	if err != nil {
		t.Fatal(err)
	}

	// Batch 1: a deletion (declines to full recompute) while PEval fails.
	prog.failPEval.Store(true)
	if _, err := s.ApplyUpdates([]graph.Update{graph.RemoveEdgeUpdate(6, 7)}); err == nil {
		t.Fatal("expected maintenance error")
	}
	if _, verr := view.Result(); verr == nil {
		t.Fatal("view should report the maintenance error")
	}

	// Batch 2: monotone, but the view is stale — it must recompute (and
	// thereby pick up batch 1's deletion), not resume incrementally.
	prog.failPEval.Store(false)
	stats, err := s.ApplyUpdates([]graph.Update{graph.AddEdgeUpdate(0, 5, 1, "")})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Incremental != 0 || stats.Recomputed != 1 {
		t.Fatalf("stale view must recompute: %+v", stats)
	}
	out, verr := view.Result()
	if verr != nil {
		t.Fatalf("error not cleared after successful recompute: %v", verr)
	}
	d := distances(t, out)
	if d[5] != 1 {
		t.Fatalf("dist[5] = %v, want 1 (batch 2 insert)", d[5])
	}
	if !math.IsInf(d[7], 1) {
		t.Fatalf("dist[7] = %v, want +Inf (batch 1 deletion must not be lost)", d[7])
	}

	// A healthy view resumes incremental maintenance afterwards.
	stats, err = s.ApplyUpdates([]graph.Update{graph.AddEdgeUpdate(0, 7, 1, "")})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Incremental != 1 {
		t.Fatalf("recovered view should maintain incrementally: %+v", stats)
	}
	out, _ = view.Result()
	if d := distances(t, out); d[7] != 1 {
		t.Fatalf("dist[7] = %v, want 1", d[7])
	}
}

// TestCloseDuringUpdatesAndQueries races Close against concurrent Run,
// ApplyUpdates and Materialize calls: every call must either complete
// normally or fail with ErrSessionClosed, never panic, deadlock or corrupt
// state. Run with -race.
func TestCloseDuringUpdatesAndQueries(t *testing.T) {
	g := pathGraph(30)
	s, err := NewSession(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	check := func(err error) {
		if err != nil && !errors.Is(err, ErrSessionClosed) {
			t.Errorf("unexpected error: %v", err)
		}
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for j := 0; j < 20; j++ {
				_, err := s.ApplyUpdates([]graph.Update{
					graph.AddEdgeUpdate(graph.VertexID(i), graph.VertexID(1000+i*100+j), 1, ""),
				})
				check(err)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 10; j++ {
				_, err := s.Run(nil, &minDistProgram{source: 0})
				check(err)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		v, err := s.Materialize(nil, &deltaMinDist{minDistProgram: minDistProgram{source: 0}})
		check(err)
		if v != nil {
			if _, rerr := v.Result(); rerr != nil {
				check(rerr)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		check(s.Close())
	}()
	close(start)
	wg.Wait()

	// After Close, everything reports ErrSessionClosed.
	if _, err := s.Run(nil, &minDistProgram{source: 0}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Run after close: %v", err)
	}
	if _, err := s.ApplyUpdates([]graph.Update{graph.AddVertexUpdate(9999, "")}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("ApplyUpdates after close: %v", err)
	}
	if _, err := s.Materialize(nil, &minDistProgram{source: 0}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Materialize after close: %v", err)
	}
}

// TestSnapshotConsistencyAcrossEpochs verifies that a coordinator working
// over the workers of one epoch is unaffected by updates installing later
// epochs: fragments are immutable values, so the old epoch stays readable.
func TestSnapshotConsistencyAcrossEpochs(t *testing.T) {
	g := pathGraph(12)
	s, err := NewSession(g, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	workers, epoch, err := s.begin()
	if err != nil {
		t.Fatal(err)
	}
	// Install a new epoch while "holding" the old snapshot.
	if _, err := s.ApplyUpdates([]graph.Update{graph.AddEdgeUpdate(0, 11, 1, "")}); err != nil {
		t.Fatal(err)
	}
	co := &coordinator{opts: s.opts, cluster: s.cluster, workers: workers, epoch: epoch}
	res, err := co.run(nil, &minDistProgram{source: 0})
	s.done(epoch)
	if err != nil {
		t.Fatal(err)
	}
	if d := distances(t, res.Output); d[11] != 11 {
		t.Fatalf("old-epoch query saw the new edge: dist[11]=%v", d[11])
	}
	// A fresh query sees the shortcut.
	res, err = s.Run(nil, &minDistProgram{source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if d := distances(t, res.Output); d[11] != 1 {
		t.Fatalf("new-epoch query missed the new edge: dist[11]=%v", d[11])
	}
}

func TestApplyUpdatesPlacerOption(t *testing.T) {
	g := pathGraph(4)
	p := partition.Partition(g, 2, partition.Hash{})
	s, err := NewSessionPartitioned(p, Options{Placer: func(graph.VertexID) int { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ApplyUpdates([]graph.Update{graph.AddVertexUpdate(77, "")}); err != nil {
		t.Fatal(err)
	}
	if o := s.Partition().GP.Owner(77); o != 1 {
		t.Fatalf("custom placer ignored: owner = %d", o)
	}
}
