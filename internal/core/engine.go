package core

import (
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/partition"
)

// Default limits used when the corresponding Options fields are zero.
const (
	defaultMaxSupersteps = 10000
	defaultMaxRecoveries = 16
)

// Options configure an engine run (the "configuration panel" of Figure 1).
type Options struct {
	// Workers is the number of fragments m (virtual workers). It must be at
	// least 1.
	Workers int
	// Parallelism is the width of the per-worker sweep pool: programs that
	// declare a data-parallel sweep (ParallelCapable) chunk their dense
	// vertex ranges over up to this many goroutines inside each PEval or
	// IncEval. Zero or one selects the sequential legacy path, which is kept
	// as the reference implementation; the CLIs default their -parallelism
	// flag to GOMAXPROCS.
	Parallelism int
	// WorkerConcurrency bounds how many workers compute concurrently (the
	// number of physical workers n; Section 3.1 maps m virtual workers onto
	// n physical ones). For a Session the bound is shared by all in-flight
	// queries. Zero means WorkerConcurrency = Workers.
	WorkerConcurrency int
	// Mode selects the default execution plane: ModeBSP (superstep loop,
	// every program supported) or ModeAsync (free-running workers, only
	// AsyncCapable programs). Individual queries can override it with
	// Session.RunMode. View maintenance always runs BSP.
	Mode ExecMode
	// Strategy is the graph partition strategy. Nil defaults to hash
	// edge-cut.
	Strategy partition.Strategy
	// Placer assigns vertices created by graph updates to fragments. Nil
	// defaults to hashing the vertex ID (consistent with the Hash strategy).
	Placer func(graph.VertexID) int
	// MaxSupersteps caps the number of supersteps as a safety net against
	// non-monotonic programs. Zero means a large default.
	MaxSupersteps int
	// DisableIncEval makes the engine re-run PEval instead of IncEval in
	// every iterative superstep. This is the GRAPE_NI configuration of
	// Exp-2 (Figure 7a) and exists only for that ablation.
	DisableIncEval bool
	// DisableGrouping turns off dynamic message grouping: instead of one
	// batched message per destination fragment per superstep, each changed
	// update parameter is shipped as its own message (ablation for the
	// optimization of Section 6).
	DisableGrouping bool
	// FailureInjector, when non-nil, is consulted before a worker executes a
	// superstep; returning true simulates a worker failure, which the
	// engine's arbitrator recovers from by re-running the work unit on a
	// standby worker (Section 6, "Fault tolerance"). Failure injection is a
	// BSP-superstep concept and is ignored by asynchronous runs.
	FailureInjector func(superstep, worker int) bool
	// CoordinatorFailureAt simulates a coordinator failure at the given
	// superstep (0 = never); the standby coordinator takes over.
	CoordinatorFailureAt int
	// MaxRecoveries caps how many failures the arbitrator will recover
	// before giving up. Zero means a small default.
	MaxRecoveries int
	// Recovery enables fault tolerance and elasticity on distributed
	// sessions: in-flight queries checkpoint consistent cuts every
	// Recovery.Interval supersteps, a worker-process death triggers fragment
	// reassignment plus query restart instead of an error, and freshly joined
	// worker processes receive fragments through live rebalancing. Nil (the
	// zero value) keeps the historical fail-stop behavior. Ignored by
	// non-distributed sessions.
	Recovery *RecoveryOptions
	// NoMetrics turns off the observability plane for runs of this engine:
	// no cluster-wide counters are incremented and no per-query trace is
	// recorded. The benchmark harness uses it to measure instrumentation
	// overhead; per-query Stats fields accumulate either way.
	NoMetrics bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.WorkerConcurrency <= 0 || o.WorkerConcurrency > o.Workers {
		o.WorkerConcurrency = o.Workers
	}
	if o.Parallelism < 0 {
		o.Parallelism = 0
	}
	if o.Strategy == nil {
		o.Strategy = partition.Hash{}
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = defaultMaxSupersteps
	}
	if o.MaxRecoveries <= 0 {
		o.MaxRecoveries = defaultMaxRecoveries
	}
	return o
}

// Result is the outcome of one engine run.
type Result struct {
	// Output is the assembled answer Q(G).
	Output any
	// Stats reports time, supersteps and communication volume.
	Stats *metrics.Stats
	// Contexts exposes the per-fragment contexts after the run, which lets
	// tests and example programs inspect partial results.
	Contexts []*Context
	// RecoveredWorkers counts worker failures recovered by the arbitrator.
	RecoveredWorkers int
	// CoordinatorFailovers counts coordinator failures taken over by the
	// standby coordinator.
	CoordinatorFailovers int
	// Restarts counts how many times the run was restarted after losing a
	// worker process or racing a topology change (only possible with
	// Options.Recovery set on a distributed session).
	Restarts int
	// queryID is the communicator id of the run; on distributed sessions it
	// also names the per-query state retained on the workers (Materialize
	// promotes it into view state).
	queryID uint64
}

// Engine runs PIE programs over partitioned graphs. It is the one-shot form
// of the runtime: every Run partitions (or adopts) a graph, evaluates a
// single query and tears the cluster down. Callers serving many queries over
// one graph should use a Session instead, which partitions once and keeps the
// worker cluster resident.
type Engine struct {
	opts Options
}

// New creates an engine with the given options.
func New(opts Options) *Engine { return &Engine{opts: opts.withDefaults()} }

// Run partitions g with the configured strategy and evaluates the query with
// the given PIE program.
func (e *Engine) Run(g *graph.Graph, q Query, prog Program) (*Result, error) {
	p := partition.Partition(g, e.opts.Workers, e.opts.Strategy)
	return e.RunPartitioned(p, q, prog)
}

// RunPartitioned evaluates the query over an already partitioned graph
// ("the graph is partitioned once for all queries Q posed on G", Section 3.1)
// by running it on a throwaway single-query session.
func (e *Engine) RunPartitioned(p *partition.Partitioned, q Query, prog Program) (*Result, error) {
	s, err := NewSessionPartitioned(p, e.opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Run(q, prog)
}
