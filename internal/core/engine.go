package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/mpi"
	"grape/internal/partition"
)

// Default limits used when the corresponding Options fields are zero.
const (
	defaultMaxSupersteps = 10000
	defaultMaxRecoveries = 16
)

// Message tags used on the transport.
const (
	tagUpdates = "updates"
	tagKV      = "kv"
	tagRaw     = "raw"
)

// Options configure an engine run (the "configuration panel" of Figure 1).
type Options struct {
	// Workers is the number of fragments m (virtual workers). It must be at
	// least 1.
	Workers int
	// Parallelism bounds how many workers compute concurrently (the number
	// of physical workers n; Section 3.1 maps m virtual workers onto n
	// physical ones). Zero means Parallelism = Workers.
	Parallelism int
	// Strategy is the graph partition strategy. Nil defaults to hash
	// edge-cut.
	Strategy partition.Strategy
	// MaxSupersteps caps the number of supersteps as a safety net against
	// non-monotonic programs. Zero means a large default.
	MaxSupersteps int
	// DisableIncEval makes the engine re-run PEval instead of IncEval in
	// every iterative superstep. This is the GRAPE_NI configuration of
	// Exp-2 (Figure 7a) and exists only for that ablation.
	DisableIncEval bool
	// DisableGrouping turns off dynamic message grouping: instead of one
	// batched message per destination fragment per superstep, each changed
	// update parameter is shipped as its own message (ablation for the
	// optimization of Section 6).
	DisableGrouping bool
	// FailureInjector, when non-nil, is consulted before a worker executes a
	// superstep; returning true simulates a worker failure, which the
	// engine's arbitrator recovers from by re-running the work unit on a
	// standby worker (Section 6, "Fault tolerance").
	FailureInjector func(superstep, worker int) bool
	// CoordinatorFailureAt simulates a coordinator failure at the given
	// superstep (0 = never); the standby coordinator takes over.
	CoordinatorFailureAt int
	// MaxRecoveries caps how many failures the arbitrator will recover
	// before giving up. Zero means a small default.
	MaxRecoveries int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Parallelism <= 0 || o.Parallelism > o.Workers {
		o.Parallelism = o.Workers
	}
	if o.Strategy == nil {
		o.Strategy = partition.Hash{}
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = defaultMaxSupersteps
	}
	if o.MaxRecoveries <= 0 {
		o.MaxRecoveries = defaultMaxRecoveries
	}
	return o
}

// Result is the outcome of one engine run.
type Result struct {
	// Output is the assembled answer Q(G).
	Output any
	// Stats reports time, supersteps and communication volume.
	Stats *metrics.Stats
	// Contexts exposes the per-fragment contexts after the run, which lets
	// tests and example programs inspect partial results.
	Contexts []*Context
	// RecoveredWorkers counts worker failures recovered by the arbitrator.
	RecoveredWorkers int
	// CoordinatorFailovers counts coordinator failures taken over by the
	// standby coordinator.
	CoordinatorFailovers int
}

// Engine runs PIE programs over partitioned graphs.
type Engine struct {
	opts Options
}

// New creates an engine with the given options.
func New(opts Options) *Engine { return &Engine{opts: opts.withDefaults()} }

// Run partitions g with the configured strategy and evaluates the query with
// the given PIE program.
func (e *Engine) Run(g *graph.Graph, q Query, prog Program) (*Result, error) {
	p := partition.Partition(g, e.opts.Workers, e.opts.Strategy)
	return e.RunPartitioned(p, q, prog)
}

// RunPartitioned evaluates the query over an already partitioned graph
// ("the graph is partitioned once for all queries Q posed on G", Section 3.1).
func (e *Engine) RunPartitioned(p *partition.Partitioned, q Query, prog Program) (*Result, error) {
	if prog == nil {
		return nil, errors.New("core: nil program")
	}
	m := len(p.Fragments)
	if m == 0 {
		return nil, errors.New("core: partition has no fragments")
	}

	stats := &metrics.Stats{Engine: "GRAPE", Query: prog.Name(), Workers: m}
	timer := metrics.StartTimer()
	cluster := mpi.NewCluster(m, stats)
	kvProg, hasKV := prog.(KeyValueProgram)

	ctxs := make([]*Context, m)
	for i, f := range p.Fragments {
		ctxs[i] = newContext(i, f, p.GP, q)
	}
	res := &Result{Stats: stats, Contexts: ctxs}

	// runStep executes one superstep's local-computation phase across all
	// workers. Injected failures are detected like missed heart-beats: the
	// crashed worker's work unit is not executed, and after the barrier the
	// arbitrator transfers every lost work unit to a standby worker
	// (re-running it against the surviving in-memory fragment state).
	runStep := func(superstep int, body func(w int) error) error {
		var crashMu sync.Mutex
		var crashed []int
		_, err := cluster.Barrier(e.opts.Parallelism, func(w int) error {
			if e.opts.FailureInjector != nil && e.opts.FailureInjector(superstep, w) {
				crashMu.Lock()
				crashed = append(crashed, w)
				crashMu.Unlock()
				return nil
			}
			return safeCall(func() error { return body(w) })
		})
		if err != nil {
			return err
		}
		sort.Ints(crashed)
		for _, w := range crashed {
			if res.RecoveredWorkers >= e.opts.MaxRecoveries {
				return fmt.Errorf("core: worker %d failed and recovery budget exhausted", w)
			}
			cluster.Crash(w)
			res.RecoveredWorkers++
			err := safeCall(func() error { return body(w) })
			cluster.Recover(w)
			if err != nil {
				return err
			}
		}
		return nil
	}

	// route ships a worker's dirty update parameters to every fragment that
	// holds a copy of the variable, deducing destinations from GP exactly as
	// Section 3.2(3) describes (each worker keeps a copy of GP and deduces
	// destinations in parallel, avoiding a coordinator bottleneck).
	route := func(w int, ctx *Context) {
		dirty := ctx.takeDirty()
		if len(dirty) > 0 {
			perDest := make(map[int][]mpi.Update)
			for _, u := range dirty {
				for _, dst := range p.GP.Destinations(graph.VertexID(u.Vertex), w) {
					perDest[dst] = append(perDest[dst], u)
				}
			}
			dests := make([]int, 0, len(perDest))
			for d := range perDest {
				dests = append(dests, d)
			}
			sort.Ints(dests)
			for _, dst := range dests {
				batch := perDest[dst]
				if e.opts.DisableGrouping {
					for _, u := range batch {
						cluster.Send(w, dst, tagUpdates, mpi.EncodeUpdates([]mpi.Update{u}))
					}
				} else {
					cluster.Send(w, dst, tagUpdates, mpi.EncodeUpdates(batch))
				}
			}
		}
		for _, kv := range ctx.takeKV() {
			dst := int(hashKey(kv.Key) % uint32(m))
			cluster.Send(w, dst, tagKV, mpi.EncodeKeyValues([]mpi.KeyValue{kv}))
		}
		for _, raw := range ctx.takeRaw() {
			cluster.Send(w, raw.dst, tagRaw, raw.data)
		}
	}

	// Superstep 1: partial evaluation.
	superstep := 1
	stats.BeginSuperstep()
	err := runStep(superstep, func(w int) error {
		ctx := ctxs[w]
		ctx.Superstep = superstep
		if err := prog.PEval(ctx); err != nil {
			return fmt.Errorf("core: PEval on fragment %d: %w", w, err)
		}
		route(w, ctx)
		return nil
	})
	if err != nil {
		return res, err
	}

	// Iterative supersteps: incremental evaluation until no fragment has
	// pending messages (the simultaneous fixpoint of Section 4.1).
	for {
		if e.opts.CoordinatorFailureAt > 0 && superstep == e.opts.CoordinatorFailureAt {
			// The standby coordinator S'c takes over; the coordinator's only
			// state is termination detection, which is recomputed from the
			// mailboxes, so the run continues seamlessly.
			res.CoordinatorFailovers++
		}
		pending := 0
		for w := 0; w < m; w++ {
			pending += cluster.PendingFor(w)
		}
		if pending == 0 {
			break
		}
		superstep++
		if superstep > e.opts.MaxSupersteps {
			return res, fmt.Errorf("core: %s did not converge within %d supersteps", prog.Name(), e.opts.MaxSupersteps)
		}
		stats.BeginSuperstep()
		// Deliver all mailboxes before the barrier so that messages sent
		// during this superstep only become visible in the next one — the
		// BSP synchronization of Section 3.1, which also makes runs
		// deterministic regardless of goroutine scheduling.
		inboxes := make([][]mpi.Envelope, m)
		for w := 0; w < m; w++ {
			inboxes[w] = cluster.Deliver(w)
		}
		err := runStep(superstep, func(w int) error {
			ctx := ctxs[w]
			ctx.Superstep = superstep
			envs := inboxes[w]
			if len(envs) == 0 {
				return nil // inactive worker this superstep
			}
			var incoming []mpi.Update
			var kvs []mpi.KeyValue
			var raws []mpi.Update
			for _, env := range envs {
				switch env.Tag {
				case tagUpdates:
					ups, err := mpi.DecodeUpdates(env.Payload)
					if err != nil {
						return fmt.Errorf("core: fragment %d: %w", w, err)
					}
					incoming = append(incoming, ups...)
				case tagKV:
					pairs, err := mpi.DecodeKeyValues(env.Payload)
					if err != nil {
						return fmt.Errorf("core: fragment %d: %w", w, err)
					}
					kvs = append(kvs, pairs...)
				case tagRaw:
					raws = append(raws, mpi.Update{Vertex: RawMessageVertex, Key: int64(env.From), Data: env.Payload})
				default:
					return fmt.Errorf("core: fragment %d: unknown message tag %q", w, env.Tag)
				}
			}
			accepted := ctx.applyIncoming(incoming, prog.Aggregate)
			accepted = append(accepted, raws...)
			if len(accepted) > 0 {
				if e.opts.DisableIncEval {
					if err := prog.PEval(ctx); err != nil {
						return fmt.Errorf("core: PEval (NI mode) on fragment %d: %w", w, err)
					}
				} else if err := prog.IncEval(ctx, accepted); err != nil {
					return fmt.Errorf("core: IncEval on fragment %d: %w", w, err)
				}
			}
			if len(kvs) > 0 {
				if !hasKV {
					return fmt.Errorf("core: program %s received key-value messages but does not implement KeyValueProgram", prog.Name())
				}
				if err := kvProg.IncEvalKV(ctx, kvs); err != nil {
					return fmt.Errorf("core: IncEvalKV on fragment %d: %w", w, err)
				}
			}
			route(w, ctx)
			return nil
		})
		if err != nil {
			return res, err
		}
	}

	// Termination: assemble partial results into Q(G).
	out, err := prog.Assemble(q, ctxs)
	if err != nil {
		return res, fmt.Errorf("core: Assemble: %w", err)
	}
	res.Output = out
	stats.Elapsed = timer.Stop()
	return res, nil
}

// safeCall runs fn, converting panics into errors so a buggy plugged-in
// sequential algorithm cannot take down the whole engine.
func safeCall(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: program panicked: %v", r)
		}
	}()
	return fn()
}

func hashKey(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}
