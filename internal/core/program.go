// Package core implements the GRAPE parallel engine — the paper's primary
// contribution (Sections 3, 4 and 6). A sequential graph algorithm is plugged
// in as a PIE program (PEval, IncEval, Assemble); the engine partitions the
// graph, runs PEval on every fragment in parallel, then iterates IncEval over
// designated messages derived from changed update parameters until a
// simultaneous fixpoint is reached, and finally calls Assemble to combine the
// partial results.
//
// Correctness follows the Assurance Theorem (Theorem 1): if PEval and IncEval
// are correct sequential algorithms and the update parameters are changed
// monotonically under the program's Aggregate order, the engine terminates
// with the correct answer. The engine also supports key-value messages, which
// is how MapReduce/BSP programs are simulated (Theorem 2).
//
// Beyond single queries, a Session serves a query stream over resident
// fragments, absorbs graph updates in epoch-versioned batches
// (Session.ApplyUpdates) and keeps materialized views fresh across them
// (Session.Materialize) — the dynamic-graph mode of Section 3.4, implemented
// in update.go and view.go.
//
// # Execution planes
//
// The engine's iteration loop is pluggable: a runner (see runner.go) drives
// the per-fragment tasks from PEval to the global fixpoint, and two planes
// implement it. The BSP runner (bsp.go) is the paper's superstep loop —
// barriers, boundary-delivered messages, "no pending messages" termination;
// it supports every program and is fully deterministic. The async runner
// (async.go) is adaptive asynchronous parallelization: workers loop IncEval
// on whatever messages have already arrived, delivery is immediate, and
// termination is an idle consensus (all workers parked and sent == received).
// Programs opt into the async plane by declaring AsyncCapable, which asserts
// their update accumulation is idempotent and monotone so re-ordered and
// re-delivered batches still converge to the BSP answer. Select the plane
// with Options.Mode or per query with Session.RunMode.
//
// # Intra-fragment parallelism
//
// Orthogonal to both planes, Options.Parallelism gives every worker a sweep
// pool (internal/par): programs that declare ParallelCapable chunk their
// dense vertex-index ranges over up to that many goroutines inside each
// PEval/IncEval, reached through Context.Pool. The capability asserts a
// strict contract — answers byte-identical to the sequential width-1 path,
// which stays in the tree as the reference implementation — so parallel
// evaluation composes with either plane and either transport without
// changing any result, only the wall-clock. Worker processes of a
// distributed session size their pools locally (WorkerHost.SetParallelism,
// the grape-worker -parallelism flag); nothing about the pool crosses the
// wire.
package core

import (
	"grape/internal/mpi"
)

// Query is an opaque query value handed to the PIE program (for example the
// source vertex of an SSSP query, or a pattern graph for matching).
type Query any

// Program is a PIE program: the three sequential functions the user plugs
// into GRAPE (Figure 1: the "algorithm panel"), plus the aggregateMsg
// conflict-resolution policy of the message segment.
type Program interface {
	// Name identifies the query class Q (used in reports).
	Name() string

	// PEval computes the partial answer Q(Fi) on the fragment held by ctx
	// using any sequential algorithm, declares the update parameters of the
	// fragment (ctx.Declare) and records their computed values (ctx.SetVar).
	PEval(ctx *Context) error

	// IncEval incrementally computes Q(Fi ⊕ Mi): msgs contains the updates to
	// this fragment's update parameters that were accepted by the
	// aggregation policy (i.e. that actually changed the local value).
	// Implementations should reuse the partial result stored in ctx.State and
	// only touch the affected area, ideally with a bounded incremental
	// algorithm (Section 3.3).
	IncEval(ctx *Context, msgs []mpi.Update) error

	// Assemble combines the partial results Q(Fi ⊕ Mi) of all fragments into
	// Q(G) once the fixpoint is reached.
	Assemble(q Query, ctxs []*Context) (any, error)

	// Aggregate is the aggregateMsg policy: it resolves conflicts when
	// multiple values are proposed for the same update parameter and must be
	// monotonic with respect to some partial order for the Assurance Theorem
	// to apply (e.g. min for SSSP and CC, "false wins" for Sim, newest
	// timestamp for CF). It returns the value that should be kept.
	Aggregate(existing, incoming mpi.Update) mpi.Update
}

// KeyValueProgram is an optional extension implemented by programs that use
// key-value messages (the MapReduce simulation mode of Section 3.5). When a
// program emits key-value pairs via ctx.EmitKeyValue, the engine groups them
// by key at the coordinator, routes each key to the worker that owns it
// (hash placement) and delivers them through IncEvalKV.
type KeyValueProgram interface {
	Program
	IncEvalKV(ctx *Context, msgs []mpi.KeyValue) error
}

// Aggregators commonly used as aggregateMsg policies.

// MinAggregate keeps the smaller Value; ties keep the existing update. It is
// the policy used by SSSP and CC (Section 5).
func MinAggregate(existing, incoming mpi.Update) mpi.Update {
	if incoming.Value < existing.Value {
		return incoming
	}
	return existing
}

// MaxAggregate keeps the larger Value.
func MaxAggregate(existing, incoming mpi.Update) mpi.Update {
	if incoming.Value > existing.Value {
		return incoming
	}
	return existing
}

// LatestAggregate keeps the update with the larger Key, treating Key as a
// timestamp — the policy used by CF, where the freshest factor vector wins.
func LatestAggregate(existing, incoming mpi.Update) mpi.Update {
	if incoming.Key > existing.Key {
		return incoming
	}
	return existing
}
