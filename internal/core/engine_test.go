package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"

	"grape/internal/graph"
	"grape/internal/graphgen"
	"grape/internal/mpi"
	"grape/internal/partition"
)

// minDistProgram is a tiny PIE program used to exercise the engine: it
// computes unweighted hop distances from a source by BFS inside each
// fragment (PEval) and propagates improved border distances (IncEval) — a
// miniature of the paper's SSSP program with all distances kept in update
// parameters for easy inspection.
type minDistProgram struct {
	source graph.VertexID
	// peCalls / incCalls count invocations for the tests.
	mu       sync.Mutex
	peCalls  int
	incCalls int
}

func (p *minDistProgram) Name() string { return "minDist" }

func (p *minDistProgram) note(inc bool) {
	p.mu.Lock()
	if inc {
		p.incCalls++
	} else {
		p.peCalls++
	}
	p.mu.Unlock()
}

func (p *minDistProgram) relax(ctx *Context, queue []graph.VertexID) {
	g := ctx.Fragment.Graph
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := ctx.VarValue(v, 0, math.Inf(1))
		vi := g.IndexOf(v)
		if vi < 0 {
			continue
		}
		for _, he := range g.OutEdges(vi) {
			u := g.VertexAt(int(he.To))
			if dv+1 < ctx.VarValue(u, 0, math.Inf(1)) {
				ctx.SetVar(u, 0, dv+1, nil)
				queue = append(queue, u)
			}
		}
	}
}

func (p *minDistProgram) PEval(ctx *Context) error {
	p.note(false)
	g := ctx.Fragment.Graph
	for i := 0; i < g.NumVertices(); i++ {
		ctx.Declare(g.VertexAt(i), 0, math.Inf(1), nil)
	}
	if g.HasVertex(p.source) {
		ctx.SetVar(p.source, 0, 0, nil)
	}
	// Relax from every vertex with a finite distance so the same PEval also
	// works as the batch recomputation of the GRAPE_NI ablation.
	var seeds []graph.VertexID
	for i := 0; i < g.NumVertices(); i++ {
		v := g.VertexAt(i)
		if !math.IsInf(ctx.VarValue(v, 0, math.Inf(1)), 1) {
			seeds = append(seeds, v)
		}
	}
	p.relax(ctx, seeds)
	return nil
}

func (p *minDistProgram) IncEval(ctx *Context, msgs []mpi.Update) error {
	p.note(true)
	queue := make([]graph.VertexID, 0, len(msgs))
	for _, m := range msgs {
		queue = append(queue, graph.VertexID(m.Vertex))
	}
	p.relax(ctx, queue)
	return nil
}

func (p *minDistProgram) Assemble(q Query, ctxs []*Context) (any, error) {
	out := make(map[graph.VertexID]float64)
	for _, ctx := range ctxs {
		for _, v := range ctx.Fragment.Local {
			out[v] = ctx.VarValue(v, 0, math.Inf(1))
		}
	}
	return out, nil
}

func (p *minDistProgram) Aggregate(existing, incoming mpi.Update) mpi.Update {
	return MinAggregate(existing, incoming)
}

// referenceHopDistances computes hop distances sequentially for comparison.
func referenceHopDistances(g *graph.Graph, source graph.VertexID) map[graph.VertexID]float64 {
	out := make(map[graph.VertexID]float64, g.NumVertices())
	for i := 0; i < g.NumVertices(); i++ {
		out[g.VertexAt(i)] = math.Inf(1)
	}
	s := g.IndexOf(source)
	if s < 0 {
		return out
	}
	g.BFS(s, func(v, d int) bool {
		out[g.VertexAt(v)] = float64(d)
		return true
	})
	return out
}

func testGraph() *graph.Graph {
	// An undirected grid road network gives every source a large reachable
	// set and forces several IncEval rounds across fragments.
	return graphgen.RoadNetwork(12, 12, graphgen.Config{Seed: 11})
}

func TestEngineMatchesSequential(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(0)
	want := referenceHopDistances(g, src)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, strat := range []partition.Strategy{partition.Hash{}, partition.Multilevel{}} {
			eng := New(Options{Workers: workers, Strategy: strat})
			res, err := eng.Run(g, src, &minDistProgram{source: src})
			if err != nil {
				t.Fatalf("workers=%d strategy=%s: %v", workers, strat.Name(), err)
			}
			got := res.Output.(map[graph.VertexID]float64)
			if len(got) != len(want) {
				t.Fatalf("workers=%d: got %d distances, want %d", workers, len(got), len(want))
			}
			for v, d := range want {
				if got[v] != d {
					t.Fatalf("workers=%d strategy=%s: dist(%d) = %v, want %v",
						workers, strat.Name(), v, got[v], d)
				}
			}
			if res.Stats.Supersteps < 1 {
				t.Fatalf("no supersteps recorded")
			}
			if workers == 1 && res.Stats.MessagesSent != 0 {
				t.Fatalf("single worker should ship no messages, got %d", res.Stats.MessagesSent)
			}
		}
	}
}

func TestEngineStatsAndElapsed(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(0)
	eng := New(Options{Workers: 4})
	res, err := eng.Run(g, src, &minDistProgram{source: src})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Engine != "GRAPE" || st.Query != "minDist" || st.Workers != 4 {
		t.Fatalf("stats header wrong: %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Fatalf("elapsed not recorded")
	}
	if st.MessagesSent == 0 || st.BytesSent == 0 {
		t.Fatalf("expected cross-fragment communication, got none")
	}
	if len(st.PerStep()) != st.Supersteps {
		t.Fatalf("per-step breakdown has %d entries for %d supersteps", len(st.PerStep()), st.Supersteps)
	}
	if !strings.Contains(st.String(), "GRAPE/minDist") {
		t.Fatalf("String() = %q", st.String())
	}
}

func TestEngineParallelismAndGroupingOptions(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(0)
	want := referenceHopDistances(g, src)

	grouped, err := New(Options{Workers: 6, WorkerConcurrency: 2}).Run(g, src, &minDistProgram{source: src})
	if err != nil {
		t.Fatal(err)
	}
	ungrouped, err := New(Options{Workers: 6, WorkerConcurrency: 2, DisableGrouping: true}).
		Run(g, src, &minDistProgram{source: src})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range want {
		if grouped.Output.(map[graph.VertexID]float64)[v] != d ||
			ungrouped.Output.(map[graph.VertexID]float64)[v] != d {
			t.Fatalf("grouping option changed the answer for vertex %d", v)
		}
	}
	// Dynamic grouping batches updates: it must send strictly fewer messages
	// for the same number of shipped values.
	if grouped.Stats.MessagesSent >= ungrouped.Stats.MessagesSent {
		t.Fatalf("grouping did not reduce messages: %d vs %d",
			grouped.Stats.MessagesSent, ungrouped.Stats.MessagesSent)
	}
}

func TestEngineDisableIncEval(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(0)
	prog := &minDistProgram{source: src}
	res, err := New(Options{Workers: 4, DisableIncEval: true}).Run(g, src, prog)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceHopDistances(g, src)
	got := res.Output.(map[graph.VertexID]float64)
	for v, d := range want {
		if got[v] != d {
			t.Fatalf("NI mode wrong distance for %d: %v want %v", v, got[v], d)
		}
	}
	if prog.incCalls != 0 {
		t.Fatalf("NI mode must not call IncEval, called %d times", prog.incCalls)
	}
	if prog.peCalls <= 4 {
		t.Fatalf("NI mode should re-run PEval in iterative supersteps, only %d calls", prog.peCalls)
	}
}

func TestEngineWorkerFailureRecovery(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(0)
	want := referenceHopDistances(g, src)
	failed := false
	var mu sync.Mutex
	inj := func(superstep, worker int) bool {
		mu.Lock()
		defer mu.Unlock()
		if superstep == 2 && worker == 1 && !failed {
			failed = true
			return true
		}
		return false
	}
	res, err := New(Options{Workers: 4, FailureInjector: inj}).Run(g, src, &minDistProgram{source: src})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveredWorkers != 1 {
		t.Fatalf("RecoveredWorkers = %d, want 1", res.RecoveredWorkers)
	}
	got := res.Output.(map[graph.VertexID]float64)
	for v, d := range want {
		if got[v] != d {
			t.Fatalf("answer wrong after failure recovery: dist(%d)=%v want %v", v, got[v], d)
		}
	}
}

func TestEngineRecoveryBudgetExhausted(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(0)
	inj := func(superstep, worker int) bool { return superstep == 1 } // every worker fails forever
	_, err := New(Options{Workers: 4, MaxRecoveries: 2, FailureInjector: inj}).
		Run(g, src, &minDistProgram{source: src})
	if err == nil || !strings.Contains(err.Error(), "recovery budget") {
		t.Fatalf("expected recovery budget error, got %v", err)
	}
}

func TestEngineCoordinatorFailover(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(0)
	res, err := New(Options{Workers: 4, CoordinatorFailureAt: 2}).Run(g, src, &minDistProgram{source: src})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoordinatorFailovers != 1 {
		t.Fatalf("CoordinatorFailovers = %d, want 1", res.CoordinatorFailovers)
	}
	want := referenceHopDistances(g, src)
	got := res.Output.(map[graph.VertexID]float64)
	for v, d := range want {
		if got[v] != d {
			t.Fatalf("answer wrong after coordinator failover")
		}
	}
}

// erroring / panicking programs.

type faultyProgram struct {
	minDistProgram
	failPEval bool
	failInc   bool
	panicInc  bool
}

func (p *faultyProgram) PEval(ctx *Context) error {
	if p.failPEval {
		return errors.New("peval exploded")
	}
	return p.minDistProgram.PEval(ctx)
}

func (p *faultyProgram) IncEval(ctx *Context, msgs []mpi.Update) error {
	if p.panicInc {
		panic("inceval panicked")
	}
	if p.failInc {
		return errors.New("inceval exploded")
	}
	return p.minDistProgram.IncEval(ctx, msgs)
}

func TestEngineProgramErrors(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(0)

	_, err := New(Options{Workers: 3}).Run(g, src, &faultyProgram{minDistProgram: minDistProgram{source: src}, failPEval: true})
	if err == nil || !strings.Contains(err.Error(), "PEval") {
		t.Fatalf("expected PEval error, got %v", err)
	}
	_, err = New(Options{Workers: 3}).Run(g, src, &faultyProgram{minDistProgram: minDistProgram{source: src}, failInc: true})
	if err == nil || !strings.Contains(err.Error(), "IncEval") {
		t.Fatalf("expected IncEval error, got %v", err)
	}
	_, err = New(Options{Workers: 3}).Run(g, src, &faultyProgram{minDistProgram: minDistProgram{source: src}, panicInc: true})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("expected recovered panic, got %v", err)
	}
	_, err = New(Options{Workers: 3}).Run(g, src, nil)
	if err == nil {
		t.Fatalf("nil program must be rejected")
	}
}

// nonConvergingProgram keeps flipping a border variable between two values,
// violating the monotonic condition; the engine must stop at MaxSupersteps
// with an error rather than hang (contrapositive of Theorem 1).
type nonConvergingProgram struct{ minDistProgram }

func (p *nonConvergingProgram) Name() string { return "oscillate" }

func (p *nonConvergingProgram) PEval(ctx *Context) error {
	for _, v := range ctx.Fragment.OutBorder {
		ctx.Declare(v, 0, 0, nil)
		ctx.SetVar(v, 0, 1, nil)
	}
	return nil
}

func (p *nonConvergingProgram) IncEval(ctx *Context, msgs []mpi.Update) error {
	for _, m := range msgs {
		ctx.SetVar(graph.VertexID(m.Vertex), 0, m.Value+1, nil)
	}
	return nil
}

func (p *nonConvergingProgram) Aggregate(existing, incoming mpi.Update) mpi.Update {
	return incoming // last writer wins: not monotonic
}

func TestEngineMaxSuperstepsGuard(t *testing.T) {
	g := testGraph()
	_, err := New(Options{Workers: 4, MaxSupersteps: 10}).Run(g, nil, &nonConvergingProgram{})
	if err == nil || !strings.Contains(err.Error(), "did not converge") {
		t.Fatalf("expected non-convergence error, got %v", err)
	}
}

// wordCountProgram demonstrates the MapReduce simulation of Theorem 2: PEval
// is the Map function emitting (word, 1) key-value pairs from the vertex
// labels of its fragment; IncEvalKV is the Reduce function summing counts for
// the keys routed to this worker; Assemble unions the per-worker counts.
type wordCountProgram struct{}

func (wordCountProgram) Name() string { return "wordcount" }

func (wordCountProgram) PEval(ctx *Context) error {
	g := ctx.Fragment.Graph
	for _, v := range ctx.Fragment.Local {
		i := g.IndexOf(v)
		for _, word := range strings.Fields(g.Label(i)) {
			ctx.EmitKeyValue(word, []byte{1})
		}
	}
	return nil
}

func (wordCountProgram) IncEval(ctx *Context, msgs []mpi.Update) error { return nil }

func (wordCountProgram) IncEvalKV(ctx *Context, msgs []mpi.KeyValue) error {
	counts, _ := ctx.State.(map[string]int)
	if counts == nil {
		counts = make(map[string]int)
		ctx.State = counts
	}
	for _, kv := range msgs {
		counts[kv.Key] += len(kv.Value)
	}
	return nil
}

func (wordCountProgram) Assemble(q Query, ctxs []*Context) (any, error) {
	total := make(map[string]int)
	for _, ctx := range ctxs {
		if counts, ok := ctx.State.(map[string]int); ok {
			for w, c := range counts {
				total[w] += c
			}
		}
	}
	return total, nil
}

func (wordCountProgram) Aggregate(existing, incoming mpi.Update) mpi.Update { return incoming }

func TestSimulateMapReduceWordCount(t *testing.T) {
	// Build a graph whose vertex labels are small documents.
	b := graph.NewBuilder(true)
	docs := []string{
		"the quick brown fox",
		"the lazy dog",
		"quick quick fox",
		"dog eats fox",
	}
	for i, d := range docs {
		b.AddVertex(graph.VertexID(i), d)
	}
	b.AddEdge(0, 1, 1, "")
	b.AddEdge(2, 3, 1, "")
	g := b.Build()

	res, err := New(Options{Workers: 3}).Run(g, nil, wordCountProgram{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output.(map[string]int)
	want := map[string]int{"the": 2, "quick": 3, "brown": 1, "fox": 3, "lazy": 1, "dog": 2, "eats": 1}
	if len(got) != len(want) {
		t.Fatalf("word count = %v, want %v", got, want)
	}
	for w, c := range want {
		if got[w] != c {
			t.Fatalf("count[%q] = %d, want %d", w, got[w], c)
		}
	}
	// The map and reduce phases are separate supersteps, as in the Theorem 2
	// construction (one superstep per phase).
	if res.Stats.Supersteps != 2 {
		t.Fatalf("MapReduce simulation took %d supersteps, want 2", res.Stats.Supersteps)
	}
}

type kvWithoutHandler struct{ wordCountProgram }

func (kvWithoutHandler) IncEvalKV(ctx *Context, msgs []mpi.KeyValue) error {
	return errors.New("should not be called")
}

func TestKeyValueWithoutHandlerFails(t *testing.T) {
	// A program that emits key-value messages but does not implement
	// KeyValueProgram must produce a clear error. We simulate that by
	// wrapping the word-count program in a type that hides the interface.
	type hidden struct{ Program }
	b := graph.NewBuilder(true)
	b.AddVertex(1, "hello world")
	b.AddVertex(2, "world")
	b.AddEdge(1, 2, 1, "")
	g := b.Build()
	_, err := New(Options{Workers: 2}).Run(g, nil, hidden{wordCountProgram{}})
	if err == nil || !strings.Contains(err.Error(), "KeyValueProgram") {
		t.Fatalf("expected KeyValueProgram error, got %v", err)
	}
}

func TestContextVarAccessors(t *testing.T) {
	g := testGraph()
	p := partition.Partition(g, 2, partition.Hash{})
	ctx := newContext(0, p.Fragments[0], p.GP, nil)

	if _, ok := ctx.Var(1, 0); ok {
		t.Fatalf("Var before Declare should not exist")
	}
	if got := ctx.VarValue(1, 0, -5); got != -5 {
		t.Fatalf("VarValue default = %v, want -5", got)
	}
	ctx.Declare(1, 0, 10, nil)
	if ctx.LocalUpdates() != 0 {
		t.Fatalf("Declare must not count as an update")
	}
	ctx.SetVar(1, 0, 10, nil) // unchanged value: no dirty mark
	if len(ctx.dirty) != 0 {
		t.Fatalf("SetVar with unchanged value should not mark dirty")
	}
	ctx.SetVar(1, 0, 3, nil)
	if len(ctx.dirty) != 1 || ctx.LocalUpdates() != 1 {
		t.Fatalf("SetVar with new value should mark dirty")
	}
	ctx.SetVar(2, 1, 7, []byte("x"))
	vars := ctx.Vars()
	if len(vars) != 2 || vars[0].Vertex != 1 || vars[1].Vertex != 2 {
		t.Fatalf("Vars() = %+v", vars)
	}
}

func TestApplyIncomingAggregation(t *testing.T) {
	g := testGraph()
	p := partition.Partition(g, 2, partition.Hash{})
	ctx := newContext(0, p.Fragments[0], p.GP, nil)
	ctx.Declare(5, 0, 10, nil)

	accepted := ctx.applyIncoming([]mpi.Update{
		{Vertex: 5, Key: 0, Value: 12}, // worse: rejected by min
		{Vertex: 5, Key: 0, Value: 4},  // better: accepted
		{Vertex: 9, Key: 0, Value: 2},  // undeclared: accepted as-is
	}, MinAggregate)
	if len(accepted) != 2 {
		t.Fatalf("accepted %d updates, want 2 (%+v)", len(accepted), accepted)
	}
	if got := ctx.VarValue(5, 0, -1); got != 4 {
		t.Fatalf("aggregated value = %v, want 4", got)
	}
	if got := ctx.VarValue(9, 0, -1); got != 2 {
		t.Fatalf("new variable value = %v, want 2", got)
	}
	// Incoming changes are not marked dirty.
	if len(ctx.dirty) != 0 {
		t.Fatalf("applyIncoming must not mark dirty")
	}
}

func TestAggregators(t *testing.T) {
	a := mpi.Update{Value: 3, Key: 1}
	b := mpi.Update{Value: 5, Key: 2}
	if MinAggregate(a, b).Value != 3 || MinAggregate(b, a).Value != 3 {
		t.Fatalf("MinAggregate wrong")
	}
	if MaxAggregate(a, b).Value != 5 || MaxAggregate(b, a).Value != 5 {
		t.Fatalf("MaxAggregate wrong")
	}
	if LatestAggregate(a, b).Key != 2 || LatestAggregate(b, a).Key != 2 {
		t.Fatalf("LatestAggregate wrong")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers != 1 || o.WorkerConcurrency != 1 || o.Strategy == nil {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if o.MaxSupersteps != defaultMaxSupersteps || o.MaxRecoveries != defaultMaxRecoveries {
		t.Fatalf("limit defaults wrong: %+v", o)
	}
	o = Options{Workers: 4, WorkerConcurrency: 99}.withDefaults()
	if o.WorkerConcurrency != 4 {
		t.Fatalf("worker concurrency not clamped to workers: %+v", o)
	}
}

// TestAssuranceDeterminism re-runs the same query several times with the same
// partition and asserts the outcome — including superstep count and shipped
// values — is identical, the determinism argument in the proof of Theorem 1.
func TestAssuranceDeterminism(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(3)
	p := partition.Partition(g, 5, partition.Multilevel{})
	var firstOut string
	var firstSteps int
	for run := 0; run < 3; run++ {
		res, err := New(Options{Workers: 5}).RunPartitioned(p, src, &minDistProgram{source: src})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Output.(map[graph.VertexID]float64)
		keys := make([]int, 0, len(got))
		for v := range got {
			keys = append(keys, int(v))
		}
		sort.Ints(keys)
		var sb strings.Builder
		for _, v := range keys {
			fmt.Fprintf(&sb, "%d=%v;", v, got[graph.VertexID(v)])
		}
		if run == 0 {
			firstOut = sb.String()
			firstSteps = res.Stats.Supersteps
			continue
		}
		if sb.String() != firstOut {
			t.Fatalf("run %d produced a different answer", run)
		}
		if res.Stats.Supersteps != firstSteps {
			t.Fatalf("run %d took %d supersteps, first run took %d", run, res.Stats.Supersteps, firstSteps)
		}
	}
}
