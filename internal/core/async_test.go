package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"grape/internal/graph"
	"grape/internal/graphgen"
	"grape/internal/mpi"
	"grape/internal/workload"
)

// asyncDistProgram opts the test hop-distance program into the async plane:
// its min-aggregated distances are exactly the idempotent/monotone
// accumulation AsyncCapable asserts.
type asyncDistProgram struct{ *minDistProgram }

func (asyncDistProgram) AsyncSafe() bool { return true }

func newAsyncDist(source graph.VertexID) asyncDistProgram {
	return asyncDistProgram{&minDistProgram{source: source}}
}

func TestAsyncMatchesBSP(t *testing.T) {
	for _, seed := range []int64{3, 17, 99} {
		g := graphgen.RoadNetwork(10, 10, graphgen.Config{Seed: seed})
		src := g.VertexAt(int(seed) % g.NumVertices())
		want := referenceHopDistances(g, src)
		for _, workers := range []int{1, 3, 6} {
			s, err := NewSession(g, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			bsp, err := s.RunMode(src, newAsyncDist(src), ModeBSP)
			if err != nil {
				t.Fatalf("seed=%d workers=%d bsp: %v", seed, workers, err)
			}
			async, err := s.RunMode(src, newAsyncDist(src), ModeAsync)
			if err != nil {
				t.Fatalf("seed=%d workers=%d async: %v", seed, workers, err)
			}
			s.Close()
			b := bsp.Output.(map[graph.VertexID]float64)
			a := async.Output.(map[graph.VertexID]float64)
			if len(a) != len(want) || len(b) != len(want) {
				t.Fatalf("seed=%d workers=%d: sizes %d/%d, want %d", seed, workers, len(a), len(b), len(want))
			}
			for v, d := range want {
				if b[v] != d || a[v] != d {
					t.Fatalf("seed=%d workers=%d: dist(%d) bsp=%v async=%v want %v",
						seed, workers, v, b[v], a[v], d)
				}
			}
			if async.Stats.Mode != "async" || bsp.Stats.Mode != "bsp" {
				t.Fatalf("modes = %q/%q", bsp.Stats.Mode, async.Stats.Mode)
			}
			if async.Stats.Supersteps != 0 {
				t.Fatalf("async run recorded %d supersteps", async.Stats.Supersteps)
			}
			if async.Stats.Rounds < 1 || bsp.Stats.Rounds != bsp.Stats.Supersteps {
				t.Fatalf("rounds bookkeeping: bsp %d/%d, async %d",
					bsp.Stats.Rounds, bsp.Stats.Supersteps, async.Stats.Rounds)
			}
		}
	}
}

func TestAsyncRequiresCapability(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(0)
	s, err := NewSession(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A plain program without the AsyncCapable declaration must be rejected
	// with the explicit capability error, not run incorrectly.
	if _, err := s.RunMode(src, &minDistProgram{source: src}, ModeAsync); !errors.Is(err, ErrAsyncUnsupported) {
		t.Fatalf("async run of non-capable program: err = %v, want ErrAsyncUnsupported", err)
	}
	// The same program still runs fine on the BSP plane.
	if _, err := s.RunMode(src, &minDistProgram{source: src}, ModeBSP); err != nil {
		t.Fatalf("bsp run: %v", err)
	}
}

func TestOptionsModeDefault(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(0)
	want := referenceHopDistances(g, src)
	s, err := NewSession(g, Options{Workers: 4, Mode: ModeAsync})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Run(src, newAsyncDist(src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Mode != "async" {
		t.Fatalf("session default mode not applied: %q", res.Stats.Mode)
	}
	got := res.Output.(map[graph.VertexID]float64)
	for v, d := range want {
		if got[v] != d {
			t.Fatalf("dist(%d) = %v, want %v", v, got[v], d)
		}
	}
}

// slowFragmentProgram delays every IncEval round on one fragment,
// simulating a straggler worker (overloaded machine, skewed fragment).
type slowFragmentProgram struct {
	asyncDistProgram
	frag  int
	delay time.Duration
}

func (p slowFragmentProgram) IncEval(ctx *Context, msgs []mpi.Update) error {
	if ctx.Worker == p.frag {
		time.Sleep(p.delay)
	}
	return p.asyncDistProgram.IncEval(ctx, msgs)
}

// TestAsyncStragglerBeatsBSP is the straggler regression: with one slow
// fragment, the async plane must finish faster than BSP (it does not pay the
// straggler's per-superstep delay at every barrier) while computing the same
// answer.
func TestAsyncStragglerBeatsBSP(t *testing.T) {
	const chain, m = 30, 3
	p, src := workload.Straggler(chain, m)
	s, err := NewSessionPartitioned(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	prog := func() slowFragmentProgram {
		return slowFragmentProgram{asyncDistProgram: newAsyncDist(src), frag: 0, delay: 2 * time.Millisecond}
	}
	bsp, err := s.RunMode(src, prog(), ModeBSP)
	if err != nil {
		t.Fatal(err)
	}
	async, err := s.RunMode(src, prog(), ModeAsync)
	if err != nil {
		t.Fatal(err)
	}

	b := bsp.Output.(map[graph.VertexID]float64)
	a := async.Output.(map[graph.VertexID]float64)
	if len(a) != len(b) {
		t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
	}
	for v, d := range b {
		if a[v] != d {
			t.Fatalf("dist(%d): async %v, bsp %v", v, a[v], d)
		}
	}
	// The chain forces ~one superstep per hop, each paying the straggler
	// delay; async batches the straggler's inbox into far fewer rounds. The
	// round counts are the schedule-independent assertion; the wall-clock
	// check then holds with a wide margin (the BSP run sleeps at least
	// (Supersteps - asyncRounds) x 2ms more than the async run, ~40ms here,
	// far above scheduling noise even under -race on a loaded CI runner).
	if bsp.Stats.Supersteps < chain/2 {
		t.Fatalf("BSP finished in %d supersteps; straggler workload should need ~%d", bsp.Stats.Supersteps, chain)
	}
	asyncRounds := async.Stats.WorkerRounds()[0]
	if asyncRounds*2 > int64(bsp.Stats.Supersteps) {
		t.Fatalf("straggler ran %d async rounds, not well below %d supersteps", asyncRounds, bsp.Stats.Supersteps)
	}
	if async.Stats.Elapsed >= bsp.Stats.Elapsed {
		t.Fatalf("async (%v) not faster than BSP (%v) on straggler workload",
			async.Stats.Elapsed, bsp.Stats.Elapsed)
	}
	t.Logf("straggler: bsp %v (%d supersteps), async %v (%d straggler rounds), speedup %.2fx",
		bsp.Stats.Elapsed, bsp.Stats.Supersteps, async.Stats.Elapsed, asyncRounds,
		float64(bsp.Stats.Elapsed)/float64(async.Stats.Elapsed))
}

// TestAsyncConcurrentSessions runs BSP and async queries concurrently over
// one resident session (exercised under -race in CI) and checks every result
// against the sequential reference.
func TestAsyncConcurrentSessions(t *testing.T) {
	g := testGraph()
	s, err := NewSession(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const queries = 12
	var wg sync.WaitGroup
	errs := make(chan error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := g.VertexAt((i * 13) % g.NumVertices())
			mode := ModeBSP
			if i%2 == 0 {
				mode = ModeAsync
			}
			res, err := s.RunMode(src, newAsyncDist(src), mode)
			if err != nil {
				errs <- fmt.Errorf("query %d (%v): %w", i, mode, err)
				return
			}
			got := res.Output.(map[graph.VertexID]float64)
			for v, d := range referenceHopDistances(g, src) {
				if got[v] != d {
					errs <- fmt.Errorf("query %d (%v): dist(%d) = %v, want %v", i, mode, v, got[v], d)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestAsyncAcrossEpochs checks cross-mode equivalence after ApplyUpdates
// batches: both planes must see the same (new) epoch and agree.
func TestAsyncAcrossEpochs(t *testing.T) {
	g := graphgen.RoadNetwork(8, 8, graphgen.Config{Seed: 5})
	s, err := NewSession(g, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	src := g.VertexAt(1)

	for epoch := 1; epoch <= 3; epoch++ {
		batch := []graph.Update{
			graph.AddVertexUpdate(graph.VertexID(100000+epoch), ""),
			graph.AddEdgeUpdate(src, graph.VertexID(100000+epoch), 1, ""),
			graph.AddEdgeUpdate(graph.VertexID(100000+epoch), g.VertexAt(10*epoch), 1, ""),
		}
		if _, err := s.ApplyUpdates(batch); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		bsp, err := s.RunMode(src, newAsyncDist(src), ModeBSP)
		if err != nil {
			t.Fatalf("epoch %d bsp: %v", epoch, err)
		}
		async, err := s.RunMode(src, newAsyncDist(src), ModeAsync)
		if err != nil {
			t.Fatalf("epoch %d async: %v", epoch, err)
		}
		b := bsp.Output.(map[graph.VertexID]float64)
		a := async.Output.(map[graph.VertexID]float64)
		if len(a) != len(b) {
			t.Fatalf("epoch %d: result sizes differ: %d vs %d", epoch, len(a), len(b))
		}
		for v, d := range b {
			if a[v] != d {
				t.Fatalf("epoch %d: dist(%d) async %v, bsp %v", epoch, v, a[v], d)
			}
		}
		if _, ok := a[graph.VertexID(100000+epoch)]; !ok {
			t.Fatalf("epoch %d: new vertex missing from async result", epoch)
		}
	}
}

// erroringProgram fails IncEval on one fragment to prove async error paths
// terminate the run instead of deadlocking the idle consensus.
type erroringProgram struct {
	asyncDistProgram
	failOn int
}

func (p erroringProgram) IncEval(ctx *Context, msgs []mpi.Update) error {
	if ctx.Worker == p.failOn {
		return errors.New("boom")
	}
	return p.asyncDistProgram.IncEval(ctx, msgs)
}

func TestAsyncErrorPropagates(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(0)
	s, err := NewSession(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = s.RunMode(src, erroringProgram{asyncDistProgram: newAsyncDist(src), failOn: 1}, ModeAsync)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("async run with failing worker did not terminate")
	}
	if runErr == nil {
		t.Fatalf("expected the worker error to surface")
	}
}

// TestAsyncIdleAndRoundStats sanity-checks the per-mode metrics satellites:
// both planes report per-worker rounds, and the BSP straggler run shows the
// fast workers' barrier-wait as idle time.
func TestAsyncIdleAndRoundStats(t *testing.T) {
	const chain, m = 20, 3
	p, src := workload.Straggler(chain, m)
	s, err := NewSessionPartitioned(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	prog := slowFragmentProgram{asyncDistProgram: newAsyncDist(src), frag: 0, delay: time.Millisecond}

	bsp, err := s.RunMode(src, prog, ModeBSP)
	if err != nil {
		t.Fatal(err)
	}
	if idle := bsp.Stats.WorkerIdle(); len(idle) != m || idle[1] <= 0 {
		t.Fatalf("BSP idle per worker = %v; fast workers should wait at barriers", idle)
	}
	if rounds := bsp.Stats.WorkerRounds(); len(rounds) != m || rounds[0] == 0 {
		t.Fatalf("BSP rounds per worker = %v", rounds)
	}

	async, err := s.RunMode(src, prog, ModeAsync)
	if err != nil {
		t.Fatal(err)
	}
	if rounds := async.Stats.WorkerRounds(); len(rounds) != m || rounds[0] == 0 {
		t.Fatalf("async rounds per worker = %v", rounds)
	}
	if async.Stats.TotalIdle() <= 0 {
		t.Fatalf("async run recorded no idle time at all")
	}
}

// TestAsyncSingleWorker: the degenerate one-fragment case terminates after
// PEval (nothing to exchange) on both planes.
func TestAsyncSingleWorker(t *testing.T) {
	g := testGraph()
	src := g.VertexAt(3)
	s, err := NewSession(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.RunMode(src, newAsyncDist(src), ModeAsync)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MessagesSent != 0 {
		t.Fatalf("single worker shipped %d messages", res.Stats.MessagesSent)
	}
	got := res.Output.(map[graph.VertexID]float64)
	for v, d := range referenceHopDistances(g, src) {
		if got[v] != d && !(math.IsInf(got[v], 1) && math.IsInf(d, 1)) {
			t.Fatalf("dist(%d) = %v, want %v", v, got[v], d)
		}
	}
}
