package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"grape/internal/metrics"
	"grape/internal/mpi"
)

// asyncRunner is the adaptive asynchronous execution plane. Each worker runs
// in its own goroutine: PEval first, then a drain loop that applies IncEval
// to whatever messages have already arrived — no superstep barrier, so a
// fast fragment never waits for a straggler, and a slow fragment absorbs its
// backlog in large batches instead of one barrier-paced message at a time.
// Messages travel through an async communicator (immediate visibility plus
// per-destination wake signals; see mpi.NewAsyncComm).
//
// Termination is detected by the coordinator via idle consensus: the run is
// over exactly when every worker is parked on an empty inbox AND the
// communicator's sent and received counters agree (no envelope in flight).
// Workers announce idle transitions on a condition variable the coordinator
// waits on; the check is sound because a worker only sends while it is not
// idle, so while the coordinator observes "all idle" under the state lock no
// counter can move (see run for the argument).
//
// Only programs declaring AsyncCapable may run here: asynchronous delivery
// re-orders and batches updates arbitrarily, which is harmless exactly when
// the program's Aggregate policy is idempotent and monotone. Failure
// injection and coordinator failover are BSP-superstep concepts and are not
// simulated on this plane.
type asyncRunner struct {
	opts    Options
	cluster mpi.Transport
	// ctx, when non-nil, aborts the run: cancellation fails the idle
	// consensus, which stops every worker at its next round boundary.
	ctx context.Context
}

func (r *asyncRunner) mode() ExecMode { return ModeAsync }

// asyncState is the idle-consensus state shared by the workers and the
// terminating coordinator.
type asyncState struct {
	mu   sync.Mutex
	cond *sync.Cond
	idle []bool
	err  error
}

func newAsyncState(m int) *asyncState {
	st := &asyncState{idle: make([]bool, m)}
	st.cond = sync.NewCond(&st.mu)
	return st
}

func (st *asyncState) setIdle(w int, idle bool) {
	st.mu.Lock()
	st.idle[w] = idle
	if idle {
		st.cond.Broadcast()
	}
	st.mu.Unlock()
}

// fail records the first error and wakes the coordinator.
func (st *asyncState) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// allIdleLocked must be called with st.mu held.
func (st *asyncState) allIdleLocked() bool {
	for _, idle := range st.idle {
		if !idle {
			return false
		}
	}
	return true
}

func (r *asyncRunner) run(tasks []*task, comm *mpi.Comm, stats *metrics.Stats, res *Result) error {
	m := len(tasks)
	st := newAsyncState(m)
	if r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		// Cancellation is delivered as a failure: it wakes the coordinator's
		// consensus wait, which tears the workers down at their next round.
		stop := context.AfterFunc(r.ctx, func() { st.fail(r.ctx.Err()) })
		defer stop()
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	// Safety net against non-monotone programs, mirroring MaxSupersteps: the
	// whole run may execute at most MaxSupersteps rounds per worker on
	// average before it is declared divergent.
	var totalRounds atomic.Int64
	roundsCap := int64(r.opts.MaxSupersteps) * int64(m)

	for w := range tasks {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.worker(tasks[w], comm, stats, st, done, &totalRounds, roundsCap)
		}(w)
	}

	// Idle consensus. Soundness: workers flip their idle flag under st.mu and
	// send only between setIdle(w, false) and the next setIdle(w, true), so
	// while the coordinator holds st.mu and observes every flag true, no
	// worker is computing and none can start (waking requires the lock);
	// the counters read inside the critical section are therefore stable,
	// and sent == received means no envelope is buffered anywhere. All
	// messages ever delivered were fully processed before their receiver
	// went idle — the global fixpoint.
	st.mu.Lock()
	for st.err == nil {
		if st.allIdleLocked() && comm.Sent() == comm.Received() {
			break
		}
		st.cond.Wait()
	}
	err := st.err
	st.mu.Unlock()
	close(done)
	wg.Wait()
	return err
}

// worker is one fragment's asynchronous loop: PEval, then drain-and-IncEval
// until the coordinator announces termination. Local computation runs under
// a cluster compute slot so the m virtual workers still map onto n physical
// ones (Section 3.1) even without barriers; time parked on an empty inbox is
// metered as idle.
func (r *asyncRunner) worker(t *task, comm *mpi.Comm, stats *metrics.Stats,
	st *asyncState, done <-chan struct{}, totalRounds *atomic.Int64, roundsCap int64) {
	w := t.worker.rank
	tr := stats.Trace()
	round := 1
	stats.BeginRound(round)
	release := r.cluster.AcquireSlot()
	endSpan := tr.Span("PEval", w)
	err := safeCall(func() error { return t.peval(round) })
	endSpan()
	release()
	stats.AddWorkerRound(w)
	if err != nil {
		st.fail(fmt.Errorf("core: async PEval on fragment %d: %w", w, err))
		return
	}
	wake := comm.Wake(w)
	for {
		select {
		case <-done:
			return
		default:
		}
		envs := comm.Deliver(w)
		if len(envs) == 0 {
			st.setIdle(w, true)
			idleTimer := metrics.StartTimer()
			select {
			case <-done:
				return
			case <-wake:
			}
			idle := idleTimer.Stop()
			stats.AddWorkerIdle(w, idle)
			if !r.opts.NoMetrics {
				obsAsyncIdleSeconds.Add(idle.Seconds())
			}
			st.setIdle(w, false)
			continue
		}
		if totalRounds.Add(1) > roundsCap {
			st.fail(fmt.Errorf("core: %s did not converge within %d async rounds", t.prog.Name(), roundsCap))
			return
		}
		round++
		stats.BeginRound(round)
		release := r.cluster.AcquireSlot()
		endSpan := tr.Span(fmt.Sprintf("IncEval r%d", round), w)
		err := safeCall(func() error { return t.incremental(round, envs) })
		endSpan()
		release()
		stats.AddWorkerRound(w)
		if err != nil {
			st.fail(err)
			return
		}
	}
}
