package core

import (
	"errors"
	"fmt"

	"grape/internal/metrics"
	"grape/internal/mpi"
)

// coordinator drives one query over a session's resident workers. It is
// mode-agnostic: it creates the query-scoped communicator and per-fragment
// contexts, hands them to the execution plane the query selected — the BSP
// runner (superstep loop, pending-message termination, failure arbitration)
// or the async runner (free-running workers, idle-consensus termination) —
// and finally assembles Q(G) from the converged partial results.
//
// A coordinator is created per query; several coordinators run concurrently
// over the same workers, isolated by their communicators. Worker-failure
// bookkeeping is kept per query so that one query recovering a simulated
// crash never hides a worker from the others.
type coordinator struct {
	opts    Options
	cluster *mpi.Cluster
	workers []*worker
}

// run evaluates one query with the given PIE program to fixpoint on the
// options' default execution plane.
func (c *coordinator) run(q Query, prog Program) (*Result, error) {
	return c.runMode(q, prog, c.opts.Mode)
}

// runMode evaluates one query on an explicitly selected execution plane.
func (c *coordinator) runMode(q Query, prog Program, mode ExecMode) (*Result, error) {
	if prog == nil {
		return nil, errors.New("core: nil program")
	}
	m := len(c.workers)
	if m == 0 {
		return nil, errors.New("core: partition has no fragments")
	}
	if mode == ModeAsync && !SupportsAsync(prog) {
		return nil, fmt.Errorf("core: %s: %w", prog.Name(), ErrAsyncUnsupported)
	}

	stats := &metrics.Stats{Engine: "GRAPE", Query: prog.Name(), Workers: m}
	timer := metrics.StartTimer()
	// Stop the timer on every return path so failed runs report wall time too.
	defer func() { stats.Elapsed = timer.Stop() }()

	var comm *mpi.Comm
	var r runner
	switch mode {
	case ModeAsync:
		comm = c.cluster.NewAsyncComm(stats)
		r = &asyncRunner{opts: c.opts, cluster: c.cluster}
	default:
		comm = c.cluster.NewComm(stats)
		r = &bspRunner{opts: c.opts, cluster: c.cluster}
	}

	tasks := make([]*task, m)
	ctxs := make([]*Context, m)
	for i, w := range c.workers {
		tasks[i] = w.newTask(q, prog, comm, c.opts)
		ctxs[i] = tasks[i].ctx
	}
	res := &Result{Stats: stats, Contexts: ctxs}

	err := r.run(tasks, comm, stats, res)
	stats.FinishRun(r.mode().String())
	if err != nil {
		return res, err
	}

	// Termination: assemble partial results into Q(G).
	out, err := prog.Assemble(q, ctxs)
	if err != nil {
		return res, fmt.Errorf("core: Assemble: %w", err)
	}
	res.Output = out
	return res, nil
}

// safeCall runs fn, converting panics into errors so a buggy plugged-in
// sequential algorithm cannot take down the whole engine.
func safeCall(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: program panicked: %v", r)
		}
	}()
	return fn()
}
