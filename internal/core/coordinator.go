package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"grape/internal/metrics"
	"grape/internal/mpi"
)

// coordinator drives one query's BSP loop over a session's resident workers:
// it creates the query-scoped communicator and contexts, runs PEval, iterates
// IncEval supersteps until the simultaneous fixpoint (Section 4.1), detects
// termination from the communicator's pending envelopes, arbitrates worker
// failures, and finally assembles Q(G).
//
// A coordinator is created per query; several coordinators run concurrently
// over the same workers, isolated by their communicators. Worker-failure
// bookkeeping is kept per query so that one query recovering a simulated
// crash never hides a worker from the others.
type coordinator struct {
	opts    Options
	cluster *mpi.Cluster
	workers []*worker
}

// run evaluates one query with the given PIE program to fixpoint.
func (c *coordinator) run(q Query, prog Program) (*Result, error) {
	if prog == nil {
		return nil, errors.New("core: nil program")
	}
	m := len(c.workers)
	if m == 0 {
		return nil, errors.New("core: partition has no fragments")
	}

	stats := &metrics.Stats{Engine: "GRAPE", Query: prog.Name(), Workers: m}
	timer := metrics.StartTimer()
	// Stop the timer on every return path so failed runs report wall time too.
	defer func() { stats.Elapsed = timer.Stop() }()
	comm := c.cluster.NewComm(stats)

	tasks := make([]*task, m)
	ctxs := make([]*Context, m)
	for i, w := range c.workers {
		tasks[i] = w.newTask(q, prog, comm, c.opts)
		ctxs[i] = tasks[i].ctx
	}
	res := &Result{Stats: stats, Contexts: ctxs}

	// runStep executes one superstep's local-computation phase across all
	// workers. Injected failures are detected like missed heart-beats: the
	// crashed worker's work unit is not executed, and after the barrier the
	// arbitrator transfers every lost work unit to a standby worker
	// (re-running it against the surviving in-memory fragment state).
	runStep := func(superstep int, body func(w int) error) error {
		var crashMu sync.Mutex
		var crashed []int
		_, err := c.cluster.BarrierFor(func(int) bool { return true }, 0, func(w int) error {
			if c.opts.FailureInjector != nil && c.opts.FailureInjector(superstep, w) {
				crashMu.Lock()
				crashed = append(crashed, w)
				crashMu.Unlock()
				return nil
			}
			return safeCall(func() error { return body(w) })
		})
		if err != nil {
			return err
		}
		sort.Ints(crashed)
		for _, w := range crashed {
			if res.RecoveredWorkers >= c.opts.MaxRecoveries {
				return fmt.Errorf("core: worker %d failed and recovery budget exhausted", w)
			}
			res.RecoveredWorkers++
			if err := safeCall(func() error { return body(w) }); err != nil {
				return err
			}
		}
		return nil
	}

	// Superstep 1: partial evaluation.
	superstep := 1
	stats.BeginSuperstep()
	err := runStep(superstep, func(w int) error { return tasks[w].peval(superstep) })
	if err != nil {
		return res, err
	}

	// Iterative supersteps until the simultaneous fixpoint.
	if err := c.iterate(tasks, comm, stats, res, runStep, superstep); err != nil {
		return res, err
	}

	// Termination: assemble partial results into Q(G).
	out, err := prog.Assemble(q, ctxs)
	if err != nil {
		return res, fmt.Errorf("core: Assemble: %w", err)
	}
	res.Output = out
	return res, nil
}

// iterate drives the iterative supersteps — incremental evaluation until no
// fragment has pending messages (the simultaneous fixpoint of Section 4.1).
// It is shared by query runs (after PEval) and by view maintenance rounds
// (after EvalDelta). superstep is the number of the superstep that just ran.
func (c *coordinator) iterate(tasks []*task, comm *mpi.Comm, stats *metrics.Stats,
	res *Result, runStep func(superstep int, body func(w int) error) error, superstep int) error {
	m := len(tasks)
	prog := tasks[0].prog
	for {
		if c.opts.CoordinatorFailureAt > 0 && superstep == c.opts.CoordinatorFailureAt {
			// The standby coordinator S'c takes over; the coordinator's only
			// state is termination detection, which is recomputed from the
			// mailboxes, so the run continues seamlessly.
			res.CoordinatorFailovers++
		}
		if comm.TotalPending() == 0 {
			return nil
		}
		superstep++
		if superstep > c.opts.MaxSupersteps {
			return fmt.Errorf("core: %s did not converge within %d supersteps", prog.Name(), c.opts.MaxSupersteps)
		}
		stats.BeginSuperstep()
		// Deliver all mailboxes before the barrier so that messages sent
		// during this superstep only become visible in the next one — the
		// BSP synchronization of Section 3.1, which also makes runs
		// deterministic regardless of goroutine scheduling.
		inboxes := make([][]mpi.Envelope, m)
		for w := 0; w < m; w++ {
			inboxes[w] = comm.Deliver(w)
		}
		if err := runStep(superstep, func(w int) error { return tasks[w].incremental(superstep, inboxes[w]) }); err != nil {
			return err
		}
	}
}

// safeCall runs fn, converting panics into errors so a buggy plugged-in
// sequential algorithm cannot take down the whole engine.
func safeCall(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: program panicked: %v", r)
		}
	}()
	return fn()
}
