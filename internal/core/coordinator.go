package core

import (
	"context"
	"errors"
	"fmt"

	"grape/internal/metrics"
	"grape/internal/mpi"
	"grape/internal/obs"
)

// coordinator drives one query over a session's resident workers. It is
// mode-agnostic: it creates the query-scoped communicator and per-fragment
// contexts, hands them to the execution plane the query selected — the BSP
// runner (superstep loop, pending-message termination, failure arbitration)
// or the async runner (free-running workers, idle-consensus termination) —
// and finally assembles Q(G) from the converged partial results.
//
// A coordinator is created per query; several coordinators run concurrently
// over the same workers, isolated by their communicators. Worker-failure
// bookkeeping is kept per query so that one query recovering a simulated
// crash never hides a worker from the others.
type coordinator struct {
	opts    Options
	cluster mpi.Transport
	workers []*worker
	remotes []RemotePeer // per-rank peers; nil for all-local sessions
	epoch   int64        // session epoch the query reads (names remote residency)
	// retain keeps the per-query state alive on the remote workers after a
	// successful run instead of Ending it — Materialize uses it to leave the
	// converged contexts behind as view state.
	retain bool
	// ctx, when non-nil, cancels the run at the next superstep (BSP) or round
	// (async) boundary and is threaded into the runner planes.
	ctx context.Context
	// ckpt, when non-nil, records consistent cuts of the run every few
	// supersteps so the session's restart loop can resume it after a worker
	// loss (BSP plane only; see recovery.go).
	ckpt *ckptRecorder
	// resume, when non-nil, makes the BSP runner skip PEval and restart from
	// the cut instead: every rank's state is restored and the cut's inboxes
	// replayed.
	resume *checkpointCut
}

// run evaluates one query with the given PIE program to fixpoint on the
// options' default execution plane.
func (c *coordinator) run(q Query, prog Program) (*Result, error) {
	return c.runMode(q, prog, c.opts.Mode)
}

// runMode evaluates one query on an explicitly selected execution plane.
func (c *coordinator) runMode(q Query, prog Program, mode ExecMode) (res *Result, retErr error) {
	if prog == nil {
		return nil, errors.New("core: nil program")
	}
	m := len(c.workers)
	if m == 0 {
		return nil, errors.New("core: partition has no fragments")
	}
	if mode == ModeAsync && !SupportsAsync(prog) {
		return nil, fmt.Errorf("core: %s: %w", prog.Name(), ErrAsyncUnsupported)
	}
	// Distributed runs need the program's wire codecs: encode the query once
	// here, decode partial results after the fixpoint below.
	var remoteProg RemoteProgram
	var queryBytes []byte
	if c.remotes != nil {
		rp, ok := prog.(RemoteProgram)
		if !ok {
			return nil, fmt.Errorf("core: %s does not support distributed execution (no RemoteProgram codecs)", prog.Name())
		}
		qb, err := rp.EncodeQuery(q)
		if err != nil {
			return nil, fmt.Errorf("core: encode %s query: %w", prog.Name(), err)
		}
		remoteProg, queryBytes = rp, qb
	}

	stats := &metrics.Stats{Engine: "GRAPE", Query: prog.Name(), Workers: m, Parallelism: 1}
	if c.opts.Parallelism > 1 && SupportsParallel(prog) {
		stats.Parallelism = c.opts.Parallelism
	}
	stats.SetNoMetrics(c.opts.NoMetrics)
	if !c.opts.NoMetrics {
		stats.SetTrace(obs.NewTrace())
		obsQueriesStarted.With(mode.String()).Inc()
	}
	timer := metrics.StartTimer()
	// Stop the timer on every return path; meter the outcome the same way so
	// failed runs show up in the error counter with their wall time.
	defer func() {
		stats.Elapsed = timer.Stop()
		if c.opts.NoMetrics {
			return
		}
		stats.FlushObs()
		obsQuerySeconds.With(mode.String()).Observe(stats.Elapsed.Seconds())
		if retErr != nil {
			obsQueriesErrored.With(mode.String()).Inc()
		} else {
			obsQueriesFinished.With(mode.String()).Inc()
		}
	}()

	var comm *mpi.Comm
	var r runner
	switch mode {
	case ModeAsync:
		comm = c.cluster.NewAsyncComm(stats)
		r = &asyncRunner{opts: c.opts, cluster: c.cluster, ctx: c.ctx}
	default:
		comm = c.cluster.NewComm(stats)
		r = &bspRunner{opts: c.opts, cluster: c.cluster, ctx: c.ctx, ckpt: c.ckpt, resume: c.resume}
	}
	if !c.opts.DisableGrouping {
		// Fold same-(vertex,key) updates per destination under the program's
		// own aggregation, so each flush ships one combined envelope.
		comm.EnableCombining(tagUpdates, prog.Aggregate)
	}

	tasks := make([]*task, m)
	ctxs := make([]*Context, m)
	for i, w := range c.workers {
		tasks[i] = w.newTask(q, prog, comm, c.opts)
		ctxs[i] = tasks[i].ctx
		if c.remotes != nil {
			tasks[i].remote = c.remotes[i]
			tasks[i].queryID = comm.Query()
			tasks[i].epoch = c.epoch
			tasks[i].progName = prog.Name()
			tasks[i].queryBytes = queryBytes
			tasks[i].trace = stats.Trace()
		}
	}
	res = &Result{Stats: stats, Contexts: ctxs, queryID: comm.Query()}
	if c.remotes != nil {
		// Release per-query state on the workers whatever way the run ends —
		// unless the caller asked to retain it (Materialize) and the run
		// succeeded, in which case the workers keep it as view state.
		defer func() {
			if c.retain && retErr == nil {
				return
			}
			for _, pe := range c.remotes {
				_ = pe.End(comm.Query())
			}
		}()
	}

	err := r.run(tasks, comm, stats, res)
	stats.FinishRun(r.mode().String())
	if err != nil {
		return res, err
	}

	// Termination: for remote fragments, pull the partial results Q(Fi) back
	// into the coordinator-side contexts first, then assemble them into Q(G).
	if remoteProg != nil {
		endFetch := stats.Trace().Span("fetch partials", -1)
		err := c.fetchPartials(tasks, remoteProg, comm.Query())
		endFetch()
		if err != nil {
			return res, err
		}
	}
	endAssemble := stats.Trace().Span("assemble", -1)
	out, err := prog.Assemble(q, ctxs)
	endAssemble()
	if err != nil {
		return res, fmt.Errorf("core: Assemble: %w", err)
	}
	res.Output = out
	return res, nil
}

// fetchPartials retrieves every remote fragment's converged partial result
// and installs it into the coordinator-side context, in parallel across
// peers.
func (c *coordinator) fetchPartials(tasks []*task, rp RemoteProgram, query uint64) error {
	failed, err := c.cluster.BarrierFor(func(int) bool { return true }, 0, func(w int) error {
		t := tasks[w]
		if t.remote == nil {
			return nil
		}
		data, err := t.remote.Fetch(query)
		if err != nil {
			return err
		}
		return rp.DecodePartial(t.ctx, data)
	})
	if err != nil {
		return fmt.Errorf("core: fetch partial result of fragment %d: %w", failed, err)
	}
	return nil
}

// safeCall runs fn, converting panics into errors so a buggy plugged-in
// sequential algorithm cannot take down the whole engine.
func safeCall(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: program panicked: %v", r)
		}
	}()
	return fn()
}
