package partition

// Fragment wire format. A distributed session partitions the graph at the
// coordinator and ships each fragment — its local graph, border sets and the
// shared fragmentation graph GP — to the worker process that will host it
// (Section 6, "Graph partition": fragments are distributed to the workers
// once, then reused by every query). The encoding follows the same
// varint/delta discipline as the update codec in internal/mpi: vertex IDs are
// zigzag-varint deltas against the previous one, sorted sets are ascending
// uvarint deltas, and weights are raw float64 bits so decoded fragments are
// bit-identical to the originals.
//
// Decoding reconstructs the fragment graph through the same Builder path as
// Build, preserving dense vertex order and CSR edge order, which is what
// makes a worker-side evaluation produce byte-identical results to a
// coordinator-side one.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"grape/internal/graph"
)

// fragFormat versions the fragment wire format; bump it when the layout
// changes (the transport's protocol version gates end-to-end compatibility,
// this byte catches mixed payloads inside one protocol generation).
const fragFormat = byte(0x01)

// EncodeFragment serializes one fragment for shipping to a remote worker.
func EncodeFragment(f *Fragment) []byte {
	buf := []byte{fragFormat}
	buf = binary.AppendUvarint(buf, uint64(f.ID))
	buf = appendGraph(buf, f.Graph)
	buf = appendIDSet(buf, f.Local)
	buf = appendIDSet(buf, f.InBorder)
	buf = appendIDSet(buf, f.OutBorder)
	return buf
}

// DecodeFragment reconstructs a fragment encoded by EncodeFragment.
func DecodeFragment(buf []byte) (*Fragment, error) {
	c := &cursor{buf: buf}
	if format := c.u8(); format != fragFormat {
		return nil, fmt.Errorf("partition: unknown fragment format 0x%02x", format)
	}
	f := &Fragment{ID: int(c.uvarint())}
	f.Graph = c.graph()
	f.Local = c.idSet()
	f.InBorder = c.idSet()
	f.OutBorder = c.idSet()
	if c.err != nil {
		return nil, fmt.Errorf("partition: decode fragment: %w", c.err)
	}
	f.local = make(map[graph.VertexID]bool, len(f.Local))
	for _, v := range f.Local {
		f.local[v] = true
	}
	return f, nil
}

// EncodeFragGraph serializes the fragmentation graph GP, which every worker
// needs to deduce the destinations of designated messages (Section 3.2(3)).
// The byte stream is deterministic: maps are emitted in ascending vertex
// order.
func EncodeFragGraph(gp *FragGraph) []byte {
	buf := []byte{fragFormat}
	buf = binary.AppendUvarint(buf, uint64(gp.m))

	owners := make([]graph.VertexID, 0, len(gp.owner))
	for v := range gp.owner {
		owners = append(owners, v)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	buf = binary.AppendUvarint(buf, uint64(len(owners)))
	prev := int64(0)
	for _, v := range owners {
		buf = binary.AppendVarint(buf, int64(v)-prev)
		prev = int64(v)
		buf = binary.AppendUvarint(buf, uint64(gp.owner[v]))
	}

	mirrored := make([]graph.VertexID, 0, len(gp.mirrors))
	for v := range gp.mirrors {
		mirrored = append(mirrored, v)
	}
	sort.Slice(mirrored, func(i, j int) bool { return mirrored[i] < mirrored[j] })
	buf = binary.AppendUvarint(buf, uint64(len(mirrored)))
	prev = 0
	for _, v := range mirrored {
		buf = binary.AppendVarint(buf, int64(v)-prev)
		prev = int64(v)
		ms := gp.mirrors[v]
		buf = binary.AppendUvarint(buf, uint64(len(ms)))
		for _, f := range ms {
			buf = binary.AppendUvarint(buf, uint64(f))
		}
	}
	return buf
}

// DecodeFragGraph reconstructs a fragmentation graph encoded by
// EncodeFragGraph.
func DecodeFragGraph(buf []byte) (*FragGraph, error) {
	c := &cursor{buf: buf}
	if format := c.u8(); format != fragFormat {
		return nil, fmt.Errorf("partition: unknown fragmentation-graph format 0x%02x", format)
	}
	gp := &FragGraph{m: int(c.uvarint())}

	n := c.count()
	gp.owner = make(map[graph.VertexID]int, n)
	prev := int64(0)
	for i := 0; i < n && c.err == nil; i++ {
		prev += c.varint()
		gp.owner[graph.VertexID(prev)] = int(c.uvarint())
	}

	n = c.count()
	gp.mirrors = make(map[graph.VertexID][]int, n)
	prev = 0
	for i := 0; i < n && c.err == nil; i++ {
		prev += c.varint()
		k := c.count()
		ms := make([]int, 0, k)
		for j := 0; j < k && c.err == nil; j++ {
			ms = append(ms, int(c.uvarint()))
		}
		gp.mirrors[graph.VertexID(prev)] = ms
	}
	if c.err != nil {
		return nil, fmt.Errorf("partition: decode fragmentation graph: %w", c.err)
	}
	return gp, nil
}

// appendGraph serializes a fragment graph: vertices in dense order (so the
// decoded graph assigns the same dense indices) and edges in CSR order with
// dense-index endpoints (so the decoded adjacency lists iterate identically).
func appendGraph(buf []byte, g *graph.Graph) []byte {
	directed := byte(0)
	if g.Directed() {
		directed = 1
	}
	buf = append(buf, directed)
	n := g.NumVertices()
	buf = binary.AppendUvarint(buf, uint64(n))
	prev := int64(0)
	for i := 0; i < n; i++ {
		id := int64(g.VertexAt(i))
		buf = binary.AppendVarint(buf, id-prev)
		prev = id
		buf = appendString(buf, g.Label(i))
	}
	edges := g.Edges()
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	var wb [8]byte
	for _, e := range edges {
		buf = binary.AppendUvarint(buf, uint64(g.IndexOf(e.Src)))
		buf = binary.AppendUvarint(buf, uint64(g.IndexOf(e.Dst)))
		binary.LittleEndian.PutUint64(wb[:], math.Float64bits(e.Weight))
		buf = append(buf, wb[:]...)
		buf = appendString(buf, e.Label)
	}
	return buf
}

// appendIDSet serializes an ascending vertex-ID list as uvarint deltas after
// a zigzag-varint first element.
func appendIDSet(buf []byte, ids []graph.VertexID) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prev := int64(0)
	for i, v := range ids {
		if i == 0 {
			buf = binary.AppendVarint(buf, int64(v))
		} else {
			buf = binary.AppendUvarint(buf, uint64(int64(v)-prev))
		}
		prev = int64(v)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// cursor is a sticky-error reader over an encoded buffer: after the first
// malformed field every subsequent read returns zero values, so decoders can
// parse straight-line and check err once.
type cursor struct {
	buf []byte
	off int
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("truncated or malformed %s at offset %d", what, c.off)
	}
}

func (c *cursor) u8() byte {
	if c.err != nil || c.off >= len(c.buf) {
		c.fail("byte")
		return 0
	}
	b := c.buf[c.off]
	c.off++
	return b
}

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		c.fail("uvarint")
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		c.fail("varint")
		return 0
	}
	c.off += n
	return v
}

// count reads a length prefix and sanity-bounds it against the remaining
// bytes (every counted element takes at least one byte), so corrupt lengths
// fail before any oversized allocation.
func (c *cursor) count() int {
	v := c.uvarint()
	if c.err == nil && v > uint64(len(c.buf)-c.off)+1 {
		c.fail("length")
		return 0
	}
	return int(v)
}

func (c *cursor) float() float64 {
	if c.err != nil || c.off+8 > len(c.buf) {
		c.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.buf[c.off:]))
	c.off += 8
	return v
}

func (c *cursor) str() string {
	n := c.count()
	if c.err != nil || c.off+n > len(c.buf) {
		c.fail("string")
		return ""
	}
	s := string(c.buf[c.off : c.off+n])
	c.off += n
	return s
}

func (c *cursor) idSet() []graph.VertexID {
	n := c.count()
	if c.err != nil {
		return nil
	}
	out := make([]graph.VertexID, 0, n)
	prev := int64(0)
	for i := 0; i < n && c.err == nil; i++ {
		if i == 0 {
			prev = c.varint()
		} else {
			prev += int64(c.uvarint())
		}
		out = append(out, graph.VertexID(prev))
	}
	return out
}

func (c *cursor) graph() *graph.Graph {
	directed := c.u8() != 0
	n := c.count()
	if c.err != nil {
		return nil
	}
	b := graph.NewBuilder(directed)
	ids := make([]graph.VertexID, 0, n)
	prev := int64(0)
	for i := 0; i < n && c.err == nil; i++ {
		prev += c.varint()
		id := graph.VertexID(prev)
		b.AddVertex(id, c.str())
		ids = append(ids, id)
	}
	ne := c.count()
	for i := 0; i < ne && c.err == nil; i++ {
		si := c.uvarint()
		di := c.uvarint()
		w := c.float()
		label := c.str()
		if c.err != nil {
			break
		}
		if si >= uint64(len(ids)) || di >= uint64(len(ids)) {
			c.fail("edge endpoint")
			break
		}
		b.AddEdge(ids[si], ids[di], w, label)
	}
	if c.err != nil {
		return nil
	}
	return b.Build()
}
