package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"grape/internal/graph"
	"grape/internal/graphgen"
)

func allStrategies() []Strategy {
	return []Strategy{Hash{}, Range{}, LDG{}, Multilevel{}, VertexCut{}}
}

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"road":   graphgen.RoadNetwork(15, 15, graphgen.Config{Seed: 1}),
		"social": graphgen.SocialNetwork(400, 4, graphgen.Config{Seed: 2, Labels: 10}),
		"kb":     graphgen.KnowledgeBase(300, 3, 8, graphgen.Config{Seed: 3, Labels: 20}),
	}
}

// Every strategy must produce a valid assignment: all vertices covered,
// fragment IDs in range.
func TestStrategiesProduceValidAssignments(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, s := range allStrategies() {
			for _, m := range []int{1, 2, 4, 7} {
				assign := s.Assign(g, m)
				if len(assign) != g.NumVertices() {
					t.Fatalf("%s/%s m=%d: %d assignments for %d vertices",
						name, s.Name(), m, len(assign), g.NumVertices())
				}
				for i, a := range assign {
					if a < 0 || a >= m {
						t.Fatalf("%s/%s m=%d: vertex %d assigned to %d", name, s.Name(), m, i, a)
					}
				}
			}
		}
	}
}

// Partitioning must cover all vertices and edges: the union of fragment-local
// vertex sets equals V, every edge of G appears in at least one fragment.
func TestPartitionCoversGraph(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, s := range allStrategies() {
			p := Partition(g, 4, s)
			covered := make(map[graph.VertexID]int)
			for _, f := range p.Fragments {
				for _, v := range f.Local {
					covered[v]++
				}
			}
			if len(covered) != g.NumVertices() {
				t.Fatalf("%s/%s: %d vertices covered, want %d", name, s.Name(), len(covered), g.NumVertices())
			}
			for v, c := range covered {
				if c != 1 {
					t.Fatalf("%s/%s: vertex %d owned by %d fragments", name, s.Name(), v, c)
				}
			}
			for _, e := range g.Edges() {
				found := false
				for _, f := range p.Fragments {
					if f.Graph.HasEdge(e.Src, e.Dst) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s/%s: edge %v missing from all fragments", name, s.Name(), e)
				}
			}
		}
	}
}

// Border sets must be consistent with the fragmentation graph: a vertex in
// Fi.O is owned elsewhere and GP records fragment i as a mirror; a vertex in
// Fi.I is owned by i and some other fragment has it in its out-border.
func TestBorderSetsConsistentWithGP(t *testing.T) {
	g := graphgen.SocialNetwork(500, 5, graphgen.Config{Seed: 4, Labels: 10})
	for _, s := range allStrategies() {
		p := Partition(g, 5, s)
		for _, f := range p.Fragments {
			for _, v := range f.OutBorder {
				if f.Owns(v) {
					t.Fatalf("%s: out-border vertex %d is locally owned", s.Name(), v)
				}
				if owner := p.GP.Owner(v); owner == f.ID || owner < 0 {
					t.Fatalf("%s: GP owner of out-border %d = %d", s.Name(), v, owner)
				}
				if !containsInt(p.GP.Mirrors(v), f.ID) {
					t.Fatalf("%s: GP does not record fragment %d as mirror of %d", s.Name(), f.ID, v)
				}
			}
			for _, v := range f.InBorder {
				if !f.Owns(v) {
					t.Fatalf("%s: in-border vertex %d is not locally owned", s.Name(), v)
				}
				if !p.GP.IsBorder(v) {
					t.Fatalf("%s: in-border vertex %d not marked border in GP", s.Name(), v)
				}
			}
		}
	}
}

func TestDestinations(t *testing.T) {
	// Triangle split across three fragments: 0->1, 1->2, 2->0.
	b := graph.NewBuilder(true)
	b.AddEdge(0, 1, 1, "")
	b.AddEdge(1, 2, 1, "")
	b.AddEdge(2, 0, 1, "")
	g := b.Build()
	p := Build(g, []int{0, 1, 2}, 3, "manual")

	// Vertex 1 is owned by fragment 1 and mirrored at fragment 0.
	dsts := p.GP.Destinations(1, 0)
	if len(dsts) != 1 || dsts[0] != 1 {
		t.Fatalf("Destinations(1, from=0) = %v, want [1]", dsts)
	}
	// From the owner, the update needs to reach the mirror.
	dsts = p.GP.Destinations(1, 1)
	if len(dsts) != 1 || dsts[0] != 0 {
		t.Fatalf("Destinations(1, from=1) = %v, want [0]", dsts)
	}
	if p.GP.Owner(99) != -1 {
		t.Fatalf("Owner of unknown vertex should be -1")
	}
	if got := p.GP.NumFragments(); got != 3 {
		t.Fatalf("NumFragments = %d, want 3", got)
	}
	if len(p.GP.BorderVertices()) != 3 {
		t.Fatalf("BorderVertices = %v, want all three vertices", p.GP.BorderVertices())
	}
}

func TestBalanceAndCut(t *testing.T) {
	g := graphgen.RoadNetwork(20, 20, graphgen.Config{Seed: 6})
	hash := Partition(g, 4, Hash{})
	multi := Partition(g, 4, Multilevel{})
	if hash.Balance() > 1.6 {
		t.Fatalf("hash balance = %v, want near 1.0", hash.Balance())
	}
	if multi.Balance() > 1.6 {
		t.Fatalf("multilevel balance = %v, want bounded by growth limit", multi.Balance())
	}
	// The locality-preserving partitioner must cut far fewer edges than hash
	// on a grid road network.
	if multi.CutEdges() >= hash.CutEdges() {
		t.Fatalf("multilevel cut %d >= hash cut %d; expected locality to help",
			multi.CutEdges(), hash.CutEdges())
	}
	// Range partitioning on a row-major grid is also local.
	rng := Partition(g, 4, Range{})
	if rng.CutEdges() >= hash.CutEdges() {
		t.Fatalf("range cut %d >= hash cut %d", rng.CutEdges(), hash.CutEdges())
	}
}

func TestSingleFragment(t *testing.T) {
	g := graphgen.SocialNetwork(100, 3, graphgen.Config{Seed: 7, Labels: 5})
	p := Partition(g, 1, Hash{})
	f := p.Fragments[0]
	if f.NumLocal() != g.NumVertices() {
		t.Fatalf("single fragment owns %d vertices, want %d", f.NumLocal(), g.NumVertices())
	}
	if len(f.InBorder) != 0 || len(f.OutBorder) != 0 {
		t.Fatalf("single fragment should have no border vertices")
	}
	if p.CutEdges() != 0 {
		t.Fatalf("single fragment cut = %d, want 0", p.CutEdges())
	}
	if len(p.GP.BorderVertices()) != 0 {
		t.Fatalf("single fragment should have no border vertices in GP")
	}
}

func TestPartitionPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Partition with m=0 should panic")
		}
	}()
	Partition(graph.NewBuilder(true).Build(), 0, Hash{})
}

func TestBuildNormalizesAssignment(t *testing.T) {
	b := graph.NewBuilder(true)
	b.AddEdge(0, 1, 1, "")
	g := b.Build()
	p := Build(g, []int{-3, 7}, 2, "manual")
	for _, a := range p.Assignment {
		if a < 0 || a >= 2 {
			t.Fatalf("assignment %v not normalized", p.Assignment)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"hash", "range", "ldg", "multilevel", "vertexcut"} {
		s, ok := ByName(name)
		if !ok || s.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, s, ok)
		}
	}
	if _, ok := ByName("metis2"); ok {
		t.Fatalf("ByName should fail for unknown strategy")
	}
}

func TestFragmentGraphsRunnable(t *testing.T) {
	// Fragments must contain the out-border copies so a sequential algorithm
	// can relax cross edges locally.
	g := graphgen.RoadNetwork(10, 10, graphgen.Config{Seed: 8})
	p := Partition(g, 4, Multilevel{})
	for _, f := range p.Fragments {
		for _, v := range f.OutBorder {
			if !f.Graph.HasVertex(v) {
				t.Fatalf("fragment %d missing out-border copy %d", f.ID, v)
			}
		}
		for _, v := range f.Local {
			if !f.Graph.HasVertex(v) {
				t.Fatalf("fragment %d missing owned vertex %d", f.ID, v)
			}
		}
	}
}

// Property: for random graphs and any strategy, vertex ownership is a
// partition of V (disjoint and complete) and every cross edge induces the
// matching border entries.
func TestQuickPartitionInvariants(t *testing.T) {
	strategies := allStrategies()
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%60) + 5
		m := int(mRaw%6) + 1
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(true)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.VertexID(i), "l")
		}
		for i := 0; i < 3*n; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s != d {
				b.AddEdge(graph.VertexID(s), graph.VertexID(d), 1, "")
			}
		}
		g := b.Build()
		s := strategies[rng.Intn(len(strategies))]
		p := Partition(g, m, s)

		owned := map[graph.VertexID]int{}
		for _, f := range p.Fragments {
			for _, v := range f.Local {
				if _, dup := owned[v]; dup {
					return false
				}
				owned[v] = f.ID
			}
		}
		if len(owned) != n {
			return false
		}
		// Every cross edge (u,v) must give v ∈ F_owner(u).O and v ∈ F_owner(v).I.
		for _, e := range g.Edges() {
			fu := owned[e.Src]
			fv := owned[e.Dst]
			if fu == fv {
				continue
			}
			if !containsID(p.Fragments[fu].OutBorder, e.Dst) {
				return false
			}
			if !containsID(p.Fragments[fv].InBorder, e.Dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func containsID(s []graph.VertexID, x graph.VertexID) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
