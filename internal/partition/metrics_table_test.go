package partition

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"grape/internal/graph"
)

// bruteCutEdges recounts the edge cut directly from the edge list, the
// specification CutEdges must agree with for every strategy.
func bruteCutEdges(p *Partitioned) int {
	cut := 0
	for _, e := range p.Source.Edges() {
		si, di := p.Source.IndexOf(e.Src), p.Source.IndexOf(e.Dst)
		if p.Assignment[si] != p.Assignment[di] {
			cut++
		}
	}
	return cut
}

// bruteBalance recomputes the balance ratio from fragment sizes.
func bruteBalance(p *Partitioned) float64 {
	max := 0
	for _, f := range p.Fragments {
		if f.NumLocal() > max {
			max = f.NumLocal()
		}
	}
	return float64(max) * float64(len(p.Fragments)) / float64(p.Source.NumVertices())
}

func tableGraph(directed bool, n, extra int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(directed)
	for v := 0; v < n; v++ {
		b.AddVertex(graph.VertexID(v), "")
	}
	for v := 0; v < n; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%n), 1, "")
	}
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v), 1, "")
		}
	}
	return b.Build()
}

// TestCutEdgesAndBalanceAcrossStrategies checks CutEdges and Balance
// against brute-force recomputation for every registered strategy, on
// directed and undirected graphs and several fragment counts, plus the
// structural invariants the metrics promise (cut bounded by |E|, balance
// at least 1 modulo integer rounding, fragments exhaustive and disjoint).
func TestCutEdgesAndBalanceAcrossStrategies(t *testing.T) {
	names := make([]string, 0, len(Registry))
	for name := range Registry {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		strat := Registry[name]
		for _, directed := range []bool{false, true} {
			for _, m := range []int{1, 2, 4, 7} {
				g := tableGraph(directed, 200, 300, 17)
				p := Partition(g, m, strat)

				label := map[bool]string{false: "undirected", true: "directed"}[directed]
				if got, want := p.CutEdges(), bruteCutEdges(p); got != want {
					t.Errorf("%s/%s m=%d: CutEdges = %d, brute force = %d", name, label, m, got, want)
				}
				if got, want := p.Balance(), bruteBalance(p); math.Abs(got-want) > 1e-12 {
					t.Errorf("%s/%s m=%d: Balance = %v, brute force = %v", name, label, m, got, want)
				}
				if cut := p.CutEdges(); cut < 0 || cut > g.NumEdges() {
					t.Errorf("%s/%s m=%d: cut %d outside [0, %d]", name, label, m, cut, g.NumEdges())
				}
				if m == 1 && p.CutEdges() != 0 {
					t.Errorf("%s/%s: single fragment has non-zero cut %d", name, label, p.CutEdges())
				}
				// Integer fragment sizes put the perfectly balanced maximum at
				// ceil(n/m), so Balance is at least m*floor-average/n and never
				// below 1 when m divides n.
				if b := p.Balance(); b < 1.0-1e-9 && g.NumVertices()%m == 0 {
					t.Errorf("%s/%s m=%d: balance %v below 1 on a divisible graph", name, label, m, b)
				}
				// Fragments partition V: every vertex owned exactly once.
				owned := 0
				for _, f := range p.Fragments {
					owned += f.NumLocal()
				}
				if owned != g.NumVertices() {
					t.Errorf("%s/%s m=%d: fragments own %d vertices, want %d", name, label, m, owned, g.NumVertices())
				}
			}
		}
	}
}

// TestCutEdgesAndBalanceHandComputed pins the metrics on a graph small
// enough to verify by hand: a directed 6-cycle split by Range into two
// halves has exactly two cross edges (2->3 and 5->0) and perfect balance.
func TestCutEdgesAndBalanceHandComputed(t *testing.T) {
	b := graph.NewBuilder(true)
	for v := 0; v < 6; v++ {
		b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%6), 1, "")
	}
	p := Partition(b.Build(), 2, Range{})
	if got := p.CutEdges(); got != 2 {
		t.Fatalf("CutEdges = %d, want 2", got)
	}
	if got := p.Balance(); got != 1.0 {
		t.Fatalf("Balance = %v, want 1.0", got)
	}

	// Skewed explicit assignment: 5 vertices on fragment 0, 1 on fragment 1
	// gives balance 5/(6/2) = 5/3.
	skew := Build(b.Build(), []int{0, 0, 0, 0, 0, 1}, 2, "manual")
	if got, want := skew.Balance(), 5.0/3.0; got != want {
		t.Fatalf("skewed Balance = %v, want %v", got, want)
	}
	// Cross edges under the skewed assignment: 4->5 and 5->0.
	if got := skew.CutEdges(); got != 2 {
		t.Fatalf("skewed CutEdges = %d, want 2", got)
	}
}
