package partition

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"grape/internal/graph"
)

func codecGraph(directed bool, n, extra int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	labels := []string{"", "user", "product", "road"}
	b := graph.NewBuilder(directed)
	for v := 0; v < n; v++ {
		// Sparse external IDs exercise the delta encoding.
		b.AddVertex(graph.VertexID(v*7+3), labels[r.Intn(len(labels))])
	}
	for v := 0; v < n; v++ {
		b.AddEdge(graph.VertexID(v*7+3), graph.VertexID(((v+1)%n)*7+3), 1+r.Float64()*5, "")
	}
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u*7+3), graph.VertexID(v*7+3), r.Float64()*10, labels[r.Intn(len(labels))])
		}
	}
	return b.Build()
}

// graphsEqual asserts the decoded fragment graph is structurally identical
// to the original, including dense-index order and adjacency order (the
// properties byte-identical distributed evaluation relies on).
func graphsEqual(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.Directed() != want.Directed() {
		t.Fatalf("directedness differs")
	}
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("size differs: got %v, want %v", got, want)
	}
	for i := 0; i < want.NumVertices(); i++ {
		if got.VertexAt(i) != want.VertexAt(i) {
			t.Fatalf("dense order differs at %d: got %d, want %d", i, got.VertexAt(i), want.VertexAt(i))
		}
		if got.Label(i) != want.Label(i) {
			t.Fatalf("label differs at %d", i)
		}
		if !reflect.DeepEqual(got.OutEdges(i), want.OutEdges(i)) {
			t.Fatalf("out-adjacency differs at dense index %d", i)
		}
	}
}

func TestFragmentCodecRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		directed bool
		m        int
		strategy Strategy
	}{
		{"undirected-hash", false, 4, Hash{}},
		{"directed-hash", true, 3, Hash{}},
		{"directed-range", true, 5, Range{}},
		{"undirected-multilevel", false, 4, Multilevel{}},
		{"directed-vertexcut", true, 4, VertexCut{}},
		{"single-fragment", true, 1, Hash{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := codecGraph(tc.directed, 120, 200, 5)
			p := Partition(g, tc.m, tc.strategy)
			for _, f := range p.Fragments {
				enc := EncodeFragment(f)
				// Deterministic bytes: encoding twice is identical.
				if !bytes.Equal(enc, EncodeFragment(f)) {
					t.Fatalf("fragment %d: non-deterministic encoding", f.ID)
				}
				dec, err := DecodeFragment(enc)
				if err != nil {
					t.Fatalf("fragment %d: decode: %v", f.ID, err)
				}
				if dec.ID != f.ID {
					t.Fatalf("fragment ID: got %d, want %d", dec.ID, f.ID)
				}
				graphsEqual(t, dec.Graph, f.Graph)
				if !reflect.DeepEqual(dec.Local, f.Local) {
					t.Fatalf("fragment %d: Local differs", f.ID)
				}
				if !reflect.DeepEqual(dec.InBorder, f.InBorder) {
					t.Fatalf("fragment %d: InBorder differs", f.ID)
				}
				if !reflect.DeepEqual(dec.OutBorder, f.OutBorder) {
					t.Fatalf("fragment %d: OutBorder differs", f.ID)
				}
				for _, v := range f.Local {
					if !dec.Owns(v) {
						t.Fatalf("fragment %d: decoded fragment does not own %d", f.ID, v)
					}
				}
			}

			// Fragmentation graph round trip.
			enc := EncodeFragGraph(p.GP)
			if !bytes.Equal(enc, EncodeFragGraph(p.GP)) {
				t.Fatalf("non-deterministic GP encoding")
			}
			gp, err := DecodeFragGraph(enc)
			if err != nil {
				t.Fatalf("decode GP: %v", err)
			}
			if gp.NumFragments() != p.GP.NumFragments() {
				t.Fatalf("GP fragment count: got %d, want %d", gp.NumFragments(), p.GP.NumFragments())
			}
			for i := 0; i < g.NumVertices(); i++ {
				v := g.VertexAt(i)
				if gp.Owner(v) != p.GP.Owner(v) {
					t.Fatalf("GP owner of %d differs", v)
				}
				if !reflect.DeepEqual(gp.Mirrors(v), p.GP.Mirrors(v)) {
					t.Fatalf("GP mirrors of %d differ", v)
				}
				for from := 0; from < tc.m; from++ {
					if !reflect.DeepEqual(gp.Destinations(v, from), p.GP.Destinations(v, from)) {
						t.Fatalf("GP destinations of %d from %d differ", v, from)
					}
				}
			}
		})
	}
}

func TestFragmentCodecRejectsCorruptInput(t *testing.T) {
	g := codecGraph(true, 40, 60, 9)
	p := Partition(g, 3, Hash{})
	enc := EncodeFragment(p.Fragments[0])

	if _, err := DecodeFragment(nil); err == nil {
		t.Fatalf("decoded empty fragment buffer")
	}
	if _, err := DecodeFragment([]byte{0x7F}); err == nil {
		t.Fatalf("decoded unknown fragment format")
	}
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := DecodeFragment(enc[:cut]); err == nil {
			t.Fatalf("decoded fragment truncated at %d bytes", cut)
		}
	}

	gpEnc := EncodeFragGraph(p.GP)
	if _, err := DecodeFragGraph([]byte{0x7F}); err == nil {
		t.Fatalf("decoded unknown GP format")
	}
	for cut := 1; cut < len(gpEnc); cut += 5 {
		if _, err := DecodeFragGraph(gpEnc[:cut]); err == nil {
			t.Fatalf("decoded GP truncated at %d bytes", cut)
		}
	}
}
