package partition

import (
	"sort"

	"grape/internal/graph"
)

// Incremental partition maintenance. ApplyUpdates routes a batch of graph
// update ops to the owning fragments, rebuilds only the fragments whose
// local subgraph actually changed, and repairs the border sets Fi.I / Fi.O
// and the fragmentation graph GP — the bookkeeping that lets the engine keep
// deducing message destinations after the graph has mutated. The input
// Partitioned is never modified: the result shares every untouched Fragment
// with its predecessor, giving the session copy-on-write epochs (queries in
// flight keep reading the fragments of the epoch they started on).

// FragmentChange describes what one update batch did to one fragment. The
// engine hands it (wrapped in a core.FragmentDelta) to programs that
// maintain materialized views incrementally.
type FragmentChange struct {
	// Frag is the fragment index.
	Frag int
	// Ops lists the update ops applied to this fragment's local graph, in
	// batch order. Nil when only the fragment's border metadata changed.
	Ops []graph.Update
	// OldGraph is the fragment graph before the batch (equal to the new one
	// when Ops is nil).
	OldGraph *graph.Graph
	// NewInBorder lists owned vertices that gained at least one new mirror
	// in this batch (in particular, vertices that just joined Fi.I). The new
	// mirrors have never seen these vertices' values, so view maintenance
	// must re-ship them even though the values did not change.
	NewInBorder []graph.VertexID
}

// UpdateResult reports the per-fragment effects of one ApplyUpdates batch.
type UpdateResult struct {
	// Changes maps fragment index to its change record; fragments absent
	// from the map were untouched by the batch.
	Changes map[int]*FragmentChange
	// Applied counts the ops that had an effect (no-op removals of missing
	// vertices/edges are not counted).
	Applied int
}

// AffectedFragments returns the indices of changed fragments in ascending
// order.
func (r *UpdateResult) AffectedFragments() []int {
	out := make([]int, 0, len(r.Changes))
	for f := range r.Changes {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// HashPlacer assigns new vertices to fragments by hashing their external ID,
// consistent with the Hash partition strategy. It is the default placement
// for vertices created by update streams.
func HashPlacer(m int) func(graph.VertexID) int {
	return func(v graph.VertexID) int { return hashVertex(v, m) }
}

func hashVertex(v graph.VertexID, m int) int {
	return int(fnvVertex(uint64(v)) % uint32(m))
}

// routedOp is one op destined for one fragment's rebuild.
type routedOp struct {
	frag int
	op   graph.Update
}

// ApplyUpdates applies a batch of graph updates to the partition and returns
// the resulting Partitioned plus a per-fragment change report. p itself is
// unchanged; the result shares the Fragment values of untouched fragments.
//
// Routing follows the ownership rules of Build: an edge lives at the
// fragment owning its source (both endpoint fragments for undirected
// graphs); removing a vertex touches its owner and every fragment mirroring
// it. New vertices (explicit, or implicit edge endpoints) are placed with
// place — pass HashPlacer(m) unless the caller has a better policy. Removing
// a vertex or edge that does not exist is a no-op.
//
// The result's Source and Assignment still describe the graph as it was when
// the partition was first built (epoch 0); GP and the fragments are the live
// authority for ownership and adjacency after updates.
func (p *Partitioned) ApplyUpdates(batch []graph.Update, place func(graph.VertexID) int) (*Partitioned, *UpdateResult) {
	m := len(p.Fragments)
	if place == nil {
		place = HashPlacer(m)
	}
	directed := p.Source.Directed()

	// Copy ownership: it mutates as the batch is routed.
	owner := make(map[graph.VertexID]int, len(p.GP.owner))
	for v, o := range p.GP.owner {
		owner[v] = o
	}
	mirrors := make(map[graph.VertexID][]int, len(p.GP.mirrors))
	for v, ms := range p.GP.mirrors {
		mirrors[v] = append([]int(nil), ms...)
	}

	res := &UpdateResult{Changes: make(map[int]*FragmentChange)}
	var routed []routedOp
	route := func(f int, op graph.Update) {
		routed = append(routed, routedOp{frag: f, op: op})
	}
	// pendingLabels tracks labels of vertices added or relabeled earlier in
	// this batch, before any fragment has been rebuilt.
	pendingLabels := make(map[graph.VertexID]string)
	// labelOf resolves a vertex's current label: batch-local first, then the
	// owner fragment's graph of the previous epoch.
	labelOf := func(v graph.VertexID) string {
		if l, ok := pendingLabels[v]; ok {
			return l
		}
		if o, ok := owner[v]; ok {
			return p.Fragments[o].Graph.LabelOf(v)
		}
		return ""
	}
	// ensureVertex returns the owner of v, placing (and materializing) it if
	// the vertex is new. Returns the owner fragment.
	ensureVertex := func(v graph.VertexID, label string) int {
		if o, ok := owner[v]; ok {
			return o
		}
		o := place(v)
		owner[v] = o
		pendingLabels[v] = label
		route(o, graph.AddVertexUpdate(v, label))
		return o
	}
	// materializeCopy makes sure fragment f holds v's label when it is about
	// to receive a copy of a remotely owned vertex through a new edge.
	materializeCopy := func(f int, v graph.VertexID) {
		if owner[v] == f {
			return
		}
		if l := labelOf(v); l != "" {
			route(f, graph.AddVertexUpdate(v, l))
		}
	}

	for _, op := range batch {
		switch op.Kind {
		case graph.UpdateAddVertex:
			if o, ok := owner[op.Src]; ok {
				// Adding an existing vertex is a label refresh; one that
				// changes nothing must not force fragment rebuilds.
				if op.Label == "" || op.Label == labelOf(op.Src) {
					continue
				}
				// The owner and every mirror hold the label.
				route(o, op)
				for _, f := range mirrors[op.Src] {
					route(f, op)
				}
			} else {
				o := place(op.Src)
				owner[op.Src] = o
				route(o, op)
			}
			if op.Label != "" {
				pendingLabels[op.Src] = op.Label
			}
			res.Applied++
		case graph.UpdateRemoveVertex:
			o, ok := owner[op.Src]
			if !ok {
				continue
			}
			route(o, op)
			for _, f := range mirrors[op.Src] {
				if f != o {
					route(f, op)
				}
			}
			delete(owner, op.Src)
			res.Applied++
		case graph.UpdateAddEdge:
			fu := ensureVertex(op.Src, "")
			fv := ensureVertex(op.Dst, "")
			materializeCopy(fu, op.Dst)
			route(fu, op)
			if !directed && fv != fu {
				materializeCopy(fv, op.Src)
				route(fv, op)
			}
			res.Applied++
		case graph.UpdateRemoveEdge, graph.UpdateReweightEdge:
			fu, uok := owner[op.Src]
			fv, vok := owner[op.Dst]
			if !uok || !vok {
				continue
			}
			route(fu, op)
			if !directed && fv != fu {
				route(fv, op)
			}
			res.Applied++
		}
	}

	// Group routed ops per fragment, preserving batch order.
	perFrag := make(map[int][]graph.Update)
	for _, r := range routed {
		perFrag[r.frag] = append(perFrag[r.frag], r.op)
	}

	// Rebuild the touched fragments and collect mirror-set changes.
	newFrags := make([]*Fragment, m)
	copy(newFrags, p.Fragments)
	mirrorChangedOwners := make(map[int]bool)
	newlyMirrored := make(map[int]map[graph.VertexID]bool) // owner -> vertices with new mirrors
	for f, ops := range perFrag {
		old := p.Fragments[f]
		local := make(map[graph.VertexID]bool, len(old.local))
		for v := range old.local {
			local[v] = true
		}
		d := graph.NewDeltaBuilder(old.Graph)
		for _, op := range ops {
			switch op.Kind {
			case graph.UpdateAddVertex:
				if owner[op.Src] == f {
					local[op.Src] = true
				}
			case graph.UpdateRemoveVertex:
				delete(local, op.Src)
			}
			d.Apply(op)
		}
		// Owned vertices always stay, even when isolated; border copies
		// orphaned by deletions are dropped so Fi.O stays tight.
		d.PruneIsolated(func(v graph.VertexID) bool { return local[v] })
		ng := d.Build()

		frag := &Fragment{ID: f, Graph: ng, local: local}
		frag.Local = sortedIDs(local)
		outSet := make(map[graph.VertexID]bool)
		for i := 0; i < ng.NumVertices(); i++ {
			if v := ng.VertexAt(i); !local[v] {
				outSet[v] = true
			}
		}
		frag.OutBorder = sortedIDs(outSet)
		newFrags[f] = frag
		res.Changes[f] = &FragmentChange{Frag: f, Ops: ops, OldGraph: old.Graph}

		// Diff the fragment's out-border to repair mirror sets.
		oldOut := make(map[graph.VertexID]bool, len(old.OutBorder))
		for _, v := range old.OutBorder {
			oldOut[v] = true
		}
		for v := range outSet {
			if !oldOut[v] {
				mirrors[v] = insertSorted(mirrors[v], f)
				if o, ok := owner[v]; ok {
					mirrorChangedOwners[o] = true
					if newlyMirrored[o] == nil {
						newlyMirrored[o] = make(map[graph.VertexID]bool)
					}
					newlyMirrored[o][v] = true
				}
			}
		}
		for v := range oldOut {
			if !outSet[v] {
				mirrors[v] = removeInt(mirrors[v], f)
				if len(mirrors[v]) == 0 {
					delete(mirrors, v)
				}
				if o, ok := owner[v]; ok {
					mirrorChangedOwners[o] = true
				}
			}
		}
	}
	// Mirror entries for vertices that no longer exist anywhere.
	for v := range mirrors {
		if _, ok := owner[v]; !ok {
			delete(mirrors, v)
		}
	}

	// Refresh Fi.I wherever it may have changed: every rebuilt fragment,
	// plus owners whose vertices gained or lost mirrors.
	refresh := make(map[int]bool, len(perFrag)+len(mirrorChangedOwners))
	for f := range perFrag {
		refresh[f] = true
	}
	for f := range mirrorChangedOwners {
		refresh[f] = true
	}
	for f := range refresh {
		frag := newFrags[f]
		inSet := make(map[graph.VertexID]bool)
		for v := range frag.local {
			if len(mirrors[v]) > 0 {
				inSet[v] = true
			}
		}
		newIn := sortedIDs(inSet)
		reship := sortedIDs(newlyMirrored[f])
		if frag == p.Fragments[f] {
			if len(reship) == 0 && equalIDs(newIn, frag.InBorder) {
				continue // nothing actually changed for this fragment
			}
			// Border-only change: clone the fragment, sharing its graph.
			clone := *frag
			clone.InBorder = newIn
			newFrags[f] = &clone
		} else {
			frag.InBorder = newIn
		}
		ch := res.Changes[f]
		if ch == nil {
			ch = &FragmentChange{Frag: f, OldGraph: p.Fragments[f].Graph}
			res.Changes[f] = ch
		}
		ch.NewInBorder = reship
	}

	gp := &FragGraph{owner: owner, mirrors: mirrors, m: m}
	return &Partitioned{
		Source:     p.Source,
		Fragments:  newFrags,
		GP:         gp,
		Assignment: p.Assignment,
		Strategy:   p.Strategy,
	}, res
}

func equalIDs(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func insertSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	if i < len(s) && s[i] == x {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

func removeInt(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	if i >= len(s) || s[i] != x {
		return s
	}
	return append(s[:i], s[i+1:]...)
}
