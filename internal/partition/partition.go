// Package partition implements the graph partition strategies of GRAPE
// (Section 2 and Section 6 "Graph partition"): it splits a graph G into m
// fragments F = (F1, ..., Fm), computes the border sets Fi.I and Fi.O, and
// builds the fragmentation graph GP used to route messages between workers.
//
// Several strategies are provided, mirroring the paper's Partition Manager:
//
//   - Hash: hash edge-cut (the simplest, used as the default in tests).
//   - Range: contiguous ranges of vertex IDs (useful for road networks where
//     nearby IDs are spatially close).
//   - LDG: streaming linear deterministic greedy partitioning, the
//     "fast streaming-style partition strategy" of [43].
//   - Multilevel: a METIS-like locality-preserving partitioner based on
//     BFS region growing with balance constraints.
//   - VertexCut: a vertex-cut strategy that assigns edges and derives vertex
//     ownership, producing small vertex cut-sets on skewed graphs.
//
// All strategies return a vertex → fragment assignment; Build turns an
// assignment into fragments plus the fragmentation graph.
package partition

import (
	"fmt"
	"sort"

	"grape/internal/graph"
)

// Strategy assigns each vertex (by dense index) of g to one of m fragments.
// Implementations must be deterministic for a given input.
type Strategy interface {
	// Name returns the strategy name used in reports.
	Name() string
	// Assign returns a slice of length g.NumVertices() with values in [0, m).
	Assign(g *graph.Graph, m int) []int
}

// Fragment is one fragment Fi of a partitioned graph: the subgraph induced by
// the vertices assigned to worker i, extended with the cross edges to
// out-border vertices so that sequential algorithms can run on it unchanged.
type Fragment struct {
	// ID is the fragment (worker) index in [0, m).
	ID int
	// Graph is the local fragment graph. It contains all vertices owned by
	// this fragment plus copies of the out-border vertices, and every edge of
	// G whose source is owned by this fragment (plus, for undirected graphs,
	// edges whose destination is owned).
	Graph *graph.Graph
	// Local lists the external IDs of the vertices owned by the fragment
	// (Vi), in ascending order.
	Local []graph.VertexID
	// InBorder is Fi.I: owned vertices that have an incoming edge from
	// another fragment.
	InBorder []graph.VertexID
	// OutBorder is Fi.O: vertices owned by other fragments that local
	// vertices have edges to (the copies present in Graph).
	OutBorder []graph.VertexID

	local map[graph.VertexID]bool
}

// Owns reports whether the fragment owns vertex v.
func (f *Fragment) Owns(v graph.VertexID) bool { return f.local[v] }

// NumLocal returns |Vi|.
func (f *Fragment) NumLocal() int { return len(f.Local) }

// FragGraph is the fragmentation graph GP: an index that, for every border
// vertex, records which fragment owns it and which fragments hold copies of
// it (i.e. have it in their Fi.O). GRAPE uses it to deduce the destinations
// of designated messages (Section 3.2).
type FragGraph struct {
	owner   map[graph.VertexID]int
	mirrors map[graph.VertexID][]int
	m       int
}

// NumFragments returns the number of fragments m.
func (gp *FragGraph) NumFragments() int { return gp.m }

// Owner returns the fragment that owns vertex v, or -1 if v is unknown.
func (gp *FragGraph) Owner(v graph.VertexID) int {
	if o, ok := gp.owner[v]; ok {
		return o
	}
	return -1
}

// Mirrors returns the fragments that hold v in their out-border Fi.O. The
// returned slice must not be modified.
func (gp *FragGraph) Mirrors(v graph.VertexID) []int { return gp.mirrors[v] }

// IsBorder reports whether v is a border vertex of the partition, i.e.
// whether at least one fragment other than its owner holds a copy of it.
func (gp *FragGraph) IsBorder(v graph.VertexID) bool { return len(gp.mirrors[v]) > 0 }

// Destinations returns every fragment that must be informed when the value of
// border vertex v changes at fragment from: the owner of v and every mirror,
// excluding from itself. Destinations returns nil for non-border vertices
// whose owner is from.
func (gp *FragGraph) Destinations(v graph.VertexID, from int) []int {
	var out []int
	if o := gp.Owner(v); o >= 0 && o != from {
		out = append(out, o)
	}
	for _, mi := range gp.mirrors[v] {
		if mi != from && (len(out) == 0 || !containsInt(out, mi)) {
			out = append(out, mi)
		}
	}
	sort.Ints(out)
	return out
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// BorderVertices returns all border vertices in ascending order.
func (gp *FragGraph) BorderVertices() []graph.VertexID {
	out := make([]graph.VertexID, 0, len(gp.mirrors))
	for v := range gp.mirrors {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Partitioned is the result of partitioning a graph: the fragments, the
// fragmentation graph, and the raw assignment.
type Partitioned struct {
	// Source is the original graph.
	Source *graph.Graph
	// Fragments holds the m fragments.
	Fragments []*Fragment
	// GP is the fragmentation graph.
	GP *FragGraph
	// Assignment maps dense vertex index of Source to fragment ID.
	Assignment []int
	// Strategy is the name of the strategy that produced the assignment.
	Strategy string
}

// CutEdges returns the number of edges of the source graph whose endpoints
// live in different fragments — the edge-cut size used to compare strategies.
func (p *Partitioned) CutEdges() int {
	cut := 0
	g := p.Source
	for i := 0; i < g.NumVertices(); i++ {
		for _, he := range g.OutEdges(i) {
			if !g.Directed() && int(he.To) < i {
				continue
			}
			if p.Assignment[i] != p.Assignment[he.To] {
				cut++
			}
		}
	}
	return cut
}

// Balance returns the ratio between the largest fragment size and the ideal
// size |V|/m. 1.0 is perfectly balanced.
func (p *Partitioned) Balance() float64 {
	if p.Source.NumVertices() == 0 || len(p.Fragments) == 0 {
		return 1
	}
	max := 0
	for _, f := range p.Fragments {
		if f.NumLocal() > max {
			max = f.NumLocal()
		}
	}
	ideal := float64(p.Source.NumVertices()) / float64(len(p.Fragments))
	if ideal == 0 {
		return 1
	}
	return float64(max) / ideal
}

// Partition splits g into m fragments using the given strategy and builds the
// fragmentation graph. It panics if m <= 0.
func Partition(g *graph.Graph, m int, s Strategy) *Partitioned {
	if m <= 0 {
		panic(fmt.Sprintf("partition: invalid fragment count %d", m))
	}
	assign := s.Assign(g, m)
	if len(assign) != g.NumVertices() {
		panic(fmt.Sprintf("partition: strategy %s returned %d assignments for %d vertices",
			s.Name(), len(assign), g.NumVertices()))
	}
	return Build(g, assign, m, s.Name())
}

// Build constructs fragments and the fragmentation graph from an explicit
// vertex assignment. Assignment values outside [0, m) are clamped into range
// by modular reduction.
func Build(g *graph.Graph, assign []int, m int, strategyName string) *Partitioned {
	n := g.NumVertices()
	norm := make([]int, n)
	for i, a := range assign {
		if a < 0 {
			a = -a
		}
		norm[i] = a % m
	}

	builders := make([]*graph.Builder, m)
	locals := make([]map[graph.VertexID]bool, m)
	inBorder := make([]map[graph.VertexID]bool, m)
	outBorder := make([]map[graph.VertexID]bool, m)
	for i := 0; i < m; i++ {
		builders[i] = graph.NewBuilder(g.Directed())
		locals[i] = make(map[graph.VertexID]bool)
		inBorder[i] = make(map[graph.VertexID]bool)
		outBorder[i] = make(map[graph.VertexID]bool)
	}

	// Add owned vertices first so labels are present.
	for i := 0; i < n; i++ {
		f := norm[i]
		builders[f].AddVertex(g.VertexAt(i), g.Label(i))
		locals[f][g.VertexAt(i)] = true
	}

	// Distribute edges. An edge (u,v) goes to the fragment owning u; if v is
	// remote, v becomes an out-border copy there and an in-border vertex at
	// its owner. For undirected graphs the symmetric edge is handled when the
	// adjacency of v is scanned, because OutEdges covers both directions.
	for i := 0; i < n; i++ {
		fu := norm[i]
		u := g.VertexAt(i)
		for _, he := range g.OutEdges(i) {
			j := int(he.To)
			fv := norm[j]
			v := g.VertexAt(j)
			if !g.Directed() && j < i && fv == fu {
				// Local undirected edge already added when scanning v; cross
				// undirected edges are added once per endpoint fragment.
				continue
			}
			builders[fu].AddVertex(v, g.Label(j))
			builders[fu].AddEdge(u, v, he.Weight, he.Label)
			if fv != fu {
				outBorder[fu][v] = true
				inBorder[fv][v] = true
			}
		}
	}

	gp := &FragGraph{
		owner:   make(map[graph.VertexID]int, n),
		mirrors: make(map[graph.VertexID][]int),
		m:       m,
	}
	for i := 0; i < n; i++ {
		gp.owner[g.VertexAt(i)] = norm[i]
	}

	p := &Partitioned{
		Source:     g,
		Fragments:  make([]*Fragment, m),
		GP:         gp,
		Assignment: norm,
		Strategy:   strategyName,
	}
	for f := 0; f < m; f++ {
		frag := &Fragment{
			ID:    f,
			Graph: builders[f].Build(),
			local: locals[f],
		}
		frag.Local = sortedIDs(locals[f])
		frag.InBorder = sortedIDs(inBorder[f])
		frag.OutBorder = sortedIDs(outBorder[f])
		for _, v := range frag.OutBorder {
			gp.mirrors[v] = append(gp.mirrors[v], f)
		}
		p.Fragments[f] = frag
	}
	for v := range gp.mirrors {
		sort.Ints(gp.mirrors[v])
	}
	return p
}

func sortedIDs(set map[graph.VertexID]bool) []graph.VertexID {
	out := make([]graph.VertexID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
