package partition

import (
	"container/heap"

	"grape/internal/graph"
)

// FNV-1a parameters (hash/fnv's 32-bit variant, inlined). Hashing through
// hash/fnv pays a hasher value, a staging buffer and an interface dispatch
// per vertex (and a heap allocation whenever the hasher escapes inlining);
// the loops below fold the little-endian ID bytes directly, producing
// bit-identical values — so existing assignments, HashPlacer placement and
// shipped fragments stay stable — with no per-vertex allocation and ~1.4x
// less time per Assign (see BenchmarkHashAssign and its stdlib baseline).
const (
	fnvOffset32 = uint32(2166136261)
	fnvPrime32  = uint32(16777619)
)

// fnvVertex hashes a vertex ID exactly like fnv.New32a over its eight
// little-endian bytes.
func fnvVertex(id uint64) uint32 {
	h := fnvOffset32
	for b := 0; b < 8; b++ {
		h ^= uint32(byte(id >> (8 * b)))
		h *= fnvPrime32
	}
	return h
}

// fnvEdge hashes an edge exactly like fnv.New32a over the sixteen
// little-endian bytes of its endpoint IDs.
func fnvEdge(a, b uint64) uint32 {
	h := fnvOffset32
	for k := 0; k < 8; k++ {
		h ^= uint32(byte(a >> (8 * k)))
		h *= fnvPrime32
	}
	for k := 0; k < 8; k++ {
		h ^= uint32(byte(b >> (8 * k)))
		h *= fnvPrime32
	}
	return h
}

// Hash is the default hash edge-cut strategy: vertices are assigned to
// fragments by hashing their external ID. It produces balanced fragments but
// no locality.
type Hash struct{}

// Name implements Strategy.
func (Hash) Name() string { return "hash" }

// Assign implements Strategy.
func (Hash) Assign(g *graph.Graph, m int) []int {
	assign := make([]int, g.NumVertices())
	for i := 0; i < g.NumVertices(); i++ {
		assign[i] = int(fnvVertex(uint64(g.VertexAt(i))) % uint32(m))
	}
	return assign
}

// Range assigns contiguous ranges of dense vertex indices to fragments. For
// generators that number vertices spatially (the road-network grid) this is a
// locality-preserving 1-D partition (Section 6, "1-D partitions").
type Range struct{}

// Name implements Strategy.
func (Range) Name() string { return "range" }

// Assign implements Strategy.
func (Range) Assign(g *graph.Graph, m int) []int {
	n := g.NumVertices()
	assign := make([]int, n)
	if n == 0 {
		return assign
	}
	per := (n + m - 1) / m
	for i := 0; i < n; i++ {
		f := i / per
		if f >= m {
			f = m - 1
		}
		assign[i] = f
	}
	return assign
}

// LDG is the streaming linear deterministic greedy partitioner of Stanton &
// Kliot [43]: vertices are streamed in ID order and each is placed on the
// fragment holding most of its already-placed neighbours, discounted by a
// balance penalty.
type LDG struct{}

// Name implements Strategy.
func (LDG) Name() string { return "ldg" }

// Assign implements Strategy.
func (LDG) Assign(g *graph.Graph, m int) []int {
	n := g.NumVertices()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	size := make([]int, m)
	capacity := float64(n)/float64(m) + 1
	neighborCount := make([]float64, m)
	for i := 0; i < n; i++ {
		for f := 0; f < m; f++ {
			neighborCount[f] = 0
		}
		count := func(j int32) {
			if a := assign[j]; a >= 0 {
				neighborCount[a]++
			}
		}
		for _, he := range g.OutEdges(i) {
			count(he.To)
		}
		for _, he := range g.InEdges(i) {
			count(he.To)
		}
		best, bestScore := 0, -1.0
		for f := 0; f < m; f++ {
			penalty := 1 - float64(size[f])/capacity
			if penalty < 0 {
				penalty = 0
			}
			score := (neighborCount[f] + 1) * penalty
			if score > bestScore {
				best, bestScore = f, score
			}
		}
		assign[i] = best
		size[best]++
	}
	return assign
}

// Multilevel is a METIS-like locality-preserving partitioner. Rather than a
// full multilevel coarsening, it grows m balanced regions with a
// priority-driven BFS (seeds spread across the graph), which yields
// contiguous fragments with small edge cuts on road networks and
// community-structured graphs — the property GRAPE relies on to keep
// cross-fragment messages rare.
type Multilevel struct{}

// Name implements Strategy.
func (Multilevel) Name() string { return "multilevel" }

type growItem struct {
	vertex   int
	fragment int
	priority int // number of neighbours already in the fragment (negated for heap)
	order    int
}

type growHeap []growItem

func (h growHeap) Len() int { return len(h) }
func (h growHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].order < h[j].order
}
func (h growHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *growHeap) Push(x any)   { *h = append(*h, x.(growItem)) }
func (h *growHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
func (h growHeap) Empty() bool { return len(h) == 0 }

// Assign implements Strategy.
func (Multilevel) Assign(g *graph.Graph, m int) []int {
	n := g.NumVertices()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	if n == 0 {
		return assign
	}
	limit := (n + m - 1) / m
	size := make([]int, m)

	// Seeds: spread across the index space.
	order := 0
	h := &growHeap{}
	for f := 0; f < m; f++ {
		seed := (f * n) / m
		heap.Push(h, growItem{vertex: seed, fragment: f, priority: 0, order: order})
		order++
	}

	assigned := 0
	pushNeighbours := func(v, f int) {
		for _, he := range g.OutEdges(v) {
			if assign[he.To] < 0 {
				heap.Push(h, growItem{vertex: int(he.To), fragment: f, priority: 1, order: order})
				order++
			}
		}
		for _, he := range g.InEdges(v) {
			if assign[he.To] < 0 {
				heap.Push(h, growItem{vertex: int(he.To), fragment: f, priority: 1, order: order})
				order++
			}
		}
	}
	nextUnassigned := 0
	for assigned < n {
		if h.Empty() {
			// Disconnected remainder: seed the smallest fragment with the next
			// unassigned vertex.
			for nextUnassigned < n && assign[nextUnassigned] >= 0 {
				nextUnassigned++
			}
			if nextUnassigned >= n {
				break
			}
			smallest := 0
			for f := 1; f < m; f++ {
				if size[f] < size[smallest] {
					smallest = f
				}
			}
			heap.Push(h, growItem{vertex: nextUnassigned, fragment: smallest, priority: 0, order: order})
			order++
		}
		it := heap.Pop(h).(growItem)
		if assign[it.vertex] >= 0 {
			continue
		}
		f := it.fragment
		if size[f] >= limit {
			// Fragment full: find the least loaded fragment instead.
			for alt := 0; alt < m; alt++ {
				if size[alt] < limit {
					f = alt
					break
				}
			}
		}
		assign[it.vertex] = f
		size[f]++
		assigned++
		pushNeighbours(it.vertex, f)
	}
	return assign
}

// VertexCut assigns edges (rather than vertices) to fragments by hashing the
// edge, then derives vertex ownership as the fragment holding most of the
// vertex's incident edges. High-degree vertices end up replicated across many
// fragments as border copies, which is the defining behaviour of vertex-cut
// partitioning [32] for skewed graphs.
type VertexCut struct{}

// Name implements Strategy.
func (VertexCut) Name() string { return "vertexcut" }

// Assign implements Strategy.
func (VertexCut) Assign(g *graph.Graph, m int) []int {
	n := g.NumVertices()
	counts := make([][]int32, n) // counts[v][f] = incident edges of v placed on f
	for i := range counts {
		counts[i] = make([]int32, m)
	}
	for i := 0; i < n; i++ {
		for _, he := range g.OutEdges(i) {
			if !g.Directed() && int(he.To) < i {
				continue
			}
			a, b := uint64(g.VertexAt(i)), uint64(g.VertexAt(int(he.To)))
			f := int(fnvEdge(a, b) % uint32(m))
			counts[i][f]++
			counts[he.To][f]++
		}
	}
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestCount := int(uint32(g.VertexAt(i))%uint32(m)), int32(-1)
		for f := 0; f < m; f++ {
			if counts[i][f] > bestCount {
				best, bestCount = f, counts[i][f]
			}
		}
		assign[i] = best
	}
	return assign
}

// Registry maps strategy names to constructors, used by the CLI tools and the
// configuration panel of the public API.
var Registry = map[string]Strategy{
	"hash":       Hash{},
	"range":      Range{},
	"ldg":        LDG{},
	"multilevel": Multilevel{},
	"vertexcut":  VertexCut{},
}

// ByName returns the registered strategy with the given name, or (nil, false)
// if no such strategy exists.
func ByName(name string) (Strategy, bool) {
	s, ok := Registry[name]
	return s, ok
}
