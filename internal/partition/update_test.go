package partition

import (
	"fmt"
	"math/rand"
	"testing"

	"grape/internal/graph"
	"grape/internal/graphgen"
)

// rebuildFromScratch builds the ground-truth partition of the fully updated
// graph using the incremental partition's ownership, so the two can be
// compared fragment by fragment.
func rebuildFromScratch(g *graph.Graph, gp *FragGraph, m int) *Partitioned {
	assign := make([]int, g.NumVertices())
	for i := 0; i < g.NumVertices(); i++ {
		assign[i] = gp.Owner(g.VertexAt(i))
	}
	return Build(g, assign, m, "scratch")
}

func edgeMultiset(g *graph.Graph) map[graph.Edge]int {
	set := make(map[graph.Edge]int)
	for _, e := range g.Edges() {
		if !g.Directed() && e.Dst < e.Src {
			e.Src, e.Dst = e.Dst, e.Src
		}
		set[e]++
	}
	return set
}

func requireSameIDs(t *testing.T, what string, got, want []graph.VertexID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v want %v", what, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: got %v want %v", what, got, want)
		}
	}
}

func requireEquivalent(t *testing.T, step string, got, want *Partitioned) {
	t.Helper()
	if len(got.Fragments) != len(want.Fragments) {
		t.Fatalf("%s: fragment count %d vs %d", step, len(got.Fragments), len(want.Fragments))
	}
	for f := range want.Fragments {
		gf, wf := got.Fragments[f], want.Fragments[f]
		requireSameIDs(t, fmt.Sprintf("%s: frag %d Local", step, f), gf.Local, wf.Local)
		requireSameIDs(t, fmt.Sprintf("%s: frag %d InBorder", step, f), gf.InBorder, wf.InBorder)
		requireSameIDs(t, fmt.Sprintf("%s: frag %d OutBorder", step, f), gf.OutBorder, wf.OutBorder)
		gs, ws := edgeMultiset(gf.Graph), edgeMultiset(wf.Graph)
		if len(gs) != len(ws) {
			t.Fatalf("%s: frag %d edge sets differ: %d vs %d distinct", step, f, len(gs), len(ws))
		}
		for e, n := range ws {
			if gs[e] != n {
				t.Fatalf("%s: frag %d edge %+v count %d want %d", step, f, e, gs[e], n)
			}
		}
		if gf.Graph.NumVertices() != wf.Graph.NumVertices() {
			t.Fatalf("%s: frag %d |V| %d want %d", step, f, gf.Graph.NumVertices(), wf.Graph.NumVertices())
		}
		for i := 0; i < wf.Graph.NumVertices(); i++ {
			id := wf.Graph.VertexAt(i)
			if got, want := gf.Graph.LabelOf(id), wf.Graph.Label(i); got != want {
				t.Fatalf("%s: frag %d label of %d: %q want %q", step, f, id, got, want)
			}
		}
	}
	for v, wantMs := range want.GP.mirrors {
		gotMs := got.GP.mirrors[v]
		if len(gotMs) != len(wantMs) {
			t.Fatalf("%s: mirrors of %d: %v want %v", step, v, gotMs, wantMs)
		}
		for i := range gotMs {
			if gotMs[i] != wantMs[i] {
				t.Fatalf("%s: mirrors of %d: %v want %v", step, v, gotMs, wantMs)
			}
		}
	}
	for v := range got.GP.mirrors {
		if _, ok := want.GP.mirrors[v]; !ok {
			t.Fatalf("%s: stale mirror entry for %d", step, v)
		}
	}
}

// randomBatch generates a mixed batch against the current graph state.
func randomBatch(rng *rand.Rand, cur *graph.Graph, size int, nextID *int64) []graph.Update {
	var batch []graph.Update
	edges := cur.Edges()
	for len(batch) < size {
		switch rng.Intn(10) {
		case 0: // add vertex
			*nextID++
			batch = append(batch, graph.AddVertexUpdate(graph.VertexID(1_000_000+*nextID), "new"))
		case 1: // remove a random vertex
			if cur.NumVertices() > 2 {
				batch = append(batch, graph.RemoveVertexUpdate(cur.VertexAt(rng.Intn(cur.NumVertices()))))
			}
		case 2, 3: // remove a random edge
			if len(edges) > 0 {
				e := edges[rng.Intn(len(edges))]
				batch = append(batch, graph.RemoveEdgeUpdate(e.Src, e.Dst))
			}
		case 4: // reweight a random edge
			if len(edges) > 0 {
				e := edges[rng.Intn(len(edges))]
				batch = append(batch, graph.ReweightEdgeUpdate(e.Src, e.Dst, 0.5+rng.Float64()*9))
			}
		default: // insert an edge between random (possibly new) endpoints
			u := cur.VertexAt(rng.Intn(cur.NumVertices()))
			var v graph.VertexID
			if rng.Intn(4) == 0 {
				*nextID++
				v = graph.VertexID(1_000_000 + *nextID)
			} else {
				v = cur.VertexAt(rng.Intn(cur.NumVertices()))
			}
			if u != v {
				batch = append(batch, graph.AddEdgeUpdate(u, v, 0.5+rng.Float64()*9, ""))
			}
		}
	}
	return batch
}

func testApplyUpdatesEquivalence(t *testing.T, g *graph.Graph, seed int64) {
	const m = 4
	p := Partition(g, m, Hash{})
	place := HashPlacer(m)
	rng := rand.New(rand.NewSource(seed))
	cur := g
	var nextID int64
	for step := 0; step < 25; step++ {
		batch := randomBatch(rng, cur, 1+rng.Intn(6), &nextID)
		prev := p.Fragments
		p2, res := p.ApplyUpdates(batch, place)
		// Snapshot isolation: the old epoch's fragments are untouched.
		for f := range prev {
			if prev[f] != p.Fragments[f] {
				t.Fatalf("step %d: ApplyUpdates mutated its input", step)
			}
		}
		for f := range res.Changes {
			if p2.Fragments[f] == prev[f] {
				t.Fatalf("step %d: changed fragment %d shares the old Fragment value", step, f)
			}
		}
		cur = graph.ApplyUpdates(cur, batch)
		want := rebuildFromScratch(cur, p2.GP, m)
		requireEquivalent(t, fmt.Sprintf("step %d (seed %d)", step, seed), p2, want)
		p = p2
	}
}

func TestApplyUpdatesEquivalenceUndirected(t *testing.T) {
	g := graphgen.RoadNetwork(8, 8, graphgen.Config{Seed: 5})
	testApplyUpdatesEquivalence(t, g, 101)
}

func TestApplyUpdatesEquivalenceDirected(t *testing.T) {
	g := graphgen.SocialNetwork(120, 4, graphgen.Config{Seed: 6, Labels: 5})
	testApplyUpdatesEquivalence(t, g, 202)
}

func TestApplyUpdatesNewMirrorReship(t *testing.T) {
	// 0,1 -> frag A; edge 0-1 local. Adding a cross edge from another
	// fragment to 1 must report 1 in the owner's NewInBorder.
	b := graph.NewBuilder(true)
	b.AddVertex(0, "")
	b.AddVertex(1, "")
	b.AddVertex(2, "")
	b.AddEdge(0, 1, 1, "")
	g := b.Build()
	assign := []int{0, 0, 1}
	p := Build(g, assign, 2, "manual")

	p2, res := p.ApplyUpdates([]graph.Update{graph.AddEdgeUpdate(2, 1, 1, "")}, func(graph.VertexID) int { return 0 })
	ch0 := res.Changes[0]
	if ch0 == nil {
		t.Fatalf("owner fragment 0 not reported as affected: %+v", res.Changes)
	}
	found := false
	for _, v := range ch0.NewInBorder {
		if v == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("vertex 1 gained mirror 1 but NewInBorder=%v", ch0.NewInBorder)
	}
	if o := p2.GP.Owner(1); o != 0 {
		t.Fatalf("owner of 1 changed: %d", o)
	}
	ms := p2.GP.Mirrors(1)
	if len(ms) != 1 || ms[0] != 1 {
		t.Fatalf("mirrors of 1: %v", ms)
	}
	if in := p2.Fragments[0].InBorder; len(in) != 1 || in[0] != 1 {
		t.Fatalf("InBorder of frag 0: %v", in)
	}
}
