package partition

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"grape/internal/graph"
)

// TestInlineFNVMatchesHashFnv pins the inlined hash to the stdlib values it
// replaced: assignments (and HashPlacer placement) must stay bit-identical
// across the optimization so resident partitions and recorded fragments
// remain valid.
func TestInlineFNVMatchesHashFnv(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ids := []uint64{0, 1, 7, 255, 256, 1 << 20, 1<<63 - 1}
	for i := 0; i < 100; i++ {
		ids = append(ids, r.Uint64())
	}
	for _, id := range ids {
		h := fnv.New32a()
		var buf [8]byte
		for b := 0; b < 8; b++ {
			buf[b] = byte(id >> (8 * b))
		}
		h.Write(buf[:])
		if want, got := h.Sum32(), fnvVertex(id); got != want {
			t.Fatalf("fnvVertex(%d) = %d, want %d", id, got, want)
		}
	}
	for i := 0; i+1 < len(ids); i += 2 {
		a, b := ids[i], ids[i+1]
		h := fnv.New32a()
		var buf [16]byte
		for k := 0; k < 8; k++ {
			buf[k] = byte(a >> (8 * k))
			buf[8+k] = byte(b >> (8 * k))
		}
		h.Write(buf[:])
		if want, got := h.Sum32(), fnvEdge(a, b); got != want {
			t.Fatalf("fnvEdge(%d, %d) = %d, want %d", a, b, got, want)
		}
	}
}

func benchGraph(n int) *graph.Graph {
	r := rand.New(rand.NewSource(42))
	b := graph.NewBuilder(true)
	for v := 0; v < n; v++ {
		b.AddVertex(graph.VertexID(r.Int63()), "")
	}
	return b.Build()
}

// BenchmarkHashAssign documents the win of the inlined FNV against the
// stdlib baseline below: only the assignment slice is allocated (no
// per-vertex hasher or staging buffer can ever escape, regardless of how
// the call site inlines), and folding the bytes directly skips the
// hash.Hash32 interface dispatch — ~1.4x faster per Assign at 100k
// vertices. Run both with -benchmem to compare.
func BenchmarkHashAssign(b *testing.B) {
	g := benchGraph(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hash{}.Assign(g, 16)
	}
}

// BenchmarkHashAssignStdlib is the ablation baseline: the same assignment
// computed through hash/fnv, the shape of the code before the optimization.
func BenchmarkHashAssignStdlib(b *testing.B) {
	g := benchGraph(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign := make([]int, g.NumVertices())
		for v := 0; v < g.NumVertices(); v++ {
			h := fnv.New32a()
			id := uint64(g.VertexAt(v))
			var buf [8]byte
			for k := 0; k < 8; k++ {
				buf[k] = byte(id >> (8 * k))
			}
			h.Write(buf[:])
			assign[v] = int(h.Sum32() % uint32(16))
		}
	}
}
