// Package par implements the intra-fragment goroutine pool that parallelizes
// dense vertex sweeps inside one worker's PEval/IncEval. A Pool chunks a dense
// index range [0, n) into fixed-size contiguous chunks and hands them to up to
// Width workers; kernels keep per-worker scratch buffers (indexed by the
// worker id the pool passes to the callback) and merge them after the sweep,
// so the parallel result stays equal to the sequential one.
//
// The pool is a width descriptor, not a resident set of goroutines: Sweep
// spawns its workers per call and joins them before returning, which keeps
// lifetime management trivial (nothing to close, nothing leaks across
// queries). A nil *Pool is valid everywhere and means sequential execution —
// the engine hands programs a nil pool unless Options.Parallelism asks for
// more, so the legacy single-goroutine path stays the reference
// implementation.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"grape/internal/obs"
)

// ChunkSize is the fixed sweep granularity: the number of dense vertex
// indices one chunk covers. Chunk boundaries are a function of n only (never
// of the pool width), so per-chunk work assignment is the only scheduling
// freedom and kernels that merge per-worker buffers under an order-free fold
// produce identical results at every width.
const ChunkSize = 1024

var obsParallelChunks = obs.Counter("grape_parallel_chunks_total",
	"Dense sweep chunks executed by intra-fragment worker pools.")

// Pool is an intra-fragment sweep pool of the given width. The zero of the
// type is not used; New returns nil for widths that mean "sequential".
type Pool struct {
	width int
}

// New returns a pool running sweeps on up to width goroutines. Widths of one
// or less (and zero, the engine's "sequential legacy path" setting) return
// nil, the sequential pool.
func New(width int) *Pool {
	if width <= 1 {
		return nil
	}
	if max := runtime.NumCPU() * 4; width > max {
		width = max // a wider pool than cores only adds scheduling churn
	}
	return &Pool{width: width}
}

// Width returns the number of concurrent sweep workers; 1 for the nil
// (sequential) pool. Kernels size their per-worker scratch buffers with it.
func (p *Pool) Width() int {
	if p == nil {
		return 1
	}
	return p.width
}

// Sweep runs fn over the dense range [0, n) split into ChunkSize chunks,
// calling fn(worker, lo, hi) for each chunk with lo < hi <= n. Worker ids are
// dense in [0, Width()) and at most one chunk runs per worker at a time, so
// fn may use worker-indexed scratch without locking. Chunks are claimed
// dynamically (an atomic cursor), which keeps skewed chunks from idling the
// rest of the pool. On the nil pool, or when the range fits a single chunk,
// fn runs inline as fn(0, 0, n).
func (p *Pool) Sweep(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := (n + ChunkSize - 1) / ChunkSize
	if p == nil || chunks == 1 {
		fn(0, 0, n)
		return
	}
	workers := p.width
	if workers > chunks {
		workers = chunks
	}
	obsParallelChunks.Add(float64(chunks))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * ChunkSize
				hi := lo + ChunkSize
				if hi > n {
					hi = n
				}
				fn(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}
