package par

import (
	"sync"
	"testing"
	"time"
)

// coverage runs a sweep over n and returns how many times each index was
// visited plus the set of worker ids seen.
func coverage(t *testing.T, p *Pool, n int) ([]int, map[int]bool) {
	t.Helper()
	seen := make([]int, n)
	workersSeen := make(map[int]bool)
	var mu sync.Mutex
	p.Sweep(n, func(worker, lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("Sweep(%d): bad chunk [%d,%d)", n, lo, hi)
		}
		if worker < 0 || worker >= p.Width() {
			t.Errorf("Sweep(%d): worker id %d out of [0,%d)", n, worker, p.Width())
		}
		mu.Lock()
		workersSeen[worker] = true
		for i := lo; i < hi; i++ {
			seen[i]++
		}
		mu.Unlock()
	})
	return seen, workersSeen
}

func TestSweepCoversEveryIndexOnce(t *testing.T) {
	// Chunk-boundary sizes: empty, single, one each side of a chunk edge and
	// of a two-chunk edge.
	sizes := []int{0, 1, ChunkSize - 1, ChunkSize, ChunkSize + 1, 2*ChunkSize - 1, 2 * ChunkSize, 2*ChunkSize + 1, 5*ChunkSize + 7}
	for _, width := range []int{0, 1, 2, 3, 8} {
		p := New(width)
		for _, n := range sizes {
			seen, _ := coverage(t, p, n)
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("width=%d n=%d: index %d visited %d times", width, n, i, c)
				}
			}
		}
	}
}

func TestNilPoolIsSequential(t *testing.T) {
	if p := New(1); p != nil {
		t.Fatalf("New(1) = %v, want nil", p)
	}
	if p := New(0); p != nil {
		t.Fatalf("New(0) = %v, want nil", p)
	}
	var p *Pool
	if w := p.Width(); w != 1 {
		t.Fatalf("nil pool Width() = %d, want 1", w)
	}
	calls := 0
	p.Sweep(3*ChunkSize, func(worker, lo, hi int) {
		calls++
		if worker != 0 || lo != 0 || hi != 3*ChunkSize {
			t.Fatalf("nil pool chunk = (%d,%d,%d), want (0,0,%d)", worker, lo, hi, 3*ChunkSize)
		}
	})
	if calls != 1 {
		t.Fatalf("nil pool ran %d chunks, want 1", calls)
	}
}

func TestSweepSmallRangeRunsInline(t *testing.T) {
	p := New(4)
	if p.Width() != 4 {
		t.Fatalf("Width() = %d, want 4", p.Width())
	}
	calls := 0
	p.Sweep(ChunkSize, func(worker, lo, hi int) { calls++ })
	if calls != 1 {
		t.Fatalf("single-chunk sweep ran %d calls, want 1", calls)
	}
	p.Sweep(0, func(worker, lo, hi int) { calls++ })
	if calls != 1 {
		t.Fatalf("empty sweep ran the callback")
	}
}

func TestSweepUsesMultipleWorkers(t *testing.T) {
	p := New(4)
	var mu sync.Mutex
	workers := make(map[int]bool)
	p.Sweep(64*ChunkSize, func(worker, lo, hi int) {
		mu.Lock()
		workers[worker] = true
		mu.Unlock()
		time.Sleep(time.Millisecond) // hold the chunk so siblings get to claim
	})
	if len(workers) < 2 {
		t.Fatalf("64-chunk sweep used %d workers, want >= 2", len(workers))
	}
}
