package bench

import (
	"fmt"

	"grape/internal/core"
	"grape/internal/metrics"
	"grape/internal/pie"
	"grape/internal/workload"
)

// IncrementalRow is one point of the incremental-maintenance experiment: the
// same monotone update stream absorbed by a session with materialized
// SSSP+CC views (IncEval maintenance) versus a session that re-runs both
// queries from scratch after every batch (full recompute). Both sides pay
// the same partition-maintenance cost; the difference is pure answer
// maintenance.
type IncrementalRow struct {
	Dataset             string  `json:"dataset"`
	Workers             int     `json:"workers"`
	BatchSize           int     `json:"batch_size"`
	Batches             int     `json:"batches"`
	MaintainTotalSec    float64 `json:"maintain_total_sec"`
	RecomputeTotalSec   float64 `json:"recompute_total_sec"`
	MaintainPerBatchMS  float64 `json:"maintain_per_batch_ms"`
	RecomputePerBatchMS float64 `json:"recompute_per_batch_ms"`
	// Speedup is RecomputeTotalSec / MaintainTotalSec.
	Speedup float64 `json:"speedup"`
	// IncrementalRounds / RecomputedRounds report how the two views were
	// actually maintained (monotone streams should be all-incremental).
	IncrementalRounds int64 `json:"incremental_rounds"`
	RecomputedRounds  int64 `json:"recomputed_rounds"`
}

// IncrementalMaintenance runs the maintenance-vs-recompute experiment over
// the road-network surrogate for each batch size: a monotone (insert-only)
// stream of `batches` batches is absorbed twice, once by a session whose
// SSSP and CC views are maintained by IncEval from the affected fragments,
// once by a session that answers both queries from scratch after every
// batch.
func IncrementalMaintenance(workers int, scale workload.Scale, batchSizes []int, batches int) ([]IncrementalRow, error) {
	if batches <= 0 {
		batches = 30
	}
	var rows []IncrementalRow
	for _, bs := range batchSizes {
		g, err := workload.Load(workload.Traffic, scale)
		if err != nil {
			return nil, err
		}
		source := workload.Sources(g, 1, 7)[0]
		stream := workload.UpdateStream(g, workload.MonotoneStreamConfig(31+int64(bs), batches, bs))
		opts := core.Options{Workers: workers, Strategy: grapeStrategy}

		// Maintained side: views absorb every batch incrementally.
		sm, err := core.NewSession(g, opts)
		if err != nil {
			return nil, err
		}
		ssspView, err := sm.Materialize(source, pie.SSSP{})
		if err != nil {
			sm.Close()
			return nil, err
		}
		ccView, err := sm.Materialize(nil, pie.CC{})
		if err != nil {
			sm.Close()
			return nil, err
		}
		mTimer := metrics.StartTimer()
		for _, tb := range stream {
			if _, err := sm.ApplyUpdates(tb.Ops); err != nil {
				sm.Close()
				return nil, fmt.Errorf("bench: maintain batch %d: %w", tb.Seq, err)
			}
		}
		maintainTotal := mTimer.Stop().Seconds()
		ss, cs := ssspView.Stats(), ccView.Stats()
		sm.Close()

		// Recompute side: same stream, but both answers are recomputed from
		// scratch after every batch.
		sr, err := core.NewSession(g, opts)
		if err != nil {
			return nil, err
		}
		rTimer := metrics.StartTimer()
		for _, tb := range stream {
			if _, err := sr.ApplyUpdates(tb.Ops); err != nil {
				sr.Close()
				return nil, fmt.Errorf("bench: recompute batch %d: %w", tb.Seq, err)
			}
			if _, err := sr.Run(source, pie.SSSP{}); err != nil {
				sr.Close()
				return nil, fmt.Errorf("bench: recompute SSSP batch %d: %w", tb.Seq, err)
			}
			if _, err := sr.Run(nil, pie.CC{}); err != nil {
				sr.Close()
				return nil, fmt.Errorf("bench: recompute CC batch %d: %w", tb.Seq, err)
			}
		}
		recomputeTotal := rTimer.Stop().Seconds()
		sr.Close()

		n := float64(batches)
		rows = append(rows, IncrementalRow{
			Dataset:             workload.Traffic,
			Workers:             workers,
			BatchSize:           bs,
			Batches:             batches,
			MaintainTotalSec:    maintainTotal,
			RecomputeTotalSec:   recomputeTotal,
			MaintainPerBatchMS:  maintainTotal / n * 1000,
			RecomputePerBatchMS: recomputeTotal / n * 1000,
			Speedup:             safeRatio(recomputeTotal, maintainTotal),
			IncrementalRounds:   ss.Incremental + cs.Incremental,
			RecomputedRounds:    ss.Recomputed + cs.Recomputed,
		})
	}
	return rows, nil
}

// FormatIncrementalRows renders the experiment as a text table.
func FormatIncrementalRows(rows []IncrementalRow) string {
	out := "== Incremental maintenance: IncEval-maintained SSSP+CC views vs full recompute ==\n"
	out += fmt.Sprintf("%9s %8s %16s %16s %8s %10s\n",
		"batchsz", "batches", "maintain(ms/b)", "recompute(ms/b)", "speedup", "inc/recomp")
	for _, r := range rows {
		out += fmt.Sprintf("%9d %8d %16.3f %16.3f %7.2fx %6d/%d\n",
			r.BatchSize, r.Batches, r.MaintainPerBatchMS, r.RecomputePerBatchMS,
			r.Speedup, r.IncrementalRounds, r.RecomputedRounds)
	}
	return out
}
