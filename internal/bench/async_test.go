package bench

import (
	"strings"
	"testing"

	"grape/internal/workload"
)

func TestAsyncComparison(t *testing.T) {
	rows, err := AsyncComparison([]int{2, 3}, workload.ScaleTiny, true)
	if err != nil {
		t.Fatal(err)
	}
	// n=2: balanced + skewed; n=3 adds the straggler workload.
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5: %+v", len(rows), rows)
	}
	var sawStraggler bool
	for _, r := range rows {
		if r.BSPSeconds <= 0 || r.AsyncSeconds <= 0 {
			t.Fatalf("%s n=%d: non-positive timings %+v", r.Workload, r.Workers, r)
		}
		if r.BSPRounds <= 0 || r.AsyncRounds <= 0 {
			t.Fatalf("%s n=%d: missing round depths %+v", r.Workload, r.Workers, r)
		}
		if r.Workload == "straggler" {
			sawStraggler = true
			// The headline claim of the async plane: the straggler workload
			// must beat BSP comfortably (the full-size run shows ~20x; even
			// the CI-sized run clears 1.2x with a wide margin).
			if r.Speedup < 1.2 {
				t.Fatalf("straggler speedup %.2fx < 1.2x: %+v", r.Speedup, r)
			}
			if r.AsyncRounds >= r.BSPRounds {
				t.Fatalf("straggler async rounds %d not fewer than %d supersteps", r.AsyncRounds, r.BSPRounds)
			}
		}
	}
	if !sawStraggler {
		t.Fatalf("no straggler row produced")
	}
	out := FormatAsyncRows(rows)
	if !strings.Contains(out, "straggler") || !strings.Contains(out, "speedup") {
		t.Fatalf("FormatAsyncRows output malformed:\n%s", out)
	}
}
