package bench

import (
	"fmt"
	"strings"

	"grape/internal/core"
	"grape/internal/partition"
	"grape/internal/pie"
	"grape/internal/workload"
)

// NetRow is one point of the transport-overhead experiment: the same query
// evaluated over the same resident partition on the in-process transport
// and on a local-TCP multi-process-style cluster (worker loops over real
// loopback sockets). The ratio isolates what the wire costs — fragment
// shipping is excluded (paid once at session setup, reported separately),
// so the per-query overhead is serialization plus round trips.
type NetRow struct {
	Dataset string `json:"dataset"`
	Query   string `json:"query"`
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	Procs   int    `json:"procs"`

	InProcSeconds float64 `json:"inproc_sec"`
	TCPSeconds    float64 `json:"tcp_sec"`
	// Overhead is TCPSeconds / InProcSeconds: how much the wire costs
	// relative to shared memory for the same evaluation.
	Overhead float64 `json:"overhead"`

	Messages int64   `json:"messages"`
	CommMB   float64 `json:"comm_mb"`

	// SetupSeconds is the one-time cost of bringing the TCP cluster up:
	// handshakes plus shipping every fragment over the wire.
	SetupSeconds float64 `json:"tcp_setup_sec"`
}

// netQuery is one query of the experiment's workload.
type netQuery struct {
	name string
	q    core.Query
	prog core.Program
}

// NetOverhead measures the transport overhead: it partitions one graph,
// serves the same SSSP/CC/PageRank queries from an in-process session and
// from a local-TCP session over identical fragments, on both execution
// planes, and reports the per-query slowdown the wire introduces.
func NetOverhead(workers, procs int, scale workload.Scale, quick bool) ([]NetRow, error) {
	g, err := workload.Load(workload.Traffic, scale)
	if err != nil {
		return nil, err
	}
	if procs < 1 || procs > workers {
		return nil, fmt.Errorf("bench: %d procs for %d workers", procs, workers)
	}
	p := partition.Partition(g, workers, grapeStrategy)

	nSources := 4
	if quick {
		nSources = 1
	}
	queries := []netQuery{}
	for _, src := range workload.Sources(g, nSources, 23) {
		queries = append(queries, netQuery{name: QuerySSSP, q: src, prog: pie.SSSP{}})
	}
	queries = append(queries, netQuery{name: QueryCC, q: nil, prog: pie.CC{}})
	if !quick {
		queries = append(queries, netQuery{name: "pagerank", q: pie.DefaultPageRankQuery(), prog: pie.PageRank{}})
	}

	local, err := core.NewSessionPartitioned(p, core.Options{})
	if err != nil {
		return nil, err
	}
	defer local.Close()

	// Bring up the TCP cluster: worker loops in this process, but every
	// fragment, envelope and partial result crosses real loopback sockets.
	tcp, cleanup, setupDur, err := tcpSession(p, procs)
	if err != nil {
		return nil, err
	}
	setup := setupDur.Seconds()
	defer cleanup()

	var rows []NetRow
	for _, mode := range []core.ExecMode{core.ModeBSP, core.ModeAsync} {
		perQuery := map[string]*NetRow{}
		order := []string{}
		for _, nq := range queries {
			inRes, err := local.RunMode(nq.q, nq.prog, mode)
			if err != nil {
				return nil, fmt.Errorf("bench: in-process %s (%v): %w", nq.name, mode, err)
			}
			tcpRes, err := tcp.RunMode(nq.q, nq.prog, mode)
			if err != nil {
				return nil, fmt.Errorf("bench: tcp %s (%v): %w", nq.name, mode, err)
			}
			row := perQuery[nq.name]
			if row == nil {
				row = &NetRow{
					Dataset: workload.Traffic, Query: nq.name, Mode: mode.String(),
					Workers: workers, Procs: procs, SetupSeconds: setup,
				}
				perQuery[nq.name] = row
				order = append(order, nq.name)
			}
			row.InProcSeconds += inRes.Stats.Elapsed.Seconds()
			row.TCPSeconds += tcpRes.Stats.Elapsed.Seconds()
			row.Messages += tcpRes.Stats.MessagesSent
			row.CommMB += float64(tcpRes.Stats.BytesSent) / (1 << 20)
		}
		for _, name := range order {
			row := perQuery[name]
			row.Overhead = safeRatio(row.TCPSeconds, row.InProcSeconds)
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

// FormatNetRows renders the experiment as a text table.
func FormatNetRows(rows []NetRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nTransport overhead: in-process vs local TCP (same partition)\n")
	fmt.Fprintf(&b, "%-10s %-10s %-6s %6s %6s %12s %12s %9s %10s %9s\n",
		"dataset", "query", "mode", "n", "procs", "inproc(s)", "tcp(s)", "overhead", "messages", "comm(MB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-10s %-6s %6d %6d %12.4f %12.4f %8.2fx %10d %9.2f\n",
			r.Dataset, r.Query, r.Mode, r.Workers, r.Procs,
			r.InProcSeconds, r.TCPSeconds, r.Overhead, r.Messages, r.CommMB)
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "tcp cluster setup (handshake + fragment shipping): %.4fs, paid once per session\n",
			rows[0].SetupSeconds)
	}
	return b.String()
}
