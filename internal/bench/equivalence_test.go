package bench

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/partition"
	"grape/internal/pie"
)

// randomEquivGraph builds a random weighted graph: a few dense clusters with
// sparse bridges, so every plane has real cross-fragment traffic to combine
// and compress, plus isolated vertices to exercise the +Inf/singleton paths.
func randomEquivGraph(rng *rand.Rand, directed bool) *graph.Graph {
	b := graph.NewBuilder(directed)
	n := 60 + rng.Intn(40)
	for v := 0; v < n; v++ {
		b.AddVertex(graph.VertexID(v*3), "") // sparse external IDs
	}
	edges := n * 3
	for i := 0; i < edges; i++ {
		u := rng.Intn(n)
		var v int
		if rng.Intn(4) == 0 {
			v = rng.Intn(n) // long-range bridge
		} else {
			v = (u + 1 + rng.Intn(5)) % n // local cluster edge
		}
		if u == v {
			continue
		}
		w := 0.5 + rng.Float64()*9.5
		b.AddEdge(graph.VertexID(u*3), graph.VertexID(v*3), w, "")
	}
	return b.Build()
}

// planeAnswers evaluates q on every plane the engine offers over identical
// fragments: the in-process session (BSP and async) and a local-TCP session
// (BSP and async), each with the sequential sweeps and with 4-wide parallel
// sweep pools, with message combining and the v3 pooled/compressed framing
// active everywhere. Keys identify the plane in failure messages.
func planeAnswers(t *testing.T, p *partition.Partitioned, q core.Query, prog core.Program, procs int) map[string]any {
	t.Helper()
	out := make(map[string]any)
	for _, width := range []int{1, 4} {
		opts := core.Options{Parallelism: width}
		suffix := ""
		if width > 1 {
			suffix = fmt.Sprintf("/par%d", width)
		}
		local, err := core.NewSessionPartitioned(p, opts)
		if err != nil {
			t.Fatalf("local session: %v", err)
		}
		t.Cleanup(func() { local.Close() })
		tcp, cleanup, _, err := tcpSessionOpts(p, procs, opts)
		if err != nil {
			t.Fatalf("tcp session: %v", err)
		}
		t.Cleanup(cleanup)
		for _, mode := range []core.ExecMode{core.ModeBSP, core.ModeAsync} {
			inRes, err := local.RunMode(q, prog, mode)
			if err != nil {
				t.Fatalf("in-process %v%s: %v", mode, suffix, err)
			}
			out["inproc/"+mode.String()+suffix] = inRes.Output
			tcpRes, err := tcp.RunMode(q, prog, mode)
			if err != nil {
				t.Fatalf("tcp %v%s: %v", mode, suffix, err)
			}
			out["tcp/"+mode.String()+suffix] = tcpRes.Output
		}
	}
	return out
}

// TestCrossPlaneEquivalenceExact: SSSP distances and CC labels must be
// byte-identical on every plane — min-monotone programs admit no tolerance.
// Randomized over graph shapes, directedness and partition strategies so the
// combining and framing layers see varied traffic.
func TestCrossPlaneEquivalenceExact(t *testing.T) {
	if testing.Short() {
		t.Skip("brings up TCP clusters")
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := randomEquivGraph(rng, seed%2 == 0)
			workers := 3 + rng.Intn(3)
			p := partition.Partition(g, workers, partition.Hash{})
			procs := 2 + rng.Intn(workers-1)
			if procs > workers {
				procs = workers
			}

			source := g.VertexAt(rng.Intn(g.NumVertices()))
			sssp := planeAnswers(t, p, source, pie.SSSP{}, procs)
			ref := sssp["inproc/bsp"].(map[graph.VertexID]float64)
			if len(ref) != g.NumVertices() {
				t.Fatalf("reference SSSP answer covers %d of %d vertices", len(ref), g.NumVertices())
			}
			for plane, ans := range sssp {
				got := ans.(map[graph.VertexID]float64)
				if len(got) != len(ref) {
					t.Fatalf("%s: %d distances, reference has %d", plane, len(got), len(ref))
				}
				for v, want := range ref {
					if got[v] != want && !(math.IsInf(got[v], 1) && math.IsInf(want, 1)) {
						t.Fatalf("%s: dist(%d) = %v, reference %v", plane, v, got[v], want)
					}
				}
			}

			cc := planeAnswers(t, p, nil, pie.CC{}, procs)
			refCC := cc["inproc/bsp"].(map[graph.VertexID]graph.VertexID)
			if len(refCC) != g.NumVertices() {
				t.Fatalf("reference CC answer covers %d of %d vertices", len(refCC), g.NumVertices())
			}
			for plane, ans := range cc {
				got := ans.(map[graph.VertexID]graph.VertexID)
				if len(got) != len(refCC) {
					t.Fatalf("%s: %d labels, reference has %d", plane, len(got), len(refCC))
				}
				for v, want := range refCC {
					if got[v] != want {
						t.Fatalf("%s: cid(%d) = %d, reference %d", plane, v, got[v], want)
					}
				}
			}
		})
	}
}

// TestCrossPlaneEquivalencePageRank: PageRank terminates on a tolerance, so
// planes agree only up to it — but tightly: the per-vertex spread across
// planes must stay within a few tolerances, not drift.
func TestCrossPlaneEquivalencePageRank(t *testing.T) {
	if testing.Short() {
		t.Skip("brings up TCP clusters")
	}
	rng := rand.New(rand.NewSource(11))
	g := randomEquivGraph(rng, true)
	workers := 4
	p := partition.Partition(g, workers, partition.Hash{})
	// Drive the fixpoint to real convergence: the default query stops at a
	// loose tolerance/round cap, which leaves a plane-dependent residual.
	q := pie.PageRankQuery{Damping: 0.85, Tolerance: 1e-9, MaxRounds: 500}

	answers := planeAnswers(t, p, q, pie.PageRank{}, 2)
	ref := answers["inproc/bsp"].(map[graph.VertexID]float64)
	if len(ref) != g.NumVertices() {
		t.Fatalf("reference PageRank answer covers %d of %d vertices", len(ref), g.NumVertices())
	}
	// The fixpoint is solved to q.Tolerance in L1 per fragment per round;
	// the coupled global error is amplified by 1/(1-damping) and the
	// exchange rounds, so allow a generous multiple — still twelve orders
	// of magnitude tighter than the answer scale.
	budget := 1e4 * q.Tolerance
	for plane, ans := range answers {
		got := ans.(map[graph.VertexID]float64)
		if len(got) != len(ref) {
			t.Fatalf("%s: %d ranks, reference has %d", plane, len(got), len(ref))
		}
		for v, want := range ref {
			if d := math.Abs(got[v] - want); d > budget {
				t.Fatalf("%s: rank(%d) = %v, reference %v (|Δ|=%g > %g)", plane, v, got[v], want, d, budget)
			}
		}
	}
}
