package bench

import (
	"fmt"
	"math/rand"
	"testing"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/par"
	"grape/internal/partition"
	"grape/internal/pie"
	"grape/internal/workload"
)

// TestParallelScalingQuick smoke-tests the -exp par harness at tiny scale:
// every row must carry a positive time and every parallel row must report a
// byte-identical answer.
func TestParallelScalingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("brings up TCP clusters")
	}
	rep, err := ParallelScaling(4, 2, 2, workload.ScaleTiny, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scaling) == 0 {
		t.Fatal("no scaling rows")
	}
	for _, r := range rep.Scaling {
		if r.Seconds <= 0 {
			t.Errorf("%s/%s/%s width=%d: non-positive time %v", r.Dataset, r.Query, r.Transport, r.Width, r.Seconds)
		}
		if !r.Identical {
			t.Errorf("%s/%s/%s width=%d: answer not byte-identical (max|Δ|=%g)",
				r.Dataset, r.Query, r.Transport, r.Width, r.MaxDiff)
		}
	}
	if len(rep.NetInc) == 0 {
		t.Fatal("no netinc rows")
	}
}

// chunkGraph builds a connected weighted graph with exactly n vertices so
// fragment sizes can be pinned around the pool's chunk size.
func chunkGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(true)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VertexID(i), "")
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 1+rng.Float64(), "")
	}
	for i := 0; i < n; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), 0.5+rng.Float64()*5, "")
	}
	return b.Build()
}

// TestParallelChunkBoundariesEngine pins the engine-level answers at
// fragment sizes that straddle the sweep pool's chunking — including the
// degenerate fragments a 3-way partition of a tiny graph produces — against
// the sequential session over the same partition.
func TestParallelChunkBoundariesEngine(t *testing.T) {
	for _, n := range []int{1, 2, par.ChunkSize - 1, par.ChunkSize + 1} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			g := chunkGraph(n, int64(n))
			p := partition.Partition(g, 3, partition.Hash{})
			seqSess, err := core.NewSessionPartitioned(p, core.Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer seqSess.Close()
			parSess, err := core.NewSessionPartitioned(p, core.Options{Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer parSess.Close()

			source := g.VertexAt(0)
			for _, pq := range []parQuery{
				{name: QuerySSSP, q: source, prog: pie.SSSP{}},
				{name: QueryCC, q: nil, prog: pie.CC{}},
				{name: "pagerank", q: pie.DefaultPageRankQuery(), prog: pie.PageRank{}},
			} {
				want, err := seqSess.Run(pq.q, pq.prog)
				if err != nil {
					t.Fatalf("sequential %s: %v", pq.name, err)
				}
				got, err := parSess.Run(pq.q, pq.prog)
				if err != nil {
					t.Fatalf("parallel %s: %v", pq.name, err)
				}
				same, diff := compareAnswers(want.Output, got.Output)
				if !same {
					t.Fatalf("%s: parallel answer differs from sequential (max|Δ|=%g)", pq.name, diff)
				}
			}
		})
	}
}
