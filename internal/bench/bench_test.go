package bench

import (
	"strings"
	"testing"

	"grape/internal/workload"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	rows, err := Table1(4, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Systems) {
		t.Fatalf("Table1 produced %d rows, want %d", len(rows), len(Systems))
	}
	byName := map[System]Row{}
	for _, r := range rows {
		byName[r.System] = r
		if r.Seconds <= 0 {
			t.Fatalf("%s: no elapsed time recorded", r.System)
		}
	}
	// The paper's Table 1 shape: GRAPE takes far fewer supersteps than the
	// vertex-centric systems on a road network and ships far less data.
	if byName[GRAPE].Supersteps >= byName[Pregel].Supersteps {
		t.Fatalf("GRAPE supersteps (%d) should be far below Pregel's (%d)",
			byName[GRAPE].Supersteps, byName[Pregel].Supersteps)
	}
	if byName[GRAPE].CommMB >= byName[Pregel].CommMB {
		t.Fatalf("GRAPE comm (%v MB) should be below Pregel's (%v MB)",
			byName[GRAPE].CommMB, byName[Pregel].CommMB)
	}
	if byName[GRAPE].CommMB >= byName[Blogel].CommMB {
		t.Fatalf("GRAPE comm (%v MB) should be below Blogel's (%v MB)",
			byName[GRAPE].CommMB, byName[Blogel].CommMB)
	}
	out := FormatRows("Table 1", rows)
	if !strings.Contains(out, "GRAPE") || !strings.Contains(out, "Blogel") {
		t.Fatalf("FormatRows output missing systems:\n%s", out)
	}
}

func TestFig6AllQueriesRun(t *testing.T) {
	cases := []struct {
		query   string
		dataset string
	}{
		{QuerySSSP, workload.Traffic},
		{QueryCC, workload.DBpedia},
		{QuerySim, workload.LiveJournal},
		{QuerySubIso, workload.DBpedia},
		{QueryCF, workload.MovieLens},
	}
	for _, c := range cases {
		rows, err := Fig6(c.query, c.dataset, []int{2, 4}, workload.ScaleTiny)
		if err != nil {
			t.Fatalf("Fig6 %s/%s: %v", c.query, c.dataset, err)
		}
		if len(rows) != 2*len(Systems) {
			t.Fatalf("Fig6 %s/%s: %d rows, want %d", c.query, c.dataset, len(rows), 2*len(Systems))
		}
		for _, r := range rows {
			if r.Supersteps == 0 || r.Seconds <= 0 {
				t.Fatalf("Fig6 %s/%s: empty measurement %+v", c.query, c.dataset, r)
			}
		}
	}
}

func TestFig6RejectsUnknownInputs(t *testing.T) {
	if _, err := Fig6("nosuch", workload.Traffic, []int{2}, workload.ScaleTiny); err == nil {
		t.Fatalf("unknown query must fail")
	}
	if _, err := Fig6(QuerySSSP, "nosuch", []int{2}, workload.ScaleTiny); err == nil {
		t.Fatalf("unknown dataset must fail")
	}
}

func TestFig6CF(t *testing.T) {
	rows, err := Fig6CF([]int{2}, 0.5, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Systems) {
		t.Fatalf("Fig6CF rows = %d", len(rows))
	}
	if !strings.Contains(rows[0].Dataset, "50%") {
		t.Fatalf("training fraction missing from dataset label: %q", rows[0].Dataset)
	}
}

func TestFig7aIncEvalHelps(t *testing.T) {
	rows, err := Fig7a([]int{2, 4}, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	// GRAPE with IncEval must not take more supersteps than GRAPE_NI and
	// should not ship more data.
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[string(r.System)+":"+itoa(r.Workers)] = r
	}
	for _, n := range []int{2, 4} {
		g := byKey["GRAPE:"+itoa(n)]
		ni := byKey["GRAPE_NI:"+itoa(n)]
		if g.Seconds <= 0 || ni.Seconds <= 0 {
			t.Fatalf("missing measurements for n=%d", n)
		}
		if g.CommMB > ni.CommMB*1.5+0.001 {
			t.Fatalf("n=%d: GRAPE ships substantially more than GRAPE_NI: %v vs %v MB", n, g.CommMB, ni.CommMB)
		}
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestFig7bSpeedupsComputed(t *testing.T) {
	rows, err := Fig7b([]int{2}, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("Fig7b rows = %d", len(rows))
	}
	if rows[0].SequentialSpeedup <= 0 || rows[0].GRAPESpeedup <= 0 {
		t.Fatalf("speedups not computed: %+v", rows[0])
	}
	out := FormatSpeedups(rows)
	if !strings.Contains(out, "GRAPE speedup") {
		t.Fatalf("FormatSpeedups output malformed:\n%s", out)
	}
}

func TestFig9Scalability(t *testing.T) {
	rows, err := Fig9(QueryCC, 4, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*len(Systems) {
		t.Fatalf("Fig9 rows = %d, want %d", len(rows), 5*len(Systems))
	}
	if _, err := Fig9(QueryCF, 4, workload.ScaleTiny); err == nil {
		t.Fatalf("Fig9 must reject CF (the paper omits it on synthetic graphs)")
	}
}

func TestAblations(t *testing.T) {
	rows, err := AblationMessageGrouping(4, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("grouping ablation rows = %d", len(rows))
	}
	if rows[0].Messages > rows[1].Messages {
		t.Fatalf("grouping should not send more messages than no-grouping: %d vs %d",
			rows[0].Messages, rows[1].Messages)
	}
	prows, err := AblationPartitioner(4, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(prows) != 3 {
		t.Fatalf("partitioner ablation rows = %d", len(prows))
	}
}

func TestSessionAmortization(t *testing.T) {
	c, err := SessionAmortization(4, 10, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if c.Queries != 10 || c.Workers != 4 {
		t.Fatalf("comparison header wrong: %+v", c)
	}
	if c.SessionTotalSec <= 0 || c.PerQueryTotalSec <= 0 || c.Speedup <= 0 {
		t.Fatalf("empty measurement: %+v", c)
	}
	if c.SessionQPS <= 0 || c.SessionAmortizedMS <= 0 {
		t.Fatalf("derived metrics missing: %+v", c)
	}
	out := FormatSessionComparison(c)
	if !strings.Contains(out, "partition-per-query") || !strings.Contains(out, "speedup") {
		t.Fatalf("FormatSessionComparison output malformed:\n%s", out)
	}
}

func TestVerifyAnswers(t *testing.T) {
	if err := VerifyAnswers(workload.ScaleTiny); err != nil {
		t.Fatal(err)
	}
}

func TestRunnersRejectUnknownSystem(t *testing.T) {
	g, _ := workload.Load(workload.DBpedia, workload.ScaleTiny)
	if _, err := RunSSSP(System("bogus"), g, g.VertexAt(0), 2); err == nil {
		t.Fatalf("unknown system must fail")
	}
	if _, err := RunCC(System("bogus"), g, 2); err == nil {
		t.Fatalf("unknown system must fail")
	}
	if _, err := RunSim(System("bogus"), g, g, 2, false); err == nil {
		t.Fatalf("unknown system must fail")
	}
	if _, err := RunSubIso(System("bogus"), g, g, 2); err == nil {
		t.Fatalf("unknown system must fail")
	}
	if _, err := RunCF(System("bogus"), g, 0.9, 2); err == nil {
		t.Fatalf("unknown system must fail")
	}
}
