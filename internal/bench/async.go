package bench

import (
	"fmt"
	"time"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/partition"
	"grape/internal/pie"
	"grape/internal/workload"
)

// AsyncRow is one point of the BSP-vs-async experiment: the same query
// evaluated on both execution planes over the same resident partition, with
// wall-clock, communication, depth (supersteps vs async rounds) and
// per-worker idle time side by side.
type AsyncRow struct {
	Dataset  string `json:"dataset"`
	Workload string `json:"workload"` // balanced, skewed or straggler
	Query    string `json:"query"`
	Workers  int    `json:"workers"`

	BSPSeconds   float64 `json:"bsp_sec"`
	AsyncSeconds float64 `json:"async_sec"`
	// Speedup is BSPSeconds / AsyncSeconds.
	Speedup float64 `json:"speedup"`

	BSPMessages   int64 `json:"bsp_messages"`
	AsyncMessages int64 `json:"async_messages"`
	BSPBytes      int64 `json:"bsp_bytes"`
	AsyncBytes    int64 `json:"async_bytes"`

	// BSPRounds is the superstep count; AsyncRounds the deepest per-worker
	// round count of the async run — the comparable depth metric.
	BSPRounds   int `json:"bsp_rounds"`
	AsyncRounds int `json:"async_rounds"`

	BSPIdleSec   float64 `json:"bsp_idle_sec"`
	AsyncIdleSec float64 `json:"async_idle_sec"`
}

// slowFragment wraps an async-capable PIE program with an artificial
// per-round delay on one fragment — the straggler of the experiment (an
// overloaded worker, an oversized fragment). It forwards the wrapped
// program's async capability.
type slowFragment struct {
	core.Program
	frag  int
	delay time.Duration
}

func (s slowFragment) PEval(ctx *core.Context) error {
	if ctx.Worker == s.frag {
		time.Sleep(s.delay)
	}
	return s.Program.PEval(ctx)
}

func (s slowFragment) IncEval(ctx *core.Context, msgs []mpi.Update) error {
	if ctx.Worker == s.frag {
		time.Sleep(s.delay)
	}
	return s.Program.IncEval(ctx, msgs)
}

func (s slowFragment) AsyncSafe() bool { return core.SupportsAsync(s.Program) }

// skewedPartition assigns roughly `share` (in percent) of the vertices to
// fragment 0 and spreads the rest over the remaining fragments — the
// skewed-partition regime where BSP runs at the pace of the big fragment.
func skewedPartition(g *graph.Graph, m, share int) *partition.Partitioned {
	assign := make([]int, g.NumVertices())
	for i := range assign {
		h := uint64(g.VertexAt(i)) * 0x9E3779B97F4A7C15
		if int(h%100) < share || m == 1 {
			assign[i] = 0
		} else {
			assign[i] = 1 + int((h>>32)%uint64(m-1))
		}
	}
	return partition.Build(g, assign, m, fmt.Sprintf("skew%d", share))
}

// runModes evaluates the same query on both planes over one resident
// session and folds the two Stats into a row.
func runModes(row AsyncRow, p *partition.Partitioned, q core.Query, prog core.Program) (AsyncRow, error) {
	s, err := core.NewSessionPartitioned(p, core.Options{})
	if err != nil {
		return row, err
	}
	defer s.Close()

	bsp, err := s.RunMode(q, prog, core.ModeBSP)
	if err != nil {
		return row, fmt.Errorf("bench: bsp %s: %w", row.Workload, err)
	}
	async, err := s.RunMode(q, prog, core.ModeAsync)
	if err != nil {
		return row, fmt.Errorf("bench: async %s: %w", row.Workload, err)
	}

	bs, as := bsp.Stats, async.Stats
	row.BSPSeconds += bs.Elapsed.Seconds()
	row.AsyncSeconds += as.Elapsed.Seconds()
	row.BSPMessages += bs.MessagesSent
	row.AsyncMessages += as.MessagesSent
	row.BSPBytes += bs.BytesSent
	row.AsyncBytes += as.BytesSent
	row.BSPRounds += bs.Rounds
	row.AsyncRounds += as.Rounds
	row.BSPIdleSec += bs.TotalIdle().Seconds()
	row.AsyncIdleSec += as.TotalIdle().Seconds()
	return row, nil
}

// AsyncComparison runs the BSP-vs-async experiment across worker counts on
// three workloads: the traffic surrogate under a balanced multilevel
// partition, the same graph under a deliberately skewed partition (fragment
// 0 holds most of the vertices), and the synthetic fan-in straggler workload
// with an artificially slow fragment. quick shrinks everything for CI smoke
// runs.
func AsyncComparison(workerCounts []int, scale workload.Scale, quick bool) ([]AsyncRow, error) {
	queries := queriesPerClass(scale)
	chain, delay := 48, 2*time.Millisecond
	if quick {
		queries, chain, delay = 1, 24, time.Millisecond
	}

	g, err := workload.Load(workload.Traffic, scale)
	if err != nil {
		return nil, err
	}
	srcs := workload.Sources(g, queries, 23)

	var rows []AsyncRow
	for _, n := range workerCounts {
		if n < 2 {
			continue // one fragment has no messages, hence no plane difference
		}

		// Balanced: the partitioner's best effort.
		balanced := partition.Partition(g, n, grapeStrategy)
		row := AsyncRow{Dataset: workload.Traffic, Workload: "balanced", Query: QuerySSSP, Workers: n}
		for _, src := range srcs {
			if row, err = runModes(row, balanced, src, pie.SSSP{}); err != nil {
				return nil, err
			}
		}
		rows = append(rows, finishRow(row, len(srcs)))

		// Skewed: fragment 0 owns ~70% of the graph.
		skewed := skewedPartition(g, n, 70)
		row = AsyncRow{Dataset: workload.Traffic, Workload: "skewed", Query: QuerySSSP, Workers: n}
		for _, src := range srcs {
			if row, err = runModes(row, skewed, src, pie.SSSP{}); err != nil {
				return nil, err
			}
		}
		rows = append(rows, finishRow(row, len(srcs)))

		// Straggler: one artificially slow fragment fed by a fan-in chain
		// (workload.Straggler needs at least two fast fragments).
		if n < 3 {
			continue
		}
		sp, src := workload.Straggler(chain, n)
		row = AsyncRow{Dataset: "straggler", Workload: "straggler", Query: QuerySSSP, Workers: n}
		prog := slowFragment{Program: pie.SSSP{}, frag: 0, delay: delay}
		if row, err = runModes(row, sp, src, prog); err != nil {
			return nil, err
		}
		rows = append(rows, finishRow(row, 1))
	}
	return rows, nil
}

// finishRow averages accumulated measurements over q queries and derives the
// speedup.
func finishRow(row AsyncRow, q int) AsyncRow {
	if q > 1 {
		f := float64(q)
		row.BSPSeconds /= f
		row.AsyncSeconds /= f
		row.BSPIdleSec /= f
		row.AsyncIdleSec /= f
		row.BSPMessages /= int64(q)
		row.AsyncMessages /= int64(q)
		row.BSPBytes /= int64(q)
		row.AsyncBytes /= int64(q)
		row.BSPRounds = int(float64(row.BSPRounds)/f + 0.5)
		row.AsyncRounds = int(float64(row.AsyncRounds)/f + 0.5)
	}
	row.Speedup = safeRatio(row.BSPSeconds, row.AsyncSeconds)
	return row
}

// FormatAsyncRows renders the experiment as a text table.
func FormatAsyncRows(rows []AsyncRow) string {
	out := "== Execution planes: BSP vs adaptive async (same queries, same partitions) ==\n"
	out += fmt.Sprintf("%-10s %3s  %11s %11s %8s  %7s %7s  %9s %9s  %9s %9s\n",
		"workload", "n", "bsp(ms)", "async(ms)", "speedup",
		"b.steps", "a.rnds", "b.msgs", "a.msgs", "b.idle", "a.idle")
	for _, r := range rows {
		out += fmt.Sprintf("%-10s %3d  %11.3f %11.3f %7.2fx  %7d %7d  %9d %9d  %8.1fms %8.1fms\n",
			r.Workload, r.Workers, r.BSPSeconds*1000, r.AsyncSeconds*1000, r.Speedup,
			r.BSPRounds, r.AsyncRounds, r.BSPMessages, r.AsyncMessages,
			r.BSPIdleSec*1000, r.AsyncIdleSec*1000)
	}
	return out
}
