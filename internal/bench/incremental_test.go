package bench

import (
	"testing"

	"grape/internal/workload"
)

func TestIncrementalMaintenance(t *testing.T) {
	rows, err := IncrementalMaintenance(4, workload.ScaleTiny, []int{1, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Batches != 8 || r.Workers != 4 {
			t.Fatalf("row shape: %+v", r)
		}
		if r.MaintainTotalSec <= 0 || r.RecomputeTotalSec <= 0 || r.Speedup <= 0 {
			t.Fatalf("timings not populated: %+v", r)
		}
		// Monotone streams must be maintained purely incrementally: two
		// views, one round each per batch.
		if r.IncrementalRounds != 16 || r.RecomputedRounds != 0 {
			t.Fatalf("maintenance mix: %+v", r)
		}
	}
	if out := FormatIncrementalRows(rows); len(out) == 0 {
		t.Fatal("empty table")
	}
}
