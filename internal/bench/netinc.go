package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/metrics"
	grapenet "grape/internal/mpi/net"
	"grape/internal/partition"
	"grape/internal/pie"
	"grape/internal/workload"
)

// NetIncRow is one point of the distributed-maintenance experiment: the same
// monotone update stream absorbed three ways over identical fragments —
// an in-process session maintaining SSSP+CC views (the PR 2 baseline), a
// local-TCP session maintaining the same views on its worker processes
// (fragment deltas, EvalDelta seeding and the IncEval fixpoint all cross the
// wire), and a local-TCP session that re-runs both queries from scratch
// after every batch (what a non-dynamic distributed engine would have to
// do). WireOverhead isolates what shipping deltas costs; MaintainSpeedup is
// the case for doing it at all.
type NetIncRow struct {
	Dataset   string `json:"dataset"`
	Workers   int    `json:"workers"`
	Procs     int    `json:"procs"`
	Batches   int    `json:"batches"`
	BatchSize int    `json:"batch_size"`

	InProcMaintainSec float64 `json:"inproc_maintain_sec"`
	TCPMaintainSec    float64 `json:"tcp_maintain_sec"`
	// WireOverhead is TCPMaintainSec / InProcMaintainSec: the cost of
	// shipping update deltas and running maintenance rounds over TCP
	// relative to shared memory.
	WireOverhead float64 `json:"wire_overhead"`

	TCPRecomputeSec float64 `json:"tcp_recompute_sec"`
	// MaintainSpeedup is TCPRecomputeSec / TCPMaintainSec: incremental view
	// maintenance over the wire versus from-scratch re-evaluation over the
	// wire.
	MaintainSpeedup float64 `json:"maintain_speedup"`

	// IncrementalRounds / RecomputedRounds report how the TCP session's two
	// views were actually maintained (monotone streams should be
	// all-incremental).
	IncrementalRounds int64 `json:"incremental_rounds"`
	RecomputedRounds  int64 `json:"recomputed_rounds"`
}

// tcpSession brings up a local-TCP distributed session over p: worker loops
// run in this process, but every fragment, update delta, envelope and
// partial result crosses real loopback sockets. The returned cleanup closes
// the session and waits for the worker loops to exit.
func tcpSession(p *partition.Partitioned, procs int) (*core.Session, func(), time.Duration, error) {
	return tcpSessionOpts(p, procs, core.Options{})
}

// tcpSessionOpts is tcpSession with explicit engine options, so experiments
// can compare configurations (e.g. instrumented vs Options.NoMetrics) over
// the same transport. Parallelism is a worker-process setting, not a wire
// one, so it is installed on each hosted WorkerHost directly — mirroring
// what grape-worker's -parallelism flag does in a real cluster.
func tcpSessionOpts(p *partition.Partitioned, procs int, opts core.Options) (*core.Session, func(), time.Duration, error) {
	start := time.Now()
	ln, err := grapenet.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, 0, err
	}
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			host := core.NewWorkerHost(pie.ByName)
			host.SetParallelism(opts.Parallelism)
			_ = grapenet.RunWorker(ln.Addr(), host, grapenet.WorkerOptions{DialTimeout: 10 * time.Second})
		}()
	}
	cl, err := ln.Serve(p, procs, 30*time.Second)
	if err != nil {
		return nil, nil, 0, err
	}
	peers := make([]core.RemotePeer, len(p.Fragments))
	for i := range peers {
		peers[i] = cl.Peer(i)
	}
	s, err := core.NewSessionRemote(p, opts, cl, peers)
	if err != nil {
		cl.Close()
		wg.Wait()
		return nil, nil, 0, err
	}
	return s, func() { s.Close(); wg.Wait() }, time.Since(start), nil
}

// materializeViews registers SSSP+CC views on s and returns them.
func materializeViews(s *core.Session, source graph.VertexID) (*core.View, *core.View, error) {
	sssp, err := s.Materialize(source, pie.SSSP{})
	if err != nil {
		return nil, nil, err
	}
	cc, err := s.Materialize(nil, pie.CC{})
	if err != nil {
		return nil, nil, err
	}
	return sssp, cc, nil
}

// applyStream absorbs the stream into s and returns the total wall time.
func applyStream(s *core.Session, stream []workload.TimedBatch) (float64, error) {
	t := metrics.StartTimer()
	for _, tb := range stream {
		if _, err := s.ApplyUpdates(tb.Ops); err != nil {
			return 0, fmt.Errorf("batch %d: %w", tb.Seq, err)
		}
	}
	return t.Stop().Seconds(), nil
}

// NetIncMaintenance runs the distributed-maintenance experiment (grape-bench
// -exp netinc): for each batch size, a monotone update stream is absorbed by
// the three configurations described on NetIncRow.
func NetIncMaintenance(workers, procs int, scale workload.Scale, quick bool) ([]NetIncRow, error) {
	if procs < 1 || procs > workers {
		return nil, fmt.Errorf("bench: %d procs for %d workers", procs, workers)
	}
	batches, batchSizes := 40, []int{2, 10}
	if quick {
		batches, batchSizes = 8, []int{4}
	}

	var rows []NetIncRow
	for _, bs := range batchSizes {
		g, err := workload.Load(workload.Traffic, scale)
		if err != nil {
			return nil, err
		}
		source := workload.Sources(g, 1, 7)[0]
		stream := workload.UpdateStream(g, workload.MonotoneStreamConfig(41+int64(bs), batches, bs))
		opts := core.Options{Workers: workers, Strategy: grapeStrategy}
		row := NetIncRow{Dataset: workload.Traffic, Workers: workers, Procs: procs,
			Batches: batches, BatchSize: bs}

		// In-process maintained baseline.
		inproc, err := core.NewSession(g, opts)
		if err != nil {
			return nil, err
		}
		if _, _, err := materializeViews(inproc, source); err != nil {
			inproc.Close()
			return nil, err
		}
		if row.InProcMaintainSec, err = applyStream(inproc, stream); err != nil {
			inproc.Close()
			return nil, fmt.Errorf("bench: in-process maintain: %w", err)
		}
		inproc.Close()

		// TCP maintained: same partition shape, views resident on workers.
		p := partition.Partition(g, workers, grapeStrategy)
		tcp, cleanup, _, err := tcpSession(p, procs)
		if err != nil {
			return nil, err
		}
		ssspView, ccView, err := materializeViews(tcp, source)
		if err != nil {
			cleanup()
			return nil, err
		}
		if row.TCPMaintainSec, err = applyStream(tcp, stream); err != nil {
			cleanup()
			return nil, fmt.Errorf("bench: tcp maintain: %w", err)
		}
		ss, cs := ssspView.Stats(), ccView.Stats()
		row.IncrementalRounds = ss.Incremental + cs.Incremental
		row.RecomputedRounds = ss.Recomputed + cs.Recomputed
		cleanup()

		// TCP recompute: no views; both answers re-evaluated after every
		// batch, over the wire.
		p2 := partition.Partition(g, workers, grapeStrategy)
		tcp2, cleanup2, _, err := tcpSession(p2, procs)
		if err != nil {
			return nil, err
		}
		rt := metrics.StartTimer()
		for _, tb := range stream {
			if _, err := tcp2.ApplyUpdates(tb.Ops); err != nil {
				cleanup2()
				return nil, fmt.Errorf("bench: tcp recompute batch %d: %w", tb.Seq, err)
			}
			if _, err := tcp2.Run(source, pie.SSSP{}); err != nil {
				cleanup2()
				return nil, fmt.Errorf("bench: tcp recompute SSSP: %w", err)
			}
			if _, err := tcp2.Run(nil, pie.CC{}); err != nil {
				cleanup2()
				return nil, fmt.Errorf("bench: tcp recompute CC: %w", err)
			}
		}
		row.TCPRecomputeSec = rt.Stop().Seconds()
		cleanup2()

		row.WireOverhead = safeRatio(row.TCPMaintainSec, row.InProcMaintainSec)
		row.MaintainSpeedup = safeRatio(row.TCPRecomputeSec, row.TCPMaintainSec)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatNetIncRows renders the experiment as a text table.
func FormatNetIncRows(rows []NetIncRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nDistributed dynamic graphs: view maintenance over TCP (SSSP+CC views)\n")
	fmt.Fprintf(&b, "%-10s %3s %6s %8s %6s %12s %12s %9s %13s %9s %6s %6s\n",
		"dataset", "n", "procs", "batches", "bsize", "inproc(s)", "tcp(s)", "wire", "tcp-scratch", "speedup", "inc", "rec")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %3d %6d %8d %6d %12.4f %12.4f %8.2fx %13.4f %8.2fx %6d %6d\n",
			r.Dataset, r.Workers, r.Procs, r.Batches, r.BatchSize,
			r.InProcMaintainSec, r.TCPMaintainSec, r.WireOverhead,
			r.TCPRecomputeSec, r.MaintainSpeedup, r.IncrementalRounds, r.RecomputedRounds)
	}
	return b.String()
}
