package bench

import (
	"fmt"
	"strings"

	"grape/internal/core"
	"grape/internal/partition"
	"grape/internal/pie"
	"grape/internal/workload"
)

// ObsRow is one point of the instrumentation-overhead experiment: the same
// query served from two sessions over identical fragments, one with the
// observability plane live (metric counters and the per-query trace
// recorder) and one with core.Options.NoMetrics set. Overhead is the price
// of knowing what the engine is doing; the acceptance bar is under 2%.
type ObsRow struct {
	Dataset string `json:"dataset"`
	Query   string `json:"query"`
	Plane   string `json:"plane"` // "inproc" or "tcp"
	Workers int    `json:"workers"`
	Procs   int    `json:"procs"`
	Rounds  int    `json:"rounds"`

	// InstrumentedSec and BaselineSec are best-of-Rounds wall times for a
	// batch of back-to-back evaluations of the query with observability on
	// and off; batching amortizes timer granularity and best-of damps
	// scheduler noise the way testing.B's minimum does.
	Batch           int     `json:"batch"`
	InstrumentedSec float64 `json:"instrumented_sec"`
	BaselineSec     float64 `json:"baseline_sec"`
	// Overhead is InstrumentedSec/BaselineSec - 1: the fractional cost of
	// the metric counters and trace spans (0.02 == 2%).
	Overhead float64 `json:"overhead"`

	// TraceSpans proves the instrumented run actually recorded a trace — an
	// overhead number for a disabled recorder would be vacuous.
	TraceSpans int `json:"trace_spans"`
}

// obsPlane is one transport under measurement: a factory producing a fresh
// session with the given options over the shared partition.
type obsPlane struct {
	name  string
	procs int
	open  func(opts core.Options) (*core.Session, func(), error)
}

// ObsOverhead measures what the observability plane costs: it partitions one
// graph, then serves the same SSSP/CC queries from instrumented and
// NoMetrics sessions — in-process and over local TCP — and reports the
// slowdown instrumentation introduces. Runs alternate between the two
// configurations round by round, so thermal and cache drift hit both sides
// equally.
func ObsOverhead(workers, procs int, scale workload.Scale, quick bool) ([]ObsRow, error) {
	g, err := workload.Load(workload.Traffic, scale)
	if err != nil {
		return nil, err
	}
	if procs < 1 || procs > workers {
		return nil, fmt.Errorf("bench: %d procs for %d workers", procs, workers)
	}
	p := partition.Partition(g, workers, grapeStrategy)

	rounds, batch := 5, 8
	if quick {
		rounds, batch = 2, 3
	}
	source := workload.Sources(g, 1, 23)[0]
	queries := []netQuery{
		{name: QuerySSSP, q: source, prog: pie.SSSP{}},
		{name: QueryCC, q: nil, prog: pie.CC{}},
	}

	planes := []obsPlane{
		{name: "inproc", procs: 1, open: func(opts core.Options) (*core.Session, func(), error) {
			s, err := core.NewSessionPartitioned(p, opts)
			if err != nil {
				return nil, nil, err
			}
			return s, func() { s.Close() }, nil
		}},
		{name: "tcp", procs: procs, open: func(opts core.Options) (*core.Session, func(), error) {
			s, cleanup, _, err := tcpSessionOpts(p, procs, opts)
			return s, cleanup, err
		}},
	}

	var rows []ObsRow
	for _, plane := range planes {
		instr, closeInstr, err := plane.open(core.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: %s instrumented session: %w", plane.name, err)
		}
		base, closeBase, err := plane.open(core.Options{NoMetrics: true})
		if err != nil {
			closeInstr()
			return nil, fmt.Errorf("bench: %s baseline session: %w", plane.name, err)
		}

		for _, nq := range queries {
			row := ObsRow{
				Dataset: workload.Traffic, Query: nq.name, Plane: plane.name,
				Workers: workers, Procs: plane.procs, Rounds: rounds, Batch: batch,
			}
			// One timed measurement is a batch of back-to-back evaluations;
			// each round measures both configurations, alternating which one
			// goes first so cache and scheduler drift hit both sides equally.
			measure := func(s *core.Session) (float64, int, error) {
				var total float64
				var spans int
				for i := 0; i < batch; i++ {
					res, err := s.RunMode(nq.q, nq.prog, core.ModeBSP)
					if err != nil {
						return 0, 0, err
					}
					total += res.Stats.Elapsed.Seconds()
					spans = len(res.Stats.Trace().Spans())
				}
				return total, spans, nil
			}
			for r := 0; r < rounds; r++ {
				first, second := instr, base
				if r%2 == 1 {
					first, second = base, instr
				}
				for _, s := range []*core.Session{first, second} {
					total, spans, err := measure(s)
					if err != nil {
						closeInstr()
						closeBase()
						return nil, fmt.Errorf("bench: %s %s: %w", plane.name, nq.name, err)
					}
					if s == instr {
						if r == 0 || total < row.InstrumentedSec {
							row.InstrumentedSec = total
						}
						row.TraceSpans = spans
					} else if r == 0 || total < row.BaselineSec {
						row.BaselineSec = total
					}
				}
			}
			row.Overhead = safeRatio(row.InstrumentedSec, row.BaselineSec) - 1
			rows = append(rows, row)
		}
		closeInstr()
		closeBase()
	}
	return rows, nil
}

// SampleTrace runs one SSSP query over a local-TCP cluster and returns its
// execution trace as Chrome trace-event JSON: per-worker PEval/IncEval
// spans, barriers, the coordinator's remote-call round trips, fetch and
// assemble — a timeline of exactly the query the bytes came from.
func SampleTrace(workers, procs int, scale workload.Scale) ([]byte, error) {
	g, err := workload.Load(workload.Traffic, scale)
	if err != nil {
		return nil, err
	}
	p := partition.Partition(g, workers, grapeStrategy)
	s, cleanup, _, err := tcpSessionOpts(p, procs, core.Options{})
	if err != nil {
		return nil, err
	}
	defer cleanup()
	source := workload.Sources(g, 1, 23)[0]
	res, err := s.RunMode(source, pie.SSSP{}, core.ModeBSP)
	if err != nil {
		return nil, err
	}
	return res.Stats.Trace().ChromeJSON()
}

// FormatObsRows renders the experiment as a text table.
func FormatObsRows(rows []ObsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nObservability overhead: instrumented vs NoMetrics (same partition, best of N)\n")
	fmt.Fprintf(&b, "%-10s %-10s %-8s %6s %6s %14s %12s %9s %7s\n",
		"dataset", "query", "plane", "n", "procs", "instrumented(s)", "baseline(s)", "overhead", "spans")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-10s %-8s %6d %6d %14.4f %12.4f %8.2f%% %7d\n",
			r.Dataset, r.Query, r.Plane, r.Workers, r.Procs,
			r.InstrumentedSec, r.BaselineSec, 100*r.Overhead, r.TraceSpans)
	}
	return b.String()
}
