// Package bench is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (Section 7 and Appendix B) on the
// synthetic dataset surrogates of internal/workload: Table 1, Figures 6(a-l),
// 7(a-b), 8(a-l) and 9(a-d). Each experiment runs the same query on GRAPE and
// on the three baseline engines (Pregel-style vertex-centric, GraphLab-style
// GAS, Blogel-style block-centric), measuring response time, supersteps and
// communication volume with the shared metering of internal/metrics.
//
// Absolute times are not comparable to the paper's 24-node cluster numbers;
// what the harness preserves is the qualitative shape: which system wins, by
// roughly what factor, and how the gap changes with the number of workers and
// with the dataset (EXPERIMENTS.md records paper-vs-measured for each).
package bench

import (
	"fmt"
	"strings"

	"grape/internal/baseline/bc"
	"grape/internal/baseline/vc"
	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/partition"
	"grape/internal/pie"
	"grape/internal/seq"
	"grape/internal/workload"
)

// System identifies one of the compared systems.
type System string

// The four systems compared throughout the evaluation.
const (
	GRAPE   System = "GRAPE"
	GRAPENI System = "GRAPE_NI" // GRAPE without IncEval (Exp-2 only)
	Pregel  System = "Pregel"   // Giraph-style synchronous vertex-centric
	GAS     System = "GAS"      // GraphLab-style synchronous GAS
	Blogel  System = "Blogel"   // block-centric
)

// Systems is the default comparison set, in the order the paper lists them.
var Systems = []System{GRAPE, Pregel, GAS, Blogel}

// Queries supported by the harness.
const (
	QuerySSSP   = "sssp"
	QueryCC     = "cc"
	QuerySim    = "sim"
	QuerySubIso = "subiso"
	QueryCF     = "cf"
)

// Queries lists all query classes.
var Queries = []string{QuerySSSP, QueryCC, QuerySim, QuerySubIso, QueryCF}

// grapeStrategy is the partition strategy GRAPE and Blogel use (the paper's
// default is METIS; the multilevel strategy is its stand-in).
var grapeStrategy partition.Strategy = partition.Multilevel{}

// maxSubIsoMatches bounds match enumeration in benchmarks.
const maxSubIsoMatches = 200

// RunSSSP runs one SSSP query on the chosen system and returns its stats.
func RunSSSP(sys System, g *graph.Graph, source graph.VertexID, workers int) (*metrics.Stats, error) {
	switch sys {
	case GRAPE, GRAPENI:
		eng := core.New(core.Options{Workers: workers, Strategy: grapeStrategy, DisableIncEval: sys == GRAPENI})
		res, err := eng.Run(g, source, pie.SSSP{})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	case Pregel, GAS:
		res, err := vc.New(vcOptions(sys, workers)).Run(g, vc.SSSP{Source: source})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	case Blogel:
		res, err := bc.New(bc.Options{Workers: workers, Strategy: grapeStrategy}).Run(g, bc.SSSP{Source: source})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	}
	return nil, fmt.Errorf("bench: unknown system %q", sys)
}

// RunCC runs connected components on the chosen system.
func RunCC(sys System, g *graph.Graph, workers int) (*metrics.Stats, error) {
	switch sys {
	case GRAPE, GRAPENI:
		eng := core.New(core.Options{Workers: workers, Strategy: grapeStrategy, DisableIncEval: sys == GRAPENI})
		res, err := eng.Run(g, nil, pie.CC{})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	case Pregel, GAS:
		res, err := vc.New(vcOptions(sys, workers)).Run(g, vc.CC{})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	case Blogel:
		res, err := bc.New(bc.Options{Workers: workers, Strategy: grapeStrategy}).Run(g, bc.CC{})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	}
	return nil, fmt.Errorf("bench: unknown system %q", sys)
}

// RunSim runs graph-simulation pattern matching on the chosen system.
// useIndex enables the neighbourhood-index optimization (GRAPE only).
func RunSim(sys System, g, pattern *graph.Graph, workers int, useIndex bool) (*metrics.Stats, error) {
	switch sys {
	case GRAPE, GRAPENI:
		eng := core.New(core.Options{Workers: workers, Strategy: grapeStrategy, DisableIncEval: sys == GRAPENI})
		res, err := eng.Run(g, pattern, pie.Sim{UseIndex: useIndex})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	case Pregel, GAS:
		res, err := vc.New(vcOptions(sys, workers)).Run(g, vc.Sim{Pattern: pattern})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	case Blogel:
		res, err := bc.New(bc.Options{Workers: workers, Strategy: grapeStrategy}).Run(g, bc.Sim{Pattern: pattern})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	}
	return nil, fmt.Errorf("bench: unknown system %q", sys)
}

// RunSubIso runs subgraph-isomorphism pattern matching on the chosen system.
func RunSubIso(sys System, g, pattern *graph.Graph, workers int) (*metrics.Stats, error) {
	switch sys {
	case GRAPE, GRAPENI:
		eng := core.New(core.Options{Workers: workers, Strategy: grapeStrategy})
		res, err := eng.Run(g, pattern, pie.SubIso{MaxMatches: maxSubIsoMatches})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	case Pregel, GAS:
		res, err := vc.New(vcOptions(sys, workers)).Run(g, vc.SubIso{Pattern: pattern, MaxMatches: maxSubIsoMatches})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	case Blogel:
		res, err := bc.New(bc.Options{Workers: workers, Strategy: grapeStrategy}).Run(g, bc.SubIso{Pattern: pattern, MaxMatches: maxSubIsoMatches})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	}
	return nil, fmt.Errorf("bench: unknown system %q", sys)
}

// RunCF runs collaborative filtering with the given training fraction.
func RunCF(sys System, g *graph.Graph, trainFraction float64, workers int) (*metrics.Stats, error) {
	cfg := seq.DefaultSGDConfig()
	cfg.Epochs = 3
	rounds := 5
	switch sys {
	case GRAPE, GRAPENI:
		q := pie.CFQuery{Config: cfg, TrainFraction: trainFraction, MaxRounds: rounds}
		eng := core.New(core.Options{Workers: workers, Strategy: grapeStrategy})
		res, err := eng.Run(g, q, pie.CF{})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	case Pregel, GAS:
		res, err := vc.New(vcOptions(sys, workers)).Run(g, vc.CF{Config: cfg, MaxRounds: rounds})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	case Blogel:
		res, err := bc.New(bc.Options{Workers: workers, Strategy: grapeStrategy}).Run(g, bc.CF{Config: cfg, MaxRounds: rounds})
		if err != nil {
			return nil, err
		}
		return res.Stats, nil
	}
	return nil, fmt.Errorf("bench: unknown system %q", sys)
}

func vcOptions(sys System, workers int) vc.Options {
	return vc.Options{
		Workers:         workers,
		CombineMessages: sys == GAS,
		EngineName:      string(sys),
	}
}

// Row is one measurement: a (system, workers) point of a table or figure.
type Row struct {
	Experiment string
	System     System
	Dataset    string
	Query      string
	Workers    int
	Seconds    float64
	CommMB     float64
	Messages   int64
	Supersteps int
}

// FormatRows renders measurement rows as an aligned text table, the output of
// cmd/grape-bench.
func FormatRows(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-10s %-12s %-8s %3s  %12s %12s %10s %6s\n",
		"system", "dataset", "query", "n", "time(s)", "comm(MB)", "messages", "steps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-12s %-8s %3d  %12.4f %12.4f %10d %6d\n",
			r.System, r.Dataset, r.Query, r.Workers, r.Seconds, r.CommMB, r.Messages, r.Supersteps)
	}
	return b.String()
}

func rowFrom(exp string, sys System, dataset, query string, workers int, st *metrics.Stats) Row {
	return Row{
		Experiment: exp,
		System:     sys,
		Dataset:    dataset,
		Query:      query,
		Workers:    workers,
		Seconds:    st.Elapsed.Seconds(),
		CommMB:     st.MBShipped(),
		Messages:   st.MessagesSent,
		Supersteps: st.Supersteps,
	}
}

// accumulate merges repeated runs (several queries of the same class) into an
// averaged row.
func accumulate(rows []Row) Row {
	if len(rows) == 0 {
		return Row{}
	}
	out := rows[0]
	for _, r := range rows[1:] {
		out.Seconds += r.Seconds
		out.CommMB += r.CommMB
		out.Messages += r.Messages
		out.Supersteps += r.Supersteps
	}
	n := float64(len(rows))
	out.Seconds /= n
	out.CommMB /= n
	out.Messages /= int64(len(rows))
	out.Supersteps = int(float64(out.Supersteps)/n + 0.5)
	return out
}

// queriesPerClass controls how many queries are averaged per experiment
// point; the paper uses 10 sources / 20 patterns, the harness scales this
// down with the dataset scale.
func queriesPerClass(scale workload.Scale) int {
	switch scale {
	case workload.ScaleTiny:
		return 1
	case workload.ScaleMedium:
		return 3
	default:
		return 2
	}
}
