package bench

import (
	"fmt"
	"io"
	stdnet "net"
	"strings"
	"sync"
	"time"

	"grape/internal/core"
	"grape/internal/metrics"
	grapenet "grape/internal/mpi/net"
	"grape/internal/partition"
	"grape/internal/pie"
	"grape/internal/workload"
)

// RecoverRow is one point of the fault-tolerance experiment (grape-bench
// -exp recover): the same SSSP query timed over a local-TCP cluster in three
// configurations — fail-stop (no recovery), recovery enabled (checkpoints
// every Interval supersteps, measuring what checkpointing costs a run that
// never fails), and recovery enabled with one worker process killed
// mid-query (measuring what a real failure costs end to end: death
// detection, fragment reassignment to survivors, and the restart from the
// last checkpointed cut).
type RecoverRow struct {
	Dataset  string `json:"dataset"`
	Workers  int    `json:"workers"`
	Procs    int    `json:"procs"`
	Runs     int    `json:"runs"`
	Interval int    `json:"checkpoint_interval"`

	// HealthySec is the mean healthy query time without recovery;
	// CheckpointedSec the same with checkpointing on. CheckpointOverhead is
	// their ratio — the steady-state price of fault tolerance (1.00 = free).
	HealthySec         float64 `json:"healthy_sec"`
	CheckpointedSec    float64 `json:"checkpointed_sec"`
	CheckpointOverhead float64 `json:"checkpoint_overhead"`

	// DisruptedSec is the wall time of the query that absorbed a worker kill:
	// it includes detecting the death, re-homing the dead process's fragments
	// onto survivors, and restarting from the last checkpoint.
	// RecoveryLatencySec is what the failure itself cost — DisruptedSec minus
	// the checkpointed healthy time. Restarts counts how many times that
	// query restarted (normally 1).
	DisruptedSec       float64 `json:"disrupted_sec"`
	RecoveryLatencySec float64 `json:"recovery_latency_sec"`
	Restarts           int     `json:"restarts"`
}

// relay is a minimal TCP proxy whose connections can all be severed at once,
// so an in-process worker loop can be "killed" the way a real worker process
// dies: its coordinator link drops abruptly.
type relay struct {
	ln      stdnet.Listener
	backend string

	mu     sync.Mutex
	conns  []stdnet.Conn
	killed bool
}

func newRelay(backend string) (*relay, error) {
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &relay{ln: ln, backend: backend}
	go r.accept()
	return r, nil
}

func (r *relay) accept() {
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		up, err := stdnet.Dial("tcp", r.backend)
		if err != nil {
			conn.Close()
			continue
		}
		r.mu.Lock()
		if r.killed {
			r.mu.Unlock()
			conn.Close()
			up.Close()
			continue
		}
		r.conns = append(r.conns, conn, up)
		r.mu.Unlock()
		go func() { io.Copy(up, conn); up.Close() }()
		go func() { io.Copy(conn, up); conn.Close() }()
	}
}

// kill severs every relayed connection and refuses new ones. Idempotent.
func (r *relay) kill() {
	r.mu.Lock()
	r.killed = true
	conns := r.conns
	r.conns = nil
	r.mu.Unlock()
	r.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// tcpSessionKillable is tcpSessionOpts with worker process 0 dialing the
// coordinator through a relay; calling kill severs that process's link, which
// the coordinator observes as the process dying. The other processes dial
// directly.
func tcpSessionKillable(p *partition.Partitioned, procs int, opts core.Options) (*core.Session, func(), func(), error) {
	ln, err := grapenet.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	rel, err := newRelay(ln.Addr())
	if err != nil {
		return nil, nil, nil, err
	}
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		addr := ln.Addr()
		if i == 0 {
			addr = rel.ln.Addr().String()
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			host := core.NewWorkerHost(pie.ByName)
			_ = grapenet.RunWorker(addr, host, grapenet.WorkerOptions{DialTimeout: 10 * time.Second})
		}(addr)
	}
	cl, err := ln.Serve(p, procs, 30*time.Second)
	if err != nil {
		rel.kill()
		return nil, nil, nil, err
	}
	peers := make([]core.RemotePeer, len(p.Fragments))
	for i := range peers {
		peers[i] = cl.Peer(i)
	}
	s, err := core.NewSessionRemote(p, opts, cl, peers)
	if err != nil {
		cl.Close()
		rel.kill()
		wg.Wait()
		return nil, nil, nil, err
	}
	cleanup := func() { s.Close(); rel.kill(); wg.Wait() }
	return s, cleanup, rel.kill, nil
}

// timedSSSP runs the query `runs` times and returns the mean seconds.
func timedSSSP(s *core.Session, source any, runs int) (float64, error) {
	var total float64
	for i := 0; i < runs; i++ {
		t := metrics.StartTimer()
		if _, err := s.Run(source, pie.SSSP{}); err != nil {
			return 0, err
		}
		total += t.Stop().Seconds()
	}
	return total / float64(runs), nil
}

// RecoverExperiment measures checkpoint overhead and recovery latency on the
// road-network surrogate. The interval is the engine's default (16); the
// headline number is CheckpointOverhead, which the e2e harness expects to
// stay under 1.10.
func RecoverExperiment(workers, procs int, scale workload.Scale, quick bool) ([]RecoverRow, error) {
	if procs < 2 {
		return nil, fmt.Errorf("bench: recover needs at least 2 worker processes, got %d", procs)
	}
	runs := 5
	if quick {
		runs = 2
	}
	const interval = 16

	g, err := workload.Load(workload.Traffic, scale)
	if err != nil {
		return nil, err
	}
	source := workload.Sources(g, 1, 7)[0]
	row := RecoverRow{Dataset: workload.Traffic, Workers: workers, Procs: procs,
		Runs: runs, Interval: interval}

	// Fail-stop baseline: no recovery machinery at all.
	p := partition.Partition(g, workers, grapeStrategy)
	s, cleanup, _, err := tcpSession(p, procs)
	if err != nil {
		return nil, err
	}
	row.HealthySec, err = timedSSSP(s, source, runs)
	cleanup()
	if err != nil {
		return nil, fmt.Errorf("bench: healthy runs: %w", err)
	}

	// Checkpointing on, no failure: the steady-state overhead.
	recOpts := core.Options{Recovery: &core.RecoveryOptions{Interval: interval}}
	p = partition.Partition(g, workers, grapeStrategy)
	s, cleanup, _, err = tcpSessionOpts(p, procs, recOpts)
	if err != nil {
		return nil, err
	}
	row.CheckpointedSec, err = timedSSSP(s, source, runs)
	cleanup()
	if err != nil {
		return nil, fmt.Errorf("bench: checkpointed runs: %w", err)
	}
	row.CheckpointOverhead = safeRatio(row.CheckpointedSec, row.HealthySec)

	// Kill one worker process mid-query and time the run that absorbs it.
	p = partition.Partition(g, workers, grapeStrategy)
	s, cleanup, kill, err := tcpSessionKillable(p, procs, recOpts)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	killAt := time.Duration(row.CheckpointedSec / 3 * float64(time.Second))
	timer := time.AfterFunc(killAt, kill)
	t := metrics.StartTimer()
	res, err := s.Run(source, pie.SSSP{})
	row.DisruptedSec = t.Stop().Seconds()
	timer.Stop()
	if err != nil {
		return nil, fmt.Errorf("bench: disrupted run: %w", err)
	}
	row.Restarts = res.Restarts
	if row.Restarts == 0 {
		// The query beat the kill; the next one absorbs the dead process.
		kill()
		t = metrics.StartTimer()
		if res, err = s.Run(source, pie.SSSP{}); err != nil {
			return nil, fmt.Errorf("bench: post-kill run: %w", err)
		}
		row.DisruptedSec = t.Stop().Seconds()
		row.Restarts = res.Restarts
	}
	row.RecoveryLatencySec = row.DisruptedSec - row.CheckpointedSec

	return []RecoverRow{row}, nil
}

// FormatRecoverRows renders the experiment as a text table.
func FormatRecoverRows(rows []RecoverRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nFault tolerance: checkpoint overhead and recovery latency (SSSP over TCP)\n")
	fmt.Fprintf(&b, "%-10s %3s %6s %5s %9s %12s %12s %10s %13s %14s %9s\n",
		"dataset", "n", "procs", "runs", "interval", "healthy(s)", "ckpt(s)", "overhead", "disrupted(s)", "recovery(s)", "restarts")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %3d %6d %5d %9d %12.4f %12.4f %9.2fx %13.4f %14.4f %9d\n",
			r.Dataset, r.Workers, r.Procs, r.Runs, r.Interval,
			r.HealthySec, r.CheckpointedSec, r.CheckpointOverhead,
			r.DisruptedSec, r.RecoveryLatencySec, r.Restarts)
	}
	return b.String()
}
