package bench

import (
	"fmt"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/graphgen"
	"grape/internal/metrics"
	"grape/internal/partition"
	"grape/internal/pie"
	"grape/internal/seq"
	"grape/internal/workload"
)

// Table1 reproduces Table 1: SSSP over the road-network surrogate with the
// given number of workers, one row per system, reporting time and
// communication volume.
func Table1(workers int, scale workload.Scale) ([]Row, error) {
	g, err := workload.Load(workload.Traffic, scale)
	if err != nil {
		return nil, err
	}
	src := workload.Sources(g, 1, 7)[0]
	var rows []Row
	for _, sys := range Systems {
		st, err := RunSSSP(sys, g, src, workers)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", sys, err)
		}
		rows = append(rows, rowFrom("table1", sys, workload.Traffic, QuerySSSP, workers, st))
	}
	return rows, nil
}

// Fig6 reproduces one panel of Figure 6 (and, through the CommMB column, the
// corresponding panel of Figure 8): the given query class over the given
// dataset, varying the number of workers, for every system. The same rows
// serve Figures 6 and 8 because the paper's two figures plot the time and
// communication columns of the same runs.
func Fig6(query, dataset string, workersList []int, scale workload.Scale) ([]Row, error) {
	g, err := workload.Load(dataset, scale)
	if err != nil {
		return nil, err
	}
	nq := queriesPerClass(scale)
	var rows []Row
	for _, workers := range workersList {
		for _, sys := range Systems {
			var perQuery []Row
			runOne := func(st *metrics.Stats, err error) error {
				if err != nil {
					return err
				}
				perQuery = append(perQuery, rowFrom("fig6", sys, dataset, query, workers, st))
				return nil
			}
			switch query {
			case QuerySSSP:
				for _, src := range workload.Sources(g, nq, 17) {
					if err := runOne(RunSSSP(sys, g, src, workers)); err != nil {
						return nil, fmt.Errorf("fig6 %s/%s: %w", sys, dataset, err)
					}
				}
			case QueryCC:
				if err := runOne(RunCC(sys, g, workers)); err != nil {
					return nil, fmt.Errorf("fig6 %s/%s: %w", sys, dataset, err)
				}
			case QuerySim:
				for _, q := range workload.Patterns(g, nq, 8, 15, 23) {
					if err := runOne(RunSim(sys, g, q, workers, false)); err != nil {
						return nil, fmt.Errorf("fig6 %s/%s: %w", sys, dataset, err)
					}
				}
			case QuerySubIso:
				for _, q := range workload.Patterns(g, nq, 6, 10, 29) {
					if err := runOne(RunSubIso(sys, g, q, workers)); err != nil {
						return nil, fmt.Errorf("fig6 %s/%s: %w", sys, dataset, err)
					}
				}
			case QueryCF:
				if err := runOne(RunCF(sys, g, 0.9, workers)); err != nil {
					return nil, fmt.Errorf("fig6 %s/%s: %w", sys, dataset, err)
				}
			default:
				return nil, fmt.Errorf("fig6: unknown query %q", query)
			}
			row := accumulate(perQuery)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig6CF reproduces Figure 6(k-l): CF with 90% and 50% training sets.
func Fig6CF(workersList []int, trainFraction float64, scale workload.Scale) ([]Row, error) {
	g, err := workload.Load(workload.MovieLens, scale)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, workers := range workersList {
		for _, sys := range Systems {
			st, err := RunCF(sys, g, trainFraction, workers)
			if err != nil {
				return nil, fmt.Errorf("fig6cf %s: %w", sys, err)
			}
			r := rowFrom("fig6-cf", sys, workload.MovieLens, QueryCF, workers, st)
			r.Dataset = fmt.Sprintf("%s-%d%%", workload.MovieLens, int(trainFraction*100))
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// Fig7a reproduces Figure 7(a), Exp-2: GRAPE vs GRAPE_NI (no incremental
// step) for Sim, varying the number of workers.
func Fig7a(workersList []int, scale workload.Scale) ([]Row, error) {
	g, err := workload.Load(workload.LiveJournal, scale)
	if err != nil {
		return nil, err
	}
	patterns := workload.Patterns(g, queriesPerClass(scale), 8, 15, 31)
	var rows []Row
	for _, workers := range workersList {
		for _, sys := range []System{GRAPE, GRAPENI} {
			var perQuery []Row
			for _, q := range patterns {
				st, err := RunSim(sys, g, q, workers, false)
				if err != nil {
					return nil, fmt.Errorf("fig7a %s: %w", sys, err)
				}
				perQuery = append(perQuery, rowFrom("fig7a", sys, workload.LiveJournal, QuerySim, workers, st))
			}
			rows = append(rows, accumulate(perQuery))
		}
	}
	return rows, nil
}

// SpeedupRow is one point of Figure 7(b): the speed-up that the optimized
// sequential algorithm achieves, sequentially and under GRAPE
// parallelization.
type SpeedupRow struct {
	Workers           int
	SequentialSpeedup float64
	GRAPESpeedup      float64
}

// Fig7b reproduces Figure 7(b), Exp-3: the speed-up of the index-optimized
// simulation algorithm over the plain one, measured sequentially (workers
// column 0 of the result) and under GRAPE with varying worker counts. GRAPE
// preserving the sequential speed-up is the compatibility claim of Exp-3.
func Fig7b(workersList []int, scale workload.Scale) ([]SpeedupRow, error) {
	g, err := workload.Load(workload.LiveJournal, scale)
	if err != nil {
		return nil, err
	}
	patterns := workload.Patterns(g, queriesPerClass(scale), 8, 15, 37)

	// Sequential speed-up.
	seqPlain := metrics.StartTimer()
	for _, q := range patterns {
		seq.Simulation(q, g)
	}
	plainDur := seqPlain.Stop()
	idx := seq.BuildSimIndex(g)
	seqIdx := metrics.StartTimer()
	for _, q := range patterns {
		seq.SimulationWithIndex(q, g, idx)
	}
	idxDur := seqIdx.Stop()
	seqSpeedup := safeRatio(plainDur.Seconds(), idxDur.Seconds())

	var out []SpeedupRow
	for _, workers := range workersList {
		plain, optimized := 0.0, 0.0
		for _, q := range patterns {
			stPlain, err := RunSim(GRAPE, g, q, workers, false)
			if err != nil {
				return nil, err
			}
			stOpt, err := RunSim(GRAPE, g, q, workers, true)
			if err != nil {
				return nil, err
			}
			plain += stPlain.Elapsed.Seconds()
			optimized += stOpt.Elapsed.Seconds()
		}
		out = append(out, SpeedupRow{
			Workers:           workers,
			SequentialSpeedup: seqSpeedup,
			GRAPESpeedup:      safeRatio(plain, optimized),
		})
	}
	return out, nil
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// FormatSpeedups renders Figure 7(b) rows.
func FormatSpeedups(rows []SpeedupRow) string {
	out := "== Fig 7(b): optimization compatibility (Sim, neighbourhood index) ==\n"
	out += fmt.Sprintf("%3s  %-18s %-18s\n", "n", "sequential speedup", "GRAPE speedup")
	for _, r := range rows {
		out += fmt.Sprintf("%3d  %-18.2f %-18.2f\n", r.Workers, r.SequentialSpeedup, r.GRAPESpeedup)
	}
	return out
}

// Fig9 reproduces Figure 9, Exp-5: scalability on synthetic graphs of
// increasing size, for the given query class, with a fixed worker count.
// Sizes follow the paper: (10M,40M) ... (50M,200M), scaled down by the
// workload scale.
func Fig9(query string, workers int, scale workload.Scale) ([]Row, error) {
	sizes := [][2]int{
		{10_000_000, 40_000_000},
		{20_000_000, 80_000_000},
		{30_000_000, 120_000_000},
		{40_000_000, 160_000_000},
		{50_000_000, 200_000_000},
	}
	var rows []Row
	for _, sz := range sizes {
		g := workload.Synthetic(sz[0], sz[1], scale)
		label := fmt.Sprintf("(%dM,%dM)", sz[0]/1_000_000, sz[1]/1_000_000)
		for _, sys := range Systems {
			var st *metrics.Stats
			var err error
			switch query {
			case QuerySSSP:
				st, err = RunSSSP(sys, g, g.VertexAt(0), workers)
			case QueryCC:
				st, err = RunCC(sys, g, workers)
			case QuerySim:
				st, err = RunSim(sys, g, graphgen.Pattern(g, 5, 8, 41), workers, false)
			case QuerySubIso:
				st, err = RunSubIso(sys, g, graphgen.Pattern(g, 4, 5, 43), workers)
			default:
				return nil, fmt.Errorf("fig9: unsupported query %q", query)
			}
			if err != nil {
				return nil, fmt.Errorf("fig9 %s %s: %w", sys, label, err)
			}
			r := rowFrom("fig9", sys, label, query, workers, st)
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// AblationMessageGrouping measures the effect of dynamic message grouping
// (Section 6, "Dynamic grouping"): SSSP on the road network with grouping on
// and off.
func AblationMessageGrouping(workers int, scale workload.Scale) ([]Row, error) {
	g, err := workload.Load(workload.Traffic, scale)
	if err != nil {
		return nil, err
	}
	src := workload.Sources(g, 1, 11)[0]
	var rows []Row
	for _, disable := range []bool{false, true} {
		eng := core.New(core.Options{Workers: workers, Strategy: grapeStrategy, DisableGrouping: disable})
		res, err := eng.Run(g, src, pie.SSSP{})
		if err != nil {
			return nil, err
		}
		name := System("GRAPE")
		if disable {
			name = "GRAPE-nogroup"
		}
		rows = append(rows, rowFrom("ablation-grouping", name, workload.Traffic, QuerySSSP, workers, res.Stats))
	}
	return rows, nil
}

// AblationPartitioner measures the sensitivity of GRAPE's SSSP to the
// partition strategy (hash vs streaming LDG vs multilevel), an ablation for
// the design choice called out in DESIGN.md.
func AblationPartitioner(workers int, scale workload.Scale) ([]Row, error) {
	g, err := workload.Load(workload.Traffic, scale)
	if err != nil {
		return nil, err
	}
	src := workload.Sources(g, 1, 13)[0]
	var rows []Row
	for _, name := range []string{"hash", "ldg", "multilevel"} {
		s, ok := partition.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown partition strategy %q", name)
		}
		eng := core.New(core.Options{Workers: workers, Strategy: s})
		res, err := eng.Run(g, src, pie.SSSP{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, rowFrom("ablation-partitioner", System("GRAPE/"+name), workload.Traffic, QuerySSSP, workers, res.Stats))
	}
	return rows, nil
}

// VerifyAnswers cross-checks that all four systems return the same answer for
// SSSP, CC and Sim on a small graph; the harness runs it before long
// benchmark sessions as a sanity gate.
func VerifyAnswers(scale workload.Scale) error {
	g, err := workload.Load(workload.DBpedia, workload.ScaleTiny)
	if err != nil {
		return err
	}
	src := g.VertexAt(0)
	want := seq.Dijkstra(g, src)

	grapeRes, err := core.New(core.Options{Workers: 4, Strategy: grapeStrategy}).Run(g, src, pie.SSSP{})
	if err != nil {
		return err
	}
	got := grapeRes.Output.(map[graph.VertexID]float64)
	for v, d := range want {
		gd := got[v]
		if gd != d && !(isInf(gd) && isInf(d)) {
			return fmt.Errorf("bench: GRAPE SSSP differs from sequential at vertex %d: %v vs %v", v, gd, d)
		}
	}
	_ = scale
	return nil
}

func isInf(f float64) bool { return f > 1e300 }
