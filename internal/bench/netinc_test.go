package bench

import (
	"testing"

	"grape/internal/workload"
)

// TestNetIncMaintenance smoke-runs the distributed-maintenance experiment at
// quick scale and sanity-checks the row invariants: positive timings, a
// monotone stream maintained incrementally, and ratios derived from the
// measured columns.
func TestNetIncMaintenance(t *testing.T) {
	rows, err := NetIncMaintenance(4, 2, workload.ScaleTiny, true)
	if err != nil {
		t.Fatalf("NetIncMaintenance: %v", err)
	}
	if len(rows) == 0 {
		t.Fatalf("no rows")
	}
	for _, r := range rows {
		if r.InProcMaintainSec <= 0 || r.TCPMaintainSec <= 0 || r.TCPRecomputeSec <= 0 {
			t.Fatalf("non-positive timings: %+v", r)
		}
		if r.IncrementalRounds == 0 {
			t.Fatalf("monotone stream maintained nothing incrementally: %+v", r)
		}
		if r.RecomputedRounds != 0 {
			t.Fatalf("monotone stream forced recomputes over the wire: %+v", r)
		}
		if r.WireOverhead <= 0 || r.MaintainSpeedup <= 0 {
			t.Fatalf("ratios not computed: %+v", r)
		}
	}
}

// TestNetIncMaintenanceRejectsBadProcs mirrors the CLI contract.
func TestNetIncMaintenanceRejectsBadProcs(t *testing.T) {
	if _, err := NetIncMaintenance(2, 3, workload.ScaleTiny, true); err == nil {
		t.Fatalf("accepted more procs than workers")
	}
}
