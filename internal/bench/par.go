package bench

import (
	"fmt"
	"math"
	"strings"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/partition"
	"grape/internal/pie"
	"grape/internal/workload"
)

// ParRow is one point of the parallel-evaluation scaling experiment: a query
// evaluated over a resident partition with the per-worker sweep pool set to
// Width goroutines. Width 1 is the sequential legacy path and the baseline
// the other widths are normalized against; Identical reports whether the
// answer matched that baseline bit for bit (the parallel sweeps are designed
// to be byte-identical, so this doubles as a correctness check riding along
// with every measurement).
type ParRow struct {
	Dataset   string `json:"dataset"`
	Query     string `json:"query"`
	Transport string `json:"transport"` // "inproc" or "tcp"
	Workers   int    `json:"workers"`
	Procs     int    `json:"procs"` // 0 on the in-process transport
	Width     int    `json:"width"`

	Seconds float64 `json:"seconds"`
	// Speedup is the width-1 time of the same (dataset, query, transport)
	// divided by Seconds.
	Speedup float64 `json:"speedup"`

	Identical bool    `json:"identical"`
	MaxDiff   float64 `json:"max_diff"`
}

// ParReport is the full output of grape-bench -exp par: the scaling curve
// plus the netinc wire-overhead experiment re-measured with the pipelined
// communication (background combine-fold and coalesced frame writes) active,
// so the report shows both what the sweep pools buy and what the overlap
// shaved off the wire.
type ParReport struct {
	MaxWidth int         `json:"max_width"`
	Scaling  []ParRow    `json:"scaling"`
	NetInc   []NetIncRow `json:"netinc"`
}

// parQuery is one query of the scaling workload.
type parQuery struct {
	name string
	q    core.Query
	prog core.Program
}

// parWidths is the sweep 1, 2, 4, ... capped at max, with max itself
// included when it is not a power of two.
func parWidths(max int) []int {
	if max < 1 {
		max = 1
	}
	widths := []int{1}
	for w := 2; w <= max; w *= 2 {
		widths = append(widths, w)
	}
	if last := widths[len(widths)-1]; last != max {
		widths = append(widths, max)
	}
	return widths
}

// compareAnswers diffs an answer against the width-1 reference of the same
// configuration: exact for SSSP distances and CC labels, max-|Δ| for
// PageRank (which should also be exactly zero — the parallel sweep replays
// the sequential floating-point fold order).
func compareAnswers(ref, got any) (identical bool, maxDiff float64) {
	switch r := ref.(type) {
	case map[graph.VertexID]float64:
		g := got.(map[graph.VertexID]float64)
		if len(r) != len(g) {
			return false, math.Inf(1)
		}
		identical = true
		for v, want := range r {
			have, ok := g[v]
			if !ok {
				return false, math.Inf(1)
			}
			if math.Float64bits(have) != math.Float64bits(want) {
				identical = false
				if d := math.Abs(have - want); d > maxDiff {
					maxDiff = d
				}
			}
		}
		return identical, maxDiff
	case map[graph.VertexID]graph.VertexID:
		g := got.(map[graph.VertexID]graph.VertexID)
		if len(r) != len(g) {
			return false, math.Inf(1)
		}
		for v, want := range r {
			if have, ok := g[v]; !ok || have != want {
				return false, math.Inf(1)
			}
		}
		return true, 0
	}
	return false, math.Inf(1)
}

// ParallelScaling measures the intra-fragment sweep pools (grape-bench -exp
// par): SSSP, CC and PageRank on a balanced road network and a skewed social
// network, each evaluated at pool widths 1..maxWidth over the in-process
// transport and a local-TCP cluster, with every parallel answer diffed
// against the sequential one. The same partition is reused across widths so
// the curve isolates the sweep pools.
func ParallelScaling(workers, procs, maxWidth int, scale workload.Scale, quick bool) (*ParReport, error) {
	if procs < 1 || procs > workers {
		return nil, fmt.Errorf("bench: %d procs for %d workers", procs, workers)
	}
	widths := parWidths(maxWidth)
	if quick {
		widths = []int{1, 2}
	}
	datasets := []string{workload.Traffic, workload.LiveJournal}
	nSources := 2
	if quick {
		nSources = 1
	}

	rep := &ParReport{MaxWidth: widths[len(widths)-1]}
	for _, ds := range datasets {
		g, err := workload.Load(ds, scale)
		if err != nil {
			return nil, err
		}
		queries := []parQuery{}
		for _, src := range workload.Sources(g, nSources, 23) {
			queries = append(queries, parQuery{name: QuerySSSP, q: src, prog: pie.SSSP{}})
		}
		queries = append(queries, parQuery{name: QueryCC, q: nil, prog: pie.CC{}})
		queries = append(queries, parQuery{name: "pagerank", q: pie.DefaultPageRankQuery(), prog: pie.PageRank{}})
		p := partition.Partition(g, workers, grapeStrategy)

		for _, transport := range []string{"inproc", "tcp"} {
			// refs holds the width-1 answer per query index; base the
			// width-1 seconds per query name.
			refs := make([]any, len(queries))
			base := map[string]float64{}
			for _, width := range widths {
				rows := map[string]*ParRow{}
				order := []string{}
				opts := core.Options{Parallelism: width}
				var s *core.Session
				var cleanup func()
				if transport == "inproc" {
					s, err = core.NewSessionPartitioned(p, opts)
					if err != nil {
						return nil, err
					}
					cleanup = func() { s.Close() }
				} else {
					s, cleanup, _, err = tcpSessionOpts(p, procs, opts)
					if err != nil {
						return nil, err
					}
				}
				for qi, pq := range queries {
					res, err := s.Run(pq.q, pq.prog)
					if err != nil {
						cleanup()
						return nil, fmt.Errorf("bench: %s %s width=%d: %w", transport, pq.name, width, err)
					}
					row := rows[pq.name]
					if row == nil {
						row = &ParRow{Dataset: ds, Query: pq.name, Transport: transport,
							Workers: workers, Width: width, Identical: true}
						if transport == "tcp" {
							row.Procs = procs
						}
						rows[pq.name] = row
						order = append(order, pq.name)
					}
					row.Seconds += res.Stats.Elapsed.Seconds()
					if width == 1 {
						refs[qi] = res.Output
					} else {
						same, diff := compareAnswers(refs[qi], res.Output)
						row.Identical = row.Identical && same
						if diff > row.MaxDiff {
							row.MaxDiff = diff
						}
					}
				}
				cleanup()
				for _, name := range order {
					row := rows[name]
					if width == 1 {
						base[name] = row.Seconds
					}
					row.Speedup = safeRatio(base[name], row.Seconds)
					rep.Scaling = append(rep.Scaling, *row)
				}
			}
		}
	}

	netinc, err := NetIncMaintenance(workers, procs, scale, quick)
	if err != nil {
		return nil, err
	}
	rep.NetInc = netinc
	return rep, nil
}

// FormatParReport renders the experiment as text tables.
func FormatParReport(rep *ParReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nParallel evaluation: per-worker sweep pools (width 1 = sequential reference)\n")
	fmt.Fprintf(&b, "%-12s %-10s %-8s %3s %6s %6s %12s %9s %10s %10s\n",
		"dataset", "query", "transp", "n", "procs", "width", "time(s)", "speedup", "identical", "max|Δ|")
	for _, r := range rep.Scaling {
		fmt.Fprintf(&b, "%-12s %-10s %-8s %3d %6d %6d %12.4f %8.2fx %10t %10.2g\n",
			r.Dataset, r.Query, r.Transport, r.Workers, r.Procs, r.Width,
			r.Seconds, r.Speedup, r.Identical, r.MaxDiff)
	}
	b.WriteString(FormatNetIncRows(rep.NetInc))
	b.WriteString("(netinc re-measured with overlapped combining and coalesced frame writes)\n")
	return b.String()
}
