package bench

import (
	"fmt"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/pie"
	"grape/internal/workload"
)

// SessionComparison reports the amortization experiment: the same multi-query
// workload evaluated in session mode (partition once, queries over the
// resident fragments — the operating model of Section 3.1) and in
// partition-per-query mode (one full engine run per query, re-partitioning
// every time). Totals include everything each mode pays: session mode pays
// one partitioning, per-query mode pays one per query.
type SessionComparison struct {
	Dataset string
	Workers int
	Queries int

	SessionTotalSec  float64
	PerQueryTotalSec float64

	SessionAmortizedMS  float64 // per-query latency, session mode
	PerQueryAmortizedMS float64 // per-query latency, partition-per-query mode

	SessionQPS  float64
	PerQueryQPS float64

	// Speedup is PerQueryTotalSec / SessionTotalSec: how much faster the
	// query stream completes when the graph is partitioned once.
	Speedup float64
}

// sessionWorkload builds the mixed query sequence both modes evaluate: mostly
// SSSP from rotating sources, with a CC and a PageRank query interleaved
// every few queries, mirroring a multi-user query mix.
type sessionQuery struct {
	kind string // "sssp", "cc" or "pagerank"
	src  graph.VertexID
}

func sessionWorkload(g *graph.Graph, numQueries int) []sessionQuery {
	srcs := workload.Sources(g, 8, 19)
	qs := make([]sessionQuery, 0, numQueries)
	for i := 0; i < numQueries; i++ {
		switch {
		case i%5 == 3:
			qs = append(qs, sessionQuery{kind: "cc"})
		case i%5 == 4:
			qs = append(qs, sessionQuery{kind: "pagerank"})
		default:
			qs = append(qs, sessionQuery{kind: "sssp", src: srcs[i%len(srcs)]})
		}
	}
	return qs
}

func runSessionQuery(run func(q core.Query, prog core.Program) (*core.Result, error), sq sessionQuery) error {
	var err error
	switch sq.kind {
	case "sssp":
		_, err = run(sq.src, pie.SSSP{})
	case "cc":
		_, err = run(nil, pie.CC{})
	case "pagerank":
		_, err = run(pie.DefaultPageRankQuery(), pie.PageRank{})
	default:
		err = fmt.Errorf("bench: unknown session query kind %q", sq.kind)
	}
	return err
}

// SessionAmortization runs the amortization experiment on the road-network
// surrogate: numQueries mixed queries (SSSP/CC/PageRank) in session mode vs
// partition-per-query mode, reporting amortized per-query latency and
// queries/sec for both.
func SessionAmortization(workers, numQueries int, scale workload.Scale) (*SessionComparison, error) {
	g, err := workload.Load(workload.Traffic, scale)
	if err != nil {
		return nil, err
	}
	if numQueries <= 0 {
		numQueries = 10
	}
	qs := sessionWorkload(g, numQueries)
	opts := core.Options{Workers: workers, Strategy: grapeStrategy}

	// Session mode: one partitioning + one resident cluster, then the stream.
	sessTimer := metrics.StartTimer()
	s, err := core.NewSession(g, opts)
	if err != nil {
		return nil, err
	}
	for i, sq := range qs {
		if err := runSessionQuery(s.Run, sq); err != nil {
			s.Close()
			return nil, fmt.Errorf("bench: session query %d (%s): %w", i, sq.kind, err)
		}
	}
	s.Close()
	sessTotal := sessTimer.Stop().Seconds()

	// Partition-per-query mode: a fresh engine run (including partitioning
	// and cluster setup) for every query.
	eng := core.New(opts)
	perTimer := metrics.StartTimer()
	for i, sq := range qs {
		run := func(q core.Query, prog core.Program) (*core.Result, error) { return eng.Run(g, q, prog) }
		if err := runSessionQuery(run, sq); err != nil {
			return nil, fmt.Errorf("bench: per-query query %d (%s): %w", i, sq.kind, err)
		}
	}
	perTotal := perTimer.Stop().Seconds()

	n := float64(numQueries)
	return &SessionComparison{
		Dataset:             workload.Traffic,
		Workers:             workers,
		Queries:             numQueries,
		SessionTotalSec:     sessTotal,
		PerQueryTotalSec:    perTotal,
		SessionAmortizedMS:  sessTotal / n * 1000,
		PerQueryAmortizedMS: perTotal / n * 1000,
		SessionQPS:          safeRatio(n, sessTotal),
		PerQueryQPS:         safeRatio(n, perTotal),
		Speedup:             safeRatio(perTotal, sessTotal),
	}, nil
}

// FormatSessionComparison renders the amortization experiment as a table.
func FormatSessionComparison(c *SessionComparison) string {
	out := fmt.Sprintf("== Session amortization: %d mixed queries on %s, n=%d ==\n",
		c.Queries, c.Dataset, c.Workers)
	out += fmt.Sprintf("%-22s %12s %14s %10s\n", "mode", "total(s)", "latency(ms/q)", "q/s")
	out += fmt.Sprintf("%-22s %12.4f %14.4f %10.1f\n",
		"session (1 partition)", c.SessionTotalSec, c.SessionAmortizedMS, c.SessionQPS)
	out += fmt.Sprintf("%-22s %12.4f %14.4f %10.1f\n",
		"partition-per-query", c.PerQueryTotalSec, c.PerQueryAmortizedMS, c.PerQueryQPS)
	out += fmt.Sprintf("session speedup: %.2fx\n", c.Speedup)
	return out
}
