// Package inc is the library of (bounded) incremental graph algorithms that
// GRAPE uses as IncEval (Section 3.3): given a previous answer and a small
// change to the input, each algorithm updates the answer touching only the
// affected area, so its cost depends on |CHANGED| = |ΔM| + |ΔO| rather than
// on the fragment size.
//
// The algorithms provided are the ones the paper plugs in:
//
//   - SSSPDecrease: the incremental shortest-path algorithm of
//     Ramalingam–Reps for edge-weight/source-distance decreases.
//   - CCState / Merge: bounded component-identifier merging for CC.
//   - SimDelete: incremental graph simulation under "edge deletions"
//     (border matches turning false).
//   - ISGD: incremental stochastic gradient descent that retrains only the
//     factor vectors affected by newly arrived observations.
package inc

import (
	"container/heap"
	"sort"

	"grape/internal/graph"
	"grape/internal/seq"
)

// SSSPDecrease applies a batch of decreased distances to an existing
// shortest-path solution and propagates the improvements through the graph
// (Ramalingam–Reps [40], restricted to decreases, which is all GRAPE's SSSP
// needs because dist values only shrink). dist is updated in place; the
// return value lists the vertices whose distance changed, i.e. the affected
// area AFF.
//
// Vertices missing from dist are treated as having distance +Inf, so the
// batch may freely reference vertices the solution has never seen — in
// particular vertices freshly inserted by a graph update. A decreased vertex
// that is not (or no longer) present in g still has its dist entry updated;
// it just propagates nothing.
func SSSPDecrease(g *graph.Graph, dist map[graph.VertexID]float64, decreases map[graph.VertexID]float64) []graph.VertexID {
	pq := &itemHeap{}
	cur := func(v graph.VertexID) float64 {
		if d, ok := dist[v]; ok {
			return d
		}
		return seq.Infinity
	}
	changedSet := make(map[graph.VertexID]bool)
	for v, nd := range decreases {
		if nd >= cur(v) {
			continue
		}
		dist[v] = nd
		changedSet[v] = true
		if i := g.IndexOf(v); i >= 0 {
			heap.Push(pq, heapItem{vertex: i, dist: nd})
		}
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		v := g.VertexAt(it.vertex)
		if it.dist > cur(v) {
			continue
		}
		for _, he := range g.OutEdges(it.vertex) {
			u := g.VertexAt(int(he.To))
			if alt := it.dist + he.Weight; alt < cur(u) {
				dist[u] = alt
				changedSet[u] = true
				heap.Push(pq, heapItem{vertex: int(he.To), dist: alt})
			}
		}
	}
	out := make([]graph.VertexID, 0, len(changedSet))
	for v := range changedSet {
		out = append(out, v)
	}
	// The changed set feeds message shipping; emit it in vertex order so the
	// wire bytes do not depend on map iteration order.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type heapItem struct {
	vertex int
	dist   float64
}

type itemHeap []heapItem

func (h itemHeap) Len() int           { return len(h) }
func (h itemHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h itemHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)        { *h = append(*h, x.(heapItem)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// CCDense is the flat-slice counterpart of CCState, bound to a fragment
// graph: component identifiers live in a []graph.VertexID indexed by the
// graph's dense vertex index, and member lists hold dense indices, so Merge
// relabels with no map lookups on the hot path. Vertices outside the bound
// graph (a decoded partial mentioning a departed vertex) keep a frozen label
// in a small side map purely so the partial result stays total; they do not
// participate in later relabelling — in the engine they cannot occur, because
// deletions decline to a full recompute and border targets are always in the
// fragment graph.
type CCDense struct {
	g       *graph.Graph
	cid     []graph.VertexID           // component id by dense vertex index
	members map[graph.VertexID][]int32 // component id -> dense member indices
	over    map[graph.VertexID]graph.VertexID
}

// NewCCDense builds the state from a dense labelling of g (for example the
// output of seq.ConnectedComponentsDense). It takes ownership of labels.
func NewCCDense(g *graph.Graph, labels []graph.VertexID) *CCDense {
	s := &CCDense{g: g, cid: labels, members: make(map[graph.VertexID][]int32)}
	for i, c := range labels {
		s.members[c] = append(s.members[c], int32(i))
	}
	return s
}

// CID returns the component identifier of v and whether v is tracked. Every
// vertex of the bound graph is tracked.
func (s *CCDense) CID(v graph.VertexID) (graph.VertexID, bool) {
	if i := s.g.IndexOf(v); i >= 0 {
		return s.cid[i], true
	}
	if c, ok := s.over[v]; ok {
		return c, true
	}
	return 0, false
}

// Merge applies a batch of candidate component identifiers: whenever the
// candidate is smaller than a vertex's current cid, every member of that
// vertex's component is relabelled — touching only |AFF| vertices, exactly
// like CCState.Merge. Unknown vertices get a frozen min-folded label.
func (s *CCDense) Merge(updates map[graph.VertexID]graph.VertexID) {
	for v, nc := range updates {
		i := s.g.IndexOf(v)
		if i < 0 {
			oc, ok := s.over[v]
			if !ok {
				oc = v
			}
			if nc < oc {
				oc = nc
			}
			if s.over == nil {
				s.over = make(map[graph.VertexID]graph.VertexID)
			}
			s.over[v] = oc
			continue
		}
		oc := s.cid[i]
		if nc >= oc {
			continue
		}
		for _, mi := range s.members[oc] {
			s.cid[mi] = nc
		}
		s.members[nc] = append(s.members[nc], s.members[oc]...)
		delete(s.members, oc)
	}
}

// Rebind re-indexes the state against a new fragment graph after a batch of
// updates: vertices the graphs share keep their cid, fresh vertices start as
// their own singleton component, and departed vertices move to the frozen
// side map. A rebind against the already-bound graph is free.
func (s *CCDense) Rebind(g *graph.Graph) {
	if s.g == g {
		return
	}
	n := g.NumVertices()
	cid := make([]graph.VertexID, n)
	members := make(map[graph.VertexID][]int32, len(s.members))
	for i := 0; i < n; i++ {
		v := g.VertexAt(i)
		c := v
		if j := s.g.IndexOf(v); j >= 0 {
			c = s.cid[j]
		} else if oc, ok := s.over[v]; ok {
			c = oc
			delete(s.over, v)
		}
		cid[i] = c
		members[c] = append(members[c], int32(i))
	}
	for j, c := range s.cid {
		if v := s.g.VertexAt(j); g.IndexOf(v) < 0 {
			if s.over == nil {
				s.over = make(map[graph.VertexID]graph.VertexID)
			}
			s.over[v] = c
		}
	}
	s.g, s.cid, s.members = g, cid, members
}

// Graph returns the fragment graph the state is currently bound to.
func (s *CCDense) Graph() *graph.Graph { return s.g }

// Label returns the cid of the vertex at dense index i of the bound graph.
func (s *CCDense) Label(i int) graph.VertexID { return s.cid[i] }

// Over exposes the frozen labels of vertices outside the bound graph (nil
// when there are none); callers must treat it as read-only.
func (s *CCDense) Over() map[graph.VertexID]graph.VertexID { return s.over }

// CCState is the partial CC result of one fragment: a component identifier
// per vertex plus, per component, the list of member vertices ("root nodes"
// in Section 5.2). Keeping members per component makes a merge O(|AFF|): only
// the vertices of the smaller-priority component are relabelled, by following
// the direct links from the root.
type CCState struct {
	cid     map[graph.VertexID]graph.VertexID
	members map[graph.VertexID][]graph.VertexID
}

// NewCCState builds the state from an initial component labelling (for
// example the output of seq.ConnectedComponents on the fragment).
func NewCCState(labels map[graph.VertexID]graph.VertexID) *CCState {
	s := &CCState{
		cid:     make(map[graph.VertexID]graph.VertexID, len(labels)),
		members: make(map[graph.VertexID][]graph.VertexID),
	}
	for v, c := range labels {
		s.cid[v] = c
		s.members[c] = append(s.members[c], v)
	}
	return s
}

// CID returns the component identifier of v (and whether v is known).
func (s *CCState) CID(v graph.VertexID) (graph.VertexID, bool) {
	c, ok := s.cid[v]
	return c, ok
}

// Labels returns a copy of the vertex → component-identifier mapping.
func (s *CCState) Labels() map[graph.VertexID]graph.VertexID {
	out := make(map[graph.VertexID]graph.VertexID, len(s.cid))
	for v, c := range s.cid {
		out[v] = c
	}
	return out
}

// Merge applies updated (smaller) component identifiers for the given
// vertices and relabels the affected components. It returns the vertices
// whose identifier changed. The cost is O(|updates|) to locate the roots plus
// O(|AFF|) to relabel, independent of the fragment size.
func (s *CCState) Merge(updates map[graph.VertexID]graph.VertexID) []graph.VertexID {
	var changed []graph.VertexID
	for v, newCid := range updates {
		oldCid, ok := s.cid[v]
		if !ok {
			// Unknown vertex (a border copy not tracked locally): track it so
			// later merges see the value.
			s.cid[v] = newCid
			s.members[newCid] = append(s.members[newCid], v)
			changed = append(changed, v)
			continue
		}
		if newCid >= oldCid {
			continue // not an improvement; identifiers only decrease
		}
		// Relabel the whole component of v to newCid by following the
		// member list of its root.
		for _, member := range s.members[oldCid] {
			s.cid[member] = newCid
			changed = append(changed, member)
		}
		s.members[newCid] = append(s.members[newCid], s.members[oldCid]...)
		delete(s.members, oldCid)
	}
	// changed accumulates in the iteration order of the updates map; sort so
	// downstream shipping and assembly see a deterministic sequence.
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })
	return changed
}

// SimDelete incrementally maintains a graph-simulation relation when border
// matches are invalidated (the "edge deletion" view of Section 5.1): removed
// lists (query vertex, data vertex) pairs that are no longer matches; the
// relation is updated in place and the pairs removed as a consequence are
// returned (excluding the input pairs themselves). The cost is bounded by the
// affected area: only in-neighbours of removed vertices are re-checked.
func SimDelete(q, g *graph.Graph, sim seq.SimResult, removed []SimPair) []SimPair {
	queue := make([]SimPair, 0, len(removed))
	for _, p := range removed {
		if set := sim[p.Query]; set != nil && set[p.Data] {
			delete(set, p.Data)
			queue = append(queue, p)
		}
	}
	var cascade []SimPair
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		uq := q.IndexOf(p.Query)
		vd := g.IndexOf(p.Data)
		if uq < 0 || vd < 0 {
			continue
		}
		// Any in-neighbour v of p.Data matching an in-neighbour u of p.Query
		// may have lost its last witness for the edge (u, p.Query).
		for _, qe := range q.InEdges(uq) {
			uParent := int(qe.To)
			uParentID := q.VertexAt(uParent)
			for _, he := range g.InEdges(vd) {
				vParent := int(he.To)
				vParentID := g.VertexAt(vParent)
				if !sim[uParentID][vParentID] {
					continue
				}
				if hasWitness(q, uq, g, vParent, sim) {
					continue
				}
				delete(sim[uParentID], vParentID)
				pair := SimPair{Query: uParentID, Data: vParentID}
				cascade = append(cascade, pair)
				queue = append(queue, pair)
			}
		}
	}
	return cascade
}

// SimPair is one (query vertex, data vertex) entry of a simulation relation.
type SimPair struct {
	Query graph.VertexID
	Data  graph.VertexID
}

// hasWitness reports whether data vertex vParent still has an out-neighbour
// matching query vertex uChild.
func hasWitness(q *graph.Graph, uChild int, g *graph.Graph, vParent int, sim seq.SimResult) bool {
	uChildID := q.VertexAt(uChild)
	for _, he := range g.OutEdges(vParent) {
		if sim[uChildID][g.VertexAt(int(he.To))] {
			return true
		}
	}
	return false
}

// ISGD applies incremental stochastic gradient descent (Vinagre et al. [48]):
// given freshly updated factor vectors for some vertices, it retrains only
// the ratings incident to those vertices, leaving the rest of the model
// untouched. It returns the set of vertices whose factor vector was modified.
func ISGD(ratings []seq.Rating, factors seq.Factors, affected map[graph.VertexID]bool, cfg seq.SGDConfig) map[graph.VertexID]bool {
	touched := make(map[graph.VertexID]bool)
	ensure := func(v graph.VertexID) []float64 {
		if vec, ok := factors[v]; ok {
			return vec
		}
		vec := seq.InitFactor(v, cfg.Factors)
		factors[v] = vec
		return vec
	}
	for _, r := range ratings {
		if !affected[r.User] && !affected[r.Product] {
			continue
		}
		seq.SGDStep(ensure(r.User), ensure(r.Product), r.Value, cfg)
		touched[r.User] = true
		touched[r.Product] = true
	}
	return touched
}
