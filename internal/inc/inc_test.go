package inc

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"grape/internal/graph"
	"grape/internal/graphgen"
	"grape/internal/seq"
)

func TestSSSPDecreasePropagates(t *testing.T) {
	b := graph.NewBuilder(true)
	b.AddEdge(1, 2, 1, "")
	b.AddEdge(2, 3, 1, "")
	b.AddEdge(3, 4, 1, "")
	g := b.Build()
	dist := map[graph.VertexID]float64{1: 0, 2: 1, 3: 2, 4: 3}
	// A shortcut makes vertex 3 reachable at distance 0.5.
	changed := SSSPDecrease(g, dist, map[graph.VertexID]float64{3: 0.5})
	if dist[3] != 0.5 || dist[4] != 1.5 {
		t.Fatalf("distances after decrease: %v", dist)
	}
	if len(changed) != 2 {
		t.Fatalf("changed = %v, want {3,4}", changed)
	}
	// Increases are ignored.
	changed = SSSPDecrease(g, dist, map[graph.VertexID]float64{3: 10})
	if len(changed) != 0 || dist[3] != 0.5 {
		t.Fatalf("non-decreasing update must be ignored: %v %v", changed, dist)
	}
	// A vertex not present in the graph still has its distance recorded
	// (treated as +Inf before), it just propagates nothing.
	changed = SSSPDecrease(g, dist, map[graph.VertexID]float64{99: 1})
	if len(changed) != 1 || dist[99] != 1 {
		t.Fatalf("decrease for graph-unknown vertex: changed=%v dist=%v", changed, dist)
	}
}

// Regression: a decrease addressed to a vertex that exists in the graph but
// was never seen by the solution — the situation created by vertex inserts
// on dynamic graphs — must be treated as a decrease from +Inf and propagate.
// Before the dynamic-graph subsystem this path never fired, and vertices
// missing from both dist and the graph were silently dropped.
func TestSSSPDecreaseNewlyInsertedVertex(t *testing.T) {
	b := graph.NewBuilder(true)
	b.AddEdge(1, 2, 1, "")
	b.AddEdge(5, 6, 1, "") // 5, 6 "newly inserted": absent from dist
	g := b.Build()
	dist := map[graph.VertexID]float64{1: 0, 2: 1}

	changed := SSSPDecrease(g, dist, map[graph.VertexID]float64{5: 2})
	if dist[5] != 2 {
		t.Fatalf("dist[5] = %v, want 2 (missing treated as +Inf)", dist[5])
	}
	if dist[6] != 3 {
		t.Fatalf("dist[6] = %v, want 3 (propagation through new vertices)", dist[6])
	}
	if len(changed) != 2 {
		t.Fatalf("changed = %v, want {5,6}", changed)
	}
	// Unreached vertices stay untouched.
	if d, ok := dist[1]; !ok || d != 0 {
		t.Fatalf("dist[1] corrupted: %v %v", d, ok)
	}
}

// Property: applying incremental decreases to a stale solution yields exactly
// the distances of recomputing from scratch — the correctness contract of
// IncEval for SSSP.
func TestQuickSSSPIncrementalEqualsBatch(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 5
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(true)
		for i := 0; i < n; i++ {
			b.AddVertex(graph.VertexID(i), "")
		}
		for i := 0; i < 3*n; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s != d {
				b.AddEdge(graph.VertexID(s), graph.VertexID(d), float64(1+rng.Intn(9)), "")
			}
		}
		g := b.Build()
		src := graph.VertexID(rng.Intn(n))
		truth := seq.Dijkstra(g, src)

		// Stale state: everything infinite except the source; feed the true
		// distances of a random subset of vertices as "messages".
		dist := make(map[graph.VertexID]float64, n)
		for i := 0; i < n; i++ {
			dist[g.VertexAt(i)] = seq.Infinity
		}
		decreases := map[graph.VertexID]float64{src: 0}
		for v, d := range truth {
			if !math.IsInf(d, 1) && rng.Intn(2) == 0 {
				decreases[v] = d
			}
		}
		SSSPDecrease(g, dist, decreases)
		for v, d := range truth {
			if dist[v] != d && !(math.IsInf(dist[v], 1) && math.IsInf(d, 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCCStateMerge(t *testing.T) {
	s := NewCCState(map[graph.VertexID]graph.VertexID{
		1: 1, 2: 1, 3: 3, 4: 3, 5: 5,
	})
	if c, ok := s.CID(3); !ok || c != 3 {
		t.Fatalf("CID(3) = %v %v", c, ok)
	}
	// Component 3 learns the smaller id 1: both members relabel.
	changed := s.Merge(map[graph.VertexID]graph.VertexID{3: 1})
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })
	if len(changed) != 2 || changed[0] != 3 || changed[1] != 4 {
		t.Fatalf("changed = %v, want [3 4]", changed)
	}
	labels := s.Labels()
	if labels[3] != 1 || labels[4] != 1 {
		t.Fatalf("labels after merge: %v", labels)
	}
	// A non-improving update does nothing.
	if got := s.Merge(map[graph.VertexID]graph.VertexID{5: 9}); len(got) != 0 {
		t.Fatalf("non-improving merge changed %v", got)
	}
	// Unknown vertex becomes tracked.
	if got := s.Merge(map[graph.VertexID]graph.VertexID{42: 1}); len(got) != 1 || got[0] != 42 {
		t.Fatalf("unknown vertex merge = %v", got)
	}
	if c, _ := s.CID(42); c != 1 {
		t.Fatalf("CID(42) = %v, want 1", c)
	}
}

func TestCCStateChainOfMerges(t *testing.T) {
	// Simulates the cross-fragment cid propagation: 5 components merge into
	// one through successive smaller-cid messages.
	labels := map[graph.VertexID]graph.VertexID{}
	for v := graph.VertexID(0); v < 50; v++ {
		labels[v] = v / 10 * 10 // components {0..9}->0, {10..19}->10, ...
	}
	s := NewCCState(labels)
	s.Merge(map[graph.VertexID]graph.VertexID{40: 30})
	s.Merge(map[graph.VertexID]graph.VertexID{30: 20})
	s.Merge(map[graph.VertexID]graph.VertexID{20: 10})
	s.Merge(map[graph.VertexID]graph.VertexID{10: 0})
	for v, c := range s.Labels() {
		if c != 0 {
			t.Fatalf("vertex %d still labelled %d after chain of merges", v, c)
		}
	}
}

// Property: merging arbitrary decreasing updates never produces a label
// larger than the previous one and keeps labels consistent within merged
// groups.
func TestQuickCCMergeMonotone(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 5
		rng := rand.New(rand.NewSource(seed))
		labels := map[graph.VertexID]graph.VertexID{}
		for v := 0; v < n; v++ {
			labels[graph.VertexID(v)] = graph.VertexID(rng.Intn(v + 1))
		}
		s := NewCCState(labels)
		before := s.Labels()
		ups := map[graph.VertexID]graph.VertexID{}
		for k := 0; k < 5; k++ {
			ups[graph.VertexID(rng.Intn(n))] = graph.VertexID(rng.Intn(n))
		}
		s.Merge(ups)
		after := s.Labels()
		for v := range before {
			if after[v] > before[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSimDeleteCascades(t *testing.T) {
	// Pattern A -> B -> C; data chain a -> b -> c. Removing (C, c) must
	// cascade to (B, b) and then (A, a).
	qb := graph.NewBuilder(true)
	qb.AddVertex(0, "A")
	qb.AddVertex(1, "B")
	qb.AddVertex(2, "C")
	qb.AddEdge(0, 1, 1, "")
	qb.AddEdge(1, 2, 1, "")
	q := qb.Build()

	gb := graph.NewBuilder(true)
	gb.AddVertex(10, "A")
	gb.AddVertex(11, "B")
	gb.AddVertex(12, "C")
	gb.AddEdge(10, 11, 1, "")
	gb.AddEdge(11, 12, 1, "")
	g := gb.Build()

	sim := seq.Simulation(q, g)
	if !sim.Matches() {
		t.Fatalf("precondition: chain must match")
	}
	cascade := SimDelete(q, g, sim, []SimPair{{Query: 2, Data: 12}})
	if len(cascade) != 2 {
		t.Fatalf("cascade = %v, want 2 removals", cascade)
	}
	if sim[0][10] || sim[1][11] || sim[2][12] {
		t.Fatalf("relation not emptied by cascade: %v", sim)
	}
	// Removing an already-removed pair is a no-op.
	if got := SimDelete(q, g, sim, []SimPair{{Query: 2, Data: 12}}); len(got) != 0 {
		t.Fatalf("repeat removal should cascade nothing, got %v", got)
	}
}

func TestSimDeleteStopsWhenWitnessRemains(t *testing.T) {
	// Data vertex b has two C children; removing one keeps (B,b) valid.
	qb := graph.NewBuilder(true)
	qb.AddVertex(0, "B")
	qb.AddVertex(1, "C")
	qb.AddEdge(0, 1, 1, "")
	q := qb.Build()

	gb := graph.NewBuilder(true)
	gb.AddVertex(11, "B")
	gb.AddVertex(12, "C")
	gb.AddVertex(13, "C")
	gb.AddEdge(11, 12, 1, "")
	gb.AddEdge(11, 13, 1, "")
	g := gb.Build()

	sim := seq.Simulation(q, g)
	cascade := SimDelete(q, g, sim, []SimPair{{Query: 1, Data: 12}})
	if len(cascade) != 0 {
		t.Fatalf("cascade = %v, want none (witness 13 remains)", cascade)
	}
	if !sim[0][11] || !sim[1][13] {
		t.Fatalf("surviving matches were removed: %v", sim)
	}
}

// Property: incremental deletion equals recomputing the simulation on the
// data graph with the deleted matches' vertices forbidden for those query
// nodes. We check a weaker but meaningful invariant: after SimDelete, the
// relation is still a valid simulation relation restricted to the surviving
// pairs.
func TestQuickSimDeleteKeepsValidity(t *testing.T) {
	f := func(seed int64) bool {
		g := graphgen.KnowledgeBase(80, 3, 4, graphgen.Config{Seed: seed, Labels: 4})
		q := graphgen.Pattern(g, 4, 6, seed+11)
		sim := seq.Simulation(q, g)
		// Remove a few random pairs.
		rng := rand.New(rand.NewSource(seed))
		var removals []SimPair
		for uq := 0; uq < q.NumVertices(); uq++ {
			u := q.VertexAt(uq)
			for v := range sim[u] {
				if rng.Intn(5) == 0 {
					removals = append(removals, SimPair{Query: u, Data: v})
				}
			}
		}
		SimDelete(q, g, sim, removals)
		// Validity: every surviving pair still has witnesses among surviving
		// pairs.
		for uq := 0; uq < q.NumVertices(); uq++ {
			u := q.VertexAt(uq)
			for v := range sim[u] {
				vi := g.IndexOf(v)
				for _, qe := range q.OutEdges(uq) {
					child := q.VertexAt(int(qe.To))
					ok := false
					for _, he := range g.OutEdges(vi) {
						if sim[child][g.VertexAt(int(he.To))] {
							ok = true
							break
						}
					}
					if !ok {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestISGDOnlyTouchesAffected(t *testing.T) {
	g := graphgen.Bipartite(100, 20, 5, graphgen.Config{Seed: 3})
	ratings := seq.RatingsFromGraph(g)
	cfg := seq.DefaultSGDConfig()
	factors := seq.Train(ratings, cfg, nil)
	snapshot := factors.Clone()

	affectedUser := ratings[0].User
	touched := ISGD(ratings, factors, map[graph.VertexID]bool{affectedUser: true}, cfg)
	if !touched[affectedUser] {
		t.Fatalf("affected user not retrained")
	}
	// Vertices not incident to the affected user keep their factors.
	incident := map[graph.VertexID]bool{}
	for _, r := range ratings {
		if r.User == affectedUser {
			incident[r.Product] = true
		}
	}
	for v, vec := range factors {
		if v == affectedUser || incident[v] {
			continue
		}
		for i := range vec {
			if vec[i] != snapshot[v][i] {
				t.Fatalf("untouched vertex %d was modified", v)
			}
		}
	}
	// ISGD with new observations improves the fit on those observations.
	affected := ratings[:0:0]
	for _, r := range ratings {
		if r.User == affectedUser {
			affected = append(affected, r)
		}
	}
	if len(affected) > 0 {
		before := seq.RMSE(snapshot, affected)
		after := seq.RMSE(factors, affected)
		if after > before+1e-9 {
			t.Fatalf("ISGD worsened the affected ratings: %v -> %v", before, after)
		}
	}
}

func TestISGDCreatesMissingFactors(t *testing.T) {
	ratings := []seq.Rating{{User: 1, Product: 100, Value: 4}}
	factors := seq.Factors{}
	cfg := seq.DefaultSGDConfig()
	touched := ISGD(ratings, factors, map[graph.VertexID]bool{1: true}, cfg)
	if !touched[1] || !touched[100] {
		t.Fatalf("touched = %v", touched)
	}
	if _, ok := factors[100]; !ok {
		t.Fatalf("missing product factor was not created")
	}
}
