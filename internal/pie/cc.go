package pie

import (
	"fmt"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/inc"
	"grape/internal/mpi"
	"grape/internal/seq"
)

// CC is the PIE program for connected components (Section 5.2). The query is
// ignored (CC is a whole-graph computation); the assembled answer is a map
// from every vertex to its component identifier, defined as the smallest
// vertex ID in the component — the same convention as seq.ConnectedComponents
// so the parallel and sequential answers are directly comparable.
//
// PEval runs a sequential DFS labelling on the fragment and declares a cid
// variable per border node. IncEval merges components when a smaller cid
// arrives, touching only the members of the relabelled component (bounded by
// |AFF|). The aggregateMsg policy is min, so cids decrease monotonically and
// the Assurance Theorem applies.
type CC struct{}

// ccState wraps the dense incremental CC labelling: component identifiers in
// a flat slice indexed by the fragment graph's vertex index, relabelled via
// per-component member lists of dense indices (inc.CCDense).
type ccState struct {
	state *inc.CCDense
}

// Name implements core.Program.
func (CC) Name() string { return "CC" }

// PEval implements core.Program.
func (CC) PEval(ctx *core.Context) error {
	g := ctx.Fragment.Graph

	// Message preamble: a cid variable per border node, initialized to the
	// node's own ID (the largest value it can ever take).
	for _, v := range ctx.Fragment.InBorder {
		ctx.Declare(v, 0, float64(v), nil)
	}
	for _, v := range ctx.Fragment.OutBorder {
		ctx.Declare(v, 0, float64(v), nil)
	}

	st, _ := ctx.State.(*ccState)
	if st == nil {
		st = &ccState{state: inc.NewCCDense(g, seq.ConnectedComponentsDensePar(g, ctx.Pool()))}
		ctx.State = st
	} else {
		st.state.Rebind(g)
	}
	shipBorderCIDs(ctx, st)
	return nil
}

// IncEval implements core.Program: merge components whose border nodes
// received a smaller cid.
func (CC) IncEval(ctx *core.Context, msgs []mpi.Update) error {
	st, ok := ctx.State.(*ccState)
	if !ok {
		return fmt.Errorf("pie: CC IncEval called before PEval")
	}
	st.state.Rebind(ctx.Fragment.Graph)
	updates := make(map[graph.VertexID]graph.VertexID, len(msgs))
	for _, m := range msgs {
		if m.Vertex == core.RawMessageVertex {
			continue
		}
		updates[graph.VertexID(m.Vertex)] = graph.VertexID(int64(m.Value))
	}
	st.state.Merge(updates)
	shipBorderCIDs(ctx, st)
	return nil
}

// EvalDelta implements core.DeltaProgram: edge and vertex insertions only
// ever merge components, which is exactly what the bounded CC merge in
// internal/inc does, so they are absorbed incrementally. Deletions can split
// a component — the cid order has no way to grow identifiers back — so they
// decline and the view is recomputed. Reweights are a no-op for CC.
func (CC) EvalDelta(ctx *core.Context, d core.FragmentDelta) (bool, error) {
	st, ok := ctx.State.(*ccState)
	if !ok {
		return false, fmt.Errorf("pie: CC EvalDelta called before PEval")
	}
	// Rebinding to the post-batch graph registers every inserted vertex as
	// its own singleton component, so cidOf below always finds a label.
	st.state.Rebind(ctx.Fragment.Graph)
	cidOf := func(v graph.VertexID) graph.VertexID {
		if c, ok := st.state.CID(v); ok {
			return c
		}
		// Unknown vertex (not in the rebound graph — cannot happen for batch
		// ops, kept for safety): track it as its own singleton component.
		st.state.Merge(map[graph.VertexID]graph.VertexID{v: v})
		return v
	}
	for _, op := range d.Ops {
		switch op.Kind {
		case graph.UpdateAddVertex:
			cidOf(op.Src)
		case graph.UpdateAddEdge:
			cu, cv := cidOf(op.Src), cidOf(op.Dst)
			switch {
			case cu < cv:
				st.state.Merge(map[graph.VertexID]graph.VertexID{op.Dst: cu})
			case cv < cu:
				st.state.Merge(map[graph.VertexID]graph.VertexID{op.Src: cv})
			}
		case graph.UpdateReweightEdge:
			// CC ignores weights.
		case graph.UpdateRemoveEdge, graph.UpdateRemoveVertex:
			return false, nil // deletions can split components
		}
	}
	shipBorderCIDs(ctx, st)
	// Re-ship the cid of vertices that gained a new mirror fragment.
	for _, v := range d.NewInBorder {
		if cid, ok := st.state.CID(v); ok {
			ctx.SetVar(v, 0, float64(cid), nil)
			ctx.MarkDirty(v, 0)
		}
	}
	return true, nil
}

func shipBorderCIDs(ctx *core.Context, st *ccState) {
	ship := func(v graph.VertexID) {
		if cid, ok := st.state.CID(v); ok {
			ctx.SetVar(v, 0, float64(cid), nil)
		}
	}
	for _, v := range ctx.Fragment.InBorder {
		ship(v)
	}
	for _, v := range ctx.Fragment.OutBorder {
		ship(v)
	}
}

// Assemble implements core.Program: collect the cid of every owned vertex.
func (CC) Assemble(q core.Query, ctxs []*core.Context) (any, error) {
	out := make(map[graph.VertexID]graph.VertexID)
	for _, ctx := range ctxs {
		st, ok := ctx.State.(*ccState)
		if !ok {
			continue
		}
		for _, v := range ctx.Fragment.Local {
			if cid, ok := st.state.CID(v); ok {
				out[v] = cid
			}
		}
	}
	return out, nil
}

// Aggregate implements core.Program: component identifiers only decrease.
func (CC) Aggregate(existing, incoming mpi.Update) mpi.Update {
	return core.MinAggregate(existing, incoming)
}

// AsyncSafe implements core.AsyncCapable: component identifiers form a
// min-semilattice, so asynchronous delivery order cannot change the labels
// the fixpoint converges to.
func (CC) AsyncSafe() bool { return true }

// ParallelSafe implements core.ParallelCapable: PEval labels the fragment
// with a pool-chunked union-find (seq.ConnectedComponentsDensePar) that
// assigns exactly the min-external-ID labels the sequential DFS produces.
func (CC) ParallelSafe() bool { return true }
