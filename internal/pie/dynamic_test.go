package pie

import (
	"math"
	"math/rand"
	"testing"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/seq"
	"grape/internal/workload"
)

// randomUpdateBatch generates a mixed batch of ops against the current graph
// state: mostly edge inserts (the monotone class SSSP/CC absorb
// incrementally) with deletions, reweights and vertex ops sprinkled in so
// the full-recompute fallback is exercised too. The avoid set protects
// vertices (the SSSP source) from removal.
func randomUpdateBatch(rng *rand.Rand, cur *graph.Graph, size int, nextID *int64, avoid map[graph.VertexID]bool) []graph.Update {
	var batch []graph.Update
	edges := cur.Edges()
	for len(batch) < size {
		switch rng.Intn(12) {
		case 0: // new vertex
			*nextID++
			batch = append(batch, graph.AddVertexUpdate(graph.VertexID(2_000_000+*nextID), ""))
		case 1: // remove a vertex
			v := cur.VertexAt(rng.Intn(cur.NumVertices()))
			if !avoid[v] {
				batch = append(batch, graph.RemoveVertexUpdate(v))
			}
		case 2: // remove an edge
			if len(edges) > 0 {
				e := edges[rng.Intn(len(edges))]
				batch = append(batch, graph.RemoveEdgeUpdate(e.Src, e.Dst))
			}
		case 3: // reweight an edge (up or down)
			if len(edges) > 0 {
				e := edges[rng.Intn(len(edges))]
				batch = append(batch, graph.ReweightEdgeUpdate(e.Src, e.Dst, 0.5+rng.Float64()*9))
			}
		default: // insert an edge, sometimes to a brand new vertex
			u := cur.VertexAt(rng.Intn(cur.NumVertices()))
			var v graph.VertexID
			if rng.Intn(5) == 0 {
				*nextID++
				v = graph.VertexID(2_000_000 + *nextID)
			} else {
				v = cur.VertexAt(rng.Intn(cur.NumVertices()))
			}
			if u != v {
				batch = append(batch, graph.AddEdgeUpdate(u, v, 0.5+rng.Float64()*9, ""))
			}
		}
	}
	return batch
}

func sameDist(a, b float64) bool {
	const eps = 1e-9
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) < eps
}

// TestMaterializedViewsStayFreshOver100Batches is the acceptance test of the
// dynamic-graph subsystem: materialized SSSP and CC views over the
// ScaleSmall road-network workload must stay equal to a from-scratch
// recompute after every batch of a randomized 100-batch update stream.
func TestMaterializedViewsStayFreshOver100Batches(t *testing.T) {
	g, err := workload.Load(workload.Traffic, workload.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	source := workload.Sources(g, 1, 7)[0]

	s, err := core.NewSession(g, core.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ssspView, err := s.Materialize(source, SSSP{})
	if err != nil {
		t.Fatal(err)
	}
	ccView, err := s.Materialize(nil, CC{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(4242))
	cur := g
	var nextID int64
	avoid := map[graph.VertexID]bool{source: true}
	for batchNo := 0; batchNo < 100; batchNo++ {
		batch := randomUpdateBatch(rng, cur, 1+rng.Intn(5), &nextID, avoid)
		if _, err := s.ApplyUpdates(batch); err != nil {
			t.Fatalf("batch %d: %v", batchNo, err)
		}
		cur = graph.ApplyUpdates(cur, batch)

		// From-scratch ground truth on the fully updated graph.
		wantDist := seq.Dijkstra(cur, source)
		wantCC := seq.ConnectedComponents(cur)

		out, verr := ssspView.Result()
		if verr != nil {
			t.Fatalf("batch %d: sssp view error: %v", batchNo, verr)
		}
		gotDist := out.(map[graph.VertexID]float64)
		if len(gotDist) != len(wantDist) {
			t.Fatalf("batch %d: sssp view covers %d vertices, want %d", batchNo, len(gotDist), len(wantDist))
		}
		for v, want := range wantDist {
			if got, ok := gotDist[v]; !ok || !sameDist(got, want) {
				t.Fatalf("batch %d (%v): sssp dist of %d: got %v want %v", batchNo, batch, v, got, want)
			}
		}

		out, verr = ccView.Result()
		if verr != nil {
			t.Fatalf("batch %d: cc view error: %v", batchNo, verr)
		}
		gotCC := out.(map[graph.VertexID]graph.VertexID)
		if len(gotCC) != len(wantCC) {
			t.Fatalf("batch %d: cc view covers %d vertices, want %d", batchNo, len(gotCC), len(wantCC))
		}
		for v, want := range wantCC {
			if got, ok := gotCC[v]; !ok || got != want {
				t.Fatalf("batch %d (%v): cc of %d: got %v want %v", batchNo, batch, v, got, want)
			}
		}
	}

	// The stream mixes monotone and non-monotone batches: both maintenance
	// modes must have fired.
	ss, cs := ssspView.Stats(), ccView.Stats()
	if ss.Incremental == 0 || cs.Incremental == 0 {
		t.Fatalf("incremental maintenance never fired: sssp=%+v cc=%+v", ss, cs)
	}
	if ss.Recomputed == 0 || cs.Recomputed == 0 {
		t.Fatalf("full-recompute fallback never fired: sssp=%+v cc=%+v", ss, cs)
	}
	if ss.Maintenances != 100 || cs.Maintenances != 100 {
		t.Fatalf("maintenance count: sssp=%+v cc=%+v", ss, cs)
	}
}

// TestReweightOfSameBatchInsert is a regression test: a batch that inserts
// an edge and then reweights it cannot be absorbed incrementally (the old
// weight is unknown and relaxations with the inserted weight already
// happened), so the view must fall back to a full recompute — in both the
// weight-increase and weight-decrease directions.
func TestReweightOfSameBatchInsert(t *testing.T) {
	for _, tc := range []struct {
		name            string
		insertW, finalW float64
		wantDist3       float64
	}{
		{"increase", 1, 5, 6},
		{"decrease", 5, 1, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := graph.NewBuilder(true)
			b.AddEdge(1, 2, 1, "")
			g := b.Build()
			s, err := core.NewSession(g, core.Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			view, err := s.Materialize(graph.VertexID(1), SSSP{})
			if err != nil {
				t.Fatal(err)
			}
			stats, err := s.ApplyUpdates([]graph.Update{
				graph.AddEdgeUpdate(2, 3, tc.insertW, ""),
				graph.ReweightEdgeUpdate(2, 3, tc.finalW),
			})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Recomputed != 1 {
				t.Fatalf("same-batch insert+reweight must recompute: %+v", stats)
			}
			out, verr := view.Result()
			if verr != nil {
				t.Fatal(verr)
			}
			if d := out.(map[graph.VertexID]float64); d[3] != tc.wantDist3 {
				t.Fatalf("dist[3] = %v, want %v", d[3], tc.wantDist3)
			}
		})
	}
}

// TestMaterializedViewsDirectedGraph runs a shorter stream over the directed
// social-network surrogate to cover directed-edge routing and cid
// propagation through in-edges.
func TestMaterializedViewsDirectedGraph(t *testing.T) {
	g, err := workload.Load(workload.LiveJournal, workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	source := workload.Sources(g, 1, 9)[0]
	s, err := core.NewSession(g, core.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ssspView, err := s.Materialize(source, SSSP{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	cur := g
	var nextID int64
	avoid := map[graph.VertexID]bool{source: true}
	for batchNo := 0; batchNo < 30; batchNo++ {
		batch := randomUpdateBatch(rng, cur, 1+rng.Intn(4), &nextID, avoid)
		if _, err := s.ApplyUpdates(batch); err != nil {
			t.Fatalf("batch %d: %v", batchNo, err)
		}
		cur = graph.ApplyUpdates(cur, batch)
		wantDist := seq.Dijkstra(cur, source)
		out, verr := ssspView.Result()
		if verr != nil {
			t.Fatalf("batch %d: view error: %v", batchNo, verr)
		}
		gotDist := out.(map[graph.VertexID]float64)
		for v, want := range wantDist {
			if got := gotDist[v]; !sameDist(got, want) {
				t.Fatalf("batch %d (%v): dist of %d: got %v want %v", batchNo, batch, v, got, want)
			}
		}
	}
}
