package pie

import (
	"fmt"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/inc"
	"grape/internal/mpi"
	"grape/internal/seq"
)

// Sim is the PIE program for graph-pattern matching via graph simulation
// (Section 5.1). The query is the pattern graph; the assembled answer is the
// maximum simulation relation Q(G) as a seq.SimResult.
//
// PEval runs the sequential simulation algorithm of Henzinger-Henzinger-Kopke
// on the fragment, with one twist that the paper's candidate set Ci encodes:
// the match status of border copies owned by other fragments is not decided
// locally but read from the Boolean update parameters x_(u,v), which start
// optimistic (true) and can only be flipped to false. IncEval is the
// incremental simulation algorithm under edge deletion: an x_(u,v) flipping
// to false is treated as deleting the cross edges into v, and the affected
// area is re-checked. Aggregation is min over {false < true}, so updates are
// monotonic and the Assurance Theorem applies.
//
// UseIndex enables the neighbourhood-index optimization of Exp-3: candidates
// are pre-filtered with an index built offline per fragment, exactly as the
// optimized sequential algorithm would do.
type Sim struct {
	// UseIndex turns on neighbourhood-index candidate filtering.
	UseIndex bool
}

type simState struct {
	sim seq.SimResult
	idx *seq.SimIndex
}

// Name implements core.Program.
func (s Sim) Name() string {
	if s.UseIndex {
		return "Sim(indexed)"
	}
	return "Sim"
}

// PEval implements core.Program.
func (s Sim) PEval(ctx *core.Context) error {
	q, ok := ctx.Query.(*graph.Graph)
	if !ok {
		return fmt.Errorf("pie: Sim query must be a *graph.Graph pattern, got %T", ctx.Query)
	}
	g := ctx.Fragment.Graph

	// Message preamble: a Boolean variable x_(u,v) per (query node, border
	// node), true iff the labels are compatible (an incompatible pair can
	// never match, so it starts false and is never shipped).
	declare := func(v graph.VertexID) {
		for uq := 0; uq < q.NumVertices(); uq++ {
			val := 0.0
			if q.Label(uq) == g.LabelOf(v) {
				val = 1.0
			}
			ctx.Declare(v, int64(uq), val, nil)
		}
	}
	for _, v := range ctx.Fragment.InBorder {
		declare(v)
	}
	for _, v := range ctx.Fragment.OutBorder {
		declare(v)
	}

	st, _ := ctx.State.(*simState)
	if st == nil {
		st = &simState{}
		if s.UseIndex {
			st.idx = seq.BuildSimIndex(g)
		}
		ctx.State = st
	}

	st.sim = s.localSimulation(ctx, q, g, st.idx)
	shipFalsifiedMatches(ctx, q, g, st.sim)
	return nil
}

// localSimulation computes the fragment-local maximum simulation relation.
// Owned vertices are refined as usual; border copies owned by other fragments
// are frozen at their x_(u,v) values, because their outgoing edges live in
// another fragment and only the owner can falsify them.
func (s Sim) localSimulation(ctx *core.Context, q, g *graph.Graph, idx *seq.SimIndex) seq.SimResult {
	nq := q.NumVertices()
	frag := ctx.Fragment
	sim := make([]map[int]bool, nq)
	frozen := make([]bool, g.NumVertices())
	for i := 0; i < g.NumVertices(); i++ {
		frozen[i] = !frag.Owns(g.VertexAt(i))
	}

	for uq := 0; uq < nq; uq++ {
		cands := make(map[int]bool)
		for v := 0; v < g.NumVertices(); v++ {
			id := g.VertexAt(v)
			if frozen[v] {
				// Border copy: status comes from the update parameter.
				if ctx.VarValue(id, int64(uq), 0) > 0 {
					cands[v] = true
				}
				continue
			}
			if g.Label(v) != q.Label(uq) {
				continue
			}
			if idx != nil && !simIndexAdmits(q, uq, g, v, idx) {
				continue
			}
			cands[v] = true
		}
		sim[uq] = cands
	}

	// Refine owned vertices to the local greatest fixpoint.
	changed := true
	for changed {
		changed = false
		for uq := 0; uq < nq; uq++ {
			for v := range sim[uq] {
				if frozen[v] {
					continue
				}
				if !simHasWitnesses(q, uq, g, v, sim) {
					delete(sim[uq], v)
					changed = true
				}
			}
		}
	}

	out := make(seq.SimResult, nq)
	for uq := 0; uq < nq; uq++ {
		set := make(map[graph.VertexID]bool, len(sim[uq]))
		for v := range sim[uq] {
			set[g.VertexAt(v)] = true
		}
		out[q.VertexAt(uq)] = set
	}
	return out
}

func simHasWitnesses(q *graph.Graph, uq int, g *graph.Graph, v int, sim []map[int]bool) bool {
	for _, qe := range q.OutEdges(uq) {
		target := int(qe.To)
		found := false
		for _, he := range g.OutEdges(v) {
			if sim[target][int(he.To)] {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func simIndexAdmits(q *graph.Graph, uq int, g *graph.Graph, v int, idx *seq.SimIndex) bool {
	// The index stores, per data vertex, the labels of its out-neighbours;
	// reuse the seq package's admission rule through SimulationWithIndex's
	// helper semantics: every required child label must be reachable.
	for _, qe := range q.OutEdges(uq) {
		if !idx.HasOutLabel(v, q.Label(int(qe.To))) {
			return false
		}
	}
	return true
}

// IncEval implements core.Program: x_(u,v) flipping to false for border
// copies is treated as an edge deletion and propagated through the affected
// area with the incremental simulation algorithm.
func (s Sim) IncEval(ctx *core.Context, msgs []mpi.Update) error {
	q, ok := ctx.Query.(*graph.Graph)
	if !ok {
		return fmt.Errorf("pie: Sim query must be a *graph.Graph pattern, got %T", ctx.Query)
	}
	st, ok := ctx.State.(*simState)
	if !ok {
		return fmt.Errorf("pie: Sim IncEval called before PEval")
	}
	g := ctx.Fragment.Graph

	var removals []inc.SimPair
	for _, m := range msgs {
		if m.Vertex == core.RawMessageVertex || m.Value > 0 {
			continue // only "became false" matters
		}
		removals = append(removals, inc.SimPair{
			Query: q.VertexAt(int(m.Key)),
			Data:  graph.VertexID(m.Vertex),
		})
	}
	if len(removals) > 0 {
		inc.SimDelete(q, g, st.sim, removals)
	}
	shipFalsifiedMatches(ctx, q, g, st.sim)
	return nil
}

// shipFalsifiedMatches records x_(u,v) = false for every border node that is
// not (or no longer) a match of u. Values only go from true to false, so the
// engine ships each falsification at most once.
func shipFalsifiedMatches(ctx *core.Context, q, g *graph.Graph, sim seq.SimResult) {
	ship := func(v graph.VertexID) {
		if !ctx.Fragment.Owns(v) {
			return // only the owner can falsify a vertex's matches
		}
		for uq := 0; uq < q.NumVertices(); uq++ {
			u := q.VertexAt(uq)
			if !sim[u][v] {
				ctx.SetVar(v, int64(uq), 0, nil)
			}
		}
	}
	for _, v := range ctx.Fragment.InBorder {
		ship(v)
	}
	for _, v := range ctx.Fragment.OutBorder {
		ship(v)
	}
}

// Assemble implements core.Program: the union of the per-fragment relations
// restricted to owned vertices.
func (Sim) Assemble(q core.Query, ctxs []*core.Context) (any, error) {
	pattern, ok := q.(*graph.Graph)
	if !ok {
		return nil, fmt.Errorf("pie: Sim query must be a *graph.Graph pattern, got %T", q)
	}
	out := make(seq.SimResult, pattern.NumVertices())
	for uq := 0; uq < pattern.NumVertices(); uq++ {
		out[pattern.VertexAt(uq)] = make(map[graph.VertexID]bool)
	}
	for _, ctx := range ctxs {
		st, ok := ctx.State.(*simState)
		if !ok {
			continue
		}
		for uq := 0; uq < pattern.NumVertices(); uq++ {
			u := pattern.VertexAt(uq)
			for v := range st.sim[u] {
				if ctx.Fragment.Owns(v) {
					out[u][v] = true
				}
			}
		}
	}
	return out, nil
}

// Aggregate implements core.Program: false (0) wins over true (1), the
// monotonic order of Section 5.1.
func (Sim) Aggregate(existing, incoming mpi.Update) mpi.Update {
	return core.MinAggregate(existing, incoming)
}
