package pie

import (
	"math"
	"testing"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/graphgen"
	"grape/internal/partition"
	"grape/internal/seq"
)

// run executes a PIE program on g with the given worker count and strategy.
func run(t *testing.T, g *graph.Graph, q core.Query, prog core.Program, workers int, strat partition.Strategy) *core.Result {
	t.Helper()
	res, err := core.New(core.Options{Workers: workers, Strategy: strat}).Run(g, q, prog)
	if err != nil {
		t.Fatalf("%s on %d workers (%s): %v", prog.Name(), workers, strat.Name(), err)
	}
	return res
}

var testStrategies = []partition.Strategy{partition.Hash{}, partition.Multilevel{}, partition.LDG{}}

// --- SSSP -------------------------------------------------------------------

func ssspGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"road":   graphgen.RoadNetwork(14, 14, graphgen.Config{Seed: 21}),
		"social": graphgen.SocialNetwork(500, 5, graphgen.Config{Seed: 22, Labels: 10}),
		"kb":     graphgen.KnowledgeBase(400, 3, 10, graphgen.Config{Seed: 23, Labels: 30}),
	}
}

func TestSSSPMatchesSequential(t *testing.T) {
	for name, g := range ssspGraphs() {
		sources := []graph.VertexID{g.VertexAt(0), g.VertexAt(g.NumVertices() / 2), g.VertexAt(g.NumVertices() - 1)}
		for _, src := range sources {
			want := seq.Dijkstra(g, src)
			for _, workers := range []int{1, 4, 8} {
				for _, strat := range testStrategies {
					res := run(t, g, src, SSSP{}, workers, strat)
					got := res.Output.(map[graph.VertexID]float64)
					if len(got) != g.NumVertices() {
						t.Fatalf("%s src=%d n=%d %s: %d results, want %d",
							name, src, workers, strat.Name(), len(got), g.NumVertices())
					}
					for v, d := range want {
						if math.Abs(got[v]-d) > 1e-9 && !(math.IsInf(got[v], 1) && math.IsInf(d, 1)) {
							t.Fatalf("%s src=%d n=%d %s: dist(%d) = %v, want %v",
								name, src, workers, strat.Name(), v, got[v], d)
						}
					}
				}
			}
		}
	}
}

func TestSSSPSuperstepsScaleWithDiameter(t *testing.T) {
	// A road network (large diameter) must need more supersteps than a
	// social network (small diameter) under the same partitioning — the
	// effect behind Table 1 and Fig 6(a).
	road := graphgen.RoadNetwork(20, 20, graphgen.Config{Seed: 31})
	social := graphgen.SocialNetwork(400, 5, graphgen.Config{Seed: 32, Labels: 5})
	roadRes := run(t, road, road.VertexAt(0), SSSP{}, 8, partition.Hash{})
	socialRes := run(t, social, social.VertexAt(social.NumVertices()-1), SSSP{}, 8, partition.Hash{})
	if roadRes.Stats.Supersteps <= socialRes.Stats.Supersteps {
		t.Fatalf("road supersteps (%d) should exceed social supersteps (%d)",
			roadRes.Stats.Supersteps, socialRes.Stats.Supersteps)
	}
}

func TestSSSPRejectsBadQuery(t *testing.T) {
	g := graphgen.RoadNetwork(4, 4, graphgen.Config{Seed: 1})
	_, err := core.New(core.Options{Workers: 2}).Run(g, "not a vertex", SSSP{})
	if err == nil {
		t.Fatalf("SSSP must reject non-vertex queries")
	}
}

func TestSSSPUnknownSource(t *testing.T) {
	g := graphgen.RoadNetwork(5, 5, graphgen.Config{Seed: 2})
	res := run(t, g, graph.VertexID(10_000), SSSP{}, 3, partition.Hash{})
	got := res.Output.(map[graph.VertexID]float64)
	for v, d := range got {
		if !math.IsInf(d, 1) {
			t.Fatalf("unknown source must leave all distances infinite, dist(%d)=%v", v, d)
		}
	}
}

// --- CC ---------------------------------------------------------------------

func TestCCMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"road":      graphgen.RoadNetwork(12, 12, graphgen.Config{Seed: 41}),
		"social":    graphgen.SocialNetwork(400, 4, graphgen.Config{Seed: 42, Labels: 5}),
		"kb":        graphgen.KnowledgeBase(300, 2, 5, graphgen.Config{Seed: 43, Labels: 10}),
		"fragments": multiComponentGraph(),
	}
	for name, g := range graphs {
		want := seq.ConnectedComponents(g)
		for _, workers := range []int{1, 3, 6} {
			for _, strat := range testStrategies {
				res := run(t, g, nil, CC{}, workers, strat)
				got := res.Output.(map[graph.VertexID]graph.VertexID)
				if len(got) != len(want) {
					t.Fatalf("%s n=%d %s: %d labels, want %d", name, workers, strat.Name(), len(got), len(want))
				}
				for v, cid := range want {
					if got[v] != cid {
						t.Fatalf("%s n=%d %s: cid(%d) = %d, want %d", name, workers, strat.Name(), v, got[v], cid)
					}
				}
			}
		}
	}
}

// multiComponentGraph builds a graph with several well-separated components
// of different sizes.
func multiComponentGraph() *graph.Graph {
	b := graph.NewBuilder(false)
	id := graph.VertexID(0)
	for c := 0; c < 6; c++ {
		size := 5 + c*3
		first := id
		for i := 0; i < size-1; i++ {
			b.AddEdge(id, id+1, 1, "")
			id++
		}
		id++
		// close a cycle inside the component
		b.AddEdge(id-1, first, 1, "")
	}
	b.AddVertex(10_000, "") // isolated vertex
	return b.Build()
}

// --- Sim --------------------------------------------------------------------

func simGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"social": graphgen.SocialNetwork(400, 4, graphgen.Config{Seed: 51, Labels: 8}),
		"kb":     graphgen.KnowledgeBase(350, 3, 6, graphgen.Config{Seed: 52, Labels: 12}),
	}
}

func TestSimMatchesSequential(t *testing.T) {
	for name, g := range simGraphs() {
		for patternSeed := int64(0); patternSeed < 4; patternSeed++ {
			q := graphgen.Pattern(g, 5, 9, patternSeed)
			want := seq.Simulation(q, g)
			for _, workers := range []int{1, 4, 7} {
				for _, strat := range testStrategies {
					res := run(t, g, q, Sim{}, workers, strat)
					got := res.Output.(seq.SimResult)
					if got.Count() != want.Count() {
						t.Fatalf("%s pattern=%d n=%d %s: %d pairs, want %d",
							name, patternSeed, workers, strat.Name(), got.Count(), want.Count())
					}
					for u, set := range want {
						for v := range set {
							if !got[u][v] {
								t.Fatalf("%s pattern=%d n=%d %s: missing pair (%d,%d)",
									name, patternSeed, workers, strat.Name(), u, v)
							}
						}
					}
				}
			}
		}
	}
}

func TestSimIndexedMatchesPlain(t *testing.T) {
	g := graphgen.SocialNetwork(400, 4, graphgen.Config{Seed: 53, Labels: 8})
	for patternSeed := int64(0); patternSeed < 3; patternSeed++ {
		q := graphgen.Pattern(g, 8, 15, patternSeed)
		plain := run(t, g, q, Sim{}, 6, partition.Multilevel{}).Output.(seq.SimResult)
		indexed := run(t, g, q, Sim{UseIndex: true}, 6, partition.Multilevel{}).Output.(seq.SimResult)
		if plain.Count() != indexed.Count() {
			t.Fatalf("pattern %d: indexed Sim found %d pairs, plain found %d",
				patternSeed, indexed.Count(), plain.Count())
		}
	}
}

func TestSimNoIncEvalStillCorrect(t *testing.T) {
	// GRAPE_NI (Fig 7a): disabling IncEval re-runs PEval and must still reach
	// the same fixpoint.
	g := graphgen.SocialNetwork(300, 4, graphgen.Config{Seed: 54, Labels: 6})
	q := graphgen.Pattern(g, 6, 10, 3)
	want := seq.Simulation(q, g)
	res, err := core.New(core.Options{Workers: 5, DisableIncEval: true}).Run(g, q, Sim{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output.(seq.SimResult)
	if got.Count() != want.Count() {
		t.Fatalf("GRAPE_NI Sim found %d pairs, want %d", got.Count(), want.Count())
	}
}

func TestSimRejectsBadQuery(t *testing.T) {
	g := graphgen.SocialNetwork(50, 3, graphgen.Config{Seed: 55, Labels: 3})
	if _, err := core.New(core.Options{Workers: 2}).Run(g, 42, Sim{}); err == nil {
		t.Fatalf("Sim must reject non-pattern queries")
	}
}

// --- SubIso -----------------------------------------------------------------

func TestSubIsoMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"social": graphgen.SocialNetwork(250, 4, graphgen.Config{Seed: 61, Labels: 6}),
		"kb":     graphgen.KnowledgeBase(250, 3, 5, graphgen.Config{Seed: 62, Labels: 8}),
	}
	for name, g := range graphs {
		for patternSeed := int64(0); patternSeed < 3; patternSeed++ {
			q := graphgen.Pattern(g, 4, 5, patternSeed)
			want := seq.SubgraphIsomorphism(q, g, 0)
			for _, workers := range []int{1, 4} {
				res := run(t, g, q, SubIso{}, workers, partition.Multilevel{})
				got := res.Output.([]seq.Match)
				if len(got) != len(want) {
					t.Fatalf("%s pattern=%d n=%d: %d matches, want %d",
						name, patternSeed, workers, len(got), len(want))
				}
				// Every reported match must be valid.
				for _, m := range got {
					for _, e := range q.Edges() {
						if !g.HasEdge(m[e.Src], m[e.Dst]) {
							t.Fatalf("%s pattern=%d: invalid match %v", name, patternSeed, m)
						}
					}
				}
			}
		}
	}
}

func TestSubIsoTwoSupersteps(t *testing.T) {
	g := graphgen.SocialNetwork(250, 4, graphgen.Config{Seed: 63, Labels: 6})
	q := graphgen.Pattern(g, 4, 5, 1)
	res := run(t, g, q, SubIso{}, 4, partition.Multilevel{})
	if res.Stats.Supersteps != 2 {
		t.Fatalf("SubIso took %d supersteps, want 2 (PEval + one IncEval)", res.Stats.Supersteps)
	}
}

func TestSubIsoMaxMatches(t *testing.T) {
	g := graphgen.SocialNetwork(250, 4, graphgen.Config{Seed: 64, Labels: 3})
	q := graphgen.Pattern(g, 3, 3, 2)
	all := run(t, g, q, SubIso{}, 3, partition.Multilevel{}).Output.([]seq.Match)
	if len(all) == 0 {
		t.Skip("pattern has no matches in this generated graph")
	}
	limited := run(t, g, q, SubIso{MaxMatches: 1}, 3, partition.Multilevel{}).Output.([]seq.Match)
	if len(limited) == 0 || len(limited) > 3 {
		t.Fatalf("MaxMatches=1 per fragment returned %d matches", len(limited))
	}
}

func TestSubIsoPieceCodec(t *testing.T) {
	p := piece{
		vertices: []graph.Vertex{{ID: 1, Label: "A"}, {ID: 2, Label: "B"}},
		edges:    []graph.Edge{{Src: 1, Dst: 2, Weight: 2.5, Label: "x"}},
	}
	back, err := decodePiece(encodePiece(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.vertices) != 2 || len(back.edges) != 1 {
		t.Fatalf("piece round trip lost data: %+v", back)
	}
	if back.edges[0].Weight != 2.5 || back.vertices[1].Label != "B" {
		t.Fatalf("piece round trip corrupted data: %+v", back)
	}
	if _, err := decodePiece([]byte{1, 2}); err == nil {
		t.Fatalf("truncated piece must fail to decode")
	}
	buf := encodePiece(p)
	if _, err := decodePiece(buf[:len(buf)-2]); err == nil {
		t.Fatalf("truncated piece must fail to decode")
	}
}

// --- CF ---------------------------------------------------------------------

func TestCFTrainsAndTerminates(t *testing.T) {
	g := graphgen.Bipartite(200, 40, 8, graphgen.Config{Seed: 71})
	q := DefaultCFQuery(0.9)
	for _, workers := range []int{1, 4} {
		res := run(t, g, q, CF{}, workers, partition.Hash{})
		model := res.Output.(CFModel)
		if model.TrainingRMSE <= 0 || model.TrainingRMSE > 1.6 {
			t.Fatalf("n=%d: training RMSE = %v, want a reasonable fit", workers, model.TrainingRMSE)
		}
		if len(model.Factors) == 0 {
			t.Fatalf("n=%d: no factors learned", workers)
		}
		if res.Stats.Supersteps > q.MaxRounds+2 {
			t.Fatalf("n=%d: CF did not respect MaxRounds: %d supersteps", workers, res.Stats.Supersteps)
		}
	}
}

func TestCFSmallerTrainingSetStillWorks(t *testing.T) {
	g := graphgen.Bipartite(150, 30, 6, graphgen.Config{Seed: 72})
	res := run(t, g, DefaultCFQuery(0.5), CF{}, 4, partition.Hash{})
	model := res.Output.(CFModel)
	if model.TrainingRMSE > 1.8 {
		t.Fatalf("RMSE with 50%% training set = %v", model.TrainingRMSE)
	}
}

func TestCFRejectsBadQuery(t *testing.T) {
	g := graphgen.Bipartite(20, 5, 3, graphgen.Config{Seed: 73})
	if _, err := core.New(core.Options{Workers: 2}).Run(g, 7, CF{}); err == nil {
		t.Fatalf("CF must reject non-CFQuery queries")
	}
}

// --- PageRank (extension) ----------------------------------------------------

func TestPageRankStarGraph(t *testing.T) {
	// A star: many leaves point at a hub; the hub must end with the highest
	// rank and ranks must sum to |V| after normalization.
	b := graph.NewBuilder(true)
	for i := 1; i <= 30; i++ {
		b.AddEdge(graph.VertexID(i), 0, 1, "")
	}
	g := b.Build()
	res := run(t, g, DefaultPageRankQuery(), PageRank{}, 4, partition.Hash{})
	ranks := res.Output.(map[graph.VertexID]float64)
	total := 0.0
	for _, r := range ranks {
		total += r
	}
	if math.Abs(total-float64(g.NumVertices())) > 1e-6 {
		t.Fatalf("ranks sum to %v, want %d", total, g.NumVertices())
	}
	for v, r := range ranks {
		if v != 0 && r >= ranks[0] {
			t.Fatalf("leaf %d rank %v >= hub rank %v", v, r, ranks[0])
		}
	}
}

func TestPageRankDeterministicAcrossWorkers(t *testing.T) {
	g := graphgen.SocialNetwork(200, 4, graphgen.Config{Seed: 81, Labels: 4})
	q := DefaultPageRankQuery()
	r1 := run(t, g, q, PageRank{}, 1, partition.Hash{}).Output.(map[graph.VertexID]float64)
	r4 := run(t, g, q, PageRank{}, 4, partition.Hash{}).Output.(map[graph.VertexID]float64)
	// The distributed computation is an approximation; require the top-ranked
	// vertex to agree and values to be within a loose tolerance.
	top := func(r map[graph.VertexID]float64, k int) map[graph.VertexID]bool {
		type pair struct {
			v graph.VertexID
			r float64
		}
		ps := make([]pair, 0, len(r))
		for v, x := range r {
			ps = append(ps, pair{v, x})
		}
		for i := 0; i < len(ps); i++ { // selection of the k largest is enough here
			for j := i + 1; j < len(ps); j++ {
				if ps[j].r > ps[i].r || (ps[j].r == ps[i].r && ps[j].v < ps[i].v) {
					ps[i], ps[j] = ps[j], ps[i]
				}
			}
			if i >= k {
				break
			}
		}
		out := make(map[graph.VertexID]bool, k)
		for i := 0; i < k && i < len(ps); i++ {
			out[ps[i].v] = true
		}
		return out
	}
	// The distributed run exchanges cross-fragment mass with one superstep of
	// staleness, so it approximates the exact power iteration: require the
	// top-ranked vertices to largely agree rather than match exactly.
	exactTop := top(r1, 10)
	distTop := top(r4, 10)
	overlap := 0
	for v := range distTop {
		if exactTop[v] {
			overlap++
		}
	}
	if overlap < 6 {
		t.Fatalf("only %d of the top-10 vertices agree between 1-worker and 4-worker PageRank", overlap)
	}
}

// --- cross-cutting ------------------------------------------------------------

// TestAssuranceAllPrograms is the experiment X1 of DESIGN.md: for every query
// class, the GRAPE answer equals the sequential answer for every partition
// strategy (Theorem 1 exercised end to end). SSSP/CC/Sim are covered in depth
// above; this test sweeps the remaining combinations cheaply.
func TestAssuranceAllPrograms(t *testing.T) {
	g := graphgen.KnowledgeBase(200, 3, 6, graphgen.Config{Seed: 91, Labels: 8})
	src := g.VertexAt(7)
	wantSSSP := seq.Dijkstra(g, src)
	wantCC := seq.ConnectedComponents(g)
	q := graphgen.Pattern(g, 4, 6, 5)
	wantSim := seq.Simulation(q, g)

	for _, strat := range []partition.Strategy{partition.Range{}, partition.VertexCut{}} {
		gotSSSP := run(t, g, src, SSSP{}, 5, strat).Output.(map[graph.VertexID]float64)
		for v, d := range wantSSSP {
			if gotSSSP[v] != d && !(math.IsInf(gotSSSP[v], 1) && math.IsInf(d, 1)) {
				t.Fatalf("%s: SSSP dist(%d) = %v, want %v", strat.Name(), v, gotSSSP[v], d)
			}
		}
		gotCC := run(t, g, nil, CC{}, 5, strat).Output.(map[graph.VertexID]graph.VertexID)
		for v, cid := range wantCC {
			if gotCC[v] != cid {
				t.Fatalf("%s: CC cid(%d) = %d, want %d", strat.Name(), v, gotCC[v], cid)
			}
		}
		gotSim := run(t, g, q, Sim{}, 5, strat).Output.(seq.SimResult)
		if gotSim.Count() != wantSim.Count() {
			t.Fatalf("%s: Sim found %d pairs, want %d", strat.Name(), gotSim.Count(), wantSim.Count())
		}
	}
}
