package pie

import (
	"fmt"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/inc"
	"grape/internal/mpi"
	"grape/internal/seq"
)

// CFQuery configures a collaborative-filtering run (Section 5.3): the SGD
// hyper-parameters, the fraction of observed ratings used for training
// (|ET| / |E| — 90% and 50% in the paper's experiments), and the maximum
// number of refinement rounds (supersteps) before the model is considered
// converged, which is the paper's "predetermined maximum number of
// supersteps" termination condition.
type CFQuery struct {
	Config        seq.SGDConfig
	TrainFraction float64
	MaxRounds     int
}

// DefaultCFQuery returns the configuration used by the benchmarks.
func DefaultCFQuery(trainFraction float64) CFQuery {
	return CFQuery{Config: seq.DefaultSGDConfig(), TrainFraction: trainFraction, MaxRounds: 6}
}

// CFModel is the assembled output of the CF program: the learned latent
// factor vectors and the root-mean-square error over the training set.
type CFModel struct {
	Factors      seq.Factors
	TrainingRMSE float64
	Rounds       int
}

// CF is the PIE program for collaborative filtering: PEval is the sequential
// SGD algorithm run over the fragment's local training edges; IncEval is the
// incremental ISGD algorithm applied to the ratings incident to the factor
// vectors refreshed by incoming messages. Factor vectors of border vertices
// are the update parameters; conflicts are resolved by keeping the vector
// with the newest timestamp (aggregateMsg = max over timestamps).
type CF struct{}

type cfState struct {
	factors seq.Factors
	ratings []seq.Rating
	rounds  int
}

// Name implements core.Program.
func (CF) Name() string { return "CF" }

// PEval implements core.Program.
func (CF) PEval(ctx *core.Context) error {
	q, ok := ctx.Query.(CFQuery)
	if !ok {
		return fmt.Errorf("pie: CF query must be a CFQuery, got %T", ctx.Query)
	}
	g := ctx.Fragment.Graph

	st, _ := ctx.State.(*cfState)
	if st == nil {
		// Local training set: ratings whose user vertex is owned by this
		// fragment (edge-cut places a user's edges with the user).
		var local []seq.Rating
		for _, r := range seq.RatingsFromGraph(g) {
			if ctx.Fragment.Owns(r.User) {
				local = append(local, r)
			}
		}
		train, _ := seq.SplitTraining(local, q.TrainFraction)
		st = &cfState{factors: make(seq.Factors), ratings: train}
		ctx.State = st
	}

	// Message preamble: a (factor vector, timestamp) variable per border
	// node, initially empty at timestamp 0.
	for _, v := range ctx.Fragment.InBorder {
		ctx.Declare(v, 0, 0, nil)
	}
	for _, v := range ctx.Fragment.OutBorder {
		ctx.Declare(v, 0, 0, nil)
	}

	// Sequential SGD over the local mini-batch.
	seq.Train(st.ratings, q.Config, st.factors)
	st.rounds = 1
	shipFactors(ctx, st, 1)
	return nil
}

// IncEval implements core.Program: refresh the factor vectors received from
// other fragments and retrain only the affected ratings with ISGD.
func (CF) IncEval(ctx *core.Context, msgs []mpi.Update) error {
	q, ok := ctx.Query.(CFQuery)
	if !ok {
		return fmt.Errorf("pie: CF query must be a CFQuery, got %T", ctx.Query)
	}
	st, ok := ctx.State.(*cfState)
	if !ok {
		return fmt.Errorf("pie: CF IncEval called before PEval")
	}
	st.rounds++
	if st.rounds > q.MaxRounds {
		// Convergence condition reached: stop refining (and stop shipping),
		// which lets the fixpoint terminate.
		return nil
	}
	affected := make(map[graph.VertexID]bool)
	for _, m := range msgs {
		if m.Vertex == core.RawMessageVertex || len(m.Data) == 0 {
			continue
		}
		v := graph.VertexID(m.Vertex)
		st.factors[v] = mpi.BytesToFloat64s(m.Data)
		affected[v] = true
	}
	if len(affected) == 0 {
		return nil
	}
	inc.ISGD(st.ratings, st.factors, affected, q.Config)
	shipFactors(ctx, st, int64(ctx.Superstep))
	return nil
}

// shipFactors records the current factor vector of every border vertex this
// fragment has an opinion about, stamped with the superstep as a timestamp
// (carried in the update's Value so that the freshest vector wins
// aggregation).
func shipFactors(ctx *core.Context, st *cfState, timestamp int64) {
	ship := func(v graph.VertexID) {
		vec, ok := st.factors[v]
		if !ok {
			return
		}
		ctx.SetVar(v, 0, float64(timestamp), mpi.Float64sToBytes(vec))
	}
	for _, v := range ctx.Fragment.InBorder {
		ship(v)
	}
	for _, v := range ctx.Fragment.OutBorder {
		ship(v)
	}
}

// Assemble implements core.Program: union the factor vectors of owned
// vertices (border copies defer to their owner) and report the training RMSE
// over all fragments' training edges.
func (CF) Assemble(q core.Query, ctxs []*core.Context) (any, error) {
	model := CFModel{Factors: make(seq.Factors)}
	var allRatings []seq.Rating
	for _, ctx := range ctxs {
		st, ok := ctx.State.(*cfState)
		if !ok {
			continue
		}
		if st.rounds > model.Rounds {
			model.Rounds = st.rounds
		}
		allRatings = append(allRatings, st.ratings...)
		for v, vec := range st.factors {
			if ctx.Fragment.Owns(v) {
				model.Factors[v] = vec
			}
		}
	}
	// Vertices that only ever appeared as border copies fall back to the
	// freshest copy any fragment holds.
	for _, ctx := range ctxs {
		st, ok := ctx.State.(*cfState)
		if !ok {
			continue
		}
		for v, vec := range st.factors {
			if _, done := model.Factors[v]; !done {
				model.Factors[v] = vec
			}
		}
	}
	model.TrainingRMSE = seq.RMSE(model.Factors, allRatings)
	return model, nil
}

// Aggregate implements core.Program: the freshest factor vector wins, using
// the timestamp carried in Value (monotonically increasing supersteps).
func (CF) Aggregate(existing, incoming mpi.Update) mpi.Update {
	return core.MaxAggregate(existing, incoming)
}
