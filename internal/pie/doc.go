// Package pie contains the PIE programs of Section 5: the sequential
// algorithms of internal/seq plugged into the GRAPE engine (internal/core)
// with the minor additions the paper prescribes — a message preamble
// declaring update parameters, a message segment shipping their changed
// values, and an aggregateMsg policy — plus the bounded incremental
// algorithms of internal/inc as IncEval.
//
// Provided programs:
//
//   - SSSP      — graph traversal: Dijkstra + Ramalingam–Reps (Section 3).
//   - CC        — connected components: DFS labelling + cid merging (5.2).
//   - Sim       — graph-pattern matching by graph simulation: HHK +
//     incremental simulation under edge deletion (5.1), optionally
//     with the neighbourhood-index optimization (Exp-3).
//   - SubIso    — graph-pattern matching by subgraph isomorphism: VF2 over
//     fragments extended with d_Q-neighbourhoods (5.1).
//   - CF        — collaborative filtering: SGD + ISGD (5.3).
//   - PageRank  — an extension beyond the paper's five classes, showing that
//     fixpoint style analytics fit the same model.
//
// SSSP and CC additionally implement core.DeltaProgram, so materialized
// views over them are maintained incrementally under graph updates
// (Section 3.4): monotone changes — edge inserts, weight decreases, vertex
// adds — are absorbed by an EvalDelta round that seeds the same bounded
// incremental algorithms, while non-monotone changes fall back to a full
// PEval re-run.
package pie
