package pie

import (
	"testing"

	"grape/internal/core"
	"grape/internal/workload"
)

// Hot-path microbenchmarks for the PIE inner loops: a single-worker engine
// run isolates PEval/IncEval compute (no useful communication happens with
// one fragment), and the maintain benchmark exercises the EvalDelta +
// IncEval path that dominates view maintenance. Run with -benchmem: the
// dense-state representation is justified by allocs/op as much as ns/op.

func BenchmarkSSSPQuery1Worker(b *testing.B) {
	g, err := workload.Load(workload.Traffic, workload.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	source := workload.Sources(g, 1, 7)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(core.Options{Workers: 1}).Run(g, source, SSSP{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCCQuery1Worker(b *testing.B) {
	g, err := workload.Load(workload.Traffic, workload.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(core.Options{Workers: 1}).Run(g, nil, CC{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRankQuery1Worker(b *testing.B) {
	g, err := workload.Load(workload.Traffic, workload.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(core.Options{Workers: 1}).Run(g, DefaultPageRankQuery(), PageRank{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSSPMaintain1Worker measures the IncEval maintenance path: a
// materialized SSSP view absorbing a monotone (insert-only) update stream,
// which drives EvalDelta seeding plus the bounded incremental algorithm on
// every batch.
func BenchmarkSSSPMaintain1Worker(b *testing.B) {
	g, err := workload.Load(workload.Traffic, workload.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	source := workload.Sources(g, 1, 7)[0]
	stream := workload.UpdateStream(g, workload.MonotoneStreamConfig(17, 20, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := core.NewSession(g, core.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Materialize(source, SSSP{}); err != nil {
			s.Close()
			b.Fatal(err)
		}
		b.StartTimer()
		for _, tb := range stream {
			if _, err := s.ApplyUpdates(tb.Ops); err != nil {
				s.Close()
				b.Fatal(err)
			}
		}
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkSSSPQuery4Workers exercises the multi-fragment path in-process:
// border shipping, aggregation and the IncEval fixpoint across fragments.
func BenchmarkSSSPQuery4Workers(b *testing.B) {
	g, err := workload.Load(workload.Traffic, workload.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	source := workload.Sources(g, 1, 7)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(core.Options{Workers: 4}).Run(g, source, SSSP{}); err != nil {
			b.Fatal(err)
		}
	}
}
