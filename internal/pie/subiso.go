package pie

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/partition"
	"grape/internal/seq"
)

// SubIso is the PIE program for graph-pattern matching via subgraph
// isomorphism (Section 5.1). The query is the pattern graph; the assembled
// answer is a []seq.Match with every match of the pattern in G, deduplicated
// across fragments.
//
// It runs in two supersteps, exactly as the paper describes: PEval identifies
// the d_Q-neighbourhoods around border nodes and ships them as designated
// messages (the update parameters are node/edge identifiers whose values
// never change, so no partial order is needed); IncEval is the sequential
// VF2 algorithm run on the fragment extended with the received
// neighbourhoods, and it sends no further messages.
//
// MaxMatches bounds the number of matches each fragment enumerates
// (0 = unlimited), which keeps the NP-complete search bounded in benchmarks.
type SubIso struct {
	MaxMatches int
}

type subIsoState struct {
	// extension accumulates the foreign vertices and edges received from
	// other fragments.
	extension *graph.Builder
	matches   []seq.Match
}

// Name implements core.Program.
func (SubIso) Name() string { return "SubIso" }

// PEval implements core.Program: ship the d_Q-neighbourhood of the border
// nodes to the fragments that share them.
func (s SubIso) PEval(ctx *core.Context) error {
	q, ok := ctx.Query.(*graph.Graph)
	if !ok {
		return fmt.Errorf("pie: SubIso query must be a *graph.Graph pattern, got %T", ctx.Query)
	}
	g := ctx.Fragment.Graph
	st := &subIsoState{extension: graph.NewBuilder(g.Directed())}
	ctx.State = st
	if q.NumVertices() == 0 {
		return nil
	}
	dQ := seq.PatternDiameter(q)
	if dQ < 1 {
		dQ = 1
	}

	// For every fragment j that shares a border vertex with this fragment,
	// collect the owned vertices within d_Q hops of those shared border
	// vertices and ship the induced piece (plus its outgoing cross edges) to
	// j as one designated message.
	shared := make(map[int]map[graph.VertexID]bool)
	addShared := func(v graph.VertexID) {
		for _, dst := range ctx.GP.Destinations(v, ctx.Worker) {
			if shared[dst] == nil {
				shared[dst] = make(map[graph.VertexID]bool)
			}
			shared[dst][v] = true
		}
	}
	for _, v := range ctx.Fragment.InBorder {
		addShared(v)
	}
	for _, v := range ctx.Fragment.OutBorder {
		addShared(v)
	}

	dests := make([]int, 0, len(shared))
	for dst := range shared {
		dests = append(dests, dst)
	}
	sort.Ints(dests)
	for _, dst := range dests {
		piece := neighborhoodPiece(ctx.Fragment, shared[dst], dQ)
		if len(piece.vertices) == 0 && len(piece.edges) == 0 {
			continue
		}
		ctx.SendToWorker(dst, encodePiece(piece))
	}

	// A fragment with no border at all (a single-fragment run, or an isolated
	// component) receives no messages and therefore no IncEval superstep, so
	// it evaluates its matches right away.
	if len(ctx.Fragment.InBorder) == 0 && len(ctx.Fragment.OutBorder) == 0 {
		st.matches = seq.SubgraphIsomorphism(q, g, s.MaxMatches)
	}
	return nil
}

// IncEval implements core.Program: merge the received neighbourhood pieces
// into the fragment and run VF2 on the extended fragment. It sends no
// messages, so the computation terminates after this superstep.
func (s SubIso) IncEval(ctx *core.Context, msgs []mpi.Update) error {
	q, ok := ctx.Query.(*graph.Graph)
	if !ok {
		return fmt.Errorf("pie: SubIso query must be a *graph.Graph pattern, got %T", ctx.Query)
	}
	st, ok := ctx.State.(*subIsoState)
	if !ok {
		return fmt.Errorf("pie: SubIso IncEval called before PEval")
	}
	for _, m := range msgs {
		if m.Vertex != core.RawMessageVertex {
			continue
		}
		piece, err := decodePiece(m.Data)
		if err != nil {
			return fmt.Errorf("pie: SubIso: %w", err)
		}
		for _, v := range piece.vertices {
			st.extension.AddVertex(v.ID, v.Label)
		}
		for _, e := range piece.edges {
			st.extension.AddEdge(e.Src, e.Dst, e.Weight, e.Label)
		}
	}
	extended := mergeFragmentWithExtension(ctx.Fragment.Graph, st.extension)
	st.matches = seq.SubgraphIsomorphism(q, extended, s.MaxMatches)
	return nil
}

// Assemble implements core.Program: union the per-fragment matches and
// deduplicate (several fragments may discover the same match when it lies in
// their shared neighbourhood).
func (SubIso) Assemble(q core.Query, ctxs []*core.Context) (any, error) {
	seen := make(map[string]bool)
	var out []seq.Match
	for _, ctx := range ctxs {
		st, ok := ctx.State.(*subIsoState)
		if !ok {
			continue
		}
		for _, m := range st.matches {
			key := matchKey(m)
			if !seen[key] {
				seen[key] = true
				out = append(out, m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return matchKey(out[i]) < matchKey(out[j]) })
	return out, nil
}

// Aggregate implements core.Program. SubIso's update parameters (node and
// edge identifiers) never change value, so any resolution policy is
// acceptable; keeping the existing value is the identity choice.
func (SubIso) Aggregate(existing, incoming mpi.Update) mpi.Update { return existing }

// matchKey builds a canonical string for a match so duplicates found by
// different fragments collapse.
func matchKey(m seq.Match) string {
	keys := make([]string, 0, len(m))
	for u, v := range m {
		keys = append(keys, fmt.Sprintf("%d->%d", u, v))
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// neighborhoodPiece extracts the owned part of the fragment within d hops of
// the given border vertices: the vertices with their labels and every edge
// whose source is one of those vertices.
type piece struct {
	vertices []graph.Vertex
	edges    []graph.Edge
}

func neighborhoodPiece(frag *partition.Fragment, seeds map[graph.VertexID]bool, d int) piece {
	g := frag.Graph
	// Multi-source BFS over the undirected view of the fragment, restricted
	// to owned vertices, up to depth d.
	depth := make(map[int]int)
	var queue []int
	for v := range seeds {
		if i := g.IndexOf(v); i >= 0 {
			depth[i] = 0
			queue = append(queue, i)
		}
	}
	sort.Ints(queue)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if depth[u] == d {
			continue
		}
		expand := func(to int32) {
			if _, ok := depth[int(to)]; !ok && frag.Owns(g.VertexAt(int(to))) {
				depth[int(to)] = depth[u] + 1
				queue = append(queue, int(to))
			}
		}
		for _, he := range g.OutEdges(u) {
			expand(he.To)
		}
		for _, he := range g.InEdges(u) {
			expand(he.To)
		}
	}

	var p piece
	for i := range depth {
		id := g.VertexAt(i)
		if !frag.Owns(id) {
			continue
		}
		p.vertices = append(p.vertices, graph.Vertex{ID: id, Label: g.Label(i)})
		for _, he := range g.OutEdges(i) {
			p.edges = append(p.edges, graph.Edge{
				Src:    id,
				Dst:    g.VertexAt(int(he.To)),
				Weight: he.Weight,
				Label:  he.Label,
			})
			// Include the endpoint's label so the receiver can materialize it.
			p.vertices = append(p.vertices, graph.Vertex{ID: g.VertexAt(int(he.To)), Label: g.Label(int(he.To))})
		}
	}
	sort.Slice(p.vertices, func(i, j int) bool { return p.vertices[i].ID < p.vertices[j].ID })
	sort.Slice(p.edges, func(i, j int) bool {
		if p.edges[i].Src != p.edges[j].Src {
			return p.edges[i].Src < p.edges[j].Src
		}
		return p.edges[i].Dst < p.edges[j].Dst
	})
	return p
}

// mergeFragmentWithExtension builds the extended graph: the fragment graph
// plus the foreign vertices and edges received from other fragments.
func mergeFragmentWithExtension(local *graph.Graph, ext *graph.Builder) *graph.Graph {
	b := graph.NewBuilder(local.Directed())
	for i := 0; i < local.NumVertices(); i++ {
		b.AddVertex(local.VertexAt(i), local.Label(i))
	}
	for _, e := range local.Edges() {
		b.AddEdge(e.Src, e.Dst, e.Weight, e.Label)
	}
	extGraph := ext.Build()
	for i := 0; i < extGraph.NumVertices(); i++ {
		id := extGraph.VertexAt(i)
		label := extGraph.Label(i)
		if label == "" {
			label = local.LabelOf(id)
		}
		b.AddVertex(id, label)
	}
	for _, e := range extGraph.Edges() {
		if !localHasEdge(local, e) {
			b.AddEdge(e.Src, e.Dst, e.Weight, e.Label)
		}
	}
	return b.Build()
}

func localHasEdge(local *graph.Graph, e graph.Edge) bool {
	return local.HasEdge(e.Src, e.Dst)
}

// encodePiece serializes a neighbourhood piece: vertex count, vertices
// (id, label), edge count, edges (src, dst, weight, label).
func encodePiece(p piece) []byte {
	var buf []byte
	appendUint32 := func(x uint32) {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], x)
		buf = append(buf, tmp[:]...)
	}
	appendUint64 := func(x uint64) {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], x)
		buf = append(buf, tmp[:]...)
	}
	appendString := func(s string) {
		appendUint32(uint32(len(s)))
		buf = append(buf, s...)
	}
	appendUint32(uint32(len(p.vertices)))
	for _, v := range p.vertices {
		appendUint64(uint64(v.ID))
		appendString(v.Label)
	}
	appendUint32(uint32(len(p.edges)))
	for _, e := range p.edges {
		appendUint64(uint64(e.Src))
		appendUint64(uint64(e.Dst))
		appendUint64(math.Float64bits(e.Weight))
		appendString(e.Label)
	}
	return buf
}

// decodePiece parses a piece produced by encodePiece.
func decodePiece(buf []byte) (piece, error) {
	var p piece
	off := 0
	readUint32 := func() (uint32, error) {
		if off+4 > len(buf) {
			return 0, fmt.Errorf("truncated piece")
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	readUint64 := func() (uint64, error) {
		if off+8 > len(buf) {
			return 0, fmt.Errorf("truncated piece")
		}
		v := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		return v, nil
	}
	readString := func() (string, error) {
		n, err := readUint32()
		if err != nil {
			return "", err
		}
		if off+int(n) > len(buf) {
			return "", fmt.Errorf("truncated piece")
		}
		s := string(buf[off : off+int(n)])
		off += int(n)
		return s, nil
	}
	nv, err := readUint32()
	if err != nil {
		return p, err
	}
	// Bound the claimed count before the append loop grows on its behalf: a
	// vertex costs at least 12 bytes (id + empty-label length), so a hostile
	// count beyond that is rejected without allocating.
	if int(nv) > (len(buf)-off)/12 {
		return p, fmt.Errorf("piece claims %d vertices, input holds %d bytes", nv, len(buf)-off)
	}
	for i := uint32(0); i < nv; i++ {
		id, err := readUint64()
		if err != nil {
			return p, err
		}
		label, err := readString()
		if err != nil {
			return p, err
		}
		p.vertices = append(p.vertices, graph.Vertex{ID: graph.VertexID(id), Label: label})
	}
	ne, err := readUint32()
	if err != nil {
		return p, err
	}
	// Same bound for edges: src + dst + weight + empty-label length is 28
	// bytes minimum per edge.
	if int(ne) > (len(buf)-off)/28 {
		return p, fmt.Errorf("piece claims %d edges, input holds %d bytes", ne, len(buf)-off)
	}
	for i := uint32(0); i < ne; i++ {
		src, err := readUint64()
		if err != nil {
			return p, err
		}
		dst, err := readUint64()
		if err != nil {
			return p, err
		}
		w, err := readUint64()
		if err != nil {
			return p, err
		}
		label, err := readString()
		if err != nil {
			return p, err
		}
		p.edges = append(p.edges, graph.Edge{
			Src:    graph.VertexID(src),
			Dst:    graph.VertexID(dst),
			Weight: math.Float64frombits(w),
			Label:  label,
		})
	}
	return p, nil
}
