package pie

import (
	"fmt"
	"sort"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/seq"
)

// SSSP is the PIE program for single-source shortest paths (Figures 3 and 4
// of the paper). The query is the source vertex (graph.VertexID); the
// assembled answer is a map from every vertex of G to its shortest distance
// from the source (+Inf when unreachable).
//
// PEval is Dijkstra's algorithm run on the local fragment; the only additions
// are the message preamble (a dist(s,v) variable per border node, initially
// ∞) and the message segment (ship decreased border distances, aggregated
// with min). IncEval is the bounded incremental shortest-path algorithm of
// Ramalingam–Reps, seeded with the border distances that decreased.
type SSSP struct{}

// ssspState is the partial result Q(Fi): the current distance of every
// vertex present in the fragment graph, as a flat slice indexed by the
// graph's dense vertex index so the relaxation inner loops never touch a
// map. External IDs appear only at the borders (shipping variables) and in
// Assemble. over keeps the finite distances of vertices that left the
// fragment graph across a rebind, purely so the partial result stays total.
type ssspState struct {
	g    *graph.Graph
	dist []float64
	over map[graph.VertexID]float64
}

// rebind points the state at (a possibly new epoch of) the fragment graph,
// remapping distances by external ID. Rebinding the already-bound graph is
// free, which makes it safe to call at the top of every eval.
func (st *ssspState) rebind(g *graph.Graph) {
	if st.g == g {
		return
	}
	nd := make([]float64, g.NumVertices())
	for i := range nd {
		nd[i] = seq.Infinity
	}
	for v, dv := range st.over {
		if i := g.IndexOf(v); i >= 0 {
			if dv < nd[i] {
				nd[i] = dv
			}
			delete(st.over, v)
		}
	}
	if st.g != nil {
		for i, dv := range st.dist {
			if dv >= seq.Infinity {
				continue
			}
			v := st.g.VertexAt(i)
			if j := g.IndexOf(v); j >= 0 {
				if dv < nd[j] {
					nd[j] = dv
				}
			} else {
				st.setOver(v, dv)
			}
		}
	}
	st.g, st.dist = g, nd
}

func (st *ssspState) setOver(v graph.VertexID, dv float64) {
	if st.over == nil {
		st.over = make(map[graph.VertexID]float64)
	}
	if old, ok := st.over[v]; !ok || dv < old {
		st.over[v] = dv
	}
}

// get returns the current distance of v by external ID (+Inf when unknown).
func (st *ssspState) get(v graph.VertexID) float64 {
	if i := st.g.IndexOf(v); i >= 0 {
		return st.dist[i]
	}
	if dv, ok := st.over[v]; ok {
		return dv
	}
	return seq.Infinity
}

// Name implements core.Program.
func (SSSP) Name() string { return "SSSP" }

// PEval implements core.Program.
func (SSSP) PEval(ctx *core.Context) error {
	source, ok := ctx.Query.(graph.VertexID)
	if !ok {
		return fmt.Errorf("pie: SSSP query must be a graph.VertexID, got %T", ctx.Query)
	}
	g := ctx.Fragment.Graph

	// Message preamble: declare dist(s,v) = ∞ for every border node.
	for _, v := range ctx.Fragment.InBorder {
		ctx.Declare(v, 0, seq.Infinity, nil)
	}
	for _, v := range ctx.Fragment.OutBorder {
		ctx.Declare(v, 0, seq.Infinity, nil)
	}

	st, _ := ctx.State.(*ssspState)
	if st == nil {
		st = &ssspState{}
		ctx.State = st
	}
	st.rebind(g)

	// Seeds: the source (distance 0) plus any border values already known
	// (these exist only when PEval is re-run in the GRAPE_NI ablation).
	var seeds []seq.Seed
	if i := g.IndexOf(source); i >= 0 {
		seeds = append(seeds, seq.Seed{Index: i, Dist: 0})
	}
	for _, u := range ctx.Vars() {
		if u.Value < seq.Infinity {
			if i := g.IndexOf(graph.VertexID(u.Vertex)); i >= 0 {
				seeds = append(seeds, seq.Seed{Index: i, Dist: u.Value})
			}
		}
	}
	seq.RelaxDense(g, st.dist, seeds, ctx.Pool())

	// Message segment: ship the computed distances of border nodes.
	shipBorderDistances(ctx, st)
	return nil
}

// IncEval implements core.Program. msgs carry decreased distances for border
// nodes; the incremental algorithm propagates them through the affected area
// only.
func (SSSP) IncEval(ctx *core.Context, msgs []mpi.Update) error {
	st, ok := ctx.State.(*ssspState)
	if !ok {
		return fmt.Errorf("pie: SSSP IncEval called before PEval")
	}
	g := ctx.Fragment.Graph
	st.rebind(g)
	seeds := make([]seq.Seed, 0, len(msgs))
	for _, m := range msgs {
		if m.Vertex == core.RawMessageVertex {
			continue
		}
		if i := g.IndexOf(graph.VertexID(m.Vertex)); i >= 0 {
			seeds = append(seeds, seq.Seed{Index: i, Dist: m.Value})
		} else if m.Value < seq.Infinity {
			// A decrease for a vertex the graph no longer holds: record it,
			// nothing to propagate (mirrors inc.SSSPDecrease).
			st.setOver(graph.VertexID(m.Vertex), m.Value)
		}
	}
	seq.RelaxDense(g, st.dist, seeds, ctx.Pool())
	shipBorderDistances(ctx, st)
	return nil
}

// EvalDelta implements core.DeltaProgram: it absorbs monotone graph changes
// — edge inserts, weight decreases, vertex adds — by seeding the bounded
// incremental algorithm with the distance relaxations the new edges enable.
// Edge deletions and weight increases can raise distances, which the
// min-monotone message discipline cannot retract, so they decline and the
// view falls back to a full PEval re-run (exactly the split of Section 3.4:
// IncEval handles the update classes its incremental algorithm is bounded
// for).
func (SSSP) EvalDelta(ctx *core.Context, d core.FragmentDelta) (bool, error) {
	source, ok := ctx.Query.(graph.VertexID)
	if !ok {
		return false, fmt.Errorf("pie: SSSP query must be a graph.VertexID, got %T", ctx.Query)
	}
	st, ok := ctx.State.(*ssspState)
	if !ok {
		return false, fmt.Errorf("pie: SSSP EvalDelta called before PEval")
	}
	// The context already carries the post-batch graph; rebinding gives every
	// freshly inserted vertex an ∞ slot, which replaces the explicit
	// registration the map-backed state needed.
	g := ctx.Fragment.Graph
	st.rebind(g)
	seedIdx := make(map[int]float64)
	seed := func(v graph.VertexID, dv float64) {
		if dv >= st.get(v) {
			return
		}
		if i := g.IndexOf(v); i >= 0 {
			if old, ok := seedIdx[i]; !ok || dv < old {
				seedIdx[i] = dv
			}
		}
	}
	relax := func(u, v graph.VertexID, w float64) {
		if du := st.get(u); du < seq.Infinity {
			seed(v, du+w)
		}
		if !g.Directed() {
			if dv := st.get(v); dv < seq.Infinity {
				seed(u, dv+w)
			}
		}
	}
	// Edges inserted earlier in this same batch: a reweight targeting one of
	// them cannot be resolved against OldGraph (relaxations with the old
	// weight already happened), so it declines to a full recompute.
	batchAdded := make(map[[2]graph.VertexID]bool)
	edgeKey := func(u, v graph.VertexID) [2]graph.VertexID {
		if !g.Directed() && v < u {
			u, v = v, u
		}
		return [2]graph.VertexID{u, v}
	}
	for _, op := range d.Ops {
		switch op.Kind {
		case graph.UpdateAddVertex:
			if op.Src == source {
				seed(op.Src, 0)
			}
		case graph.UpdateAddEdge:
			if op.Src == source {
				seed(op.Src, 0)
			}
			if op.Dst == source {
				seed(op.Dst, 0)
			}
			batchAdded[edgeKey(op.Src, op.Dst)] = true
			relax(op.Src, op.Dst, op.Weight)
		case graph.UpdateReweightEdge:
			if batchAdded[edgeKey(op.Src, op.Dst)] {
				return false, nil // reweight of a same-batch insert: old weight unknown
			}
			// Compare against the smallest parallel edge: reweight sets all
			// of them, so raising any currently-minimal weight is an increase.
			oldW, existed := minEdgeWeight(d.OldGraph, op.Src, op.Dst)
			if !existed {
				continue // reweight of a missing edge: no-op
			}
			if op.Weight > oldW {
				return false, nil // increase: distances may grow
			}
			relax(op.Src, op.Dst, op.Weight)
		case graph.UpdateRemoveEdge, graph.UpdateRemoveVertex:
			return false, nil // deletions can only raise distances
		}
	}
	seeds := make([]seq.Seed, 0, len(seedIdx))
	for i, dv := range seedIdx {
		seeds = append(seeds, seq.Seed{Index: i, Dist: dv})
	}
	// Seed in index order so heap tie-breaking (and therefore any float
	// relaxation order) is identical across runs.
	sort.Slice(seeds, func(a, b int) bool { return seeds[a].Index < seeds[b].Index })
	seq.DijkstraFromDense(g, st.dist, seeds)
	shipBorderDistances(ctx, st)
	// Vertices that gained a new mirror must be re-shipped even when their
	// distance did not change: the new mirror has never seen it.
	for _, v := range d.NewInBorder {
		if dv := st.get(v); dv < seq.Infinity {
			ctx.SetVar(v, 0, dv, nil)
			ctx.MarkDirty(v, 0)
		}
	}
	return true, nil
}

// minEdgeWeight returns the smallest weight among the (possibly parallel)
// edges from u to v and whether any exists.
func minEdgeWeight(g *graph.Graph, u, v graph.VertexID) (float64, bool) {
	ui, vi := g.IndexOf(u), g.IndexOf(v)
	if ui < 0 || vi < 0 {
		return 0, false
	}
	w, found := 0.0, false
	for _, he := range g.OutEdges(ui) {
		if int(he.To) == vi && (!found || he.Weight < w) {
			w, found = he.Weight, true
		}
	}
	return w, found
}

// shipBorderDistances records the current distance of every border node in
// the update parameters; the engine ships only the ones that changed.
func shipBorderDistances(ctx *core.Context, st *ssspState) {
	for _, v := range ctx.Fragment.InBorder {
		if d := st.get(v); d < seq.Infinity {
			ctx.SetVar(v, 0, d, nil)
		}
	}
	for _, v := range ctx.Fragment.OutBorder {
		if d := st.get(v); d < seq.Infinity {
			ctx.SetVar(v, 0, d, nil)
		}
	}
}

// Assemble implements core.Program: Q(G) is the union of the per-fragment
// distances of owned vertices.
func (SSSP) Assemble(q core.Query, ctxs []*core.Context) (any, error) {
	out := make(map[graph.VertexID]float64)
	for _, ctx := range ctxs {
		st, ok := ctx.State.(*ssspState)
		if !ok {
			continue
		}
		for _, v := range ctx.Fragment.Local {
			out[v] = st.get(v)
		}
	}
	return out, nil
}

// Aggregate implements core.Program: dist values only decrease, resolved with
// min — the monotonic condition of the Assurance Theorem.
func (SSSP) Aggregate(existing, incoming mpi.Update) mpi.Update {
	return core.MinAggregate(existing, incoming)
}

// AsyncSafe implements core.AsyncCapable: distances form a min-semilattice,
// so applying stale, re-ordered or re-delivered decreases in any order
// converges to the same shortest distances the BSP schedule produces.
func (SSSP) AsyncSafe() bool { return true }

// ParallelSafe implements core.ParallelCapable: PEval and IncEval relax over
// the pool's chunked frontier sweeps (seq.RelaxDense), converging to the same
// least-fixpoint distances — bit for bit — as the sequential Dijkstra path.
func (SSSP) ParallelSafe() bool { return true }
