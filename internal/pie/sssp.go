package pie

import (
	"fmt"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/inc"
	"grape/internal/mpi"
	"grape/internal/seq"
)

// SSSP is the PIE program for single-source shortest paths (Figures 3 and 4
// of the paper). The query is the source vertex (graph.VertexID); the
// assembled answer is a map from every vertex of G to its shortest distance
// from the source (+Inf when unreachable).
//
// PEval is Dijkstra's algorithm run on the local fragment; the only additions
// are the message preamble (a dist(s,v) variable per border node, initially
// ∞) and the message segment (ship decreased border distances, aggregated
// with min). IncEval is the bounded incremental shortest-path algorithm of
// Ramalingam–Reps, seeded with the border distances that decreased.
type SSSP struct{}

// ssspState is the partial result Q(Fi): the current distance of every
// vertex present in the fragment graph (owned vertices and border copies).
type ssspState struct {
	dist map[graph.VertexID]float64
}

// Name implements core.Program.
func (SSSP) Name() string { return "SSSP" }

// PEval implements core.Program.
func (SSSP) PEval(ctx *core.Context) error {
	source, ok := ctx.Query.(graph.VertexID)
	if !ok {
		return fmt.Errorf("pie: SSSP query must be a graph.VertexID, got %T", ctx.Query)
	}
	g := ctx.Fragment.Graph

	// Message preamble: declare dist(s,v) = ∞ for every border node.
	for _, v := range ctx.Fragment.InBorder {
		ctx.Declare(v, 0, seq.Infinity, nil)
	}
	for _, v := range ctx.Fragment.OutBorder {
		ctx.Declare(v, 0, seq.Infinity, nil)
	}

	st, _ := ctx.State.(*ssspState)
	if st == nil {
		st = &ssspState{dist: make(map[graph.VertexID]float64, g.NumVertices())}
		for i := 0; i < g.NumVertices(); i++ {
			st.dist[g.VertexAt(i)] = seq.Infinity
		}
		ctx.State = st
	}

	// Seeds: the source (distance 0) plus any border values already known
	// (these exist only when PEval is re-run in the GRAPE_NI ablation).
	seeds := make(map[graph.VertexID]float64)
	if g.HasVertex(source) {
		seeds[source] = 0
	}
	for _, u := range ctx.Vars() {
		if u.Value < seq.Infinity {
			seeds[graph.VertexID(u.Vertex)] = u.Value
		}
	}
	seq.DijkstraFrom(g, st.dist, seeds)

	// Message segment: ship the computed distances of border nodes.
	shipBorderDistances(ctx, st)
	return nil
}

// IncEval implements core.Program. msgs carry decreased distances for border
// nodes; the incremental algorithm propagates them through the affected area
// only.
func (SSSP) IncEval(ctx *core.Context, msgs []mpi.Update) error {
	st, ok := ctx.State.(*ssspState)
	if !ok {
		return fmt.Errorf("pie: SSSP IncEval called before PEval")
	}
	decreases := make(map[graph.VertexID]float64, len(msgs))
	for _, m := range msgs {
		if m.Vertex == core.RawMessageVertex {
			continue
		}
		decreases[graph.VertexID(m.Vertex)] = m.Value
	}
	inc.SSSPDecrease(ctx.Fragment.Graph, st.dist, decreases)
	shipBorderDistances(ctx, st)
	return nil
}

// shipBorderDistances records the current distance of every border node in
// the update parameters; the engine ships only the ones that changed.
func shipBorderDistances(ctx *core.Context, st *ssspState) {
	for _, v := range ctx.Fragment.InBorder {
		if d := st.dist[v]; d < seq.Infinity {
			ctx.SetVar(v, 0, d, nil)
		}
	}
	for _, v := range ctx.Fragment.OutBorder {
		if d := st.dist[v]; d < seq.Infinity {
			ctx.SetVar(v, 0, d, nil)
		}
	}
}

// Assemble implements core.Program: Q(G) is the union of the per-fragment
// distances of owned vertices.
func (SSSP) Assemble(q core.Query, ctxs []*core.Context) (any, error) {
	out := make(map[graph.VertexID]float64)
	for _, ctx := range ctxs {
		st, ok := ctx.State.(*ssspState)
		if !ok {
			continue
		}
		for _, v := range ctx.Fragment.Local {
			out[v] = st.dist[v]
		}
	}
	return out, nil
}

// Aggregate implements core.Program: dist values only decrease, resolved with
// min — the monotonic condition of the Assurance Theorem.
func (SSSP) Aggregate(existing, incoming mpi.Update) mpi.Update {
	return core.MinAggregate(existing, incoming)
}
