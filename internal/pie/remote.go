package pie

// Distributed-execution support: the wire codecs that let SSSP, CC and
// PageRank run on multi-process sessions. The engine ships the query to the
// workers at PEval time and pulls each fragment's partial result Q(Fi) back
// for Assemble once the fixpoint is reached; both travel as update batches
// through the same varint/delta codec the designated messages use
// (mpi.EncodeUpdates), so the transport has exactly one payload format.
//
// Sim, SubIso and CF stay single-process for now: their partial results
// (match sets, staged designated messages, factor matrices) need richer
// codecs, and distributed sessions reject them with a clear error.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/inc"
	"grape/internal/mpi"
	"grape/internal/seq"
)

// ByName resolves a wire program name to a program instance; worker
// processes use it as their core.Resolver. Every PIE program of the package
// is listed, but only those implementing core.RemoteProgram can actually be
// scheduled on a distributed session.
func ByName(name string) (core.Program, bool) {
	switch name {
	case "SSSP":
		return SSSP{}, true
	case "CC":
		return CC{}, true
	case "PageRank":
		return PageRank{}, true
	case "Sim":
		return Sim{}, true
	case "SubIso":
		return SubIso{}, true
	case "CF":
		return CF{}, true
	default:
		return nil, false
	}
}

// floatMapToUpdates encodes a vertex→float64 map as a sorted update batch.
func floatMapToUpdates(m map[graph.VertexID]float64) []byte {
	ids := make([]graph.VertexID, 0, len(m))
	for v := range m {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ups := make([]mpi.Update, len(ids))
	for i, v := range ids {
		ups[i] = mpi.Update{Vertex: int64(v), Value: m[v]}
	}
	return mpi.EncodeUpdates(ups)
}

// denseFloatUpdates encodes a dense per-vertex vector (indexed by g's vertex
// index) plus any out-of-graph leftovers as a sorted update batch — the same
// wire bytes floatMapToUpdates would produce for the equivalent map, so the
// partial-result format is unchanged by the dense state representation.
func denseFloatUpdates(g *graph.Graph, vals []float64, over map[graph.VertexID]float64) []byte {
	ups := make([]mpi.Update, 0, len(vals)+len(over))
	for i, dv := range vals {
		ups = append(ups, mpi.Update{Vertex: int64(g.VertexAt(i)), Value: dv})
	}
	for v, dv := range over {
		ups = append(ups, mpi.Update{Vertex: int64(v), Value: dv})
	}
	sort.Slice(ups, func(i, j int) bool { return ups[i].Vertex < ups[j].Vertex })
	return mpi.EncodeUpdates(ups)
}

// updatesToFloatMap decodes a batch produced by floatMapToUpdates.
func updatesToFloatMap(data []byte) (map[graph.VertexID]float64, error) {
	ups, err := mpi.DecodeUpdates(data)
	if err != nil {
		return nil, err
	}
	out := make(map[graph.VertexID]float64, len(ups))
	for _, u := range ups {
		out[graph.VertexID(u.Vertex)] = u.Value
	}
	return out, nil
}

// SSSP: the query is the source vertex; the partial result is the distance
// of every vertex present in the fragment.

// EncodeQuery implements core.RemoteProgram.
func (SSSP) EncodeQuery(q core.Query) ([]byte, error) {
	source, ok := q.(graph.VertexID)
	if !ok {
		return nil, fmt.Errorf("pie: SSSP query must be a graph.VertexID, got %T", q)
	}
	return binary.AppendVarint(nil, int64(source)), nil
}

// DecodeQuery implements core.RemoteProgram.
func (SSSP) DecodeQuery(data []byte) (core.Query, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return nil, fmt.Errorf("pie: malformed SSSP query")
	}
	return graph.VertexID(v), nil
}

// EncodePartial implements core.RemoteProgram.
func (SSSP) EncodePartial(ctx *core.Context) ([]byte, error) {
	st, ok := ctx.State.(*ssspState)
	if !ok {
		return nil, fmt.Errorf("pie: SSSP partial requested before PEval")
	}
	return denseFloatUpdates(st.g, st.dist, st.over), nil
}

// DecodePartial implements core.RemoteProgram.
func (SSSP) DecodePartial(ctx *core.Context, data []byte) error {
	dist, err := updatesToFloatMap(data)
	if err != nil {
		return fmt.Errorf("pie: SSSP partial: %w", err)
	}
	st := &ssspState{}
	st.rebind(ctx.Fragment.Graph)
	for v, dv := range dist {
		if i := st.g.IndexOf(v); i >= 0 {
			st.dist[i] = dv
		} else if dv < seq.Infinity {
			st.setOver(v, dv)
		}
	}
	ctx.State = st
	return nil
}

// CC: no query; the partial result is the component identifier of every
// vertex present in the fragment.

// EncodeQuery implements core.RemoteProgram.
func (CC) EncodeQuery(q core.Query) ([]byte, error) { return nil, nil }

// DecodeQuery implements core.RemoteProgram.
func (CC) DecodeQuery(data []byte) (core.Query, error) { return nil, nil }

// EncodePartial implements core.RemoteProgram.
func (CC) EncodePartial(ctx *core.Context) ([]byte, error) {
	st, ok := ctx.State.(*ccState)
	if !ok {
		return nil, fmt.Errorf("pie: CC partial requested before PEval")
	}
	g := st.state.Graph()
	vals := make([]float64, g.NumVertices())
	for i := range vals {
		vals[i] = float64(st.state.Label(i))
	}
	var over map[graph.VertexID]float64
	if om := st.state.Over(); len(om) > 0 {
		over = make(map[graph.VertexID]float64, len(om))
		for v, cid := range om {
			over[v] = float64(cid)
		}
	}
	return denseFloatUpdates(g, vals, over), nil
}

// DecodePartial implements core.RemoteProgram.
func (CC) DecodePartial(ctx *core.Context, data []byte) error {
	m, err := updatesToFloatMap(data)
	if err != nil {
		return fmt.Errorf("pie: CC partial: %w", err)
	}
	g := ctx.Fragment.Graph
	labels := make([]graph.VertexID, g.NumVertices())
	var extra map[graph.VertexID]graph.VertexID
	for i := range labels {
		labels[i] = g.VertexAt(i) // default: own singleton
	}
	for v, cid := range m {
		if i := g.IndexOf(v); i >= 0 {
			labels[i] = graph.VertexID(int64(cid))
		} else {
			if extra == nil {
				extra = make(map[graph.VertexID]graph.VertexID)
			}
			extra[v] = graph.VertexID(int64(cid))
		}
	}
	st := &ccState{state: inc.NewCCDense(g, labels)}
	if extra != nil {
		st.state.Merge(extra)
	}
	ctx.State = st
	return nil
}

// PageRank: the query is the damping/tolerance/rounds configuration; the
// partial result is the rank of every vertex present in the fragment.

// EncodeQuery implements core.RemoteProgram.
func (PageRank) EncodeQuery(q core.Query) ([]byte, error) {
	prq, ok := q.(PageRankQuery)
	if !ok {
		return nil, fmt.Errorf("pie: PageRank query must be a PageRankQuery, got %T", q)
	}
	buf := binary.LittleEndian.AppendUint64(nil, math.Float64bits(prq.Damping))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(prq.Tolerance))
	buf = binary.AppendVarint(buf, int64(prq.MaxRounds))
	return buf, nil
}

// DecodeQuery implements core.RemoteProgram.
func (PageRank) DecodeQuery(data []byte) (core.Query, error) {
	if len(data) < 17 {
		return nil, fmt.Errorf("pie: malformed PageRank query")
	}
	var q PageRankQuery
	q.Damping = math.Float64frombits(binary.LittleEndian.Uint64(data))
	q.Tolerance = math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	rounds, n := binary.Varint(data[16:])
	if n <= 0 {
		return nil, fmt.Errorf("pie: malformed PageRank query")
	}
	q.MaxRounds = int(rounds)
	return q, nil
}

// EncodePartial implements core.RemoteProgram.
func (PageRank) EncodePartial(ctx *core.Context) ([]byte, error) {
	st, ok := ctx.State.(*prState)
	if !ok {
		return nil, fmt.Errorf("pie: PageRank partial requested before PEval")
	}
	return denseFloatUpdates(st.g, st.rank, st.over), nil
}

// DecodePartial implements core.RemoteProgram.
func (PageRank) DecodePartial(ctx *core.Context, data []byte) error {
	rank, err := updatesToFloatMap(data)
	if err != nil {
		return fmt.Errorf("pie: PageRank partial: %w", err)
	}
	st := newPRState(ctx, 0)
	for v, r := range rank {
		if i := st.g.IndexOf(v); i >= 0 {
			st.rank[i] = r
		} else {
			if st.over == nil {
				st.over = make(map[graph.VertexID]float64)
			}
			st.over[v] = r
		}
	}
	ctx.State = st
	return nil
}

// Compile-time checks: the async-capable trio is also the distributed trio.
var (
	_ core.RemoteProgram = SSSP{}
	_ core.RemoteProgram = CC{}
	_ core.RemoteProgram = PageRank{}
)
