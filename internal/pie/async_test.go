package pie

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/graphgen"
)

// Randomized cross-mode equivalence: for every async-capable program the
// asynchronous plane must produce the same answer as BSP on generated
// graphs, across worker counts, under concurrent sessions and across
// ApplyUpdates epochs. SSSP and CC are compared exactly (min-semilattice
// fixpoints are schedule-independent); PageRank up to its convergence
// tolerance (termination is tolerance-based, so different schedules stop at
// slightly different approximations of the same fixpoint).

func randomGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	switch seed % 3 {
	case 0:
		return graphgen.RoadNetwork(6+rng.Intn(6), 6+rng.Intn(6), graphgen.Config{Seed: seed})
	case 1:
		return graphgen.SocialNetwork(150+rng.Intn(150), 3+rng.Intn(3), graphgen.Config{Seed: seed})
	default:
		return graphgen.Uniform(120+rng.Intn(120), 400+rng.Intn(300), graphgen.Config{Seed: seed})
	}
}

func TestAsyncSSSPMatchesBSPRandomized(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 6} {
		g := randomGraph(seed)
		src := g.VertexAt(int(seed*7) % g.NumVertices())
		workers := 2 + int(seed)%4
		s, err := core.NewSession(g, core.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		bsp, err := s.RunMode(src, SSSP{}, core.ModeBSP)
		if err != nil {
			t.Fatalf("seed=%d bsp: %v", seed, err)
		}
		async, err := s.RunMode(src, SSSP{}, core.ModeAsync)
		if err != nil {
			t.Fatalf("seed=%d async: %v", seed, err)
		}
		s.Close()
		b := bsp.Output.(map[graph.VertexID]float64)
		a := async.Output.(map[graph.VertexID]float64)
		if len(a) != len(b) {
			t.Fatalf("seed=%d: result sizes %d vs %d", seed, len(a), len(b))
		}
		for v, d := range b {
			if a[v] != d {
				t.Fatalf("seed=%d workers=%d: dist(%d) async %v != bsp %v", seed, workers, v, a[v], d)
			}
		}
	}
}

func TestAsyncCCMatchesBSPRandomized(t *testing.T) {
	for _, seed := range []int64{11, 12, 13, 14} {
		g := randomGraph(seed)
		workers := 2 + int(seed)%3
		s, err := core.NewSession(g, core.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		bsp, err := s.RunMode(nil, CC{}, core.ModeBSP)
		if err != nil {
			t.Fatalf("seed=%d bsp: %v", seed, err)
		}
		async, err := s.RunMode(nil, CC{}, core.ModeAsync)
		if err != nil {
			t.Fatalf("seed=%d async: %v", seed, err)
		}
		s.Close()
		b := bsp.Output.(map[graph.VertexID]graph.VertexID)
		a := async.Output.(map[graph.VertexID]graph.VertexID)
		if len(a) != len(b) {
			t.Fatalf("seed=%d: result sizes %d vs %d", seed, len(a), len(b))
		}
		for v, cid := range b {
			if a[v] != cid {
				t.Fatalf("seed=%d workers=%d: cid(%d) async %v != bsp %v", seed, workers, v, a[v], cid)
			}
		}
	}
}

func TestAsyncPageRankMatchesBSPWithinTolerance(t *testing.T) {
	for _, seed := range []int64{21, 22} {
		g := randomGraph(seed)
		s, err := core.NewSession(g, core.Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		// Let both planes iterate to genuine convergence. The round cap must
		// be out of reach: a capped fragment freezes mid-run in whatever
		// state its schedule produced (async fragments sweep more often than
		// BSP's one-per-superstep, so they hit a tight cap earlier), while a
		// tight tolerance makes both planes quiesce only near the unique
		// fixpoint of the rank equations.
		q := PageRankQuery{Damping: 0.85, Tolerance: 1e-8, MaxRounds: 1 << 20}
		bsp, err := s.RunMode(q, PageRank{}, core.ModeBSP)
		if err != nil {
			t.Fatalf("seed=%d bsp: %v", seed, err)
		}
		async, err := s.RunMode(q, PageRank{}, core.ModeAsync)
		if err != nil {
			t.Fatalf("seed=%d async: %v", seed, err)
		}
		s.Close()
		b := bsp.Output.(map[graph.VertexID]float64)
		a := async.Output.(map[graph.VertexID]float64)
		if len(a) != len(b) {
			t.Fatalf("seed=%d: result sizes %d vs %d", seed, len(a), len(b))
		}
		// Ranks are normalized to sum |V|; both schedules now approximate
		// the same fixpoint to ~1e-8, so per-vertex ranks agree tightly.
		const tol = 1e-3
		for v, r := range b {
			if math.Abs(a[v]-r) > tol*math.Max(1, r) {
				t.Fatalf("seed=%d: rank(%d) async %v vs bsp %v beyond tolerance", seed, v, a[v], r)
			}
		}
	}
}

// TestBSPOnlyProgramsRejectAsync: Sim, SubIso and CF have non-idempotent or
// staged message disciplines and must be refused by the async plane.
func TestBSPOnlyProgramsRejectAsync(t *testing.T) {
	g := graphgen.SocialNetwork(80, 3, graphgen.Config{Seed: 9, Labels: 2})
	pattern := graphgen.Pattern(g, 2, 1, 33)
	s, err := core.NewSession(g, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, tc := range []struct {
		name string
		prog core.Program
		q    core.Query
	}{
		{"Sim", Sim{}, pattern},
		{"SubIso", SubIso{MaxMatches: 5}, pattern},
		{"CF", CF{}, DefaultCFQuery(0.9)},
	} {
		if _, err := s.RunMode(tc.q, tc.prog, core.ModeAsync); !errors.Is(err, core.ErrAsyncUnsupported) {
			t.Fatalf("%s: err = %v, want ErrAsyncUnsupported", tc.name, err)
		}
	}
}

// TestAsyncEquivalenceUnderConcurrencyAndEpochs interleaves concurrent
// BSP/async SSSP queries with monotone graph-update batches; after every
// epoch both planes must agree exactly.
func TestAsyncEquivalenceUnderConcurrencyAndEpochs(t *testing.T) {
	g := graphgen.RoadNetwork(8, 8, graphgen.Config{Seed: 31})
	s, err := core.NewSession(g, core.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(77))
	src := g.VertexAt(0)

	for epoch := 0; epoch < 4; epoch++ {
		if epoch > 0 {
			var batch []graph.Update
			for i := 0; i < 5; i++ {
				u := g.VertexAt(rng.Intn(g.NumVertices()))
				v := g.VertexAt(rng.Intn(g.NumVertices()))
				if u != v {
					batch = append(batch, graph.AddEdgeUpdate(u, v, 1+rng.Float64(), ""))
				}
			}
			if _, err := s.ApplyUpdates(batch); err != nil {
				t.Fatalf("epoch %d: %v", epoch, err)
			}
		}
		type answer struct {
			mode core.ExecMode
			dist map[graph.VertexID]float64
		}
		results := make([]answer, 6)
		var wg sync.WaitGroup
		errCh := make(chan error, len(results))
		for i := range results {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				mode := core.ModeBSP
				if i%2 == 1 {
					mode = core.ModeAsync
				}
				res, err := s.RunMode(src, SSSP{}, mode)
				if err != nil {
					errCh <- err
					return
				}
				results[i] = answer{mode: mode, dist: res.Output.(map[graph.VertexID]float64)}
			}(i)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		want := results[0].dist
		for i, r := range results[1:] {
			if len(r.dist) != len(want) {
				t.Fatalf("epoch %d query %d (%v): %d distances, want %d", epoch, i+1, r.mode, len(r.dist), len(want))
			}
			for v, d := range want {
				if r.dist[v] != d {
					t.Fatalf("epoch %d query %d (%v): dist(%d) = %v, want %v", epoch, i+1, r.mode, v, r.dist[v], d)
				}
			}
		}
	}
}
