package pie

import (
	"fmt"
	"math"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/mpi"
)

// PageRankQuery configures the PageRank extension program: damping factor,
// convergence tolerance and an upper bound on refinement rounds.
type PageRankQuery struct {
	Damping   float64
	Tolerance float64
	MaxRounds int
}

// DefaultPageRankQuery returns the standard 0.85-damping configuration.
func DefaultPageRankQuery() PageRankQuery {
	return PageRankQuery{Damping: 0.85, Tolerance: 1e-4, MaxRounds: 30}
}

// PageRank is an extension PIE program beyond the paper's five query
// classes; it demonstrates that fixpoint-style analytics fit the same model.
// Each fragment repeatedly runs local power iterations; the ranks of border
// nodes are the update parameters, aggregated by summing contributions is not
// monotonic, so instead the program ships the rank mass flowing over cut
// edges and terminates after a fixed number of rounds (like CF's
// predetermined-supersteps condition).
type PageRank struct{}

// prState keeps the per-fragment rank vector and its sweep scratch buffers
// as flat slices indexed by the fragment graph's dense vertex index, plus a
// precomputed ownership bitmap, so the power-iteration inner loop runs with
// no map or partition lookups at all. over holds decoded partial entries for
// vertices absent from the bound graph (kept only so re-encoding stays
// total).
type prState struct {
	g      *graph.Graph
	rank   []float64 // current rank by dense vertex index
	next   []float64 // sweep scratch, swapped with rank
	out    []float64 // out-flowing mass toward non-owned copies, by index
	owned  []bool    // whether the fragment owns the vertex at each index
	over   map[graph.VertexID]float64
	incast map[graph.VertexID]map[int64]float64 // border vertex -> sender -> latest mass
	rounds int
}

// newPRState builds a fresh dense state bound to the fragment: all ranks at
// the given initial value, ownership resolved once up front.
func newPRState(ctx *core.Context, initial float64) *prState {
	g := ctx.Fragment.Graph
	n := g.NumVertices()
	st := &prState{
		g:      g,
		rank:   make([]float64, n),
		next:   make([]float64, n),
		out:    make([]float64, n),
		owned:  make([]bool, n),
		incast: make(map[graph.VertexID]map[int64]float64),
	}
	for i := 0; i < n; i++ {
		st.rank[i] = initial
		st.owned[i] = ctx.Fragment.Owns(g.VertexAt(i))
	}
	return st
}

// Name implements core.Program.
func (PageRank) Name() string { return "PageRank" }

// PEval implements core.Program.
func (PageRank) PEval(ctx *core.Context) error {
	q, ok := ctx.Query.(PageRankQuery)
	if !ok {
		return fmt.Errorf("pie: PageRank query must be a PageRankQuery, got %T", ctx.Query)
	}
	st := newPRState(ctx, 1.0)
	ctx.State = st
	for _, v := range ctx.Fragment.InBorder {
		ctx.Declare(v, 0, 0, nil)
	}
	for _, v := range ctx.Fragment.OutBorder {
		ctx.Declare(v, 0, 0, nil)
	}
	PageRank{}.iterate(ctx, q, st)
	return nil
}

// IncEval implements core.Program.
func (PageRank) IncEval(ctx *core.Context, msgs []mpi.Update) error {
	q, ok := ctx.Query.(PageRankQuery)
	if !ok {
		return fmt.Errorf("pie: PageRank query must be a PageRankQuery, got %T", ctx.Query)
	}
	st, ok := ctx.State.(*prState)
	if !ok {
		return fmt.Errorf("pie: PageRank IncEval called before PEval")
	}
	for _, m := range msgs {
		if m.Vertex == core.RawMessageVertex {
			continue
		}
		v := graph.VertexID(m.Vertex)
		if st.incast[v] == nil {
			st.incast[v] = make(map[int64]float64)
		}
		st.incast[v][m.Key] = m.Value
	}
	if st.rounds >= q.MaxRounds {
		return nil
	}
	PageRank{}.iterate(ctx, q, st)
	return nil
}

// iterate runs power-iteration sweeps to local convergence — the PIE way: a
// full sequential algorithm over the fragment given the currently known
// cross-fragment mass, not a single step of it. Sweeping to the local
// fixpoint is what makes the final answer schedule-independent: at global
// quiescence every fragment is converged with respect to the final incast,
// which pins the unique fixpoint of the coupled rank equations regardless
// of how (BSP lockstep, async batches) the exchanges were paced. The mass
// flowing toward out-border copies is then shipped; SetVar's change
// detection stops the exchange once the masses stabilize.
func (PageRank) iterate(ctx *core.Context, q PageRankQuery, st *prState) {
	g := st.g
	n := g.NumVertices()
	st.rounds++
	// Cap the local solve defensively; the tolerance is the real stopper.
	const maxLocalSweeps = 100000
	for sweep := 0; sweep < maxLocalSweeps; sweep++ {
		next, out := st.next, st.out
		for i := 0; i < n; i++ {
			next[i] = 1 - q.Damping
			out[i] = 0
		}
		for i := 0; i < n; i++ {
			if !st.owned[i] {
				continue
			}
			deg := g.OutDegree(i)
			if deg == 0 {
				continue
			}
			share := q.Damping * st.rank[i] / float64(deg)
			for _, he := range g.OutEdges(i) {
				next[he.To] += share
				if !st.owned[he.To] {
					out[he.To] += share
				}
			}
		}
		// Fold in the mass received from other fragments for owned border
		// nodes (summing the latest contribution of every sender).
		for v, bySender := range st.incast {
			i := g.IndexOf(v)
			if i < 0 || !st.owned[i] {
				continue
			}
			for _, mass := range bySender {
				next[i] += mass
			}
		}
		delta := 0.0
		for i := 0; i < n; i++ {
			delta += math.Abs(next[i] - st.rank[i])
		}
		st.rank, st.next = next, st.rank
		if delta < q.Tolerance {
			break
		}
	}
	// Ship the converged outgoing mass, one variable per (border vertex,
	// sending fragment) so contributions from different fragments do not
	// overwrite each other at the receiver. Unchanged masses are deduplicated
	// by SetVar, which is what eventually quiesces the exchange.
	for i := 0; i < n; i++ {
		if mass := st.out[i]; mass != 0 {
			ctx.SetVar(g.VertexAt(i), int64(ctx.Worker), mass, nil)
		}
	}
}

// rankOf returns the rank of v by external ID (0 when unknown).
func (st *prState) rankOf(v graph.VertexID) float64 {
	if i := st.g.IndexOf(v); i >= 0 {
		return st.rank[i]
	}
	return st.over[v]
}

// Assemble implements core.Program: collect the rank of owned vertices and
// normalize so ranks sum to |V|.
func (PageRank) Assemble(q core.Query, ctxs []*core.Context) (any, error) {
	out := make(map[graph.VertexID]float64)
	for _, ctx := range ctxs {
		st, ok := ctx.State.(*prState)
		if !ok {
			continue
		}
		for _, v := range ctx.Fragment.Local {
			out[v] = st.rankOf(v)
		}
	}
	total := 0.0
	for _, r := range out {
		total += r
	}
	if total > 0 {
		scale := float64(len(out)) / total
		for v := range out {
			out[v] *= scale
		}
	}
	return out, nil
}

// Aggregate implements core.Program: the value is replaced by the most recent
// contribution (PageRank mass is recomputed from scratch every round, so the
// newest value wins; rounds are monotonically increasing).
func (PageRank) Aggregate(existing, incoming mpi.Update) mpi.Update { return incoming }

// AsyncSafe implements core.AsyncCapable: the incast keyed by sending
// fragment makes re-delivery overwrite rather than double-count, so the
// asynchronous schedule converges to the same fixpoint of the rank equations
// the BSP schedule approximates. The answers agree up to the convergence
// tolerance (not bit-for-bit — termination is tolerance-based), which is the
// contract PageRank callers already accept between runs at different worker
// counts.
func (PageRank) AsyncSafe() bool { return true }
