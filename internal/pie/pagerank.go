package pie

import (
	"fmt"
	"math"
	"sort"

	"grape/internal/core"
	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/par"
)

// PageRankQuery configures the PageRank extension program: damping factor,
// convergence tolerance and an upper bound on refinement rounds.
type PageRankQuery struct {
	Damping   float64
	Tolerance float64
	MaxRounds int
}

// DefaultPageRankQuery returns the standard 0.85-damping configuration.
func DefaultPageRankQuery() PageRankQuery {
	return PageRankQuery{Damping: 0.85, Tolerance: 1e-4, MaxRounds: 30}
}

// PageRank is an extension PIE program beyond the paper's five query
// classes; it demonstrates that fixpoint-style analytics fit the same model.
// Each fragment repeatedly runs local power iterations; the ranks of border
// nodes are the update parameters, aggregated by summing contributions is not
// monotonic, so instead the program ships the rank mass flowing over cut
// edges and terminates after a fixed number of rounds (like CF's
// predetermined-supersteps condition).
type PageRank struct{}

// prState keeps the per-fragment rank vector and its sweep scratch buffers
// as flat slices indexed by the fragment graph's dense vertex index, plus a
// precomputed ownership bitmap, so the power-iteration inner loop runs with
// no map or partition lookups at all. over holds decoded partial entries for
// vertices absent from the bound graph (kept only so re-encoding stays
// total).
type prState struct {
	g      *graph.Graph
	rank   []float64 // current rank by dense vertex index
	next   []float64 // sweep scratch, swapped with rank
	out    []float64 // out-flowing mass toward non-owned copies, by index
	owned  []bool    // whether the fragment owns the vertex at each index
	over   map[graph.VertexID]float64
	incast map[graph.VertexID]map[int64]float64 // border vertex -> sender -> latest mass
	rounds int

	// Pull-direction CSR for the parallel sweep, built lazily on first use:
	// for each destination j, pullSrc[pullOff[j]:pullOff[j+1]] lists the
	// contributing sources (owned, out-degree > 0) in exactly the order the
	// sequential scatter adds their shares — ascending source index, parallel
	// edges in out-CSR order — so the per-destination pull fold reproduces the
	// scatter's floating-point sums bit for bit. The graph's own in-adjacency
	// cannot serve here: it is laid out in builder insertion order, not
	// ascending source order. shares is the per-source scratch the sweep reads.
	pullOff []int32
	pullSrc []int32
	shares  []float64
}

// buildPull constructs the pull CSR by counting sort over the scatter's own
// iteration order, so per-destination source lists come out source-ascending.
func (st *prState) buildPull() {
	if st.pullOff != nil {
		return
	}
	g := st.g
	n := g.NumVertices()
	counts := make([]int32, n+1)
	for i := 0; i < n; i++ {
		if !st.owned[i] || g.OutDegree(i) == 0 {
			continue
		}
		for _, he := range g.OutEdges(i) {
			counts[he.To+1]++
		}
	}
	for j := 0; j < n; j++ {
		counts[j+1] += counts[j]
	}
	st.pullOff = counts
	st.pullSrc = make([]int32, counts[n])
	fill := make([]int32, n)
	copy(fill, counts[:n])
	for i := 0; i < n; i++ {
		if !st.owned[i] || g.OutDegree(i) == 0 {
			continue
		}
		for _, he := range g.OutEdges(i) {
			st.pullSrc[fill[he.To]] = int32(i)
			fill[he.To]++
		}
	}
	st.shares = make([]float64, n)
}

// newPRState builds a fresh dense state bound to the fragment: all ranks at
// the given initial value, ownership resolved once up front.
func newPRState(ctx *core.Context, initial float64) *prState {
	g := ctx.Fragment.Graph
	n := g.NumVertices()
	st := &prState{
		g:      g,
		rank:   make([]float64, n),
		next:   make([]float64, n),
		out:    make([]float64, n),
		owned:  make([]bool, n),
		incast: make(map[graph.VertexID]map[int64]float64),
	}
	for i := 0; i < n; i++ {
		st.rank[i] = initial
		st.owned[i] = ctx.Fragment.Owns(g.VertexAt(i))
	}
	return st
}

// Name implements core.Program.
func (PageRank) Name() string { return "PageRank" }

// PEval implements core.Program.
func (PageRank) PEval(ctx *core.Context) error {
	q, ok := ctx.Query.(PageRankQuery)
	if !ok {
		return fmt.Errorf("pie: PageRank query must be a PageRankQuery, got %T", ctx.Query)
	}
	st := newPRState(ctx, 1.0)
	ctx.State = st
	for _, v := range ctx.Fragment.InBorder {
		ctx.Declare(v, 0, 0, nil)
	}
	for _, v := range ctx.Fragment.OutBorder {
		ctx.Declare(v, 0, 0, nil)
	}
	PageRank{}.iterate(ctx, q, st)
	return nil
}

// IncEval implements core.Program.
func (PageRank) IncEval(ctx *core.Context, msgs []mpi.Update) error {
	q, ok := ctx.Query.(PageRankQuery)
	if !ok {
		return fmt.Errorf("pie: PageRank query must be a PageRankQuery, got %T", ctx.Query)
	}
	st, ok := ctx.State.(*prState)
	if !ok {
		return fmt.Errorf("pie: PageRank IncEval called before PEval")
	}
	for _, m := range msgs {
		if m.Vertex == core.RawMessageVertex {
			continue
		}
		v := graph.VertexID(m.Vertex)
		if st.incast[v] == nil {
			st.incast[v] = make(map[int64]float64)
		}
		st.incast[v][m.Key] = m.Value
	}
	if st.rounds >= q.MaxRounds {
		return nil
	}
	PageRank{}.iterate(ctx, q, st)
	return nil
}

// iterate runs power-iteration sweeps to local convergence — the PIE way: a
// full sequential algorithm over the fragment given the currently known
// cross-fragment mass, not a single step of it. Sweeping to the local
// fixpoint is what makes the final answer schedule-independent: at global
// quiescence every fragment is converged with respect to the final incast,
// which pins the unique fixpoint of the coupled rank equations regardless
// of how (BSP lockstep, async batches) the exchanges were paced. The mass
// flowing toward out-border copies is then shipped; SetVar's change
// detection stops the exchange once the masses stabilize.
func (PageRank) iterate(ctx *core.Context, q PageRankQuery, st *prState) {
	g := st.g
	n := g.NumVertices()
	p := ctx.Pool()
	st.rounds++
	// Flatten the incast into (dense index, per-sender masses) entries sorted
	// by (vertex, sender). The map's iteration order is random, and float
	// addition is not associative, so folding in sorted order is what makes
	// both the sequential and the parallel plane deterministic — and therefore
	// byte-identical to each other.
	type inEntry struct {
		idx    int
		masses []float64
	}
	var entries []inEntry
	if len(st.incast) > 0 {
		verts := make([]graph.VertexID, 0, len(st.incast))
		for v := range st.incast {
			verts = append(verts, v)
		}
		sort.Slice(verts, func(a, b int) bool { return verts[a] < verts[b] })
		for _, v := range verts {
			i := g.IndexOf(v)
			if i < 0 || !st.owned[i] {
				continue
			}
			bySender := st.incast[v]
			senders := make([]int64, 0, len(bySender))
			for s := range bySender {
				senders = append(senders, s)
			}
			sort.Slice(senders, func(a, b int) bool { return senders[a] < senders[b] })
			masses := make([]float64, len(senders))
			for k, s := range senders {
				masses[k] = bySender[s]
			}
			entries = append(entries, inEntry{idx: i, masses: masses})
		}
	}
	parallel := p.Width() > 1
	if parallel {
		st.buildPull()
	}
	// Cap the local solve defensively; the tolerance is the real stopper.
	const maxLocalSweeps = 100000
	for sweep := 0; sweep < maxLocalSweeps; sweep++ {
		next, out := st.next, st.out
		if parallel {
			sweepParallel(g, q, st, p, next, out)
		} else {
			for i := 0; i < n; i++ {
				next[i] = 1 - q.Damping
				out[i] = 0
			}
			for i := 0; i < n; i++ {
				if !st.owned[i] {
					continue
				}
				deg := g.OutDegree(i)
				if deg == 0 {
					continue
				}
				share := q.Damping * st.rank[i] / float64(deg)
				for _, he := range g.OutEdges(i) {
					next[he.To] += share
					if !st.owned[he.To] {
						out[he.To] += share
					}
				}
			}
		}
		// Fold in the mass received from other fragments for owned border
		// nodes (summing the latest contribution of every sender).
		for _, e := range entries {
			for _, mass := range e.masses {
				next[e.idx] += mass
			}
		}
		delta := 0.0
		for i := 0; i < n; i++ {
			delta += math.Abs(next[i] - st.rank[i])
		}
		st.rank, st.next = next, st.rank
		if delta < q.Tolerance {
			break
		}
	}
	// Ship the converged outgoing mass, one variable per (border vertex,
	// sending fragment) so contributions from different fragments do not
	// overwrite each other at the receiver. Unchanged masses are deduplicated
	// by SetVar, which is what eventually quiesces the exchange.
	for i := 0; i < n; i++ {
		if mass := st.out[i]; mass != 0 {
			ctx.SetVar(g.VertexAt(i), int64(ctx.Worker), mass, nil)
		}
	}
}

// sweepParallel is one rank sweep chunked over the pool: a shares pass
// precomputes every owned source's outgoing share, then a pull pass computes
// each destination independently from the pull CSR. Per destination it adds
// the same shares in the same order the sequential scatter does — starting
// from 1-d for next, and from 0 in a separate fold for out — so next and out
// come out bit-identical to the scatter's, at any pool width.
func sweepParallel(g *graph.Graph, q PageRankQuery, st *prState, p *par.Pool, next, out []float64) {
	n := g.NumVertices()
	shares := st.shares
	p.Sweep(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if st.owned[i] {
				if deg := g.OutDegree(i); deg > 0 {
					shares[i] = q.Damping * st.rank[i] / float64(deg)
					continue
				}
			}
			shares[i] = 0
		}
	})
	p.Sweep(n, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			acc := 1 - q.Damping
			for k := st.pullOff[j]; k < st.pullOff[j+1]; k++ {
				acc += shares[st.pullSrc[k]]
			}
			next[j] = acc
			if st.owned[j] {
				out[j] = 0
				continue
			}
			o := 0.0
			for k := st.pullOff[j]; k < st.pullOff[j+1]; k++ {
				o += shares[st.pullSrc[k]]
			}
			out[j] = o
		}
	})
}

// rankOf returns the rank of v by external ID (0 when unknown).
func (st *prState) rankOf(v graph.VertexID) float64 {
	if i := st.g.IndexOf(v); i >= 0 {
		return st.rank[i]
	}
	return st.over[v]
}

// Assemble implements core.Program: collect the rank of owned vertices and
// normalize so ranks sum to |V|.
func (PageRank) Assemble(q core.Query, ctxs []*core.Context) (any, error) {
	out := make(map[graph.VertexID]float64)
	for _, ctx := range ctxs {
		st, ok := ctx.State.(*prState)
		if !ok {
			continue
		}
		for _, v := range ctx.Fragment.Local {
			out[v] = st.rankOf(v)
		}
	}
	// Normalize so ranks sum to |V|, folding in sorted vertex order: map
	// iteration order is random and float addition is not associative, so an
	// unordered fold would make even two identical runs disagree in the last
	// bits of every rank.
	ids := make([]graph.VertexID, 0, len(out))
	for v := range out {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	total := 0.0
	for _, v := range ids {
		total += out[v]
	}
	if total > 0 {
		scale := float64(len(out)) / total
		for _, v := range ids {
			out[v] *= scale
		}
	}
	return out, nil
}

// Aggregate implements core.Program: the value is replaced by the most recent
// contribution (PageRank mass is recomputed from scratch every round, so the
// newest value wins; rounds are monotonically increasing).
func (PageRank) Aggregate(existing, incoming mpi.Update) mpi.Update { return incoming }

// AsyncSafe implements core.AsyncCapable: the incast keyed by sending
// fragment makes re-delivery overwrite rather than double-count, so the
// asynchronous schedule converges to the same fixpoint of the rank equations
// the BSP schedule approximates. The answers agree up to the convergence
// tolerance (not bit-for-bit — termination is tolerance-based), which is the
// contract PageRank callers already accept between runs at different worker
// counts.
func (PageRank) AsyncSafe() bool { return true }

// ParallelSafe implements core.ParallelCapable: the pool-chunked rank sweep
// pulls each destination's shares in the sequential scatter's exact addition
// order (see sweepParallel), so parallel runs produce bit-identical ranks to
// the sequential reference path — a stronger guarantee than AsyncSafe's
// tolerance-level agreement.
func (PageRank) ParallelSafe() bool { return true }
