package vc

import (
	"math"
	"testing"

	"grape/internal/graph"
	"grape/internal/graphgen"
	"grape/internal/seq"
)

func TestVCSSSPMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"road":   graphgen.RoadNetwork(10, 10, graphgen.Config{Seed: 1}),
		"social": graphgen.SocialNetwork(300, 4, graphgen.Config{Seed: 2, Labels: 5}),
	}
	for name, g := range graphs {
		src := g.VertexAt(g.NumVertices() - 1)
		want := seq.Dijkstra(g, src)
		for _, combine := range []bool{false, true} {
			res, err := New(Options{Workers: 4, CombineMessages: combine}).Run(g, SSSP{Source: src})
			if err != nil {
				t.Fatalf("%s combine=%v: %v", name, combine, err)
			}
			got := Distances(res)
			for v, d := range want {
				if math.Abs(got[v]-d) > 1e-9 && !(math.IsInf(got[v], 1) && math.IsInf(d, 1)) {
					t.Fatalf("%s combine=%v: dist(%d) = %v, want %v", name, combine, v, got[v], d)
				}
			}
			if res.Stats.Supersteps < 2 {
				t.Fatalf("%s: suspiciously few supersteps: %d", name, res.Stats.Supersteps)
			}
		}
	}
}

func TestVCSSSPTakesManySuperstepsOnRoadNetwork(t *testing.T) {
	// The vertex-centric engine needs roughly diameter-many supersteps on a
	// road network — the effect behind Table 1.
	g := graphgen.RoadNetwork(15, 15, graphgen.Config{Seed: 3})
	src := g.VertexAt(0)
	res, err := New(Options{Workers: 4}).Run(g, SSSP{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Supersteps < 15 {
		t.Fatalf("vertex-centric SSSP took only %d supersteps on a 15x15 grid", res.Stats.Supersteps)
	}
}

func TestVCCombinerReducesMessages(t *testing.T) {
	g := graphgen.SocialNetwork(300, 5, graphgen.Config{Seed: 4, Labels: 5})
	src := g.VertexAt(g.NumVertices() - 1)
	plain, err := New(Options{Workers: 4}).Run(g, SSSP{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	gas, err := New(Options{Workers: 4, CombineMessages: true}).Run(g, SSSP{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if gas.Stats.MessagesSent > plain.Stats.MessagesSent {
		t.Fatalf("combining increased messages: %d vs %d", gas.Stats.MessagesSent, plain.Stats.MessagesSent)
	}
	if gas.Stats.Engine != "GAS" || plain.Stats.Engine != "Pregel" {
		t.Fatalf("engine names wrong: %q %q", gas.Stats.Engine, plain.Stats.Engine)
	}
}

func TestVCCCMatchesSequential(t *testing.T) {
	g := graphgen.RoadNetwork(9, 9, graphgen.Config{Seed: 5})
	want := seq.ConnectedComponents(g)
	res, err := New(Options{Workers: 3}).Run(g, CC{})
	if err != nil {
		t.Fatal(err)
	}
	got := Components(res)
	for v, c := range want {
		if got[v] != c {
			t.Fatalf("cid(%d) = %d, want %d", v, got[v], c)
		}
	}
}

func TestVCSimMatchesSequential(t *testing.T) {
	g := graphgen.SocialNetwork(250, 4, graphgen.Config{Seed: 6, Labels: 6})
	for s := int64(0); s < 3; s++ {
		q := graphgen.Pattern(g, 5, 8, s)
		want := seq.Simulation(q, g)
		res, err := New(Options{Workers: 4}).Run(g, Sim{Pattern: q})
		if err != nil {
			t.Fatal(err)
		}
		got := SimRelation(q, res)
		if got.Count() != want.Count() {
			t.Fatalf("pattern %d: %d pairs, want %d", s, got.Count(), want.Count())
		}
	}
}

func TestVCSubIsoMatchesSequential(t *testing.T) {
	g := graphgen.KnowledgeBase(150, 3, 5, graphgen.Config{Seed: 7, Labels: 6})
	q := graphgen.Pattern(g, 4, 5, 2)
	want := seq.SubgraphIsomorphism(q, g, 0)
	res, err := New(Options{Workers: 4}).Run(g, SubIso{Pattern: q})
	if err != nil {
		t.Fatal(err)
	}
	got := Matches(res)
	if len(got) != len(want) {
		t.Fatalf("found %d matches, want %d", len(got), len(want))
	}
	for _, m := range got {
		for _, e := range q.Edges() {
			if !g.HasEdge(m[e.Src], m[e.Dst]) {
				t.Fatalf("invalid match %v", m)
			}
		}
	}
}

func TestVCCFTrains(t *testing.T) {
	g := graphgen.Bipartite(120, 25, 6, graphgen.Config{Seed: 8})
	ratings := seq.RatingsFromGraph(g)
	cfg := seq.DefaultSGDConfig()
	res, err := New(Options{Workers: 4}).Run(g, CF{Config: cfg, MaxRounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	factors := Factors(res)
	if len(factors) != g.NumVertices() {
		t.Fatalf("factors for %d vertices, want %d", len(factors), g.NumVertices())
	}
	rmse := seq.RMSE(factors, ratings)
	// The vertex-centric trainer must at least beat the untrained model.
	initial := make(seq.Factors)
	for _, r := range ratings {
		if _, ok := initial[r.User]; !ok {
			initial[r.User] = seq.InitFactor(r.User, cfg.Factors)
		}
		if _, ok := initial[r.Product]; !ok {
			initial[r.Product] = seq.InitFactor(r.Product, cfg.Factors)
		}
	}
	if rmse >= seq.RMSE(initial, ratings) {
		t.Fatalf("vertex-centric CF did not improve over the untrained model: %v", rmse)
	}
}

func TestVCNilProgramAndGuards(t *testing.T) {
	g := graphgen.RoadNetwork(3, 3, graphgen.Config{Seed: 9})
	if _, err := New(Options{Workers: 2}).Run(g, nil); err == nil {
		t.Fatalf("nil program must be rejected")
	}
	// Non-convergence guard.
	_, err := New(Options{Workers: 2, MaxSupersteps: 3}).Run(g, SSSP{Source: g.VertexAt(0)})
	if err == nil {
		t.Fatalf("MaxSupersteps guard did not trip on a long run")
	}
}
