package vc

import (
	"math"

	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/seq"
)

// SSSP is the classic vertex-centric shortest-path program (Figure 10 of the
// paper): every vertex keeps its current distance, takes the minimum of the
// incoming messages, and when its distance improves it sends dist+w to its
// out-neighbours. On large-diameter graphs this takes as many supersteps as
// the longest shortest-path, which is exactly the effect Table 1 shows.
type SSSP struct {
	Source graph.VertexID
}

// Name implements Program.
func (SSSP) Name() string { return "SSSP" }

// Init implements Program.
func (p SSSP) Init(ctx *VertexContext) {
	if ctx.ID == p.Source {
		ctx.Value = 0.0
	} else {
		ctx.Value = math.Inf(1)
	}
}

// Compute implements Program.
func (p SSSP) Compute(ctx *VertexContext, msgs []Message) {
	mindist := math.Inf(1)
	if ctx.Superstep == 0 && ctx.ID == p.Source {
		mindist = 0
	}
	for _, m := range msgs {
		if m.Value < mindist {
			mindist = m.Value
		}
	}
	cur := ctx.Value.(float64)
	if mindist < cur || (ctx.Superstep == 0 && ctx.ID == p.Source) {
		if mindist < cur {
			ctx.Value = mindist
			cur = mindist
		}
		for _, he := range ctx.OutEdges() {
			ctx.Send(Message{To: ctx.VertexAt(he.To), Value: cur + he.Weight})
		}
	}
	ctx.VoteToHalt()
}

// Combine implements Combiner (GAS mode): min of distances.
func (SSSP) Combine(a, b Message) Message {
	if b.Value < a.Value {
		return b
	}
	return a
}

// Distances extracts the final distance map from a Result.
func Distances(res *Result) map[graph.VertexID]float64 {
	out := make(map[graph.VertexID]float64, len(res.Values))
	for v, val := range res.Values {
		if d, ok := val.(float64); ok {
			out[v] = d
		} else {
			out[v] = math.Inf(1)
		}
	}
	return out
}

// CC is the hash-min connected-components vertex program: every vertex starts
// with its own ID as component identifier, exchanges identifiers with its
// neighbours (in both directions, because components ignore edge direction)
// and keeps the minimum.
type CC struct{}

// Name implements Program.
func (CC) Name() string { return "CC" }

// Init implements Program.
func (CC) Init(ctx *VertexContext) { ctx.Value = float64(ctx.ID) }

// Compute implements Program.
func (CC) Compute(ctx *VertexContext, msgs []Message) {
	cur := ctx.Value.(float64)
	min := cur
	for _, m := range msgs {
		if m.Value < min {
			min = m.Value
		}
	}
	changed := min < cur
	if changed {
		ctx.Value = min
	}
	if ctx.Superstep == 0 || changed {
		for _, he := range ctx.OutEdges() {
			ctx.Send(Message{To: ctx.VertexAt(he.To), Value: min})
		}
		for _, he := range ctx.InEdges() {
			ctx.Send(Message{To: ctx.VertexAt(he.To), Value: min})
		}
	}
	ctx.VoteToHalt()
}

// Combine implements Combiner: min of component identifiers.
func (CC) Combine(a, b Message) Message {
	if b.Value < a.Value {
		return b
	}
	return a
}

// Components extracts the component labelling from a Result.
func Components(res *Result) map[graph.VertexID]graph.VertexID {
	out := make(map[graph.VertexID]graph.VertexID, len(res.Values))
	for v, val := range res.Values {
		out[v] = graph.VertexID(int64(val.(float64)))
	}
	return out
}

// Sim is the vertex-centric graph-simulation program: every vertex keeps a
// Boolean per query vertex ("do I still simulate u?"), learns the match sets
// of its children through messages, and notifies its parents whenever its own
// match set shrinks. The fixpoint is the maximum simulation relation.
type Sim struct {
	Pattern *graph.Graph
}

// Name implements Program.
func (Sim) Name() string { return "Sim" }

type simVertexState struct {
	match    []bool
	children map[graph.VertexID][]bool
}

// Init implements Program.
func (p Sim) Init(ctx *VertexContext) {
	nq := p.Pattern.NumVertices()
	st := &simVertexState{match: make([]bool, nq), children: make(map[graph.VertexID][]bool)}
	for uq := 0; uq < nq; uq++ {
		st.match[uq] = p.Pattern.Label(uq) == ctx.Label
	}
	ctx.Value = st
}

// Compute implements Program.
func (p Sim) Compute(ctx *VertexContext, msgs []Message) {
	st := ctx.Value.(*simVertexState)
	nq := p.Pattern.NumVertices()

	// Fold in the freshest child match bitmaps.
	for _, m := range msgs {
		st.children[graph.VertexID(int64(m.Value))] = bytesToBools(m.Data, nq)
	}

	// Recompute the local match set. A child we have not heard from yet is
	// assumed to match everything (optimistic start), matching the
	// monotonic-shrinking protocol.
	changed := ctx.Superstep == 0
	for uq := 0; uq < nq; uq++ {
		if !st.match[uq] {
			continue
		}
		ok := true
		for _, qe := range p.Pattern.OutEdges(uq) {
			target := int(qe.To)
			witness := false
			for _, he := range ctx.OutEdges() {
				child := ctx.VertexAt(he.To)
				bits, known := st.children[child]
				if !known || bits[target] {
					witness = true
					break
				}
			}
			if !witness {
				ok = false
				break
			}
		}
		if !ok {
			st.match[uq] = false
			changed = true
		}
	}

	// Tell parents about the (possibly shrunken) match set. In superstep 0
	// everyone reports once so parents learn the initial sets.
	if changed {
		payload := boolsToBytes(st.match)
		for _, he := range ctx.InEdges() {
			ctx.Send(Message{To: ctx.VertexAt(he.To), Value: float64(ctx.ID), Data: payload})
		}
	}
	ctx.VoteToHalt()
}

// SimRelation extracts the simulation relation from a Result.
func SimRelation(pattern *graph.Graph, res *Result) seq.SimResult {
	out := make(seq.SimResult, pattern.NumVertices())
	for uq := 0; uq < pattern.NumVertices(); uq++ {
		out[pattern.VertexAt(uq)] = make(map[graph.VertexID]bool)
	}
	for v, val := range res.Values {
		st, ok := val.(*simVertexState)
		if !ok {
			continue
		}
		for uq, m := range st.match {
			if m {
				out[pattern.VertexAt(uq)][v] = true
			}
		}
	}
	return out
}

func boolsToBytes(bs []bool) []byte {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = 1
		}
	}
	return out
}

func bytesToBools(buf []byte, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n && i < len(buf); i++ {
		out[i] = buf[i] == 1
	}
	return out
}

// SubIso is the vertex-centric subgraph-isomorphism program: for d_Q rounds
// every vertex floods its known neighbourhood (as an edge list) to its
// neighbours, so that after d_Q supersteps each vertex holds its complete
// d_Q-hop neighbourhood; it then runs the sequential VF2 search on that
// neighbourhood and reports the matches in which it is the smallest matched
// vertex (for global deduplication). The flooding is what makes the
// vertex-centric baseline ship an order of magnitude more data than GRAPE
// (Figure 8i-j).
type SubIso struct {
	Pattern    *graph.Graph
	MaxMatches int
}

// Name implements Program.
func (SubIso) Name() string { return "SubIso" }

type subIsoVertexState struct {
	vertices map[graph.VertexID]string
	edges    map[[2]graph.VertexID]float64
	matches  []seq.Match
}

// Init implements Program.
func (p SubIso) Init(ctx *VertexContext) {
	st := &subIsoVertexState{
		vertices: map[graph.VertexID]string{ctx.ID: ctx.Label},
		edges:    make(map[[2]graph.VertexID]float64),
	}
	for _, he := range ctx.OutEdges() {
		st.vertices[ctx.VertexAt(he.To)] = ctx.LabelAt(he.To)
		st.edges[[2]graph.VertexID{ctx.ID, ctx.VertexAt(he.To)}] = he.Weight
	}
	ctx.Value = st
}

// Compute implements Program.
func (p SubIso) Compute(ctx *VertexContext, msgs []Message) {
	st := ctx.Value.(*subIsoVertexState)
	dQ := seq.PatternDiameter(p.Pattern)
	if dQ < 1 {
		dQ = 1
	}

	// Merge received neighbourhood fractions.
	for _, m := range msgs {
		ups, err := mpi.DecodeUpdates(m.Data)
		if err != nil {
			continue
		}
		for _, u := range ups {
			if u.Key == 0 { // vertex record: Value unused, Data = label
				st.vertices[graph.VertexID(u.Vertex)] = string(u.Data)
			} else { // edge record: Vertex = src, Data = dst encoded in Key
				st.edges[[2]graph.VertexID{graph.VertexID(u.Vertex), graph.VertexID(u.Key)}] = u.Value
			}
		}
	}

	if ctx.Superstep < dQ {
		// Flood the currently known neighbourhood to all neighbours.
		payload := encodeNeighborhood(st)
		seen := map[graph.VertexID]bool{}
		for _, he := range ctx.OutEdges() {
			to := ctx.VertexAt(he.To)
			if !seen[to] {
				seen[to] = true
				ctx.Send(Message{To: to, Data: payload})
			}
		}
		for _, he := range ctx.InEdges() {
			to := ctx.VertexAt(he.To)
			if !seen[to] {
				seen[to] = true
				ctx.Send(Message{To: to, Data: payload})
			}
		}
	} else if st.matches == nil {
		// Neighbourhood complete: run the sequential search locally.
		b := graph.NewBuilder(true)
		for v, label := range st.vertices {
			b.AddVertex(v, label)
		}
		for e, w := range st.edges {
			b.AddEdge(e[0], e[1], w, "")
		}
		local := b.Build()
		all := seq.SubgraphIsomorphism(p.Pattern, local, p.MaxMatches)
		for _, m := range all {
			min := graph.VertexID(math.MaxInt64)
			for _, v := range m {
				if v < min {
					min = v
				}
			}
			if min == ctx.ID {
				st.matches = append(st.matches, m)
			}
		}
		if st.matches == nil {
			st.matches = []seq.Match{}
		}
	}
	ctx.VoteToHalt()
}

func encodeNeighborhood(st *subIsoVertexState) []byte {
	ups := make([]mpi.Update, 0, len(st.vertices)+len(st.edges))
	for v, label := range st.vertices {
		ups = append(ups, mpi.Update{Vertex: int64(v), Key: 0, Data: []byte(label)})
	}
	for e, w := range st.edges {
		ups = append(ups, mpi.Update{Vertex: int64(e[0]), Key: int64(e[1]), Value: w})
	}
	return mpi.EncodeUpdates(ups)
}

// Matches extracts the deduplicated matches from a Result.
func Matches(res *Result) []seq.Match {
	var out []seq.Match
	for _, val := range res.Values {
		if st, ok := val.(*subIsoVertexState); ok {
			out = append(out, st.matches...)
		}
	}
	return out
}

// CF is the vertex-centric collaborative-filtering program: user vertices
// push their factor vector and rating along their edges; product vertices
// apply SGD steps against each received (vector, rating) pair and push their
// updated vector back; users apply the symmetric update. Training stops after
// MaxRounds supersteps, mirroring the convergence condition used for GRAPE.
type CF struct {
	Config    seq.SGDConfig
	MaxRounds int
}

// Name implements Program.
func (CF) Name() string { return "CF" }

type cfVertexState struct {
	factor []float64
}

// Init implements Program.
func (p CF) Init(ctx *VertexContext) {
	ctx.Value = &cfVertexState{factor: seq.InitFactor(ctx.ID, p.Config.Factors)}
}

// Compute implements Program.
func (p CF) Compute(ctx *VertexContext, msgs []Message) {
	st := ctx.Value.(*cfVertexState)
	maxStep := 2 * p.MaxRounds
	if ctx.Superstep >= maxStep {
		ctx.VoteToHalt()
		return
	}
	// Apply an SGD step for every received (vector, rating) pair.
	for _, m := range msgs {
		other := mpi.BytesToFloat64s(m.Data)
		if len(other) != len(st.factor) {
			continue
		}
		seq.SGDStep(st.factor, other, m.Value, p.Config)
	}
	// Users speak on even supersteps, products on odd ones, so vectors
	// ping-pong across the bipartite graph.
	isUser := ctx.Label == "user"
	if (isUser && ctx.Superstep%2 == 0) || (!isUser && ctx.Superstep%2 == 1) {
		payload := mpi.Float64sToBytes(st.factor)
		for _, he := range ctx.OutEdges() {
			ctx.Send(Message{To: ctx.VertexAt(he.To), Value: he.Weight, Data: payload})
		}
		for _, he := range ctx.InEdges() {
			ctx.Send(Message{To: ctx.VertexAt(he.To), Value: he.Weight, Data: payload})
		}
	}
	ctx.VoteToHalt()
}

// Factors extracts the learned factor vectors from a Result.
func Factors(res *Result) seq.Factors {
	out := make(seq.Factors, len(res.Values))
	for v, val := range res.Values {
		if st, ok := val.(*cfVertexState); ok {
			out[v] = st.factor
		}
	}
	return out
}
