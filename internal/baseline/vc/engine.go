// Package vc implements a synchronous vertex-centric graph engine in the
// style of Pregel/Giraph, plus a GraphLab-like synchronous GAS variant that
// combines messages per destination. It exists as the comparison baseline of
// the paper's evaluation (Section 7): the same queries are recast into
// "think like a vertex" programs, executed superstep by superstep, and
// metered with the same communication accounting as GRAPE so the benchmark
// harness can reproduce Table 1 and Figures 6, 8 and 9.
package vc

import (
	"fmt"
	"sort"
	"sync"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/mpi"
)

// Message is a vertex-to-vertex message.
type Message struct {
	// To is the destination vertex.
	To graph.VertexID
	// Value is a numeric payload (distance, component id, ...).
	Value float64
	// Data is an optional structured payload (bitmaps, factor vectors,
	// serialized neighbourhoods).
	Data []byte
}

// size returns the metered size of a message on the wire.
func (m Message) size() int { return 16 + len(m.Data) }

// VertexContext is the view a vertex program has of one vertex during a
// superstep.
type VertexContext struct {
	// ID and Label identify the vertex.
	ID    graph.VertexID
	Label string
	// Superstep is the current superstep, starting at 0.
	Superstep int
	// Value is the vertex's persistent state, owned by the program.
	Value any

	graph  *graph.Graph
	idx    int
	worker *worker
	halted *bool
}

// OutEdges returns the out-edges of the vertex.
func (c *VertexContext) OutEdges() []graph.HalfEdge { return c.graph.OutEdges(c.idx) }

// InEdges returns the in-edges of the vertex.
func (c *VertexContext) InEdges() []graph.HalfEdge { return c.graph.InEdges(c.idx) }

// VertexAt resolves a dense index from an adjacency entry to an external ID.
func (c *VertexContext) VertexAt(i int32) graph.VertexID { return c.graph.VertexAt(int(i)) }

// LabelAt resolves a dense index to the vertex label.
func (c *VertexContext) LabelAt(i int32) string { return c.graph.Label(int(i)) }

// NumQueryVertices is a convenience used by matching programs.
func (c *VertexContext) Graph() *graph.Graph { return c.graph }

// Send delivers a message to another vertex in the next superstep.
func (c *VertexContext) Send(m Message) { c.worker.send(c.ID, m) }

// VoteToHalt marks the vertex as inactive; it will be woken up again by an
// incoming message.
func (c *VertexContext) VoteToHalt() { *c.halted = true }

// Program is a vertex program in the Pregel style.
type Program interface {
	// Name identifies the query class.
	Name() string
	// Init sets the initial vertex value before superstep 0.
	Init(ctx *VertexContext)
	// Compute is invoked for every active vertex each superstep with the
	// messages addressed to it.
	Compute(ctx *VertexContext, msgs []Message)
}

// Combiner is an optional interface: when the engine runs in GAS mode it
// combines messages addressed to the same vertex with Combine before they are
// shipped, the way GraphLab's gather phase aggregates neighbour values.
type Combiner interface {
	Combine(a, b Message) Message
}

// Options configure a run of the vertex-centric engine.
type Options struct {
	// Workers is the number of workers vertices are hashed onto.
	Workers int
	// MaxSupersteps bounds the computation.
	MaxSupersteps int
	// CombineMessages enables GraphLab-style message combining.
	CombineMessages bool
	// EngineName is the label used in reported stats ("Pregel", "GAS").
	EngineName string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = 50000
	}
	if o.EngineName == "" {
		if o.CombineMessages {
			o.EngineName = "GAS"
		} else {
			o.EngineName = "Pregel"
		}
	}
	return o
}

// Result is the outcome of a vertex-centric run.
type Result struct {
	// Values maps every vertex to its final value.
	Values map[graph.VertexID]any
	// Stats reports time, supersteps and communication volume.
	Stats *metrics.Stats
}

// Engine is the vertex-centric runtime.
type Engine struct{ opts Options }

// New creates an engine.
func New(opts Options) *Engine { return &Engine{opts: opts.withDefaults()} }

type vertexState struct {
	value  any
	halted bool
}

type worker struct {
	id       int
	engine   *runState
	outgoing map[int][]Message // destination worker -> messages
}

func (w *worker) send(from graph.VertexID, m Message) {
	dst := w.engine.ownerOf(m.To)
	w.outgoing[dst] = append(w.outgoing[dst], m)
}

type runState struct {
	g       *graph.Graph
	opts    Options
	owner   []int // dense index -> worker
	byIndex map[graph.VertexID]int
	cluster *mpi.Cluster
	stats   *metrics.Stats
}

func (r *runState) ownerOf(v graph.VertexID) int {
	if i, ok := r.byIndex[v]; ok {
		return r.owner[i]
	}
	return int(uint64(v) % uint64(r.opts.Workers))
}

// Run executes the vertex program over g.
func (e *Engine) Run(g *graph.Graph, prog Program) (*Result, error) {
	if prog == nil {
		return nil, fmt.Errorf("vc: nil program")
	}
	opts := e.opts
	timer := metrics.StartTimer()
	stats := &metrics.Stats{Engine: opts.EngineName, Query: prog.Name(), Workers: opts.Workers}
	n := g.NumVertices()

	cluster, err := mpi.NewCluster(opts.Workers, stats)
	if err != nil {
		return nil, fmt.Errorf("vc: %w", err)
	}
	rs := &runState{
		g:       g,
		opts:    opts,
		owner:   make([]int, n),
		byIndex: make(map[graph.VertexID]int, n),
		cluster: cluster,
		stats:   stats,
	}
	for i := 0; i < n; i++ {
		rs.owner[i] = int(uint64(g.VertexAt(i)) % uint64(opts.Workers))
		rs.byIndex[g.VertexAt(i)] = i
	}

	states := make([]vertexState, n)
	inboxes := make([][]Message, n)

	// Worker-local vertex lists.
	verticesOf := make([][]int, opts.Workers)
	for i := 0; i < n; i++ {
		w := rs.owner[i]
		verticesOf[w] = append(verticesOf[w], i)
	}

	combiner, canCombine := prog.(Combiner)
	useCombiner := opts.CombineMessages && canCombine

	runWorker := func(wid int, superstep int, init bool) {
		w := &worker{id: wid, engine: rs, outgoing: make(map[int][]Message)}
		for _, vi := range verticesOf[wid] {
			st := &states[vi]
			msgs := inboxes[vi]
			if !init && st.halted && len(msgs) == 0 {
				continue
			}
			if len(msgs) > 0 {
				st.halted = false
			}
			ctx := &VertexContext{
				ID:        g.VertexAt(vi),
				Label:     g.Label(vi),
				Superstep: superstep,
				Value:     st.value,
				graph:     g,
				idx:       vi,
				worker:    w,
				halted:    &st.halted,
			}
			if init {
				prog.Init(ctx)
			}
			prog.Compute(ctx, msgs)
			st.value = ctx.Value
			inboxes[vi] = nil
		}
		// Ship this worker's outgoing messages, optionally combined per
		// destination vertex.
		dsts := make([]int, 0, len(w.outgoing))
		for d := range w.outgoing {
			dsts = append(dsts, d)
		}
		sort.Ints(dsts)
		for _, d := range dsts {
			batch := w.outgoing[d]
			if useCombiner {
				batch = combinePerTarget(batch, combiner)
			}
			for _, m := range batch {
				payload := encodeMessage(m)
				rs.cluster.Send(wid, d, "v", payload)
			}
		}
	}

	superstep := 0
	for {
		if superstep >= opts.MaxSupersteps {
			return nil, fmt.Errorf("vc: %s did not converge within %d supersteps", prog.Name(), opts.MaxSupersteps)
		}
		stats.BeginSuperstep()
		// Deliver messages queued for each worker into per-vertex inboxes.
		delivered := 0
		for wid := 0; wid < opts.Workers; wid++ {
			for _, env := range rs.cluster.Deliver(wid) {
				m, err := decodeMessage(env.Payload)
				if err != nil {
					return nil, fmt.Errorf("vc: %w", err)
				}
				if vi, ok := rs.byIndex[m.To]; ok {
					inboxes[vi] = append(inboxes[vi], m)
					delivered++
				}
			}
		}
		if superstep > 0 && delivered == 0 {
			allHalted := true
			for i := range states {
				if !states[i].halted {
					allHalted = false
					break
				}
			}
			if allHalted {
				stats.Supersteps-- // the termination check is not a superstep
				break
			}
		}
		var wg sync.WaitGroup
		for wid := 0; wid < opts.Workers; wid++ {
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				runWorker(wid, superstep, superstep == 0)
			}(wid)
		}
		wg.Wait()
		superstep++
	}

	values := make(map[graph.VertexID]any, n)
	for i := 0; i < n; i++ {
		values[g.VertexAt(i)] = states[i].value
	}
	stats.Elapsed = timer.Stop()
	return &Result{Values: values, Stats: stats}, nil
}

func combinePerTarget(batch []Message, c Combiner) []Message {
	byTarget := make(map[graph.VertexID]Message)
	order := make([]graph.VertexID, 0, len(batch))
	for _, m := range batch {
		if prev, ok := byTarget[m.To]; ok {
			byTarget[m.To] = c.Combine(prev, m)
		} else {
			byTarget[m.To] = m
			order = append(order, m.To)
		}
	}
	out := make([]Message, 0, len(order))
	for _, to := range order {
		out = append(out, byTarget[to])
	}
	return out
}

func encodeMessage(m Message) []byte {
	return mpi.EncodeUpdates([]mpi.Update{{Vertex: int64(m.To), Value: m.Value, Data: m.Data}})
}

func decodeMessage(buf []byte) (Message, error) {
	ups, err := mpi.DecodeUpdates(buf)
	if err != nil || len(ups) != 1 {
		return Message{}, fmt.Errorf("vc: malformed vertex message: %v", err)
	}
	return Message{To: graph.VertexID(ups[0].Vertex), Value: ups[0].Value, Data: ups[0].Data}, nil
}
