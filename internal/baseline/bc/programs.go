package bc

import (
	"math"

	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/seq"
)

// SSSP is the block-centric shortest-path program: every block runs Dijkstra
// over its whole block each superstep (seeded with the border distances it
// received) and ships one vertex message per relaxed cross edge — no bounded
// incremental step and no message grouping, which is where GRAPE's advantage
// over Blogel in Table 1 comes from.
type SSSP struct {
	Source graph.VertexID
}

type ssspBlockState struct {
	dist map[graph.VertexID]float64
}

// Name implements Program.
func (SSSP) Name() string { return "SSSP" }

// InitBlock implements Program.
func (p SSSP) InitBlock(ctx *BlockContext) {
	g := ctx.Block.Graph
	st := &ssspBlockState{dist: make(map[graph.VertexID]float64, g.NumVertices())}
	for i := 0; i < g.NumVertices(); i++ {
		st.dist[g.VertexAt(i)] = math.Inf(1)
	}
	ctx.State = st
	if g.HasVertex(p.Source) {
		seq.DijkstraFrom(g, st.dist, map[graph.VertexID]float64{p.Source: 0})
	}
	p.shipCrossEdges(ctx, st, nil)
}

// BCompute implements Program.
func (p SSSP) BCompute(ctx *BlockContext, msgs []VertexMessage) {
	st := ctx.State.(*ssspBlockState)
	seeds := make(map[graph.VertexID]float64, len(msgs))
	for _, m := range msgs {
		cur, ok := st.dist[m.To]
		if ok && m.Value >= cur {
			continue
		}
		if prev, dup := seeds[m.To]; !dup || m.Value < prev {
			seeds[m.To] = m.Value
		}
	}
	if len(seeds) == 0 {
		return
	}
	// Full seeded recomputation over the block (no bounded incremental
	// algorithm, unlike GRAPE's IncEval).
	changed := seq.DijkstraFrom(ctx.Block.Graph, st.dist, seeds)
	changedSet := make(map[graph.VertexID]bool, len(changed))
	for _, v := range changed {
		changedSet[v] = true
	}
	p.shipCrossEdges(ctx, st, changedSet)
}

// shipCrossEdges sends dist(u)+w over every cross edge whose source improved
// (or all finite ones when changed is nil, i.e. after InitBlock).
func (SSSP) shipCrossEdges(ctx *BlockContext, st *ssspBlockState, changed map[graph.VertexID]bool) {
	g := ctx.Block.Graph
	for i := 0; i < g.NumVertices(); i++ {
		u := g.VertexAt(i)
		if !ctx.Block.Owns(u) {
			continue
		}
		du := st.dist[u]
		if math.IsInf(du, 1) {
			continue
		}
		if changed != nil && !changed[u] {
			continue
		}
		for _, he := range g.OutEdges(i) {
			v := g.VertexAt(int(he.To))
			if !ctx.Block.Owns(v) {
				ctx.Send(VertexMessage{To: v, Value: du + he.Weight})
			}
		}
	}
}

// Output implements Program.
func (SSSP) Output(ctx *BlockContext) any {
	st, ok := ctx.State.(*ssspBlockState)
	if !ok {
		return map[graph.VertexID]float64{}
	}
	out := make(map[graph.VertexID]float64, len(ctx.Block.Local))
	for _, v := range ctx.Block.Local {
		out[v] = st.dist[v]
	}
	return out
}

// MergeDistances combines per-block SSSP outputs into a single distance map.
func MergeDistances(res *Result) map[graph.VertexID]float64 {
	out := make(map[graph.VertexID]float64)
	for _, o := range res.Outputs {
		for v, d := range o.(map[graph.VertexID]float64) {
			out[v] = d
		}
	}
	return out
}

// CC is the block-centric connected-components program: local components per
// block, minimum component identifiers exchanged per cross edge, full local
// relabelling on every superstep.
type CC struct{}

type ccBlockState struct {
	cid map[graph.VertexID]graph.VertexID
}

// Name implements Program.
func (CC) Name() string { return "CC" }

// InitBlock implements Program.
func (CC) InitBlock(ctx *BlockContext) {
	st := &ccBlockState{cid: seq.ConnectedComponents(ctx.Block.Graph)}
	ctx.State = st
	CC{}.ship(ctx, st, nil)
}

// BCompute implements Program.
func (CC) BCompute(ctx *BlockContext, msgs []VertexMessage) {
	st := ctx.State.(*ccBlockState)
	// Adopt smaller identifiers for the targeted vertices.
	seeds := make(map[graph.VertexID]graph.VertexID)
	for _, m := range msgs {
		nc := graph.VertexID(int64(m.Value))
		cur, ok := st.cid[m.To]
		if !ok || nc >= cur {
			continue
		}
		if prev, dup := seeds[m.To]; !dup || nc < prev {
			seeds[m.To] = nc
		}
	}
	if len(seeds) == 0 {
		return
	}
	// Full relabel: any vertex sharing a component with a seeded vertex takes
	// the new identifier (recomputed from scratch, no member lists).
	changed := make(map[graph.VertexID]bool)
	for v, nc := range seeds {
		old := st.cid[v]
		if old <= nc {
			continue // another seed already improved this component further
		}
		for u, c := range st.cid {
			if c == old {
				st.cid[u] = nc
				changed[u] = true
			}
		}
	}
	CC{}.ship(ctx, st, changed)
}

func (CC) ship(ctx *BlockContext, st *ccBlockState, changed map[graph.VertexID]bool) {
	g := ctx.Block.Graph
	for i := 0; i < g.NumVertices(); i++ {
		u := g.VertexAt(i)
		if !ctx.Block.Owns(u) {
			continue
		}
		if changed != nil && !changed[u] {
			continue
		}
		// Push the identifier over every cross edge incident to u...
		visit := func(to int32) {
			v := g.VertexAt(int(to))
			if !ctx.Block.Owns(v) {
				ctx.Send(VertexMessage{To: v, Value: float64(st.cid[u])})
			}
		}
		for _, he := range g.OutEdges(i) {
			visit(he.To)
		}
		for _, he := range g.InEdges(i) {
			visit(he.To)
		}
		// ...and to every block that holds a copy of u, because component
		// identifiers must flow against edge direction as well (components
		// ignore orientation).
		for _, mirror := range ctx.GP.Mirrors(u) {
			ctx.SendToBlock(mirror, VertexMessage{To: u, Value: float64(st.cid[u])})
		}
	}
}

// Output implements Program.
func (CC) Output(ctx *BlockContext) any {
	st, ok := ctx.State.(*ccBlockState)
	if !ok {
		return map[graph.VertexID]graph.VertexID{}
	}
	out := make(map[graph.VertexID]graph.VertexID, len(ctx.Block.Local))
	for _, v := range ctx.Block.Local {
		out[v] = st.cid[v]
	}
	return out
}

// MergeComponents combines per-block CC outputs.
func MergeComponents(res *Result) map[graph.VertexID]graph.VertexID {
	out := make(map[graph.VertexID]graph.VertexID)
	for _, o := range res.Outputs {
		for v, c := range o.(map[graph.VertexID]graph.VertexID) {
			out[v] = c
		}
	}
	return out
}

// Sim is the block-centric graph-simulation program: every block recomputes
// the simulation relation over its whole block from scratch each superstep
// (using the falsifications received for its border copies) and ships one
// vertex message per falsified (query node, border vertex) pair.
type Sim struct {
	Pattern *graph.Graph
}

type simBlockState struct {
	// falseAt records (query index, vertex) pairs known to be non-matches for
	// border copies owned elsewhere.
	falseAt map[graph.VertexID]map[int]bool
	sim     seq.SimResult
	// reported remembers which falsifications were already shipped.
	reported map[graph.VertexID]map[int]bool
}

// Name implements Program.
func (Sim) Name() string { return "Sim" }

// InitBlock implements Program.
func (p Sim) InitBlock(ctx *BlockContext) {
	st := &simBlockState{
		falseAt:  make(map[graph.VertexID]map[int]bool),
		reported: make(map[graph.VertexID]map[int]bool),
	}
	ctx.State = st
	p.recompute(ctx, st)
}

// BCompute implements Program.
func (p Sim) BCompute(ctx *BlockContext, msgs []VertexMessage) {
	st := ctx.State.(*simBlockState)
	changed := false
	for _, m := range msgs {
		uq := int(int64(m.Value))
		if st.falseAt[m.To] == nil {
			st.falseAt[m.To] = make(map[int]bool)
		}
		if !st.falseAt[m.To][uq] {
			st.falseAt[m.To][uq] = true
			changed = true
		}
	}
	if changed {
		p.recompute(ctx, st)
	}
}

// recompute runs the whole-block simulation from scratch, freezing border
// copies at their known status, then ships newly falsified border matches.
func (p Sim) recompute(ctx *BlockContext, st *simBlockState) {
	q := p.Pattern
	g := ctx.Block.Graph
	nq := q.NumVertices()
	sim := make([]map[int]bool, nq)
	for uq := 0; uq < nq; uq++ {
		cands := make(map[int]bool)
		for v := 0; v < g.NumVertices(); v++ {
			id := g.VertexAt(v)
			if !ctx.Block.Owns(id) {
				// Frozen copy: assume it matches unless falsified.
				if g.Label(v) == q.Label(uq) && !st.falseAt[id][uq] {
					cands[v] = true
				}
				continue
			}
			if g.Label(v) == q.Label(uq) {
				cands[v] = true
			}
		}
		sim[uq] = cands
	}
	for changed := true; changed; {
		changed = false
		for uq := 0; uq < nq; uq++ {
			for v := range sim[uq] {
				if !ctx.Block.Owns(g.VertexAt(v)) {
					continue
				}
				ok := true
				for _, qe := range q.OutEdges(uq) {
					target := int(qe.To)
					witness := false
					for _, he := range g.OutEdges(v) {
						if sim[target][int(he.To)] {
							witness = true
							break
						}
					}
					if !witness {
						ok = false
						break
					}
				}
				if !ok {
					delete(sim[uq], v)
					changed = true
				}
			}
		}
	}
	res := make(seq.SimResult, nq)
	for uq := 0; uq < nq; uq++ {
		set := make(map[graph.VertexID]bool, len(sim[uq]))
		for v := range sim[uq] {
			set[g.VertexAt(v)] = true
		}
		res[q.VertexAt(uq)] = set
	}
	st.sim = res

	// Ship newly falsified border matches, one vertex message per pair.
	shipVertex := func(v graph.VertexID) {
		if !ctx.Block.Owns(v) {
			return
		}
		for uq := 0; uq < nq; uq++ {
			if g.LabelOf(v) != q.Label(uq) {
				continue
			}
			if res[q.VertexAt(uq)][v] {
				continue
			}
			if st.reported[v] == nil {
				st.reported[v] = make(map[int]bool)
			}
			if st.reported[v][uq] {
				continue
			}
			st.reported[v][uq] = true
			// One message per mirror block holding a copy of v.
			for _, mirror := range ctx.GP.Mirrors(v) {
				ctx.SendToBlock(mirror, VertexMessage{To: v, Value: float64(uq)})
			}
		}
	}
	for _, v := range ctx.Block.InBorder {
		shipVertex(v)
	}
	for _, v := range ctx.Block.OutBorder {
		shipVertex(v)
	}
}

// Output implements Program.
func (p Sim) Output(ctx *BlockContext) any {
	st, ok := ctx.State.(*simBlockState)
	if !ok {
		return seq.SimResult{}
	}
	out := make(seq.SimResult, p.Pattern.NumVertices())
	for uq := 0; uq < p.Pattern.NumVertices(); uq++ {
		u := p.Pattern.VertexAt(uq)
		out[u] = make(map[graph.VertexID]bool)
		for v := range st.sim[u] {
			if ctx.Block.Owns(v) {
				out[u][v] = true
			}
		}
	}
	return out
}

// MergeSim combines per-block simulation relations.
func MergeSim(pattern *graph.Graph, res *Result) seq.SimResult {
	out := make(seq.SimResult, pattern.NumVertices())
	for uq := 0; uq < pattern.NumVertices(); uq++ {
		out[pattern.VertexAt(uq)] = make(map[graph.VertexID]bool)
	}
	for _, o := range res.Outputs {
		for u, set := range o.(seq.SimResult) {
			for v := range set {
				out[u][v] = true
			}
		}
	}
	return out
}

// CF is the block-centric collaborative-filtering program: full local SGD
// retraining every superstep (no incremental ISGD), factor vectors shipped as
// one vertex message per border vertex per round, for a fixed number of
// rounds.
type CF struct {
	Config    seq.SGDConfig
	MaxRounds int
}

type cfBlockState struct {
	factors seq.Factors
	ratings []seq.Rating
	rounds  int
}

// Name implements Program.
func (CF) Name() string { return "CF" }

// InitBlock implements Program.
func (p CF) InitBlock(ctx *BlockContext) {
	g := ctx.Block.Graph
	var local []seq.Rating
	for _, r := range seq.RatingsFromGraph(g) {
		if ctx.Block.Owns(r.User) {
			local = append(local, r)
		}
	}
	st := &cfBlockState{factors: make(seq.Factors), ratings: local, rounds: 1}
	ctx.State = st
	seq.Train(local, p.Config, st.factors)
	p.ship(ctx, st)
}

// BCompute implements Program.
func (p CF) BCompute(ctx *BlockContext, msgs []VertexMessage) {
	st := ctx.State.(*cfBlockState)
	st.rounds++
	if st.rounds > p.MaxRounds {
		return
	}
	for _, m := range msgs {
		if len(m.Data) > 0 {
			st.factors[m.To] = mpi.BytesToFloat64s(m.Data)
		}
	}
	// Full retraining over the whole local training set (no ISGD).
	seq.Train(st.ratings, p.Config, st.factors)
	p.ship(ctx, st)
}

func (CF) ship(ctx *BlockContext, st *cfBlockState) {
	send := func(v graph.VertexID) {
		vec, ok := st.factors[v]
		if !ok {
			return
		}
		if ctx.Block.Owns(v) {
			for _, mirror := range ctx.GP.Mirrors(v) {
				ctx.SendToBlock(mirror, VertexMessage{To: v, Data: mpi.Float64sToBytes(vec)})
			}
			return
		}
		ctx.Send(VertexMessage{To: v, Data: mpi.Float64sToBytes(vec)})
	}
	for _, v := range ctx.Block.InBorder {
		send(v)
	}
	for _, v := range ctx.Block.OutBorder {
		send(v)
	}
}

// Output implements Program.
func (CF) Output(ctx *BlockContext) any {
	st, ok := ctx.State.(*cfBlockState)
	if !ok {
		return seq.Factors{}
	}
	out := make(seq.Factors)
	for v, vec := range st.factors {
		if ctx.Block.Owns(v) {
			out[v] = vec
		}
	}
	return out
}

// MergeFactors combines per-block CF outputs.
func MergeFactors(res *Result) seq.Factors {
	out := make(seq.Factors)
	for _, o := range res.Outputs {
		for v, vec := range o.(seq.Factors) {
			out[v] = vec
		}
	}
	return out
}
