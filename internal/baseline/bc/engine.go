// Package bc implements a block-centric graph engine in the style of Blogel:
// the graph is partitioned into blocks; every superstep a block program
// (B-compute) runs a sequential algorithm over its whole block and exchanges
// vertex-level messages with other blocks. Compared with GRAPE it lacks the
// two ingredients the paper credits for GRAPE's advantage: incremental
// evaluation (blocks recompute from scratch every superstep) and grouped
// designated messages (every border value is shipped as its own vertex
// message). It is the third comparison baseline of the evaluation.
package bc

import (
	"fmt"
	"sync"

	"grape/internal/graph"
	"grape/internal/metrics"
	"grape/internal/mpi"
	"grape/internal/partition"
)

// VertexMessage is a message addressed to a single vertex in another block.
type VertexMessage struct {
	To    graph.VertexID
	Value float64
	Data  []byte
}

// BlockContext is the view a block program has of its block.
type BlockContext struct {
	// Block is the fragment this context owns.
	Block *partition.Fragment
	// GP is the fragmentation graph, used to locate the owners of border
	// vertices.
	GP *partition.FragGraph
	// Superstep is the current superstep (1-based, like GRAPE).
	Superstep int
	// State is the block program's persistent state.
	State any

	outgoing []routedMessage
}

type routedMessage struct {
	dst int // -1 means "route to the owner of msg.To"
	msg VertexMessage
}

// Send ships a vertex-level message to the block owning the target vertex.
// Messages to vertices owned by this block are dropped (the block already has
// the data).
func (c *BlockContext) Send(m VertexMessage) {
	if c.Block.Owns(m.To) {
		return
	}
	c.outgoing = append(c.outgoing, routedMessage{dst: -1, msg: m})
}

// SendToBlock ships a vertex-level message to an explicit block, used when a
// block informs the mirrors of a vertex it owns.
func (c *BlockContext) SendToBlock(dst int, m VertexMessage) {
	if dst == c.Block.ID {
		return
	}
	c.outgoing = append(c.outgoing, routedMessage{dst: dst, msg: m})
}

// Program is a block program (the B-compute side of Blogel).
type Program interface {
	// Name identifies the query class.
	Name() string
	// InitBlock runs once per block in the first superstep.
	InitBlock(ctx *BlockContext)
	// BCompute runs in every later superstep in which the block received
	// messages.
	BCompute(ctx *BlockContext, msgs []VertexMessage)
	// Output extracts the block's contribution to the global answer.
	Output(ctx *BlockContext) any
}

// Options configure a block-centric run.
type Options struct {
	// Workers is the number of blocks.
	Workers int
	// Strategy is the partitioner used to form blocks. Blogel ships its own
	// locality-aware partitioner, so the default is the multilevel strategy.
	Strategy partition.Strategy
	// MaxSupersteps bounds the computation.
	MaxSupersteps int
	// EngineName is the label used in reported stats.
	EngineName string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Strategy == nil {
		o.Strategy = partition.Multilevel{}
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = 10000
	}
	if o.EngineName == "" {
		o.EngineName = "Blogel"
	}
	return o
}

// Result is the outcome of a block-centric run.
type Result struct {
	// Outputs holds each block's Output value, indexed by block ID.
	Outputs []any
	// Stats reports time, supersteps and communication volume.
	Stats *metrics.Stats
}

// Engine is the block-centric runtime.
type Engine struct{ opts Options }

// New creates an engine.
func New(opts Options) *Engine { return &Engine{opts: opts.withDefaults()} }

// Run partitions g into blocks and executes the block program.
func (e *Engine) Run(g *graph.Graph, prog Program) (*Result, error) {
	if prog == nil {
		return nil, fmt.Errorf("bc: nil program")
	}
	opts := e.opts
	p := partition.Partition(g, opts.Workers, opts.Strategy)
	return e.RunPartitioned(p, prog)
}

// RunPartitioned executes the block program over pre-built blocks.
func (e *Engine) RunPartitioned(p *partition.Partitioned, prog Program) (*Result, error) {
	opts := e.opts
	m := len(p.Fragments)
	timer := metrics.StartTimer()
	stats := &metrics.Stats{Engine: opts.EngineName, Query: prog.Name(), Workers: m}
	cluster, err := mpi.NewCluster(m, stats)
	if err != nil {
		return nil, fmt.Errorf("bc: %w", err)
	}

	ctxs := make([]*BlockContext, m)
	for i, f := range p.Fragments {
		ctxs[i] = &BlockContext{Block: f, GP: p.GP}
	}

	ship := func(wid int) {
		ctx := ctxs[wid]
		for _, rm := range ctx.outgoing {
			dst := rm.dst
			if dst < 0 {
				dst = p.GP.Owner(rm.msg.To)
			}
			if dst < 0 || dst == wid {
				continue
			}
			payload := mpi.EncodeUpdates([]mpi.Update{{Vertex: int64(rm.msg.To), Value: rm.msg.Value, Data: rm.msg.Data}})
			cluster.Send(wid, dst, "b", payload)
		}
		ctx.outgoing = nil
	}

	superstep := 1
	stats.BeginSuperstep()
	var wg sync.WaitGroup
	for wid := 0; wid < m; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			ctxs[wid].Superstep = superstep
			prog.InitBlock(ctxs[wid])
		}(wid)
	}
	wg.Wait()
	for wid := 0; wid < m; wid++ {
		ship(wid)
	}

	for {
		pending := 0
		for wid := 0; wid < m; wid++ {
			pending += cluster.PendingFor(wid)
		}
		if pending == 0 {
			break
		}
		superstep++
		if superstep > opts.MaxSupersteps {
			return nil, fmt.Errorf("bc: %s did not converge within %d supersteps", prog.Name(), opts.MaxSupersteps)
		}
		stats.BeginSuperstep()
		inboxes := make([][]VertexMessage, m)
		for wid := 0; wid < m; wid++ {
			for _, env := range cluster.Deliver(wid) {
				ups, err := mpi.DecodeUpdates(env.Payload)
				if err != nil {
					return nil, fmt.Errorf("bc: %w", err)
				}
				for _, u := range ups {
					inboxes[wid] = append(inboxes[wid], VertexMessage{
						To: graph.VertexID(u.Vertex), Value: u.Value, Data: u.Data,
					})
				}
			}
		}
		var wg sync.WaitGroup
		for wid := 0; wid < m; wid++ {
			if len(inboxes[wid]) == 0 {
				continue
			}
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				ctxs[wid].Superstep = superstep
				prog.BCompute(ctxs[wid], inboxes[wid])
			}(wid)
		}
		wg.Wait()
		for wid := 0; wid < m; wid++ {
			ship(wid)
		}
	}

	res := &Result{Outputs: make([]any, m), Stats: stats}
	for wid := 0; wid < m; wid++ {
		res.Outputs[wid] = prog.Output(ctxs[wid])
	}
	stats.Elapsed = timer.Stop()
	return res, nil
}
