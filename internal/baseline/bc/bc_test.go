package bc

import (
	"math"
	"testing"

	"grape/internal/graph"
	"grape/internal/graphgen"
	"grape/internal/partition"
	"grape/internal/seq"
)

func TestBCSSSPMatchesSequential(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"road":   graphgen.RoadNetwork(10, 10, graphgen.Config{Seed: 11}),
		"social": graphgen.SocialNetwork(300, 4, graphgen.Config{Seed: 12, Labels: 5}),
	}
	for name, g := range graphs {
		src := g.VertexAt(g.NumVertices() - 1)
		want := seq.Dijkstra(g, src)
		res, err := New(Options{Workers: 4}).Run(g, SSSP{Source: src})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := MergeDistances(res)
		for v, d := range want {
			if math.Abs(got[v]-d) > 1e-9 && !(math.IsInf(got[v], 1) && math.IsInf(d, 1)) {
				t.Fatalf("%s: dist(%d) = %v, want %v", name, v, got[v], d)
			}
		}
		if res.Stats.Engine != "Blogel" {
			t.Fatalf("engine name = %q", res.Stats.Engine)
		}
	}
}

func TestBCSSSPFewerSuperstepsThanDiameter(t *testing.T) {
	// Block-centric runs need far fewer supersteps than vertex-centric ones
	// on road networks, because whole blocks converge locally per superstep.
	g := graphgen.RoadNetwork(15, 15, graphgen.Config{Seed: 13})
	res, err := New(Options{Workers: 4}).Run(g, SSSP{Source: g.VertexAt(0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Supersteps > 15 {
		t.Fatalf("block-centric SSSP took %d supersteps, expected far fewer than the diameter", res.Stats.Supersteps)
	}
}

func TestBCCCMatchesSequential(t *testing.T) {
	g := graphgen.SocialNetwork(300, 3, graphgen.Config{Seed: 14, Labels: 4})
	want := seq.ConnectedComponents(g)
	res, err := New(Options{Workers: 5, Strategy: partition.Hash{}}).Run(g, CC{})
	if err != nil {
		t.Fatal(err)
	}
	got := MergeComponents(res)
	for v, c := range want {
		if got[v] != c {
			t.Fatalf("cid(%d) = %d, want %d", v, got[v], c)
		}
	}
}

func TestBCSimMatchesSequential(t *testing.T) {
	g := graphgen.KnowledgeBase(250, 3, 5, graphgen.Config{Seed: 15, Labels: 8})
	for s := int64(0); s < 3; s++ {
		q := graphgen.Pattern(g, 5, 8, s)
		want := seq.Simulation(q, g)
		res, err := New(Options{Workers: 4}).Run(g, Sim{Pattern: q})
		if err != nil {
			t.Fatal(err)
		}
		got := MergeSim(q, res)
		if got.Count() != want.Count() {
			t.Fatalf("pattern %d: %d pairs, want %d", s, got.Count(), want.Count())
		}
	}
}

func TestBCSubIsoMatchesSequential(t *testing.T) {
	g := graphgen.KnowledgeBase(150, 3, 5, graphgen.Config{Seed: 16, Labels: 6})
	q := graphgen.Pattern(g, 4, 5, 2)
	want := seq.SubgraphIsomorphism(q, g, 0)
	res, err := New(Options{Workers: 4}).Run(g, SubIso{Pattern: q})
	if err != nil {
		t.Fatal(err)
	}
	got := MergeMatches(res)
	if len(got) != len(want) {
		t.Fatalf("found %d matches, want %d", len(got), len(want))
	}
}

func TestBCCFTrains(t *testing.T) {
	g := graphgen.Bipartite(120, 25, 6, graphgen.Config{Seed: 17})
	ratings := seq.RatingsFromGraph(g)
	cfg := seq.DefaultSGDConfig()
	res, err := New(Options{Workers: 4}).Run(g, CF{Config: cfg, MaxRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	factors := MergeFactors(res)
	if len(factors) == 0 {
		t.Fatalf("no factors learned")
	}
	rmse := seq.RMSE(factors, ratings)
	if rmse > 1.8 {
		t.Fatalf("block-centric CF RMSE = %v", rmse)
	}
}

func TestBCGuards(t *testing.T) {
	g := graphgen.RoadNetwork(3, 3, graphgen.Config{Seed: 18})
	if _, err := New(Options{Workers: 2}).Run(g, nil); err == nil {
		t.Fatalf("nil program must be rejected")
	}
	if _, err := New(Options{Workers: 2, MaxSupersteps: 1}).Run(g, SSSP{Source: g.VertexAt(0)}); err == nil {
		t.Fatalf("MaxSupersteps guard did not trip")
	}
}
