package bc

import (
	"fmt"
	"sort"

	"grape/internal/graph"
	"grape/internal/mpi"
	"grape/internal/seq"
)

// SubIso is the block-centric subgraph-isomorphism program: like GRAPE's
// program it exchanges the d_Q-neighbourhoods of border vertices and runs the
// sequential VF2 search on the extended block, but it ships the
// neighbourhoods as individual per-vertex and per-edge messages instead of
// one grouped designated message, which is the communication overhead the
// paper measures against Blogel (Figure 8i-j).
type SubIso struct {
	Pattern    *graph.Graph
	MaxMatches int
}

type subIsoBlockState struct {
	vertices map[graph.VertexID]string
	edges    map[[2]graph.VertexID]float64
	matches  []seq.Match
}

// Name implements Program.
func (SubIso) Name() string { return "SubIso" }

// InitBlock implements Program.
func (p SubIso) InitBlock(ctx *BlockContext) {
	st := &subIsoBlockState{
		vertices: make(map[graph.VertexID]string),
		edges:    make(map[[2]graph.VertexID]float64),
	}
	ctx.State = st
	q := p.Pattern
	if q.NumVertices() == 0 {
		st.matches = []seq.Match{}
		return
	}
	dQ := seq.PatternDiameter(q)
	if dQ < 1 {
		dQ = 1
	}
	g := ctx.Block.Graph

	// Collect the owned vertices within dQ hops of any border vertex.
	seeds := map[graph.VertexID]bool{}
	for _, v := range ctx.Block.InBorder {
		seeds[v] = true
	}
	for _, v := range ctx.Block.OutBorder {
		seeds[v] = true
	}
	depth := map[int]int{}
	var queue []int
	for v := range seeds {
		if i := g.IndexOf(v); i >= 0 {
			depth[i] = 0
			queue = append(queue, i)
		}
	}
	sort.Ints(queue)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if depth[u] == dQ {
			continue
		}
		expand := func(to int32) {
			if _, ok := depth[int(to)]; !ok && ctx.Block.Owns(g.VertexAt(int(to))) {
				depth[int(to)] = depth[u] + 1
				queue = append(queue, int(to))
			}
		}
		for _, he := range g.OutEdges(u) {
			expand(he.To)
		}
		for _, he := range g.InEdges(u) {
			expand(he.To)
		}
	}

	// Ship the neighbourhood piece-by-piece: one vertex message per vertex
	// and per edge, to every block sharing a border vertex with this block.
	targets := map[int]bool{}
	for v := range seeds {
		for _, dst := range ctx.GP.Destinations(v, ctx.Block.ID) {
			targets[dst] = true
		}
	}
	for i := range depth {
		id := g.VertexAt(i)
		if !ctx.Block.Owns(id) {
			continue
		}
		for dst := range targets {
			ctx.SendToBlock(dst, VertexMessage{To: id, Value: 0, Data: []byte("v:" + g.Label(i))})
		}
		for _, he := range g.OutEdges(i) {
			other := g.VertexAt(int(he.To))
			for dst := range targets {
				ctx.SendToBlock(dst, VertexMessage{To: id, Value: he.Weight,
					Data: append([]byte("e:"), mpi.Float64sToBytes([]float64{float64(other)})...)})
			}
		}
	}

	// Blocks with no borders can evaluate immediately.
	if len(seeds) == 0 {
		p.search(ctx, st)
	}
}

// BCompute implements Program: merge received pieces and run the search.
func (p SubIso) BCompute(ctx *BlockContext, msgs []VertexMessage) {
	st := ctx.State.(*subIsoBlockState)
	for _, m := range msgs {
		if len(m.Data) < 2 {
			continue
		}
		switch m.Data[0] {
		case 'v':
			st.vertices[m.To] = string(m.Data[2:])
		case 'e':
			vals := mpi.BytesToFloat64s(m.Data[2:])
			if len(vals) == 1 {
				st.edges[[2]graph.VertexID{m.To, graph.VertexID(int64(vals[0]))}] = m.Value
			}
		}
	}
	p.search(ctx, st)
}

func (p SubIso) search(ctx *BlockContext, st *subIsoBlockState) {
	g := ctx.Block.Graph
	b := graph.NewBuilder(true)
	for i := 0; i < g.NumVertices(); i++ {
		b.AddVertex(g.VertexAt(i), g.Label(i))
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.Src, e.Dst, e.Weight, e.Label)
	}
	for v, label := range st.vertices {
		b.AddVertex(v, label)
	}
	for e, w := range st.edges {
		if !g.HasEdge(e[0], e[1]) {
			b.AddEdge(e[0], e[1], w, "")
		}
	}
	st.matches = seq.SubgraphIsomorphism(p.Pattern, b.Build(), p.MaxMatches)
}

// Output implements Program.
func (SubIso) Output(ctx *BlockContext) any {
	st, ok := ctx.State.(*subIsoBlockState)
	if !ok {
		return []seq.Match{}
	}
	return st.matches
}

// MergeMatches combines and deduplicates per-block matches.
func MergeMatches(res *Result) []seq.Match {
	seen := map[string]bool{}
	var out []seq.Match
	for _, o := range res.Outputs {
		for _, m := range o.([]seq.Match) {
			keys := make([]graph.VertexID, 0, len(m))
			for u := range m {
				keys = append(keys, u)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			key := ""
			for _, u := range keys {
				key += fmt.Sprintf("%d:%d;", u, m[u])
			}
			if !seen[key] {
				seen[key] = true
				out = append(out, m)
			}
		}
	}
	return out
}
