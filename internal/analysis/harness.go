package analysis

import (
	"regexp"
	"strconv"
	"strings"
)

// The golden-file harness: fixture packages under testdata/src/<analyzer>/
// mark each expected diagnostic with a trailing
//
//	// want "regexp"
//
// comment on the offending line (several per line allowed). RunFixture runs
// one analyzer over one fixture and diffs actual diagnostics against the
// want set: a want with no matching diagnostic on its line fails, and so
// does a diagnostic no want expects. //lint:ignore directives are honored,
// so suppression is testable too.

// TB is the subset of *testing.T the harness needs; keeping it an interface
// keeps the testing package out of the non-test build.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// RunFixture loads dir as a single package and checks analyzer a against
// the fixture's want comments.
func RunFixture(t TB, a *Analyzer, dir string) {
	t.Helper()
	pkg, err := LoadDir(dir, a.Name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	// Bypass the PathSuffixes filter: fixtures test analyzers in isolation,
	// whatever tree subset they normally run on.
	fa := *a
	fa.PathSuffixes = nil
	diags := Lint([]*Package{pkg}, []*Analyzer{&fa})

	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitQuoted(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// splitQuoted parses the quoted regexp list of a want comment — double or
// back quotes, several per comment: `"a" "b c"` -> ["a", "b c"]. Backquoted
// patterns are convenient when the expected message itself contains double
// quotes (%q-formatted names).
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			break
		}
		end := 1
		for end < len(s) && (s[end] != quote || (quote == '"' && s[end-1] == '\\')) {
			end++
		}
		if end >= len(s) {
			break
		}
		if quote == '`' {
			out = append(out, s[1:end])
		} else if q, err := strconv.Unquote(s[:end+1]); err == nil {
			out = append(out, q)
		}
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
