// Package analysis is grape-lint: a dependency-free static-analysis suite
// that mechanically enforces the engine's correctness conventions. go.mod
// stays requires-free — the framework is stdlib go/ast + go/parser +
// go/types with a GOROOT source importer, and module packages are
// type-checked in dependency order by the loader in this package.
//
// # Why these analyzers exist
//
// GRAPE's pitch (Fan et al., SIGMOD '17) is that parallel, incremental and
// distributed evaluation stay equivalent to the sequential semantics. Nine
// PRs in, several of the invariants backing that guarantee were enforced
// only by convention and reviewer vigilance; each analyzer turns one of
// them into a machine check grounded in a real past bug:
//
//   - poolescape — the pooled wire buffers of internal/mpi/net (PR 6/7)
//     must be released on every path and must not escape their frame. The
//     bug class: an early error return that leaks the buffer the happy path
//     recycles. Intentional ownership transfers (newFrame-style
//     constructors) are baselined with //lint:ignore and thereby documented.
//
//   - detmap — deterministic kernels must never fold in map-iteration
//     order. PR 8 found a latent last-bit nondeterminism in the PageRank
//     incast fold by hand; detmap finds the pattern (float accumulation or
//     unsorted slice collection under a map range) mechanically in
//     internal/pie, internal/seq, internal/inc and internal/mpi.
//
//   - decodebound — decode paths must bounds-check hostile counts before
//     allocating. The PR 6 fuzzers found DecodeKeyValues allocating
//     gigabytes for a 20-byte hostile frame; decodebound taints
//     wire-decoded integers and requires a comparison before they size a
//     make or drive an append loop.
//
//   - ctxflow — the ...Ctx API surface (PR 9) must actually thread its
//     context: an exported FooCtx that drops ctx, or a function that holds
//     a ctx parameter yet manufactures context.Background()/TODO(), severs
//     cancellation exactly where it was promised.
//
//   - metricname — obs metric names must match
//     ^grape_[a-z0-9]+(_[a-z0-9]+)*$. Replaces scripts/lint_metric_names.sh
//     (a grep) with a type-aware check that constant-folds names built via
//     constants.
//
// # Running
//
//	go run ./cmd/grape-lint ./...          # whole tree, all analyzers
//	go run ./cmd/grape-lint -only metricname ./...
//	go run ./cmd/grape-lint -list
//
// Diagnostics print as file:line:col: analyzer: message and exit non-zero;
// the CI grape-lint job gates merges on a clean run.
//
// # Baselining with //lint:ignore
//
// A finding that is intentional is suppressed with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line directly above. The reason is
// mandatory — a bare ignore is itself a diagnostic — so the baseline reads
// as an auditable record of deliberate exceptions (for example, wire.go's
// pooled-frame constructors, whose callers own the release).
//
// # Testing analyzers
//
// Each analyzer has a fixture package under testdata/src/<name>/ whose
// expected findings are marked with // want "regexp" comments on the
// offending lines; the harness in harness.go loads the fixture with the
// same loader and diffs actual against expected. clean_test.go asserts the
// suite exits clean on this repository, and seeded_test.go asserts that
// reintroducing known-bad patterns (an unsorted map-range fold in a pie-like
// package, an unbounded decode make in an mpi-like package) fails with
// file:line diagnostics.
package analysis
