package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
)

// DecodeBound guards against the allocation-bomb class the PR-6 fuzzers
// found in DecodeKeyValues: a count read off the wire (binary.Uvarint, an
// endian Uint32/Uint64, a reader's uvarint helper) flowing into make — or
// into an append loop bounded by it — before any comparison constrains it.
// A hostile peer then makes a 20-byte frame allocate gigabytes.
//
// The analysis is an intraprocedural taint walk: decoded integers are
// tainted, taint propagates through conversions and arithmetic, and any
// comparison mentioning the tainted variable (the `if n > remaining/size`
// bound idiom, or an equality rejection) clears it. Helpers that bound
// internally by convention — the sticky readers' count() — are not taint
// sources; give bounded accessors that name, or bound at the call site.
var DecodeBound = &Analyzer{
	Name: "decodebound",
	Doc:  "wire-decoded counts must be bounds-checked before sizing allocations",
	Run:  runDecodeBound,
}

// decodeHelperName matches method/function names that read raw integers off
// a decode cursor.
var decodeHelperName = regexp.MustCompile(`^(uvarint|varint|readUvarint|readVarint|ReadUvarint|ReadVarint)$`)

// endianIntName matches the fixed-width integer readers of binary.ByteOrder.
var endianIntName = regexp.MustCompile(`^Uint(16|32|64)$`)

func runDecodeBound(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDecodeFunc(pass, fn)
		}
	}
}

// isDecodeSource reports whether the expression reads an attacker-sized
// integer: binary.Uvarint/Varint, <order>.Uint16/32/64, or a cursor helper
// named (read)uvarint/varint — possibly wrapped in conversions/arithmetic.
func isDecodeSource(e ast.Expr, tainted map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if tainted[x.Name] {
				found = true
				return false
			}
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if decodeHelperName.MatchString(name) {
				found = true
				return false
			}
			if endianIntName.MatchString(name) {
				// binary.LittleEndian.Uint32(...), order.Uint64(...), etc.
				found = true
				return false
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "binary" &&
				(name == "Uvarint" || name == "Varint") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func checkDecodeFunc(pass *Pass, fn *ast.FuncDecl) {
	tainted := make(map[string]bool) // currently unguarded decoded counts
	guarded := make(map[string]bool) // names that appeared in a comparison
	var reports []struct {
		pos  token.Pos
		what string
	}

	// Walk statements in source order; for straight-line decode functions
	// (the shape of every codec in this repo) source order approximates
	// dominance well enough.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				var rhs ast.Expr
				switch {
				case len(st.Rhs) == len(st.Lhs):
					rhs = st.Rhs[i]
				case len(st.Rhs) == 1 && i == 0:
					// n, off := binary.Uvarint(buf): taint the first result.
					rhs = st.Rhs[0]
				default:
					continue
				}
				if isDecodeSource(rhs, tainted) {
					if !guarded[id.Name] {
						tainted[id.Name] = true
					}
				} else if st.Tok == token.DEFINE {
					delete(tainted, id.Name)
					delete(guarded, id.Name)
				}
			}
		case *ast.BinaryExpr:
			// Any comparison mentioning a tainted name counts as its bound
			// check (the codecs' `if n > (len(buf)-off)/k+1` idiom).
			switch st.Op {
			case token.GTR, token.GEQ, token.LSS, token.LEQ, token.EQL, token.NEQ:
				for name := range tainted {
					if mentionsIdent(st, name) {
						delete(tainted, name)
						guarded[name] = true
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "make" && len(st.Args) >= 2 {
				for _, arg := range st.Args[1:] {
					if name, ok := taintedIn(arg, tainted); ok {
						reports = append(reports, struct {
							pos  token.Pos
							what string
						}{st.Pos(), name})
					} else if isDecodeSource(arg, nil) {
						// make([]T, int(binary.Uvarint(...))) inline, with no
						// variable to ever guard.
						reports = append(reports, struct {
							pos  token.Pos
							what string
						}{st.Pos(), "<inline decode>"})
					}
				}
			}
		case *ast.ForStmt:
			// for i := 0; i < n; i++ { s = append(s, ...) } with unguarded n.
			if cond, ok := st.Cond.(*ast.BinaryExpr); ok {
				if name, ok := taintedIn(cond, tainted); ok && containsAppend(st.Body) {
					reports = append(reports, struct {
						pos  token.Pos
						what string
					}{st.Pos(), name})
					// The loop itself acts as the guard for later uses.
					delete(tainted, name)
					guarded[name] = true
				}
			}
		}
		return true
	})
	for _, r := range reports {
		pass.Reportf(r.pos, "allocation sized by wire-decoded count %q with no prior bound check (allocation-bomb class; compare it against the remaining input first)", r.what)
	}
}

func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}

func taintedIn(e ast.Expr, tainted map[string]bool) (string, bool) {
	var name string
	ast.Inspect(e, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		// len(x) of already-materialized data is bounded by input the decoder
		// actually holds — a slice built by a decode loop is not an
		// attacker-amplified count, so sizing by its length is safe.
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "len" {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && tainted[id.Name] {
			name = id.Name
			return false
		}
		return true
	})
	return name, name != ""
}

func containsAppend(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
