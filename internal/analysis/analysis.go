// Package analysis is grape's repo-invariant static-analysis framework: a
// dependency-free (stdlib go/ast + go/parser + go/types only) analyzer
// driver that mechanically enforces the engine's correctness conventions on
// every push. See doc.go for the catalogue of analyzers and the war stories
// behind them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run receives a fully parsed and (tolerantly)
// type-checked package and reports diagnostics through the pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -only selections and
	// //lint:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// PathSuffixes, when non-empty, restricts the analyzer to packages whose
	// import path ends in one of the listed suffixes (the determinism-critical
	// packages for detmap, for example). The fixture harness bypasses the
	// filter so every analyzer is testable in isolation.
	PathSuffixes []string
	// Run performs the check.
	Run func(*Pass)
}

// applies reports whether the analyzer runs on the given import path.
func (a *Analyzer) applies(path string) bool {
	if len(a.PathSuffixes) == 0 {
		return true
	}
	for _, s := range a.PathSuffixes {
		if path == s || hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

func hasPathSuffix(path, suffix string) bool {
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files, parsed with comments.
	Files []*ast.File
	// Pkg is the type-checked package. Type checking is tolerant: on an
	// unresolvable import or a type error the checker keeps going, so objects
	// and types may be missing. Analyzers must treat nil types as unknown.
	Pkg *types.Package
	// Info holds the (possibly partial) type information for Files.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when type information is missing.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Lint runs the analyzers over the packages and returns the surviving
// diagnostics, sorted by position, with //lint:ignore-suppressed findings
// removed and malformed ignore directives reported as findings of their own.
func Lint(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores, bad := collectIgnores(pkg)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			if !a.applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    new([]Diagnostic),
			}
			a.Run(pass)
			for _, d := range *pass.diags {
				if !ignores.suppresses(d) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
