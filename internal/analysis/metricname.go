package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strconv"
)

// MetricName replaces scripts/lint_metric_names.sh with a type-aware check:
// every metric registered through internal/obs — the package-level
// Counter/Gauge/Histogram constructors, their Vec variants, and the same
// methods on a Registry — must carry a grape_-prefixed snake_case name.
// Unlike the grep it retires, this check constant-folds the first argument
// with go/types, so names built from constants (or concatenations of them)
// are validated too; only genuinely dynamic names escape static checking,
// and those still hit the registry's runtime panic.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "obs metric names must match ^grape_[a-z0-9]+(_[a-z0-9]+)*$",
	Run:  runMetricName,
}

var metricNameRE = regexp.MustCompile(`^grape_[a-z0-9]+(_[a-z0-9]+)*$`)

var metricConstructors = map[string]bool{
	"Counter": true, "CounterVec": true,
	"Gauge": true, "GaugeVec": true,
	"Histogram": true, "HistogramVec": true,
}

func runMetricName(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !metricConstructors[sel.Sel.Name] {
				return true
			}
			name, ok := constStringValue(pass, call.Args[0])
			if !ok {
				return true // dynamic name; the registry panics at runtime
			}
			if !metricNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q is not grape_-prefixed snake_case (want %s)", name, metricNameRE)
			}
			return true
		})
	}
}

// constStringValue resolves e to a compile-time string: a literal, a named
// constant, or any constant expression go/types can fold.
func constStringValue(pass *Pass, e ast.Expr) (string, bool) {
	if pass.Info != nil {
		if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value), true
		}
	}
	if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.STRING {
		if s, err := strconv.Unquote(lit.Value); err == nil {
			return s, true
		}
	}
	return "", false
}
