package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMap enforces deterministic folding in the packages whose outputs must
// be byte-identical across runs, workers and transports (the GRAPE
// equivalence guarantee): internal/pie, internal/seq, internal/inc and
// internal/mpi. Go's map iteration order is deliberately randomized, so a
// `for ... range m` over a map must not
//
//   - accumulate floating-point values into a variable declared outside the
//     loop (float addition is not associative — two identical runs disagree
//     in the last bits, the exact nondeterminism PR 8 found by hand in the
//     PageRank incast fold), or
//   - append to a slice declared outside the loop unless the slice is
//     visibly sorted later in the same function (the collect-then-sort idiom
//     is the sanctioned way to fold a map deterministically).
//
// Map reads, map-to-map copies and boolean/set building are order-independent
// and stay legal.
var DetMap = &Analyzer{
	Name:         "detmap",
	Doc:          "no float accumulation or unsorted slice collection in map-iteration order",
	PathSuffixes: []string{"internal/pie", "internal/seq", "internal/inc", "internal/mpi", "internal/mpi/net"},
	Run:          runDetMap,
}

func runDetMap(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok || !isMapType(pass.TypeOf(rng.X)) {
					return true
				}
				checkMapRange(pass, fn, rng)
				return true
			})
		}
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				if isFloatExpr(pass, lhs) && declaredOutside(pass, lhs, rng) {
					pass.Reportf(as.Pos(),
						"floating-point accumulation folds in map-iteration order; fold over sorted keys instead")
				}
			}
		case token.ASSIGN, token.DEFINE:
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				// x = x + <f> spelled out.
				if bin, ok := rhs.(*ast.BinaryExpr); ok && as.Tok == token.ASSIGN &&
					(bin.Op == token.ADD || bin.Op == token.SUB || bin.Op == token.MUL || bin.Op == token.QUO) &&
					sameIdent(as.Lhs[i], bin.X) && isFloatExpr(pass, as.Lhs[i]) &&
					declaredOutside(pass, as.Lhs[i], rng) {
					pass.Reportf(as.Pos(),
						"floating-point accumulation folds in map-iteration order; fold over sorted keys instead")
					continue
				}
				// s = append(s, ...) collecting into an outer slice.
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				lhs, ok := as.Lhs[i].(*ast.Ident)
				if !ok || !declaredOutside(pass, lhs, rng) {
					continue
				}
				if !sortedLater(pass, fn, rng, lhs) {
					pass.Reportf(as.Pos(),
						"slice %s collects map keys/values in iteration order and is never sorted; sort it before it crosses a fold or encode boundary", lhs.Name)
				}
			}
		}
		return true
	})
}

func sameIdent(a, b ast.Expr) bool {
	ai, aok := a.(*ast.Ident)
	bi, bok := b.(*ast.Ident)
	return aok && bok && ai.Name == bi.Name
}

func isFloatExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredOutside reports whether the identifier (or the base of a selector/
// index expression) refers to an object declared outside the range body —
// accumulating into a loop-local is fine, it cannot leak iteration order.
func declaredOutside(pass *Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return true // unknown shape: assume outer, stay conservative
	}
	if pass.Info == nil {
		return true
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return true
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedLater reports whether s is visibly handed to a sort call after the
// range loop within the same function: sort.Slice(s, ...), sort.Sort(...s...),
// slices.Sort(s), sort.Strings/Ints(s), or any call whose selector starts
// with "Sort" taking s.
func sortedLater(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, s *ast.Ident) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && id.Name == s.Name {
					found = true
					return false
				}
				return true
			})
		}
		return true
	})
	return found
}

func isSortCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
		return true
	}
	return len(sel.Sel.Name) >= 4 && sel.Sel.Name[:4] == "Sort"
}
