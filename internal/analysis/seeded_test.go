package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSeededViolations reintroduces the two historical bug patterns the
// suite exists to block — an unsorted map-range fold in a pie package and an
// unbounded decode-side make in an mpi package — into a scratch module named
// like this one, and asserts the suite convicts both with file:line
// diagnostics. This is the end-to-end proof that a regression of either
// class cannot land silently.
func TestSeededViolations(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module grape\n\ngo 1.24\n")
	// The PR-8 PageRank bug class: a float fold in map-iteration order.
	write("internal/pie/rank.go", `package pie

func fold(m map[int64]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
`)
	// The PR-6 DecodeKeyValues bug class: a wire count sizing a make with no
	// bound check.
	write("internal/mpi/codec.go", `package mpi

import "encoding/binary"

func decode(buf []byte) []uint64 {
	n, _ := binary.Uvarint(buf)
	out := make([]uint64, 0, n)
	return out
}
`)

	pkgs, err := Load(root, "grape", []string{"./..."})
	if err != nil {
		t.Fatalf("loading seeded module: %v", err)
	}
	diags := Lint(pkgs, All())

	expect := []struct {
		analyzer, file string
		line           int
	}{
		{"detmap", filepath.Join("internal", "pie", "rank.go"), 6},
		{"decodebound", filepath.Join("internal", "mpi", "codec.go"), 7},
	}
	for _, e := range expect {
		found := false
		for _, d := range diags {
			if d.Analyzer == e.analyzer && strings.HasSuffix(d.Pos.Filename, e.file) && d.Pos.Line == e.line {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("seeded %s violation at %s:%d not reported; got %d diagnostics:", e.analyzer, e.file, e.line, len(diags))
			for _, d := range diags {
				t.Logf("  %s", d)
			}
		}
	}
	if len(diags) != len(expect) {
		t.Errorf("want exactly %d findings, got %d:", len(expect), len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}
