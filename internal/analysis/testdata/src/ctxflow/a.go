// Fixture for the ctxflow analyzer: the ...Ctx API surface must thread its
// context.
package ctxflow

import (
	"context"
	"time"
)

// RunCtx is the correct shape: the context parameter flows into the body.
func RunCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// EvalCtx promises cancellation in its name but takes no context.
func EvalCtx(n int) int { // want `exported EvalCtx has no context.Context parameter`
	return n * 2
}

// StepCtx accepts a context and then ignores it.
func StepCtx(ctx context.Context, n int) int { // want `exported StepCtx never uses its context parameter ctx`
	return n + 1
}

// DrainCtx explicitly discards its context.
func DrainCtx(_ context.Context) {} // want `exported DrainCtx discards its context parameter`

// severedContext holds a caller context and mints a fresh root anyway,
// cutting the cancellation chain exactly where it was promised.
func severedContext(ctx context.Context) error {
	return RunCtx(context.Background(), time.Second) // want `context.Background\(\) inside a function that already has a context parameter; thread ctx instead`
}

// threaded is the right version of the same call.
func threaded(ctx context.Context) error {
	return RunCtx(ctx, time.Second)
}

// Run is a plain non-Ctx wrapper without a context parameter: delegating to
// Background here is the documented pattern, not a finding.
func Run(d time.Duration) error {
	return RunCtx(context.Background(), d)
}

// spawns demonstrates the closure exemption: goroutine bodies and handlers
// often outlive the call, so ctxflow judges only the function's own
// statements.
func spawns(ctx context.Context) {
	go func() {
		_ = RunCtx(context.Background(), time.Second)
	}()
	_ = ctx
}

// baselined shows suppression for a deliberate detach (lifecycle outliving
// the request).
func baselined(ctx context.Context) error {
	//lint:ignore ctxflow checkpoint upload must survive query cancellation
	return RunCtx(context.Background(), time.Second)
}
