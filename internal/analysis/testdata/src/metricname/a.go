// Fixture for the metricname analyzer: every obs metric registration must
// carry a grape_-prefixed snake_case name, checked with constant folding.
package metricname

// registry mirrors the internal/obs constructor surface; metricname matches
// the method names, so a local stand-in exercises the same code path.
type registry struct{}

func (registry) Counter(name string) int                        { return 0 }
func (registry) CounterVec(name string, labels ...string) int   { return 0 }
func (registry) Gauge(name string) int                          { return 0 }
func (registry) GaugeVec(name string, labels ...string) int     { return 0 }
func (registry) Histogram(name string, buckets ...float64) int  { return 0 }
func (registry) HistogramVec(name string, labels ...string) int { return 0 }
func (registry) Register(name string) int                       { return 0 }

const (
	prefix  = "grape_"
	subsys  = "worker_"
	badBase = "Worker-Steps"
)

func register(r registry) {
	// Literal names, good and bad.
	r.Counter("grape_queries_total")
	r.Gauge("grape_worker_backlog")
	r.Counter("queries_total")        // want `metric name "queries_total" is not grape_-prefixed snake_case`
	r.Histogram("grape_Step_Seconds") // want `metric name "grape_Step_Seconds" is not grape_-prefixed snake_case`
	r.GaugeVec("grape_frag_size", "frag")
	r.CounterVec("frag-msgs", "frag") // want `metric name "frag-msgs" is not grape_-prefixed snake_case`

	// Constant-built names: the grep this analyzer replaced could not see
	// through these.
	r.Counter(prefix + subsys + "steps_total")
	r.Gauge(prefix + badBase) // want `metric name "grape_Worker-Steps" is not grape_-prefixed snake_case`

	// Dynamic names are skipped statically; the registry panics at runtime.
	name := dynamicName()
	r.Counter(name)

	// Non-constructor methods are out of scope even with a string literal.
	r.Register("whatever")

	// Trailing underscore and double underscore are malformed.
	r.Counter("grape_steps_") // want `metric name "grape_steps_" is not grape_-prefixed snake_case`
	r.Gauge("grape__backlog") // want `metric name "grape__backlog" is not grape_-prefixed snake_case`

	// Baselined exception: a legacy name kept for dashboard compatibility.
	//lint:ignore metricname legacy dashboard name predates the grape_ prefix
	r.Counter("engine_uptime_seconds")
}

func dynamicName() string { return "grape_dynamic" }
