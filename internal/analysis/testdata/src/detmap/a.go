// Fixture for the detmap analyzer: no order-dependent folding under a map
// range.
package detmap

import "sort"

// floatFold is the PR-8 PageRank bug class: float addition in map-iteration
// order flips last bits between runs.
func floatFold(m map[int64]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation folds in map-iteration order`
	}
	return sum
}

// floatFoldSpelledOut is the same fold written without the compound operator.
func floatFoldSpelledOut(m map[int64]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `floating-point accumulation folds in map-iteration order`
	}
	return sum
}

// sortedFold is the sanctioned idiom: collect keys, sort, fold in key order.
func sortedFold(m map[int64]float64) float64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// unsortedCollect leaks iteration order into a slice that is never sorted.
func unsortedCollect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `slice out collects map keys/values in iteration order and is never sorted`
	}
	return out
}

// intFold is fine: integer addition is associative and commutative, so
// iteration order cannot change the result.
func intFold(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// localAccumulator is fine: the accumulation target lives inside the loop.
func localAccumulator(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		var rowSum float64
		for _, v := range vs {
			rowSum += v
		}
		if rowSum > 0 {
			n++
		}
	}
	return n
}

// mapToMap is fine: building a map under a map range is order-independent.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// baselined shows suppression of a deliberate order-dependent collect (e.g.
// feeding a commutative hash).
func baselined(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore detmap consumer folds with an order-independent combiner
		out = append(out, k)
	}
	return out
}
