// Fixture for the poolescape analyzer: pooled values must be released on
// every path and must not escape their frame.
package poolescape

import (
	"errors"
	"sync"
)

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

type holder struct{ b *[]byte }

var global *[]byte

// leakOnErrorPath is the PR-6 bug class: the error return skips the Put the
// happy path performs.
func leakOnErrorPath(fail bool) error {
	b := bufPool.Get().(*[]byte) // want `leaks on the return at line \d+`
	if fail {
		return errFail
	}
	bufPool.Put(b)
	return nil
}

// releasedEverywhere is fine: both paths hand the value back.
func releasedEverywhere(fail bool) error {
	b := bufPool.Get().(*[]byte)
	if fail {
		bufPool.Put(b)
		return errFail
	}
	bufPool.Put(b)
	return nil
}

// deferredRelease is fine: defer covers every path.
func deferredRelease(fail bool) error {
	b := bufPool.Get().(*[]byte)
	defer bufPool.Put(b)
	if fail {
		return errFail
	}
	use(b)
	return nil
}

// escapeToField parks the pooled value in a struct: nothing guarantees a
// matching Put.
func escapeToField(h *holder) {
	b := bufPool.Get().(*[]byte) // want `escapes to field b`
	h.b = b
	bufPool.Put(b)
}

// escapeToGlobal stores the pooled value in a package-level variable.
func escapeToGlobal() {
	b := bufPool.Get().(*[]byte) // want `escapes to package-level variable global`
	global = b
}

// escapeToChannel sends the pooled value away.
func escapeToChannel(ch chan *[]byte) {
	b := bufPool.Get().(*[]byte) // want `escapes into a channel send`
	ch <- b
}

// returned transfers ownership invisibly; constructors must baseline this
// with an ignore documenting who releases.
func returned() *[]byte {
	b := bufPool.Get().(*[]byte) // want `pooled value returned`
	return b
}

// constructor shows the sanctioned baseline: the ignore names the analyzer
// and carries a reason, so no diagnostic survives.
func constructor() *[]byte {
	//lint:ignore poolescape callers own the value and must Put it back
	b := bufPool.Get().(*[]byte)
	return b
}

// missingEverywhere never releases at all: passing the value to a consuming
// call would count as a release, so only a blank use keeps it alive here.
func missingEverywhere() {
	b := bufPool.Get().(*[]byte) // want `not released on the fall-through path`
	_ = b
}

// aliasLeak tracks the value through a plain alias.
func aliasLeak(fail bool) error {
	v := bufPool.Get().(*[]byte) // want `leaks on the return at line \d+`
	b := v
	if fail {
		return errFail
	}
	bufPool.Put(b)
	return nil
}

// consumedByCallee passes the value to a helper that owns it now.
func consumedByCallee() {
	b := bufPool.Get().(*[]byte)
	recycle(b)
}

var errFail = errors.New("fail")

func use(*[]byte)     {}
func recycle(*[]byte) {}
