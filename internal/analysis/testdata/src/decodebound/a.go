// Fixture for the decodebound analyzer: wire-decoded counts must be
// bounds-checked before they size an allocation.
package decodebound

import "encoding/binary"

type pair struct {
	K uint64
	V int64
}

// unboundedMake is the PR-6 DecodeKeyValues bug class: a hostile 20-byte
// frame claims a billion elements and the decoder allocates them.
func unboundedMake(buf []byte) []pair {
	n, off := binary.Uvarint(buf)
	out := make([]pair, 0, n) // want `allocation sized by wire-decoded count "n" with no prior bound check`
	_ = off
	return out
}

// boundedMake is the sanctioned shape: reject counts the remaining input
// cannot possibly hold, then allocate.
func boundedMake(buf []byte) []pair {
	n, off := binary.Uvarint(buf)
	if off <= 0 || n > uint64(len(buf)-off)/9+1 {
		return nil
	}
	out := make([]pair, 0, n)
	return out
}

// inlineDecode sizes the make straight from the reader with no variable to
// ever guard.
func inlineDecode(buf []byte) []byte {
	out := make([]byte, binary.LittleEndian.Uint32(buf)) // want `allocation sized by wire-decoded count "<inline decode>"`
	return out
}

// endianCount taints through the fixed-width readers and a conversion.
func endianCount(buf []byte) []uint64 {
	n := int(binary.BigEndian.Uint32(buf))
	vals := make([]uint64, n) // want `allocation sized by wire-decoded count "n" with no prior bound check`
	return vals
}

// guardedEndian clears taint through any comparison mentioning the count.
func guardedEndian(buf []byte) []uint64 {
	n := int(binary.BigEndian.Uint32(buf))
	if n > (len(buf)-4)/8 {
		return nil
	}
	vals := make([]uint64, n)
	return vals
}

// appendLoop grows a slice under a loop bounded by an unguarded count — the
// same bomb without a make.
func appendLoop(buf []byte) []uint64 {
	n, off := binary.Uvarint(buf)
	var out []uint64
	for i := uint64(0); i < n; i++ { // want `allocation sized by wire-decoded count "n" with no prior bound check`
		v, m := binary.Uvarint(buf[off:])
		out = append(out, v)
		off += m
	}
	return out
}

// constSize is fine: the count never came off the wire.
func constSize(buf []byte) []byte {
	out := make([]byte, 64)
	copy(out, buf)
	return out
}

// lenSized is fine: sized by the input we actually hold.
func lenSized(buf []byte) []byte {
	out := make([]byte, len(buf))
	copy(out, buf)
	return out
}

// lenOfDecoded is fine: the slice was materialized by a self-limiting decode
// loop, so len() of it is bounded by input we actually hold, not by a
// claimed count.
func lenOfDecoded(buf []byte) []pair {
	var ids []uint64
	for len(buf) >= 8 {
		ids = append(ids, binary.BigEndian.Uint64(buf))
		buf = buf[8:]
	}
	out := make([]pair, 0, len(ids))
	for _, id := range ids {
		out = append(out, pair{K: id})
	}
	return out
}

// baselined documents a deliberately unbounded decode (trusted local file).
func baselined(buf []byte) []pair {
	n, _ := binary.Uvarint(buf)
	//lint:ignore decodebound input is a local checkpoint file, not a peer frame
	out := make([]pair, 0, n)
	return out
}
