package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// The loader turns "./..."-style patterns into parsed, type-checked
// packages without leaving the standard library: module packages are
// discovered by walking the tree from go.mod, topologically sorted by their
// in-module imports and type-checked in dependency order; imports outside
// the module resolve through go/importer's source importer (GOROOT sources).
// Type checking is tolerant — a failed import or a type error degrades the
// available information instead of aborting the lint — because analyzers are
// conservative with missing types anyway and a broken tree should still get
// whatever findings are derivable.

// Package is one loaded module package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Selected marks packages matched by the load patterns; the others were
	// loaded only because a selected package imports them.
	Selected bool
	// TypeErrors collects the (tolerated) type-check errors.
	TypeErrors []error
}

// FindModuleRoot walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModuleRoot(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if m, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(m), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load parses and type-checks the module packages matched by patterns
// (plus their in-module dependencies, unselected). Patterns are the familiar
// shapes: "./...", "./internal/mpi", "./internal/mpi/...", or bare and
// module-qualified import paths.
func Load(root, module string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	byPath := make(map[string]*rawPkg, len(dirs))
	var paths []string
	for _, dir := range dirs {
		rp, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if rp == nil {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		rp.path = module
		if rel != "." {
			rp.path = module + "/" + filepath.ToSlash(rel)
		}
		byPath[rp.path] = rp
		paths = append(paths, rp.path)
	}
	order, err := topoSort(byPath, paths)
	if err != nil {
		return nil, err
	}

	std := newStdImporter(fset)
	local := make(map[string]*types.Package, len(order))
	var pkgs []*Package
	for _, p := range order {
		rp := byPath[p]
		pkg := typeCheck(fset, rp, &chainImporter{local: local, std: std})
		pkg.Selected = selected(module, rp.path, patterns)
		if pkg.Types != nil {
			local[rp.path] = pkg.Types
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path, resolving imports from the standard library only. The fixture
// harness uses it to load testdata packages.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	rp, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if rp == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	rp.path = importPath
	pkg := typeCheck(fset, rp, &chainImporter{std: newStdImporter(fset)})
	pkg.Selected = true
	return pkg, nil
}

// rawPkg is a parsed-but-unchecked package.
type rawPkg struct {
	path    string
	dir     string
	name    string
	files   []*ast.File
	imports []string
}

// packageDirs walks root for directories that may hold module packages.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory with comments. A
// directory with no Go files returns nil.
func parseDir(fset *token.FileSet, dir string) (*rawPkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rp := &rawPkg{dir: dir}
	seen := make(map[string]bool)
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if rp.name == "" {
			rp.name = f.Name.Name
		} else if f.Name.Name != rp.name {
			// Mixed package clauses (ignored build-tagged variants); keep the
			// majority package established by the first file.
			continue
		}
		rp.files = append(rp.files, f)
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				rp.imports = append(rp.imports, p)
			}
		}
	}
	if len(rp.files) == 0 {
		return nil, nil
	}
	return rp, nil
}

// topoSort orders paths so every in-module import precedes its importer.
func topoSort(byPath map[string]*rawPkg, paths []string) ([]string, error) {
	sort.Strings(paths)
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int, len(paths))
	var order []string
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("analysis: import cycle through %s", p)
		}
		state[p] = grey
		rp := byPath[p]
		for _, imp := range rp.imports {
			if _, ok := byPath[imp]; ok {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// typeCheck runs the tolerant checker over one parsed package.
func typeCheck(fset *token.FileSet, rp *rawPkg, imp types.Importer) *Package {
	pkg := &Package{Path: rp.path, Dir: rp.dir, Fset: fset, Files: rp.files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:         imp,
		FakeImportC:      true,
		IgnoreFuncBodies: false,
		Error:            func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(rp.path, fset, rp.files, info) // errors collected above
	pkg.Types = tpkg
	pkg.Info = info
	return pkg
}

// newStdImporter returns the GOROOT source importer, with cgo disabled so
// cgo-capable packages (net, os/user) resolve to their pure-Go variants
// instead of needing the cgo tool.
func newStdImporter(fset *token.FileSet) types.ImporterFrom {
	build.Default.CgoEnabled = false
	return importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
}

// chainImporter resolves in-module imports from the already-checked set,
// everything else from the standard library, and degrades unresolvable
// imports to empty placeholder packages so checking can continue.
type chainImporter struct {
	local    map[string]*types.Package
	std      types.ImporterFrom
	fallback map[string]*types.Package
}

func (ci *chainImporter) Import(p string) (*types.Package, error) {
	if pkg, ok := ci.local[p]; ok {
		return pkg, nil
	}
	if pkg, err := ci.std.Import(p); err == nil {
		return pkg, nil
	}
	if ci.fallback == nil {
		ci.fallback = make(map[string]*types.Package)
	}
	if pkg, ok := ci.fallback[p]; ok {
		return pkg, nil
	}
	pkg := types.NewPackage(p, path.Base(p))
	pkg.MarkComplete()
	ci.fallback[p] = pkg
	return pkg, nil
}

// selected reports whether import path p matches any load pattern, given the
// module path for resolving relative patterns.
func selected(module, p string, patterns []string) bool {
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" || pat == "." {
			pat = "..."
		}
		if !strings.HasPrefix(pat, module) {
			if pat == "..." {
				pat = module + "/..."
			} else {
				pat = module + "/" + pat
			}
		}
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if p == prefix || strings.HasPrefix(p, prefix+"/") {
				return true
			}
		} else if p == pat {
			return true
		}
	}
	return false
}
