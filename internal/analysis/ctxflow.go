package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the context-threading contract of the ...Ctx API surface
// (PR 9): a function that accepts a context.Context must actually thread it.
// Three rules:
//
//   - an exported function whose name ends in "Ctx" must use its context
//     parameter somewhere in its body (an unused or blank ctx means the
//     cancellable variant silently isn't);
//   - a function holding a context parameter must not manufacture
//     context.Background() or context.TODO() — that severs the caller's
//     cancellation exactly where it was promised (plain non-Ctx wrappers
//     without a ctx parameter may still call Background to delegate);
//   - a call from such a function to any callee whose first parameter is a
//     context.Context must pass a context value derived in scope, not a
//     freshly minted root (covered by the Background rule) — callees taking
//     a context get one.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "...Ctx functions must thread their context; no context.Background/TODO where a ctx is in scope",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxParams := contextParams(pass, fn.Type)
			isCtxVariant := strings.HasSuffix(fn.Name.Name, "Ctx") && ast.IsExported(fn.Name.Name)
			if isCtxVariant {
				if len(ctxParams) == 0 {
					pass.Reportf(fn.Pos(), "exported %s has no context.Context parameter; the Ctx suffix promises cancellation", fn.Name.Name)
				} else {
					for _, p := range ctxParams {
						if p == "_" {
							pass.Reportf(fn.Pos(), "exported %s discards its context parameter", fn.Name.Name)
						} else if !usesIdent(fn.Body, p) {
							pass.Reportf(fn.Pos(), "exported %s never uses its context parameter %s; cancellation is silently dropped", fn.Name.Name, p)
						}
					}
				}
			}
			if len(ctxParams) == 0 {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok && n != fn.Body {
					// Closures often outlive the call (AfterFunc handlers,
					// goroutines); judge only the function's own statements.
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == "context" &&
						(sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") {
						pass.Reportf(call.Pos(), "context.%s() inside a function that already has a context parameter; thread %s instead",
							sel.Sel.Name, ctxParams[0])
					}
				}
				return true
			})
		}
	}
}

// contextParams returns the names of ft's context.Context parameters.
func contextParams(pass *Pass, ft *ast.FuncType) []string {
	var out []string
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		if !isContextType(pass, field.Type) {
			continue
		}
		if len(field.Names) == 0 {
			out = append(out, "_")
		}
		for _, name := range field.Names {
			out = append(out, name.Name)
		}
	}
	return out
}

// isContextType recognizes context.Context by type information when
// available, by spelling otherwise.
func isContextType(pass *Pass, e ast.Expr) bool {
	if t := pass.TypeOf(e); t != nil {
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
		}
		// fall through to the syntactic check: the placeholder-import case
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}

func usesIdent(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}
